# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(base_test "/root/repo/build/tests/base_test")
set_tests_properties(base_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;14;mbias_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(stats_test "/root/repo/build/tests/stats_test")
set_tests_properties(stats_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;17;mbias_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(isa_test "/root/repo/build/tests/isa_test")
set_tests_properties(isa_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;23;mbias_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(toolchain_test "/root/repo/build/tests/toolchain_test")
set_tests_properties(toolchain_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;26;mbias_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(uarch_test "/root/repo/build/tests/uarch_test")
set_tests_properties(uarch_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;30;mbias_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sim_test "/root/repo/build/tests/sim_test")
set_tests_properties(sim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;33;mbias_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(workloads_test "/root/repo/build/tests/workloads_test")
set_tests_properties(workloads_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;38;mbias_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_test "/root/repo/build/tests/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;42;mbias_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(survey_test "/root/repo/build/tests/survey_test")
set_tests_properties(survey_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;49;mbias_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(workload_correctness_test "/root/repo/build/tests/workload_correctness_test")
set_tests_properties(workload_correctness_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;53;mbias_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(bias_repro_test "/root/repo/build/tests/bias_repro_test")
set_tests_properties(bias_repro_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;55;mbias_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(property_test "/root/repo/build/tests/property_test")
set_tests_properties(property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;57;mbias_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(golden_test "/root/repo/build/tests/golden_test")
set_tests_properties(golden_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;59;mbias_test;/root/repo/tests/CMakeLists.txt;0;")
