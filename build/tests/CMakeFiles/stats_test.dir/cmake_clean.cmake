file(REMOVE_RECURSE
  "CMakeFiles/stats_test.dir/stats/anova2_test.cc.o"
  "CMakeFiles/stats_test.dir/stats/anova2_test.cc.o.d"
  "CMakeFiles/stats_test.dir/stats/anova_regression_test.cc.o"
  "CMakeFiles/stats_test.dir/stats/anova_regression_test.cc.o.d"
  "CMakeFiles/stats_test.dir/stats/ci_test.cc.o"
  "CMakeFiles/stats_test.dir/stats/ci_test.cc.o.d"
  "CMakeFiles/stats_test.dir/stats/distributions_test.cc.o"
  "CMakeFiles/stats_test.dir/stats/distributions_test.cc.o.d"
  "CMakeFiles/stats_test.dir/stats/sample_test.cc.o"
  "CMakeFiles/stats_test.dir/stats/sample_test.cc.o.d"
  "stats_test"
  "stats_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
