file(REMOVE_RECURSE
  "CMakeFiles/toolchain_test.dir/toolchain/compiler_test.cc.o"
  "CMakeFiles/toolchain_test.dir/toolchain/compiler_test.cc.o.d"
  "CMakeFiles/toolchain_test.dir/toolchain/encoding_test.cc.o"
  "CMakeFiles/toolchain_test.dir/toolchain/encoding_test.cc.o.d"
  "CMakeFiles/toolchain_test.dir/toolchain/linker_test.cc.o"
  "CMakeFiles/toolchain_test.dir/toolchain/linker_test.cc.o.d"
  "toolchain_test"
  "toolchain_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toolchain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
