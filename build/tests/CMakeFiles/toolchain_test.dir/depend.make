# Empty dependencies file for toolchain_test.
# This may be replaced when dependencies are built.
