file(REMOVE_RECURSE
  "CMakeFiles/sim_test.dir/sim/machine_test.cc.o"
  "CMakeFiles/sim_test.dir/sim/machine_test.cc.o.d"
  "CMakeFiles/sim_test.dir/sim/memory_test.cc.o"
  "CMakeFiles/sim_test.dir/sim/memory_test.cc.o.d"
  "CMakeFiles/sim_test.dir/sim/noise_test.cc.o"
  "CMakeFiles/sim_test.dir/sim/noise_test.cc.o.d"
  "CMakeFiles/sim_test.dir/sim/profile_test.cc.o"
  "CMakeFiles/sim_test.dir/sim/profile_test.cc.o.d"
  "sim_test"
  "sim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
