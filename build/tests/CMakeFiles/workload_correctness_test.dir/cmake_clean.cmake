file(REMOVE_RECURSE
  "CMakeFiles/workload_correctness_test.dir/integration/workload_correctness_test.cc.o"
  "CMakeFiles/workload_correctness_test.dir/integration/workload_correctness_test.cc.o.d"
  "workload_correctness_test"
  "workload_correctness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_correctness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
