file(REMOVE_RECURSE
  "CMakeFiles/bias_repro_test.dir/integration/bias_repro_test.cc.o"
  "CMakeFiles/bias_repro_test.dir/integration/bias_repro_test.cc.o.d"
  "bias_repro_test"
  "bias_repro_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bias_repro_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
