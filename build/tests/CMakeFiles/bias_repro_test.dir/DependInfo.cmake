
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/bias_repro_test.cc" "tests/CMakeFiles/bias_repro_test.dir/integration/bias_repro_test.cc.o" "gcc" "tests/CMakeFiles/bias_repro_test.dir/integration/bias_repro_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mbias_core.dir/DependInfo.cmake"
  "/root/repo/build/src/survey/CMakeFiles/mbias_survey.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/mbias_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mbias_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/mbias_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/toolchain/CMakeFiles/mbias_toolchain.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/mbias_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mbias_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/mbias_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
