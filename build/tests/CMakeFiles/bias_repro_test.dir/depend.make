# Empty dependencies file for bias_repro_test.
# This may be replaced when dependencies are built.
