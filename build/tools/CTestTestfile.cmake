# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_list "/root/repo/build/tools/mbias" "list")
set_tests_properties(cli_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_run "/root/repo/build/tools/mbias" "run" "--workload" "bzip" "--opt" "O3" "--env" "52")
set_tests_properties(cli_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bias "/root/repo/build/tools/mbias" "bias" "--workload" "milc" "--factor" "env" "--setups" "6")
set_tests_properties(cli_bias PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_causal "/root/repo/build/tools/mbias" "causal" "--workload" "perl" "--factor" "env" "--setups" "8")
set_tests_properties(cli_causal PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_variance "/root/repo/build/tools/mbias" "variance" "--workload" "perl" "--reps" "4" "--setups" "4")
set_tests_properties(cli_variance PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_disasm "/root/repo/build/tools/mbias" "disasm" "--workload" "perl" "--opt" "O3" "--function" "vm_run")
set_tests_properties(cli_disasm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_survey "/root/repo/build/tools/mbias" "survey")
set_tests_properties(cli_survey PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_profile "/root/repo/build/tools/mbias" "profile" "--workload" "gobmk" "--top" "5")
set_tests_properties(cli_profile PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
