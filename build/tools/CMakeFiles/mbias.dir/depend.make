# Empty dependencies file for mbias.
# This may be replaced when dependencies are built.
