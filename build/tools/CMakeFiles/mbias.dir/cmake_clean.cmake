file(REMOVE_RECURSE
  "CMakeFiles/mbias.dir/mbias_cli.cc.o"
  "CMakeFiles/mbias.dir/mbias_cli.cc.o.d"
  "mbias"
  "mbias.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbias.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
