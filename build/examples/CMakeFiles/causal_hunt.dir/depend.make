# Empty dependencies file for causal_hunt.
# This may be replaced when dependencies are built.
