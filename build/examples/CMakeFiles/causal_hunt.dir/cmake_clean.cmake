file(REMOVE_RECURSE
  "CMakeFiles/causal_hunt.dir/causal_hunt.cpp.o"
  "CMakeFiles/causal_hunt.dir/causal_hunt.cpp.o.d"
  "causal_hunt"
  "causal_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/causal_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
