# Empty compiler generated dependencies file for evaluate_prefetcher.
# This may be replaced when dependencies are built.
