file(REMOVE_RECURSE
  "CMakeFiles/evaluate_prefetcher.dir/evaluate_prefetcher.cpp.o"
  "CMakeFiles/evaluate_prefetcher.dir/evaluate_prefetcher.cpp.o.d"
  "evaluate_prefetcher"
  "evaluate_prefetcher.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evaluate_prefetcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
