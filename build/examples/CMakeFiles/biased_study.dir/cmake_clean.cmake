file(REMOVE_RECURSE
  "CMakeFiles/biased_study.dir/biased_study.cpp.o"
  "CMakeFiles/biased_study.dir/biased_study.cpp.o.d"
  "biased_study"
  "biased_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biased_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
