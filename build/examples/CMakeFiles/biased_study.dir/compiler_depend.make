# Empty compiler generated dependencies file for biased_study.
# This may be replaced when dependencies are built.
