file(REMOVE_RECURSE
  "CMakeFiles/false_confidence.dir/false_confidence.cpp.o"
  "CMakeFiles/false_confidence.dir/false_confidence.cpp.o.d"
  "false_confidence"
  "false_confidence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/false_confidence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
