# Empty compiler generated dependencies file for false_confidence.
# This may be replaced when dependencies are built.
