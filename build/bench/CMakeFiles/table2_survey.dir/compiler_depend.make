# Empty compiler generated dependencies file for table2_survey.
# This may be replaced when dependencies are built.
