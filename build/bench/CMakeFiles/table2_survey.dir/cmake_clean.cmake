file(REMOVE_RECURSE
  "CMakeFiles/table2_survey.dir/table2_survey.cc.o"
  "CMakeFiles/table2_survey.dir/table2_survey.cc.o.d"
  "table2_survey"
  "table2_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
