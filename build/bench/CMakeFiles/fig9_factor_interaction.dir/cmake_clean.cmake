file(REMOVE_RECURSE
  "CMakeFiles/fig9_factor_interaction.dir/fig9_factor_interaction.cc.o"
  "CMakeFiles/fig9_factor_interaction.dir/fig9_factor_interaction.cc.o.d"
  "fig9_factor_interaction"
  "fig9_factor_interaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_factor_interaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
