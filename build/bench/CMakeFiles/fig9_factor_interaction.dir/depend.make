# Empty dependencies file for fig9_factor_interaction.
# This may be replaced when dependencies are built.
