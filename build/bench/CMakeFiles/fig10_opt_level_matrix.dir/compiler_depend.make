# Empty compiler generated dependencies file for fig10_opt_level_matrix.
# This may be replaced when dependencies are built.
