file(REMOVE_RECURSE
  "CMakeFiles/fig10_opt_level_matrix.dir/fig10_opt_level_matrix.cc.o"
  "CMakeFiles/fig10_opt_level_matrix.dir/fig10_opt_level_matrix.cc.o.d"
  "fig10_opt_level_matrix"
  "fig10_opt_level_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_opt_level_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
