file(REMOVE_RECURSE
  "CMakeFiles/fig5_sim_and_compilers.dir/fig5_sim_and_compilers.cc.o"
  "CMakeFiles/fig5_sim_and_compilers.dir/fig5_sim_and_compilers.cc.o.d"
  "fig5_sim_and_compilers"
  "fig5_sim_and_compilers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_sim_and_compilers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
