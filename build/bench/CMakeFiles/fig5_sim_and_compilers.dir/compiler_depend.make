# Empty compiler generated dependencies file for fig5_sim_and_compilers.
# This may be replaced when dependencies are built.
