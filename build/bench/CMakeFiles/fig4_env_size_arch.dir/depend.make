# Empty dependencies file for fig4_env_size_arch.
# This may be replaced when dependencies are built.
