file(REMOVE_RECURSE
  "CMakeFiles/fig4_env_size_arch.dir/fig4_env_size_arch.cc.o"
  "CMakeFiles/fig4_env_size_arch.dir/fig4_env_size_arch.cc.o.d"
  "fig4_env_size_arch"
  "fig4_env_size_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_env_size_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
