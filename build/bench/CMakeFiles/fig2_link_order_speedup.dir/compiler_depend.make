# Empty compiler generated dependencies file for fig2_link_order_speedup.
# This may be replaced when dependencies are built.
