file(REMOVE_RECURSE
  "CMakeFiles/fig2_link_order_speedup.dir/fig2_link_order_speedup.cc.o"
  "CMakeFiles/fig2_link_order_speedup.dir/fig2_link_order_speedup.cc.o.d"
  "fig2_link_order_speedup"
  "fig2_link_order_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_link_order_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
