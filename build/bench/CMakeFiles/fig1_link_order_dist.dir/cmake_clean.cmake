file(REMOVE_RECURSE
  "CMakeFiles/fig1_link_order_dist.dir/fig1_link_order_dist.cc.o"
  "CMakeFiles/fig1_link_order_dist.dir/fig1_link_order_dist.cc.o.d"
  "fig1_link_order_dist"
  "fig1_link_order_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_link_order_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
