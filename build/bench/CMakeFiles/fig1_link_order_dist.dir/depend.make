# Empty dependencies file for fig1_link_order_dist.
# This may be replaced when dependencies are built.
