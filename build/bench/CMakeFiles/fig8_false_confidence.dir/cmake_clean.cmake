file(REMOVE_RECURSE
  "CMakeFiles/fig8_false_confidence.dir/fig8_false_confidence.cc.o"
  "CMakeFiles/fig8_false_confidence.dir/fig8_false_confidence.cc.o.d"
  "fig8_false_confidence"
  "fig8_false_confidence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_false_confidence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
