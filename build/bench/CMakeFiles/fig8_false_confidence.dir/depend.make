# Empty dependencies file for fig8_false_confidence.
# This may be replaced when dependencies are built.
