# Empty compiler generated dependencies file for fig11_layout_randomization.
# This may be replaced when dependencies are built.
