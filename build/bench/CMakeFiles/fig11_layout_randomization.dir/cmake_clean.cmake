file(REMOVE_RECURSE
  "CMakeFiles/fig11_layout_randomization.dir/fig11_layout_randomization.cc.o"
  "CMakeFiles/fig11_layout_randomization.dir/fig11_layout_randomization.cc.o.d"
  "fig11_layout_randomization"
  "fig11_layout_randomization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_layout_randomization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
