file(REMOVE_RECURSE
  "CMakeFiles/fig3_env_size_core2.dir/fig3_env_size_core2.cc.o"
  "CMakeFiles/fig3_env_size_core2.dir/fig3_env_size_core2.cc.o.d"
  "fig3_env_size_core2"
  "fig3_env_size_core2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_env_size_core2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
