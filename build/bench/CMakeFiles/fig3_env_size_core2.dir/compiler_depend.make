# Empty compiler generated dependencies file for fig3_env_size_core2.
# This may be replaced when dependencies are built.
