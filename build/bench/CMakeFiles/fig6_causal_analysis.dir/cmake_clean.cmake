file(REMOVE_RECURSE
  "CMakeFiles/fig6_causal_analysis.dir/fig6_causal_analysis.cc.o"
  "CMakeFiles/fig6_causal_analysis.dir/fig6_causal_analysis.cc.o.d"
  "fig6_causal_analysis"
  "fig6_causal_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_causal_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
