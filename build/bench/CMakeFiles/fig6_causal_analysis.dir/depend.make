# Empty dependencies file for fig6_causal_analysis.
# This may be replaced when dependencies are built.
