# Empty compiler generated dependencies file for fig7_setup_randomization.
# This may be replaced when dependencies are built.
