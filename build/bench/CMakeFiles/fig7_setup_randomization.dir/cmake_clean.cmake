file(REMOVE_RECURSE
  "CMakeFiles/fig7_setup_randomization.dir/fig7_setup_randomization.cc.o"
  "CMakeFiles/fig7_setup_randomization.dir/fig7_setup_randomization.cc.o.d"
  "fig7_setup_randomization"
  "fig7_setup_randomization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_setup_randomization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
