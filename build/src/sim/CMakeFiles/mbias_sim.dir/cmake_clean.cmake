file(REMOVE_RECURSE
  "CMakeFiles/mbias_sim.dir/config.cc.o"
  "CMakeFiles/mbias_sim.dir/config.cc.o.d"
  "CMakeFiles/mbias_sim.dir/counters.cc.o"
  "CMakeFiles/mbias_sim.dir/counters.cc.o.d"
  "CMakeFiles/mbias_sim.dir/machine.cc.o"
  "CMakeFiles/mbias_sim.dir/machine.cc.o.d"
  "CMakeFiles/mbias_sim.dir/memory.cc.o"
  "CMakeFiles/mbias_sim.dir/memory.cc.o.d"
  "CMakeFiles/mbias_sim.dir/profile.cc.o"
  "CMakeFiles/mbias_sim.dir/profile.cc.o.d"
  "libmbias_sim.a"
  "libmbias_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbias_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
