# Empty compiler generated dependencies file for mbias_sim.
# This may be replaced when dependencies are built.
