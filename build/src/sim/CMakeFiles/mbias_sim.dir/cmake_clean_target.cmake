file(REMOVE_RECURSE
  "libmbias_sim.a"
)
