
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/config.cc" "src/sim/CMakeFiles/mbias_sim.dir/config.cc.o" "gcc" "src/sim/CMakeFiles/mbias_sim.dir/config.cc.o.d"
  "/root/repo/src/sim/counters.cc" "src/sim/CMakeFiles/mbias_sim.dir/counters.cc.o" "gcc" "src/sim/CMakeFiles/mbias_sim.dir/counters.cc.o.d"
  "/root/repo/src/sim/machine.cc" "src/sim/CMakeFiles/mbias_sim.dir/machine.cc.o" "gcc" "src/sim/CMakeFiles/mbias_sim.dir/machine.cc.o.d"
  "/root/repo/src/sim/memory.cc" "src/sim/CMakeFiles/mbias_sim.dir/memory.cc.o" "gcc" "src/sim/CMakeFiles/mbias_sim.dir/memory.cc.o.d"
  "/root/repo/src/sim/profile.cc" "src/sim/CMakeFiles/mbias_sim.dir/profile.cc.o" "gcc" "src/sim/CMakeFiles/mbias_sim.dir/profile.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/uarch/CMakeFiles/mbias_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/toolchain/CMakeFiles/mbias_toolchain.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/mbias_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/mbias_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
