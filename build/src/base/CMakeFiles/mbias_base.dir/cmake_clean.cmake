file(REMOVE_RECURSE
  "CMakeFiles/mbias_base.dir/logging.cc.o"
  "CMakeFiles/mbias_base.dir/logging.cc.o.d"
  "CMakeFiles/mbias_base.dir/random.cc.o"
  "CMakeFiles/mbias_base.dir/random.cc.o.d"
  "libmbias_base.a"
  "libmbias_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbias_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
