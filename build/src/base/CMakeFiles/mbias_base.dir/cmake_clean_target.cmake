file(REMOVE_RECURSE
  "libmbias_base.a"
)
