# Empty dependencies file for mbias_base.
# This may be replaced when dependencies are built.
