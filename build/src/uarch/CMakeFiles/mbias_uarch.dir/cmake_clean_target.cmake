file(REMOVE_RECURSE
  "libmbias_uarch.a"
)
