file(REMOVE_RECURSE
  "CMakeFiles/mbias_uarch.dir/branch.cc.o"
  "CMakeFiles/mbias_uarch.dir/branch.cc.o.d"
  "CMakeFiles/mbias_uarch.dir/cache.cc.o"
  "CMakeFiles/mbias_uarch.dir/cache.cc.o.d"
  "CMakeFiles/mbias_uarch.dir/storebuffer.cc.o"
  "CMakeFiles/mbias_uarch.dir/storebuffer.cc.o.d"
  "CMakeFiles/mbias_uarch.dir/tlb.cc.o"
  "CMakeFiles/mbias_uarch.dir/tlb.cc.o.d"
  "libmbias_uarch.a"
  "libmbias_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbias_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
