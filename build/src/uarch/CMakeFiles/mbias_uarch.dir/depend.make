# Empty dependencies file for mbias_uarch.
# This may be replaced when dependencies are built.
