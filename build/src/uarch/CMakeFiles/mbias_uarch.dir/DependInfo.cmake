
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/uarch/branch.cc" "src/uarch/CMakeFiles/mbias_uarch.dir/branch.cc.o" "gcc" "src/uarch/CMakeFiles/mbias_uarch.dir/branch.cc.o.d"
  "/root/repo/src/uarch/cache.cc" "src/uarch/CMakeFiles/mbias_uarch.dir/cache.cc.o" "gcc" "src/uarch/CMakeFiles/mbias_uarch.dir/cache.cc.o.d"
  "/root/repo/src/uarch/storebuffer.cc" "src/uarch/CMakeFiles/mbias_uarch.dir/storebuffer.cc.o" "gcc" "src/uarch/CMakeFiles/mbias_uarch.dir/storebuffer.cc.o.d"
  "/root/repo/src/uarch/tlb.cc" "src/uarch/CMakeFiles/mbias_uarch.dir/tlb.cc.o" "gcc" "src/uarch/CMakeFiles/mbias_uarch.dir/tlb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/mbias_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
