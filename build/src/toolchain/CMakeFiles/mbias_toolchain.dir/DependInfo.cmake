
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/toolchain/compiler.cc" "src/toolchain/CMakeFiles/mbias_toolchain.dir/compiler.cc.o" "gcc" "src/toolchain/CMakeFiles/mbias_toolchain.dir/compiler.cc.o.d"
  "/root/repo/src/toolchain/encoding.cc" "src/toolchain/CMakeFiles/mbias_toolchain.dir/encoding.cc.o" "gcc" "src/toolchain/CMakeFiles/mbias_toolchain.dir/encoding.cc.o.d"
  "/root/repo/src/toolchain/linker.cc" "src/toolchain/CMakeFiles/mbias_toolchain.dir/linker.cc.o" "gcc" "src/toolchain/CMakeFiles/mbias_toolchain.dir/linker.cc.o.d"
  "/root/repo/src/toolchain/linkorder.cc" "src/toolchain/CMakeFiles/mbias_toolchain.dir/linkorder.cc.o" "gcc" "src/toolchain/CMakeFiles/mbias_toolchain.dir/linkorder.cc.o.d"
  "/root/repo/src/toolchain/loader.cc" "src/toolchain/CMakeFiles/mbias_toolchain.dir/loader.cc.o" "gcc" "src/toolchain/CMakeFiles/mbias_toolchain.dir/loader.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/mbias_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/mbias_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
