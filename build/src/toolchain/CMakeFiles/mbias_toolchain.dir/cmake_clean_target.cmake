file(REMOVE_RECURSE
  "libmbias_toolchain.a"
)
