file(REMOVE_RECURSE
  "CMakeFiles/mbias_toolchain.dir/compiler.cc.o"
  "CMakeFiles/mbias_toolchain.dir/compiler.cc.o.d"
  "CMakeFiles/mbias_toolchain.dir/encoding.cc.o"
  "CMakeFiles/mbias_toolchain.dir/encoding.cc.o.d"
  "CMakeFiles/mbias_toolchain.dir/linker.cc.o"
  "CMakeFiles/mbias_toolchain.dir/linker.cc.o.d"
  "CMakeFiles/mbias_toolchain.dir/linkorder.cc.o"
  "CMakeFiles/mbias_toolchain.dir/linkorder.cc.o.d"
  "CMakeFiles/mbias_toolchain.dir/loader.cc.o"
  "CMakeFiles/mbias_toolchain.dir/loader.cc.o.d"
  "libmbias_toolchain.a"
  "libmbias_toolchain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbias_toolchain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
