# Empty compiler generated dependencies file for mbias_toolchain.
# This may be replaced when dependencies are built.
