file(REMOVE_RECURSE
  "CMakeFiles/mbias_survey.dir/analyzer.cc.o"
  "CMakeFiles/mbias_survey.dir/analyzer.cc.o.d"
  "CMakeFiles/mbias_survey.dir/database.cc.o"
  "CMakeFiles/mbias_survey.dir/database.cc.o.d"
  "libmbias_survey.a"
  "libmbias_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbias_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
