# Empty dependencies file for mbias_survey.
# This may be replaced when dependencies are built.
