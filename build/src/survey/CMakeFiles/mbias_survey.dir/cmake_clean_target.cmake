file(REMOVE_RECURSE
  "libmbias_survey.a"
)
