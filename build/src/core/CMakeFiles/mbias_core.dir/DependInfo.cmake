
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bias.cc" "src/core/CMakeFiles/mbias_core.dir/bias.cc.o" "gcc" "src/core/CMakeFiles/mbias_core.dir/bias.cc.o.d"
  "/root/repo/src/core/causal.cc" "src/core/CMakeFiles/mbias_core.dir/causal.cc.o" "gcc" "src/core/CMakeFiles/mbias_core.dir/causal.cc.o.d"
  "/root/repo/src/core/conclusion.cc" "src/core/CMakeFiles/mbias_core.dir/conclusion.cc.o" "gcc" "src/core/CMakeFiles/mbias_core.dir/conclusion.cc.o.d"
  "/root/repo/src/core/experiment.cc" "src/core/CMakeFiles/mbias_core.dir/experiment.cc.o" "gcc" "src/core/CMakeFiles/mbias_core.dir/experiment.cc.o.d"
  "/root/repo/src/core/manifest.cc" "src/core/CMakeFiles/mbias_core.dir/manifest.cc.o" "gcc" "src/core/CMakeFiles/mbias_core.dir/manifest.cc.o.d"
  "/root/repo/src/core/runner.cc" "src/core/CMakeFiles/mbias_core.dir/runner.cc.o" "gcc" "src/core/CMakeFiles/mbias_core.dir/runner.cc.o.d"
  "/root/repo/src/core/setup.cc" "src/core/CMakeFiles/mbias_core.dir/setup.cc.o" "gcc" "src/core/CMakeFiles/mbias_core.dir/setup.cc.o.d"
  "/root/repo/src/core/table.cc" "src/core/CMakeFiles/mbias_core.dir/table.cc.o" "gcc" "src/core/CMakeFiles/mbias_core.dir/table.cc.o.d"
  "/root/repo/src/core/variance.cc" "src/core/CMakeFiles/mbias_core.dir/variance.cc.o" "gcc" "src/core/CMakeFiles/mbias_core.dir/variance.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/mbias_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mbias_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/toolchain/CMakeFiles/mbias_toolchain.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mbias_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/mbias_base.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/mbias_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/mbias_uarch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
