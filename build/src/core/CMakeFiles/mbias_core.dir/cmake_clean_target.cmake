file(REMOVE_RECURSE
  "libmbias_core.a"
)
