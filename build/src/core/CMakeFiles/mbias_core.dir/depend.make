# Empty dependencies file for mbias_core.
# This may be replaced when dependencies are built.
