file(REMOVE_RECURSE
  "CMakeFiles/mbias_core.dir/bias.cc.o"
  "CMakeFiles/mbias_core.dir/bias.cc.o.d"
  "CMakeFiles/mbias_core.dir/causal.cc.o"
  "CMakeFiles/mbias_core.dir/causal.cc.o.d"
  "CMakeFiles/mbias_core.dir/conclusion.cc.o"
  "CMakeFiles/mbias_core.dir/conclusion.cc.o.d"
  "CMakeFiles/mbias_core.dir/experiment.cc.o"
  "CMakeFiles/mbias_core.dir/experiment.cc.o.d"
  "CMakeFiles/mbias_core.dir/manifest.cc.o"
  "CMakeFiles/mbias_core.dir/manifest.cc.o.d"
  "CMakeFiles/mbias_core.dir/runner.cc.o"
  "CMakeFiles/mbias_core.dir/runner.cc.o.d"
  "CMakeFiles/mbias_core.dir/setup.cc.o"
  "CMakeFiles/mbias_core.dir/setup.cc.o.d"
  "CMakeFiles/mbias_core.dir/table.cc.o"
  "CMakeFiles/mbias_core.dir/table.cc.o.d"
  "CMakeFiles/mbias_core.dir/variance.cc.o"
  "CMakeFiles/mbias_core.dir/variance.cc.o.d"
  "libmbias_core.a"
  "libmbias_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbias_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
