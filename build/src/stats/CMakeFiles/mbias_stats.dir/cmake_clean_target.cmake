file(REMOVE_RECURSE
  "libmbias_stats.a"
)
