# Empty compiler generated dependencies file for mbias_stats.
# This may be replaced when dependencies are built.
