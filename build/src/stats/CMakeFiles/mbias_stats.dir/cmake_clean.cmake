file(REMOVE_RECURSE
  "CMakeFiles/mbias_stats.dir/anova.cc.o"
  "CMakeFiles/mbias_stats.dir/anova.cc.o.d"
  "CMakeFiles/mbias_stats.dir/anova2.cc.o"
  "CMakeFiles/mbias_stats.dir/anova2.cc.o.d"
  "CMakeFiles/mbias_stats.dir/ci.cc.o"
  "CMakeFiles/mbias_stats.dir/ci.cc.o.d"
  "CMakeFiles/mbias_stats.dir/density.cc.o"
  "CMakeFiles/mbias_stats.dir/density.cc.o.d"
  "CMakeFiles/mbias_stats.dir/distributions.cc.o"
  "CMakeFiles/mbias_stats.dir/distributions.cc.o.d"
  "CMakeFiles/mbias_stats.dir/regression.cc.o"
  "CMakeFiles/mbias_stats.dir/regression.cc.o.d"
  "CMakeFiles/mbias_stats.dir/sample.cc.o"
  "CMakeFiles/mbias_stats.dir/sample.cc.o.d"
  "CMakeFiles/mbias_stats.dir/signtest.cc.o"
  "CMakeFiles/mbias_stats.dir/signtest.cc.o.d"
  "libmbias_stats.a"
  "libmbias_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbias_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
