
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/anova.cc" "src/stats/CMakeFiles/mbias_stats.dir/anova.cc.o" "gcc" "src/stats/CMakeFiles/mbias_stats.dir/anova.cc.o.d"
  "/root/repo/src/stats/anova2.cc" "src/stats/CMakeFiles/mbias_stats.dir/anova2.cc.o" "gcc" "src/stats/CMakeFiles/mbias_stats.dir/anova2.cc.o.d"
  "/root/repo/src/stats/ci.cc" "src/stats/CMakeFiles/mbias_stats.dir/ci.cc.o" "gcc" "src/stats/CMakeFiles/mbias_stats.dir/ci.cc.o.d"
  "/root/repo/src/stats/density.cc" "src/stats/CMakeFiles/mbias_stats.dir/density.cc.o" "gcc" "src/stats/CMakeFiles/mbias_stats.dir/density.cc.o.d"
  "/root/repo/src/stats/distributions.cc" "src/stats/CMakeFiles/mbias_stats.dir/distributions.cc.o" "gcc" "src/stats/CMakeFiles/mbias_stats.dir/distributions.cc.o.d"
  "/root/repo/src/stats/regression.cc" "src/stats/CMakeFiles/mbias_stats.dir/regression.cc.o" "gcc" "src/stats/CMakeFiles/mbias_stats.dir/regression.cc.o.d"
  "/root/repo/src/stats/sample.cc" "src/stats/CMakeFiles/mbias_stats.dir/sample.cc.o" "gcc" "src/stats/CMakeFiles/mbias_stats.dir/sample.cc.o.d"
  "/root/repo/src/stats/signtest.cc" "src/stats/CMakeFiles/mbias_stats.dir/signtest.cc.o" "gcc" "src/stats/CMakeFiles/mbias_stats.dir/signtest.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/mbias_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
