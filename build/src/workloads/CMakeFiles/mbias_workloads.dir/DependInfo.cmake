
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/bzip.cc" "src/workloads/CMakeFiles/mbias_workloads.dir/bzip.cc.o" "gcc" "src/workloads/CMakeFiles/mbias_workloads.dir/bzip.cc.o.d"
  "/root/repo/src/workloads/coldlib.cc" "src/workloads/CMakeFiles/mbias_workloads.dir/coldlib.cc.o" "gcc" "src/workloads/CMakeFiles/mbias_workloads.dir/coldlib.cc.o.d"
  "/root/repo/src/workloads/gcclike.cc" "src/workloads/CMakeFiles/mbias_workloads.dir/gcclike.cc.o" "gcc" "src/workloads/CMakeFiles/mbias_workloads.dir/gcclike.cc.o.d"
  "/root/repo/src/workloads/gobmk.cc" "src/workloads/CMakeFiles/mbias_workloads.dir/gobmk.cc.o" "gcc" "src/workloads/CMakeFiles/mbias_workloads.dir/gobmk.cc.o.d"
  "/root/repo/src/workloads/h264.cc" "src/workloads/CMakeFiles/mbias_workloads.dir/h264.cc.o" "gcc" "src/workloads/CMakeFiles/mbias_workloads.dir/h264.cc.o.d"
  "/root/repo/src/workloads/hmmer.cc" "src/workloads/CMakeFiles/mbias_workloads.dir/hmmer.cc.o" "gcc" "src/workloads/CMakeFiles/mbias_workloads.dir/hmmer.cc.o.d"
  "/root/repo/src/workloads/lbm.cc" "src/workloads/CMakeFiles/mbias_workloads.dir/lbm.cc.o" "gcc" "src/workloads/CMakeFiles/mbias_workloads.dir/lbm.cc.o.d"
  "/root/repo/src/workloads/libquantum.cc" "src/workloads/CMakeFiles/mbias_workloads.dir/libquantum.cc.o" "gcc" "src/workloads/CMakeFiles/mbias_workloads.dir/libquantum.cc.o.d"
  "/root/repo/src/workloads/mcf.cc" "src/workloads/CMakeFiles/mbias_workloads.dir/mcf.cc.o" "gcc" "src/workloads/CMakeFiles/mbias_workloads.dir/mcf.cc.o.d"
  "/root/repo/src/workloads/milc.cc" "src/workloads/CMakeFiles/mbias_workloads.dir/milc.cc.o" "gcc" "src/workloads/CMakeFiles/mbias_workloads.dir/milc.cc.o.d"
  "/root/repo/src/workloads/perl.cc" "src/workloads/CMakeFiles/mbias_workloads.dir/perl.cc.o" "gcc" "src/workloads/CMakeFiles/mbias_workloads.dir/perl.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/workloads/CMakeFiles/mbias_workloads.dir/registry.cc.o" "gcc" "src/workloads/CMakeFiles/mbias_workloads.dir/registry.cc.o.d"
  "/root/repo/src/workloads/runtime.cc" "src/workloads/CMakeFiles/mbias_workloads.dir/runtime.cc.o" "gcc" "src/workloads/CMakeFiles/mbias_workloads.dir/runtime.cc.o.d"
  "/root/repo/src/workloads/sjeng.cc" "src/workloads/CMakeFiles/mbias_workloads.dir/sjeng.cc.o" "gcc" "src/workloads/CMakeFiles/mbias_workloads.dir/sjeng.cc.o.d"
  "/root/repo/src/workloads/sphinx.cc" "src/workloads/CMakeFiles/mbias_workloads.dir/sphinx.cc.o" "gcc" "src/workloads/CMakeFiles/mbias_workloads.dir/sphinx.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/workloads/CMakeFiles/mbias_workloads.dir/workload.cc.o" "gcc" "src/workloads/CMakeFiles/mbias_workloads.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/mbias_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/mbias_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
