# Empty compiler generated dependencies file for mbias_workloads.
# This may be replaced when dependencies are built.
