file(REMOVE_RECURSE
  "libmbias_workloads.a"
)
