file(REMOVE_RECURSE
  "CMakeFiles/mbias_isa.dir/builder.cc.o"
  "CMakeFiles/mbias_isa.dir/builder.cc.o.d"
  "CMakeFiles/mbias_isa.dir/function.cc.o"
  "CMakeFiles/mbias_isa.dir/function.cc.o.d"
  "CMakeFiles/mbias_isa.dir/instruction.cc.o"
  "CMakeFiles/mbias_isa.dir/instruction.cc.o.d"
  "CMakeFiles/mbias_isa.dir/module.cc.o"
  "CMakeFiles/mbias_isa.dir/module.cc.o.d"
  "CMakeFiles/mbias_isa.dir/opcode.cc.o"
  "CMakeFiles/mbias_isa.dir/opcode.cc.o.d"
  "libmbias_isa.a"
  "libmbias_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbias_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
