file(REMOVE_RECURSE
  "libmbias_isa.a"
)
