# Empty compiler generated dependencies file for mbias_isa.
# This may be replaced when dependencies are built.
