/**
 * @file
 * The mbias command-line tool: run workloads, measure bias, trace
 * causes, and print the survey without writing C++.
 *
 * Usage:
 *   mbias list
 *   mbias fig <id>      render one registered figure (fig3, or 3, or
 *                       the legacy binary name)
 *   mbias table <id>    render one registered table (table2, or 2)
 *   mbias all           render every registered figure/table in order
 *   mbias run      --workload perl [--vendor gcc] [--opt O2]
 *                  [--machine core2like] [--env N] [--link-seed S]
 *                  [--counters]
 *   mbias bias     --workload perl [--factor env|link|both]
 *                  [--setups N] [--machine M] [--vendor V]
 *   mbias campaign --workload perl [--factor env|link|both]
 *                  [--setups N] [--resume] [--out PATH]
 *                  [--aslr-reps K] [--no-store] [--provenance]
 *   mbias analyze  [--store PATH]
 *   mbias obs-summary [--store PATH]
 *   mbias causal   --workload perl [--factor env|link] [--setups N]
 *                  [--explain]
 *   mbias explain  --workload perl --setup SPEC --setup SPEC
 *                  [--figure fig3|fig7] [--json PATH] [--heatmap PATH]
 *                  [--top K]
 *   mbias variance --workload perl [--env N] [--reps K]
 *   mbias survey
 *
 * The shared pipeline flags --jobs/--seed/--resamples/--confidence/
 * --trace/--quiet/--verbose/--no-artifact-cache are parsed once, by
 * the same pipeline::parsePipelineArgs the figure wrapper binaries
 * use, and mean the same thing for every subcommand that consumes
 * them (per-command defaults match the historical ones, e.g. analyze
 * still defaults --resamples to 1000).
 */
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>

#include <unistd.h>

#include "base/logging.hh"
#include "campaign/engine.hh"
#include "campaign/store.hh"
#include "core/bias.hh"
#include "core/causal.hh"
#include "core/conclusion.hh"
#include "core/explain.hh"
#include "core/setup.hh"
#include "core/table.hh"
#include "toolchain/compiler.hh"
#include "toolchain/linker.hh"
#include "toolchain/encoding.hh"
#include "toolchain/loader.hh"
#include "core/manifest.hh"
#include "core/variance.hh"
#include "figures.hh"
#include "lang/asm_workload.hh"
#include "lang/assembler.hh"
#include "lang/disassembler.hh"
#include "lang/fuzzer.hh"
#include "obs/metrics.hh"
#include "pipeline/driver.hh"
#include "pipeline/options.hh"
#include "sim/machine.hh"
#include "survey/analyzer.hh"
#include "workloads/registry.hh"

using namespace mbias;

namespace
{

struct Args
{
    std::string command;

    /** Positional arguments after the command (figure/table ids). */
    std::vector<std::string> positionals;

    /** Command-specific --key [value] options. */
    std::map<std::string, std::string> options;

    /** Every --setup SPEC, in order (the options map keeps only the
     *  last occurrence of a repeated key; explain needs both). */
    std::vector<std::string> setupSpecs;

    /** The shared pipeline flags, parsed by the same code as the
     *  figure wrapper binaries. */
    pipeline::PipelineOptions shared;

    std::string
    get(const std::string &key, const std::string &dflt) const
    {
        auto it = options.find(key);
        return it == options.end() ? dflt : it->second;
    }

    std::uint64_t
    getInt(const std::string &key, std::uint64_t dflt) const
    {
        auto it = options.find(key);
        return it == options.end() ? dflt : std::stoull(it->second);
    }
};

Args
parseArgs(int argc, char **argv)
{
    // One pass of the shared grammar first; whatever it does not
    // recognize (the subcommand, ids, command-specific flags) comes
    // back in order and is interpreted here.
    auto parsed = pipeline::parsePipelineArgs(argc, argv);
    Args args;
    args.shared = std::move(parsed.options);
    const auto &rest = parsed.rest;
    std::size_t i = 0;
    if (i < rest.size() && rest[i].rfind("--", 0) != 0)
        args.command = rest[i++];
    for (; i < rest.size(); ++i) {
        const std::string &a = rest[i];
        if (a.rfind("--", 0) == 0) {
            const std::string key = a.substr(2);
            if (i + 1 < rest.size() && rest[i + 1].rfind("--", 0) != 0)
                args.options[key] = rest[++i];
            else
                args.options[key] = "1"; // boolean flag
            if (key == "setup")
                args.setupSpecs.push_back(args.options[key]);
        } else if (args.options.empty()) {
            args.positionals.push_back(a);
        } else {
            mbias_fatal("unexpected argument: ", a);
        }
    }
    return args;
}

void writeTextFile(const std::filesystem::path &path,
                   const std::string &content);

sim::MachineConfig
machineByName(const std::string &name)
{
    const auto &reg = sim::MachineRegistry::global();
    if (const sim::MachineBackend *b = reg.byName(name))
        return b->config;
    mbias_fatal("unknown machine '", name, "' (try ",
                reg.namesJoined(), ")");
}

toolchain::CompilerVendor
vendorByName(const std::string &name)
{
    if (name == "gcc")
        return toolchain::CompilerVendor::GccLike;
    if (name == "icc")
        return toolchain::CompilerVendor::IccLike;
    mbias_fatal("unknown vendor '", name, "' (try gcc, icc)");
}

toolchain::OptLevel
optByName(const std::string &name)
{
    if (name == "O0")
        return toolchain::OptLevel::O0;
    if (name == "O1")
        return toolchain::OptLevel::O1;
    if (name == "O2")
        return toolchain::OptLevel::O2;
    if (name == "O3")
        return toolchain::OptLevel::O3;
    mbias_fatal("unknown opt level '", name, "' (try O0..O3)");
}

core::SetupSpace
spaceByFactor(const std::string &factor)
{
    core::SetupSpace space;
    if (factor == "env")
        return space.varyEnvSize();
    if (factor == "link")
        return space.varyLinkOrder();
    if (factor == "both")
        return space.varyEnvSize().varyLinkOrder();
    mbias_fatal("unknown factor '", factor, "' (try env, link, both)");
}

core::ExperimentSpec
specFromArgs(const Args &args)
{
    core::ExperimentSpec spec;
    spec.withWorkload(args.get("workload", "perl"))
        .withMachine(machineByName(args.get("machine", "core2like")));
    const auto vendor = vendorByName(args.get("vendor", "gcc"));
    spec.withBaseline({vendor, optByName(args.get("baseline", "O2"))})
        .withTreatment({vendor, optByName(args.get("treatment", "O3"))});
    spec.withScale(unsigned(args.getInt("scale", 1)));
    return spec;
}

const char *
kindName(pipeline::FigureSpec::Kind kind)
{
    switch (kind) {
      case pipeline::FigureSpec::Kind::Figure:
        return "figure";
      case pipeline::FigureSpec::Kind::Table:
        return "table";
      case pipeline::FigureSpec::Kind::Ablation:
        return "ablation";
    }
    return "?";
}

/** The workload table: builtins first, then anything registered at
 *  runtime (.asm manifests via --asm-dir, fuzzer programs), with the
 *  provenance of each. */
void
printWorkloads()
{
    core::TextTable t({"workload", "archetype", "source", "description"});
    for (const auto &e : workloads::Registry::instance().entries())
        t.addRow({e.workload->name(), e.workload->archetype(), e.source,
                  e.workload->description()});
    std::printf("%s\n", t.str().c_str());
    // Which interpreter these workloads will run on (provenance for
    // perf deltas between hosts/builds; results are tier-invariant),
    // and which machine backends are registered — with their core
    // models, since tier availability follows the core model.
    std::printf("sim tier: %s\n", sim::activeSimTierDescription().c_str());
    std::string backends;
    for (const auto &b : sim::MachineRegistry::global().backends()) {
        if (!backends.empty())
            backends += ", ";
        backends += b.config.name + " (" + b.coreModel + ")";
    }
    std::printf("machine backends: %s\n\n", backends.c_str());
}

int
cmdWorkloads()
{
    printWorkloads();
    return 0;
}

int
cmdList()
{
    printWorkloads();

    core::TextTable figs({"id", "kind", "binary", "description"});
    for (const auto &spec : pipeline::FigureRegistry::instance().all())
        figs.addRow({spec.id, kindName(spec.kind), spec.binaryName,
                     spec.title});
    std::printf("%s\n", figs.str().c_str());
    std::printf("render with `mbias fig <id>`, `mbias table <id>`, or "
                "`mbias all [--jobs N]`\n\n");
    std::printf("machines: %s\n",
                sim::MachineRegistry::global().namesJoined().c_str());
    std::printf("vendors : gcc, icc   opt levels: O0..O3\n");
    return 0;
}

/**
 * `mbias fig 3` / `mbias fig fig3` / `mbias table 1` /
 * `mbias fig fig3_env_size_core2` all name the same spec: bare
 * numbers get the command's prefix, everything else is looked up
 * as an id or legacy binary name.
 */
std::string
normalizeFigureId(const std::string &prefix, const std::string &id)
{
    if (!id.empty() && id.find_first_not_of("0123456789") ==
                           std::string::npos)
        return prefix + id;
    return id;
}

int
cmdFigure(const Args &args, const std::string &prefix)
{
    if (args.positionals.empty())
        mbias_fatal("usage: mbias ", prefix,
                    " <id> (see `mbias list`)");
    const std::string id =
        normalizeFigureId(prefix, args.positionals.front());
    const pipeline::FigureSpec *spec =
        pipeline::FigureRegistry::instance().find(id);
    if (!spec)
        mbias_fatal("unknown figure/table '", id,
                    "' (see `mbias list`)");
    return pipeline::runFigure(*spec, args.shared);
}

int
cmdAll(const Args &args)
{
    return pipeline::runAll(args.shared);
}

int
cmdRun(const Args &args)
{
    core::ExperimentSpec spec = specFromArgs(args);
    spec.baseline = {vendorByName(args.get("vendor", "gcc")),
                     optByName(args.get("opt", "O2"))};
    core::ExperimentRunner runner(spec);
    core::ExperimentSetup setup;
    setup.envBytes = args.getInt("env", 0);
    if (args.options.count("link-seed"))
        setup.linkOrder =
            toolchain::LinkOrder::shuffled(args.getInt("link-seed", 0));

    auto rr = runner.runSide(spec.baseline, setup);
    std::printf("%s %s at %s on %s\n", spec.workload.c_str(),
                spec.baseline.str().c_str(), setup.str().c_str(),
                spec.machine.name.c_str());
    std::printf("  result       = %llu\n",
                (unsigned long long)rr.result);
    std::printf("  instructions = %llu\n",
                (unsigned long long)rr.instructions());
    std::printf("  cycles       = %llu (CPI %.3f)\n",
                (unsigned long long)rr.cycles(), rr.cpi());
    if (args.options.count("counters"))
        std::printf("%s", rr.counters.str().c_str());
    if (args.options.count("manifest"))
        std::printf("\n%s",
                    core::SetupManifest::describe(spec, setup).c_str());
    return 0;
}

int
cmdBias(const Args &args)
{
    core::ExperimentSpec spec = specFromArgs(args);
    auto space = spaceByFactor(args.get("factor", "both"));
    core::SetupRandomizer randomizer(space, args.shared.seedOr(42));
    const unsigned n = unsigned(args.getInt("setups", 31));
    core::BiasAnalyzer analyzer(0.01, args.shared.confidenceOr(0.95));
    if (const int resamples = args.shared.resamplesOr(0))
        analyzer.withBootstrap(resamples, args.shared.seedOr(42),
                               args.shared.jobs);
    auto report = analyzer.analyze(spec, randomizer, n);
    std::printf("%s\n", report.str().c_str());
    auto check = core::ConclusionChecker().check(report);
    std::printf("%s", check.str().c_str());
    return 0;
}

int
cmdCampaign(const Args &args)
{
    campaign::CampaignSpec cspec;
    cspec.withExperiment(specFromArgs(args))
        .withSpace(spaceByFactor(args.get("factor", "both")),
                   unsigned(args.getInt("setups", 31)))
        .withSeed(args.shared.seedOr(42));
    if (args.options.count("aslr-reps"))
        cspec.withPlan({campaign::RepetitionPlan::Kind::AslrRandomized,
                        unsigned(args.getInt("aslr-reps", 7))});

    campaign::CampaignOptions opts;
    opts.jobs = args.shared.jobs;
    opts.outPath = args.options.count("no-store")
                       ? std::string()
                       : args.get("out", "results/campaign.jsonl");
    opts.resume = args.options.count("resume") > 0;
    opts.tracePath = args.shared.tracePath;
    opts.artifactCache = args.shared.artifactCache;
    opts.confidence = args.shared.confidenceOr(0.95);
    opts.resamples = args.shared.resamplesOr(0);
    // The in-place progress line is for humans watching a terminal;
    // logs and pipes get clean output.
    opts.progress = loggingEnabled() && isatty(fileno(stderr));

    campaign::CampaignEngine engine(cspec, opts);
    auto report = engine.run();
    std::printf("%s", report.str().c_str());
    auto check = core::ConclusionChecker().check(report.bias);
    std::printf("%s", check.str().c_str());
    if (!opts.outPath.empty())
        std::printf("result store    : %s (rerun with --resume to "
                    "extend or recover; inspect with obs-summary)\n",
                    opts.outPath.c_str());
    if (!opts.tracePath.empty())
        std::printf("trace           : %s (open in Perfetto: "
                    "https://ui.perfetto.dev)\n",
                    opts.tracePath.c_str());
    if (args.shared.verbose) {
        std::printf("metrics:\n%s", report.metrics.str().c_str());
        std::printf("provenance:\n%s", report.provenance.str().c_str());
    } else if (args.options.count("provenance")) {
        std::printf("provenance:\n%s", report.provenance.str().c_str());
    }
    return 0;
}

int
cmdAnalyze(const Args &args)
{
    const std::string path =
        args.get("store", args.get("out", "results/campaign.jsonl"));
    if (FILE *f = std::fopen(path.c_str(), "rb"))
        std::fclose(f);
    else
        mbias_fatal("no result store at '", path,
                    "' (run `mbias campaign --out ", path,
                    "` first, or pass --store)");
    campaign::AnalyzeOptions opts;
    opts.jobs = args.shared.jobs;
    opts.resamples = args.shared.resamplesOr(1000);
    opts.confidence = args.shared.confidenceOr(0.95);
    opts.seed = args.shared.seedOr(42);
    obs::Registry metrics;
    if (args.shared.verbose)
        opts.metrics = &metrics;
    const auto analysis = campaign::analyzeStore(path, opts);
    std::printf("%s", analysis.str().c_str());
    if (args.shared.verbose)
        std::printf("metrics:\n%s", metrics.snapshot().str().c_str());
    return 0;
}

int
cmdObsSummary(const Args &args)
{
    const std::string path =
        args.get("store", args.get("out", "results/campaign.jsonl"));
    const auto summary = campaign::summarizeStore(path);
    if (summary.records == 0 && summary.provenanceJson.empty())
        mbias_fatal("no result store at '", path,
                    "' (run `mbias campaign --out ", path,
                    "` first, or pass --store)");
    std::printf("%s", summary.str().c_str());
    return 0;
}

int
cmdCausal(const Args &args)
{
    core::ExperimentSpec spec = specFromArgs(args);
    auto space = spaceByFactor(args.get("factor", "env"));
    auto setups = space.grid(unsigned(args.getInt("setups", 32)));
    core::CausalAnalyzer analyzer;
    if (args.options.count("explain"))
        analyzer.withMechanismEvidence();
    auto report = analyzer.analyze(spec, setups);
    std::printf("%s", report.str().c_str());
    if (!report.mechanismEvidence.empty())
        std::printf("%s", report.mechanismEvidence.c_str());
    return 0;
}

/**
 * `mbias explain`: diff the same workload under two setups and rank
 * the microarchitectural mechanisms behind the cycle delta.  The
 * setups come from two --setup specs, or from a --figure preset:
 * fig3's link-order pair or fig7's env-size pair (both perl on
 * core2like, matching those figures' sweeps).
 */
int
cmdExplain(const Args &args)
{
    core::ExperimentSpec spec = specFromArgs(args);
    spec.baseline = {vendorByName(args.get("vendor", "gcc")),
                     optByName(args.get("opt", "O2"))};

    std::vector<std::string> specs = args.setupSpecs;
    const std::string figure = args.get("figure", "");
    if (!figure.empty()) {
        if (!specs.empty())
            mbias_fatal("--figure and --setup are mutually exclusive");
        if (figure == "fig3" || figure == "3") {
            // fig3's factor, link order, on fig3's workload: the
            // shuffle perturbs the gshare index streams (the suite's
            // code fits the 32 KiB icache, so predictor aliasing, not
            // capacity, carries the link-order effect on core2like).
            specs = {"link=given", "link=seed:3"};
        } else if (figure == "fig7" || figure == "7") {
            // fig7's env-size factor on its most env-sensitive
            // workload: hmmer's stack-resident DP rows make the
            // stack-alignment line splits plain.
            specs = {"env=0", "env=300"};
            if (!args.options.count("workload"))
                spec.withWorkload("hmmer");
        } else {
            mbias_fatal("unknown --figure '", figure,
                        "' (presets: fig3 = link-order pair, "
                        "fig7 = env-size pair)");
        }
    }
    if (specs.size() != 2)
        mbias_fatal("mbias explain needs exactly two --setup specs "
                    "(e.g. --setup env=0 --setup env=3072), or "
                    "--figure fig3|fig7");

    core::ExperimentSetup a, b;
    std::string error;
    if (!parseSetupSpec(specs[0], a, error))
        mbias_fatal("bad --setup '", specs[0], "': ", error);
    if (!parseSetupSpec(specs[1], b, error))
        mbias_fatal("bad --setup '", specs[1], "': ", error);

    const auto report = core::explainSetupPair(spec, a, b);
    std::printf("%s", report.str(unsigned(args.getInt("top", 8))).c_str());
    std::printf("\n%s", report.heatmaps().c_str());

    const std::string json = args.get("json", "");
    if (!json.empty()) {
        writeTextFile(json, report.toJson() + "\n");
        std::fprintf(stderr, "wrote %s\n", json.c_str());
    }
    const std::string heat = args.get("heatmap", "");
    if (!heat.empty()) {
        writeTextFile(heat, report.heatmaps());
        std::fprintf(stderr, "wrote %s\n", heat.c_str());
    }
    // With --trace, the per-set deltas also land in the session's
    // trace file as counter tracks next to the run spans.
    report.emitCounterTracks();
    return 0;
}

int
cmdVariance(const Args &args)
{
    core::ExperimentSpec spec = specFromArgs(args);
    core::ExperimentSetup home;
    home.envBytes = args.getInt("env", 300);
    auto peers = core::SetupSpace().varyEnvSize().grid(
        unsigned(args.getInt("setups", 16)));
    core::VarianceAnalyzer analyzer(unsigned(args.getInt("reps", 15)),
                                    0xfeed,
                                    args.shared.confidenceOr(0.95));
    auto report = analyzer.analyze(spec, home, peers);
    std::printf("%s", report.str().c_str());
    return 0;
}

int
cmdProfile(const Args &args)
{
    core::ExperimentSpec spec = specFromArgs(args);
    spec.baseline = {vendorByName(args.get("vendor", "gcc")),
                     optByName(args.get("opt", "O2"))};
    const auto &w = workloads::findWorkload(spec.workload);
    toolchain::Compiler cc(spec.baseline.vendor, spec.baseline.level);
    auto objs = cc.compile(w.build(spec.workloadConfig));
    toolchain::Linker linker;
    toolchain::LinkOrder order =
        args.options.count("link-seed")
            ? toolchain::LinkOrder::shuffled(args.getInt("link-seed", 0))
            : toolchain::LinkOrder::asGiven();
    auto prog = linker.link(objs, order);
    toolchain::LoaderConfig lc;
    lc.envBytes = args.getInt("env", 0);
    auto image = toolchain::Loader::load(std::move(prog), lc);

    sim::Machine machine(spec.machine);
    sim::Profile profile;
    auto rr = machine.run(image, sim::Machine::kDefaultRunBudget,
                          sim::NoiseModel::none(), &profile);
    std::printf("%s %s at env=%llu link=%s on %s: %llu cycles\n\n",
                spec.workload.c_str(), spec.baseline.str().c_str(),
                (unsigned long long)lc.envBytes, order.str().c_str(),
                spec.machine.name.c_str(),
                (unsigned long long)rr.cycles());
    std::printf("%s", profile.str(unsigned(args.getInt("top", 10))).c_str());
    return 0;
}

int
cmdDisasm(const Args &args)
{
    core::ExperimentSpec spec = specFromArgs(args);
    const auto &w = workloads::findWorkload(spec.workload);
    toolchain::Compiler cc(vendorByName(args.get("vendor", "gcc")),
                           optByName(args.get("opt", "O2")));
    auto objs = cc.compile(w.build(spec.workloadConfig));
    toolchain::Linker linker;
    toolchain::LinkOrder order =
        args.options.count("link-seed")
            ? toolchain::LinkOrder::shuffled(args.getInt("link-seed", 0))
            : toolchain::LinkOrder::asGiven();
    auto prog = linker.link(objs, order);

    std::printf("; %s %s-%s, link %s: %zu instructions, code "
                "[0x%llx, 0x%llx), data [0x%llx, 0x%llx)\n",
                spec.workload.c_str(),
                args.get("vendor", "gcc").c_str(),
                args.get("opt", "O2").c_str(), order.str().c_str(),
                prog.code.size(), (unsigned long long)prog.codeBase,
                (unsigned long long)prog.codeEnd,
                (unsigned long long)prog.dataBase,
                (unsigned long long)prog.dataEnd);
    const std::string only = args.get("function", "");
    for (const auto &lf : prog.functions) {
        if (!only.empty() && lf.name != only)
            continue;
        std::printf("\n%s:  ; base 0x%llx, %llu bytes\n",
                    lf.name.c_str(), (unsigned long long)lf.base,
                    (unsigned long long)lf.bytes);
        for (std::uint32_t i = lf.entryIdx; i < prog.code.size(); ++i) {
            const auto &pi = prog.code[i];
            if (pi.pc >= lf.base + lf.bytes)
                break;
            const auto bytes = toolchain::encode(pi, prog);
            std::string hex;
            for (auto byte : bytes) {
                char buf[4];
                std::snprintf(buf, sizeof(buf), "%02x", byte);
                hex += buf;
            }
            std::printf("  %06llx  %-22s %s\n",
                        (unsigned long long)pi.pc, hex.c_str(),
                        pi.inst.str().c_str());
        }
    }
    for (const auto &g : prog.globals)
        std::printf("; global %-12s 0x%llx (%llu bytes)\n",
                    g.name.c_str(), (unsigned long long)g.addr,
                    (unsigned long long)g.size);
    return 0;
}

void
writeTextFile(const std::filesystem::path &path,
              const std::string &content)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        mbias_fatal("cannot write '", path.string(), "'");
    out << content;
}

/** The manifest sidecar of one dumped/fuzzed .asm asset. */
std::string
manifestText(const workloads::Workload &w, const std::string &name,
             const std::string &asm_file, bool link_runtime,
             std::uint64_t expect, const lang::FuzzKnobs *knobs)
{
    char buf[64];
    std::string s;
    s += "# generated by `mbias asm dump` / `mbias fuzz`\n";
    s += "[workload]\n";
    s += "name = \"" + name + "\"\n";
    s += "archetype = \"" + w.archetype() + "\"\n";
    s += "description = \"" + w.description() + "\"\n";
    s += "asm = \"" + asm_file + "\"\n";
    s += "entry = \"main\"\n";
    s += std::string("link_runtime = ") +
         (link_runtime ? "true" : "false") + "\n";
    s += "scale = 1\n";
    s += "seed = 12345\n";
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  (unsigned long long)expect);
    s += std::string("expect = ") + buf + "\n";
    if (knobs) {
        s += "\n[factors]\n";
        s += "kernels = " + std::to_string(knobs->kernels) + "\n";
        s += "body_ops = " + std::to_string(knobs->bodyOps) + "\n";
        s += "inner_trips = " + std::to_string(knobs->innerTrips) + "\n";
        s += "outer_trips = " + std::to_string(knobs->outerTrips) + "\n";
        s += "working_set = " + std::to_string(knobs->wsWords * 8) + "\n";
        s += "branch_entropy = " + std::to_string(knobs->entropyBits) +
             "\n";
        s += "pad_nops = " + std::to_string(knobs->padNops) + "\n";
        s += "stack_slots = " + std::to_string(knobs->stackSlots) + "\n";
        s += std::string("stores = ") +
             (knobs->doStores ? "true" : "false") + "\n";
    }
    return s;
}

int
cmdAsm(const Args &args)
{
    const std::string action =
        args.positionals.empty() ? "" : args.positionals[0];
    if (action == "check" || action == "dis") {
        if (args.positionals.size() < 2)
            mbias_fatal("mbias asm ", action, " needs at least one "
                        ".asm file");
        int rc = 0;
        for (std::size_t i = 1; i < args.positionals.size(); ++i) {
            const std::string &file = args.positionals[i];
            const auto res = lang::assembleFile(file);
            if (!res.ok()) {
                std::fprintf(stderr, "%s",
                             res.errorText(file).c_str());
                rc = 1;
                continue;
            }
            if (action == "dis") {
                std::printf("%s", lang::disassemble(res.modules).c_str());
                continue;
            }
            std::size_t funcs = 0, insts = 0;
            for (const auto &m : res.modules) {
                funcs += m.functions().size();
                for (const auto &f : m.functions())
                    insts += f.insts().size();
            }
            std::printf("%s: OK (%zu modules, %zu functions, %zu "
                        "instructions)\n",
                        file.c_str(), res.modules.size(), funcs, insts);
        }
        return rc;
    }
    if (action == "dump") {
        // Writes <name>.asm + <name>.toml for builtin kernels.  The
        // builtin build() already links the runtime, so the asset is
        // self-contained (link_runtime = false) and its manifest name
        // gets an _asm suffix to avoid shadowing the builtin.
        const std::filesystem::path dir =
            args.get("out", "workloads/asm");
        std::filesystem::create_directories(dir);
        std::vector<const workloads::Workload *> todo;
        const std::string only = args.get("workload", "");
        for (const auto *w : workloads::suite())
            if (only.empty() || w->name() == only)
                todo.push_back(w);
        if (todo.empty())
            mbias_fatal("no builtin workload named '", only, "'");
        for (const auto *w : todo) {
            const std::string asm_file = w->name() + ".asm";
            writeTextFile(dir / asm_file,
                          lang::disassemble(w->build({})));
            writeTextFile(dir / (w->name() + ".toml"),
                          manifestText(*w, w->name() + "_asm", asm_file,
                                       false, w->referenceResult({}),
                                       nullptr));
            std::printf("wrote %s and %s.toml\n",
                        (dir / asm_file).string().c_str(),
                        (dir / w->name()).string().c_str());
        }
        return 0;
    }
    mbias_fatal("usage: mbias asm check|dis <file.asm>... | "
                "mbias asm dump [--workload W] [--out DIR]");
}

int
cmdFuzz(const Args &args)
{
    lang::FuzzConfig cfg;
    // --seed is one of the shared pipeline flags, so it lands in
    // args.shared rather than the subcommand options.
    cfg.seed = args.shared.seedOr(1);
    cfg.count = unsigned(args.getInt("count", 64));
    const std::string out = args.get("out", "");
    if (out.empty()) {
        core::TextTable t({"program", "kernels", "body", "trips",
                           "ws bytes", "entropy", "stack", "stores"});
        for (unsigned i = 0; i < cfg.count; ++i) {
            const auto p = lang::fuzzProgram(cfg, i);
            const auto &k = p.knobs;
            t.addRow({p.name, std::to_string(k.kernels),
                      std::to_string(k.bodyOps),
                      std::to_string(k.innerTrips) + "x" +
                          std::to_string(k.outerTrips),
                      std::to_string(k.wsWords * 8),
                      std::to_string(k.entropyBits) + "b",
                      std::to_string(k.stackSlots),
                      k.doStores ? "yes" : "no"});
        }
        std::printf("%s\n", t.str().c_str());
        std::printf("write the corpus with --out DIR (one .asm + .toml "
                    "per program)\n");
        return 0;
    }
    const std::filesystem::path dir = out;
    std::filesystem::create_directories(dir);
    for (unsigned i = 0; i < cfg.count; ++i) {
        auto prog = lang::fuzzProgram(cfg, i);
        const std::string name = prog.name;
        const lang::FuzzKnobs knobs = prog.knobs;
        writeTextFile(dir / (name + ".asm"),
                      lang::disassemble(prog.modules));
        auto w = lang::makeFuzzWorkload(std::move(prog));
        writeTextFile(dir / (name + ".toml"),
                      manifestText(*w, name, name + ".asm", true,
                                   w->referenceResult({}), &knobs));
    }
    std::printf("wrote %u programs (seed %llu) to %s\n", cfg.count,
                (unsigned long long)cfg.seed, dir.string().c_str());
    return 0;
}

int
cmdSurvey()
{
    survey::SurveyAnalyzer analyzer(survey::SurveyDatabase::bundled());
    core::TextTable t({"venue", "papers", "eval perf", "variability",
                       "env", "link", "bias"});
    for (const auto &s : analyzer.summarize())
        t.addRow({s.venue, std::to_string(s.papers),
                  std::to_string(s.evaluatePerformance),
                  std::to_string(s.reportVariability),
                  std::to_string(s.reportEnvironment),
                  std::to_string(s.reportLinkOrder),
                  std::to_string(s.addressBias)});
    std::printf("%s", t.str().c_str());
    return 0;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: mbias <command> [options]\n"
        "  list                           workloads, figures, tables\n"
        "  fig      <id>                  render one figure (fig3, 3,\n"
        "           or a legacy binary name)\n"
        "  table    <id>                  render one table\n"
        "  all                            render every figure/table\n"
        "  run      --workload W [--opt O2] [--env N] [--link-seed S]\n"
        "           [--machine M] [--vendor V] [--counters]\n"
        "           [--manifest]\n"
        "  bias     --workload W [--factor env|link|both] [--setups N]\n"
        "  campaign --workload W [--factor env|link|both] [--setups N]\n"
        "           [--resume] [--out PATH] [--aslr-reps K]\n"
        "           [--no-store] [--provenance]\n"
        "  analyze  [--store PATH]\n"
        "  obs-summary [--store PATH]\n"
        "  causal   --workload W [--factor env|link] [--setups N]\n"
        "           [--explain]  (ship per-set mechanism evidence)\n"
        "  explain  --workload W --setup SPEC --setup SPEC\n"
        "           [--figure fig3|fig7] [--json PATH]\n"
        "           [--heatmap PATH] [--top K]\n"
        "           SPEC = env=BYTES,link=given|alpha|seed:N\n"
        "  variance --workload W [--env N] [--reps K]\n"
        "  profile  --workload W [--opt O] [--env N] [--top K]\n"
        "  disasm   --workload W [--opt O] [--link-seed S]\n"
        "           [--function F]\n"
        "  workloads                      just the workload table\n"
        "  asm      check <f.asm>...      assemble, report diagnostics\n"
        "  asm      dis <f.asm>           print the canonical listing\n"
        "  asm      dump [--workload W] [--out DIR]   write .asm+.toml\n"
        "           assets for builtin kernels (default workloads/asm)\n"
        "  fuzz     [--seed S] [--count N] [--out DIR]  seeded workload\n"
        "           corpus; without --out prints the knob table\n"
        "  survey\n"
        "every command accepts --asm-dir DIR to load *.toml workload\n"
        "manifests (and their .asm) before running\n"
        "shared (every command and figure binary): [--jobs N]\n"
        "        [--seed S] [--resamples R] [--confidence C]\n"
        "        [--trace T.json] [--no-artifact-cache]\n"
        "        --quiet (silence warn/inform + progress line)\n"
        "        --verbose (force logging on; campaign prints metrics\n"
        "        and provenance)\n");
    return 2;
}

int
dispatch(const Args &args)
{
    if (args.command == "list")
        return cmdList();
    if (args.command == "workloads")
        return cmdWorkloads();
    if (args.command == "asm")
        return cmdAsm(args);
    if (args.command == "fuzz")
        return cmdFuzz(args);
    if (args.command == "fig")
        return cmdFigure(args, "fig");
    if (args.command == "table")
        return cmdFigure(args, "table");
    if (args.command == "all")
        return cmdAll(args);
    if (args.command == "run")
        return cmdRun(args);
    if (args.command == "bias")
        return cmdBias(args);
    if (args.command == "campaign")
        return cmdCampaign(args);
    if (args.command == "analyze")
        return cmdAnalyze(args);
    if (args.command == "obs-summary")
        return cmdObsSummary(args);
    if (args.command == "causal")
        return cmdCausal(args);
    if (args.command == "explain")
        return cmdExplain(args);
    if (args.command == "variance")
        return cmdVariance(args);
    if (args.command == "profile")
        return cmdProfile(args);
    if (args.command == "disasm")
        return cmdDisasm(args);
    if (args.command == "survey")
        return cmdSurvey();
    return usage();
}

} // namespace

int
main(int argc, char **argv)
{
    const Args args = parseArgs(argc, argv);
    pipeline::applyLogging(args.shared);
    mbias::figures::registerAll();
    // One process-wide trace session for every subcommand, opened
    // before the --asm-dir load so asm.load spans land in the file
    // too.  The campaign engine owns its own session (it stops the
    // tracer at a deterministic point before writing the store), so
    // `campaign` keeps its historical behavior.
    pipeline::ScopedTraceSession trace(args.command == "campaign"
                                           ? std::string()
                                           : args.shared.tracePath);
    // Runtime workloads load before dispatch, so every subcommand
    // (list, run, bias, campaign, ...) sees them by name.
    if (args.options.count("asm-dir"))
        lang::loadAsmDirectory(args.options.at("asm-dir"));
    const int rc = dispatch(args);
    // --verbose surfaces the process-wide metrics (asm.load,
    // asm.assemble, fuzz.generate, ...) for the subcommands that do
    // not print a registry of their own.
    if (args.shared.verbose && args.command != "campaign" &&
        args.command != "analyze") {
        const auto metrics = obs::Registry::global().snapshot();
        if (!metrics.empty())
            std::printf("metrics:\n%s", metrics.str().c_str());
    }
    return rc;
}
