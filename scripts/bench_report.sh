#!/bin/sh
# Merges the per-area benchmark reports (results/BENCH_*.json) into one
# trajectory file, results/BENCH_trajectory.json: one row per PR (keyed
# by commit), each carrying the headline numbers of every report plus
# the host core count, so numbers measured on different machines are
# never compared silently.  Re-running on the same commit replaces that
# commit's row; rows from earlier PRs are kept, so the file accumulates
# the repo's performance trajectory over the PR stack.
#
# Usage: scripts/bench_report.sh
set -e

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"
OUT=results/BENCH_trajectory.json

if ! command -v jq >/dev/null 2>&1; then
    echo "bench_report: jq not found; skipping trajectory merge" >&2
    exit 0
fi

COMMIT="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
TITLE="$(git log -1 --pretty=%s 2>/dev/null || echo unknown)"
CORES="$(nproc 2>/dev/null || echo 1)"

row="$(jq -n --arg commit "$COMMIT" --arg title "$TITLE" \
          --argjson cores "$CORES" \
          '{commit: $commit, title: $title, host_cores: $cores,
            reports: {}}')"

# Headline metrics per report: every top-level "speedup", plus the sim
# report's per-tier ratios and record/replay repetition speedups.
for f in results/BENCH_*.json; do
    [ -f "$f" ] || continue
    base="$(basename "$f")"
    [ "$base" = "BENCH_trajectory.json" ] && continue
    summary="$(jq '{speedup: (.speedup? // null)}
        + (if .interpreter? then {
            perl_trace_vs_reference:
                .interpreter.perl.trace_vs_reference,
            straightline_trace_vs_reference:
                .interpreter.straightline.trace_vs_reference
          } else {} end)
        + (if .noisy_repetition? then {
            noisy_repetition_speedups:
                (.noisy_repetition | map_values(.speedup))
          } else {} end)
        + (if .backends? then {
            backend_fast_vs_reference:
                (.backends | map_values(.fast_vs_reference))
          } else {} end)' "$f")" || continue
    row="$(printf '%s' "$row" |
        jq --arg k "$base" --argjson v "$summary" '.reports[$k] = $v')"
done

if [ -f "$OUT" ]; then
    prior="$(jq '.rows // []' "$OUT")"
else
    prior='[]'
fi
printf '%s' "$prior" | jq --argjson row "$row" --arg commit "$COMMIT" '
    {generated_by: "scripts/bench_report.sh",
     rows: (map(select(.commit != $commit)) + [$row])}' > "$OUT"
echo "bench trajectory: $OUT"
