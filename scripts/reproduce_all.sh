#!/bin/sh
# Reproduces everything: build, full test suite, every table/figure
# harness, and the examples.  Outputs are written to results/.
#
# Usage: scripts/reproduce_all.sh [build-dir]
set -e

BUILD="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

echo "== configure & build =="
cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"

mkdir -p results

echo "== tests =="
ctest --test-dir "$BUILD" 2>&1 | tee results/test_output.txt

echo "== tables & figures =="
: > results/bench_output.txt
for b in "$BUILD"/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    echo "---- $(basename "$b") ----" | tee -a results/bench_output.txt
    "$b" 2>&1 | tee -a results/bench_output.txt
done

echo "== examples =="
: > results/examples_output.txt
for e in "$BUILD"/examples/*; do
    [ -f "$e" ] && [ -x "$e" ] || continue
    echo "---- $(basename "$e") ----" | tee -a results/examples_output.txt
    "$e" 2>&1 | tee -a results/examples_output.txt
done

echo "All outputs are in results/.  Compare against EXPERIMENTS.md."
