#!/bin/sh
# Reproduces everything: build, full test suite, every table/figure
# harness, and the examples.  Outputs are written to results/.
#
# Usage: scripts/reproduce_all.sh [build-dir]
set -e

BUILD="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

echo "== configure & build =="
cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"

mkdir -p results

echo "== tests =="
ctest --test-dir "$BUILD" 2>&1 | tee results/test_output.txt

JOBS="$(nproc 2>/dev/null || echo 1)"

echo "== tables & figures =="
# Every figure/table renders through the one registry-driven pipeline
# entry point; results are bitwise independent of the job count, so
# parallelism is free here.  The per-figure wrapper binaries in
# $BUILD/bench/ still exist (same bytes, one figure each) for anyone
# chasing a single figure.
start="$(date +%s.%N)"
"$BUILD"/tools/mbias all --jobs "$JOBS" 2>&1 \
    | tee results/bench_output.txt
end="$(date +%s.%N)"
ALL_SECONDS="$(echo "$end $start" | awk '{print $1-$2}')"

# The campaign-heavy figures print their merged execution metrics
# (cache hits, queue waits, task latencies) as one `[metrics] {...}`
# line each; lift those out of the transcript, keyed by the section
# headers `mbias all` prints between figures.
awk -v jobs="$JOBS" -v wall="$ALL_SECONDS" '
    /^---- .* ----$/ { section = $2; next }
    /^\[metrics\] /  { sub(/^\[metrics\] /, "");
                       metrics[section] = $0;
                       if (!(section in seen)) { order[++n] = section;
                                                 seen[section] = 1 } }
    END {
        printf "{\n  \"jobs\": %s,\n  \"all_wall_seconds\": %s,\n", \
               jobs, wall
        printf "  \"figures\": [\n"
        for (i = 1; i <= n; i++)
            printf "    {\"figure\": \"%s\", \"metrics\": %s}%s\n", \
                   order[i], metrics[order[i]], i < n ? "," : ""
        printf "  ]\n}\n"
    }' results/bench_output.txt > results/BENCH_campaign.json
echo "campaign harness timings: results/BENCH_campaign.json"

echo "== microbenchmarks =="
# Prints progress on stderr and one JSON document on stdout: the
# artifact-cache x interpreter throughput matrix.
"$BUILD"/bench/microbench_sim_throughput --jobs "$JOBS" \
    2>&1 >results/BENCH_sim.json | tee -a results/bench_output.txt
echo "sim throughput: results/BENCH_sim.json" \
    | tee -a results/bench_output.txt
# Same shape for the stats engine: store-read and bootstrap
# throughput, serial reference vs fast arms, bitwise-checked.
"$BUILD"/bench/microbench_stats_throughput --jobs "$JOBS" \
    2>&1 >results/BENCH_stats.json | tee -a results/bench_output.txt
echo "stats throughput: results/BENCH_stats.json" \
    | tee -a results/bench_output.txt
# Fold every BENCH_*.json headline into the per-PR trajectory table.
scripts/bench_report.sh | tee -a results/bench_output.txt

echo "== examples =="
: > results/examples_output.txt
for e in "$BUILD"/examples/*; do
    [ -f "$e" ] && [ -x "$e" ] || continue
    echo "---- $(basename "$e") ----" | tee -a results/examples_output.txt
    "$e" 2>&1 | tee -a results/examples_output.txt
done

echo "All outputs are in results/.  Compare against EXPERIMENTS.md."
