#!/bin/sh
# Reproduces everything: build, full test suite, every table/figure
# harness, and the examples.  Outputs are written to results/.
#
# Usage: scripts/reproduce_all.sh [build-dir]
set -e

BUILD="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

echo "== configure & build =="
cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"

mkdir -p results

echo "== tests =="
ctest --test-dir "$BUILD" 2>&1 | tee results/test_output.txt

JOBS="$(nproc 2>/dev/null || echo 1)"

echo "== tables & figures =="
: > results/bench_output.txt
: > results/BENCH_campaign.json
printf '{\n  "jobs": %s,\n  "figures": [\n' "$JOBS" \
    >> results/BENCH_campaign.json
first=1
for b in "$BUILD"/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    name="$(basename "$b")"
    echo "---- $name ----" | tee -a results/bench_output.txt
    # Campaign-engine harnesses take --jobs; results are bitwise
    # independent of the job count, so parallelism is free here.
    case "$name" in
      fig3_env_size_core2|fig7_setup_randomization|fig11_layout_randomization)
        start="$(date +%s.%N)"
        "$b" --jobs "$JOBS" 2>&1 | tee -a results/bench_output.txt
        end="$(date +%s.%N)"
        # The harness prints its merged execution metrics (cache hits,
        # queue waits, task latencies) as one `[metrics] {...}` line;
        # embed that object next to the wall time.
        metrics="$(grep '^\[metrics\] ' results/bench_output.txt \
            | tail -n 1 | sed 's/^\[metrics\] //')"
        [ -n "$metrics" ] || metrics='{}'
        [ "$first" = 1 ] || printf ',\n' >> results/BENCH_campaign.json
        first=0
        printf '    {"figure": "%s", "jobs": %s, "wall_seconds": %s, "metrics": %s}' \
            "$name" "$JOBS" "$(echo "$end $start" | awk '{print $1-$2}')" \
            "$metrics" >> results/BENCH_campaign.json
        ;;
      microbench_sim_throughput)
        # Prints progress on stderr and one JSON document on stdout:
        # the artifact-cache x interpreter throughput matrix.
        "$b" --jobs "$JOBS" 2>&1 >results/BENCH_sim.json \
            | tee -a results/bench_output.txt
        echo "sim throughput: results/BENCH_sim.json" \
            | tee -a results/bench_output.txt
        ;;
      microbench_stats_throughput)
        # Same shape for the stats engine: store-read and bootstrap
        # throughput, serial reference vs fast arms, bitwise-checked.
        "$b" --jobs "$JOBS" 2>&1 >results/BENCH_stats.json \
            | tee -a results/bench_output.txt
        echo "stats throughput: results/BENCH_stats.json" \
            | tee -a results/bench_output.txt
        ;;
      *)
        "$b" 2>&1 | tee -a results/bench_output.txt
        ;;
    esac
done
printf '\n  ]\n}\n' >> results/BENCH_campaign.json
echo "campaign harness timings: results/BENCH_campaign.json"

echo "== examples =="
: > results/examples_output.txt
for e in "$BUILD"/examples/*; do
    [ -f "$e" ] && [ -x "$e" ] || continue
    echo "---- $(basename "$e") ----" | tee -a results/examples_output.txt
    "$e" 2>&1 | tee -a results/examples_output.txt
done

echo "All outputs are in results/.  Compare against EXPERIMENTS.md."
