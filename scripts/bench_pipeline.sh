#!/bin/sh
# Benchmarks the pipeline driver: `mbias all` at --jobs 1 vs --jobs N
# must produce identical bytes (volatile [campaign:]/[metrics]
# accounting lines aside) while the parallel run finishes faster.
# Writes wall times and the speedup to results/BENCH_pipeline.json.
#
# Usage: scripts/bench_pipeline.sh [build-dir] [jobs]
set -e

BUILD="${1:-build}"
JOBS="${2:-8}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

MBIAS="$BUILD/tools/mbias"
[ -x "$MBIAS" ] || {
    echo "no mbias binary at $MBIAS (build first)" >&2
    exit 1
}

mkdir -p results
tmp_serial="$(mktemp)"
tmp_parallel="$(mktemp)"
trap 'rm -f "$tmp_serial" "$tmp_parallel"' EXIT

run() { # jobs outfile -> wall seconds on stdout
    start="$(date +%s.%N)"
    "$MBIAS" all --jobs "$1" --quiet \
        | sed -e '/^\[campaign:/d' -e '/^\[metrics\]/d' > "$2"
    end="$(date +%s.%N)"
    echo "$end $start" | awk '{print $1-$2}'
}

echo "== mbias all --jobs 1 =="
SERIAL_SECONDS="$(run 1 "$tmp_serial")"
echo "   $SERIAL_SECONDS s"

echo "== mbias all --jobs $JOBS =="
PARALLEL_SECONDS="$(run "$JOBS" "$tmp_parallel")"
echo "   $PARALLEL_SECONDS s"

if ! diff -u "$tmp_serial" "$tmp_parallel"; then
    echo "FAIL: --jobs $JOBS output diverges from --jobs 1" >&2
    exit 1
fi
echo "outputs identical at --jobs 1 and --jobs $JOBS"

# Wall-clock speedup is bounded by the host's core count; record it so
# a 1-core container's ~1.0x reads as "saturated", not "broken".
CORES="$(nproc 2>/dev/null || echo 1)"
awk -v jobs="$JOBS" -v serial="$SERIAL_SECONDS" \
    -v parallel="$PARALLEL_SECONDS" -v cores="$CORES" 'BEGIN {
    printf "{\n"
    printf "  \"benchmark\": \"mbias all (every figure and table)\",\n"
    printf "  \"identical_output\": true,\n"
    printf "  \"host_cores\": %s,\n", cores
    printf "  \"serial_seconds\": %.3f,\n", serial
    printf "  \"parallel_jobs\": %s,\n", jobs
    printf "  \"parallel_seconds\": %.3f,\n", parallel
    printf "  \"speedup\": %.2f\n", serial / parallel
    printf "}\n"
}' > results/BENCH_pipeline.json

cat results/BENCH_pipeline.json
echo "pipeline timings: results/BENCH_pipeline.json"
