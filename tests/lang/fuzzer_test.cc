/**
 * @file
 * The workload fuzzer's two contracts.  Determinism: the same seed
 * produces a byte-identical corpus, no matter the generation order.
 * Validity: every generated program assembles (via the canonical
 * round trip), runs to completion, produces the workload-invariant
 * checksum at every opt level, and — over a 64-program corpus across
 * rotating link orders and environment sizes — the plan-based fast
 * interpreter AND the superblock trace tier stay bitwise identical to
 * the reference interpreter, extending the suite differential tests
 * to machine-generated code.
 */
#include <gtest/gtest.h>

#include <string>

#include "lang/assembler.hh"
#include "lang/disassembler.hh"
#include "lang/fuzzer.hh"
#include "sim/machine.hh"
#include "toolchain/artifacts.hh"
#include "toolchain/compiler.hh"
#include "toolchain/linker.hh"
#include "toolchain/loader.hh"

namespace
{

using namespace mbias;

TEST(Fuzzer, SameSeedByteIdenticalCorpus)
{
    lang::FuzzConfig cfg;
    cfg.seed = 42;
    cfg.count = 16;
    const std::string a = lang::corpusText(lang::fuzzCorpus(cfg));
    const std::string b = lang::corpusText(lang::fuzzCorpus(cfg));
    EXPECT_EQ(a, b);

    lang::FuzzConfig other = cfg;
    other.seed = 43;
    EXPECT_NE(a, lang::corpusText(lang::fuzzCorpus(other)));
}

TEST(Fuzzer, ProgramsAreOrderIndependent)
{
    // fuzzProgram is a pure function of (seed, index): drawing program
    // 7 first (or alone) yields the same bytes as drawing 0..15.
    lang::FuzzConfig cfg;
    cfg.seed = 7;
    cfg.count = 16;
    const auto corpus = lang::fuzzCorpus(cfg);
    const auto alone = lang::fuzzProgram(cfg, 7);
    EXPECT_EQ(lang::disassemble(alone.modules),
              lang::disassemble(corpus[7].modules));
    EXPECT_EQ(alone.name, corpus[7].name);
}

TEST(Fuzzer, KnobsStayInDocumentedRanges)
{
    lang::FuzzConfig cfg;
    cfg.seed = 99;
    cfg.count = 64;
    for (unsigned i = 0; i < cfg.count; ++i) {
        const auto k = lang::fuzzProgram(cfg, i).knobs;
        EXPECT_GE(k.kernels, 1u);
        EXPECT_LE(k.kernels, 3u);
        EXPECT_GE(k.bodyOps, 2u);
        EXPECT_LE(k.bodyOps, 10u);
        EXPECT_GE(k.innerTrips, 32u);
        EXPECT_LE(k.innerTrips, 512u);
        EXPECT_GE(k.outerTrips, 2u);
        EXPECT_LE(k.outerTrips, 200u);
        EXPECT_GE(k.wsWords, 64u);
        EXPECT_LE(k.wsWords, 8192u);
        EXPECT_EQ(k.wsWords & (k.wsWords - 1), 0u) << "power of two";
        EXPECT_LE(k.entropyBits, 6u);
        EXPECT_LE(k.padNops, 3u);
        EXPECT_LE(k.stackSlots, 2u);
    }
}

TEST(Fuzzer, CorpusDifferential64)
{
    // The fast tiers' bitwise contract, over machine-generated code:
    // 64 programs, link order and environment size rotating with the
    // index, reference vs fast vs trace interpreter, full RunResult
    // equality across all three.
    lang::FuzzConfig cfg;
    cfg.seed = 2026;
    cfg.count = 64;
    const auto mc = sim::MachineConfig::core2Like();
    for (unsigned i = 0; i < cfg.count; ++i) {
        auto prog = lang::fuzzProgram(cfg, i);
        const std::string name = prog.name;
        auto w = lang::makeFuzzWorkload(std::move(prog));
        const std::uint64_t expect = w->referenceResult({});

        toolchain::Compiler cc(toolchain::CompilerVendor::GccLike,
                               toolchain::OptLevel::O2);
        auto mods = cc.compile(w->build({}));
        toolchain::Linker linker;
        const auto order = i % 2 == 0
                               ? toolchain::LinkOrder::asGiven()
                               : toolchain::LinkOrder::shuffled(i);
        auto linked = linker.link(mods, order);
        toolchain::LoaderConfig lc;
        lc.envBytes = (113 * i * i) % 4096;
        const auto image = toolchain::Loader::load(std::move(linked), lc);

        sim::Machine ref_machine(mc);
        ref_machine.setUseFastPath(false);
        const auto ref = ref_machine.run(image);
        sim::Machine fast_machine(mc);
        fast_machine.setUseFastPath(true);
        fast_machine.setUseTracePath(false);
        const auto fast = fast_machine.run(image);
        sim::Machine trace_machine(mc);
        const auto trace = trace_machine.run(image);

        ASSERT_TRUE(ref.halted) << name;
        EXPECT_EQ(ref.result, expect)
            << name << ": O2 result diverged from the reference checksum";
        EXPECT_EQ(fast, ref)
            << name << ": fast path diverged (cycles " << fast.cycles()
            << " vs " << ref.cycles() << ")";
        EXPECT_EQ(trace, ref)
            << name << ": trace tier diverged (cycles " << trace.cycles()
            << " vs " << ref.cycles() << ")";
    }
}

TEST(Fuzzer, ThousandProgramCorpusZeroFailures)
{
    // The acceptance bar: >= 1000 generated programs, zero assembler
    // failures (every program round-trips through the canonical
    // listing bit for bit) and zero simulator failures (every program
    // halts with the expected checksum).
    lang::FuzzConfig cfg;
    cfg.seed = 1;
    cfg.count = 1000;
    const auto mc = sim::MachineConfig::core2Like();
    toolchain::Compiler cc(toolchain::CompilerVendor::GccLike,
                           toolchain::OptLevel::O2);
    toolchain::Linker linker;
    for (unsigned i = 0; i < cfg.count; ++i) {
        auto prog = lang::fuzzProgram(cfg, i);
        const std::string name = prog.name;

        const auto res = lang::assemble(lang::disassemble(prog.modules));
        ASSERT_TRUE(res.ok())
            << name << ":\n" << res.errorText(name + ".asm");
        ASSERT_EQ(toolchain::fingerprintModules(res.modules),
                  toolchain::fingerprintModules(prog.modules))
            << name;

        auto w = lang::makeFuzzWorkload(std::move(prog));
        auto linked = linker.link(cc.compile(w->build({})));
        const auto image =
            toolchain::Loader::load(std::move(linked), {});
        sim::Machine machine(mc);
        const auto rr = machine.run(image);
        ASSERT_TRUE(rr.halted) << name;
        ASSERT_EQ(rr.result, w->referenceResult({})) << name;
    }
}

} // namespace
