/**
 * @file
 * The assembler/disassembler round-trip contract: for every builtin
 * kernel, disassembling its pre-optimization modules and assembling
 * the listing back reproduces the modules bit for bit (same
 * fingerprint as the C++-built originals), and the canonical listing
 * is a fixed point.  Plus the parser's diagnostics: every rejected
 * construct is reported with the right line and column.
 */
#include <gtest/gtest.h>

#include <string>

#include "lang/assembler.hh"
#include "lang/disassembler.hh"
#include "toolchain/artifacts.hh"
#include "workloads/registry.hh"

namespace
{

using namespace mbias;

TEST(AsmRoundTrip, AllBuiltinKernels)
{
    const auto &suite = workloads::suite();
    ASSERT_EQ(suite.size(), 12u);
    for (const auto *w : suite) {
        const auto mods = w->build({});
        const std::string text = lang::disassemble(mods);
        const auto res = lang::assemble(text);
        ASSERT_TRUE(res.ok())
            << w->name() << ":\n" << res.errorText(w->name() + ".asm");
        EXPECT_EQ(toolchain::fingerprintModules(res.modules),
                  toolchain::fingerprintModules(mods))
            << w->name() << ": reassembled modules differ";
        // The canonical listing is a fixed point of the round trip.
        EXPECT_EQ(lang::disassemble(res.modules), text)
            << w->name() << ": listing is not canonical";
    }
}

TEST(AsmRoundTrip, HandwrittenProgramAssembles)
{
    const auto res = lang::assemble(".module demo\n"
                                    ".zero buf, 64, 8\n"
                                    ".func main\n"
                                    "  la t0, buf\n"
                                    "  li t1, 5\n"
                                    "  li t2, 0\n"
                                    "loop:\n"
                                    "  st8 t1, t0\n"
                                    "  ld8 t3, t0, 0\n"
                                    "  add t2, t2, t3\n"
                                    "  addi t1, t1, -1\n"
                                    "  bne t1, zero, loop\n"
                                    "  mv a0, t2\n"
                                    "  halt\n"
                                    ".endfunc\n");
    ASSERT_TRUE(res.ok()) << res.errorText();
    ASSERT_EQ(res.modules.size(), 1u);
    EXPECT_EQ(res.modules[0].name(), "demo");
    ASSERT_NE(res.modules[0].findFunction("main"), nullptr);
    // Round trip again through the canonical listing.
    const std::string text = lang::disassemble(res.modules);
    const auto again = lang::assemble(text);
    ASSERT_TRUE(again.ok()) << again.errorText();
    EXPECT_EQ(toolchain::fingerprintModules(again.modules),
              toolchain::fingerprintModules(res.modules));
}

TEST(AsmErrors, BadOpcode)
{
    const auto res = lang::assemble(".module m\n"
                                    ".func f\n"
                                    "  frob t0, t1\n"
                                    ".endfunc\n");
    ASSERT_FALSE(res.ok());
    ASSERT_EQ(res.errors.size(), 1u);
    EXPECT_EQ(res.errors[0].line, 3u);
    EXPECT_EQ(res.errors[0].col, 3u);
    EXPECT_NE(res.errors[0].message.find("unknown opcode 'frob'"),
              std::string::npos)
        << res.errors[0].message;
    EXPECT_EQ(res.errors[0].str("m.asm"),
              "m.asm:3:3: unknown opcode 'frob'");
}

TEST(AsmErrors, UndefinedLabel)
{
    const auto res = lang::assemble(".module m\n"
                                    ".func f\n"
                                    "  jmp nowhere\n"
                                    "  ret\n"
                                    ".endfunc\n");
    ASSERT_FALSE(res.ok());
    ASSERT_EQ(res.errors.size(), 1u);
    // Reported at the first (here: only) reference site.
    EXPECT_EQ(res.errors[0].line, 3u);
    EXPECT_EQ(res.errors[0].col, 7u);
    EXPECT_NE(res.errors[0].message.find("undefined label 'nowhere'"),
              std::string::npos)
        << res.errors[0].message;
}

TEST(AsmErrors, DuplicateLabel)
{
    const auto res = lang::assemble(".module m\n"
                                    ".func f\n"
                                    "top:\n"
                                    "  nop\n"
                                    "top:\n"
                                    "  ret\n"
                                    ".endfunc\n");
    ASSERT_FALSE(res.ok());
    ASSERT_EQ(res.errors.size(), 1u);
    EXPECT_EQ(res.errors[0].line, 5u);
    EXPECT_EQ(res.errors[0].col, 1u);
    EXPECT_NE(res.errors[0].message.find("duplicate label 'top'"),
              std::string::npos)
        << res.errors[0].message;
}

TEST(AsmErrors, MalformedDirective)
{
    const auto res = lang::assemble(".module m\n"
                                    ".func f\n"
                                    ".align 3\n"
                                    "  ret\n"
                                    ".endfunc\n");
    ASSERT_FALSE(res.ok());
    ASSERT_EQ(res.errors.size(), 1u);
    EXPECT_EQ(res.errors[0].line, 3u);
    EXPECT_NE(res.errors[0].message.find(".align needs a power-of-two"),
              std::string::npos)
        << res.errors[0].message;
}

TEST(AsmErrors, RecoveryCollectsAllDiagnostics)
{
    // One pass reports every problem, not just the first.
    const auto res = lang::assemble(".module m\n"
                                    ".func f\n"
                                    "  frob t0\n"
                                    "  add t0, t1\n" // missing operand
                                    "  ret\n"
                                    ".endfunc\n");
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.errors.size(), 2u);
}

TEST(AsmErrors, InstructionOutsideFunction)
{
    const auto res = lang::assemble(".module m\n  add t0, t1, t2\n");
    ASSERT_FALSE(res.ok());
    ASSERT_GE(res.errors.size(), 1u);
    EXPECT_NE(res.errors[0].message.find("outside a function"),
              std::string::npos);
}

} // namespace
