/**
 * @file
 * The bundled .asm assets under workloads/asm/: every builtin kernel
 * has one, the manifest loads, the assembled modules fingerprint
 * identically to the C++-built originals, the manifest's pinned
 * expect checksum matches the reference result, and the full
 * pipeline (compile, link, load, simulate) produces a bitwise
 * identical RunResult from either source — and, per asset, the three
 * interpreter tiers (reference, fast, trace) agree bit for bit.
 */
#include <gtest/gtest.h>

#include <string>

#include "lang/asm_workload.hh"
#include "sim/machine.hh"
#include "toolchain/artifacts.hh"
#include "toolchain/compiler.hh"
#include "toolchain/linker.hh"
#include "toolchain/loader.hh"
#include "workloads/registry.hh"

namespace
{

using namespace mbias;

sim::RunResult
runPipeline(const workloads::Workload &w)
{
    toolchain::Compiler cc(toolchain::CompilerVendor::GccLike,
                           toolchain::OptLevel::O2);
    auto mods = cc.compile(w.build({}));
    toolchain::Linker linker;
    auto linked = linker.link(mods);
    const auto image = toolchain::Loader::load(std::move(linked), {});
    sim::Machine machine(sim::MachineConfig::core2Like());
    return machine.run(image);
}

TEST(AsmAssets, EveryBuiltinKernelPinnedBitwise)
{
    const std::string dir =
        std::string(MBIAS_SOURCE_DIR) + "/workloads/asm/";
    for (const auto *w : workloads::suite()) {
        const auto loaded = lang::loadAsmWorkload(dir + w->name() +
                                                  ".toml");
        ASSERT_TRUE(loaded.ok()) << loaded.error;
        EXPECT_EQ(loaded.workload->name(), w->name() + "_asm");

        // Same pre-toolchain modules, bit for bit.
        EXPECT_EQ(toolchain::fingerprintModules(
                      loaded.workload->build({})),
                  toolchain::fingerprintModules(w->build({})))
            << w->name();

        // The manifest's pinned checksum is the reference result.
        EXPECT_EQ(loaded.workload->referenceResult({}),
                  w->referenceResult({}))
            << w->name();

        // And the whole pipeline agrees, counter for counter.
        const auto from_asm = runPipeline(*loaded.workload);
        const auto from_cpp = runPipeline(*w);
        ASSERT_TRUE(from_cpp.halted) << w->name();
        EXPECT_EQ(from_asm, from_cpp)
            << w->name() << ": asset RunResult diverged";
        EXPECT_EQ(from_cpp.result, w->referenceResult({})) << w->name();
    }
}

TEST(AsmAssets, ThreeTierDifferentialAcrossAssets)
{
    // The asm-sourced programs through all three interpreter tiers,
    // env size and link order rotating with the asset index: the
    // trace tier's bitwise contract must hold for text-authored
    // programs exactly as it does for the C++-built suite.
    const std::string dir =
        std::string(MBIAS_SOURCE_DIR) + "/workloads/asm/";
    const auto mc = sim::MachineConfig::core2Like();
    const auto suite = workloads::suite();
    for (std::size_t i = 0; i < suite.size(); ++i) {
        const auto loaded =
            lang::loadAsmWorkload(dir + suite[i]->name() + ".toml");
        ASSERT_TRUE(loaded.ok()) << loaded.error;

        toolchain::Compiler cc(toolchain::CompilerVendor::GccLike,
                               toolchain::OptLevel::O2);
        auto mods = cc.compile(loaded.workload->build({}));
        toolchain::Linker linker;
        const auto order =
            i % 2 == 0 ? toolchain::LinkOrder::asGiven()
                       : toolchain::LinkOrder::shuffled(0x41c3 + i);
        auto linked = linker.link(mods, order);
        toolchain::LoaderConfig lc;
        lc.envBytes = (199 * i * i) % 4096;
        const auto image = toolchain::Loader::load(std::move(linked), lc);

        sim::Machine ref_m(mc);
        ref_m.setUseFastPath(false);
        const auto ref = ref_m.run(image);
        sim::Machine fast_m(mc);
        fast_m.setUseTracePath(false);
        const auto fast = fast_m.run(image);
        sim::Machine trace_m(mc);
        const auto trace = trace_m.run(image);

        ASSERT_TRUE(ref.halted) << loaded.workload->name();
        EXPECT_EQ(fast, ref)
            << loaded.workload->name() << ": fast path diverged";
        EXPECT_EQ(trace, ref)
            << loaded.workload->name() << ": trace tier diverged";
    }
}

} // namespace
