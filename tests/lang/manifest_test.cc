/**
 * @file
 * The workload-manifest parser: section/key lookup, typed accessors,
 * hex and negative integers, and line-numbered rejection of malformed
 * input (duplicate keys, junk lines, unterminated strings).
 */
#include <gtest/gtest.h>

#include <string>

#include "lang/manifest.hh"

namespace
{

using namespace mbias;
using lang::Manifest;

TEST(Manifest, ParsesTypicalWorkloadManifest)
{
    std::string err;
    const auto mf = Manifest::parse("# a comment\n"
                                    "[workload]\n"
                                    "name = \"perl\"   ; trailing\n"
                                    "asm = \"perl.asm\"\n"
                                    "link_runtime = true\n"
                                    "scale = 1\n"
                                    "seed = 12345\n"
                                    "expect = 0xdeadbeef\n"
                                    "\n"
                                    "[factors]\n"
                                    "hot_loops = 3\n"
                                    "branch_entropy = 0.5\n"
                                    "offset = -16\n",
                                    &err);
    ASSERT_TRUE(mf.ok()) << err;
    EXPECT_EQ(mf.getString("workload", "name"), "perl");
    EXPECT_EQ(mf.getString("workload", "asm"), "perl.asm");
    EXPECT_TRUE(mf.getBool("workload", "link_runtime"));
    EXPECT_EQ(mf.getInt("workload", "scale"), 1);
    EXPECT_EQ(mf.getInt("workload", "expect"), 0xdeadbeef);
    EXPECT_EQ(mf.getInt("factors", "hot_loops"), 3);
    EXPECT_DOUBLE_EQ(mf.getDouble("factors", "branch_entropy"), 0.5);
    EXPECT_EQ(mf.getInt("factors", "offset"), -16);
    // Absent keys fall back to the default.
    EXPECT_EQ(mf.getInt("workload", "nope", 77), 77);
    EXPECT_EQ(mf.getString("nope", "nope", "dflt"), "dflt");
    EXPECT_FALSE(mf.has("workload", "nope"));
    EXPECT_TRUE(mf.has("workload", "expect"));
    // Keys come back in file order.
    const auto keys = mf.keys("factors");
    ASSERT_EQ(keys.size(), 3u);
    EXPECT_EQ(keys[0], "hot_loops");
    EXPECT_EQ(keys[2], "offset");
}

TEST(Manifest, FullU64ExpectRoundTrips)
{
    std::string err;
    const auto mf = Manifest::parse("[w]\n"
                                    "expect = 0xffffffffffffffff\n",
                                    &err);
    ASSERT_TRUE(mf.ok()) << err;
    EXPECT_EQ(std::uint64_t(mf.getInt("w", "expect")),
              0xffffffffffffffffULL);
}

TEST(Manifest, RejectsDuplicateKey)
{
    std::string err;
    const auto mf = Manifest::parse("[w]\na = 1\na = 2\n", &err);
    EXPECT_FALSE(mf.ok());
    EXPECT_NE(err.find("line 3"), std::string::npos) << err;
    EXPECT_NE(err.find("duplicate key 'a'"), std::string::npos) << err;
}

TEST(Manifest, RejectsKeyBeforeSection)
{
    std::string err;
    const auto mf = Manifest::parse("a = 1\n", &err);
    EXPECT_FALSE(mf.ok());
    EXPECT_NE(err.find("line 1"), std::string::npos) << err;
}

TEST(Manifest, RejectsJunkLine)
{
    std::string err;
    const auto mf = Manifest::parse("[w]\nwhat even is this\n", &err);
    EXPECT_FALSE(mf.ok());
    EXPECT_NE(err.find("line 2"), std::string::npos) << err;
}

TEST(Manifest, RejectsUnparsableValue)
{
    std::string err;
    const auto mf = Manifest::parse("[w]\na = 12monkeys\n", &err);
    EXPECT_FALSE(mf.ok());
    EXPECT_NE(err.find("12monkeys"), std::string::npos) << err;
}

} // namespace
