/**
 * @file
 * Content addressing and persistence: task keys hash exactly the
 * inputs that determine an outcome, records survive a JSON round
 * trip bitwise, and the in-memory cache deduplicates identical tasks
 * with exact accounting.
 */
#include <gtest/gtest.h>

#include <bit>

#include "campaign/engine.hh"
#include "campaign/store.hh"

namespace
{

using namespace mbias;
using campaign::CampaignSpec;
using campaign::CampaignTask;
using campaign::RepetitionPlan;
using campaign::ResultCache;
using campaign::TaskRecord;
using campaign::taskKey;

CampaignTask
task(std::uint64_t env, std::uint64_t seed = 11,
     RepetitionPlan plan = {})
{
    CampaignTask t;
    t.setup.envBytes = env;
    t.taskSeed = seed;
    t.plan = plan;
    return t;
}

TEST(TaskKey, HashesOutcomeDeterminingInputsOnly)
{
    core::ExperimentSpec exp;
    const auto base = taskKey(exp, task(100));
    EXPECT_EQ(base.size(), 16u);
    EXPECT_EQ(base, taskKey(exp, task(100)));

    // Setup factors and experiment knobs split the address...
    EXPECT_NE(base, taskKey(exp, task(101)));
    CampaignTask linked = task(100);
    linked.setup.linkOrder = toolchain::LinkOrder::shuffled(3);
    EXPECT_NE(base, taskKey(exp, linked));
    core::ExperimentSpec other;
    other.withWorkload("mcf");
    EXPECT_NE(base, taskKey(other, task(100)));
    other = core::ExperimentSpec{};
    other.withMachine(sim::MachineConfig::p4Like());
    EXPECT_NE(base, taskKey(other, task(100)));

    // ...but the task seed only matters when the plan consumes it:
    // Single-mode duplicates of one setup share a cached result.
    EXPECT_EQ(base, taskKey(exp, task(100, /*seed=*/999)));
    const RepetitionPlan aslr{RepetitionPlan::Kind::AslrRandomized, 7};
    EXPECT_NE(taskKey(exp, task(100, 11, aslr)),
              taskKey(exp, task(100, 999, aslr)));
    EXPECT_NE(base, taskKey(exp, task(100, 11, aslr)));
}

TEST(TaskRecord, JsonRoundTripIsBitwise)
{
    core::RunOutcome o;
    o.setup.envBytes = 300;
    o.setup.linkOrder = toolchain::LinkOrder::shuffled(17);
    o.baseline.halted = o.treatment.halted = true;
    o.baseline.counters.set(sim::Counter::Cycles, 109798);
    o.baseline.counters.set(sim::Counter::Instructions, 101405);
    o.baseline.result = 5730506297605046414ull;
    o.treatment.counters.set(sim::Counter::Cycles, 117022);
    o.treatment.counters.set(sim::Counter::Instructions, 99847);
    o.treatment.result = 5730506297605046414ull;
    o.speedup = 109798.0 / 117022.0;

    CampaignTask t = task(300);
    t.setup = o.setup;
    t.index = 42;
    const auto rec =
        TaskRecord::make("00deadbeef00f00d", t, o, 109798.0, 117022.0);
    TaskRecord back;
    ASSERT_TRUE(TaskRecord::fromJson(rec.toJson(), back));
    EXPECT_EQ(back.key, rec.key);
    EXPECT_EQ(back.taskIndex, 42u);

    const auto out = back.toOutcome();
    EXPECT_EQ(out.setup, o.setup);
    EXPECT_EQ(out.baseline.cycles(), o.baseline.cycles());
    EXPECT_EQ(out.baseline.instructions(), o.baseline.instructions());
    EXPECT_EQ(out.baseline.result, o.baseline.result);
    EXPECT_EQ(out.treatment.cycles(), o.treatment.cycles());
    EXPECT_TRUE(out.baseline.halted && out.treatment.halted);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(out.speedup),
              std::bit_cast<std::uint64_t>(o.speedup));
}

TEST(TaskRecord, RejectsTornLines)
{
    core::RunOutcome o;
    o.speedup = 1.25;
    const auto rec = TaskRecord::make("0123456789abcdef", task(0), o,
                                      4.0, 3.2);
    const std::string line = rec.toJson();
    TaskRecord back;
    EXPECT_TRUE(TaskRecord::fromJson(line, back));
    // A run killed mid-append leaves a prefix of the line behind.
    for (std::size_t cut : {line.size() - 1, line.size() / 2,
                            std::size_t(3), std::size_t(0)})
        EXPECT_FALSE(TaskRecord::fromJson(line.substr(0, cut), back))
            << "accepted torn prefix of length " << cut;
    EXPECT_FALSE(TaskRecord::fromJson("not json at all", back));
}

TEST(ResultCache, AccountsHits)
{
    ResultCache cache;
    core::RunOutcome o;
    o.speedup = 2.0;
    core::RunOutcome got;
    EXPECT_FALSE(cache.lookup("k1", got));
    EXPECT_EQ(cache.hits(), 0u);
    cache.insert("k1", o);
    EXPECT_TRUE(cache.lookup("k1", got));
    EXPECT_TRUE(cache.lookup("k1", got));
    EXPECT_EQ(got.speedup, 2.0);
    EXPECT_FALSE(cache.lookup("k2", got));
    EXPECT_EQ(cache.hits(), 2u);
}

// Duplicate setups in a campaign are content-address hits: only the
// unique setups hit the simulator.
TEST(CampaignCache, DuplicateSetupsExecuteOnce)
{
    std::vector<core::ExperimentSetup> setups;
    for (int round = 0; round < 3; ++round)
        for (std::uint64_t env : {0ull, 52ull, 300ull, 1024ull}) {
            core::ExperimentSetup s;
            s.envBytes = env;
            setups.push_back(s);
        }
    CampaignSpec spec;
    spec.withExperiment(core::ExperimentSpec().withWorkload("milc"))
        .withSetups(setups);
    campaign::CampaignOptions opts;
    opts.jobs = 1; // serial: hit accounting is exact
    auto report = campaign::CampaignEngine(spec, opts).run();
    EXPECT_EQ(report.stats.totalTasks, 12u);
    EXPECT_EQ(report.stats.executed, 4u);
    EXPECT_EQ(report.stats.cacheHits, 8u);
    EXPECT_EQ(report.stats.resumedFromStore, 0u);
    // The duplicates' outcomes are the cached ones, bit for bit.
    const auto &o = report.bias.outcomes;
    ASSERT_EQ(o.size(), 12u);
    for (std::size_t i = 4; i < o.size(); ++i)
        EXPECT_EQ(std::bit_cast<std::uint64_t>(o[i].speedup),
                  std::bit_cast<std::uint64_t>(o[i % 4].speedup));
}

} // namespace
