/**
 * @file
 * Content addressing and persistence: task keys hash exactly the
 * inputs that determine an outcome, records survive a JSON round
 * trip bitwise, and the in-memory cache deduplicates identical tasks
 * with exact accounting.
 */
#include <gtest/gtest.h>

#include <bit>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "campaign/engine.hh"
#include "campaign/store.hh"

namespace
{

using namespace mbias;
using campaign::CampaignSpec;
using campaign::CampaignTask;
using campaign::RepetitionPlan;
using campaign::ResultCache;
using campaign::TaskRecord;
using campaign::taskKey;

CampaignTask
task(std::uint64_t env, std::uint64_t seed = 11,
     RepetitionPlan plan = {})
{
    CampaignTask t;
    t.setup.envBytes = env;
    t.taskSeed = seed;
    t.plan = plan;
    return t;
}

TEST(TaskKey, HashesOutcomeDeterminingInputsOnly)
{
    core::ExperimentSpec exp;
    const auto base = taskKey(exp, task(100));
    EXPECT_EQ(base.size(), 16u);
    EXPECT_EQ(base, taskKey(exp, task(100)));

    // Setup factors and experiment knobs split the address...
    EXPECT_NE(base, taskKey(exp, task(101)));
    CampaignTask linked = task(100);
    linked.setup.linkOrder = toolchain::LinkOrder::shuffled(3);
    EXPECT_NE(base, taskKey(exp, linked));
    core::ExperimentSpec other;
    other.withWorkload("mcf");
    EXPECT_NE(base, taskKey(other, task(100)));
    other = core::ExperimentSpec{};
    other.withMachine(sim::MachineConfig::p4Like());
    EXPECT_NE(base, taskKey(other, task(100)));

    // ...but the task seed only matters when the plan consumes it:
    // Single-mode duplicates of one setup share a cached result.
    EXPECT_EQ(base, taskKey(exp, task(100, /*seed=*/999)));
    const RepetitionPlan aslr{RepetitionPlan::Kind::AslrRandomized, 7};
    EXPECT_NE(taskKey(exp, task(100, 11, aslr)),
              taskKey(exp, task(100, 999, aslr)));
    EXPECT_NE(base, taskKey(exp, task(100, 11, aslr)));
}

TEST(TaskRecord, JsonRoundTripIsBitwise)
{
    core::RunOutcome o;
    o.setup.envBytes = 300;
    o.setup.linkOrder = toolchain::LinkOrder::shuffled(17);
    o.baseline.halted = o.treatment.halted = true;
    o.baseline.counters.set(sim::Counter::Cycles, 109798);
    o.baseline.counters.set(sim::Counter::Instructions, 101405);
    o.baseline.result = 5730506297605046414ull;
    o.treatment.counters.set(sim::Counter::Cycles, 117022);
    o.treatment.counters.set(sim::Counter::Instructions, 99847);
    o.treatment.result = 5730506297605046414ull;
    o.speedup = 109798.0 / 117022.0;

    CampaignTask t = task(300);
    t.setup = o.setup;
    t.index = 42;
    const auto rec =
        TaskRecord::make("00deadbeef00f00d", t, o, 109798.0, 117022.0);
    TaskRecord back;
    ASSERT_TRUE(TaskRecord::fromJson(rec.toJson(), back));
    EXPECT_EQ(back.key, rec.key);
    EXPECT_EQ(back.taskIndex, 42u);

    const auto out = back.toOutcome();
    EXPECT_EQ(out.setup, o.setup);
    EXPECT_EQ(out.baseline.cycles(), o.baseline.cycles());
    EXPECT_EQ(out.baseline.instructions(), o.baseline.instructions());
    EXPECT_EQ(out.baseline.result, o.baseline.result);
    EXPECT_EQ(out.treatment.cycles(), o.treatment.cycles());
    EXPECT_TRUE(out.baseline.halted && out.treatment.halted);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(out.speedup),
              std::bit_cast<std::uint64_t>(o.speedup));
}

TEST(TaskRecord, RejectsTornLines)
{
    core::RunOutcome o;
    o.speedup = 1.25;
    const auto rec = TaskRecord::make("0123456789abcdef", task(0), o,
                                      4.0, 3.2);
    const std::string line = rec.toJson();
    TaskRecord back;
    EXPECT_TRUE(TaskRecord::fromJson(line, back));
    // A run killed mid-append leaves a prefix of the line behind.
    for (std::size_t cut : {line.size() - 1, line.size() / 2,
                            std::size_t(3), std::size_t(0)})
        EXPECT_FALSE(TaskRecord::fromJson(line.substr(0, cut), back))
            << "accepted torn prefix of length " << cut;
    EXPECT_FALSE(TaskRecord::fromJson("not json at all", back));
}

/** Rotates the record's first JSON field to the end of the line (the
 *  store's values never contain commas, so a flat split is safe). */
std::string
rotateFields(const std::string &line)
{
    const std::string body = line.substr(1, line.size() - 2);
    const auto comma = body.find(',');
    return "{" + body.substr(comma + 1) + "," + body.substr(0, comma) +
           "}";
}

// The single-pass parser dispatches on field names as it walks the
// line, so a record written with another field order (a hand-edited
// store, or a future writer) still parses to the same bits.
TEST(TaskRecord, ParserIsFieldOrderTolerant)
{
    core::RunOutcome o;
    o.setup.envBytes = 300;
    o.baseline.halted = o.treatment.halted = true;
    o.speedup = 1.0625;
    CampaignTask t = task(300);
    t.index = 7;
    const auto rec =
        TaskRecord::make("0123456789abcdef", t, o, 4.25, 4.0);
    std::string line = rec.toJson();
    TaskRecord expect;
    ASSERT_TRUE(TaskRecord::fromJson(line, expect));
    // Every rotation keeps all 16 fields; parse must be identical.
    for (int i = 0; i < 16; ++i) {
        line = rotateFields(line);
        TaskRecord back;
        ASSERT_TRUE(TaskRecord::fromJson(line, back)) << line;
        EXPECT_EQ(back.key, expect.key);
        EXPECT_EQ(back.taskIndex, expect.taskIndex);
        EXPECT_EQ(back.envBytes, expect.envBytes);
        EXPECT_EQ(back.speedupBits, expect.speedupBits);
        EXPECT_EQ(back.baseMetricBits, expect.baseMetricBits);
    }
}

TEST(TaskRecord, RejectsMissingAndDuplicateDamage)
{
    core::RunOutcome o;
    o.speedup = 2.0;
    const auto rec = TaskRecord::make("0123456789abcdef", task(52), o,
                                      2.0, 1.0);
    const std::string line = rec.toJson();
    TaskRecord back;
    // Deleting any one field leaves an incomplete record.
    const auto comma = line.find(',');
    const std::string missing =
        "{" + line.substr(comma + 1); // drops the first field
    EXPECT_FALSE(TaskRecord::fromJson(missing, back));
    // Unknown fields are skipped, not fatal (forward compatibility).
    std::string extended = line;
    extended.insert(extended.size() - 1, ",\"future_field\":123");
    EXPECT_TRUE(TaskRecord::fromJson(extended, back));
    EXPECT_EQ(back.key, rec.key);
}

TEST(StoreColumns, DedupsOrdersAndCountsTorn)
{
    const std::string path =
        testing::TempDir() + "/mbias_columns_test.jsonl";
    std::filesystem::remove(path);

    auto record = [](const std::string &key, std::uint64_t index,
                     double speedup) {
        core::RunOutcome o;
        o.baseline.halted = o.treatment.halted = true;
        o.speedup = speedup;
        CampaignTask t = task(index * 100);
        t.index = index;
        return TaskRecord::make(key, t, o, speedup, 1.0);
    };
    {
        std::ofstream out(path, std::ios::trunc);
        out << "{\"mbias_store\":1,\"provenance\":{\"host\":\"x\"}}\n";
        // Appended out of task order, with one duplicate key (the
        // later record wins, as in ResultStore::load) and one torn
        // line.
        out << record("00000000000000bb", 2, 1.50).toJson() << "\n";
        out << record("00000000000000aa", 1, 1.10).toJson() << "\n";
        out << "{\"key\":\"torn" << "\n";
        out << record("00000000000000bb", 2, 1.75).toJson() << "\n";
        out << record("00000000000000cc", 3, 0.90).toJson() << "\n";
        out << "{\"mbias_metrics\":1,\"counters\":{}}\n";
    }

    const auto cols = campaign::readStoreColumns(path);
    ASSERT_EQ(cols.rows(), 3u);
    EXPECT_EQ(cols.tornLines, 1u);
    EXPECT_EQ(cols.provenanceJson, "{\"host\":\"x\"}");
    // Rows come back in ascending task order regardless of append
    // order, and the duplicate key kept its last speedup.
    EXPECT_EQ(cols.taskIndex, (std::vector<std::uint64_t>{1, 2, 3}));
    EXPECT_EQ(cols.speedup, (std::vector<double>{1.10, 1.75, 0.90}));
    EXPECT_EQ(cols.envBytes, (std::vector<std::uint64_t>{100, 200, 300}));
    std::filesystem::remove(path);
}

TEST(ResultCache, AccountsHits)
{
    ResultCache cache;
    core::RunOutcome o;
    o.speedup = 2.0;
    core::RunOutcome got;
    EXPECT_FALSE(cache.lookup("k1", got));
    EXPECT_EQ(cache.hits(), 0u);
    cache.insert("k1", o);
    EXPECT_TRUE(cache.lookup("k1", got));
    EXPECT_TRUE(cache.lookup("k1", got));
    EXPECT_EQ(got.speedup, 2.0);
    EXPECT_FALSE(cache.lookup("k2", got));
    EXPECT_EQ(cache.hits(), 2u);
}

// Duplicate setups in a campaign are content-address hits: only the
// unique setups hit the simulator.
TEST(CampaignCache, DuplicateSetupsExecuteOnce)
{
    std::vector<core::ExperimentSetup> setups;
    for (int round = 0; round < 3; ++round)
        for (std::uint64_t env : {0ull, 52ull, 300ull, 1024ull}) {
            core::ExperimentSetup s;
            s.envBytes = env;
            setups.push_back(s);
        }
    CampaignSpec spec;
    spec.withExperiment(core::ExperimentSpec().withWorkload("milc"))
        .withSetups(setups);
    campaign::CampaignOptions opts;
    opts.jobs = 1; // serial: hit accounting is exact
    auto report = campaign::CampaignEngine(spec, opts).run();
    EXPECT_EQ(report.stats.totalTasks, 12u);
    EXPECT_EQ(report.stats.executed, 4u);
    EXPECT_EQ(report.stats.cacheHits, 8u);
    EXPECT_EQ(report.stats.resumedFromStore, 0u);
    // The duplicates' outcomes are the cached ones, bit for bit.
    const auto &o = report.bias.outcomes;
    ASSERT_EQ(o.size(), 12u);
    for (std::size_t i = 4; i < o.size(); ++i)
        EXPECT_EQ(std::bit_cast<std::uint64_t>(o[i].speedup),
                  std::bit_cast<std::uint64_t>(o[i % 4].speedup));
}

} // namespace
