/**
 * @file
 * Setup-provenance tests: capture sanity, JSON round-trip, the store
 * header surviving resume, torn-line accounting, store summaries, and
 * the determinism contract that task/cache counters are identical
 * across --jobs 1 and --jobs 8.  Provenance is always compiled
 * (independent of MBIAS_OBS); assertions on metric *values* are gated
 * on MBIAS_OBS_ENABLED where the OFF build legitimately reports zero.
 */
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "campaign/engine.hh"
#include "campaign/store.hh"
#include "obs/provenance.hh"
#include "toolchain/artifacts.hh"

namespace
{

using namespace mbias;
using campaign::CampaignEngine;
using campaign::CampaignOptions;
using campaign::CampaignSpec;

CampaignSpec
smallSpec(unsigned tasks = 12)
{
    CampaignSpec spec;
    spec.withExperiment(core::ExperimentSpec().withWorkload("milc"))
        .withSpace(core::SetupSpace().varyEnvSize().varyLinkOrder(),
                   tasks)
        .withSeed(7);
    return spec;
}

TEST(Provenance, CaptureSanity)
{
    const auto prov = obs::Provenance::capture(8);
    EXPECT_EQ(prov.jobs, 8u);
    EXPECT_FALSE(prov.hostname.empty());
    EXPECT_FALSE(prov.compiler.empty());
    EXPECT_FALSE(prov.workdir.empty());
    EXPECT_EQ(prov.workdirLen, prov.workdir.size());
    // Any live process has at least PATH in its environment.
    EXPECT_GT(prov.envBlockBytes, 0u);
    EXPECT_GT(prov.pageSize, 0u);
}

TEST(Provenance, JsonRoundTrip)
{
    auto prov = obs::Provenance::capture(3);
    // Exercise escaping: quotes and backslashes in free-form fields.
    prov.compilerFlags = "-O2 \"quoted\" back\\slash";
    prov.cpuModel = "Weird \"CPU\"\n(tm)";
    obs::Provenance back;
    ASSERT_TRUE(obs::Provenance::fromJson(prov.toJson(), back));
    EXPECT_EQ(back, prov);
}

TEST(Provenance, FromJsonRejectsGarbage)
{
    obs::Provenance out;
    EXPECT_FALSE(obs::Provenance::fromJson("", out));
    EXPECT_FALSE(obs::Provenance::fromJson("{}", out));
    EXPECT_FALSE(obs::Provenance::fromJson("not json at all", out));
}

TEST(ProvenanceStore, HeaderSurvivesResume)
{
    const std::string path =
        testing::TempDir() + "/mbias_prov_store.jsonl";
    std::filesystem::remove(path);

    CampaignOptions opts;
    opts.jobs = 2;
    opts.outPath = path;
    auto first = CampaignEngine(smallSpec(), opts).run();
    EXPECT_EQ(first.provenance.jobs, 2u);
    EXPECT_FALSE(first.provenance.hostname.empty());

    // The header the store carries is the capture of the creating run.
    campaign::ResultStore store(path);
    store.load();
    obs::Provenance fromHeader;
    ASSERT_TRUE(store.headerProvenance(fromHeader));
    EXPECT_EQ(fromHeader, first.provenance);

    // A resumed run keeps the original header (the store records who
    // *created* it), even when resuming with a different job count.
    opts.resume = true;
    opts.jobs = 1;
    auto resumed = CampaignEngine(smallSpec(), opts).run();
    EXPECT_EQ(resumed.stats.executed, 0u);
    campaign::ResultStore store2(path);
    store2.load();
    obs::Provenance afterResume;
    ASSERT_TRUE(store2.headerProvenance(afterResume));
    EXPECT_EQ(afterResume, first.provenance);
    EXPECT_EQ(afterResume.jobs, 2u);
    std::filesystem::remove(path);
}

TEST(ProvenanceStore, TornLinesAreCountedNotSilent)
{
    const std::string path =
        testing::TempDir() + "/mbias_torn_store.jsonl";
    std::filesystem::remove(path);

    CampaignOptions opts;
    opts.jobs = 1;
    opts.outPath = path;
    CampaignEngine(smallSpec(), opts).run();

    // Corrupt the store: a torn (half) record line in the middle and
    // a torn tail, the two shapes a killed writer leaves behind.
    std::vector<std::string> lines;
    {
        std::ifstream in(path);
        std::string line;
        while (std::getline(in, line))
            lines.push_back(line);
    }
    ASSERT_GT(lines.size(), 4u);
    {
        std::ofstream out(path, std::ios::trunc);
        for (std::size_t i = 0; i + 1 < lines.size(); ++i) {
            if (i == 2)
                out << lines[i].substr(0, lines[i].size() / 3) << "\n";
            else
                out << lines[i] << "\n";
        }
        out << lines.back().substr(0, lines.back().size() / 2);
    }

    campaign::ResultStore store(path);
    store.load();
    EXPECT_EQ(store.tornLines(), 2u)
        << "one mid-file torn line + one torn tail";

    const auto summary = campaign::summarizeStore(path);
    EXPECT_EQ(summary.tornLines, 2u);
    std::filesystem::remove(path);
}

TEST(ProvenanceStore, SummaryDescribesFinishedStore)
{
    const std::string path =
        testing::TempDir() + "/mbias_summary_store.jsonl";
    std::filesystem::remove(path);

    CampaignOptions opts;
    opts.jobs = 2;
    opts.outPath = path;
    constexpr unsigned tasks = 12;
    CampaignEngine(smallSpec(tasks), opts).run();

    const auto summary = campaign::summarizeStore(path);
    EXPECT_EQ(summary.records, tasks);
    EXPECT_EQ(summary.tornLines, 0u);
    ASSERT_FALSE(summary.provenanceJson.empty());
    obs::Provenance prov;
    EXPECT_TRUE(obs::Provenance::fromJson(summary.provenanceJson, prov));
#if MBIAS_OBS_ENABLED
    ASSERT_FALSE(summary.metricsJson.empty());
    EXPECT_NE(summary.metricsJson.find("engine.tasks"),
              std::string::npos);
#endif
    const auto text = summary.str();
    EXPECT_NE(text.find(path), std::string::npos);
    EXPECT_NE(text.find("hostname"), std::string::npos);

    // Missing stores summarize as empty rather than throwing.
    const auto none = campaign::summarizeStore(path + ".does-not-exist");
    EXPECT_EQ(none.records, 0u);
    EXPECT_TRUE(none.provenanceJson.empty());
    std::filesystem::remove(path);
}

TEST(ObsDeterminism, WorkCountersMatchAcrossJobCounts)
{
    // The contract documented in obs/metrics.hh: counters that count
    // *work* are bitwise-identical across --jobs for a fixed spec;
    // schedule-dependent metrics (pool.steals, duration histograms)
    // are exempt.  Run the same campaign serial and with 8 workers
    // and compare the deterministic subset.
    auto runWith = [](unsigned jobs) {
        // The artifact cache is process-global; start each run cold
        // so the compile count below is about *this* campaign.
        toolchain::ArtifactCache::global().clear();
        CampaignOptions opts;
        opts.jobs = jobs;
        opts.outPath.clear(); // no store: pure compute
        return CampaignEngine(smallSpec(24), opts).run();
    };
    const auto serial = runWith(1);
    const auto parallel = runWith(8);

    // (runner.compiles is exempt, like pool.steals: workers racing
    // the same artifact-cache miss may both compile — the first
    // insert wins — so the count can exceed 2 under --jobs 8.)
    const std::vector<std::string> deterministic = {
        "engine.tasks", "engine.executed", "engine.store_hits",
        "cache.hits",   "cache.misses",    "pool.tasks",
    };
    for (const auto &name : deterministic) {
        const auto s = serial.metrics.counters.count(name)
                           ? serial.metrics.counters.at(name)
                           : 0;
        const auto p = parallel.metrics.counters.count(name)
                           ? parallel.metrics.counters.at(name)
                           : 0;
        EXPECT_EQ(s, p) << "counter " << name
                        << " must not depend on --jobs";
    }
#if MBIAS_OBS_ENABLED
    EXPECT_EQ(serial.metrics.counters.at("engine.tasks"), 24u);
    EXPECT_EQ(serial.metrics.counters.at("pool.tasks"), 24u);
    // With a cold artifact cache and one worker, baseline and
    // treatment compile exactly once each, campaign-wide.
    EXPECT_EQ(serial.metrics.counters.at("runner.compiles"), 2u);
#endif

    // The report itself is also bitwise-identical (the engine's core
    // determinism guarantee, restated here next to the metrics one).
    ASSERT_EQ(serial.bias.outcomes.size(), parallel.bias.outcomes.size());
    for (std::size_t i = 0; i < serial.bias.outcomes.size(); ++i)
        EXPECT_EQ(serial.bias.outcomes[i].speedup,
                  parallel.bias.outcomes[i].speedup);
}

} // namespace
