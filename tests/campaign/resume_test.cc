/**
 * @file
 * Resumability: a campaign killed mid-run (simulated by truncating
 * its JSONL store to a prefix plus a torn partial line) resumes
 * without re-executing any persisted task and still produces the
 * bitwise-identical report.
 */
#include <gtest/gtest.h>

#include <bit>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "campaign/engine.hh"
#include "campaign/store.hh"

namespace
{

using namespace mbias;
using campaign::CampaignEngine;
using campaign::CampaignOptions;
using campaign::CampaignSpec;

constexpr unsigned num_tasks = 24;

CampaignSpec
testSpec()
{
    CampaignSpec spec;
    spec.withExperiment(core::ExperimentSpec().withWorkload("milc"))
        .withSpace(core::SetupSpace().varyEnvSize().varyLinkOrder(),
                   num_tasks)
        .withSeed(99);
    return spec;
}

std::vector<std::string>
readLines(const std::string &path)
{
    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

std::vector<std::uint64_t>
bits(const campaign::CampaignReport &r)
{
    std::vector<std::uint64_t> out;
    for (const auto &o : r.bias.outcomes)
        out.push_back(std::bit_cast<std::uint64_t>(o.speedup));
    return out;
}

TEST(CampaignResume, KillAndResumeRecoversWithoutRecompute)
{
    const std::string path =
        testing::TempDir() + "/mbias_resume_test.jsonl";
    std::filesystem::remove(path);

    CampaignOptions opts;
    opts.jobs = 2;
    opts.outPath = path;
    auto full = CampaignEngine(testSpec(), opts).run();
    EXPECT_EQ(full.stats.totalTasks, num_tasks);
    EXPECT_EQ(full.stats.executed, num_tasks);

    // The store self-describes: a provenance header line, one record
    // per task, and a metrics trailer.
    const auto lines = readLines(path);
    ASSERT_EQ(lines.size(), num_tasks + 2);
    EXPECT_EQ(lines.front().rfind("{\"mbias_store\"", 0), 0u);
    EXPECT_EQ(lines.back().rfind("{\"mbias_metrics\"", 0), 0u);

    // Simulate a kill after 9 completed tasks: keep the header, 9
    // whole records, and the torn prefix of a 10th, exactly what a
    // dead process leaves behind mid-append.
    constexpr unsigned survived = 9;
    {
        std::ofstream out(path, std::ios::trunc);
        for (unsigned i = 0; i <= survived; ++i)
            out << lines[i] << "\n";
        const auto &torn = lines[survived + 1];
        out << torn.substr(0, torn.size() / 2);
    }

    opts.resume = true;
    auto resumed = CampaignEngine(testSpec(), opts).run();
    EXPECT_EQ(resumed.stats.resumedFromStore, survived);
    EXPECT_EQ(resumed.stats.executed, num_tasks - survived);
    EXPECT_EQ(bits(resumed), bits(full)) << "resume changed results";

    // Everything is persisted now: a second resume executes nothing.
    auto third = CampaignEngine(testSpec(), opts).run();
    EXPECT_EQ(third.stats.executed, 0u);
    EXPECT_EQ(third.stats.resumedFromStore, num_tasks);
    EXPECT_EQ(bits(third), bits(full));

    // The store healed the torn line: every non-meta line now parses.
    for (const auto &line : readLines(path)) {
        if (line.empty() || line.rfind("{\"mbias_", 0) == 0)
            continue;
        campaign::TaskRecord rec;
        EXPECT_TRUE(campaign::TaskRecord::fromJson(line, rec));
    }
    std::filesystem::remove(path);
}

TEST(CampaignResume, FreshRunDiscardsStaleStore)
{
    const std::string path =
        testing::TempDir() + "/mbias_fresh_test.jsonl";
    std::filesystem::remove(path);

    CampaignOptions opts;
    opts.jobs = 1;
    opts.outPath = path;
    auto first = CampaignEngine(testSpec(), opts).run();
    EXPECT_EQ(first.stats.executed, num_tasks);

    // Without --resume the store is reset, not reused.
    auto again = CampaignEngine(testSpec(), opts).run();
    EXPECT_EQ(again.stats.executed, num_tasks);
    EXPECT_EQ(again.stats.resumedFromStore, 0u);
    // Header + one record per task + metrics trailer.
    EXPECT_EQ(readLines(path).size(), num_tasks + 2);
    std::filesystem::remove(path);
}

} // namespace
