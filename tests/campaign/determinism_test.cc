/**
 * @file
 * The campaign engine's central promise: a parallel campaign is
 * bitwise-identical to a serial one, for any thread count, schedule,
 * or completion order.  Also unit-tests the work-stealing pool the
 * promise rides on.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <vector>

#include "campaign/engine.hh"
#include "campaign/threadpool.hh"

namespace
{

using namespace mbias;
using campaign::CampaignEngine;
using campaign::CampaignOptions;
using campaign::CampaignSpec;
using campaign::ThreadPool;

TEST(ThreadPool, RunsEveryTaskExactlyOnce)
{
    for (unsigned jobs : {1u, 2u, 8u}) {
        constexpr std::size_t count = 1000;
        std::vector<std::atomic<unsigned>> ran(count);
        ThreadPool pool(jobs);
        pool.parallelFor(count, [&](std::size_t i, unsigned w) {
            ASSERT_LT(w, pool.jobs());
            ran[i].fetch_add(1);
        });
        for (std::size_t i = 0; i < count; ++i)
            EXPECT_EQ(ran[i].load(), 1u) << "task " << i;
    }
}

TEST(ThreadPool, MoreJobsThanTasks)
{
    std::vector<std::atomic<unsigned>> ran(3);
    ThreadPool pool(16);
    pool.parallelFor(3, [&](std::size_t i, unsigned) { ran[i]++; });
    for (auto &r : ran)
        EXPECT_EQ(r.load(), 1u);
    ThreadPool zero(0); // treated as 1
    EXPECT_EQ(zero.jobs(), 1u);
    zero.parallelFor(0, [&](std::size_t, unsigned) { FAIL(); });
}

TEST(ThreadPool, StealingDrainsImbalancedLoad)
{
    // Worker 0's share is made artificially slow; the others must
    // steal the rest of its deque for the sweep to finish promptly.
    constexpr std::size_t count = 64;
    std::atomic<std::size_t> done{0};
    ThreadPool pool(4);
    pool.parallelFor(count, [&](std::size_t i, unsigned) {
        if (i == 0) {
            volatile std::uint64_t sink = 0;
            for (int k = 0; k < 2'000'000; ++k)
                sink += k;
        }
        done.fetch_add(1);
    });
    EXPECT_EQ(done.load(), count);
}

/** Speedup bit patterns of a campaign run with @p jobs workers. */
std::vector<std::uint64_t>
speedupBits(const CampaignSpec &spec, unsigned jobs)
{
    CampaignOptions opts;
    opts.jobs = jobs;
    auto report = CampaignEngine(spec, opts).run();
    std::vector<std::uint64_t> bits;
    for (const auto &o : report.bias.outcomes)
        bits.push_back(std::bit_cast<std::uint64_t>(o.speedup));
    return bits;
}

// The acceptance bar for the subsystem: >= 200 setup x seed tasks,
// --jobs 8 bitwise-equal to --jobs 1.
TEST(CampaignDeterminism, ParallelEqualsSerialAt200Tasks)
{
    CampaignSpec spec; // perl, core2like, gcc O2 vs O3
    spec.withSpace(core::SetupSpace().varyEnvSize().varyLinkOrder(), 200)
        .withSeed(0xca11ab1eULL);
    const auto serial = speedupBits(spec, 1);
    const auto parallel = speedupBits(spec, 8);
    ASSERT_EQ(serial.size(), 200u);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], parallel[i]) << "task " << i;
}

// Same promise for the ASLR repetition plan, whose per-run seeds all
// derive from task seeds (never from execution order).
TEST(CampaignDeterminism, AslrPlanIsScheduleIndependent)
{
    CampaignSpec spec;
    spec.withSpace(core::SetupSpace().varyEnvSize(), 12)
        .withPlan({campaign::RepetitionPlan::Kind::AslrRandomized, 5})
        .withSeed(7);
    EXPECT_EQ(speedupBits(spec, 1), speedupBits(spec, 8));
}

TEST(CampaignDeterminism, ExpansionIsAPureFunctionOfSpec)
{
    CampaignSpec spec;
    spec.withSpace(core::SetupSpace().varyEnvSize().varyLinkOrder(), 32)
        .withSeed(3);
    const auto a = spec.expand();
    const auto b = spec.expand();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].setup, b[i].setup);
        EXPECT_EQ(a[i].taskSeed, b[i].taskSeed);
        EXPECT_EQ(a[i].index, i);
    }
    // Distinct seeds sample distinct setup sequences.
    CampaignSpec other = spec;
    other.withSeed(4);
    const auto c = other.expand();
    unsigned same = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        same += a[i].setup == c[i].setup;
    EXPECT_LT(same, 4u);
}

} // namespace
