/**
 * @file
 * The repetition-plan kinds added for the pipeline lowering
 * (BaselineOnly, NoiseRepeated, NoisePaired): each must reproduce the
 * corresponding serial ExperimentRunner derivation bit for bit, at
 * any job count.
 */
#include <gtest/gtest.h>

#include "campaign/engine.hh"
#include "core/runner.hh"
#include "core/setup.hh"

namespace
{

using namespace mbias;
using Kind = campaign::RepetitionPlan::Kind;

campaign::CampaignReport
run(const campaign::CampaignSpec &cspec, unsigned jobs)
{
    campaign::CampaignOptions opts;
    opts.jobs = jobs;
    return campaign::CampaignEngine(cspec, opts).run();
}

TEST(RepetitionPlans, BaselineOnlyMatchesRunSide)
{
    core::ExperimentSpec spec;
    const auto setups = core::SetupSpace().varyEnvSize().grid(6);
    campaign::CampaignSpec cspec;
    cspec.withExperiment(spec)
        .withSetups(setups)
        .withPlan({Kind::BaselineOnly, 1});
    const auto report = run(cspec, 1);

    core::ExperimentRunner runner(spec);
    ASSERT_EQ(report.bias.outcomes.size(), setups.size());
    for (std::size_t i = 0; i < setups.size(); ++i) {
        const auto &o = report.bias.outcomes[i];
        const auto ref = runner.runSide(spec.baseline, setups[i]);
        EXPECT_EQ(o.baseline.cycles(), ref.cycles());
        EXPECT_EQ(o.baseline.instructions(), ref.instructions());
        EXPECT_DOUBLE_EQ(o.speedup, 1.0);
        EXPECT_TRUE(o.treatment.halted);
    }
}

TEST(RepetitionPlans, NoiseRepeatedMatchesRepeatedMetric)
{
    core::ExperimentSpec spec;
    core::ExperimentSetup s;
    s.envBytes = 36;
    campaign::CampaignSpec cspec;
    cspec.withExperiment(spec)
        .withSeededSetups({{s, 1000}, {s, 1010}})
        .withPlan({Kind::NoiseRepeated, 3});
    const auto report = run(cspec, 1);

    core::ExperimentRunner runner(spec);
    ASSERT_EQ(report.bias.outcomes.size(), 2u);
    for (std::size_t i = 0; i < 2; ++i) {
        const auto ref = runner.repeatedMetric(spec.baseline, s, 3,
                                               1000 + 10 * i);
        EXPECT_EQ(report.bias.outcomes[i].repBaseline, ref.values());
    }
}

TEST(RepetitionPlans, NoisePairedMatchesBothSides)
{
    core::ExperimentSpec spec;
    core::ExperimentSetup s;
    s.envBytes = 300;
    campaign::CampaignSpec cspec;
    cspec.withExperiment(spec)
        .withSeededSetups({{s, 0xfeed}})
        .withPlan({Kind::NoisePaired, 4, 7919});
    const auto report = run(cspec, 1);

    core::ExperimentRunner runner(spec);
    const auto base = runner.repeatedMetric(spec.baseline, s, 4, 0xfeed);
    const auto treat =
        runner.repeatedMetric(spec.treatment, s, 4, 0xfeed + 7919);
    ASSERT_EQ(report.bias.outcomes.size(), 1u);
    const auto &o = report.bias.outcomes[0];
    EXPECT_EQ(o.repBaseline, base.values());
    EXPECT_EQ(o.repTreatment, treat.values());
    EXPECT_DOUBLE_EQ(o.speedup, base.mean() / treat.mean());
}

TEST(RepetitionPlans, ParallelExecutionIsBitIdentical)
{
    core::ExperimentSpec spec;
    std::vector<campaign::SeededSetup> seeded;
    for (unsigned i = 0; i < 8; ++i) {
        core::ExperimentSetup s;
        s.envBytes = 36 + i * 511;
        seeded.push_back({s, 1000 + 10 * i});
    }
    campaign::CampaignSpec cspec;
    cspec.withExperiment(spec)
        .withSeededSetups(seeded)
        .withPlan({Kind::NoisePaired, 3, 7919});
    const auto serial = run(cspec, 1);
    const auto parallel = run(cspec, 8);

    ASSERT_EQ(serial.bias.outcomes.size(), parallel.bias.outcomes.size());
    for (std::size_t i = 0; i < serial.bias.outcomes.size(); ++i) {
        const auto &a = serial.bias.outcomes[i];
        const auto &b = parallel.bias.outcomes[i];
        EXPECT_EQ(a.repBaseline, b.repBaseline);
        EXPECT_EQ(a.repTreatment, b.repTreatment);
        EXPECT_DOUBLE_EQ(a.speedup, b.speedup);
    }
}

TEST(RepetitionPlans, SpAlignOverrideMatchesRunnerOverride)
{
    core::ExperimentSpec spec;
    const auto setups = core::SetupSpace().varyEnvSize().grid(5);
    campaign::CampaignSpec cspec;
    cspec.withExperiment(spec)
        .withSetups(setups)
        .withPlan({Kind::BaselineOnly, 1})
        .withSpAlign(64);
    const auto report = run(cspec, 2);

    core::ExperimentRunner runner(spec);
    runner.setSpAlignOverride(64);
    for (std::size_t i = 0; i < setups.size(); ++i) {
        const auto ref = runner.runSide(spec.baseline, setups[i]);
        EXPECT_EQ(report.bias.outcomes[i].baseline.cycles(),
                  ref.cycles());
    }
}

} // namespace
