/** @file Tests for Function, Module, and ProgramBuilder. */
#include <gtest/gtest.h>

#include "isa/builder.hh"

namespace
{

using namespace mbias::isa;
using namespace mbias::isa::reg;

TEST(Function, LabelsBindAndResolve)
{
    Function f("f");
    auto l0 = f.newLabel("start");
    f.insts().push_back(makeNop());
    f.bindLabel(l0, 0);
    EXPECT_EQ(f.labelTarget(l0), 0u);
    EXPECT_EQ(f.labelName(l0), "start");
    EXPECT_TRUE(f.allLabelsBound());
}

TEST(Function, UnboundLabelDetected)
{
    Function f("f");
    f.newLabel();
    EXPECT_FALSE(f.allLabelsBound());
}

TEST(Function, LeafDetection)
{
    Function leaf("leaf");
    leaf.insts().push_back(makeRet());
    EXPECT_TRUE(leaf.isLeaf());

    Function caller("caller");
    caller.insts().push_back(makeCall("leaf"));
    caller.insts().push_back(makeRet());
    EXPECT_FALSE(caller.isLeaf());
}

TEST(Function, CodeBytesSumsEncodedSizes)
{
    Function f("f");
    f.insts().push_back(makeRR(Opcode::Add, 1, 2, 3)); // 3
    f.insts().push_back(makeLi(1, 7));                 // 6
    f.insts().push_back(makeRet());                    // 1
    EXPECT_EQ(f.codeBytes(), 10u);
}

TEST(Module, GlobalsAndLookup)
{
    Module m("m");
    m.addGlobal("zeroed", 128, 16);
    m.addGlobal("init", std::vector<std::uint8_t>{1, 2, 3});
    ASSERT_EQ(m.globals().size(), 2u);
    EXPECT_EQ(m.globals()[0].size, 128u);
    EXPECT_EQ(m.globals()[0].alignment, 16u);
    EXPECT_TRUE(m.globals()[0].init.empty());
    EXPECT_EQ(m.globals()[1].size, 3u);

    m.addFunction(Function("f"));
    EXPECT_NE(m.findFunction("f"), nullptr);
    EXPECT_EQ(m.findFunction("g"), nullptr);
}

TEST(Builder, ForwardAndBackwardLabels)
{
    ProgramBuilder b("t");
    b.func("main");
    b.li(t0, 3);
    b.label("loop");           // bound at index 1
    b.addi(t0, t0, -1);
    b.bne(t0, zero, "loop");   // backward
    b.beq(t0, zero, "done");   // forward
    b.nop();
    b.label("done");
    b.halt();
    b.endFunc();
    Module m = b.build();

    const Function *f = m.findFunction("main");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(f->insts().size(), 6u);
    const auto &back = f->insts()[2];
    EXPECT_EQ(f->labelTarget(back.target), 1u);
    const auto &fwd = f->insts()[3];
    EXPECT_EQ(f->labelTarget(fwd.target), 5u);
}

TEST(Builder, LabelsAreFunctionScoped)
{
    ProgramBuilder b("t");
    b.func("a");
    b.label("x");
    b.ret();
    b.endFunc();
    b.func("b");
    b.label("x"); // same name, fresh label
    b.ret();
    b.endFunc();
    Module m = b.build();
    EXPECT_EQ(m.functions().size(), 2u);
    EXPECT_TRUE(m.functions()[0].allLabelsBound());
    EXPECT_TRUE(m.functions()[1].allLabelsBound());
}

TEST(Builder, GlobalWordsLittleEndian)
{
    ProgramBuilder b("t");
    b.globalWords("w", {0x0102030405060708ULL});
    Module m = b.build();
    const auto &g = m.globals()[0];
    ASSERT_EQ(g.size, 8u);
    EXPECT_EQ(g.init[0], 0x08);
    EXPECT_EQ(g.init[7], 0x01);
}

TEST(Builder, EmitsExpectedOpcodes)
{
    ProgramBuilder b("t");
    b.func("f");
    b.mv(a0, a1);
    b.la(t0, "g");
    b.st4(t1, t2, 12);
    b.jmp("end");
    b.label("end");
    b.ret();
    b.endFunc();
    Module m = b.build();
    const auto &insts = m.functions()[0].insts();
    EXPECT_EQ(insts[0].op, Opcode::Addi); // mv is addi rd, rs, 0
    EXPECT_EQ(insts[0].imm, 0);
    EXPECT_EQ(insts[1].op, Opcode::La);
    EXPECT_EQ(insts[1].sym, "g");
    EXPECT_EQ(insts[2].op, Opcode::St4);
    EXPECT_EQ(insts[3].op, Opcode::Jmp);
    EXPECT_EQ(insts[4].op, Opcode::Ret);
}

TEST(Builder, FunctionStrListsLabels)
{
    ProgramBuilder b("t");
    b.func("f");
    b.label("top");
    b.nop();
    b.ret();
    b.endFunc();
    Module m = b.build();
    const std::string s = m.functions()[0].str();
    EXPECT_NE(s.find("top"), std::string::npos);
    EXPECT_NE(s.find("nop"), std::string::npos);
}

} // namespace
