/** @file Tests for opcode metadata and instruction encoding. */
#include <gtest/gtest.h>

#include "isa/instruction.hh"
#include "isa/opcode.hh"

namespace
{

using namespace mbias::isa;

TEST(Opcode, NamesAndClasses)
{
    EXPECT_EQ(opcodeName(Opcode::Add), "add");
    EXPECT_EQ(opcodeName(Opcode::Halt), "halt");
    EXPECT_EQ(opClass(Opcode::Add), OpClass::IntAlu);
    EXPECT_EQ(opClass(Opcode::Mul), OpClass::IntMul);
    EXPECT_EQ(opClass(Opcode::Divu), OpClass::IntDiv);
    EXPECT_EQ(opClass(Opcode::Ld4), OpClass::Load);
    EXPECT_EQ(opClass(Opcode::St8), OpClass::Store);
    EXPECT_EQ(opClass(Opcode::Beq), OpClass::CondBranch);
    EXPECT_EQ(opClass(Opcode::Call), OpClass::Call);
}

TEST(Opcode, Predicates)
{
    EXPECT_TRUE(isCondBranch(Opcode::Bgeu));
    EXPECT_FALSE(isCondBranch(Opcode::Jmp));
    EXPECT_TRUE(isLoad(Opcode::Ld1));
    EXPECT_FALSE(isLoad(Opcode::St1));
    EXPECT_TRUE(isStore(Opcode::St2));
}

TEST(Opcode, MemAccessSizes)
{
    EXPECT_EQ(memAccessSize(Opcode::Ld1), 1u);
    EXPECT_EQ(memAccessSize(Opcode::Ld2), 2u);
    EXPECT_EQ(memAccessSize(Opcode::Ld4), 4u);
    EXPECT_EQ(memAccessSize(Opcode::Ld8), 8u);
    EXPECT_EQ(memAccessSize(Opcode::St8), 8u);
    EXPECT_EQ(memAccessSize(Opcode::Add), 0u);
}

TEST(Opcode, BranchInversionIsInvolution)
{
    for (Opcode op : {Opcode::Beq, Opcode::Bne, Opcode::Blt, Opcode::Bge,
                      Opcode::Bltu, Opcode::Bgeu}) {
        EXPECT_NE(invertCondBranch(op), op);
        EXPECT_EQ(invertCondBranch(invertCondBranch(op)), op);
    }
}

TEST(Instruction, VariableLengthEncoding)
{
    EXPECT_EQ(makeRR(Opcode::Add, 1, 2, 3).encodedSize(), 3u);
    EXPECT_EQ(makeRI(Opcode::Addi, 1, 2, 5).encodedSize(), 4u);
    EXPECT_EQ(makeRI(Opcode::Addi, 1, 2, 500).encodedSize(), 6u);
    EXPECT_EQ(makeRI(Opcode::Addi, 1, 2, -128).encodedSize(), 4u);
    EXPECT_EQ(makeRI(Opcode::Addi, 1, 2, -129).encodedSize(), 6u);
    EXPECT_EQ(makeLi(1, 100).encodedSize(), 6u);
    EXPECT_EQ(makeLi(1, std::int64_t(1) << 40).encodedSize(), 10u);
    EXPECT_EQ(makeMem(Opcode::Ld8, 1, 2, 8).encodedSize(), 4u);
    EXPECT_EQ(makeMem(Opcode::Ld8, 1, 2, 4096).encodedSize(), 6u);
    EXPECT_EQ(makeBranch(Opcode::Beq, 1, 2, 0).encodedSize(), 4u);
    EXPECT_EQ(makeJmp(0).encodedSize(), 5u);
    EXPECT_EQ(makeCall("f").encodedSize(), 5u);
    EXPECT_EQ(makeRet().encodedSize(), 1u);
    EXPECT_EQ(makeNop().encodedSize(), 1u);
    EXPECT_EQ(makeNop(8).encodedSize(), 8u);
    EXPECT_EQ(makeHalt().encodedSize(), 2u);
}

TEST(Instruction, LaEncodesLikeNarrowLi)
{
    EXPECT_EQ(makeLa(5, "g").encodedSize(), 6u);
}

TEST(Instruction, ReadsWrites)
{
    auto add = makeRR(Opcode::Add, 1, 2, 3);
    EXPECT_TRUE(add.reads(2));
    EXPECT_TRUE(add.reads(3));
    EXPECT_FALSE(add.reads(1));
    EXPECT_TRUE(add.writes(1));
    EXPECT_EQ(add.destReg(), 1);

    auto addi = makeRI(Opcode::Addi, 4, 5, 1);
    EXPECT_TRUE(addi.reads(5));
    EXPECT_FALSE(addi.reads(0)); // rs2 slot is not an operand here
    EXPECT_TRUE(addi.writes(4));

    auto ld = makeMem(Opcode::Ld8, 6, 7, 0);
    EXPECT_TRUE(ld.reads(7));
    EXPECT_FALSE(ld.reads(6));
    EXPECT_TRUE(ld.writes(6));

    auto st = makeMem(Opcode::St8, 6, 7, 0);
    EXPECT_TRUE(st.reads(7)); // base
    EXPECT_TRUE(st.reads(6)); // data
    EXPECT_FALSE(st.writes(6));
    EXPECT_EQ(st.destReg(), -1);

    auto br = makeBranch(Opcode::Blt, 8, 9, 0);
    EXPECT_TRUE(br.reads(8));
    EXPECT_TRUE(br.reads(9));
    EXPECT_EQ(br.destReg(), -1);
}

TEST(Instruction, ZeroRegisterNeverReadNorWritten)
{
    auto add = makeRR(Opcode::Add, 0, 0, 0);
    EXPECT_FALSE(add.reads(0));
    EXPECT_FALSE(add.writes(0));
    EXPECT_EQ(add.destReg(), -1);
}

TEST(Instruction, StrRendering)
{
    EXPECT_EQ(makeRR(Opcode::Add, 1, 2, 3).str(), "add x1, x2, x3");
    EXPECT_EQ(makeLi(5, 42).str(), "li x5, 42");
    EXPECT_EQ(makeCall("foo").str(), "call foo");
    EXPECT_EQ(makeMem(Opcode::Ld8, 1, 2, -8).str(), "ld8 x1, [x2 + -8]");
}

} // namespace
