/**
 * @file
 * Figure 6: causal analysis of the env-size bias (the paper's second
 * remedy).  Step 1 correlates hardware counters with cycles across
 * setups to nominate the mechanism; step 2 intervenes (forcing stack
 * alignment, disabling the suspected penalty) and checks that the
 * setup-induced variation collapses.
 */
#include <cstdio>

#include "core/causal.hh"
#include "core/experiment.hh"
#include "core/setup.hh"

using namespace mbias;

int
main()
{
    std::printf("Figure 6: causal analysis of environment-size bias "
                "(perl, core2like, gcc O2)\n\n");
    core::ExperimentSpec spec;
    auto setups = core::SetupSpace().varyEnvSize().grid(48);

    core::CausalAnalyzer analyzer;
    auto report = analyzer.analyze(spec, setups);
    std::printf("%s\n", report.str().c_str());

    std::printf("and of link-order bias (perl, core2like, gcc O2):\n\n");
    auto link_setups = core::SetupSpace().varyLinkOrder().grid(32);
    auto link_report = analyzer.analyze(spec, link_setups);
    std::printf("%s\n", link_report.str().c_str());
    return 0;
}
