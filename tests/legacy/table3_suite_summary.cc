/**
 * @file
 * Extension harness A4: the SPEC-style aggregate.  Marketing numbers
 * are geometric means over a suite; this harness shows the aggregate
 * too carries setup-induced uncertainty — and reports it the way the
 * paper says results should be reported: with an interval over the
 * setup distribution.
 */
#include <cstdio>

#include "core/experiment.hh"
#include "core/runner.hh"
#include "core/setup.hh"
#include "core/table.hh"
#include "stats/ci.hh"
#include "stats/sample.hh"
#include "workloads/registry.hh"

using namespace mbias;

int
main()
{
    constexpr unsigned num_setups = 17;
    std::printf("A4: suite-wide geomean O3 speedup per setup "
                "(core2like, gcc, %u setups)\n\n", num_setups);

    core::SetupRandomizer randomizer(
        core::SetupSpace().varyEnvSize().varyLinkOrder(), 0xa44);
    const auto setups = randomizer.sample(num_setups);

    // One "SPEC run" per setup: geomean across the suite.
    stats::Sample geomeans;
    core::TextTable t({"setup", "geomean O3 speedup"});
    for (const auto &setup : setups) {
        stats::Sample per_workload;
        for (const auto *w : workloads::suite()) {
            core::ExperimentSpec spec;
            spec.withWorkload(w->name());
            core::ExperimentRunner runner(spec);
            per_workload.add(runner.run(setup).speedup);
        }
        const double gm = per_workload.geomean();
        geomeans.add(gm);
        t.addRow({setup.str(), core::fmt(gm)});
    }
    std::printf("%s\n", t.str().c_str());

    auto ci = stats::tInterval(geomeans);
    std::printf("suite geomean speedup: %s (CI over setups)\n",
                ci.str().c_str());
    std::printf("range across setups : [%.4f, %.4f]\n", geomeans.min(),
                geomeans.max());
    std::printf("even the aggregate \"marketing number\" moves with "
                "factors no datasheet reports.\n");
    return 0;
}
