/**
 * @file
 * Figure 3 (the excerpt embedded in the task's source is genuine for
 * this one): the effect of UNIX environment size on the speedup of O3
 * on Core 2, for the perl workload.  The paper's published series
 * sweeps roughly 0.92x-1.10x and crosses 1.0: the environment alone
 * decides whether -O3 "helps".
 *
 * Runs on the campaign engine: the 205-point env grid is expanded
 * into a deterministic task list and executed on a work-stealing
 * pool (`--jobs N`); the series is identical for every job count.
 */
#include <cstdio>

#include "bench_args.hh"
#include "campaign/engine.hh"
#include "core/experiment.hh"
#include "core/setup.hh"
#include "stats/sample.hh"

using namespace mbias;

int
main(int argc, char **argv)
{
    const unsigned jobs = benchutil::jobsFromArgs(argc, argv);
    std::printf("Figure 3: O3 speedup vs UNIX environment size "
                "(perl, core2like, gcc)\n\n");
    std::printf("%8s  %10s  %10s  %8s\n", "envBytes", "O2 cycles",
                "O3 cycles", "speedup");

    std::vector<core::ExperimentSetup> setups;
    for (std::uint64_t env = 0; env <= 4096; env += 20) {
        core::ExperimentSetup setup;
        setup.envBytes = env;
        setups.push_back(setup);
    }

    campaign::CampaignSpec cspec; // perl on core2like by default
    cspec.withSetups(setups);
    campaign::CampaignOptions opts;
    opts.jobs = jobs;
    auto report = campaign::CampaignEngine(cspec, opts).run();

    stats::Sample sp;
    unsigned below = 0, above = 0;
    for (const auto &o : report.bias.outcomes) {
        sp.add(o.speedup);
        below += o.speedup < 1.0;
        above += o.speedup > 1.0;
        std::printf("%8llu  %10llu  %10llu  %8.4f\n",
                    (unsigned long long)o.setup.envBytes,
                    (unsigned long long)o.baseline.cycles(),
                    (unsigned long long)o.treatment.cycles(), o.speedup);
    }
    std::printf("\nspeedup range [%.4f, %.4f]; %u setups say O3 hurts, "
                "%u say it helps\n",
                sp.min(), sp.max(), below, above);
    std::printf("paper's shape: range straddles 1.0 (published: ~0.92 to "
                "~1.10 for perlbench)\n");
    std::printf("[campaign: %s]\n", report.stats.str().c_str());
    // Machine-readable execution metrics; reproduce_all.sh lifts this
    // line into results/BENCH_campaign.json.
    std::printf("[metrics] %s\n", report.metrics.toJson().c_str());
    return 0;
}
