/**
 * @file
 * Extension harness A2: variance decomposition for the whole suite.
 * For each workload: the within-setup CI from 15 noisy repetitions at
 * an arbitrary home setup, vs the between-setup distribution.  A
 * variance ratio >> 1 with a disjoint CI is the "tight interval around
 * the wrong value" failure mode the paper warns about.
 */
#include <cstdio>

#include "bench_args.hh"
#include "core/setup.hh"
#include "core/table.hh"
#include "core/variance.hh"
#include "workloads/registry.hh"

using namespace mbias;

int
main(int argc, char **argv)
{
    const auto args = benchutil::BenchArgs::parse(argc, argv);
    std::printf("A2: within-setup noise vs between-setup bias "
                "(core2like, gcc O2 vs O3)\n\n");
    core::TextTable t({"workload", "repetition CI (one setup)",
                       "cross-setup mean", "var ratio",
                       "false confidence"});
    core::VarianceAnalyzer analyzer(15, 0xfeed, args.confidence);
    core::ExperimentSetup home;
    home.envBytes = 300;
    auto peers = core::SetupSpace().varyEnvSize().grid(16);

    unsigned fooled = 0;
    for (const auto *w : workloads::suite()) {
        core::ExperimentSpec spec;
        spec.withWorkload(w->name());
        auto r = analyzer.analyze(spec, home, peers);
        fooled += r.falseConfidence;
        t.addRow({w->name(),
                  "[" + core::fmt(r.withinCI.lower) + ", " +
                      core::fmt(r.withinCI.upper) + "]",
                  core::fmt(r.betweenSetups.mean()),
                  core::fmt(r.varianceRatio, 1),
                  r.falseConfidence ? "YES" : "no"});
    }
    std::printf("%s\n", t.str().c_str());
    std::printf("%u of %zu workloads yield a tight repetition CI that "
                "excludes the cross-setup mean:\n"
                "repetition controls noise, not bias.\n",
                fooled, workloads::suite().size());
    return 0;
}
