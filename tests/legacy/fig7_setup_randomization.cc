/**
 * @file
 * Figure 7: experimental setup randomization (the paper's first
 * remedy).  For every workload, the O3-over-O2 effect is estimated
 * from 31 randomized setups with a confidence interval over the setup
 * distribution, and the single-setup "wrong data" risk is quantified.
 *
 * Runs on the campaign engine: each workload's setups are sampled
 * from per-task RNG streams (keyed by task index) and executed on a
 * work-stealing pool (`--jobs N`), so the whole-suite sweep scales
 * with cores while staying bit-reproducible.
 */
#include <cstdio>

#include "bench_args.hh"
#include "campaign/engine.hh"
#include "core/conclusion.hh"
#include "core/experiment.hh"
#include "core/setup.hh"
#include "core/table.hh"
#include "obs/metrics.hh"
#include "workloads/registry.hh"

using namespace mbias;

int
main(int argc, char **argv)
{
    const auto args = benchutil::BenchArgs::parse(argc, argv);
    const unsigned jobs = args.jobs;
    constexpr unsigned num_setups = 31;
    std::printf("Figure 7: randomized-setup estimation of the O3 effect "
                "(core2like, gcc, %u setups)\n\n",
                num_setups);
    char ciLabel[24];
    std::snprintf(ciLabel, sizeof(ciLabel), "%g%% CI",
                  args.confidence * 100.0);
    core::TextTable t({"workload", "speedup", ciLabel, "bias", "flips",
                       "verdict", "wrong data?"});

    core::ConclusionChecker checker;
    unsigned wrongable = 0;
    double wall = 0.0;
    obs::MetricsSnapshot metrics; // summed over per-workload campaigns
    for (const auto *w : workloads::suite()) {
        core::ExperimentSpec spec;
        spec.withWorkload(w->name());
        campaign::CampaignSpec cspec;
        cspec.withExperiment(spec)
            .withSpace(core::SetupSpace().varyEnvSize().varyLinkOrder(),
                       num_setups)
            .withSeed(0xf19u);
        campaign::CampaignOptions opts;
        opts.jobs = jobs;
        opts.confidence = args.confidence;
        opts.resamples = args.resamples;
        auto cr = campaign::CampaignEngine(cspec, opts).run();
        wall += cr.stats.wallSeconds;
        metrics.merge(cr.metrics);
        const auto &report = cr.bias;
        auto check = checker.check(report);
        wrongable += check.wrongDataPossible;
        t.addRow({w->name(), core::fmt(report.speedupCI.estimate),
                  "[" + core::fmt(report.speedupCI.lower) + ", " +
                      core::fmt(report.speedupCI.upper) + "]",
                  core::fmt(report.biasMagnitude),
                  std::to_string(report.conclusionFlips) + "/" +
                      std::to_string(num_setups),
                  core::verdictName(report.verdict),
                  check.wrongDataPossible ? "YES" : "no"});
    }
    std::printf("%s\n", t.str().c_str());
    std::printf("%u of %zu workloads admit single-setup experiments with "
                "contradictory conclusions;\n"
                "the randomized-setup CI reports the effect with its "
                "setup-induced uncertainty instead.\n",
                wrongable, workloads::suite().size());
    std::printf("[campaign: %u job(s), %.3f s total]\n", jobs, wall);
    // Machine-readable execution metrics; reproduce_all.sh lifts this
    // line into results/BENCH_campaign.json.
    std::printf("[metrics] %s\n", metrics.toJson().c_str());
    return 0;
}
