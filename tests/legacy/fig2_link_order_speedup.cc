/**
 * @file
 * Figure 2: the O3-over-O2 speedup of every suite workload across 33
 * link orders — min, median, and max.  Workloads whose [min, max]
 * range straddles 1.0 are those for which the link order alone decides
 * whether "O3 is beneficial".
 */
#include <cstdio>

#include "core/experiment.hh"
#include "core/runner.hh"
#include "core/table.hh"
#include "stats/sample.hh"
#include "workloads/registry.hh"

using namespace mbias;

int
main()
{
    constexpr unsigned num_orders = 33;
    std::printf("Figure 2: O3 speedup across %u link orders "
                "(core2like, gcc)\n\n",
                num_orders);
    core::TextTable t({"workload", "min", "median", "max", "range",
                       "crosses 1.0"});
    unsigned crossing = 0;
    for (const auto *w : workloads::suite()) {
        core::ExperimentSpec spec;
        spec.withWorkload(w->name());
        core::ExperimentRunner runner(spec);
        stats::Sample sp;
        for (unsigned s = 0; s < num_orders; ++s) {
            core::ExperimentSetup setup;
            setup.linkOrder = s == 0 ? toolchain::LinkOrder::asGiven()
                                     : toolchain::LinkOrder::shuffled(s);
            sp.add(runner.run(setup).speedup);
        }
        const bool crosses = sp.min() < 1.0 && sp.max() > 1.0;
        crossing += crosses;
        t.addRow({w->name(), core::fmt(sp.min()), core::fmt(sp.median()),
                  core::fmt(sp.max()), core::fmt(sp.range()),
                  crosses ? "YES" : "no"});
    }
    std::printf("%s\n", t.str().c_str());
    std::printf("%u of %zu workloads flip their O2-vs-O3 conclusion "
                "with link order alone\n",
                crossing, workloads::suite().size());
    return 0;
}
