/**
 * @file
 * Extension harness A5: the full optimization-level matrix.  The paper
 * asks "is O3 better than O2?"; the same trap applies to every level
 * pair and both vendors.  For each (baseline, treatment) pair this
 * prints the randomized-setup verdict and how often single setups
 * contradict it — showing the bias problem is about the *methodology*,
 * not the particular O2-vs-O3 question.
 */
#include <cstdio>

#include "core/bias.hh"
#include "core/conclusion.hh"
#include "core/experiment.hh"
#include "core/setup.hh"
#include "core/table.hh"

using namespace mbias;

int
main()
{
    constexpr unsigned num_setups = 15;
    std::printf("A5: verdicts for every optimization step "
                "(perl + gobmk, core2like, %u randomized setups)\n\n",
                num_setups);
    const toolchain::OptLevel levels[] = {
        toolchain::OptLevel::O0, toolchain::OptLevel::O1,
        toolchain::OptLevel::O2, toolchain::OptLevel::O3};

    core::TextTable t({"workload", "vendor", "question", "speedup CI",
                       "flips", "verdict"});
    for (const char *w : {"perl", "gobmk"}) {
        for (auto vendor : {toolchain::CompilerVendor::GccLike,
                            toolchain::CompilerVendor::IccLike}) {
            for (int i = 0; i + 1 < 4; ++i) {
                core::ExperimentSpec spec;
                spec.withWorkload(w)
                    .withBaseline({vendor, levels[i]})
                    .withTreatment({vendor, levels[i + 1]});
                core::SetupRandomizer randomizer(
                    core::SetupSpace().varyEnvSize().varyLinkOrder(),
                    0xa5a5);
                auto report = core::BiasAnalyzer().analyze(
                    spec, randomizer, num_setups);
                const std::string q =
                    toolchain::optLevelName(levels[i + 1]) + " > " +
                    toolchain::optLevelName(levels[i]) + "?";
                t.addRow({w, toolchain::vendorName(vendor), q,
                          "[" + core::fmt(report.speedupCI.lower) +
                              ", " + core::fmt(report.speedupCI.upper) +
                              "]",
                          std::to_string(report.conclusionFlips) + "/" +
                              std::to_string(num_setups),
                          core::verdictName(report.verdict)});
            }
        }
    }
    std::printf("%s\n", t.str().c_str());
    std::printf("only conclusions whose effect exceeds the bias "
                "survive; every other verdict is setup-dependent.\n");
    return 0;
}
