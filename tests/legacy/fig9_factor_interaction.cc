/**
 * @file
 * Extension harness A3: do the two setup factors interact?
 *
 * A balanced env x link-order factorial design with noisy replicates,
 * analyzed by two-way ANOVA.  A significant interaction means the
 * env-size effect depends on the link order (and vice versa): fixing
 * or reporting one factor cannot de-bias an experiment — exactly why
 * the paper prescribes randomizing the whole setup.
 */
#include <cstdio>

#include "core/experiment.hh"
#include "core/runner.hh"
#include "core/table.hh"
#include "stats/anova2.hh"

using namespace mbias;

namespace
{

constexpr unsigned env_levels = 4;
constexpr unsigned link_levels = 4;
constexpr unsigned reps = 3;

stats::TwoWayAnovaResult
interactionFor(const std::string &workload)
{
    core::ExperimentSpec spec;
    spec.withWorkload(workload);
    core::ExperimentRunner runner(spec);

    std::vector<std::vector<stats::Sample>> cells(
        env_levels, std::vector<stats::Sample>(link_levels));
    for (unsigned a = 0; a < env_levels; ++a) {
        for (unsigned b = 0; b < link_levels; ++b) {
            core::ExperimentSetup s;
            s.envBytes = 36 + a * 1021; // odd offsets hit misalignment
            s.linkOrder = b == 0 ? toolchain::LinkOrder::asGiven()
                                 : toolchain::LinkOrder::shuffled(b);
            cells[a][b] = runner.repeatedMetric(
                spec.baseline, s, reps,
                /* noise seeds */ 1000 * a + 10 * b);
        }
    }
    return stats::twoWayAnova(cells);
}

} // namespace

int
main()
{
    std::printf("A3: env x link-order factorial ANOVA on O2 cycles "
                "(core2like, gcc, %ux%u design, %u replicates)\n\n",
                env_levels, link_levels, reps);
    core::TextTable t({"workload", "F(env)", "p(env)", "F(link)",
                       "p(link)", "F(interact)", "p(interact)"});
    for (const char *w : {"perl", "gobmk", "hmmer", "sjeng"}) {
        auto r = interactionFor(w);
        t.addRow({w, core::fmt(r.fA, 1), core::fmt(r.pA, 4),
                  core::fmt(r.fB, 1), core::fmt(r.pB, 4),
                  core::fmt(r.fAB, 1), core::fmt(r.pAB, 4)});
    }
    std::printf("%s\n", t.str().c_str());
    std::printf("a significant interaction term means neither factor "
                "can be de-biased in isolation\n");
    return 0;
}
