/**
 * @file
 * Ablation A1: how much of the measured bias does each address-
 * dependent mechanism contribute?  Each row disables one mechanism in
 * the core2like model and re-measures the env-size and link-order
 * cycle spreads for perl.  (This is the design-choice ablation called
 * out in DESIGN.md, not a figure from the paper.)
 */
#include <cstdio>
#include <functional>

#include "core/experiment.hh"
#include "core/runner.hh"
#include "core/setup.hh"
#include "core/table.hh"
#include "stats/sample.hh"

using namespace mbias;

namespace
{

double
spreadPct(const sim::MachineConfig &machine,
          const std::vector<core::ExperimentSetup> &setups)
{
    core::ExperimentSpec spec;
    spec.withMachine(machine);
    core::ExperimentRunner runner(spec);
    stats::Sample cycles;
    for (const auto &s : setups)
        cycles.add(runner.metricOf(runner.runSide(spec.baseline, s)));
    return cycles.range() / cycles.median() * 100.0;
}

} // namespace

int
main()
{
    std::printf("Ablation: mechanism contributions to measurement bias "
                "(perl O2, core2like)\n\n");

    const auto env_setups = core::SetupSpace().varyEnvSize().grid(40);
    const auto link_setups = core::SetupSpace().varyLinkOrder().grid(24);

    struct Row
    {
        const char *name;
        std::function<void(sim::MachineConfig &)> tweak;
    };
    const Row rows[] = {
        {"full model", [](sim::MachineConfig &) {}},
        {"no line-split penalty",
         [](sim::MachineConfig &m) { m.enableLineSplitPenalty = false; }},
        {"no 4K-alias stalls",
         [](sim::MachineConfig &m) {
             m.enableStoreBufferAliasing = false;
         }},
        {"perfect branch prediction",
         [](sim::MachineConfig &m) { m.enableBranchPrediction = false; }},
        {"no BTB", [](sim::MachineConfig &m) { m.enableBtb = false; }},
        {"no fetch-block model",
         [](sim::MachineConfig &m) { m.enableFetchBlockModel = false; }},
        {"perfect caches",
         [](sim::MachineConfig &m) { m.enableCaches = false; }},
        {"perfect TLBs",
         [](sim::MachineConfig &m) { m.enableTlbs = false; }},
    };

    core::TextTable t({"model variant", "env spread %", "link spread %"});
    for (const auto &row : rows) {
        sim::MachineConfig m = sim::MachineConfig::core2Like();
        row.tweak(m);
        t.addRow({row.name, core::fmt(spreadPct(m, env_setups), 3),
                  core::fmt(spreadPct(m, link_setups), 3)});
    }
    std::printf("%s\n", t.str().c_str());
    std::printf("a mechanism 'owns' the bias along a factor when "
                "disabling it collapses that column\n");
    return 0;
}
