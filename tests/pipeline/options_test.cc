/**
 * @file
 * The shared pipeline flag parser: one grammar for the mbias CLI, the
 * figure wrapper binaries, and the microbenchmark shims.
 */
#include <gtest/gtest.h>

#include <vector>

#include "pipeline/options.hh"

namespace
{

using namespace mbias;

pipeline::ParsedArgs
parse(std::vector<const char *> args)
{
    args.insert(args.begin(), "prog");
    std::vector<char *> argv;
    for (const char *a : args)
        argv.push_back(const_cast<char *>(a));
    return pipeline::parsePipelineArgs(int(argv.size()), argv.data());
}

TEST(PipelineOptions, Defaults)
{
    const auto p = parse({});
    EXPECT_EQ(p.options.jobs, 1u);
    EXPECT_FALSE(p.options.seed.has_value());
    EXPECT_FALSE(p.options.resamples.has_value());
    EXPECT_FALSE(p.options.confidence.has_value());
    EXPECT_TRUE(p.options.tracePath.empty());
    EXPECT_FALSE(p.options.quiet);
    EXPECT_FALSE(p.options.verbose);
    EXPECT_TRUE(p.options.artifactCache);
    EXPECT_TRUE(p.rest.empty());
}

TEST(PipelineOptions, EveryFlag)
{
    const auto p = parse({"--jobs", "8", "--seed", "7", "--resamples",
                          "250", "--confidence", "0.99", "--trace",
                          "t.json", "--quiet", "--no-artifact-cache"});
    EXPECT_EQ(p.options.jobs, 8u);
    EXPECT_EQ(p.options.seedOr(42), 7u);
    EXPECT_EQ(p.options.resamplesOr(0), 250);
    EXPECT_DOUBLE_EQ(p.options.confidenceOr(), 0.99);
    EXPECT_EQ(p.options.tracePath, "t.json");
    EXPECT_TRUE(p.options.quiet);
    EXPECT_FALSE(p.options.artifactCache);
    EXPECT_TRUE(p.rest.empty());
}

TEST(PipelineOptions, EntryPointDefaultsFillUnsetFlags)
{
    // The per-entry-point historical defaults: `mbias analyze` uses
    // resamplesOr(1000), figures resamplesOr(0); both read the same
    // parsed flags.
    const auto p = parse({"--jobs", "2"});
    EXPECT_EQ(p.options.resamplesOr(1000), 1000);
    EXPECT_EQ(p.options.resamplesOr(0), 0);
    EXPECT_EQ(p.options.seedOr(42), 42u);
    EXPECT_DOUBLE_EQ(p.options.confidenceOr(0.95), 0.95);
}

TEST(PipelineOptions, NonPipelineArgsPassThroughInOrder)
{
    const auto p = parse({"campaign", "--workload", "milc", "--jobs",
                          "4", "--setups", "64"});
    EXPECT_EQ(p.options.jobs, 4u);
    const std::vector<std::string> want = {"campaign", "--workload",
                                           "milc", "--setups", "64"};
    EXPECT_EQ(p.rest, want);
}

TEST(PipelineOptions, ValueFlagWithoutValueIsIgnored)
{
    // The historical bench scanners tolerated a dangling value flag;
    // the shared parser keeps that leniency.
    const auto trailing = parse({"--jobs"});
    EXPECT_EQ(trailing.options.jobs, 1u);

    const auto chained = parse({"--jobs", "--quiet"});
    EXPECT_EQ(chained.options.jobs, 1u);
    EXPECT_TRUE(chained.options.quiet);
}

} // namespace
