/**
 * @file
 * The declarative sweep lowering: the pipeline's canonical setup/seed
 * derivations must be exactly the campaign engine's — a figure's tasks
 * are identical no matter which entry point lowers them.
 */
#include <gtest/gtest.h>

#include "campaign/spec.hh"
#include "core/experiment.hh"
#include "core/setup.hh"
#include "pipeline/sweep.hh"

namespace
{

using namespace mbias;

TEST(Sweep, LinkOrderGridIsAsGivenThenShuffled)
{
    const auto setups = pipeline::linkOrderSetups(4);
    ASSERT_EQ(setups.size(), 4u);
    EXPECT_EQ(setups[0].linkOrder, toolchain::LinkOrder::asGiven());
    for (unsigned s = 1; s < 4; ++s)
        EXPECT_EQ(setups[s].linkOrder, toolchain::LinkOrder::shuffled(s));

    const auto tasks = pipeline::Sweep(core::ExperimentSpec{})
                           .linkOrderGrid(4)
                           .toCampaignSpec()
                           .expand();
    ASSERT_EQ(tasks.size(), 4u);
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_EQ(tasks[i].setup, setups[i]);
}

TEST(Sweep, EnvGridStepsInclusively)
{
    const auto setups = pipeline::envGridSetups(100, 30);
    ASSERT_EQ(setups.size(), 4u);
    for (unsigned i = 0; i < 4; ++i) {
        EXPECT_EQ(setups[i].envBytes, 30u * i);
        EXPECT_EQ(setups[i].linkOrder, toolchain::LinkOrder::asGiven());
    }
    const auto offset = pipeline::envGridSetups(100, 30, 60);
    ASSERT_EQ(offset.size(), 2u);
    EXPECT_EQ(offset[0].envBytes, 60u);
    EXPECT_EQ(offset[1].envBytes, 90u);
}

TEST(Sweep, SequentialSetupsMatchLegacyRandomizer)
{
    const auto space = core::SetupSpace().varyEnvSize().varyLinkOrder();
    const auto ours = pipeline::sequentialSetups(space, 9, 0xa44);
    auto randomizer = core::SetupRandomizer(space, 0xa44);
    const auto theirs = randomizer.sample(9);
    EXPECT_EQ(ours, theirs);
}

TEST(Sweep, RandomizedLowersToWithSpace)
{
    const auto space = core::SetupSpace().varyEnvSize().varyLinkOrder();
    const auto ours = pipeline::Sweep(core::ExperimentSpec{})
                          .randomized(space, 7)
                          .seed(0xf19u)
                          .toCampaignSpec()
                          .expand();
    const auto theirs = campaign::CampaignSpec()
                            .withSpace(space, 7)
                            .withSeed(0xf19u)
                            .expand();
    ASSERT_EQ(ours.size(), theirs.size());
    for (std::size_t i = 0; i < ours.size(); ++i) {
        EXPECT_EQ(ours[i].setup, theirs[i].setup);
        EXPECT_EQ(ours[i].taskSeed, theirs[i].taskSeed);
    }
}

TEST(Sweep, DefaultSeedMatchesCampaignDefault)
{
    const auto setups = pipeline::envGridSetups(60, 30);
    const auto ours = pipeline::Sweep(core::ExperimentSpec{})
                          .setups(setups)
                          .toCampaignSpec()
                          .expand();
    const auto theirs =
        campaign::CampaignSpec().withSetups(setups).expand();
    ASSERT_EQ(ours.size(), theirs.size());
    for (std::size_t i = 0; i < ours.size(); ++i)
        EXPECT_EQ(ours[i].taskSeed, theirs[i].taskSeed);
}

TEST(Sweep, SeededSetupsPinTaskSeeds)
{
    core::ExperimentSetup home;
    home.envBytes = 300;
    const auto cspec =
        pipeline::Sweep(core::ExperimentSpec{})
            .seededSetups({{home, 0xfeed}, {home, 0xfeed + 104729}})
            .plan({campaign::RepetitionPlan::Kind::NoisePaired, 15,
                   7919})
            .toCampaignSpec();
    const auto tasks = cspec.expand();
    ASSERT_EQ(tasks.size(), 2u);
    EXPECT_EQ(tasks[0].taskSeed, 0xfeedu);
    EXPECT_EQ(tasks[1].taskSeed, 0xfeedu + 104729u);
    for (const auto &t : tasks) {
        EXPECT_EQ(t.plan.kind,
                  campaign::RepetitionPlan::Kind::NoisePaired);
        EXPECT_EQ(t.plan.reps, 15u);
        EXPECT_EQ(t.plan.treatSeedOffset, 7919u);
    }
}

TEST(Sweep, SpAlignPropagates)
{
    const auto cspec = pipeline::Sweep(core::ExperimentSpec{})
                           .setups(pipeline::envGridSetups(30, 30))
                           .spAlign(64)
                           .toCampaignSpec();
    EXPECT_EQ(cspec.spAlign, 64u);
}

} // namespace
