/**
 * @file
 * The figure registry: id/binary-name lookup and registration order.
 */
#include <gtest/gtest.h>

#include "pipeline/figure.hh"

namespace
{

using namespace mbias;

pipeline::FigureSpec
spec(const std::string &id, const std::string &binary)
{
    pipeline::FigureSpec s;
    s.id = id;
    s.binaryName = binary;
    s.title = "test spec " + id;
    s.render = [](pipeline::FigureContext &) {};
    return s;
}

// One process-wide registry; this test owns it (nothing else in this
// binary registers figures).
TEST(FigureRegistry, LookupByIdAndBinaryName)
{
    auto &reg = pipeline::FigureRegistry::instance();
    reg.add(spec("figA", "figA_first_driver"));
    reg.add(spec("tableB", "tableB_second_driver"));

    ASSERT_NE(reg.find("figA"), nullptr);
    EXPECT_EQ(reg.find("figA")->binaryName, "figA_first_driver");
    ASSERT_NE(reg.find("tableB_second_driver"), nullptr);
    EXPECT_EQ(reg.find("tableB_second_driver")->id, "tableB");
    EXPECT_EQ(reg.find("nope"), nullptr);
}

TEST(FigureRegistry, AllPreservesRegistrationOrder)
{
    auto &reg = pipeline::FigureRegistry::instance();
    reg.add(spec("figC", "figC_third_driver"));

    const auto &all = reg.all();
    ASSERT_GE(all.size(), 3u);
    EXPECT_EQ(all[0].id, "figA");
    EXPECT_EQ(all[1].id, "tableB");
    EXPECT_EQ(all[2].id, "figC");
}

} // namespace
