/**
 * @file
 * The record/replay tier's contract, held the fast path's strong way:
 * for every workload of the suite, across setups, machine presets,
 * noise seeds, ASLR draws, and truncating budgets, a replayed run must
 * produce a RunResult — cycles AND every performance counter —
 * bitwise identical to executing the same (image, budget, noise)
 * afresh through the reference-selected path.  On top of the
 * differential this file pins the single-recording-many-consumers
 * property (one stream serves every seed, preset, and ASLR draw), the
 * ReplayCache's hit/miss/negative accounting, the precondition
 * fallback (a machine with the tier toggled off), and the
 * MBIAS_SIM_REPLAY=0 escape hatch; a dedicated ctest leg reruns the
 * whole file under that hatch so the fallback path keeps the same
 * bits.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>

#include "isa/builder.hh"
#include "sim/machine.hh"
#include "sim/replay.hh"
#include "toolchain/compiler.hh"
#include "toolchain/linker.hh"
#include "toolchain/loader.hh"
#include "workloads/registry.hh"

namespace
{

using namespace mbias;

toolchain::ProcessImage
imageFor(const std::string &workload, const toolchain::LinkOrder &order,
         std::uint64_t env_bytes, std::uint64_t aslr_seed = 0)
{
    const auto &w = workloads::findWorkload(workload);
    toolchain::Compiler cc(toolchain::CompilerVendor::GccLike,
                           toolchain::OptLevel::O2);
    auto mods = cc.compile(w.build({}));
    toolchain::Linker linker;
    auto prog = std::make_shared<const toolchain::LinkedProgram>(
        linker.link(mods, order));
    toolchain::LoaderConfig lc;
    lc.envBytes = env_bytes;
    lc.aslrSeed = aslr_seed;
    return toolchain::Loader::load(std::move(prog), lc);
}

/** Whether runRecord/runReplay actually reach the replay tier right
 *  now — false under -DMBIAS_SIM_REPLAY=OFF builds and under the
 *  MBIAS_SIM_REPLAY=0 ctest leg, where both fall back to run() and the
 *  recorded trace stays null.  The differential below holds either
 *  way; only the trace-presence assertions are gated on this. */
bool
replayTierActive()
{
#if MBIAS_SIM_FASTPATH_ENABLED && MBIAS_SIM_REPLAY_ENABLED
    if (sim::replayDisabledByEnv())
        return false;
    const char *r = std::getenv("MBIAS_SIM_REFERENCE");
    return !(r && *r && !(r[0] == '0' && r[1] == '\0'));
#else
    return false;
#endif
}

/** The ground truth for one (image, budget, noise): the default-tier
 *  run an un-instrumented repetition would have executed. */
sim::RunResult
plainRun(const sim::MachineConfig &mc, const toolchain::ProcessImage &image,
         std::uint64_t budget, const sim::NoiseModel &noise)
{
    sim::Machine machine(mc);
    return machine.run(image, budget, noise);
}

/**
 * Records once under seed `seed_base` (= rep 0, exactly as
 * ExperimentRunner::repeatedMetric does), then replays seeds
 * seed_base+1 .. seed_base+extra_seeds, holding every RunResult
 * bitwise identical to the per-rep execution of the same seed.  When
 * the tier is hatched off, runRecord/runReplay must degrade to plain
 * runs with the same bits.
 */
void
expectRecordReplayIdentical(const sim::MachineConfig &mc,
                            const toolchain::ProcessImage &image,
                            const std::string &what,
                            std::uint64_t budget = 500'000'000,
                            std::uint64_t seed_base = 0x9e1ce,
                            unsigned extra_seeds = 3)
{
    sim::Machine machine(mc);
    std::shared_ptr<const sim::FunctionalTrace> trace;
    const auto noise0 = sim::NoiseModel::withSeed(seed_base);
    const auto rec = machine.runRecord(image, budget, noise0, &trace);
    EXPECT_EQ(rec, plainRun(mc, image, budget, noise0))
        << what << ": recording run diverged from plain execution";
    if (!replayTierActive()) {
        EXPECT_EQ(trace, nullptr)
            << what << ": hatched-off runRecord must not produce a trace";
        return;
    }
    ASSERT_NE(trace, nullptr) << what << ": recording unexpectedly aborted";
    EXPECT_EQ(trace->icount, rec.instructions());
    for (unsigned s = 1; s <= extra_seeds; ++s) {
        const auto noise = sim::NoiseModel::withSeed(seed_base + s);
        const auto rep = machine.runReplay(image, budget, noise, *trace);
        const auto ref = plainRun(mc, image, budget, noise);
        EXPECT_EQ(rep, ref)
            << what << ": replay diverged under seed " << seed_base + s
            << " (cycles " << rep.cycles() << " vs " << ref.cycles() << ")";
    }
    // Noise-free replay too: replay must degrade to the deterministic
    // run when the noise model is off.
    const auto quiet =
        machine.runReplay(image, budget, sim::NoiseModel::none(), *trace);
    EXPECT_EQ(quiet, plainRun(mc, image, budget, sim::NoiseModel::none()))
        << what << ": noise-free replay diverged";
}

/** A hot kernel with loads/stores/calls so every stream (branch bits,
 *  memory addresses, return targets) is exercised under truncation.
 *  Built once: replay preconditions key on program identity, so the
 *  ASLR test must re-load the SAME program, exactly as
 *  ExperimentRunner::aslrRandomizedMetric does. */
std::shared_ptr<const toolchain::LinkedProgram>
kernelProgram()
{
    using namespace isa;
    ProgramBuilder b("replay_kernel");
    b.func("main");
    b.li(reg::t0, 300);
    b.li(reg::s0, 0);
    b.label("loop");
    b.call("body");
    b.addi(reg::t0, reg::t0, -1);
    b.bne(reg::t0, reg::zero, "loop");
    b.mv(reg::a0, reg::s0);
    b.halt();
    b.endFunc();
    b.func("body");
    b.addi(reg::sp, reg::sp, -32);
    b.st8(reg::s1, reg::sp, 0);
    b.st8(reg::s2, reg::sp, 8);
    b.addi(reg::s1, reg::s0, 17);
    b.xori(reg::s2, reg::s1, 0x2a2a);
    b.add(reg::s0, reg::s0, reg::s2);
    b.ld8(reg::s2, reg::sp, 8);
    b.ld8(reg::s1, reg::sp, 0);
    b.addi(reg::sp, reg::sp, 32);
    b.ret();
    b.endFunc();
    return std::make_shared<const toolchain::LinkedProgram>(
        toolchain::Linker().link({b.build()}));
}

toolchain::ProcessImage
kernelImage(const std::shared_ptr<const toolchain::LinkedProgram> &prog,
            std::uint64_t aslr_seed = 0)
{
    toolchain::LoaderConfig lc;
    lc.envBytes = 512;
    lc.aslrSeed = aslr_seed;
    return toolchain::Loader::load(prog, lc);
}

TEST(ReplayDifferential, WholeSuiteAcrossSetupsAndSeeds)
{
    // Every workload of the suite, each in its own setup (yet another
    // env/link-order stride than the fast-path and trace
    // differentials, so the three tests pin three layout families),
    // recorded once and replayed under several noise seeds.
    const auto &suite = workloads::suite();
    ASSERT_GE(suite.size(), 12u);
    const auto mc = sim::MachineConfig::core2Like();
    for (std::size_t i = 0; i < suite.size(); ++i) {
        const std::string name = suite[i]->name();
        const std::uint64_t env = (397 * i * i) % 4096;
        const auto order =
            i % 4 == 2 ? toolchain::LinkOrder::asGiven()
                       : toolchain::LinkOrder::shuffled(0xab1e + i);
        expectRecordReplayIdentical(mc, imageFor(name, order, env),
                                    name + " env=" + std::to_string(env),
                                    500'000'000, 0x9e1ce + 7 * i, 2);
    }
}

TEST(ReplayDifferential, OneRecordingServesEveryPreset)
{
    // The stream is machine-geometry independent: record on ONE
    // machine, replay the same stream on every preset, and each
    // replay must match a fresh per-rep run of that preset.
    const auto image =
        imageFor("bzip", toolchain::LinkOrder::shuffled(29), 1728);
    const std::uint64_t budget = 500'000'000;
    sim::Machine recorder(sim::MachineConfig::core2Like());
    std::shared_ptr<const sim::FunctionalTrace> trace;
    recorder.runRecord(image, budget, sim::NoiseModel::withSeed(11),
                       &trace);
    if (!replayTierActive()) {
        EXPECT_EQ(trace, nullptr);
        return;
    }
    ASSERT_NE(trace, nullptr);
    for (const auto &mc : sim::MachineConfig::allPresets()) {
        sim::Machine machine(mc);
        for (std::uint64_t seed : {3ull, 12ull}) {
            const auto noise = sim::NoiseModel::withSeed(seed);
            EXPECT_EQ(machine.runReplay(image, budget, noise, *trace),
                      plainRun(mc, image, budget, noise))
                << "bzip replay on " << mc.name << " seed " << seed;
        }
    }
}

TEST(ReplayDifferential, AslrRebaseAcrossDraws)
{
    // One recording serves every ASLR draw of the same program: the
    // loader moves only the stack base, and replay rebases recorded
    // stack addresses by the sp delta.  Each rebased replay must match
    // a per-draw run bitwise, noise-free and under noise.
    const std::uint64_t budget = 500'000'000;
    const auto mc = sim::MachineConfig::core2Like();
    sim::Machine machine(mc);
    const auto prog = kernelProgram();
    const auto image0 = kernelImage(prog, 1);
    std::shared_ptr<const sim::FunctionalTrace> trace;
    machine.runRecord(image0, budget, sim::NoiseModel::none(), &trace);
    if (!replayTierActive()) {
        EXPECT_EQ(trace, nullptr);
        return;
    }
    ASSERT_NE(trace, nullptr);
    bool sp_moved = false;
    for (std::uint64_t draw = 2; draw <= 6; ++draw) {
        const auto image = kernelImage(prog, draw);
        sp_moved |= image.initialSp != image0.initialSp;
        ASSERT_TRUE(trace->matches(image, budget))
            << "ASLR must not disturb the replay key";
        EXPECT_EQ(machine.runReplay(image, budget, sim::NoiseModel::none(),
                                    *trace),
                  plainRun(mc, image, budget, sim::NoiseModel::none()))
            << "noise-free replay, ASLR draw " << draw;
        const auto noise = sim::NoiseModel::withSeed(77 + draw);
        EXPECT_EQ(machine.runReplay(image, budget, noise, *trace),
                  plainRun(mc, image, budget, noise))
            << "noisy replay, ASLR draw " << draw;
    }
    // The property is vacuous unless the draws actually moved the
    // stack.
    EXPECT_TRUE(sp_moved);
}

TEST(ReplayDifferential, InstructionBudgetTruncation)
{
    // Budgets landing mid-loop, mid-call, mid-superblock: the recorded
    // stream is cut at the same instruction the per-rep run truncates
    // at, and replaying it reproduces the same partial counters.
    const auto image = kernelImage(kernelProgram());
    const auto mc = sim::MachineConfig::core2Like();
    for (std::uint64_t budget : {1ull, 9ull, 113ull, 1000ull, 2'500ull})
        expectRecordReplayIdentical(mc, image,
                                    "truncated at " +
                                        std::to_string(budget),
                                    budget, 0x7a0b, 2);
    sim::Machine machine(mc);
    std::shared_ptr<const sim::FunctionalTrace> trace;
    const auto rec =
        machine.runRecord(image, 100, sim::NoiseModel::none(), &trace);
    EXPECT_FALSE(rec.halted);
    if (replayTierActive()) {
        ASSERT_NE(trace, nullptr);
        EXPECT_FALSE(trace->halted);
        EXPECT_FALSE(machine
                         .runReplay(image, 100, sim::NoiseModel::none(),
                                    *trace)
                         .halted);
    }
}

TEST(ReplayDifferential, PreconditionViolationFallsBack)
{
    // A machine whose replay (or fast-path) toggle is off must not
    // record: runRecord degrades to a plain run with identical bits, a
    // null trace, and untouched tier statistics.
    const auto image =
        imageFor("gcclike", toolchain::LinkOrder::asGiven(), 768);
    const std::uint64_t budget = 500'000'000;
    const auto mc = sim::MachineConfig::core2Like();
    for (const bool fast_off : {false, true}) {
        sim::Machine machine(mc);
        if (fast_off)
            machine.setUseFastPath(false);
        else
            machine.setUseReplayPath(false);
        EXPECT_FALSE(sim::replayTierUsable(machine));
        const auto before = sim::ReplayCache::global().stats();
        std::shared_ptr<const sim::FunctionalTrace> trace;
        const auto noise = sim::NoiseModel::withSeed(5);
        const auto rec = machine.runRecord(image, budget, noise, &trace);
        EXPECT_EQ(trace, nullptr);
        EXPECT_EQ(rec, plainRun(mc, image, budget, noise));
        const auto after = sim::ReplayCache::global().stats();
        EXPECT_EQ(after.records, before.records);
        EXPECT_EQ(after.replays, before.replays);
    }
}

TEST(ReplayDifferential, CacheAccounting)
{
    // The LRU mechanics on a private cache: miss → insert → hit,
    // negative entries report unrecordable, capacity evicts in LRU
    // order, and byte accounting follows the live entries.
    const auto a = imageFor("mcf", toolchain::LinkOrder::asGiven(), 256);
    const auto b = imageFor("mcf", toolchain::LinkOrder::shuffled(3), 256);
    const auto c = imageFor("milc", toolchain::LinkOrder::asGiven(), 256);
    const std::uint64_t budget = 500'000'000;

    sim::ReplayCache cache(2);
    bool unrecordable = false;
    EXPECT_EQ(cache.find(a, budget, &unrecordable), nullptr);
    EXPECT_FALSE(unrecordable);
    EXPECT_EQ(cache.stats().misses, 1u);

    sim::Machine machine(sim::MachineConfig::core2Like());
    std::shared_ptr<const sim::FunctionalTrace> ta;
    machine.runRecord(a, budget, sim::NoiseModel::none(), &ta);
    if (!replayTierActive())
        return; // recording hatched off; nothing to insert
    ASSERT_NE(ta, nullptr);
    cache.insert(a, budget, ta);
    EXPECT_EQ(cache.find(a, budget, &unrecordable), ta);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_GT(cache.stats().bytes, 0u);

    // Same program, different budget: a distinct key.
    EXPECT_EQ(cache.find(a, budget - 1, &unrecordable), nullptr);

    // A negative entry answers "unrecordable" without a trace.
    cache.insert(b, budget, nullptr);
    unrecordable = false;
    EXPECT_EQ(cache.find(b, budget, &unrecordable), nullptr);
    EXPECT_TRUE(unrecordable);

    // Capacity 2 and three keys: inserting c evicts the LRU entry
    // (key a's budget-1 probe missed, so order is b, a from the last
    // touches; a was found most recently... touch b to make a LRU).
    EXPECT_EQ(cache.find(a, budget, &unrecordable), ta);
    unrecordable = false;
    cache.find(b, budget, &unrecordable); // b now MRU, a next
    cache.insert(c, budget, nullptr);     // evicts a
    EXPECT_EQ(cache.stats().evictions, 1u);
    unrecordable = false;
    EXPECT_EQ(cache.find(a, budget, &unrecordable), nullptr);
    EXPECT_FALSE(unrecordable);

    cache.clear();
    EXPECT_EQ(cache.stats().bytes, 0u);
    EXPECT_EQ(cache.find(b, budget, &unrecordable), nullptr);
}

TEST(ReplayDifferential, EnvHatchAndTierReporting)
{
    // replayTierUsable composes the build switch, the env hatch, and
    // the per-machine toggles; the active-tier description advertises
    // the same verdict (the CLI prints it as provenance).
    sim::Machine machine(sim::MachineConfig::core2Like());
    EXPECT_EQ(sim::replayTierUsable(machine), replayTierActive());
    machine.setUseReplayPath(false);
    EXPECT_FALSE(sim::replayTierUsable(machine));
    machine.setUseReplayPath(true);
    EXPECT_EQ(sim::replayTierUsable(machine), replayTierActive());

    const std::string desc = sim::activeSimTierDescription();
#if MBIAS_SIM_FASTPATH_ENABLED && MBIAS_SIM_REPLAY_ENABLED
    if (sim::replayDisabledByEnv())
        EXPECT_NE(desc.find("MBIAS_SIM_REPLAY=0"), std::string::npos)
            << desc;
    else if (replayTierActive())
        EXPECT_NE(desc.find("+ replay"), std::string::npos) << desc;
#elif MBIAS_SIM_FASTPATH_ENABLED
    if (desc.rfind("reference", 0) != 0)
        EXPECT_NE(desc.find("-DMBIAS_SIM_REPLAY=OFF"), std::string::npos)
            << desc;
#endif
}

} // namespace
