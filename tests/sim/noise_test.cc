/** @file Tests for the OS-interrupt noise model. */
#include <gtest/gtest.h>

#include "isa/builder.hh"
#include "sim/machine.hh"
#include "toolchain/linker.hh"
#include "toolchain/loader.hh"

namespace
{

using namespace mbias;
using namespace mbias::isa;
using namespace mbias::isa::reg;
using sim::Counter;
using sim::Machine;
using sim::MachineConfig;
using sim::NoiseModel;

toolchain::ProcessImage
busyImage()
{
    ProgramBuilder b("t");
    b.func("main");
    b.li(t0, 20000);
    b.label("loop");
    b.st8(t0, sp, -8);
    b.ld8(t1, sp, -8);
    b.addi(t0, t0, -1);
    b.bne(t0, zero, "loop");
    b.mv(a0, t1);
    b.halt();
    b.endFunc();
    std::vector<Module> mods;
    mods.push_back(b.build());
    return toolchain::Loader::load(toolchain::Linker().link(mods), {});
}

TEST(Noise, DisabledModelKeepsDeterminism)
{
    auto image = busyImage();
    Machine m(MachineConfig::core2Like());
    auto a = m.run(image);
    auto b = m.run(image, 500'000'000, NoiseModel::none());
    EXPECT_EQ(a.cycles(), b.cycles());
    EXPECT_EQ(a.counters.get(Counter::OsInterrupts), 0u);
}

TEST(Noise, InterruptsFireAndCostCycles)
{
    auto image = busyImage();
    Machine m(MachineConfig::core2Like());
    auto quiet = m.run(image);
    auto noisy = m.run(image, 500'000'000, NoiseModel::withSeed(1));
    EXPECT_GT(noisy.counters.get(Counter::OsInterrupts), 0u);
    EXPECT_GT(noisy.cycles(), quiet.cycles());
    // Functional result is untouched by noise.
    EXPECT_EQ(noisy.result, quiet.result);
}

TEST(Noise, SameSeedSameRun)
{
    auto image = busyImage();
    Machine m(MachineConfig::core2Like());
    auto a = m.run(image, 500'000'000, NoiseModel::withSeed(7));
    auto b = m.run(image, 500'000'000, NoiseModel::withSeed(7));
    EXPECT_EQ(a.cycles(), b.cycles());
    EXPECT_EQ(a.counters.get(Counter::OsInterrupts),
              b.counters.get(Counter::OsInterrupts));
}

TEST(Noise, DifferentSeedsDifferentCycles)
{
    auto image = busyImage();
    Machine m(MachineConfig::core2Like());
    auto a = m.run(image, 500'000'000, NoiseModel::withSeed(1));
    auto b = m.run(image, 500'000'000, NoiseModel::withSeed(2));
    EXPECT_NE(a.cycles(), b.cycles());
}

TEST(Noise, MagnitudeScalesWithInterval)
{
    auto image = busyImage();
    Machine m(MachineConfig::core2Like());
    NoiseModel frequent = NoiseModel::withSeed(3);
    frequent.meanIntervalCycles = 2000;
    NoiseModel rare = NoiseModel::withSeed(3);
    rare.meanIntervalCycles = 200000;
    auto f = m.run(image, 500'000'000, frequent);
    auto r = m.run(image, 500'000'000, rare);
    EXPECT_GT(f.counters.get(Counter::OsInterrupts),
              r.counters.get(Counter::OsInterrupts));
    EXPECT_GT(f.cycles(), r.cycles());
}

TEST(Noise, CachePollutionAddsMisses)
{
    auto image = busyImage();
    Machine m(MachineConfig::core2Like());
    auto quiet = m.run(image);
    NoiseModel heavy = NoiseModel::withSeed(5);
    heavy.meanIntervalCycles = 1000;
    heavy.linesEvictedPerInterrupt = 32;
    auto noisy = m.run(image, 500'000'000, heavy);
    EXPECT_GT(noisy.counters.get(Counter::DcacheMisses) +
                  noisy.counters.get(Counter::IcacheMisses),
              quiet.counters.get(Counter::DcacheMisses) +
                  quiet.counters.get(Counter::IcacheMisses));
}

TEST(Noise, RelativeJitterIsSmall)
{
    // The paper's point depends on noise being much smaller than bias:
    // with default parameters, run-to-run spread should be within a few
    // percent.
    auto image = busyImage();
    Machine m(MachineConfig::core2Like());
    double lo = 1e18, hi = 0;
    for (std::uint64_t s = 0; s < 8; ++s) {
        auto rr = m.run(image, 500'000'000, NoiseModel::withSeed(s));
        lo = std::min(lo, double(rr.cycles()));
        hi = std::max(hi, double(rr.cycles()));
    }
    EXPECT_LT((hi - lo) / lo, 0.05);
}

} // namespace
