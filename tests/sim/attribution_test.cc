/**
 * @file
 * Attribution-layer tests.  The contract under test is the one the
 * header states: attribution observes, never perturbs.  A run with an
 * Attribution sink attached must produce a bitwise-identical RunResult
 * (every counter, halted, result) to the same run without one — and to
 * the fast path, which never records attribution at all.  Content
 * expectations (misses land in sets, PHT entries remember their PCs)
 * are checked only when the build records (MBIAS_OBS=ON); under
 * -DMBIAS_OBS=OFF the hooks compile out and every structure stays
 * zeroed, which the last test pins.
 */
#include <gtest/gtest.h>

#include <numeric>

#include "sim/attribution.hh"
#include "sim/machine.hh"
#include "toolchain/compiler.hh"
#include "toolchain/linker.hh"
#include "toolchain/loader.hh"
#include "workloads/registry.hh"

namespace
{

using namespace mbias;
using sim::Attribution;
using sim::Counter;
using sim::Machine;
using sim::MachineConfig;

toolchain::ProcessImage
imageOf(const std::string &workload, std::uint64_t env = 0)
{
    const auto &w = workloads::findWorkload(workload);
    workloads::WorkloadConfig cfg;
    toolchain::Compiler cc(toolchain::CompilerVendor::GccLike,
                           toolchain::OptLevel::O2);
    auto prog = toolchain::Linker().link(cc.compile(w.build(cfg)));
    toolchain::LoaderConfig lc;
    lc.envBytes = env;
    return toolchain::Loader::load(std::move(prog), lc);
}

TEST(Attribution, RunResultIsBitwiseUnchanged)
{
    // The differential at the heart of the layer: fast path (never
    // attributes), plain reference, and attributed reference must all
    // agree bit for bit on every counter.
    for (const char *name : {"perl", "hmmer"}) {
        const auto image = imageOf(name);
        Machine m(MachineConfig::core2Like());

        const auto fast = m.run(image);

        m.setUseFastPath(false);
        const auto reference = m.run(image);

        Attribution attr;
        const auto attributed = m.run(image, 500'000'000,
                                      sim::NoiseModel::none(), nullptr,
                                      &attr);

        EXPECT_TRUE(fast.halted) << name;
        EXPECT_EQ(reference, fast) << name;
        EXPECT_EQ(attributed, fast)
            << name << ": attribution perturbed the run";
    }
}

TEST(Attribution, WithProfileStillBitwiseUnchanged)
{
    // Profile and attribution share the reference path; together they
    // still must not move a single counter.
    const auto image = imageOf("gobmk");
    Machine m(MachineConfig::core2Like());
    const auto plain = m.run(image);

    sim::Profile profile;
    Attribution attr;
    const auto observed = m.run(image, 500'000'000,
                                sim::NoiseModel::none(), &profile, &attr);
    EXPECT_EQ(observed, plain);
}

TEST(Attribution, TotalsReconcileWithPerfCounters)
{
    if (!Attribution::enabled())
        GTEST_SKIP() << "built with MBIAS_OBS=OFF; hooks compile out";

    const auto image = imageOf("perl");
    Machine m(MachineConfig::core2Like());
    Attribution attr;
    const auto rr = m.run(image, 500'000'000, sim::NoiseModel::none(),
                          nullptr, &attr);
    ASSERT_TRUE(rr.halted);

    // Demand misses land one-for-one in the per-set counters; the
    // dcache additionally records prefetch fills, bounded by the
    // number of prefetches issued.
    EXPECT_EQ(attr.icache.totalMisses(),
              rr.counters.get(Counter::IcacheMisses));
    EXPECT_GE(attr.dcache.totalMisses(),
              rr.counters.get(Counter::DcacheMisses));
    EXPECT_LE(attr.dcache.totalMisses(),
              rr.counters.get(Counter::DcacheMisses) +
                  rr.counters.get(Counter::PrefetchesIssued));
    EXPECT_EQ(attr.itlb.totalMisses(),
              rr.counters.get(Counter::ItlbMisses));
    EXPECT_EQ(attr.dtlb.totalMisses(),
              rr.counters.get(Counter::DtlbMisses));

    // A structure can only miss on a touch.
    EXPECT_GE(attr.icache.totalTouches(), attr.icache.totalMisses());
    EXPECT_GE(attr.dcache.totalTouches(), attr.dcache.totalMisses());

    // One PHT record per executed conditional branch.
    const auto pht_updates =
        std::accumulate(attr.pht.updates.begin(), attr.pht.updates.end(),
                        std::uint64_t(0));
    EXPECT_EQ(pht_updates, rr.counters.get(Counter::BranchesExecuted));
}

TEST(Attribution, TableCountersRememberCollidingPcs)
{
    if (!Attribution::enabled())
        GTEST_SKIP() << "built with MBIAS_OBS=OFF; hooks compile out";

    const auto image = imageOf("perl");
    Machine m(MachineConfig::core2Like());
    Attribution attr;
    const auto rr = m.run(image, 500'000'000, sim::NoiseModel::none(),
                          nullptr, &attr);
    ASSERT_TRUE(rr.halted);

    // perl's VM dispatch drives many branch PCs through a gshare
    // table: some entry must see more than one PC, and every recorded
    // PC slot must belong to an entry that was actually updated.
    bool saw_alias = false;
    for (std::size_t e = 0; e < attr.pht.entries; ++e) {
        const unsigned distinct = attr.pht.distinctPcs(e);
        if (distinct > 1)
            saw_alias = true;
        if (distinct > 0) {
            EXPECT_GT(attr.pht.updates[e], 0u) << "entry " << e;
        }
    }
    EXPECT_TRUE(saw_alias) << "no PHT entry saw two PCs";
    EXPECT_GT(attr.pht.totalAliasSwitches(), 0u);

    // The summary names each structure and is non-empty.
    const auto text = attr.str();
    for (const char *key : {"icache", "dcache", "itlb", "dtlb", "pht",
                            "btb"})
        EXPECT_NE(text.find(key), std::string::npos) << key << "\n"
                                                     << text;
}

TEST(Attribution, SetCountersClassifyEvictions)
{
    // Unit-level check of the occupancy mirror: the first `ways`
    // misses in a set are cold fills, every further miss is an
    // eviction; clear() keeps geometry and zeroes counts.
    sim::SetCounters sc;
    sc.configure(4, 2);
    for (int i = 0; i < 5; ++i) {
        sc.touch(1);
        sc.miss(1);
    }
    EXPECT_EQ(sc.totalTouches(), 5u);
    EXPECT_EQ(sc.totalMisses(), 5u);
    EXPECT_EQ(sc.totalEvictions(), 3u) << "5 misses into 2 ways";
    EXPECT_EQ(sc.hottestSet(), 1u);
    sc.clear();
    EXPECT_EQ(sc.totalMisses(), 0u);
    EXPECT_EQ(sc.sets, 4u);
}

TEST(Attribution, DisabledBuildKeepsStructuresZeroed)
{
    if (Attribution::enabled())
        GTEST_SKIP() << "covers the -DMBIAS_OBS=OFF build only";

    const auto image = imageOf("hmmer");
    Machine m(MachineConfig::core2Like());
    Attribution attr;
    const auto rr = m.run(image, 500'000'000, sim::NoiseModel::none(),
                          nullptr, &attr);
    ASSERT_TRUE(rr.halted);
    EXPECT_EQ(attr.icache.totalMisses(), 0u);
    EXPECT_EQ(attr.dcache.totalTouches(), 0u);
    EXPECT_EQ(attr.pht.totalAliasSwitches(), 0u);
}

} // namespace
