/** @file Tests for the per-function profiler. */
#include <gtest/gtest.h>

#include "sim/machine.hh"
#include "toolchain/compiler.hh"
#include "toolchain/linker.hh"
#include "toolchain/loader.hh"
#include "workloads/registry.hh"

namespace
{

using namespace mbias;
using sim::Machine;
using sim::MachineConfig;
using sim::Profile;

std::pair<sim::RunResult, Profile>
profiled(const std::string &workload, std::uint64_t env = 0)
{
    const auto &w = workloads::findWorkload(workload);
    workloads::WorkloadConfig cfg;
    toolchain::Compiler cc(toolchain::CompilerVendor::GccLike,
                           toolchain::OptLevel::O2);
    auto prog = toolchain::Linker().link(cc.compile(w.build(cfg)));
    toolchain::LoaderConfig lc;
    lc.envBytes = env;
    auto image = toolchain::Loader::load(std::move(prog), lc);
    Machine m(MachineConfig::core2Like());
    Profile profile;
    auto rr = m.run(image, 500'000'000, sim::NoiseModel::none(), &profile);
    return {rr, profile};
}

TEST(Profile, AttributionSumsToTotals)
{
    auto [rr, profile] = profiled("gobmk");
    EXPECT_EQ(profile.totalCycles(), rr.cycles());
    std::uint64_t insts = 0, dmiss = 0, mispred = 0;
    for (const auto &f : profile.functions) {
        insts += f.instructions;
        dmiss += f.dcacheMisses;
        mispred += f.branchMispredicts;
    }
    EXPECT_EQ(insts, rr.instructions());
    EXPECT_EQ(dmiss, rr.counters.get(sim::Counter::DcacheMisses));
    EXPECT_EQ(mispred, rr.counters.get(sim::Counter::BranchMispredicts));
}

TEST(Profile, PerlIsDominatedByTheVm)
{
    auto [rr, profile] = profiled("perl");
    (void)rr;
    const auto &vm = profile.of("vm_run");
    EXPECT_GT(double(vm.cycles), 0.9 * double(profile.totalCycles()));
    EXPECT_EQ(profile.byCycles().front().name, "vm_run");
}

TEST(Profile, ColdFunctionsNeverExecute)
{
    auto [rr, profile] = profiled("perl");
    (void)rr;
    for (const char *cold : {"cold_startup", "cold_report_error",
                             "cold_format"}) {
        const auto &f = profile.of(cold);
        EXPECT_EQ(f.instructions, 0u) << cold;
        EXPECT_EQ(f.cycles, 0u) << cold;
    }
}

TEST(Profile, RecursionAttributedToFill)
{
    auto [rr, profile] = profiled("gobmk");
    (void)rr;
    const auto &fill = profile.of("fill");
    const auto &fill_try = profile.of("fill_try");
    EXPECT_GT(fill.instructions, 0u);
    EXPECT_GT(fill_try.instructions, 0u);
    EXPECT_GT(fill.calls, 0u); // fill calls fill_try
}

TEST(Profile, EnvBiasLandsInTheStackHeavyFunction)
{
    // Diff two profiles of the same binary at different env sizes: the
    // cycle delta must be concentrated in vm_run (whose VM stack
    // inherits sp alignment), not in rt_cksum or main.
    auto [rr_a, aligned] = profiled("perl", 0);
    auto [rr_b, misaligned] = profiled("perl", 52);
    ASSERT_GT(rr_b.cycles(), rr_a.cycles());
    const auto delta_total = rr_b.cycles() - rr_a.cycles();
    const auto delta_vm = misaligned.of("vm_run").cycles -
                          aligned.of("vm_run").cycles;
    EXPECT_GT(double(delta_vm), 0.85 * double(delta_total));
}

TEST(Profile, StrRendersTopFunctions)
{
    auto [rr, profile] = profiled("perl");
    (void)rr;
    const std::string s = profile.str(3);
    EXPECT_NE(s.find("vm_run"), std::string::npos);
    EXPECT_NE(s.find("cyc%"), std::string::npos);
}

TEST(Profile, DisabledProfilingChangesNothing)
{
    const auto &w = workloads::findWorkload("milc");
    workloads::WorkloadConfig cfg;
    toolchain::Compiler cc(toolchain::CompilerVendor::GccLike,
                           toolchain::OptLevel::O2);
    auto prog = toolchain::Linker().link(cc.compile(w.build(cfg)));
    auto image = toolchain::Loader::load(std::move(prog), {});
    Machine m(MachineConfig::core2Like());
    Profile profile;
    auto with = m.run(image, 500'000'000, sim::NoiseModel::none(),
                      &profile);
    auto without = m.run(image);
    EXPECT_EQ(with.cycles(), without.cycles());
    EXPECT_EQ(with.result, without.result);
}

} // namespace
