/**
 * @file
 * The fast interpreter's contract, held the strong way: for every
 * workload of the suite, across setups (environment sizes, link
 * orders), machine presets, and every ablation switch, the plan-based
 * fast path must produce a RunResult — cycles AND every performance
 * counter — bitwise identical to the reference interpreter's.  Any
 * divergence is a bug in the fast path, never acceptable noise: the
 * whole point of the toolkit is that measurement infrastructure must
 * not perturb measured numbers.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/setup.hh"
#include "sim/machine.hh"
#include "sim/plan.hh"
#include "toolchain/compiler.hh"
#include "toolchain/linker.hh"
#include "toolchain/loader.hh"
#include "workloads/registry.hh"

namespace
{

using namespace mbias;

toolchain::ProcessImage
imageFor(const std::string &workload, const toolchain::LinkOrder &order,
         std::uint64_t env_bytes)
{
    const auto &w = workloads::findWorkload(workload);
    toolchain::Compiler cc(toolchain::CompilerVendor::GccLike,
                           toolchain::OptLevel::O2);
    auto mods = cc.compile(w.build({}));
    toolchain::Linker linker;
    auto prog = linker.link(mods, order);
    toolchain::LoaderConfig lc;
    lc.envBytes = env_bytes;
    return toolchain::Loader::load(std::move(prog), lc);
}

sim::RunResult
runWith(const sim::MachineConfig &mc, const toolchain::ProcessImage &image,
        bool fast, std::uint64_t max_insts = 500'000'000)
{
    sim::Machine machine(mc);
    machine.setUseFastPath(fast);
    return machine.run(image, max_insts);
}

void
expectIdentical(const sim::MachineConfig &mc,
                const toolchain::ProcessImage &image,
                const std::string &what,
                std::uint64_t max_insts = 500'000'000)
{
    const auto ref = runWith(mc, image, false, max_insts);
    const auto fast = runWith(mc, image, true, max_insts);
    EXPECT_EQ(fast, ref) << what << ": fast path diverged (cycles "
                         << fast.cycles() << " vs " << ref.cycles()
                         << ")";
}

TEST(FastPathDifferential, WholeSuiteAcrossSetups)
{
    // Every workload, each in its own setup (env size and link order
    // rotate with the suite index, so the set of exercised layouts is
    // diverse without running the full cross product every build).
    const auto &suite = workloads::suite();
    ASSERT_GE(suite.size(), 12u);
    const auto mc = sim::MachineConfig::core2Like();
    for (std::size_t i = 0; i < suite.size(); ++i) {
        const std::string name = suite[i]->name();
        const std::uint64_t env = (317 * i * i) % 4096;
        const auto order =
            i % 3 == 0 ? toolchain::LinkOrder::asGiven()
                       : toolchain::LinkOrder::shuffled(0x9e37 + i);
        expectIdentical(mc, imageFor(name, order, env),
                        name + " env=" + std::to_string(env));
    }
}

TEST(FastPathDifferential, AllMachinePresets)
{
    const auto image =
        imageFor("perl", toolchain::LinkOrder::shuffled(7), 1234);
    for (const auto &mc : sim::MachineConfig::allPresets())
        expectIdentical(mc, image, "perl on " + mc.name);
}

TEST(FastPathDifferential, EveryAblationSwitch)
{
    // Flip each ablation flag off (and the prefetcher on) one at a
    // time: each switch steers a different branch of the fast loop.
    const auto image =
        imageFor("sjeng", toolchain::LinkOrder::shuffled(3), 2048);
    using Mutator = void (*)(sim::MachineConfig &);
    const std::pair<const char *, Mutator> variants[] = {
        {"noFetchBlocks",
         [](sim::MachineConfig &m) { m.enableFetchBlockModel = false; }},
        {"noBtb", [](sim::MachineConfig &m) { m.enableBtb = false; }},
        {"noStoreBuffer",
         [](sim::MachineConfig &m) {
             m.enableStoreBufferAliasing = false;
         }},
        {"noLineSplit",
         [](sim::MachineConfig &m) { m.enableLineSplitPenalty = false; }},
        {"noCaches",
         [](sim::MachineConfig &m) { m.enableCaches = false; }},
        {"noTlbs", [](sim::MachineConfig &m) { m.enableTlbs = false; }},
        {"noBranchPrediction",
         [](sim::MachineConfig &m) {
             m.enableBranchPrediction = false;
         }},
        {"withPrefetch",
         [](sim::MachineConfig &m) {
             m.enableNextLinePrefetch = true;
         }},
        {"bimodal",
         [](sim::MachineConfig &m) {
             m.predictor = sim::PredictorKind::Bimodal;
         }},
    };
    for (const auto &[label, mutate] : variants) {
        auto mc = sim::MachineConfig::core2Like();
        mutate(mc);
        expectIdentical(mc, image, std::string("sjeng ") + label);
    }
}

TEST(FastPathDifferential, InstructionBudgetTruncation)
{
    // A run cut off by max_insts (halted = false) must truncate at
    // the same instruction with the same partial counters.
    const auto image =
        imageFor("bzip", toolchain::LinkOrder::asGiven(), 512);
    const auto mc = sim::MachineConfig::core2Like();
    for (std::uint64_t budget : {1ull, 100ull, 7777ull, 50'000ull}) {
        const auto ref = runWith(mc, image, false, budget);
        const auto fast = runWith(mc, image, true, budget);
        EXPECT_EQ(fast, ref)
            << "bzip truncated at " << budget << " insts";
    }
    EXPECT_FALSE(runWith(mc, image, true, 100).halted);
}

TEST(FastPathDifferential, PlanStructureInvariants)
{
    // The plan is structural metadata for the fast loop: every block
    // leader in range and sorted, the return-address table inverse to
    // the placed pcs, and runLen consistent with op classes.
    const auto image =
        imageFor("hmmer", toolchain::LinkOrder::shuffled(11), 0);
    const auto plan = sim::ExecutionPlan::build(image.program);
    const auto &ops = plan->ops;
    ASSERT_FALSE(ops.empty());
    ASSERT_FALSE(plan->blockStarts.empty());
    EXPECT_EQ(plan->blockStarts.front(), 0u);
    for (std::size_t i = 1; i < plan->blockStarts.size(); ++i) {
        EXPECT_LT(plan->blockStarts[i - 1], plan->blockStarts[i]);
        EXPECT_LT(plan->blockStarts[i], ops.size());
    }
    for (std::size_t i = 0; i < ops.size(); ++i) {
        const auto &d = ops[i];
        EXPECT_EQ(plan->idxByOffset.at(std::size_t(d.pc - plan->codeBase)),
                  std::uint32_t(i));
        if (d.runLen > 0 && i + 1 < ops.size())
            EXPECT_EQ(std::uint32_t(d.runLen) - 1,
                      std::uint32_t(ops[i + 1].runLen))
                << "runLen must decrease by 1 inside a simple run";
    }
}

} // namespace
