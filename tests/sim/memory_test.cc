/** @file Tests for SparseMemory and PerfCounters. */
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "sim/counters.hh"
#include "sim/memory.hh"

namespace
{

using namespace mbias;
using sim::Counter;
using sim::PerfCounters;
using sim::SparseMemory;

TEST(SparseMemory, ZeroFilledByDefault)
{
    SparseMemory m;
    EXPECT_EQ(m.read(0x12345678, 8), 0u);
    EXPECT_EQ(m.pagesAllocated(), 0u);
}

TEST(SparseMemory, ReadBackAllSizes)
{
    SparseMemory m;
    m.write(0x1000, 8, 0x1122334455667788ULL);
    EXPECT_EQ(m.read(0x1000, 8), 0x1122334455667788ULL);
    EXPECT_EQ(m.read(0x1000, 4), 0x55667788u);
    EXPECT_EQ(m.read(0x1000, 2), 0x7788u);
    EXPECT_EQ(m.read(0x1000, 1), 0x88u);
    EXPECT_EQ(m.read(0x1004, 4), 0x11223344u);
}

TEST(SparseMemory, LittleEndianLayout)
{
    SparseMemory m;
    m.write(0x2000, 4, 0x0a0b0c0d);
    EXPECT_EQ(m.read(0x2000, 1), 0x0du);
    EXPECT_EQ(m.read(0x2003, 1), 0x0au);
}

TEST(SparseMemory, PageCrossingAccess)
{
    SparseMemory m;
    const Addr a = 4096 - 4;
    m.write(a, 8, 0xdeadbeefcafef00dULL);
    EXPECT_EQ(m.read(a, 8), 0xdeadbeefcafef00dULL);
    EXPECT_EQ(m.pagesAllocated(), 2u);
    // The tail bytes landed on the second page.
    EXPECT_EQ(m.read(4096, 4), 0xdeadbeefu);
}

TEST(SparseMemory, PartialOverwrite)
{
    SparseMemory m;
    m.write(0x100, 8, ~0ULL);
    m.write(0x102, 2, 0);
    EXPECT_EQ(m.read(0x100, 8), 0xffffffff0000ffffULL);
}

TEST(SparseMemory, WriteBlock)
{
    SparseMemory m;
    m.writeBlock(4090, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
    EXPECT_EQ(m.read(4090, 1), 1u);
    EXPECT_EQ(m.read(4099, 1), 10u);
    EXPECT_EQ(m.pagesAllocated(), 2u);
}

TEST(SparseMemory, ClearReleases)
{
    SparseMemory m;
    m.write(0x100, 8, 5);
    m.clear();
    EXPECT_EQ(m.pagesAllocated(), 0u);
    EXPECT_EQ(m.read(0x100, 8), 0u);
}

TEST(PerfCounters, IncrementAndReset)
{
    PerfCounters c;
    c.inc(Counter::Loads);
    c.inc(Counter::Loads, 4);
    EXPECT_EQ(c.get(Counter::Loads), 5u);
    c.reset();
    EXPECT_EQ(c.get(Counter::Loads), 0u);
}

TEST(PerfCounters, Rates)
{
    PerfCounters c;
    c.set(Counter::Instructions, 2000);
    c.set(Counter::Cycles, 3000);
    c.set(Counter::DcacheMisses, 10);
    EXPECT_DOUBLE_EQ(c.cpi(), 1.5);
    EXPECT_DOUBLE_EQ(c.ratePerKiloInst(Counter::DcacheMisses), 5.0);
}

TEST(PerfCounters, NamesUniqueAndNonEmpty)
{
    std::set<std::string_view> names;
    for (auto c : sim::allCounters()) {
        auto n = sim::counterName(c);
        EXPECT_FALSE(n.empty());
        EXPECT_TRUE(names.insert(n).second) << n << " duplicated";
    }
    EXPECT_EQ(names.size(), sim::num_counters);
}

TEST(PerfCounters, StrListsEveryCounter)
{
    PerfCounters c;
    const std::string s = c.str();
    for (auto counter : sim::allCounters())
        EXPECT_NE(s.find(std::string(sim::counterName(counter))),
                  std::string::npos);
}

} // namespace
