/**
 * @file
 * The trace tier's contract, held the same strong way as the fast
 * path's: for every workload of the suite, across setups, machine
 * presets, and every ablation switch, the superblock-batched
 * interpreter must produce a RunResult — cycles AND every performance
 * counter — bitwise identical to BOTH the reference interpreter and
 * the plan-based fast path.  On top of the three-tier differential,
 * this file pins the TracePlan's structural invariants, the
 * geometry-keyed TraceCache, the MBIAS_SIM_TRACE=0 escape hatch, the
 * guard-fallback path (a machine whose OoO window rejects every
 * batch), and that attribution output is unaffected by the tier's
 * existence.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>

#include "isa/builder.hh"
#include "sim/attribution.hh"
#include "sim/machine.hh"
#include "sim/plan.hh"
#include "sim/replay.hh"
#include "sim/trace.hh"
#include "toolchain/compiler.hh"
#include "toolchain/linker.hh"
#include "toolchain/loader.hh"
#include "workloads/registry.hh"

namespace
{

using namespace mbias;

toolchain::ProcessImage
imageFor(const std::string &workload, const toolchain::LinkOrder &order,
         std::uint64_t env_bytes)
{
    const auto &w = workloads::findWorkload(workload);
    toolchain::Compiler cc(toolchain::CompilerVendor::GccLike,
                           toolchain::OptLevel::O2);
    auto mods = cc.compile(w.build({}));
    toolchain::Linker linker;
    auto prog = linker.link(mods, order);
    toolchain::LoaderConfig lc;
    lc.envBytes = env_bytes;
    return toolchain::Loader::load(std::move(prog), lc);
}

enum class Tier { Reference, Fast, Trace };

/** The replay-tier provenance suffix activeSimTierDescription appends
 *  to the fast/trace descriptions (sim/replay.hh hatches). */
const char *const kReplaySuffix =
#if !MBIAS_SIM_REPLAY_ENABLED
    " (replay: -DMBIAS_SIM_REPLAY=OFF)";
#else
    sim::replayDisabledByEnv() ? " (replay: MBIAS_SIM_REPLAY=0)"
                               : " + replay";
#endif

/** Whether a Tier::Trace run actually reaches the trace tier right
 *  now — false under -DMBIAS_SIM_TRACE=OFF builds and under the
 *  MBIAS_SIM_TRACE=0 ctest leg, where stats cannot grow. */
bool
traceTierActive()
{
#if MBIAS_SIM_FASTPATH_ENABLED && MBIAS_SIM_TRACE_ENABLED
    const char *e = std::getenv("MBIAS_SIM_TRACE");
    if (e && e[0] == '0' && e[1] == '\0')
        return false;
    const char *r = std::getenv("MBIAS_SIM_REFERENCE");
    return !(r && *r && !(r[0] == '0' && r[1] == '\0'));
#else
    return false;
#endif
}

sim::RunResult
runTier(const sim::MachineConfig &mc, const toolchain::ProcessImage &image,
        Tier tier, std::uint64_t max_insts = 500'000'000)
{
    sim::Machine machine(mc);
    machine.setUseFastPath(tier != Tier::Reference);
    machine.setUseTracePath(tier == Tier::Trace);
    return machine.run(image, max_insts);
}

void
expectAllTiersIdentical(const sim::MachineConfig &mc,
                        const toolchain::ProcessImage &image,
                        const std::string &what,
                        std::uint64_t max_insts = 500'000'000)
{
    const auto ref = runTier(mc, image, Tier::Reference, max_insts);
    const auto fast = runTier(mc, image, Tier::Fast, max_insts);
    const auto trace = runTier(mc, image, Tier::Trace, max_insts);
    EXPECT_EQ(fast, ref) << what << ": fast path diverged (cycles "
                         << fast.cycles() << " vs " << ref.cycles()
                         << ")";
    EXPECT_EQ(trace, ref) << what << ": trace tier diverged (cycles "
                          << trace.cycles() << " vs " << ref.cycles()
                          << ")";
}

/** A hot straight-line kernel: long simple runs, so the trace tier
 *  actually forms and commits superblocks (the stats tests assert it
 *  does). */
toolchain::ProcessImage
straightLineImage()
{
    using namespace isa;
    ProgramBuilder b("sb_kernel");
    b.func("main");
    b.li(reg::t0, 500);
    b.li(reg::s0, 0x1234);
    b.label("loop");
    for (int g = 0; g < 24; ++g) {
        b.addi(reg::s0, reg::s0, g + 1);
        b.xori(reg::s1, reg::s1, 0x5a5a);
        b.add(reg::s2, reg::s2, reg::s0);
        b.addi(reg::s3, reg::s3, 7);
    }
    b.addi(reg::t0, reg::t0, -1);
    b.bne(reg::t0, reg::zero, "loop");
    b.add(reg::s1, reg::s1, reg::s2);
    b.add(reg::s1, reg::s1, reg::s3);
    b.add(reg::s1, reg::s1, reg::s0);
    b.mv(reg::a0, reg::s1);
    b.halt();
    b.endFunc();
    auto prog = toolchain::Linker().link({b.build()});
    toolchain::LoaderConfig lc;
    lc.envBytes = 1024;
    return toolchain::Loader::load(std::move(prog), lc);
}

TEST(TraceDifferential, WholeSuiteAcrossSetups)
{
    // Every workload, each in its own setup (env size and link order
    // rotate with the suite index; a different stride than the
    // fast-path differential so the two tests pin different layouts).
    const auto &suite = workloads::suite();
    ASSERT_GE(suite.size(), 12u);
    const auto mc = sim::MachineConfig::core2Like();
    for (std::size_t i = 0; i < suite.size(); ++i) {
        const std::string name = suite[i]->name();
        const std::uint64_t env = (271 * i * i) % 4096;
        const auto order =
            i % 3 == 1 ? toolchain::LinkOrder::asGiven()
                       : toolchain::LinkOrder::shuffled(0x51ed + i);
        expectAllTiersIdentical(mc, imageFor(name, order, env),
                                name + " env=" + std::to_string(env));
    }
}

TEST(TraceDifferential, AllMachinePresets)
{
    // Each preset has its own geometry (fetch width, line size, page
    // size), so each gets its own TracePlan out of the cache.
    const auto image =
        imageFor("perl", toolchain::LinkOrder::shuffled(13), 2222);
    for (const auto &mc : sim::MachineConfig::allPresets())
        expectAllTiersIdentical(mc, image, "perl on " + mc.name);
}

TEST(TraceDifferential, EveryAblationSwitch)
{
    // Each ablation flips a branch of the batch math: noCaches drops
    // the line replay (geometry canonicalizes ilineBytes to 0),
    // noTlbs the page replay, noFetchBlocks the block-end term of the
    // fetch rows.  All must stay bitwise identical.
    const auto image =
        imageFor("sjeng", toolchain::LinkOrder::shuffled(5), 1536);
    using Mutator = void (*)(sim::MachineConfig &);
    const std::pair<const char *, Mutator> variants[] = {
        {"noFetchBlocks",
         [](sim::MachineConfig &m) { m.enableFetchBlockModel = false; }},
        {"noBtb", [](sim::MachineConfig &m) { m.enableBtb = false; }},
        {"noStoreBuffer",
         [](sim::MachineConfig &m) {
             m.enableStoreBufferAliasing = false;
         }},
        {"noLineSplit",
         [](sim::MachineConfig &m) { m.enableLineSplitPenalty = false; }},
        {"noCaches",
         [](sim::MachineConfig &m) { m.enableCaches = false; }},
        {"noTlbs", [](sim::MachineConfig &m) { m.enableTlbs = false; }},
        {"noBranchPrediction",
         [](sim::MachineConfig &m) {
             m.enableBranchPrediction = false;
         }},
        {"withPrefetch",
         [](sim::MachineConfig &m) {
             m.enableNextLinePrefetch = true;
         }},
        {"bimodal",
         [](sim::MachineConfig &m) {
             m.predictor = sim::PredictorKind::Bimodal;
         }},
    };
    for (const auto &[label, mutate] : variants) {
        auto mc = sim::MachineConfig::core2Like();
        mutate(mc);
        expectAllTiersIdentical(mc, image, std::string("sjeng ") + label);
    }
}

TEST(TraceDifferential, InstructionBudgetTruncation)
{
    // Budgets chosen to land *inside* superblocks: the batch guard
    // must refuse any batch that would overrun max_insts and fall
    // back to the per-op walk, truncating at the same instruction
    // with the same partial counters as the other tiers.
    const auto image = straightLineImage();
    const auto mc = sim::MachineConfig::core2Like();
    for (std::uint64_t budget :
         {1ull, 7ull, 97ull, 1000ull, 12'345ull}) {
        const auto ref = runTier(mc, image, Tier::Reference, budget);
        const auto fast = runTier(mc, image, Tier::Fast, budget);
        const auto trace = runTier(mc, image, Tier::Trace, budget);
        EXPECT_EQ(fast, ref) << "truncated at " << budget << " insts";
        EXPECT_EQ(trace, ref) << "truncated at " << budget << " insts";
    }
    EXPECT_FALSE(runTier(mc, image, Tier::Trace, 100).halted);
}

TEST(TraceDifferential, GuardFallbackStaysIdentical)
{
    // A machine whose OoO window cannot absorb even a unit-latency
    // chain rejects every batch at the guard; the per-op fallback
    // must still be bitwise identical (and the stats must show the
    // fallbacks happened, proving this path was actually taken).
    const auto image = straightLineImage();
    auto mc = sim::MachineConfig::core2Like();
    mc.oooWindowCycles = 0;
    const auto before = sim::TraceCache::global().stats();
    expectAllTiersIdentical(mc, image, "oooWindow=0 fallback");
    const auto after = sim::TraceCache::global().stats();
    if (traceTierActive())
        EXPECT_GT(after.fallbacks, before.fallbacks)
            << "guard never fired; the test exercised nothing";
    else
        EXPECT_EQ(after.fallbacks, before.fallbacks);
}

TEST(TraceDifferential, BatchesActuallyCommit)
{
    // The inverse check: on a straight-line-heavy kernel with a sane
    // machine, superblocks must form and commit (ops batched grows).
    // Without this, every differential above could pass vacuously.
    const auto image = straightLineImage();
    const auto before = sim::TraceCache::global().stats();
    const auto rr = runTier(sim::MachineConfig::core2Like(), image,
                            Tier::Trace);
    ASSERT_TRUE(rr.halted);
    const auto after = sim::TraceCache::global().stats();
    if (traceTierActive()) {
        EXPECT_GT(after.superblocks, before.superblocks);
        EXPECT_GT(after.opsBatched, before.opsBatched);
        EXPECT_GT(after.opsBatched - before.opsBatched,
                  rr.instructions() / 2)
            << "a straight-line kernel should batch most of its ops";
    } else {
        EXPECT_EQ(after.opsBatched, before.opsBatched);
    }
}

TEST(TraceDifferential, TracePlanStructureInvariants)
{
    // The plan is the fast plan with heads rewritten: every
    // kBatchOpcode points at its block, every block is long enough to
    // pay for itself, non-head ops are untouched, and the per-block
    // tables have the advertised shapes.
    const auto image =
        imageFor("hmmer", toolchain::LinkOrder::shuffled(17), 640);
    const auto mc = sim::MachineConfig::core2Like();
    const auto base = sim::ExecutionPlan::build(image.program);
    const auto g = sim::TraceGeometry::of(mc);
    const auto tp = sim::TracePlan::build(base, g);
    ASSERT_NE(tp, nullptr);
    ASSERT_EQ(tp->ops.size(), base->ops.size());
    EXPECT_EQ(tp->base.get(), base.get());
    EXPECT_TRUE(tp->geometry == g);
    ASSERT_FALSE(tp->blocks.empty()) << "hmmer has hot simple runs";

    std::size_t heads = 0;
    for (std::size_t i = 0; i < tp->ops.size(); ++i) {
        const auto &d = tp->ops[i];
        if (d.op == sim::kBatchOpcode) {
            ++heads;
            ASSERT_LT(d.targetIdx, tp->blocks.size());
            const auto &tb = tp->blocks[d.targetIdx];
            EXPECT_EQ(tb.headIdx, std::uint32_t(i));
            // The stashed head is the base op, for fallback dispatch.
            EXPECT_EQ(tb.headOp.op, base->ops[i].op);
            EXPECT_EQ(tb.headOp.pc, base->ops[i].pc);
        } else {
            EXPECT_EQ(d.op, base->ops[i].op) << "op " << i;
            EXPECT_EQ(d.imm, base->ops[i].imm) << "op " << i;
        }
    }
    EXPECT_EQ(heads, tp->blocks.size())
        << "every block has exactly one head";

    for (const auto &tb : tp->blocks) {
        EXPECT_GE(tb.len, sim::TracePlan::kMinRunLen);
        EXPECT_LE(tb.headIdx + tb.len, tp->ops.size());
        ASSERT_EQ(tb.rows.size(), std::size_t(mc.fetchWidth));
        EXPECT_EQ(tb.writeGroups.size(),
                  tb.writes.size() * mc.fetchWidth);
        for (std::size_t w = 1; w < tb.writes.size(); ++w)
            EXPECT_LT(tb.writes[w - 1].pos, tb.writes[w].pos)
                << "writes must ascend by position";
        for (const auto &f : tb.fnOps) {
            EXPECT_LE(std::uint8_t(f.op),
                      std::uint8_t(isa::Opcode::Li))
                << "fnOps must stay in the dense simple-op range";
            EXPECT_NE(f.rd, isa::reg::zero)
                << "zero-register writes are dropped at build";
        }
        EXPECT_LE(tb.fnOps.size(), tb.len);
        EXPECT_LE(tb.nopCount, tb.len);
        for (std::size_t l = 1; l < tb.lines.size(); ++l)
            EXPECT_LT(tb.lines[l - 1].line, tb.lines[l].line)
                << "code lines of an ascending run ascend";
    }
}

TEST(TraceDifferential, CacheKeysOnGeometry)
{
    // Two machines with different geometries must get two plans from
    // one base plan; asking again must hit.  A fresh local cache
    // keeps the test independent of the global cache's history.
    const auto image =
        imageFor("bzip", toolchain::LinkOrder::asGiven(), 256);
    const auto base = sim::ExecutionPlan::build(image.program);

    auto core2 = sim::TraceGeometry::of(sim::MachineConfig::core2Like());
    auto ablated_mc = sim::MachineConfig::core2Like();
    ablated_mc.enableCaches = false;
    auto ablated = sim::TraceGeometry::of(ablated_mc);
    ASSERT_FALSE(core2 == ablated)
        << "disabling caches must change the fingerprint";
    EXPECT_EQ(ablated.ilineBytes, 0u)
        << "fields behind a disabled model canonicalize to zero";

    sim::TraceCache cache(8);
    const auto p1 = cache.get(base, core2);
    const auto p2 = cache.get(base, ablated);
    EXPECT_NE(p1.get(), p2.get());
    EXPECT_EQ(cache.get(base, core2).get(), p1.get());
    EXPECT_EQ(cache.get(base, ablated).get(), p2.get());
    const auto st = cache.stats();
    EXPECT_EQ(st.misses, 2u);
    EXPECT_EQ(st.hits, 2u);

    // Same-geometry machines share one plan even when non-geometry
    // config differs (latencies are run-time, not build-time, inputs).
    auto slow_div = sim::MachineConfig::core2Like();
    slow_div.intDivLatency = 99;
    EXPECT_TRUE(core2 == sim::TraceGeometry::of(slow_div));
}

TEST(TraceDifferential, EnvHatchDisablesTraceTier)
{
    // MBIAS_SIM_TRACE=0 is re-read per run: one process can flip the
    // tier off and back on, and the description string tracks it.
    const char *old = std::getenv("MBIAS_SIM_TRACE");
    const std::string saved = old ? old : "";

    ::setenv("MBIAS_SIM_TRACE", "0", 1);
#if MBIAS_SIM_FASTPATH_ENABLED && MBIAS_SIM_TRACE_ENABLED
    EXPECT_EQ(sim::activeSimTierDescription(),
              std::string("fast (MBIAS_SIM_TRACE=0)") + kReplaySuffix);
#endif
    const auto image = straightLineImage();
    const auto mc = sim::MachineConfig::core2Like();
    const auto before = sim::TraceCache::global().stats();
    const auto hatched = runTier(mc, image, Tier::Trace);
    const auto after = sim::TraceCache::global().stats();
    EXPECT_EQ(after.opsBatched, before.opsBatched)
        << "the hatch must keep runs off the trace tier";

    ::setenv("MBIAS_SIM_TRACE", "1", 1);
#if MBIAS_SIM_FASTPATH_ENABLED && MBIAS_SIM_TRACE_ENABLED
    EXPECT_EQ(sim::activeSimTierDescription(),
              std::string("trace") + kReplaySuffix);
#endif
    const auto traced = runTier(mc, image, Tier::Trace);
    EXPECT_EQ(traced, hatched);

    if (old)
        ::setenv("MBIAS_SIM_TRACE", saved.c_str(), 1);
    else
        ::unsetenv("MBIAS_SIM_TRACE");
}

TEST(TraceDifferential, AttributionUnaffected)
{
    // Attribution rides the reference path; interleaving trace-tier
    // runs (which share the global caches) must not move a single
    // attributed placement or counter.
    const auto image =
        imageFor("perl", toolchain::LinkOrder::shuffled(29), 512);
    const auto mc = sim::MachineConfig::core2Like();

    sim::Machine ref(mc);
    sim::Attribution a1;
    const auto r1 = ref.run(image, 500'000'000, sim::NoiseModel::none(),
                            nullptr, &a1);
    ASSERT_TRUE(r1.halted);

    const auto traced = runTier(mc, image, Tier::Trace);
    EXPECT_EQ(traced, r1);

    sim::Attribution a2;
    const auto r2 = ref.run(image, 500'000'000, sim::NoiseModel::none(),
                            nullptr, &a2);
    EXPECT_EQ(r2, r1);
    EXPECT_EQ(a2.str(), a1.str())
        << "trace runs perturbed attribution placement";
    EXPECT_EQ(a2.icache.totalMisses(), a1.icache.totalMisses());
    EXPECT_EQ(a2.pht.totalAliasSwitches(), a1.pht.totalAliasSwitches());
}

} // namespace
