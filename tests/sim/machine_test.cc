/** @file Functional and timing tests for the Machine. */
#include <gtest/gtest.h>

#include <functional>

#include "isa/builder.hh"
#include "sim/machine.hh"
#include "toolchain/linker.hh"
#include "toolchain/loader.hh"

namespace
{

using namespace mbias;
using namespace mbias::isa;
using namespace mbias::isa::reg;
using sim::Counter;
using sim::Machine;
using sim::MachineConfig;
using toolchain::Linker;
using toolchain::Loader;
using toolchain::LoaderConfig;

/** Builds, links, and runs a single-function program. */
sim::RunResult
run(const std::function<void(ProgramBuilder &)> &body,
    MachineConfig config = MachineConfig::core2Like(),
    LoaderConfig lc = {})
{
    ProgramBuilder b("t");
    b.func("main");
    body(b);
    b.endFunc();
    std::vector<Module> mods;
    mods.push_back(b.build());
    auto prog = Linker().link(mods);
    auto image = Loader::load(std::move(prog), lc);
    Machine m(config);
    return m.run(image);
}

TEST(MachineFunctional, ArithmeticBasics)
{
    auto rr = run([](ProgramBuilder &b) {
        b.li(t0, 6);
        b.li(t1, 7);
        b.mul(a0, t0, t1);
        b.halt();
    });
    EXPECT_TRUE(rr.halted);
    EXPECT_EQ(rr.result, 42u);
}

TEST(MachineFunctional, ZeroRegisterIsImmutable)
{
    auto rr = run([](ProgramBuilder &b) {
        b.li(zero, 99);
        b.addi(a0, zero, 5);
        b.halt();
    });
    EXPECT_EQ(rr.result, 5u);
}

TEST(MachineFunctional, DivisionByZeroRiscvSemantics)
{
    auto rr = run([](ProgramBuilder &b) {
        b.li(t0, 17);
        b.li(t1, 0);
        b.divu(a0, t0, t1);
        b.halt();
    });
    EXPECT_EQ(rr.result, ~std::uint64_t(0));

    rr = run([](ProgramBuilder &b) {
        b.li(t0, 17);
        b.li(t1, 0);
        b.remu(a0, t0, t1);
        b.halt();
    });
    EXPECT_EQ(rr.result, 17u);
}

TEST(MachineFunctional, ShiftAndCompare)
{
    auto rr = run([](ProgramBuilder &b) {
        b.li(t0, -8);
        b.srai(t1, t0, 1);    // -4
        b.li(t2, 3);
        b.slt(t3, t1, t2);    // -4 < 3 -> 1
        b.sltu(t4, t1, t2);   // huge unsigned < 3 -> 0
        b.slli(t5, t2, 4);    // 48
        b.add(a0, t3, t4);
        b.add(a0, a0, t5);    // 49
        b.halt();
    });
    EXPECT_EQ(rr.result, 49u);
}

TEST(MachineFunctional, LoadStoreRoundTrip)
{
    auto rr = run([](ProgramBuilder &b) {
        b.li(t0, 0x11223344aabbccddLL);
        b.st8(t0, sp, -8);
        b.ld4(t1, sp, -8);  // low word, zero-extended
        b.ld1(t2, sp, -5);  // byte 3 = 0x44... little endian: -5 => 0x11?
        b.mv(a0, t1);
        b.halt();
    });
    EXPECT_EQ(rr.result, 0xaabbccddu);
}

TEST(MachineFunctional, StackDisciplineThroughCalls)
{
    ProgramBuilder b("t");
    b.func("main");
    b.li(a0, 5);
    b.call("twice");
    b.call("twice");
    b.halt();
    b.endFunc();
    b.func("twice");
    b.add(a0, a0, a0);
    b.ret();
    b.endFunc();
    std::vector<Module> mods;
    mods.push_back(b.build());
    auto image = Loader::load(Linker().link(mods), {});
    Machine m(MachineConfig::core2Like());
    auto rr = m.run(image);
    EXPECT_EQ(rr.result, 20u);
    EXPECT_EQ(rr.counters.get(Counter::Calls), 2u);
}

TEST(MachineFunctional, RecursionComputesFactorial)
{
    ProgramBuilder b("t");
    b.func("main");
    b.li(a0, 5);
    b.call("fact");
    b.halt();
    b.endFunc();
    b.func("fact");
    b.li(t0, 1);
    b.bgeu(t0, a0, "base");   // a0 <= 1
    b.addi(sp, sp, -8);
    b.st8(a0, sp, 0);
    b.addi(a0, a0, -1);
    b.call("fact");
    b.ld8(t1, sp, 0);
    b.addi(sp, sp, 8);
    b.mul(a0, a0, t1);
    b.ret();
    b.label("base");
    b.li(a0, 1);
    b.ret();
    b.endFunc();
    std::vector<Module> mods;
    mods.push_back(b.build());
    auto image = Loader::load(Linker().link(mods), {});
    Machine m(MachineConfig::core2Like());
    EXPECT_EQ(m.run(image).result, 120u);
}

TEST(MachineFunctional, GlobalDataVisible)
{
    ProgramBuilder b("t");
    b.globalWords("vals", {11, 22, 33});
    b.func("main");
    b.la(t0, "vals");
    b.ld8(t1, t0, 8);
    b.ld8(t2, t0, 16);
    b.add(a0, t1, t2);
    b.halt();
    b.endFunc();
    std::vector<Module> mods;
    mods.push_back(b.build());
    auto image = Loader::load(Linker().link(mods), {});
    Machine m(MachineConfig::core2Like());
    EXPECT_EQ(m.run(image).result, 55u);
}

TEST(MachineFunctional, MaxInstsStopsRunaway)
{
    ProgramBuilder b("t");
    b.func("main");
    b.label("spin");
    b.jmp("spin");
    b.endFunc();
    std::vector<Module> mods;
    mods.push_back(b.build());
    auto image = Loader::load(Linker().link(mods), {});
    Machine m(MachineConfig::core2Like());
    auto rr2 = m.run(image, 1000);
    EXPECT_FALSE(rr2.halted);
    EXPECT_EQ(rr2.instructions(), 1000u);
}

// --------------------------------------------------------------- timing

TEST(MachineTiming, Deterministic)
{
    auto once = run([](ProgramBuilder &b) {
        b.li(t0, 500);
        b.label("loop");
        b.addi(t0, t0, -1);
        b.bne(t0, zero, "loop");
        b.halt();
    });
    auto twice = run([](ProgramBuilder &b) {
        b.li(t0, 500);
        b.label("loop");
        b.addi(t0, t0, -1);
        b.bne(t0, zero, "loop");
        b.halt();
    });
    EXPECT_EQ(once.cycles(), twice.cycles());
    for (auto c : sim::allCounters())
        EXPECT_EQ(once.counters.get(c), twice.counters.get(c));
}

TEST(MachineTiming, CyclesBoundedBelowByWidth)
{
    auto rr = run([](ProgramBuilder &b) {
        for (int i = 0; i < 64; ++i)
            b.addi(t0, t0, 1);
        b.halt();
    });
    const auto width = MachineConfig::core2Like().fetchWidth;
    EXPECT_GE(rr.cycles(), rr.instructions() / width);
}

TEST(MachineTiming, TakenBranchesCostFetchGroups)
{
    auto straight = run([](ProgramBuilder &b) {
        for (int i = 0; i < 40; ++i)
            b.addi(t0, t0, 1);
        b.halt();
    });
    auto loopy = run([](ProgramBuilder &b) {
        b.li(t1, 10);
        b.label("loop");
        b.addi(t0, t0, 1);
        b.addi(t0, t0, 1);
        b.addi(t0, t0, 1);
        b.addi(t1, t1, -1);
        b.bne(t1, zero, "loop");
        b.halt();
    });
    // Comparable instruction counts, but every taken branch restarts
    // an issue group (cold cache misses dominate raw cycles at this
    // size, so compare fetch-group rates, which isolate the front end).
    const double straight_rate =
        double(straight.counters.get(Counter::FetchGroups)) /
        double(straight.instructions());
    const double loopy_rate =
        double(loopy.counters.get(Counter::FetchGroups)) /
        double(loopy.instructions());
    EXPECT_GT(loopy_rate, straight_rate);
}

TEST(MachineTiming, DcacheMissesCharged)
{
    auto rr = run([](ProgramBuilder &b) {
        b.global("arr", 1 << 20, 64); // 1 MiB, exceeds 32 KiB L1
        b.la(t0, "arr");
        b.li(t1, 0);
        b.li(t2, 1 << 14); // touch 16K lines
        b.label("loop");
        b.slli(t3, t1, 6);
        b.add(t3, t0, t3);
        b.ld8(t4, t3, 0);
        b.add(a0, a0, t4);
        b.addi(t1, t1, 1);
        b.bne(t1, t2, "loop");
        b.halt();
    });
    EXPECT_GT(rr.counters.get(Counter::DcacheMisses), 10000u);
    EXPECT_GT(rr.counters.get(Counter::StallCycles), 1000u);
}

TEST(MachineTiming, MispredictsOnDataDependentBranch)
{
    auto rr = run([](ProgramBuilder &b) {
        // Branch on a pseudo-random bit: ~50% mispredicts expected.
        b.li(t0, 400);
        b.li(t1, 12345);
        b.label("loop");
        b.li(t3, 6364136223846793005LL);
        b.mul(t1, t1, t3);
        b.addi(t1, t1, 1442695040888963407LL);
        b.srli(t2, t1, 33);
        b.andi(t2, t2, 1);
        b.beq(t2, zero, "skip");
        b.addi(a0, a0, 1);
        b.label("skip");
        b.addi(t0, t0, -1);
        b.bne(t0, zero, "loop");
        b.halt();
    });
    const auto mp = rr.counters.get(Counter::BranchMispredicts);
    EXPECT_GT(mp, 100u); // the random branch defeats the predictor
}

TEST(MachineTiming, MisalignedStackCausesSplits)
{
    auto body = [](ProgramBuilder &b) {
        b.li(t0, 200);
        b.label("loop");
        b.st8(t0, sp, -8);
        b.st8(t0, sp, -16);
        b.st8(t0, sp, -24);
        b.st8(t0, sp, -32);
        b.st8(t0, sp, -40);
        b.st8(t0, sp, -48);
        b.st8(t0, sp, -56);
        b.st8(t0, sp, -64);
        b.addi(t0, t0, -1);
        b.bne(t0, zero, "loop");
        b.halt();
    };
    LoaderConfig aligned;
    aligned.envBytes = 0; // sp stays 8-aligned
    auto a = run(body, MachineConfig::core2Like(), aligned);
    LoaderConfig misaligned;
    misaligned.envBytes = 4; // sp ends up 4 mod 8
    auto b2 = run(body, MachineConfig::core2Like(), misaligned);
    EXPECT_EQ(a.counters.get(Counter::LineSplits), 0u);
    EXPECT_GT(b2.counters.get(Counter::LineSplits), 100u);
    EXPECT_GT(b2.cycles(), a.cycles());
}

TEST(MachineTiming, AliasStallsOn4KCollision)
{
    auto rr = run([](ProgramBuilder &b) {
        b.global("g", 8192, 4096);
        b.li(t0, 200);
        b.la(t1, "g");
        b.label("loop");
        b.st8(t0, t1, 0);     // store to g
        b.ld8(t2, t1, 4096);  // load 4 KiB away: false alias
        b.add(a0, a0, t2);
        b.addi(t0, t0, -1);
        b.bne(t0, zero, "loop");
        b.halt();
    });
    EXPECT_GT(rr.counters.get(Counter::AliasStalls), 150u);
}

TEST(MachineTiming, CounterConsistency)
{
    auto rr = run([](ProgramBuilder &b) {
        b.li(t0, 100);
        b.label("loop");
        b.st8(t0, sp, -8);
        b.ld8(t1, sp, -8);
        b.addi(t0, t0, -1);
        b.bne(t0, zero, "loop");
        b.halt();
    });
    const auto &c = rr.counters;
    EXPECT_GE(c.get(Counter::BranchesExecuted),
              c.get(Counter::TakenBranches));
    EXPECT_GE(c.get(Counter::BranchesExecuted),
              c.get(Counter::BranchMispredicts));
    EXPECT_GE(c.get(Counter::Cycles), c.get(Counter::FetchGroups));
    EXPECT_EQ(c.get(Counter::Loads), 100u);
    EXPECT_EQ(c.get(Counter::Stores), 100u);
    EXPECT_GE(rr.cycles(), rr.instructions() / 4);
}

TEST(MachineTiming, AblationFlagsRemoveTheirEvents)
{
    auto body = [](ProgramBuilder &b) {
        b.li(t0, 100);
        b.label("loop");
        b.st8(t0, sp, -4); // 4-byte offset: splits at some alignments
        b.addi(t0, t0, -1);
        b.bne(t0, zero, "loop");
        b.halt();
    };
    LoaderConfig lc;
    lc.envBytes = 4;

    auto cfg = MachineConfig::core2Like();
    auto with = run(body, cfg, lc);
    cfg.enableLineSplitPenalty = false;
    auto without = run(body, cfg, lc);
    // Splits still counted, but no longer charged.
    EXPECT_EQ(with.counters.get(Counter::LineSplits),
              without.counters.get(Counter::LineSplits));
    EXPECT_GE(with.cycles(), without.cycles());

    cfg = MachineConfig::core2Like();
    cfg.enableBranchPrediction = false;
    auto perfect = run(body, cfg, lc);
    EXPECT_EQ(perfect.counters.get(Counter::BranchMispredicts), 0u);
}

TEST(MachineTiming, PresetMachinesRankSensibly)
{
    auto body = [](ProgramBuilder &b) {
        b.li(t0, 300);
        b.li(t1, 999);
        b.label("loop");
        b.li(t3, 6364136223846793005LL);
        b.mul(t1, t1, t3);
        b.srli(t2, t1, 40);
        b.andi(t2, t2, 1);
        b.beq(t2, zero, "even");
        b.addi(a0, a0, 3);
        b.label("even");
        b.addi(t0, t0, -1);
        b.bne(t0, zero, "loop");
        b.halt();
    };
    auto core2 = run(body, MachineConfig::core2Like());
    auto p4 = run(body, MachineConfig::p4Like());
    auto o3 = run(body, MachineConfig::o3Like());
    // Same dynamic instruction stream everywhere.
    EXPECT_EQ(core2.instructions(), p4.instructions());
    EXPECT_EQ(core2.instructions(), o3.instructions());
    // The deep-pipeline machine suffers most on mispredict-heavy code;
    // the wide o3 machine does best.
    EXPECT_GT(p4.cycles(), core2.cycles());
    EXPECT_GT(core2.cycles(), o3.cycles());
}

} // namespace
