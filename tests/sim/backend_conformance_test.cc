/**
 * @file
 * The machine-backend layer's contract: every backend in the
 * MachineRegistry must run every tier it declares with bitwise
 * identical results, and must *assert its fallback* for every tier it
 * does not — the in-order core declares no trace support, so its
 * trace-tier requests silently take the plain fast path, and its
 * record/replay runs batch nothing.  On top of the per-backend
 * four-tier differential this file pins the registry's shape (paper
 * presets first, in paper order), the ad-hoc-config capability
 * derivation, the DVFS noise factor's reference-vs-plan transcription
 * on both core models, and the in-order policy's observable
 * properties (exposed stalls, fetch-realignment charges).
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>

#include "sim/machine.hh"
#include "sim/registry.hh"
#include "sim/replay.hh"
#include "toolchain/compiler.hh"
#include "toolchain/linker.hh"
#include "toolchain/loader.hh"
#include "workloads/registry.hh"

namespace
{

using namespace mbias;

toolchain::ProcessImage
imageFor(const std::string &workload, const toolchain::LinkOrder &order,
         std::uint64_t env_bytes)
{
    const auto &w = workloads::findWorkload(workload);
    toolchain::Compiler cc(toolchain::CompilerVendor::GccLike,
                           toolchain::OptLevel::O2);
    auto mods = cc.compile(w.build({}));
    toolchain::Linker linker;
    auto prog = std::make_shared<const toolchain::LinkedProgram>(
        linker.link(mods, order));
    toolchain::LoaderConfig lc;
    lc.envBytes = env_bytes;
    return toolchain::Loader::load(std::move(prog), lc);
}

/** Mirrors replay_differential_test's hatch probe: whether runRecord/
 *  runReplay can reach the replay tier in this process at all. */
bool
replayTierActive()
{
#if MBIAS_SIM_FASTPATH_ENABLED && MBIAS_SIM_REPLAY_ENABLED
    if (sim::replayDisabledByEnv())
        return false;
    return !sim::referenceForcedByEnv();
#else
    return false;
#endif
}

/**
 * One backend through all four tiers on one image: reference (fast
 * path forced off), fast (trace toggled off), trace (everything on —
 * which for a no-trace backend must assert its fallback via
 * traceTierUsable), and record/replay under a noise seed.  Every
 * result must equal the reference bits.
 */
void
expectFourTierIdentical(const sim::MachineBackend &backend,
                        const toolchain::ProcessImage &image,
                        const std::string &what)
{
    const std::uint64_t budget = 500'000'000;

    sim::Machine reference(backend.config);
    reference.setUseFastPath(false);
    const auto ref = reference.run(image, budget);
    ASSERT_TRUE(ref.halted) << what;

    sim::Machine fast(backend.config);
    fast.setUseTracePath(false);
    EXPECT_EQ(fast.run(image, budget), ref)
        << what << ": fast tier diverged from reference";

    sim::Machine full(backend.config);
    EXPECT_EQ(sim::traceTierUsable(full) && !backend.tiers.trace, false)
        << what << ": trace tier usable despite the backend declaring "
        << "no support";
    EXPECT_EQ(full.run(image, budget), ref)
        << what << (backend.tiers.trace
                        ? ": trace tier diverged from reference"
                        : ": trace-tier fallback diverged from reference");

    // Record under one noise seed, replay under another; each must
    // match the plain (reference-interpreted, since noise is on) run
    // of the same seed.  Unsupported replay must leave the trace null.
    sim::Machine rr(backend.config);
    std::shared_ptr<const sim::FunctionalTrace> trace;
    const auto noise0 = sim::NoiseModel::withSeed(0xc04f + ref.result % 7);
    const auto rec = rr.runRecord(image, budget, noise0, &trace);
    sim::Machine plain0(backend.config);
    EXPECT_EQ(rec, plain0.run(image, budget, noise0))
        << what << ": recording run diverged";
    if (!replayTierActive() || !backend.tiers.replay) {
        EXPECT_EQ(trace, nullptr)
            << what << ": unsupported replay must fall back traceless";
        return;
    }
    ASSERT_NE(trace, nullptr) << what << ": recording aborted";
    const auto noise1 = sim::NoiseModel::withSeed(noise0.seed + 1);
    sim::Machine plain1(backend.config);
    EXPECT_EQ(rr.runReplay(image, budget, noise1, *trace),
              plain1.run(image, budget, noise1))
        << what << ": replay diverged";
}

TEST(BackendConformance, RegistryShape)
{
    const auto &reg = sim::MachineRegistry::global();
    // Paper presets lead, in paper order, and allPresets() forwards to
    // exactly them — the invariant every pinned golden rests on.
    const auto presets = sim::MachineConfig::allPresets();
    ASSERT_EQ(presets.size(), 3u);
    EXPECT_EQ(presets[0].name, "p4like");
    EXPECT_EQ(presets[1].name, "core2like");
    EXPECT_EQ(presets[2].name, "o3like");
    ASSERT_GE(reg.backends().size(), 4u);
    for (std::size_t i = 0; i < presets.size(); ++i) {
        EXPECT_EQ(reg.backends()[i].config.name, presets[i].name);
        EXPECT_TRUE(reg.backends()[i].paperPreset);
        EXPECT_EQ(reg.backends()[i].coreModel, "out-of-order");
    }
    const auto *inorder = reg.byName("inorderlike");
    ASSERT_NE(inorder, nullptr);
    EXPECT_FALSE(inorder->paperPreset);
    EXPECT_EQ(inorder->coreModel, "in-order");
    EXPECT_TRUE(inorder->tiers.fast);
    EXPECT_FALSE(inorder->tiers.trace); // batch guards assume the OoO
                                        // window model
    EXPECT_TRUE(inorder->tiers.replay);
    EXPECT_EQ(reg.byName("nosuch"), nullptr);
    EXPECT_NE(reg.namesJoined().find("inorderlike"), std::string::npos);
}

TEST(BackendConformance, AdHocConfigsInheritCoreKindTiers)
{
    // A tweaked copy of a preset (renamed, so the registry lookup
    // misses) derives its capabilities from its core kind.
    auto tweaked = sim::MachineConfig::inorderLike();
    tweaked.name = "inorder_tweaked";
    tweaked.fetchRealignPenalty = 3;
    const auto tiers = sim::MachineRegistry::tiersFor(tweaked);
    EXPECT_TRUE(tiers.fast);
    EXPECT_FALSE(tiers.trace);
    EXPECT_TRUE(tiers.replay);

    auto ooo = sim::MachineConfig::core2Like();
    ooo.name = "core2_tweaked";
    EXPECT_TRUE(sim::MachineRegistry::tiersFor(ooo).trace);

    // A name collision with a *different* core kind must not borrow
    // the registered backend's declaration.
    auto impostor = sim::MachineConfig::core2Like();
    impostor.core = sim::CoreKind::InOrder;
    EXPECT_FALSE(sim::MachineRegistry::tiersFor(impostor).trace);

    sim::Machine machine(tweaked);
    EXPECT_FALSE(machine.tierSupport().trace);
    EXPECT_FALSE(sim::traceTierUsable(machine));
}

TEST(BackendConformance, FourTierDifferentialEveryBackend)
{
    // Every registered backend over a few setups of two workloads with
    // different character (pointer-chasing vs branchy integer), each
    // in its own layout family.
    const auto &reg = sim::MachineRegistry::global();
    std::size_t b = 0;
    for (const auto &backend : reg.backends()) {
        const std::uint64_t env = (911 * b * b) % 4096;
        const auto order = b % 2 ? toolchain::LinkOrder::shuffled(0xbac + b)
                                 : toolchain::LinkOrder::asGiven();
        expectFourTierIdentical(backend, imageFor("mcf", order, env),
                                backend.config.name + "/mcf env=" +
                                    std::to_string(env));
        expectFourTierIdentical(
            backend, imageFor("sjeng", order, 4096 - env),
            backend.config.name + "/sjeng env=" +
                std::to_string(4096 - env));
        ++b;
    }
}

TEST(BackendConformance, DvfsNoiseAcrossTiers)
{
    // The DVFS factor's reference-loop and plan-loop transcriptions
    // must agree bitwise on both core models: record under combined
    // interrupt+DVFS noise, replay under fresh seeds, each against the
    // plain (reference-interpreted) run of the same model.
    const auto image =
        imageFor("hmmer", toolchain::LinkOrder::shuffled(5), 300);
    const std::uint64_t budget = 500'000'000;
    for (const char *name : {"core2like", "inorderlike"}) {
        const auto *backend =
            sim::MachineRegistry::global().byName(name);
        ASSERT_NE(backend, nullptr);
        sim::Machine machine(backend->config);
        std::shared_ptr<const sim::FunctionalTrace> trace;
        auto noise0 = sim::NoiseModel::withDvfs(0x1d7f);
        // Tighten the governor so several steps land inside this
        // workload's ~10^5-cycle run (the default interval is sized
        // for longer runs and can miss it entirely).
        noise0.dvfsMeanIntervalCycles = 20000;
        noise0.dvfsMeanResidencyCycles = 5000;
        const auto rec = machine.runRecord(image, budget, noise0, &trace);
        sim::Machine plain(backend->config);
        EXPECT_EQ(rec, plain.run(image, budget, noise0))
            << name << ": DVFS recording diverged";
        // The factor must actually perturb timing relative to
        // interrupt-only noise of the same seed.
        auto interrupts_only = noise0;
        interrupts_only.dvfsEnabled = false;
        EXPECT_NE(rec.cycles(),
                  plain.run(image, budget, interrupts_only).cycles())
            << name << ": DVFS steps changed nothing";
        if (!replayTierActive())
            continue;
        ASSERT_NE(trace, nullptr) << name;
        for (std::uint64_t s = 1; s <= 2; ++s) {
            auto noise = noise0;
            noise.seed += s;
            noise.dvfsSlowdownPercent = 40;
            sim::Machine fresh(backend->config);
            EXPECT_EQ(machine.runReplay(image, budget, noise, *trace),
                      fresh.run(image, budget, noise))
                << name << ": DVFS replay diverged at seed +" << s;
        }
    }
}

TEST(BackendConformance, InOrderPolicyProperties)
{
    // Same geometry, swapped core policy: the in-order model may hide
    // nothing, so with a nonzero OoO window the same image can only
    // get slower.  Enabling the fetch-realignment charge slows it
    // further (taken transfers into mid-block targets now refetch).
    const auto image =
        imageFor("bzip", toolchain::LinkOrder::asGiven(), 512);
    auto ooo = sim::MachineConfig::core2Like();
    auto in_order = ooo;
    in_order.name = "core2_inorder_twin";
    in_order.core = sim::CoreKind::InOrder;
    in_order.fetchRealignPenalty = 0;

    sim::Machine a(ooo), b(in_order);
    const auto ra = a.run(image);
    const auto rb = b.run(image);
    EXPECT_EQ(ra.result, rb.result) << "core policy must not change "
                                       "functional behavior";
    EXPECT_EQ(ra.instructions(), rb.instructions());
    EXPECT_GT(rb.cycles(), ra.cycles());
    EXPECT_GT(rb.counters.get(sim::Counter::StallCycles),
              ra.counters.get(sim::Counter::StallCycles));

    auto realign = in_order;
    realign.fetchRealignPenalty = 2;
    sim::Machine c(realign);
    EXPECT_GT(c.run(image).cycles(), rb.cycles())
        << "fetch-realignment charge had no effect";
}

} // namespace
