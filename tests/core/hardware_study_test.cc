/** @file Tests for machine-pair (hardware) studies and the prefetcher. */
#include <gtest/gtest.h>

#include "core/bias.hh"
#include "core/experiment.hh"
#include "core/setup.hh"

namespace
{

using namespace mbias;
using namespace mbias::core;

sim::MachineConfig
withPrefetcher()
{
    auto m = sim::MachineConfig::core2Like();
    m.name = "core2like+pf";
    m.enableNextLinePrefetch = true;
    return m;
}

TEST(HardwareStudy, SpecStrNamesBothMachines)
{
    ExperimentSpec spec;
    spec.withWorkload("lbm").withTreatmentMachine(withPrefetcher());
    spec.treatment = spec.baseline;
    EXPECT_EQ(spec.str(), "lbm (gcc-O2): core2like vs core2like+pf");
}

TEST(HardwareStudy, IdenticalMachinesGiveUnitSpeedup)
{
    ExperimentSpec spec;
    spec.withTreatmentMachine(sim::MachineConfig::core2Like());
    spec.treatment = spec.baseline;
    ExperimentRunner runner(spec);
    EXPECT_DOUBLE_EQ(runner.run(ExperimentSetup{}).speedup, 1.0);
}

TEST(HardwareStudy, PrefetcherHelpsStreaming)
{
    ExperimentSpec spec;
    spec.withWorkload("lbm").withTreatmentMachine(withPrefetcher());
    spec.treatment = spec.baseline;
    ExperimentRunner runner(spec);
    auto o = runner.run(ExperimentSetup{});
    EXPECT_GT(o.speedup, 1.05);
    EXPECT_GT(o.treatment.counters.get(sim::Counter::PrefetchesIssued),
              0u);
    EXPECT_EQ(o.baseline.counters.get(sim::Counter::PrefetchesIssued),
              0u);
    // Functional result identical on both machines.
    EXPECT_EQ(o.baseline.result, o.treatment.result);
}

TEST(HardwareStudy, PrefetchReducesDemandMisses)
{
    ExperimentSpec spec;
    spec.withWorkload("libquantum")
        .withTreatmentMachine(withPrefetcher());
    spec.treatment = spec.baseline;
    ExperimentRunner runner(spec);
    auto o = runner.run(ExperimentSetup{});
    EXPECT_LT(o.treatment.counters.get(sim::Counter::DcacheMisses),
              o.baseline.counters.get(sim::Counter::DcacheMisses));
}

TEST(HardwareStudy, SoftwareStudyUnaffectedByOptionalField)
{
    // Without treatmentMachine the behaviour is the classic software
    // study (regression guard for the optional's default).
    ExperimentSpec spec;
    ASSERT_FALSE(spec.treatmentMachine.has_value());
    ExperimentRunner runner(spec);
    auto o = runner.run(ExperimentSetup{});
    EXPECT_NE(o.speedup, 0.0);
    EXPECT_EQ(spec.str(), "perl: gcc-O2 vs gcc-O3 on core2like");
}

TEST(HardwareStudy, BiasAnalysisComposes)
{
    ExperimentSpec spec;
    spec.withWorkload("hmmer").withTreatmentMachine(withPrefetcher());
    spec.treatment = spec.baseline;
    auto setups = SetupSpace().varyEnvSize().grid(8);
    auto report = BiasAnalyzer().analyze(spec, setups);
    EXPECT_EQ(report.outcomes.size(), 8u);
    EXPECT_GT(report.speedups.mean(), 1.0);
}

} // namespace
