/** @file Tests for stack ASLR and per-run layout randomization. */
#include <gtest/gtest.h>

#include "core/runner.hh"
#include "core/setup.hh"
#include "toolchain/linker.hh"
#include "toolchain/loader.hh"
#include "workloads/registry.hh"

namespace
{

using namespace mbias;

TEST(Aslr, SeedMovesTheStack)
{
    const auto &w = workloads::findWorkload("perl");
    workloads::WorkloadConfig cfg;
    toolchain::Compiler cc(toolchain::CompilerVendor::GccLike,
                           toolchain::OptLevel::O2);
    const auto objs = cc.compile(w.build(cfg));
    auto load = [&](std::uint64_t seed) {
        toolchain::LoaderConfig lc;
        lc.aslrSeed = seed;
        return toolchain::Loader::load(toolchain::Linker().link(objs),
                                       lc);
    };
    const auto base = load(0);
    EXPECT_EQ(base.stackTop, toolchain::LoaderConfig{}.stackTop);
    const auto a = load(1), b = load(2), a2 = load(1);
    EXPECT_LT(a.stackTop, base.stackTop);
    EXPECT_NE(a.initialSp, b.initialSp);
    EXPECT_EQ(a.initialSp, a2.initialSp); // deterministic per seed
    // Offsets stay within the documented ~16 KiB window.
    EXPECT_LE(base.stackTop - a.stackTop, 16384u);
}

TEST(Aslr, ResamplesAlignmentClasses)
{
    // The 4-byte granularity must produce both 8-aligned and
    // 4-misaligned stacks across seeds (else line splits could hide).
    const auto &w = workloads::findWorkload("perl");
    workloads::WorkloadConfig cfg;
    toolchain::Compiler cc(toolchain::CompilerVendor::GccLike,
                           toolchain::OptLevel::O2);
    const auto objs = cc.compile(w.build(cfg));
    bool saw_aligned = false, saw_misaligned = false;
    for (std::uint64_t seed = 1; seed <= 32; ++seed) {
        toolchain::LoaderConfig lc;
        lc.aslrSeed = seed;
        auto img = toolchain::Loader::load(
            toolchain::Linker().link(objs), lc);
        (img.initialSp % 8 == 0 ? saw_aligned : saw_misaligned) = true;
    }
    EXPECT_TRUE(saw_aligned);
    EXPECT_TRUE(saw_misaligned);
}

TEST(Aslr, RandomizedRunsVaryButComputeTheSameResult)
{
    core::ExperimentSpec spec;
    core::ExperimentRunner runner(spec);
    core::ExperimentSetup setup;
    auto sample = runner.aslrRandomizedMetric(spec.baseline, setup, 8, 7);
    EXPECT_EQ(sample.count(), 8u);
    EXPECT_GT(sample.range(), 0.0) << "layouts must differ";
}

TEST(Aslr, RemedyRecoversTruthFromHostileSetup)
{
    core::ExperimentSpec spec; // perl
    core::ExperimentRunner runner(spec);

    // Hostile setup: single-run estimate far from 1.0.
    core::ExperimentSetup hostile;
    hostile.envBytes = 300;
    const double single = runner.run(hostile).speedup;
    ASSERT_LT(single, 0.96);

    auto base = runner.aslrRandomizedMetric(spec.baseline, hostile, 21,
                                            1000);
    auto treat = runner.aslrRandomizedMetric(spec.treatment, hostile, 21,
                                             5000);
    const double randomized = base.mean() / treat.mean();
    EXPECT_NEAR(randomized, 1.0, 0.02)
        << "per-run randomization should de-bias the estimate";
}

} // namespace
