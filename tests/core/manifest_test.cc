/** @file Tests for the setup manifest. */
#include <gtest/gtest.h>

#include "core/manifest.hh"

namespace
{

using namespace mbias;
using core::ExperimentSetup;
using core::ExperimentSpec;
using core::SetupManifest;

TEST(Manifest, ContainsEveryReproducibilityDetail)
{
    ExperimentSpec spec;
    spec.withWorkload("hmmer").withScale(2);
    spec.workloadConfig.seed = 777;
    ExperimentSetup setup;
    setup.envBytes = 1234;
    setup.linkOrder = toolchain::LinkOrder::shuffled(9);

    const std::string m = SetupManifest::describe(spec, setup);
    for (const char *needle :
         {"hmmer", "scale 2", "777", "gcc-O2", "gcc-O3", "1234",
          "shuffled(9)", "core2like", "gshare", "OoO window"}) {
        EXPECT_NE(m.find(needle), std::string::npos) << needle;
    }
}

TEST(Manifest, HardwareStudyListsBothMachines)
{
    ExperimentSpec spec;
    auto pf = sim::MachineConfig::core2Like();
    pf.name = "core2like+pf";
    pf.enableNextLinePrefetch = true;
    spec.withTreatmentMachine(pf);
    const std::string m =
        SetupManifest::describe(spec, ExperimentSetup{});
    EXPECT_NE(m.find("machine core2like:"), std::string::npos);
    EXPECT_NE(m.find("machine core2like+pf:"), std::string::npos);
    EXPECT_NE(m.find("next-line"), std::string::npos);
}

TEST(Manifest, MachineSectionReflectsConfig)
{
    auto p4 = sim::MachineConfig::p4Like();
    const std::string m = SetupManifest::describeMachine(p4);
    EXPECT_NE(m.find("bimodal"), std::string::npos);
    EXPECT_NE(m.find("mispredict 30c"), std::string::npos);
    EXPECT_NE(m.find("4K alias 40c"), std::string::npos);
}

} // namespace
