/** @file Tests for ExperimentSpec, SetupSpace, SetupRandomizer. */
#include <gtest/gtest.h>

#include <set>

#include "core/experiment.hh"
#include "core/setup.hh"

namespace
{

using namespace mbias;
using namespace mbias::core;

TEST(ExperimentSpec, FluentSettersAndStr)
{
    ExperimentSpec spec;
    spec.withWorkload("bzip")
        .withMachine(sim::MachineConfig::p4Like())
        .withBaseline({toolchain::CompilerVendor::IccLike,
                       toolchain::OptLevel::O1})
        .withTreatment({toolchain::CompilerVendor::IccLike,
                        toolchain::OptLevel::O3})
        .withScale(2);
    EXPECT_EQ(spec.workload, "bzip");
    EXPECT_EQ(spec.machine.name, "p4like");
    EXPECT_EQ(spec.workloadConfig.scale, 2u);
    EXPECT_EQ(spec.str(), "bzip: icc-O1 vs icc-O3 on p4like");
}

TEST(Metric, Names)
{
    EXPECT_EQ(metricName(Metric::Cycles), "cycles");
    EXPECT_EQ(metricName(Metric::Cpi), "cpi");
    EXPECT_EQ(metricName(Metric::Instructions), "instructions");
}

TEST(ExperimentSetup, DefaultIsTheConventionalSetup)
{
    ExperimentSetup s;
    EXPECT_EQ(s.envBytes, 0u);
    EXPECT_EQ(s.linkOrder, toolchain::LinkOrder::asGiven());
    EXPECT_EQ(s.str(), "env=0 link=as-given");
}

TEST(SetupSpace, SampleRespectsEnvRange)
{
    Rng rng(3);
    auto space = SetupSpace().varyEnvSize(100, 200);
    for (int i = 0; i < 200; ++i) {
        auto s = space.sample(rng);
        EXPECT_GE(s.envBytes, 100u);
        EXPECT_LE(s.envBytes, 200u);
        EXPECT_EQ(s.linkOrder, toolchain::LinkOrder::asGiven());
    }
}

TEST(SetupSpace, SampleVariesLinkOnlyWhenAsked)
{
    Rng rng(5);
    auto space = SetupSpace().varyLinkOrder();
    std::set<std::uint64_t> seeds;
    for (int i = 0; i < 20; ++i) {
        auto s = space.sample(rng);
        EXPECT_EQ(s.envBytes, 0u);
        EXPECT_EQ(s.linkOrder.kind(),
                  toolchain::LinkOrder::Kind::Seeded);
        seeds.insert(s.linkOrder.seed());
    }
    EXPECT_GE(seeds.size(), 19u);
}

TEST(SetupSpace, GridSweepsEnvEvenly)
{
    auto grid = SetupSpace().varyEnvSize(0, 4096).grid(5);
    ASSERT_EQ(grid.size(), 5u);
    EXPECT_EQ(grid[0].envBytes, 0u);
    EXPECT_EQ(grid[1].envBytes, 1024u);
    EXPECT_EQ(grid[4].envBytes, 4096u);
}

TEST(SetupSpace, GridWithLinkOrderUsesSeeds)
{
    auto grid = SetupSpace().varyLinkOrder().grid(3);
    ASSERT_EQ(grid.size(), 3u);
    EXPECT_EQ(grid[0].linkOrder, toolchain::LinkOrder::asGiven());
    EXPECT_EQ(grid[1].linkOrder, toolchain::LinkOrder::shuffled(1));
    EXPECT_EQ(grid[2].linkOrder, toolchain::LinkOrder::shuffled(2));
}

TEST(SetupRandomizer, DeterministicFromSeed)
{
    auto space = SetupSpace().varyEnvSize().varyLinkOrder();
    SetupRandomizer a(space, 9), b(space, 9);
    auto sa = a.sample(10), sb = b.sample(10);
    ASSERT_EQ(sa.size(), sb.size());
    for (std::size_t i = 0; i < sa.size(); ++i)
        EXPECT_EQ(sa[i], sb[i]);
}

TEST(SetupRandomizer, SuccessiveDrawsDiffer)
{
    auto space = SetupSpace().varyEnvSize();
    SetupRandomizer r(space, 11);
    auto first = r.sample(5);
    auto second = r.sample(5);
    bool any_diff = false;
    for (std::size_t i = 0; i < 5; ++i)
        any_diff |= !(first[i] == second[i]);
    EXPECT_TRUE(any_diff);
}

} // namespace
