/** @file Tests for the bias toolkit: runner, analyzer, checker, causal. */
#include <gtest/gtest.h>

#include "core/bias.hh"
#include "core/causal.hh"
#include "core/conclusion.hh"
#include "core/table.hh"

namespace
{

using namespace mbias;
using namespace mbias::core;

ExperimentSpec
fastSpec(const std::string &workload = "perl")
{
    ExperimentSpec spec;
    spec.withWorkload(workload);
    return spec;
}

TEST(Runner, SpeedupIsMetricRatio)
{
    ExperimentRunner runner(fastSpec());
    auto o = runner.run(ExperimentSetup{});
    EXPECT_TRUE(o.baseline.halted);
    EXPECT_TRUE(o.treatment.halted);
    EXPECT_DOUBLE_EQ(o.speedup, double(o.baseline.cycles()) /
                                    double(o.treatment.cycles()));
}

TEST(Runner, SameSetupSameOutcome)
{
    ExperimentRunner runner(fastSpec());
    ExperimentSetup s;
    s.envBytes = 300;
    auto a = runner.run(s);
    auto b = runner.run(s);
    EXPECT_EQ(a.baseline.cycles(), b.baseline.cycles());
    EXPECT_EQ(a.treatment.cycles(), b.treatment.cycles());
}

TEST(Runner, IdenticalToolchainsGiveUnitSpeedup)
{
    ExperimentSpec spec = fastSpec();
    spec.treatment = spec.baseline; // no treatment at all
    ExperimentRunner runner(spec);
    for (std::uint64_t env : {0ull, 123ull, 4000ull}) {
        ExperimentSetup s;
        s.envBytes = env;
        EXPECT_DOUBLE_EQ(runner.run(s).speedup, 1.0);
    }
}

TEST(Runner, MetricSelection)
{
    ExperimentSpec spec = fastSpec();
    spec.metric = Metric::Instructions;
    ExperimentRunner runner(spec);
    auto rr = runner.runSide(spec.baseline, ExperimentSetup{});
    EXPECT_DOUBLE_EQ(runner.metricOf(rr), double(rr.instructions()));
    spec.metric = Metric::Cpi;
    ExperimentRunner runner2(spec);
    auto rr2 = runner2.runSide(spec.baseline, ExperimentSetup{});
    EXPECT_DOUBLE_EQ(runner2.metricOf(rr2), rr2.cpi());
}

TEST(Runner, SpAlignOverrideAppliesIntervention)
{
    ExperimentRunner runner(fastSpec());
    runner.setSpAlignOverride(64);
    // Env sizes that differ by less than 64 land on the same sp.
    ExperimentSetup a, b;
    a.envBytes = 1;
    b.envBytes = 31;
    EXPECT_EQ(runner.runSide(fastSpec().baseline, a).cycles(),
              runner.runSide(fastSpec().baseline, b).cycles());
}

TEST(BiasAnalyzer, DetectsEnvBiasOnPerl)
{
    auto setups = SetupSpace().varyEnvSize().grid(24);
    auto report = BiasAnalyzer().analyze(fastSpec(), setups);
    EXPECT_EQ(report.outcomes.size(), 24u);
    EXPECT_GT(report.biasMagnitude, 0.02);
    EXPECT_TRUE(report.biased());
    EXPECT_GT(report.conclusionFlips, 0);
    EXPECT_FALSE(report.str().empty());
}

TEST(BiasAnalyzer, NullTreatmentIsNotBiased)
{
    ExperimentSpec spec = fastSpec();
    spec.treatment = spec.baseline;
    auto setups = SetupSpace().varyEnvSize().grid(10);
    auto report = BiasAnalyzer().analyze(spec, setups);
    EXPECT_DOUBLE_EQ(report.speedups.min(), 1.0);
    EXPECT_DOUBLE_EQ(report.speedups.max(), 1.0);
    EXPECT_EQ(report.conclusionFlips, 0);
    EXPECT_EQ(report.verdict, Verdict::Inconclusive);
}

TEST(BiasAnalyzer, ClearWinnerIsConclusive)
{
    // sphinx: O3 wins by ~20% everywhere, bias is tiny.
    auto setups = SetupSpace().varyEnvSize().grid(8);
    auto report = BiasAnalyzer().analyze(fastSpec("sphinx"), setups);
    EXPECT_EQ(report.verdict, Verdict::TreatmentHelps);
    EXPECT_EQ(report.conclusionFlips, 0);
    EXPECT_FALSE(report.biased());
}

TEST(BiasAnalyzer, MinMaxSetupsRecorded)
{
    auto setups = SetupSpace().varyEnvSize().grid(16);
    auto report = BiasAnalyzer().analyze(fastSpec(), setups);
    double min_sp = 10, max_sp = 0;
    ExperimentSetup min_s, max_s;
    for (const auto &o : report.outcomes) {
        if (o.speedup < min_sp) {
            min_sp = o.speedup;
            min_s = o.setup;
        }
        if (o.speedup > max_sp) {
            max_sp = o.speedup;
            max_s = o.setup;
        }
    }
    EXPECT_EQ(report.minSetup, min_s);
    EXPECT_EQ(report.maxSetup, max_s);
}

TEST(ConclusionChecker, SingleSetupVerdicts)
{
    ConclusionChecker c(0.01);
    EXPECT_EQ(c.singleSetupVerdict(1.05), Verdict::TreatmentHelps);
    EXPECT_EQ(c.singleSetupVerdict(0.95), Verdict::TreatmentHurts);
    EXPECT_EQ(c.singleSetupVerdict(1.005), Verdict::Inconclusive);
}

TEST(ConclusionChecker, WrongDataFlaggedForPerl)
{
    auto setups = SetupSpace().varyEnvSize().grid(32);
    auto report = BiasAnalyzer().analyze(fastSpec(), setups);
    auto check = ConclusionChecker().check(report);
    EXPECT_TRUE(check.wrongDataPossible);
    EXPECT_GT(check.wouldConcludeHelps, 0);
    EXPECT_GT(check.wouldConcludeHurts, 0);
    EXPECT_EQ(check.wouldConcludeHelps + check.wouldConcludeHurts +
                  check.wouldConcludeNeutral,
              int(setups.size()));
    EXPECT_FALSE(check.str().empty());
}

TEST(ConclusionChecker, NoWrongDataWithoutTreatment)
{
    ExperimentSpec spec = fastSpec();
    spec.treatment = spec.baseline;
    auto setups = SetupSpace().varyEnvSize().grid(8);
    auto report = BiasAnalyzer().analyze(spec, setups);
    auto check = ConclusionChecker().check(report);
    EXPECT_FALSE(check.wrongDataPossible);
    EXPECT_EQ(check.contradictionRate, 0.0);
}

TEST(CausalAnalyzer, EnvBiasTracedToLineSplits)
{
    auto setups = SetupSpace().varyEnvSize().grid(24);
    auto report = CausalAnalyzer().analyze(fastSpec(), setups);
    ASSERT_FALSE(report.rankedCauses.empty());
    // Line splits must rank among the top causes.
    bool splits_high = false;
    for (std::size_t i = 0; i < 3 && i < report.rankedCauses.size(); ++i)
        splits_high |= report.rankedCauses[i].counter ==
                       sim::Counter::LineSplits;
    EXPECT_TRUE(splits_high);
    // The stack-alignment intervention must remove most of the spread.
    ASSERT_FALSE(report.interventions.empty());
    EXPECT_EQ(report.interventions[0].name,
              "force 64-byte stack alignment");
    EXPECT_TRUE(report.interventions[0].confirmed());
    EXPECT_FALSE(report.str().empty());
}

TEST(CausalAnalyzer, InterventionsAreDeduplicated)
{
    auto setups = SetupSpace().varyEnvSize().grid(16);
    auto report = CausalAnalyzer().analyze(fastSpec(), setups);
    std::set<std::string> names;
    for (const auto &iv : report.interventions)
        EXPECT_TRUE(names.insert(iv.name).second) << iv.name;
}

TEST(InterventionResult, ReductionMath)
{
    InterventionResult iv;
    iv.spreadBefore = 100.0;
    iv.spreadAfter = 25.0;
    EXPECT_DOUBLE_EQ(iv.reduction(), 0.75);
    EXPECT_TRUE(iv.confirmed());
    iv.spreadAfter = 80.0;
    EXPECT_FALSE(iv.confirmed());
}

TEST(TextTable, RendersAlignedColumns)
{
    TextTable t({"a", "bbbb"});
    t.addRow({"x", "1"});
    t.addRow("y", {2.5}, 1);
    const std::string s = t.str();
    EXPECT_NE(s.find("bbbb"), std::string::npos);
    EXPECT_NE(s.find("2.5"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
    EXPECT_EQ(fmt(1.23456, 2), "1.23");
}

} // namespace
