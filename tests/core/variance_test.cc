/** @file Tests for the variance (false-confidence) analyzer. */
#include <gtest/gtest.h>

#include "core/setup.hh"
#include "core/variance.hh"

namespace
{

using namespace mbias;
using namespace mbias::core;

TEST(VarianceAnalyzer, RepeatedMetricVariesUnderNoise)
{
    ExperimentSpec spec;
    ExperimentRunner runner(spec);
    auto sample = runner.repeatedMetric(spec.baseline, ExperimentSetup{},
                                        6, 42);
    EXPECT_EQ(sample.count(), 6u);
    EXPECT_GT(sample.range(), 0.0) << "noise must move the metric";
    EXPECT_LT(sample.cv(), 0.05) << "noise must stay small";
}

TEST(VarianceAnalyzer, RepeatedMetricDeterministicGivenSeeds)
{
    ExperimentSpec spec;
    ExperimentRunner runner(spec);
    auto a = runner.repeatedMetric(spec.baseline, ExperimentSetup{}, 4, 9);
    auto b = runner.repeatedMetric(spec.baseline, ExperimentSetup{}, 4, 9);
    EXPECT_EQ(a.values(), b.values());
}

TEST(VarianceAnalyzer, PerlShowsFalseConfidenceAtBadHomeSetup)
{
    ExperimentSpec spec; // perl
    ExperimentSetup home;
    home.envBytes = 300; // a known O3-hurts pocket
    auto peers = SetupSpace().varyEnvSize().grid(16);
    auto r = VarianceAnalyzer(8).analyze(spec, home, peers);
    EXPECT_GT(r.varianceRatio, 3.0);
    EXPECT_TRUE(r.falseConfidence);
    EXPECT_FALSE(r.str().empty());
}

TEST(VarianceAnalyzer, RobustWorkloadShowsNoFalseConfidence)
{
    ExperimentSpec spec;
    spec.withWorkload("sphinx"); // large genuine effect, tiny bias
    ExperimentSetup home;
    home.envBytes = 300;
    auto peers = SetupSpace().varyEnvSize().grid(8);
    auto r = VarianceAnalyzer(8).analyze(spec, home, peers);
    // The cross-setup mean sits close to any single setup's estimate.
    EXPECT_NEAR(r.withinSetup.mean(), r.betweenSetups.mean(), 0.02);
}

TEST(VarianceAnalyzer, WithinCiTightensWithRepetitions)
{
    ExperimentSpec spec;
    ExperimentSetup home;
    auto peers = SetupSpace().varyEnvSize().grid(4);
    auto few = VarianceAnalyzer(4).analyze(spec, home, peers);
    auto many = VarianceAnalyzer(24).analyze(spec, home, peers);
    EXPECT_LT(many.withinCI.halfWidth(), few.withinCI.halfWidth());
}

} // namespace
