/** @file Tests for branch predictors, BTB, and the store buffer. */
#include <gtest/gtest.h>

#include "uarch/branch.hh"
#include "uarch/storebuffer.hh"

namespace
{

using namespace mbias;
using uarch::BimodalPredictor;
using uarch::Btb;
using uarch::GsharePredictor;
using uarch::StoreBuffer;

TEST(Bimodal, LearnsStrongBias)
{
    BimodalPredictor p(10);
    const Addr pc = 0x400100;
    for (int i = 0; i < 8; ++i)
        p.update(pc, true);
    EXPECT_TRUE(p.predict(pc));
    for (int i = 0; i < 8; ++i)
        p.update(pc, false);
    EXPECT_FALSE(p.predict(pc));
}

TEST(Bimodal, HysteresisSurvivesOneFlip)
{
    BimodalPredictor p(10);
    const Addr pc = 0x400100;
    for (int i = 0; i < 8; ++i)
        p.update(pc, true);
    p.update(pc, false); // a single not-taken shouldn't flip it
    EXPECT_TRUE(p.predict(pc));
}

TEST(Bimodal, AliasingBranchesInterfere)
{
    BimodalPredictor p(4); // 16 counters: easy to alias
    // Find two pcs with the same index by brute force.
    // index(pc) = (pc ^ (pc >> 4)) & 15; pc and pc+16*17 may collide;
    // easier: train a dense set and observe interference exists.
    const Addr a = 0x0, b = 0x1000;
    for (int i = 0; i < 8; ++i)
        p.update(a, true);
    const bool before = p.predict(a);
    for (int i = 0; i < 8; ++i)
        p.update(b, false);
    // a and b may or may not alias; at least the predictor is still
    // deterministic and in-range.
    EXPECT_TRUE(before);
    (void)p.predict(a);
}

TEST(Gshare, LearnsAlternatingPattern)
{
    GsharePredictor p(12, 8);
    const Addr pc = 0x400200;
    bool taken = false;
    // Train on strict alternation.
    for (int i = 0; i < 200; ++i) {
        p.update(pc, taken);
        taken = !taken;
    }
    // Now the history disambiguates: predictions should track the
    // alternation with high accuracy.
    int correct = 0;
    for (int i = 0; i < 100; ++i) {
        if (p.predict(pc) == taken)
            ++correct;
        p.update(pc, taken);
        taken = !taken;
    }
    EXPECT_GE(correct, 95);
}

TEST(Gshare, ResetForgets)
{
    GsharePredictor p(10, 6);
    const Addr pc = 0x100;
    for (int i = 0; i < 20; ++i)
        p.update(pc, false);
    p.reset();
    EXPECT_TRUE(p.predict(pc)); // back to weakly-taken init
}

TEST(Gshare, AddressSensitivity)
{
    // The same branch history at two different addresses must use
    // different table entries for at least some address pairs — the
    // aliasing structure the link-order bias rides on.
    GsharePredictor p(8, 4);
    const Addr a = 0x400000, b = 0x400004;
    for (int i = 0; i < 8; ++i)
        p.update(a, true);
    // b's entry is independent unless indices collide.
    // Train b not-taken; a must stay taken (distinct entries here).
    GsharePredictor q(8, 4);
    for (int i = 0; i < 8; ++i)
        q.update(a, true);
    for (int i = 0; i < 8; ++i)
        q.update(b, false);
    (void)q.predict(a);
    SUCCEED(); // behavioural determinism exercised above
}

// ------------------------------------------------------------------ BTB

TEST(Btb, MissThenHit)
{
    Btb btb(16, 2);
    EXPECT_FALSE(btb.lookupAndUpdate(0x100, 0x200));
    EXPECT_TRUE(btb.lookupAndUpdate(0x100, 0x200));
    EXPECT_EQ(btb.hits(), 1u);
    EXPECT_EQ(btb.misses(), 1u);
}

TEST(Btb, TargetChangeCountsAsMiss)
{
    Btb btb(16, 2);
    btb.lookupAndUpdate(0x100, 0x200);
    EXPECT_FALSE(btb.lookupAndUpdate(0x100, 0x300)); // retargeted
    EXPECT_TRUE(btb.lookupAndUpdate(0x100, 0x300));
}

TEST(Btb, CapacityEviction)
{
    Btb btb(1, 2); // 2 entries total
    btb.lookupAndUpdate(0x1, 0xa);
    btb.lookupAndUpdate(0x2, 0xb);
    btb.lookupAndUpdate(0x3, 0xc); // evicts 0x1
    EXPECT_TRUE(btb.lookupAndUpdate(0x2, 0xb));
    EXPECT_TRUE(btb.lookupAndUpdate(0x3, 0xc));
    EXPECT_FALSE(btb.lookupAndUpdate(0x1, 0xa));
}

TEST(Btb, ResetClears)
{
    Btb btb(4, 2);
    btb.lookupAndUpdate(0x10, 0x20);
    btb.reset();
    EXPECT_FALSE(btb.lookupAndUpdate(0x10, 0x20));
    EXPECT_EQ(btb.hits(), 0u);
}

// --------------------------------------------------------- StoreBuffer

TEST(StoreBuffer, ExactForwardingIsFree)
{
    StoreBuffer sb(8, 12, 40);
    sb.recordStore(0x1000, 8, 1);
    EXPECT_FALSE(sb.loadAliases(0x1000, 8, 2));
}

TEST(StoreBuffer, FalseAliasDetected)
{
    StoreBuffer sb(8, 12, 40);
    sb.recordStore(0x1000, 8, 1);
    // Same low 12 bits, different page.
    EXPECT_TRUE(sb.loadAliases(0x5000, 8, 2));
}

TEST(StoreBuffer, DifferentLowBitsNoAlias)
{
    StoreBuffer sb(8, 12, 40);
    sb.recordStore(0x1000, 8, 1);
    EXPECT_FALSE(sb.loadAliases(0x1040, 8, 2));
}

TEST(StoreBuffer, PartialOverlapStalls)
{
    StoreBuffer sb(8, 12, 40);
    sb.recordStore(0x1000, 4, 1);
    // Load covers more bytes than the store wrote: not forwardable.
    EXPECT_TRUE(sb.loadAliases(0x1000, 8, 2));
}

TEST(StoreBuffer, EntriesExpireByAge)
{
    StoreBuffer sb(8, 12, 10);
    sb.recordStore(0x1000, 8, 100);
    EXPECT_TRUE(sb.loadAliases(0x5000, 8, 105));
    EXPECT_FALSE(sb.loadAliases(0x5000, 8, 200)); // retired long ago
}

TEST(StoreBuffer, RingOverwritesOldest)
{
    StoreBuffer sb(2, 12, 1000);
    sb.recordStore(0x1000, 8, 1);
    sb.recordStore(0x2008, 8, 2);
    sb.recordStore(0x3010, 8, 3); // displaces the 0x1000 store
    EXPECT_FALSE(sb.loadAliases(0x5000, 8, 4));
    EXPECT_TRUE(sb.loadAliases(0x5010, 8, 4));
}

TEST(StoreBuffer, ResetDrains)
{
    StoreBuffer sb(4, 12, 100);
    sb.recordStore(0x1000, 8, 1);
    sb.reset();
    EXPECT_FALSE(sb.loadAliases(0x5000, 8, 2));
}

} // namespace
