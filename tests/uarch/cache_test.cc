/** @file Tests for the cache and TLB models. */
#include <gtest/gtest.h>

#include "uarch/cache.hh"
#include "uarch/tlb.hh"

namespace
{

using namespace mbias;
using uarch::Cache;
using uarch::CacheConfig;
using uarch::Tlb;
using uarch::TlbConfig;

CacheConfig
tinyCache()
{
    return {4, 2, 64, 1, 10}; // 4 sets, 2 ways, 64B lines = 512B
}

TEST(Cache, CapacityBytes)
{
    EXPECT_EQ(tinyCache().capacityBytes(), 512u);
    CacheConfig l1{64, 8, 64, 3, 12};
    EXPECT_EQ(l1.capacityBytes(), 32u * 1024);
}

TEST(Cache, ColdMissThenHit)
{
    Cache c(tinyCache());
    EXPECT_EQ(c.access(0x1000, 8).misses, 1u);
    EXPECT_EQ(c.access(0x1000, 8).misses, 0u);
    EXPECT_EQ(c.access(0x1038, 8).misses, 0u); // same line
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, LineSplitCountsTwoLines)
{
    Cache c(tinyCache());
    auto r = c.access(0x103c, 8); // crosses 0x1040
    EXPECT_TRUE(r.split);
    EXPECT_EQ(r.misses, 2u);
    EXPECT_EQ(c.splits(), 1u);
    // Both lines now resident.
    EXPECT_EQ(c.access(0x1000, 8).misses, 0u);
    EXPECT_EQ(c.access(0x1040, 8).misses, 0u);
}

TEST(Cache, AlignedAccessNeverSplits)
{
    Cache c(tinyCache());
    for (Addr a = 0; a < 4096; a += 8)
        EXPECT_FALSE(c.access(a, 8).split);
}

TEST(Cache, ConflictEviction)
{
    Cache c(tinyCache()); // set = (addr >> 6) & 3
    // Three lines mapping to set 0: 0x000, 0x100, 0x200.
    c.access(0x000, 1);
    c.access(0x100, 1);
    c.access(0x200, 1); // evicts 0x000 (LRU)
    EXPECT_EQ(c.access(0x100, 1).misses, 0u);
    EXPECT_EQ(c.access(0x200, 1).misses, 0u);
    EXPECT_EQ(c.access(0x000, 1).misses, 1u); // was evicted
}

TEST(Cache, LruOrderUpdatedByHit)
{
    Cache c(tinyCache());
    c.access(0x000, 1);
    c.access(0x100, 1);
    c.access(0x000, 1); // refresh 0x000 to MRU
    c.access(0x200, 1); // should evict 0x100 now
    EXPECT_EQ(c.access(0x000, 1).misses, 0u);
    EXPECT_EQ(c.access(0x100, 1).misses, 1u);
}

TEST(Cache, DifferentSetsDoNotConflict)
{
    Cache c(tinyCache());
    for (Addr a = 0; a < 4 * 64; a += 64)
        c.access(a, 1);
    for (Addr a = 0; a < 4 * 64; a += 64)
        EXPECT_EQ(c.access(a, 1).misses, 0u);
}

TEST(Cache, ResetClearsContents)
{
    Cache c(tinyCache());
    c.access(0x40, 4);
    c.reset();
    EXPECT_EQ(c.hits(), 0u);
    EXPECT_EQ(c.access(0x40, 4).misses, 1u);
}

TEST(Cache, AccessLineMatchesAccess)
{
    Cache c(tinyCache());
    EXPECT_FALSE(c.accessLine(0x1000));
    EXPECT_TRUE(c.accessLine(0x1004)); // same line
}

/** Property sweep: working sets within capacity never conflict-miss. */
class CacheFitsProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(CacheFitsProperty, NoMissesOnSecondPass)
{
    const unsigned ways = GetParam();
    Cache c({8, ways, 64, 1, 10});
    const std::uint64_t lines = 8 * ways;
    for (std::uint64_t i = 0; i < lines; ++i)
        c.access(i * 64, 1);
    const auto misses_before = c.misses();
    for (std::uint64_t i = 0; i < lines; ++i)
        c.access(i * 64, 1);
    EXPECT_EQ(c.misses(), misses_before);
}

INSTANTIATE_TEST_SUITE_P(Ways, CacheFitsProperty,
                         ::testing::Values(1, 2, 4, 8));

// ------------------------------------------------------------------ TLB

TEST(Tlb, MissThenHitWithinPage)
{
    Tlb t({4, 4096, 30});
    EXPECT_EQ(t.access(0x5000, 8), 1u);
    EXPECT_EQ(t.access(0x5ff0, 8), 0u);
    EXPECT_EQ(t.hits(), 1u);
    EXPECT_EQ(t.misses(), 1u);
}

TEST(Tlb, PageCrossingAccessTouchesTwoPages)
{
    Tlb t({4, 4096, 30});
    EXPECT_EQ(t.access(0x5ffc, 8), 2u);
    EXPECT_EQ(t.access(0x5000, 1), 0u);
    EXPECT_EQ(t.access(0x6000, 1), 0u);
}

TEST(Tlb, LruReplacement)
{
    Tlb t({2, 4096, 30});
    t.access(0x1000, 1);
    t.access(0x2000, 1);
    t.access(0x1000, 1); // refresh
    t.access(0x3000, 1); // evicts 0x2000
    EXPECT_EQ(t.access(0x1000, 1), 0u);
    EXPECT_EQ(t.access(0x2000, 1), 1u);
}

TEST(Tlb, ResetClears)
{
    Tlb t({4, 4096, 30});
    t.access(0x1000, 1);
    t.reset();
    EXPECT_EQ(t.access(0x1000, 1), 1u);
}

/** Property: a working set of <= entries pages always hits after warmup. */
class TlbReachProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(TlbReachProperty, FitsWithinReach)
{
    const unsigned entries = GetParam();
    Tlb t({entries, 4096, 30});
    for (unsigned p = 0; p < entries; ++p)
        t.access(Addr(p) * 4096, 1);
    for (unsigned p = 0; p < entries; ++p)
        EXPECT_EQ(t.access(Addr(p) * 4096, 1), 0u);
}

INSTANTIATE_TEST_SUITE_P(Entries, TlbReachProperty,
                         ::testing::Values(1, 2, 8, 64));

} // namespace
