#!/bin/sh
# Golden-output differential check for one figure/table binary.
#
# Usage: run_diff.sh <binary> <golden-dir> [--golden-id ID]
#        [extra args...]
#
# Runs the binary (forwarding any extra args, e.g. --jobs 8), strips
# the volatile accounting lines ([campaign: ...] wall-clock and
# [metrics] latency histograms — everything else is deterministic),
# and byte-compares against the pinned seed transcript.  The golden id
# is the binary name's first underscore-delimited token (fig2, table1,
# ablation), after dropping the legacy_ prefix the reference builds of
# the pre-pipeline drivers carry; --golden-id overrides it for
# multi-figure entry points (`run_diff.sh mbias ... --golden-id fig2
# fig 2`).
set -e

bin="$1"
dir="$2"
shift 2

base="$(basename "$bin")"
base="${base#legacy_}"
id="${base%%_*}"
if [ "${1:-}" = "--golden-id" ]; then
    id="$2"
    shift 2
fi
golden="$dir/$id.txt"
if [ ! -f "$golden" ]; then
    echo "missing golden transcript: $golden" >&2
    exit 1
fi

tmp_out="$(mktemp)"
tmp_ref="$(mktemp)"
trap 'rm -f "$tmp_out" "$tmp_ref"' EXIT

"$bin" "$@" | sed -e '/^\[campaign:/d' -e '/^\[metrics\]/d' > "$tmp_out"
sed -e '/^\[campaign:/d' -e '/^\[metrics\]/d' "$golden" > "$tmp_ref"

if ! diff -u "$tmp_ref" "$tmp_out"; then
    echo "FAIL: $base $* diverges from $golden" >&2
    exit 1
fi
echo "OK: $base $* matches $golden"
