/**
 * @file
 * Span tracer tests: spans only record while a session is active, the
 * exported document is well-formed Chrome-trace JSON, and nested
 * ScopedSpans produce properly contained slices (child interval inside
 * the parent interval on the same tid) so Perfetto renders them
 * nested.  Compiled only when MBIAS_OBS=ON.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.hh"

namespace
{

using namespace mbias;

/** Counts non-overlapping occurrences of @p needle in @p hay. */
std::size_t
countOf(const std::string &hay, const std::string &needle)
{
    std::size_t n = 0;
    for (std::size_t pos = hay.find(needle); pos != std::string::npos;
         pos = hay.find(needle, pos + needle.size()))
        ++n;
    return n;
}

TEST(ObsTrace, RecordsOnlyWhileActive)
{
    auto &tracer = obs::Tracer::global();
    tracer.stop();
    {
        obs::ScopedSpan dropped("dropped", "test");
    }
    tracer.start();
    EXPECT_EQ(tracer.eventCount(), 0u) << "start() must clear buffer";
    {
        obs::ScopedSpan kept("kept", "test");
    }
    tracer.stop();
    {
        obs::ScopedSpan late("late", "test");
    }
    EXPECT_EQ(tracer.eventCount(), 1u);
    const auto json = tracer.chromeJson();
    EXPECT_NE(json.find("\"kept\""), std::string::npos) << json;
    EXPECT_EQ(json.find("\"dropped\""), std::string::npos) << json;
    EXPECT_EQ(json.find("\"late\""), std::string::npos) << json;
}

TEST(ObsTrace, ChromeJsonShape)
{
    auto &tracer = obs::Tracer::global();
    tracer.start();
    {
        obs::ScopedSpan span("phase", "cat", "{\"task\":3}");
    }
    tracer.stop();
    const auto json = tracer.chromeJson();

    // The two required top-level fields of the Chrome trace format.
    EXPECT_EQ(json.find("{\"displayTimeUnit\""), 0u) << json;
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos) << json;
    // Each event is a complete ("ph":"X") slice with the standard keys.
    for (const char *key :
         {"\"name\":\"phase\"", "\"cat\":\"cat\"", "\"ph\":\"X\"",
          "\"pid\":1", "\"tid\":", "\"ts\":", "\"dur\":",
          "\"args\":{\"task\":3}"})
        EXPECT_NE(json.find(key), std::string::npos)
            << "missing " << key << " in " << json;
    // Balanced braces/brackets — cheap well-formedness check without a
    // JSON parser (CI additionally validates with python json.load).
    EXPECT_EQ(countOf(json, "{"), countOf(json, "}"));
    EXPECT_EQ(countOf(json, "["), countOf(json, "]"));
}

TEST(ObsTrace, NestedSpansAreContained)
{
    auto &tracer = obs::Tracer::global();
    tracer.start();
    {
        obs::ScopedSpan outer("outer", "test");
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        {
            obs::ScopedSpan inner("inner", "test");
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    tracer.stop();
    ASSERT_EQ(tracer.eventCount(), 2u);
    const auto json = tracer.chromeJson();

    // Destruction order emits inner first; pull both intervals out.
    auto field = [&](const char *name, std::size_t from) {
        const auto pos = json.find(name, from);
        EXPECT_NE(pos, std::string::npos) << name;
        return std::stoull(json.substr(pos + std::strlen(name)));
    };
    const auto innerPos = json.find("\"inner\"");
    const auto outerPos = json.find("\"outer\"");
    ASSERT_NE(innerPos, std::string::npos);
    ASSERT_NE(outerPos, std::string::npos);
    const auto innerTs = field("\"ts\":", innerPos);
    const auto innerDur = field("\"dur\":", innerPos);
    const auto outerTs = field("\"ts\":", outerPos);
    const auto outerDur = field("\"dur\":", outerPos);
    EXPECT_GE(innerTs, outerTs);
    EXPECT_LE(innerTs + innerDur, outerTs + outerDur)
        << "inner slice must end within the outer slice";
    EXPECT_GE(innerDur, 1000u) << "2ms sleep inside the inner span";
    EXPECT_GE(outerDur, innerDur + 2000u);
}

TEST(ObsTrace, ConcurrentSpansAllRecorded)
{
    auto &tracer = obs::Tracer::global();
    tracer.start();
    constexpr unsigned kThreads = 8;
    constexpr unsigned kSpansPerThread = 50;
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < kThreads; ++t)
        workers.emplace_back([t] {
            obs::setThreadShard(t + 1);
            for (unsigned i = 0; i < kSpansPerThread; ++i) {
                obs::ScopedSpan span("worker-span", "test");
            }
        });
    for (auto &w : workers)
        w.join();
    tracer.stop();

    EXPECT_EQ(tracer.eventCount(), kThreads * kSpansPerThread);
    const auto json = tracer.chromeJson();
    EXPECT_EQ(countOf(json, "\"worker-span\""), kThreads * kSpansPerThread);
    // Every worker's tid must appear: no thread's spans were lost or
    // misattributed under contention.
    for (unsigned t = 0; t < kThreads; ++t) {
        const std::string tid = "\"tid\":" + std::to_string(t + 1) + ",";
        EXPECT_GE(countOf(json, tid), kSpansPerThread) << tid;
    }
    // The interleaved writes still produce a well-formed document.
    EXPECT_EQ(countOf(json, "{"), countOf(json, "}"));
    EXPECT_EQ(countOf(json, "["), countOf(json, "]"));
}

TEST(ObsTrace, SummarizeCleanFile)
{
    auto &tracer = obs::Tracer::global();
    tracer.start();
    for (int i = 0; i < 3; ++i) {
        obs::ScopedSpan span("clean", "test");
    }
    tracer.stop();
    const std::string path =
        testing::TempDir() + "/mbias_trace_clean.json";
    ASSERT_TRUE(tracer.writeTo(path));

    const auto s = obs::summarizeTraceFile(path);
    EXPECT_TRUE(s.ok);
    EXPECT_EQ(s.events, 3u);
    EXPECT_EQ(s.bytes, std::filesystem::file_size(path));
    EXPECT_FALSE(s.truncated);
    EXPECT_EQ(s.tornBytes, 0u);
    std::filesystem::remove(path);
}

TEST(ObsTrace, SummarizeTornTailCountsAndReportsOffset)
{
    auto &tracer = obs::Tracer::global();
    tracer.start();
    for (int i = 0; i < 3; ++i) {
        obs::ScopedSpan span("torn", "test");
    }
    tracer.stop();
    const std::string path =
        testing::TempDir() + "/mbias_trace_torn.json";
    ASSERT_TRUE(tracer.writeTo(path));

    // Simulate a process killed mid-write: the document ends
    // "}\n]}\n", so dropping the last 5 bytes tears the final event
    // object open and loses the closing bracket.
    const auto full = std::filesystem::file_size(path);
    ASSERT_GT(full, 5u);
    std::filesystem::resize_file(path, full - 5);

    const auto s = obs::summarizeTraceFile(path);
    EXPECT_TRUE(s.ok) << "header and array are intact";
    EXPECT_TRUE(s.truncated);
    EXPECT_EQ(s.events, 2u) << "the torn third event must not count";
    EXPECT_EQ(s.bytes, full - 5);
    EXPECT_GT(s.tornOffset, 0u);
    EXPECT_EQ(s.tornOffset + s.tornBytes, s.bytes)
        << "offset + torn tail must cover the file exactly";
    std::filesystem::remove(path);
}

TEST(ObsTrace, SummarizeTornHeader)
{
    const std::string path =
        testing::TempDir() + "/mbias_trace_header.json";
    {
        std::ofstream out(path, std::ios::trunc);
        out << "{\"displayTimeUnit\":\"ms\",\"traceEv";
    }
    const auto s = obs::summarizeTraceFile(path);
    EXPECT_FALSE(s.ok);
    EXPECT_TRUE(s.truncated);
    EXPECT_EQ(s.events, 0u);
    EXPECT_EQ(s.tornBytes, s.bytes) << "the whole file is the torn tail";
    std::filesystem::remove(path);
}

TEST(ObsTrace, SummarizeMissingFile)
{
    const auto s =
        obs::summarizeTraceFile("/nonexistent-dir/x/y/trace.json");
    EXPECT_FALSE(s.ok);
    EXPECT_EQ(s.events, 0u);
    EXPECT_EQ(s.bytes, 0u);
    EXPECT_FALSE(s.truncated);
}

TEST(ObsTrace, WriteToRoundTrips)
{
    auto &tracer = obs::Tracer::global();
    tracer.start();
    {
        obs::ScopedSpan span("io", "test");
    }
    tracer.stop();
    const std::string path = testing::TempDir() + "/mbias_trace_test.json";
    ASSERT_TRUE(tracer.writeTo(path));
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), tracer.chromeJson());
    EXPECT_FALSE(tracer.writeTo("/nonexistent-dir/x/y/trace.json"));
    std::filesystem::remove(path);
}

} // namespace
