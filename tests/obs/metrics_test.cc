/**
 * @file
 * Metrics registry unit tests: log2 histogram bucket boundaries,
 * per-shard merge correctness, quantile estimates, and snapshot
 * merging.  Compiled only when MBIAS_OBS=ON (see tests/CMakeLists.txt);
 * the no-op stubs are covered by the -DMBIAS_OBS=OFF CI build instead.
 */
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/metrics.hh"

namespace
{

using namespace mbias;

TEST(ObsHistogram, BucketBoundaries)
{
    // Bucket 0 holds exactly {0}; bucket b >= 1 holds [2^(b-1), 2^b - 1].
    obs::Registry reg;
    auto &h = reg.histogram("h");
    const std::vector<std::pair<std::uint64_t, unsigned>> cases = {
        {0, 0}, {1, 1}, {2, 2},  {3, 2},  {4, 3},    {7, 3},
        {8, 4}, {9, 4}, {15, 4}, {16, 5}, {1023, 10}, {1024, 11},
    };
    for (const auto &[value, bucket] : cases)
        h.record(value);
    const auto snap = reg.snapshot();
    const auto &stats = snap.histograms.at("h");
    for (const auto &[value, bucket] : cases)
        EXPECT_GE(stats.buckets[bucket], 1u)
            << "value " << value << " should land in bucket " << bucket;
    EXPECT_EQ(stats.count, cases.size());
    std::uint64_t sum = 0;
    for (const auto &[value, bucket] : cases)
        sum += value;
    EXPECT_EQ(stats.sum, sum);
}

TEST(ObsHistogram, BucketBoundsAreConsistent)
{
    // Every bucket's [lower, upper] range must be non-empty, adjacent
    // to its neighbours, and contain the values bucketed into it.
    EXPECT_EQ(obs::HistogramStats::bucketLower(0), 0u);
    EXPECT_EQ(obs::HistogramStats::bucketUpper(0), 0u);
    for (unsigned b = 1; b < obs::kHistogramBuckets; ++b) {
        EXPECT_EQ(obs::HistogramStats::bucketLower(b),
                  obs::HistogramStats::bucketUpper(b - 1) + 1);
        EXPECT_LE(obs::HistogramStats::bucketLower(b),
                  obs::HistogramStats::bucketUpper(b));
    }
}

TEST(ObsHistogram, QuantileIsConservativeUpperBound)
{
    obs::Registry reg;
    auto &h = reg.histogram("q");
    for (int i = 0; i < 99; ++i)
        h.record(10); // bucket 4: [8, 15]
    h.record(1000);   // bucket 10: [512, 1023]
    const auto stats = reg.snapshot().histograms.at("q");
    // p50 falls inside the bucket holding 10s; the estimate is that
    // bucket's upper bound.
    EXPECT_EQ(stats.quantile(0.50), 15u);
    // p995+ reaches the outlier's bucket.
    EXPECT_EQ(stats.quantile(0.999), 1023u);
    EXPECT_DOUBLE_EQ(stats.mean(), (99 * 10 + 1000) / 100.0);
}

TEST(ObsHistogram, PercentileInterpolatesWithinBucket)
{
    obs::Registry reg;
    auto &h = reg.histogram("p");
    for (const std::uint64_t v : {8, 10, 12, 14})
        h.record(v); // all in bucket 4: [8, 15]
    const auto stats = reg.snapshot().histograms.at("p");
    // rank = q * count observations into the bucket, spread linearly
    // across [8, 15]: p50 sits halfway, p100 at the upper bound.
    EXPECT_DOUBLE_EQ(stats.percentile(0.50), 8.0 + 0.50 * 7.0);
    EXPECT_DOUBLE_EQ(stats.percentile(0.90), 8.0 + 0.90 * 7.0);
    EXPECT_DOUBLE_EQ(stats.percentile(1.00), 15.0);
}

TEST(ObsHistogram, PercentileIsLessPessimisticThanQuantile)
{
    // Same distribution as QuantileIsConservativeUpperBound: the
    // interpolated percentile lands inside the bucket instead of
    // snapping to its upper bound.
    obs::Registry reg;
    auto &h = reg.histogram("p");
    for (int i = 0; i < 99; ++i)
        h.record(10); // bucket 4: [8, 15]
    h.record(1000);   // bucket 10: [512, 1023]
    const auto stats = reg.snapshot().histograms.at("p");
    EXPECT_DOUBLE_EQ(stats.percentile(0.50), 8.0 + (50.0 / 99.0) * 7.0);
    EXPECT_LT(stats.percentile(0.50), double(stats.quantile(0.50)));
    EXPECT_NEAR(stats.percentile(0.999),
                512.0 + 0.9 * (1023.0 - 512.0), 1e-6);
}

TEST(ObsHistogram, PercentileEdgeCases)
{
    // Empty histogram reports 0; the last (open-ended) bucket reports
    // its lower bound since interpolating to 2^63 - 1 is meaningless.
    const obs::HistogramStats empty;
    EXPECT_DOUBLE_EQ(empty.percentile(0.5), 0.0);

    obs::Registry reg;
    auto &h = reg.histogram("top");
    h.record(~std::uint64_t(0));
    const auto stats = reg.snapshot().histograms.at("top");
    EXPECT_DOUBLE_EQ(
        stats.percentile(0.5),
        double(obs::HistogramStats::bucketLower(obs::kHistogramBuckets -
                                                1)));
}

TEST(ObsSnapshot, SummaryTablePinsPercentileColumns)
{
    // Pins the obs-summary rendering: the histogram table shows
    // count / mean / p50 / p90 / p99 (interpolated percentiles, not
    // raw log2 buckets), column-aligned with the counter table.
    obs::Registry reg;
    reg.counter("tasks.done").add(5);
    auto &h = reg.histogram("task.execute_us");
    for (const std::uint64_t v : {8, 10, 12, 14})
        h.record(v); // bucket 4: mean 11.0, p50 11.5, p90 14.3, p99 14.9
    const auto text = reg.snapshot().str();

    const std::string expected =
        "counters:\n"
        "  tasks.done" + std::string(30, ' ') + "5\n" +
        "histograms:" + std::string(25, ' ') + "count" +
        std::string(9, ' ') + "mean" + std::string(8, ' ') + "p50" +
        std::string(8, ' ') + "p90" + std::string(8, ' ') + "p99\n" +
        "  task.execute_us" + std::string(23, ' ') + "4" +
        std::string(9, ' ') + "11.0" + std::string(7, ' ') + "11.5" +
        std::string(7, ' ') + "14.3" + std::string(7, ' ') + "14.9\n";
    EXPECT_EQ(text, expected);
}

TEST(ObsCounter, ShardsMergeAtSnapshot)
{
    // Writers on distinct shards must not lose increments; the
    // snapshot is the sum over all shards.
    obs::Registry reg;
    auto &c = reg.counter("c");
    constexpr unsigned threads = 8;
    constexpr std::uint64_t per_thread = 10'000;
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < threads; ++t) {
        pool.emplace_back([&c, t] {
            obs::setThreadShard(t);
            for (std::uint64_t i = 0; i < per_thread; ++i)
                c.add();
        });
    }
    for (auto &th : pool)
        th.join();
    EXPECT_EQ(c.value(), threads * per_thread);
    EXPECT_EQ(reg.snapshot().counters.at("c"), threads * per_thread);
}

TEST(ObsHistogram, ShardsMergeAtSnapshot)
{
    obs::Registry reg;
    auto &h = reg.histogram("h");
    constexpr unsigned threads = 4;
    constexpr std::uint64_t per_thread = 1'000;
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < threads; ++t) {
        pool.emplace_back([&h, t] {
            obs::setThreadShard(t);
            for (std::uint64_t i = 0; i < per_thread; ++i)
                h.record(100); // bucket 7: [64, 127]
        });
    }
    for (auto &th : pool)
        th.join();
    const auto stats = reg.snapshot().histograms.at("h");
    EXPECT_EQ(stats.count, threads * per_thread);
    EXPECT_EQ(stats.sum, threads * per_thread * 100);
    EXPECT_EQ(stats.buckets[7], threads * per_thread);
}

TEST(ObsSnapshot, MergeAddsCountersAndBuckets)
{
    obs::Registry a, b;
    a.counter("shared").add(3);
    b.counter("shared").add(4);
    b.counter("only_b").add(1);
    a.gauge("g").set(7);
    a.histogram("h").record(2);
    b.histogram("h").record(5);

    auto snap = a.snapshot();
    snap.merge(b.snapshot());
    EXPECT_EQ(snap.counters.at("shared"), 7u);
    EXPECT_EQ(snap.counters.at("only_b"), 1u);
    EXPECT_EQ(snap.gauges.at("g"), 7);
    EXPECT_EQ(snap.histograms.at("h").count, 2u);
    EXPECT_EQ(snap.histograms.at("h").sum, 7u);
}

TEST(ObsSnapshot, JsonAndStrMentionEveryMetric)
{
    obs::Registry reg;
    reg.counter("tasks.done").add(5);
    reg.gauge("jobs").set(8);
    reg.histogram("wait_us").record(42);
    const auto snap = reg.snapshot();
    const auto json = snap.toJson();
    EXPECT_NE(json.find("\"tasks.done\":5"), std::string::npos) << json;
    EXPECT_NE(json.find("\"jobs\":8"), std::string::npos) << json;
    EXPECT_NE(json.find("wait_us"), std::string::npos) << json;
    const auto text = snap.str();
    EXPECT_NE(text.find("tasks.done"), std::string::npos) << text;
    EXPECT_NE(text.find("wait_us"), std::string::npos) << text;
}

TEST(ObsRegistry, SameNameReturnsSameMetric)
{
    obs::Registry reg;
    auto &c1 = reg.counter("x");
    auto &c2 = reg.counter("x");
    EXPECT_EQ(&c1, &c2);
    c1.add(2);
    c2.add(3);
    EXPECT_EQ(reg.snapshot().counters.at("x"), 5u);
}

} // namespace
