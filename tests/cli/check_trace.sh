#!/bin/sh
# Smoke-checks the global --trace flag for one subcommand.
#
# Usage: check_trace.sh <mbias> <trace-out> <expected-span> [args...]
#
# Runs `mbias [args...] --trace <trace-out>` and asserts the session
# file was written, holds valid (untorn) Chrome-trace JSON, and
# contains the expected span name — proving the subcommand runs inside
# the process-wide trace session rather than silently ignoring the
# flag.  Pass "-" as the span to only require a well-formed file (for
# subcommands whose work records no spans yet).
set -e

bin="$1"
out="$2"
span="$3"
shift 3

rm -f "$out"
"$bin" "$@" --trace "$out" > /dev/null
if [ ! -s "$out" ]; then
    echo "FAIL: --trace did not write $out" >&2
    exit 1
fi
# The writer finished, so the document must end with the closing "]}".
if ! tail -c 8 "$out" | grep -q ']}'; then
    echo "FAIL: $out is torn (no closing brackets)" >&2
    exit 1
fi
if [ "$span" != "-" ] && ! grep -q "\"name\":\"$span\"" "$out"; then
    echo "FAIL: $out lacks span '$span'" >&2
    exit 1
fi
echo "OK: $out contains span '$span'"
