#!/bin/sh
# Smoke-checks the global --quiet flag for one subcommand.
#
# Usage: check_quiet.sh <cmd...>
#
# Runs the command with --quiet appended and asserts no inform()
# chatter (e.g. the "trace written to ..." note) reached stderr.
set -e

errfile="$(mktemp)"
trap 'rm -f "$errfile"' EXIT

"$@" --quiet > /dev/null 2> "$errfile"
if grep -Eq "inform:|trace written" "$errfile"; then
    echo "FAIL: --quiet left chatter on stderr:" >&2
    cat "$errfile" >&2
    exit 1
fi
echo "OK: --quiet run was silent"
