#!/bin/sh
# Smoke-checks the global --verbose flag for one subcommand.
#
# Usage: check_verbose.sh <substr>[,<substr>...] <cmd...>
#
# Runs the command with --verbose appended and asserts every listed
# substring appears on stdout (e.g. "metrics:" plus the lang-layer
# counters the command should have recorded).
set -e

subs="$1"
shift

out="$("$@" --verbose)"
IFS=','
for s in $subs; do
    if ! printf '%s\n' "$out" | grep -q "$s"; then
        echo "FAIL: --verbose output lacks '$s'" >&2
        printf '%s\n' "$out" >&2
        exit 1
    fi
done
echo "OK: --verbose output mentions $subs"
