/** @file Tests for the literature-survey dataset and analyzer. */
#include <gtest/gtest.h>

#include <set>

#include "survey/analyzer.hh"
#include "survey/database.hh"

namespace
{

using namespace mbias::survey;

TEST(Database, Exactly133Papers)
{
    EXPECT_EQ(SurveyDatabase::bundled().size(), 133u);
}

TEST(Database, FourVenuesAllPresent)
{
    const auto &db = SurveyDatabase::bundled();
    for (Venue v : allVenues())
        EXPECT_GT(db.byVenue(v).size(), 20u) << venueName(v);
    EXPECT_EQ(db.byVenue(Venue::ASPLOS).size() +
                  db.byVenue(Venue::PACT).size() +
                  db.byVenue(Venue::PLDI).size() +
                  db.byVenue(Venue::CGO).size(),
              db.size());
}

TEST(Database, IdsUnique)
{
    std::set<std::uint32_t> ids;
    for (const auto &p : SurveyDatabase::bundled().papers())
        EXPECT_TRUE(ids.insert(p.id).second);
}

TEST(Database, PublishedConstraintsHold)
{
    // The paper's hard aggregates: nobody reports env size or link
    // order, nobody addresses measurement bias.
    for (const auto &p : SurveyDatabase::bundled().papers()) {
        EXPECT_FALSE(p.reportsEnvironment);
        EXPECT_FALSE(p.reportsLinkOrder);
        EXPECT_FALSE(p.addressesMeasurementBias);
    }
}

TEST(Database, AttributesOnlyWhenEvaluating)
{
    for (const auto &p : SurveyDatabase::bundled().papers()) {
        if (!p.evaluatesPerformance) {
            EXPECT_FALSE(p.usesSpecCpu);
            EXPECT_FALSE(p.comparesToBaseline);
            EXPECT_FALSE(p.reportsVariability);
        }
    }
}

TEST(Database, DeterministicAcrossCalls)
{
    const auto &a = SurveyDatabase::bundled();
    const auto &b = SurveyDatabase::bundled();
    EXPECT_EQ(&a, &b); // singleton
}

TEST(Analyzer, TotalsRowSumsVenues)
{
    SurveyAnalyzer an(SurveyDatabase::bundled());
    auto rows = an.summarize();
    ASSERT_EQ(rows.size(), 5u);
    const auto &total = rows.back();
    EXPECT_EQ(total.venue, "total");
    unsigned papers = 0, perf = 0;
    for (std::size_t i = 0; i + 1 < rows.size(); ++i) {
        papers += rows[i].papers;
        perf += rows[i].evaluatePerformance;
    }
    EXPECT_EQ(total.papers, papers);
    EXPECT_EQ(total.evaluatePerformance, perf);
    EXPECT_EQ(total.papers, 133u);
    EXPECT_EQ(total.addressBias, 0u);
}

TEST(Analyzer, HeadlineNumbers)
{
    SurveyAnalyzer an(SurveyDatabase::bundled());
    EXPECT_EQ(an.papersAddressingBias(), 0u);
    const unsigned vulnerable = an.vulnerablePapers();
    EXPECT_GT(vulnerable, 80u);
    EXPECT_LE(vulnerable, 133u);
}

TEST(Analyzer, MostPapersEvaluatePerformance)
{
    SurveyAnalyzer an(SurveyDatabase::bundled());
    auto rows = an.summarize();
    const auto &total = rows.back();
    EXPECT_GT(total.evaluatePerformance, 110u);
    EXPECT_LT(total.reportVariability, total.evaluatePerformance / 3);
}

} // namespace
