/** @file Structural tests for the workload suite (semantics are covered
 *  by the integration correctness tests). */
#include <gtest/gtest.h>

#include <set>

#include "workloads/bzip.hh"
#include "workloads/coldlib.hh"
#include "workloads/perl.hh"
#include "workloads/registry.hh"
#include "workloads/runtime.hh"

namespace
{

using namespace mbias;
using namespace mbias::workloads;

TEST(Registry, TwelveWorkloadsUniqueNames)
{
    const auto &all = suite();
    EXPECT_EQ(all.size(), 12u);
    std::set<std::string> names, archetypes;
    for (const auto *w : all) {
        EXPECT_TRUE(names.insert(w->name()).second);
        EXPECT_TRUE(archetypes.insert(w->archetype()).second);
        EXPECT_FALSE(w->description().empty());
    }
}

TEST(Registry, FindByName)
{
    EXPECT_EQ(findWorkload("perl").archetype(), "400.perlbench");
    EXPECT_EQ(findWorkload("mcf").name(), "mcf");
    EXPECT_EQ(suiteNames().size(), 12u);
}

TEST(Registry, EveryWorkloadLinksMultipleModules)
{
    WorkloadConfig cfg;
    for (const auto *w : suite()) {
        auto mods = w->build(cfg);
        // Own modules + 2 runtime + 3 cold: enough for link-order play.
        EXPECT_GE(mods.size(), 6u) << w->name();
        std::set<std::string> names;
        for (const auto &m : mods)
            EXPECT_TRUE(names.insert(m.name()).second)
                << "duplicate module in " << w->name();
    }
}

TEST(Registry, EveryWorkloadHasMain)
{
    WorkloadConfig cfg;
    for (const auto *w : suite()) {
        auto mods = w->build(cfg);
        unsigned mains = 0;
        for (const auto &m : mods)
            mains += m.findFunction("main") != nullptr;
        EXPECT_EQ(mains, 1u) << w->name();
    }
}

TEST(Registry, BuildIsDeterministic)
{
    WorkloadConfig cfg;
    for (const auto *w : suite()) {
        auto a = w->build(cfg);
        auto b = w->build(cfg);
        ASSERT_EQ(a.size(), b.size()) << w->name();
        for (std::size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i].codeBytes(), b[i].codeBytes());
            ASSERT_EQ(a[i].globals().size(), b[i].globals().size());
            for (std::size_t g = 0; g < a[i].globals().size(); ++g)
                EXPECT_EQ(a[i].globals()[g].init, b[i].globals()[g].init);
        }
    }
}

TEST(Registry, ReferenceResultDependsOnSeed)
{
    WorkloadConfig a, b;
    a.seed = 1;
    b.seed = 2;
    unsigned differing = 0;
    for (const auto *w : suite())
        differing += w->referenceResult(a) != w->referenceResult(b);
    EXPECT_GE(differing, 10u);
}

TEST(Registry, ScaleGrowsWork)
{
    // Scale must change the computation (more rounds => different
    // checksum), except where it only repeats idempotent phases.
    WorkloadConfig s1, s2;
    s2.scale = 2;
    unsigned differing = 0;
    for (const auto *w : suite())
        differing += w->referenceResult(s1) != w->referenceResult(s2);
    EXPECT_GE(differing, 10u);
}

TEST(Runtime, ModulesProvideTheHelpers)
{
    auto mods = runtimeModules();
    ASSERT_EQ(mods.size(), 2u);
    unsigned found = 0;
    for (const auto &m : mods)
        for (const char *fn :
             {"rt_cksum", "rt_mix64", "rt_min", "rt_max", "rt_absdiff"})
            found += m.findFunction(fn) != nullptr;
    EXPECT_EQ(found, 5u);
}

TEST(ColdLib, ModulesHaveOddSizes)
{
    auto mods = coldModules();
    ASSERT_EQ(mods.size(), 3u);
    std::set<std::uint64_t> sizes;
    for (const auto &m : mods) {
        EXPECT_TRUE(m.globals().empty());
        sizes.insert(m.codeBytes());
    }
    EXPECT_EQ(sizes.size(), 3u) << "cold modules should differ in size";
}

TEST(Perl, BytecodeIsWellFormed)
{
    auto code = PerlWorkload::makeBytecode(12345);
    EXPECT_GT(code.size(), 100u);
    EXPECT_EQ(code.back(), 9u); // END
    // Deterministic.
    EXPECT_EQ(code, PerlWorkload::makeBytecode(12345));
    EXPECT_NE(code, PerlWorkload::makeBytecode(54321));
}

TEST(Bzip, InputIsRunStructured)
{
    auto in = BzipWorkload::makeInput(7, 2000);
    ASSERT_EQ(in.size(), 2000u);
    unsigned repeats = 0;
    for (std::size_t i = 1; i < in.size(); ++i)
        repeats += in[i] == in[i - 1];
    // ~60% repeat probability by construction.
    EXPECT_GT(repeats, in.size() / 2);
    for (auto b : in)
        EXPECT_LT(b, 16);
}

TEST(Helpers, Mix64AndCksum)
{
    EXPECT_NE(mix64(1), mix64(2));
    EXPECT_EQ(mix64(42), mix64(42));
    EXPECT_EQ(cksumStep(0, 7), 7u);
    EXPECT_EQ(cksumStep(2, 3), 65u);
}

} // namespace
