/**
 * @file
 * Suite-character tests: each workload must keep the microarchitectural
 * personality of its SPEC CPU2006 archetype.  These guard the *purpose*
 * of each kernel (a pointer chaser that stopped missing the cache would
 * silently stop being "mcf"), not exact numbers.
 */
#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "core/runner.hh"

namespace
{

using namespace mbias;
using sim::Counter;

sim::RunResult
runDefault(const std::string &workload)
{
    core::ExperimentSpec spec;
    spec.withWorkload(workload);
    core::ExperimentRunner runner(spec);
    return runner.runSide(spec.baseline, core::ExperimentSetup{});
}

double
perKiloInst(const sim::RunResult &rr, Counter c)
{
    return rr.counters.ratePerKiloInst(c);
}

TEST(SuiteCharacter, McfIsCacheMissBound)
{
    auto rr = runDefault("mcf");
    // Nearly every pointer-chase step misses the L1.
    EXPECT_GT(perKiloInst(rr, Counter::DcacheMisses), 80.0);
    // And the serial dependence makes it the slowest workload by CPI.
    EXPECT_GT(rr.cpi(), 5.0);
}

TEST(SuiteCharacter, LbmIsStreamingAndPredictable)
{
    auto rr = runDefault("lbm");
    // Streaming stencil: few branches, very low mispredict rate.
    EXPECT_LT(perKiloInst(rr, Counter::BranchesExecuted), 80.0);
    const double mispredict_ratio =
        double(rr.counters.get(Counter::BranchMispredicts)) /
        double(rr.counters.get(Counter::BranchesExecuted));
    EXPECT_LT(mispredict_ratio, 0.02);
}

TEST(SuiteCharacter, PerlIsBranchHeavy)
{
    auto rr = runDefault("perl");
    EXPECT_GT(perKiloInst(rr, Counter::BranchesExecuted), 180.0);
    // Interpreter dispatch defeats the predictor noticeably.
    const double mispredict_ratio =
        double(rr.counters.get(Counter::BranchMispredicts)) /
        double(rr.counters.get(Counter::BranchesExecuted));
    EXPECT_GT(mispredict_ratio, 0.05);
}

TEST(SuiteCharacter, GobmkAndSjengAreCallHeavy)
{
    auto gobmk = runDefault("gobmk");
    auto sjeng = runDefault("sjeng");
    auto lbm = runDefault("lbm");
    EXPECT_GT(perKiloInst(gobmk, Counter::Calls), 10.0);
    EXPECT_GT(perKiloInst(sjeng, Counter::Calls), 10.0);
    EXPECT_LT(perKiloInst(lbm, Counter::Calls), 2.0);
}

TEST(SuiteCharacter, StackVsGlobalWorkloads)
{
    // hmmer's DP rows live on the stack: misaligning sp must create
    // line splits there but not in the global-only mcf.
    core::ExperimentSpec hmmer;
    hmmer.withWorkload("hmmer");
    core::ExperimentSetup misaligned;
    misaligned.envBytes = 4;
    core::ExperimentRunner hr(hmmer);
    auto h = hr.runSide(hmmer.baseline, misaligned);
    EXPECT_GT(h.counters.get(Counter::LineSplits), 1000u);

    core::ExperimentSpec mcf;
    mcf.withWorkload("mcf");
    core::ExperimentRunner mr(mcf);
    auto m = mr.runSide(mcf.baseline, misaligned);
    EXPECT_EQ(m.counters.get(Counter::LineSplits), 0u);
}

TEST(SuiteCharacter, LibquantumStridesSweepTheCache)
{
    auto rr = runDefault("libquantum");
    // Strided passes over a 16 KiB array in a 32 KiB cache: some
    // misses, but far fewer than mcf's random chase.
    EXPECT_GT(perKiloInst(rr, Counter::DcacheMisses), 0.5);
    EXPECT_LT(perKiloInst(rr, Counter::DcacheMisses), 60.0);
}

TEST(SuiteCharacter, SphinxLovesUnrolling)
{
    // The dim_loop is the unroller's best case: O3 must beat O2 by a
    // wide, setup-independent margin.
    core::ExperimentSpec spec;
    spec.withWorkload("sphinx");
    core::ExperimentRunner runner(spec);
    for (std::uint64_t env : {0ull, 36ull, 1000ull}) {
        core::ExperimentSetup s;
        s.envBytes = env;
        EXPECT_GT(runner.run(s).speedup, 1.15);
    }
}

TEST(SuiteCharacter, CpiOrderingIsStable)
{
    // The memory-bound chaser must be far above the compute kernels.
    auto mcf = runDefault("mcf");
    auto milc = runDefault("milc");
    auto sphinx = runDefault("sphinx");
    EXPECT_GT(mcf.cpi(), 3.0 * milc.cpi());
    EXPECT_GT(mcf.cpi(), 3.0 * sphinx.cpi());
}

} // namespace
