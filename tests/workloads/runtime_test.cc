/** @file Executes every runtime helper directly on the machine. */
#include <gtest/gtest.h>

#include "isa/builder.hh"
#include "sim/machine.hh"
#include "toolchain/compiler.hh"
#include "toolchain/linker.hh"
#include "toolchain/loader.hh"
#include "workloads/runtime.hh"
#include "workloads/workload.hh"

namespace
{

using namespace mbias;
using namespace mbias::isa::reg;

/** Runs `fn(a, b)` from the runtime library and returns a0. */
std::uint64_t
callHelper(const std::string &fn, std::uint64_t a, std::uint64_t b,
           toolchain::OptLevel level = toolchain::OptLevel::O2)
{
    isa::ProgramBuilder m("driver");
    m.func("main");
    m.li(a0, std::int64_t(a));
    m.li(a1, std::int64_t(b));
    m.call(fn);
    m.halt();
    m.endFunc();
    std::vector<isa::Module> mods;
    mods.push_back(m.build());
    workloads::appendLibraryModules(mods);
    toolchain::Compiler cc(toolchain::CompilerVendor::GccLike, level);
    auto prog = toolchain::Linker().link(cc.compile(mods));
    auto image = toolchain::Loader::load(std::move(prog), {});
    sim::Machine machine(sim::MachineConfig::core2Like());
    auto rr = machine.run(image);
    EXPECT_TRUE(rr.halted);
    return rr.result;
}

TEST(Runtime, CksumMatchesHostHelper)
{
    for (auto [acc, v] : {std::pair<std::uint64_t, std::uint64_t>{0, 7},
                          {123456789, 42},
                          {~0ull, ~0ull}}) {
        EXPECT_EQ(callHelper("rt_cksum", acc, v),
                  workloads::cksumStep(acc, v));
    }
}

TEST(Runtime, Mix64MatchesHostHelper)
{
    for (std::uint64_t x : {0ull, 1ull, 42ull, 0xdeadbeefcafef00dull})
        EXPECT_EQ(callHelper("rt_mix64", x, 0), workloads::mix64(x));
}

TEST(Runtime, MinMaxUnsigned)
{
    EXPECT_EQ(callHelper("rt_min", 3, 9), 3u);
    EXPECT_EQ(callHelper("rt_min", 9, 3), 3u);
    EXPECT_EQ(callHelper("rt_min", 5, 5), 5u);
    // Unsigned: ~0 is the maximum, not -1.
    EXPECT_EQ(callHelper("rt_min", ~0ull, 1), 1u);
    EXPECT_EQ(callHelper("rt_max", 3, 9), 9u);
    EXPECT_EQ(callHelper("rt_max", ~0ull, 1), ~0ull);
}

TEST(Runtime, AbsDiffSigned)
{
    EXPECT_EQ(callHelper("rt_absdiff", 10, 3), 7u);
    EXPECT_EQ(callHelper("rt_absdiff", 3, 10), 7u);
    EXPECT_EQ(callHelper("rt_absdiff", 5, 5), 0u);
    // Signed semantics: |-2 - 3| = 5.
    EXPECT_EQ(callHelper("rt_absdiff", std::uint64_t(-2), 3), 5u);
}

TEST(Runtime, HelpersSurviveO3Inlining)
{
    // At O3 the call sites are inlined; results must be unchanged.
    for (auto fn : {"rt_cksum", "rt_min", "rt_max", "rt_absdiff"}) {
        EXPECT_EQ(callHelper(fn, 11, 4, toolchain::OptLevel::O3),
                  callHelper(fn, 11, 4, toolchain::OptLevel::O2))
            << fn;
    }
}

} // namespace
