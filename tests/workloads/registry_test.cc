/**
 * @file
 * The runtime workload registry: registering new workloads alongside
 * the builtin suite, provenance tracking, and — because a workload's
 * name keys the toolchain artifact cache and the result stores —
 * loud rejection of duplicate names instead of silent shadowing.
 */
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "workloads/registry.hh"

namespace
{

using namespace mbias;
using workloads::Registry;

class DummyWorkload final : public workloads::Workload
{
  public:
    explicit DummyWorkload(std::string name) : name_(std::move(name)) {}

    std::string name() const override { return name_; }
    std::string archetype() const override { return "test"; }
    std::string description() const override { return "test dummy"; }

    std::vector<isa::Module>
    build(const workloads::WorkloadConfig &) const override
    {
        return {};
    }

    std::uint64_t
    referenceResult(const workloads::WorkloadConfig &) const override
    {
        return 0;
    }

  private:
    std::string name_;
};

TEST(Registry, BuiltinsAreRegistered)
{
    auto &reg = Registry::instance();
    for (const auto *w : workloads::suite()) {
        EXPECT_EQ(reg.find(w->name()), w);
        EXPECT_EQ(reg.sourceOf(w->name()), "builtin");
    }
    EXPECT_EQ(reg.find("no_such_workload"), nullptr);
    EXPECT_EQ(reg.sourceOf("no_such_workload"), "");
}

TEST(Registry, RuntimeRegistrationDoesNotTouchSuite)
{
    auto &reg = Registry::instance();
    const auto before = workloads::suite().size();
    const std::string err = reg.tryAdd(
        std::make_unique<DummyWorkload>("regtest_runtime"), "unit test");
    ASSERT_EQ(err, "");
    // Lookup sees it; the canonical suite does not.
    EXPECT_NE(reg.find("regtest_runtime"), nullptr);
    EXPECT_EQ(reg.sourceOf("regtest_runtime"), "unit test");
    EXPECT_EQ(workloads::suite().size(), before);
    EXPECT_EQ(&workloads::findWorkload("regtest_runtime"),
              reg.find("regtest_runtime"));
    // entries() lists builtins first, runtime additions after.
    const auto entries = reg.entries();
    ASSERT_GE(entries.size(), before + 1);
    for (std::size_t i = 0; i < before; ++i)
        EXPECT_EQ(entries[i].source, "builtin");
}

TEST(Registry, RejectsDuplicateOfBuiltin)
{
    auto &reg = Registry::instance();
    const auto count = reg.entries().size();
    const std::string err =
        reg.tryAdd(std::make_unique<DummyWorkload>("perl"), "evil.toml");
    EXPECT_NE(err.find("duplicate workload name 'perl'"),
              std::string::npos)
        << err;
    EXPECT_NE(err.find("builtin"), std::string::npos) << err;
    EXPECT_NE(err.find("evil.toml"), std::string::npos) << err;
    // Nothing was registered; the builtin still resolves.
    EXPECT_EQ(reg.entries().size(), count);
    EXPECT_EQ(reg.sourceOf("perl"), "builtin");
}

TEST(Registry, RejectsDuplicateOfRuntimeEntry)
{
    auto &reg = Registry::instance();
    ASSERT_EQ(reg.tryAdd(std::make_unique<DummyWorkload>("regtest_dup"),
                         "first.toml"),
              "");
    const std::string err = reg.tryAdd(
        std::make_unique<DummyWorkload>("regtest_dup"), "second.toml");
    EXPECT_NE(err.find("duplicate workload name 'regtest_dup'"),
              std::string::npos)
        << err;
    EXPECT_NE(err.find("first.toml"), std::string::npos) << err;
    EXPECT_EQ(reg.sourceOf("regtest_dup"), "first.toml");
}

TEST(Registry, RejectsEmptyName)
{
    auto &reg = Registry::instance();
    const std::string err =
        reg.tryAdd(std::make_unique<DummyWorkload>(""), "unit test");
    EXPECT_NE(err.find("empty name"), std::string::npos) << err;
}

} // namespace
