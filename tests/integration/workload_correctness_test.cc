/**
 * @file
 * The suite's central functional invariant: for every workload, every
 * opt level, every compiler vendor, every link order, and every
 * environment size, the simulated program computes exactly the value
 * the plain-C++ reference computes.  Optimization and layout must
 * never change semantics — only cycles.
 */
#include <gtest/gtest.h>

#include "sim/machine.hh"
#include "toolchain/compiler.hh"
#include "toolchain/linker.hh"
#include "toolchain/loader.hh"
#include "workloads/registry.hh"

namespace
{

using namespace mbias;
using toolchain::CompilerVendor;
using toolchain::OptLevel;

sim::RunResult
runWorkload(const workloads::Workload &w, const workloads::WorkloadConfig &cfg,
            CompilerVendor vendor, OptLevel level,
            const toolchain::LinkOrder &order, std::uint64_t env_bytes)
{
    toolchain::Compiler cc(vendor, level);
    const auto objs = cc.compile(w.build(cfg));
    toolchain::Linker linker;
    auto prog = linker.link(objs, order);
    toolchain::LoaderConfig lc;
    lc.envBytes = env_bytes;
    auto image = toolchain::Loader::load(std::move(prog), lc);
    sim::Machine machine(sim::MachineConfig::core2Like());
    return machine.run(image);
}

class WorkloadCorrectness
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadCorrectness, MatchesReferenceAtO0)
{
    const auto &w = workloads::findWorkload(GetParam());
    workloads::WorkloadConfig cfg;
    auto rr = runWorkload(w, cfg, CompilerVendor::GccLike, OptLevel::O0,
                          toolchain::LinkOrder::asGiven(), 0);
    ASSERT_TRUE(rr.halted) << "program did not reach Halt";
    EXPECT_EQ(rr.result, w.referenceResult(cfg));
}

TEST_P(WorkloadCorrectness, MatchesReferenceAtO2)
{
    const auto &w = workloads::findWorkload(GetParam());
    workloads::WorkloadConfig cfg;
    auto rr = runWorkload(w, cfg, CompilerVendor::GccLike, OptLevel::O2,
                          toolchain::LinkOrder::asGiven(), 0);
    ASSERT_TRUE(rr.halted);
    EXPECT_EQ(rr.result, w.referenceResult(cfg));
}

TEST_P(WorkloadCorrectness, MatchesReferenceAtO3BothVendors)
{
    const auto &w = workloads::findWorkload(GetParam());
    workloads::WorkloadConfig cfg;
    for (auto vendor : {CompilerVendor::GccLike, CompilerVendor::IccLike}) {
        auto rr = runWorkload(w, cfg, vendor, OptLevel::O3,
                              toolchain::LinkOrder::asGiven(), 0);
        ASSERT_TRUE(rr.halted);
        EXPECT_EQ(rr.result, w.referenceResult(cfg))
            << "vendor " << toolchain::vendorName(vendor);
    }
}

TEST_P(WorkloadCorrectness, LayoutDoesNotChangeSemantics)
{
    const auto &w = workloads::findWorkload(GetParam());
    workloads::WorkloadConfig cfg;
    const std::uint64_t expect = w.referenceResult(cfg);
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
        auto rr = runWorkload(w, cfg, CompilerVendor::GccLike, OptLevel::O3,
                              toolchain::LinkOrder::shuffled(seed),
                              /* env_bytes = */ 13 * seed + 100);
        ASSERT_TRUE(rr.halted);
        EXPECT_EQ(rr.result, expect) << "link seed " << seed;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Suite, WorkloadCorrectness,
    ::testing::ValuesIn(mbias::workloads::suiteNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

} // namespace
