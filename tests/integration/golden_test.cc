/**
 * @file
 * Golden-value regression tests.
 *
 * The timing model is deterministic, so key measurements are pinned to
 * exact values.  These WILL fail whenever the timing model changes —
 * that is their purpose: a change to any charging rule must be a
 * conscious decision, re-validated against EXPERIMENTS.md (whose prose
 * records the same numbers) and then updated here.
 */
#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "core/runner.hh"

namespace
{

using namespace mbias;

sim::RunResult
measure(const std::string &workload, toolchain::OptLevel level,
        std::uint64_t env, const sim::MachineConfig &machine =
                               sim::MachineConfig::core2Like())
{
    core::ExperimentSpec spec;
    spec.withWorkload(workload).withMachine(machine);
    spec.baseline = {toolchain::CompilerVendor::GccLike, level};
    core::ExperimentRunner runner(spec);
    core::ExperimentSetup setup;
    setup.envBytes = env;
    return runner.runSide(spec.baseline, setup);
}

TEST(Golden, PerlDefaultSetup)
{
    auto o2 = measure("perl", toolchain::OptLevel::O2, 0);
    EXPECT_EQ(o2.instructions(), 101405u);
    EXPECT_EQ(o2.cycles(), 102158u);
    auto o3 = measure("perl", toolchain::OptLevel::O3, 0);
    EXPECT_EQ(o3.cycles(), 101942u);
}

TEST(Golden, PerlMisalignedEnv)
{
    // env=52 puts sp at 4 mod 8: stack accesses split cache lines,
    // and the O2/O3 binaries (frames 520 vs 528 bytes) split at
    // different rates.
    auto o2 = measure("perl", toolchain::OptLevel::O2, 52);
    auto o3 = measure("perl", toolchain::OptLevel::O3, 52);
    EXPECT_EQ(o2.cycles(), 109798u);
    EXPECT_EQ(o3.cycles(), 117022u);
    EXPECT_GT(o2.counters.get(sim::Counter::LineSplits), 0u);
}

TEST(Golden, McfIsSetupInvariant)
{
    const auto base = measure("mcf", toolchain::OptLevel::O2, 0).cycles();
    EXPECT_EQ(base, 1900366u);
    EXPECT_EQ(measure("mcf", toolchain::OptLevel::O2, 52).cycles(), base);
    EXPECT_EQ(measure("mcf", toolchain::OptLevel::O2, 4000).cycles(),
              base);
}

TEST(Golden, MachinePresetsDisagreeOnPerl)
{
    EXPECT_EQ(measure("perl", toolchain::OptLevel::O2, 0,
                      sim::MachineConfig::p4Like())
                  .cycles(),
              181116u);
    EXPECT_EQ(measure("perl", toolchain::OptLevel::O2, 0,
                      sim::MachineConfig::o3Like())
                  .cycles(),
              69599u);
}

TEST(Golden, ResultsChecksums)
{
    // Functional checksums: these pin the workload *inputs* and
    // semantics rather than the timing model.
    EXPECT_EQ(measure("perl", toolchain::OptLevel::O2, 0).result,
              5730506297605046414ull);
    EXPECT_EQ(measure("hmmer", toolchain::OptLevel::O2, 0).result,
              239369ull);
}

} // namespace
