/**
 * @file
 * Cross-cutting property tests: invariants that must hold over swept
 * parameter spaces rather than hand-picked cases.
 */
#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "core/runner.hh"
#include "sim/machine.hh"
#include "toolchain/compiler.hh"
#include "toolchain/linker.hh"
#include "toolchain/loader.hh"
#include "workloads/registry.hh"

namespace
{

using namespace mbias;
using toolchain::CompilerVendor;
using toolchain::OptLevel;

// ---------------------------------------------------------------------
// Removing a penalty source never makes a run slower.
// ---------------------------------------------------------------------

struct AblationCase
{
    const char *name;
    void (*apply)(sim::MachineConfig &);
};

class PenaltyMonotonicity
    : public ::testing::TestWithParam<std::tuple<std::string, int>>
{
  protected:
    static const AblationCase &ablation(int i)
    {
        static const AblationCase cases[] = {
            {"splits",
             [](sim::MachineConfig &m) { m.enableLineSplitPenalty = false; }},
            {"alias",
             [](sim::MachineConfig &m) {
                 m.enableStoreBufferAliasing = false;
             }},
            {"prediction",
             [](sim::MachineConfig &m) { m.enableBranchPrediction = false; }},
            {"btb", [](sim::MachineConfig &m) { m.enableBtb = false; }},
            {"tlbs", [](sim::MachineConfig &m) { m.enableTlbs = false; }},
            {"caches",
             [](sim::MachineConfig &m) { m.enableCaches = false; }},
        };
        return cases[i];
    }
};

TEST_P(PenaltyMonotonicity, DisablingNeverSlowsDown)
{
    const auto [workload, which] = GetParam();
    const auto &ab = ablation(which);

    core::ExperimentSpec spec;
    spec.withWorkload(workload);
    core::ExperimentSetup setup;
    setup.envBytes = 292; // a misaligned-stack pocket

    core::ExperimentRunner base_runner(spec);
    const auto base = base_runner.runSide(spec.baseline, setup);

    core::ExperimentSpec ablated = spec;
    ab.apply(ablated.machine);
    core::ExperimentRunner ablated_runner(ablated);
    const auto fast = ablated_runner.runSide(spec.baseline, setup);

    EXPECT_LE(fast.cycles(), base.cycles()) << ab.name;
    EXPECT_EQ(fast.result, base.result) << ab.name;
    EXPECT_EQ(fast.instructions(), base.instructions()) << ab.name;
}

std::string
penaltyCaseName(
    const ::testing::TestParamInfo<std::tuple<std::string, int>> &info)
{
    static const char *names[] = {"splits", "alias",  "prediction",
                                  "btb",    "tlbs",   "caches"};
    return std::get<0>(info.param) + std::string("_") +
           names[std::get<1>(info.param)];
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PenaltyMonotonicity,
    ::testing::Combine(::testing::Values("perl", "hmmer", "gobmk"),
                       ::testing::Range(0, 6)),
    penaltyCaseName);

// ---------------------------------------------------------------------
// Linker layout invariants over many permutations.
// ---------------------------------------------------------------------

class LinkerLayoutProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(LinkerLayoutProperty, LayoutIsSane)
{
    const auto &w = workloads::findWorkload("gobmk");
    workloads::WorkloadConfig cfg;
    toolchain::Compiler cc(CompilerVendor::GccLike, OptLevel::O3);
    const auto objs = cc.compile(w.build(cfg));
    auto prog = toolchain::Linker().link(
        objs, toolchain::LinkOrder::shuffled(GetParam()));

    // Functions are disjoint and sorted by base address.
    for (std::size_t i = 1; i < prog.functions.size(); ++i)
        EXPECT_GE(prog.functions[i].base,
                  prog.functions[i - 1].base + prog.functions[i - 1].bytes);

    // Every control-flow target index is in range, and every branch's
    // resolved target address matches the indexed instruction.
    for (const auto &pi : prog.code) {
        switch (isa::opClass(pi.inst.op)) {
          case isa::OpClass::CondBranch:
          case isa::OpClass::Jump:
          case isa::OpClass::Call:
            ASSERT_LT(pi.targetIdx, prog.code.size());
            break;
          default:
            break;
        }
    }

    // The address map inverts instruction placement.
    EXPECT_EQ(prog.addrToIdx.size(), prog.code.size());

    // Globals are disjoint and inside the data segment.
    for (std::size_t i = 0; i < prog.globals.size(); ++i) {
        EXPECT_GE(prog.globals[i].addr, prog.dataBase);
        EXPECT_LE(prog.globals[i].addr + prog.globals[i].size,
                  prog.dataEnd);
        if (i > 0) {
            EXPECT_GE(prog.globals[i].addr,
                      prog.globals[i - 1].addr + prog.globals[i - 1].size);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinkerLayoutProperty,
                         ::testing::Range(0, 12));

// ---------------------------------------------------------------------
// Loader invariants over the env range.
// ---------------------------------------------------------------------

class LoaderProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(LoaderProperty, SpDropsMonotonicallyWithEnv)
{
    const auto &w = workloads::findWorkload("perl");
    workloads::WorkloadConfig cfg;
    toolchain::Compiler cc(CompilerVendor::GccLike, OptLevel::O2);
    const auto objs = cc.compile(w.build(cfg));

    const std::uint64_t env = std::uint64_t(GetParam()) * 97;
    auto imgA = toolchain::Loader::load(
        toolchain::Linker().link(objs), {env, 4});
    auto imgB = toolchain::Loader::load(
        toolchain::Linker().link(objs), {env + 64, 4});
    EXPECT_EQ(imgA.initialSp % 4, 0u);
    EXPECT_GT(imgA.initialSp, imgB.initialSp);
    EXPECT_EQ(imgA.initialSp - imgB.initialSp, 64u);
    // The stack never collides with code/data/heap.
    EXPECT_GT(imgB.initialSp, imgA.heapBase + (1 << 20));
}

INSTANTIATE_TEST_SUITE_P(EnvSteps, LoaderProperty, ::testing::Range(0, 16));

// ---------------------------------------------------------------------
// Correctness holds at O1 and at scale 2 (spot checks beyond the main
// correctness suite's O0/O2/O3 x scale-1 coverage).
// ---------------------------------------------------------------------

TEST(CorrectnessSpotChecks, O1MatchesReference)
{
    for (const char *name : {"perl", "milc", "libquantum"}) {
        const auto &w = workloads::findWorkload(name);
        workloads::WorkloadConfig cfg;
        core::ExperimentSpec spec;
        spec.withWorkload(name);
        spec.baseline = {CompilerVendor::GccLike, OptLevel::O1};
        core::ExperimentRunner runner(spec);
        auto rr = runner.runSide(spec.baseline, core::ExperimentSetup{});
        EXPECT_EQ(rr.result, w.referenceResult(cfg)) << name;
    }
}

TEST(CorrectnessSpotChecks, Scale2MatchesReference)
{
    for (const char *name : {"bzip", "sjeng", "lbm"}) {
        const auto &w = workloads::findWorkload(name);
        core::ExperimentSpec spec;
        spec.withWorkload(name).withScale(2);
        core::ExperimentRunner runner(spec);
        core::ExperimentSetup setup;
        setup.envBytes = 52;
        setup.linkOrder = toolchain::LinkOrder::shuffled(4);
        auto rr = runner.runSide(spec.treatment, setup);
        EXPECT_EQ(rr.result, w.referenceResult(spec.workloadConfig))
            << name;
    }
}

TEST(CorrectnessSpotChecks, AlternateSeedMatchesReference)
{
    for (const char *name : {"perl", "h264", "mcf"}) {
        const auto &w = workloads::findWorkload(name);
        core::ExperimentSpec spec;
        spec.withWorkload(name);
        spec.workloadConfig.seed = 999;
        core::ExperimentRunner runner(spec);
        auto rr = runner.runSide(spec.treatment, core::ExperimentSetup{});
        EXPECT_EQ(rr.result, w.referenceResult(spec.workloadConfig))
            << name;
    }
}

} // namespace
