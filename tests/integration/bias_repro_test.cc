/**
 * @file
 * Integration tests asserting the paper's *headline phenomena* hold in
 * this reproduction — these are the claims EXPERIMENTS.md records.
 */
#include <gtest/gtest.h>

#include "core/bias.hh"
#include "core/causal.hh"
#include "core/experiment.hh"
#include "core/setup.hh"
#include "stats/sample.hh"

namespace
{

using namespace mbias;
using namespace mbias::core;

TEST(PaperClaims, Figure3EnvSizeFlipsPerlConclusion)
{
    // "Speedup of O3 on Core 2 vs env size sweeps ~0.92-1.10."
    ExperimentSpec spec; // perl / core2like / gcc O2 vs O3
    ExperimentRunner runner(spec);
    stats::Sample sp;
    for (std::uint64_t env = 0; env <= 4096; env += 36) {
        ExperimentSetup s;
        s.envBytes = env;
        sp.add(runner.run(s).speedup);
    }
    EXPECT_LT(sp.min(), 0.98) << "no setup where O3 clearly hurts";
    EXPECT_GT(sp.max(), 1.02) << "no setup where O3 clearly helps";
    EXPECT_GT(sp.range(), 0.04);
}

TEST(PaperClaims, LinkOrderAloneChangesCycles)
{
    ExperimentSpec spec;
    ExperimentRunner runner(spec);
    stats::Sample cycles;
    for (unsigned s = 0; s < 12; ++s) {
        ExperimentSetup setup;
        setup.linkOrder = s == 0 ? toolchain::LinkOrder::asGiven()
                                 : toolchain::LinkOrder::shuffled(s);
        cycles.add(double(runner.runSide(spec.baseline, setup).cycles()));
    }
    EXPECT_GT(cycles.range() / cycles.median(), 0.005)
        << "link order must move cycles by >0.5%";
}

TEST(PaperClaims, BiasOnEveryMachineModel)
{
    for (const auto &machine : sim::MachineConfig::allPresets()) {
        ExperimentSpec spec;
        spec.withMachine(machine);
        ExperimentRunner runner(spec);
        stats::Sample cycles;
        for (std::uint64_t env = 0; env <= 1024; env += 36) {
            ExperimentSetup s;
            s.envBytes = env;
            cycles.add(
                double(runner.runSide(spec.baseline, s).cycles()));
        }
        EXPECT_GT(cycles.range(), 0.0) << machine.name;
    }
}

TEST(PaperClaims, BiasWithBothCompilerVendors)
{
    for (auto vendor : {toolchain::CompilerVendor::GccLike,
                        toolchain::CompilerVendor::IccLike}) {
        ExperimentSpec spec;
        spec.withBaseline({vendor, toolchain::OptLevel::O2})
            .withTreatment({vendor, toolchain::OptLevel::O3});
        ExperimentRunner runner(spec);
        stats::Sample sp;
        for (std::uint64_t env = 0; env <= 2048; env += 68) {
            ExperimentSetup s;
            s.envBytes = env;
            sp.add(runner.run(s).speedup);
        }
        EXPECT_GT(sp.range(), 0.01) << toolchain::vendorName(vendor);
    }
}

TEST(PaperClaims, RandomizationCoversGridEstimate)
{
    // The randomized-setup CI must be consistent with a (denser)
    // grid-sweep mean — the remedy must estimate the same effect.
    ExperimentSpec spec;
    auto grid = SetupSpace().varyEnvSize().grid(48);
    auto grid_report = BiasAnalyzer().analyze(spec, grid);

    SetupRandomizer randomizer(SetupSpace().varyEnvSize(), 99);
    auto rand_report = BiasAnalyzer().analyze(spec, randomizer, 31);

    EXPECT_TRUE(
        rand_report.speedupCI.contains(grid_report.speedups.mean()))
        << "randomized CI " << rand_report.speedupCI.str()
        << " excludes grid mean " << grid_report.speedups.mean();
}

TEST(PaperClaims, ExtremeSingleSetupsFallOutsideCI)
{
    ExperimentSpec spec;
    auto grid = SetupSpace().varyEnvSize().grid(48);
    auto report = BiasAnalyzer().analyze(spec, grid);
    // The CI of the *mean* is far narrower than the setup spread:
    // cherry-picked setups lie outside it.
    EXPECT_LT(report.speedupCI.lower, report.speedups.max());
    EXPECT_FALSE(report.speedupCI.contains(report.speedups.min()));
    EXPECT_FALSE(report.speedupCI.contains(report.speedups.max()));
}

TEST(PaperClaims, CausalInterventionCollapsesEnvBias)
{
    ExperimentSpec spec;
    auto setups = SetupSpace().varyEnvSize().grid(32);
    auto report = CausalAnalyzer().analyze(spec, setups);
    ASSERT_FALSE(report.interventions.empty());
    const auto &align = report.interventions.front();
    EXPECT_EQ(align.name, "force 64-byte stack alignment");
    EXPECT_GT(align.reduction(), 0.8)
        << "aligning the stack should remove most env-size bias";
}

TEST(PaperClaims, InstructionCountsAreLayoutInvariant)
{
    // Bias is a *timing* phenomenon: the architectural work must not
    // change with setup.
    ExperimentSpec spec;
    ExperimentRunner runner(spec);
    ExperimentSetup a, b;
    b.envBytes = 1234;
    b.linkOrder = toolchain::LinkOrder::shuffled(5);
    EXPECT_EQ(runner.runSide(spec.baseline, a).instructions(),
              runner.runSide(spec.baseline, b).instructions());
}

} // namespace
