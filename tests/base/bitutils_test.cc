/** @file Unit tests for base bit utilities. */
#include <gtest/gtest.h>

#include "base/bitutils.hh"

namespace
{

using namespace mbias;

TEST(BitUtils, IsPowerOf2)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(1ULL << 63));
    EXPECT_FALSE(isPowerOf2((1ULL << 63) + 1));
}

TEST(BitUtils, AlignUp)
{
    EXPECT_EQ(alignUp(0, 16), 0u);
    EXPECT_EQ(alignUp(1, 16), 16u);
    EXPECT_EQ(alignUp(16, 16), 16u);
    EXPECT_EQ(alignUp(17, 16), 32u);
    EXPECT_EQ(alignUp(519, 8), 520u);
    EXPECT_EQ(alignUp(520, 16), 528u);
}

TEST(BitUtils, AlignDown)
{
    EXPECT_EQ(alignDown(0, 16), 0u);
    EXPECT_EQ(alignDown(15, 16), 0u);
    EXPECT_EQ(alignDown(16, 16), 16u);
    EXPECT_EQ(alignDown(31, 16), 16u);
}

TEST(BitUtils, IsAligned)
{
    EXPECT_TRUE(isAligned(0, 4));
    EXPECT_TRUE(isAligned(64, 64));
    EXPECT_FALSE(isAligned(65, 64));
}

TEST(BitUtils, Log2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(4096), 12u);
    EXPECT_EQ(ceilLog2(4096), 12u);
    EXPECT_EQ(ceilLog2(4097), 13u);
}

TEST(BitUtils, Mask)
{
    EXPECT_EQ(mask(0), 0u);
    EXPECT_EQ(mask(1), 1u);
    EXPECT_EQ(mask(12), 0xfffu);
    EXPECT_EQ(mask(64), ~std::uint64_t(0));
}

TEST(BitUtils, Bits)
{
    EXPECT_EQ(bits(0xabcd, 7, 0), 0xcdu);
    EXPECT_EQ(bits(0xabcd, 15, 8), 0xabu);
    EXPECT_EQ(bits(0xff, 3, 2), 3u);
}

TEST(BitUtils, CrossesBoundary)
{
    EXPECT_FALSE(crossesBoundary(0, 8, 64));
    EXPECT_FALSE(crossesBoundary(56, 8, 64));
    EXPECT_TRUE(crossesBoundary(57, 8, 64));
    EXPECT_TRUE(crossesBoundary(63, 2, 64));
    EXPECT_FALSE(crossesBoundary(64, 8, 64));
    EXPECT_FALSE(crossesBoundary(63, 1, 64));
    EXPECT_FALSE(crossesBoundary(10, 0, 64));
}

/** Property sweep: alignUp/alignDown bracket the value. */
class AlignProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(AlignProperty, BracketsValue)
{
    const std::uint64_t v = GetParam();
    for (std::uint64_t a : {1ull, 2ull, 4ull, 16ull, 64ull, 4096ull}) {
        EXPECT_LE(alignDown(v, a), v);
        EXPECT_GE(alignUp(v, a), v);
        EXPECT_TRUE(isAligned(alignDown(v, a), a));
        EXPECT_TRUE(isAligned(alignUp(v, a), a));
        EXPECT_LT(alignUp(v, a) - v, a);
        EXPECT_LT(v - alignDown(v, a), a);
    }
}

INSTANTIATE_TEST_SUITE_P(Values, AlignProperty,
                         ::testing::Values(0, 1, 7, 63, 64, 65, 519, 520,
                                           4095, 4096, 123456789));

} // namespace
