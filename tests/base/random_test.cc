/** @file Unit tests for the deterministic RNG. */
#include <gtest/gtest.h>

#include <set>

#include "base/random.hh"
#include "base/seeding.hh"

namespace
{

using mbias::Rng;

TEST(Rng, DeterministicFromSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextBounded(13), 13u);
}

TEST(Rng, BoundedCoversRange)
{
    Rng rng(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.nextBounded(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(3);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        auto v = rng.nextRange(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        saw_lo |= v == -2;
        saw_hi |= v == 2;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextIndexFormulaAndRange)
{
    // nextIndex is the stats engine's draw primitive: exactly one
    // generator step, fixed-point scaling of the top 32 bits.  The
    // formula is part of the bitwise contract, so pin it.
    Rng a(41), b(41);
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t idx = a.nextIndex(527);
        EXPECT_LT(idx, 527u);
        EXPECT_EQ(idx, ((b.next() >> 32) * 527) >> 32);
    }
}

TEST(Rng, NextIndexDegenerateAndFullRange)
{
    Rng rng(43);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.nextIndex(1), 0u);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.nextIndex(4));
    EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, StateWordsExposeGeneratorState)
{
    Rng a(47), b(47);
    for (unsigned w = 0; w < 4; ++w)
        EXPECT_EQ(a.stateWord(w), b.stateWord(w));
    a.next();
    bool changed = false;
    for (unsigned w = 0; w < 4; ++w)
        changed |= a.stateWord(w) != b.stateWord(w);
    EXPECT_TRUE(changed);
    // Reading state never advances it.
    EXPECT_EQ(b.next(), Rng(47).next());
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 10000; ++i) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, DoubleMeanNearHalf)
{
    Rng rng(13);
    double acc = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        acc += rng.nextDouble();
    EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(17);
    double sum = 0, sq = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double g = rng.nextGaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(19);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
    auto orig = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, orig);
}

TEST(Rng, ShuffleDeterministic)
{
    std::vector<int> a{1, 2, 3, 4, 5}, b{1, 2, 3, 4, 5};
    Rng r1(23), r2(23);
    r1.shuffle(a);
    r2.shuffle(b);
    EXPECT_EQ(a, b);
}

TEST(Rng, SplitIndependent)
{
    Rng parent(29);
    Rng child = parent.split();
    // The child stream should not replay the parent's values.
    Rng parent2(29);
    parent2.next(); // same state advance as split() performed
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += child.next() == parent2.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, SplitAtIsPureAndKeyed)
{
    Rng parent(31);
    Rng a1 = parent.splitAt(7);
    Rng a2 = parent.splitAt(7); // parent state unchanged by splitAt
    Rng b = parent.splitAt(8);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        const auto va = a1.next();
        EXPECT_EQ(va, a2.next());
        same += va == b.next();
    }
    EXPECT_LT(same, 2);
    // splitAt did not advance the parent.
    Rng parent2(31);
    EXPECT_EQ(parent.next(), parent2.next());
}

TEST(Seeding, MixSeedIndependentStreams)
{
    using mbias::mixSeed;
    EXPECT_EQ(mixSeed(42, 7), mixSeed(42, 7));
    EXPECT_NE(mixSeed(42, 7), mixSeed(42, 8));
    EXPECT_NE(mixSeed(42, 7), mixSeed(43, 7));
    // The stream index must not be cancellable against the root.
    EXPECT_NE(mixSeed(42, 7), mixSeed(42 ^ 7, 0));
    std::set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < 1000; ++i)
        seen.insert(mixSeed(42, i));
    EXPECT_EQ(seen.size(), 1000u);
}

TEST(Seeding, StreamRngMatchesMixSeed)
{
    Rng direct(mbias::mixSeed(9, 4));
    Rng stream = mbias::streamRng(9, 4);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(direct.next(), stream.next());
}

} // namespace
