/** @file Tests for the shared FNV-1a hashing helpers. */
#include <gtest/gtest.h>

#include <string>

#include "base/hash.hh"

namespace
{

using namespace mbias;

TEST(Fnv1aHash, EmptyIsOffsetBasis)
{
    EXPECT_EQ(fnv1a(""), kFnv1aOffsetBasis);
    EXPECT_EQ(Fnv1a().value(), kFnv1aOffsetBasis);
}

TEST(Fnv1aHash, KnownVectors)
{
    // Reference vectors from the FNV specification (64-bit FNV-1a).
    EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cULL);
    EXPECT_EQ(fnv1a("foobar"), 0x85944171f73967e8ULL);
}

TEST(Fnv1aHash, StreamingBytesMatchOneShot)
{
    Fnv1a f;
    f.bytes("foo", 3);
    f.bytes("bar", 3);
    EXPECT_EQ(f.value(), fnv1a("foobar"));
}

TEST(Fnv1aHash, U64FeedsLittleEndianBytes)
{
    Fnv1a a, b;
    const std::uint64_t v = 0x0123456789abcdefULL;
    a.u64(v);
    b.bytes(&v, sizeof(v));
    EXPECT_EQ(a.value(), b.value());
}

TEST(Fnv1aHash, StrIsLengthPrefixed)
{
    // The length prefix keeps field boundaries in the stream: the
    // concatenation ("ab", "") must not collide with ("a", "b").
    Fnv1a split, joined;
    split.str("a");
    split.str("b");
    joined.str("ab");
    joined.str("");
    EXPECT_NE(split.value(), joined.value());
}

TEST(Fnv1aHash, Hex16PadsTo16Digits)
{
    EXPECT_EQ(hex16(0), "0000000000000000");
    EXPECT_EQ(hex16(0xdeadbeefULL), "00000000deadbeef");
    EXPECT_EQ(hex16(~0ULL), "ffffffffffffffff");
    EXPECT_EQ(hex16(fnv1a("perl")).size(), 16u);
}

} // namespace
