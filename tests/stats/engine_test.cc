/**
 * @file
 * The stats engine's bitwise contract: the optimized bootstrap and
 * ANOVA paths must reproduce the serial reference exactly — at any
 * jobs setting, with or without SIMD, and the reference itself must
 * match the documented per-stream contract hand-rolled in this file.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <vector>

#include "base/random.hh"
#include "base/seeding.hh"
#include "stats/anova2.hh"
#include "stats/engine.hh"

namespace
{

using namespace mbias::stats;
using mbias::Rng;

std::vector<double>
speedupLike(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<double> v;
    v.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        v.push_back(1.0 + 0.05 * rng.nextGaussian());
    return v;
}

/**
 * The documented contract, hand-rolled with no engine code: resample
 * r draws from streamRng(seed, r), one nextIndex per draw, Neumaier
 * compensation in draw order, mean = (sum + comp) / n.
 */
std::vector<double>
contractMeans(const std::vector<double> &data, std::uint64_t seed, int R)
{
    std::vector<double> out(static_cast<std::size_t>(R));
    for (int r = 0; r < R; ++r) {
        Rng rng = mbias::streamRng(seed, std::uint64_t(r));
        double sum = 0.0, comp = 0.0;
        for (std::size_t i = 0; i < data.size(); ++i) {
            const double x = data[rng.nextIndex(data.size())];
            const double t = sum + x;
            if (std::abs(sum) >= std::abs(x))
                comp += (sum - t) + x;
            else
                comp += (x - t) + sum;
            sum = t;
        }
        out[std::size_t(r)] = (sum + comp) / double(data.size());
    }
    return out;
}

Engine
makeEngine(unsigned jobs, bool force_serial = false,
           bool force_scalar = false)
{
    EngineOptions eo;
    eo.jobs = jobs;
    eo.forceSerial = force_serial;
    eo.forceScalar = force_scalar;
    return Engine(eo);
}

TEST(Engine, SerialReferenceMatchesContract)
{
    const auto data = speedupLike(53, 7);
    const auto ref = makeEngine(1, true).bootstrapMeans(data, 42, 200);
    EXPECT_EQ(ref, contractMeans(data, 42, 200));
}

TEST(Engine, FastPathMatchesSerialBitwise)
{
    // 1037 resamples: full SIMD blocks, a partial block tail, and a
    // partial chunk — every code path in one differential.
    const auto data = speedupLike(129, 11);
    const auto serial = makeEngine(1, true).bootstrapMeans(data, 9, 1037);
    const auto fast = makeEngine(1).bootstrapMeans(data, 9, 1037);
    EXPECT_EQ(serial, fast);

    const auto ciS = makeEngine(1, true).bootstrapInterval(data, 9, 1037);
    const auto ciF = makeEngine(1).bootstrapInterval(data, 9, 1037);
    EXPECT_EQ(ciS.lower, ciF.lower);
    EXPECT_EQ(ciS.upper, ciF.upper);
    EXPECT_EQ(ciS.estimate, ciF.estimate);
}

TEST(Engine, BootstrapBitwiseIdenticalAcrossJobs)
{
    const auto data = speedupLike(257, 13);
    const auto one = makeEngine(1).bootstrapMeans(data, 5, 3000);
    for (unsigned jobs : {2u, 8u}) {
        EXPECT_EQ(one, makeEngine(jobs).bootstrapMeans(data, 5, 3000));
        const auto ci1 = makeEngine(1).bootstrapInterval(data, 5, 3000);
        const auto ciJ =
            makeEngine(jobs).bootstrapInterval(data, 5, 3000);
        EXPECT_EQ(ci1.lower, ciJ.lower);
        EXPECT_EQ(ci1.upper, ciJ.upper);
        EXPECT_EQ(ci1.estimate, ciJ.estimate);
    }
}

TEST(Engine, ScalarAndSimdBlocksAgreeBitwise)
{
    if (!Engine::simdAvailable())
        GTEST_SKIP() << "no AVX-512 kernel on this host";
    const auto data = speedupLike(75, 17);
    EXPECT_EQ(makeEngine(1, false, true).bootstrapMeans(data, 3, 500),
              makeEngine(1).bootstrapMeans(data, 3, 500));
}

TEST(Engine, EnvEscapeHatchPinsSerial)
{
    const auto data = speedupLike(40, 19);
    const auto fast = makeEngine(4).bootstrapInterval(data, 21, 400);
    ::setenv("MBIAS_STATS_SERIAL", "1", 1);
    const Engine pinned = makeEngine(4);
    EXPECT_TRUE(pinned.usingSerial());
    const auto ci = pinned.bootstrapInterval(data, 21, 400);
    ::unsetenv("MBIAS_STATS_SERIAL");
    // The hatch changes the implementation, never the bits.
    EXPECT_EQ(ci.lower, fast.lower);
    EXPECT_EQ(ci.upper, fast.upper);
    EXPECT_EQ(ci.estimate, fast.estimate);
}

TEST(Engine, IntervalShapeAndEstimate)
{
    const auto data = speedupLike(100, 23);
    const auto ci = makeEngine(2).bootstrapInterval(data, 1, 1000, 0.9);
    EXPECT_LT(ci.lower, ci.upper);
    EXPECT_DOUBLE_EQ(ci.level, 0.9);
    EXPECT_EQ(ci.estimate, compensatedMean(data.data(), data.size()));
    EXPECT_GT(ci.lower, 0.5);
    EXPECT_LT(ci.upper, 1.5);
}

std::vector<std::vector<Sample>>
anovaCells(unsigned na, unsigned nb, unsigned reps, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::vector<Sample>> cells(na,
                                           std::vector<Sample>(nb));
    for (unsigned a = 0; a < na; ++a)
        for (unsigned b = 0; b < nb; ++b)
            for (unsigned r = 0; r < reps; ++r)
                cells[a][b].add(5.0 + 2.0 * a + 0.5 * b +
                                rng.nextGaussian());
    return cells;
}

TEST(Engine, AnovaBitwiseIdenticalAcrossJobs)
{
    const auto cells = anovaCells(4, 3, 6, 29);
    const auto one = makeEngine(1).twoWayAnova(cells);
    for (unsigned jobs : {2u, 8u}) {
        const auto j = makeEngine(jobs).twoWayAnova(cells);
        EXPECT_EQ(one.ssA, j.ssA);
        EXPECT_EQ(one.ssB, j.ssB);
        EXPECT_EQ(one.ssAB, j.ssAB);
        EXPECT_EQ(one.ssWithin, j.ssWithin);
        EXPECT_EQ(one.fA, j.fA);
        EXPECT_EQ(one.fB, j.fB);
        EXPECT_EQ(one.fAB, j.fAB);
        EXPECT_EQ(one.pA, j.pA);
        EXPECT_EQ(one.pB, j.pB);
        EXPECT_EQ(one.pAB, j.pAB);
    }
    // The serial engine path agrees with the parallel one bitwise too.
    const auto s = makeEngine(1, true).twoWayAnova(cells);
    EXPECT_EQ(one.ssA, s.ssA);
    EXPECT_EQ(one.ssWithin, s.ssWithin);
    EXPECT_EQ(one.pAB, s.pAB);
}

TEST(Engine, AnovaAgreesWithLegacyToRounding)
{
    // The legacy twoWayAnova associates its sums differently, so the
    // agreement is to rounding, not bitwise (see engine.hh).
    const auto cells = anovaCells(3, 3, 8, 31);
    const auto e = makeEngine(2).twoWayAnova(cells);
    const auto l = twoWayAnova(cells);
    EXPECT_NEAR(e.ssA, l.ssA, 1e-9 * std::abs(l.ssA) + 1e-12);
    EXPECT_NEAR(e.ssB, l.ssB, 1e-9 * std::abs(l.ssB) + 1e-12);
    EXPECT_NEAR(e.ssAB, l.ssAB, 1e-9 * std::abs(l.ssAB) + 1e-12);
    EXPECT_NEAR(e.ssWithin, l.ssWithin,
                1e-9 * std::abs(l.ssWithin) + 1e-12);
    EXPECT_NEAR(e.fA, l.fA, 1e-8 * std::abs(l.fA) + 1e-12);
    EXPECT_NEAR(e.pA, l.pA, 1e-8);
    EXPECT_EQ(e.dfA, l.dfA);
    EXPECT_EQ(e.dfWithin, l.dfWithin);
}

TEST(CompensatedSum, CancellationExact)
{
    const std::vector<double> v{1e16, 1.0, -1e16};
    EXPECT_DOUBLE_EQ(compensatedSum(v), 1.0);
    // The naive left fold loses the 1.0 entirely.
    EXPECT_DOUBLE_EQ((1e16 + 1.0) + -1e16, 0.0);
}

TEST(CompensatedSum, IllConditionedMatchesLongDouble)
{
    // Each triple (big, small, -big) cancels its 1e15-scale terms
    // exactly, so the true sum is just the sum of the unit-scale
    // values — which a plain left fold butchers (every small addend
    // lands on a ~1e15 partial and loses its low bits) and a
    // compensated sum recovers to a few ulps.
    Rng rng(37);
    std::vector<double> v;
    long double exact = 0.0L;
    for (int i = 0; i < 1000; ++i) {
        const double big = 1e15 * (1.0 + rng.nextDouble());
        const double small = rng.nextDouble();
        v.push_back(big);
        v.push_back(small);
        v.push_back(-big);
        exact += static_cast<long double>(small);
    }
    double naive = 0.0;
    for (double x : v)
        naive += x;
    const double ref = static_cast<double>(exact);
    const double got = compensatedSum(v);
    EXPECT_NEAR(got, ref, 1e-9) << "compensated sum drifted";
    EXPECT_GT(std::abs(naive - ref), std::abs(got - ref))
        << "naive fold should be strictly worse on this input";
    EXPECT_DOUBLE_EQ(compensatedMean(v.data(), v.size()),
                     got / double(v.size()));
}

} // namespace
