/** @file Tests for special functions against known reference values. */
#include <gtest/gtest.h>

#include "stats/distributions.hh"

namespace
{

using namespace mbias::stats;

TEST(Distributions, IncompleteBetaBoundaries)
{
    EXPECT_DOUBLE_EQ(regularizedIncompleteBeta(2.0, 3.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(regularizedIncompleteBeta(2.0, 3.0, 1.0), 1.0);
}

TEST(Distributions, IncompleteBetaSymmetry)
{
    // I_x(a, b) == 1 - I_{1-x}(b, a).
    for (double x : {0.1, 0.3, 0.5, 0.7, 0.9}) {
        EXPECT_NEAR(regularizedIncompleteBeta(2.5, 4.0, x),
                    1.0 - regularizedIncompleteBeta(4.0, 2.5, 1.0 - x),
                    1e-10);
    }
}

TEST(Distributions, IncompleteBetaUniformCase)
{
    // I_x(1, 1) = x (uniform CDF).
    for (double x : {0.2, 0.5, 0.8})
        EXPECT_NEAR(regularizedIncompleteBeta(1.0, 1.0, x), x, 1e-12);
}

TEST(Distributions, NormalCdfKnownValues)
{
    EXPECT_NEAR(normalCdf(0.0), 0.5, 1e-12);
    EXPECT_NEAR(normalCdf(1.959963985), 0.975, 1e-6);
    EXPECT_NEAR(normalCdf(-1.959963985), 0.025, 1e-6);
    EXPECT_NEAR(normalCdf(1.0), 0.8413447460685429, 1e-9);
}

TEST(Distributions, NormalQuantileInvertsCdf)
{
    for (double p : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.975, 0.999})
        EXPECT_NEAR(normalCdf(normalQuantile(p)), p, 1e-9);
}

TEST(Distributions, StudentTKnownValues)
{
    // t with large df approaches the normal.
    EXPECT_NEAR(studentTCdf(1.96, 1e6), 0.975, 1e-3);
    // Symmetric around zero.
    EXPECT_NEAR(studentTCdf(0.0, 7.0), 0.5, 1e-12);
    EXPECT_NEAR(studentTCdf(2.0, 5.0) + studentTCdf(-2.0, 5.0), 1.0,
                1e-12);
    // t_{0.975, 10} = 2.2281 (standard table).
    EXPECT_NEAR(studentTCdf(2.2281, 10.0), 0.975, 1e-4);
}

TEST(Distributions, StudentTCriticalMatchesTable)
{
    EXPECT_NEAR(studentTCritical(0.95, 10.0), 2.2281, 2e-4);
    EXPECT_NEAR(studentTCritical(0.95, 30.0), 2.0423, 2e-4);
    EXPECT_NEAR(studentTCritical(0.99, 10.0), 3.1693, 3e-4);
    EXPECT_NEAR(studentTCritical(0.90, 5.0), 2.0150, 2e-4);
}

TEST(Distributions, FCdfKnownValues)
{
    // F(1, d, d) == 0.5 by symmetry of the ratio of equal chi-squares.
    EXPECT_NEAR(fCdf(1.0, 10.0, 10.0), 0.5, 1e-10);
    // F_{0.95}(2, 10) critical value is 4.103 (standard table).
    EXPECT_NEAR(fCdf(4.103, 2.0, 10.0), 0.95, 1e-3);
    EXPECT_DOUBLE_EQ(fCdf(0.0, 3.0, 3.0), 0.0);
}

TEST(Distributions, BinomialTail)
{
    // P(X >= 0) = 1; P(X >= n+1) = 0.
    EXPECT_DOUBLE_EQ(binomialTailAtLeast(0, 10, 0.5), 1.0);
    EXPECT_DOUBLE_EQ(binomialTailAtLeast(11, 10, 0.5), 0.0);
    // P(X >= 10 | n=10, p=.5) = 2^-10.
    EXPECT_NEAR(binomialTailAtLeast(10, 10, 0.5), 1.0 / 1024.0, 1e-12);
    // P(X >= 8 | n=10, p=.5) = (45+10+1)/1024.
    EXPECT_NEAR(binomialTailAtLeast(8, 10, 0.5), 56.0 / 1024.0, 1e-12);
}

} // namespace
