/** @file Unit tests for stats::Sample against hand-computed values. */
#include <gtest/gtest.h>

#include <cmath>
#include "base/random.hh"
#include "stats/sample.hh"

namespace
{

using mbias::stats::Sample;

TEST(Sample, MeanAndSum)
{
    Sample s({1.0, 2.0, 3.0, 4.0});
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.sum(), 10.0);
    EXPECT_EQ(s.count(), 4u);
}

TEST(Sample, VarianceUnbiased)
{
    // Hand-computed: mean 3, squared deviations 4+1+0+1+4 = 10, n-1 = 4.
    Sample s({1.0, 2.0, 3.0, 4.0, 5.0});
    EXPECT_DOUBLE_EQ(s.variance(), 2.5);
    EXPECT_DOUBLE_EQ(s.stddev(), std::sqrt(2.5));
    EXPECT_DOUBLE_EQ(s.stderror(), std::sqrt(2.5 / 5.0));
}

TEST(Sample, MinMaxMedianOdd)
{
    Sample s({5.0, 1.0, 3.0});
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
    EXPECT_DOUBLE_EQ(s.median(), 3.0);
    EXPECT_DOUBLE_EQ(s.range(), 4.0);
}

TEST(Sample, MedianEvenInterpolates)
{
    Sample s({1.0, 2.0, 3.0, 10.0});
    EXPECT_DOUBLE_EQ(s.median(), 2.5);
}

TEST(Sample, QuantileType7)
{
    // R: quantile(c(1,2,3,4), 0.25) == 1.75 (type 7).
    Sample s({1.0, 2.0, 3.0, 4.0});
    EXPECT_DOUBLE_EQ(s.quantile(0.25), 1.75);
    EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(s.quantile(1.0), 4.0);
    EXPECT_DOUBLE_EQ(s.quantile(0.5), 2.5);
}

TEST(Sample, QuantileSingleton)
{
    Sample s({7.0});
    EXPECT_DOUBLE_EQ(s.quantile(0.3), 7.0);
}

TEST(Sample, Geomean)
{
    Sample s({1.0, 4.0, 16.0});
    EXPECT_NEAR(s.geomean(), 4.0, 1e-12);
}

TEST(Sample, HarmonicMean)
{
    Sample s({1.0, 2.0, 4.0});
    EXPECT_NEAR(s.harmonicMean(), 3.0 / (1.0 + 0.5 + 0.25), 1e-12);
}

TEST(Sample, CvOfConstantIsZero)
{
    Sample s({5.0, 5.0, 5.0});
    EXPECT_DOUBLE_EQ(s.cv(), 0.0);
}

TEST(Sample, AddAfterQuery)
{
    Sample s({3.0, 1.0});
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    s.add(0.5); // invalidates the cached sorted copy
    EXPECT_DOUBLE_EQ(s.min(), 0.5);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(Sample, AddAll)
{
    Sample a({1.0, 2.0});
    Sample b({3.0});
    a.addAll(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(Sample, FreeGeomean)
{
    EXPECT_NEAR(mbias::stats::geomean({2.0, 8.0}), 4.0, 1e-12);
}

/** Property: quantiles are monotone in q. */
class QuantileMonotone : public ::testing::TestWithParam<int>
{
};

TEST_P(QuantileMonotone, Monotone)
{
    mbias::Rng rng(GetParam());
    Sample s;
    for (int i = 0; i < 57; ++i)
        s.add(rng.nextDouble() * 100.0);
    double prev = s.quantile(0.0);
    for (double q = 0.05; q <= 1.0; q += 0.05) {
        const double cur = s.quantile(q);
        EXPECT_GE(cur, prev);
        prev = cur;
    }
    EXPECT_DOUBLE_EQ(s.quantile(0.0), s.min());
    EXPECT_DOUBLE_EQ(s.quantile(1.0), s.max());
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantileMonotone, ::testing::Range(0, 8));

} // namespace
