/** @file Tests for ANOVA, regression, correlation, sign test, KDE. */
#include <gtest/gtest.h>

#include <cmath>

#include "base/random.hh"
#include "stats/anova.hh"
#include "stats/density.hh"
#include "stats/regression.hh"
#include "stats/signtest.hh"

namespace
{

using namespace mbias::stats;
using mbias::Rng;

// ---------------------------------------------------------------- ANOVA

TEST(Anova, IdenticalGroupsNoEffect)
{
    Sample g({1.0, 2.0, 3.0});
    auto r = oneWayAnova({g, g, g});
    EXPECT_NEAR(r.fStatistic, 0.0, 1e-12);
    EXPECT_NEAR(r.pValue, 1.0, 1e-9);
    EXPECT_FALSE(r.significant());
    EXPECT_NEAR(r.etaSquared, 0.0, 1e-12);
}

TEST(Anova, SeparatedGroupsSignificant)
{
    Sample a({1.0, 1.1, 0.9});
    Sample b({5.0, 5.1, 4.9});
    Sample c({9.0, 9.1, 8.9});
    auto r = oneWayAnova({a, b, c});
    EXPECT_TRUE(r.significant());
    EXPECT_GT(r.etaSquared, 0.95);
    EXPECT_DOUBLE_EQ(r.dfBetween, 2.0);
    EXPECT_DOUBLE_EQ(r.dfWithin, 6.0);
}

TEST(Anova, HandComputedSumsOfSquares)
{
    // Groups {1,2} and {3,4}: grand mean 2.5,
    // ssBetween = 2*(1.5-2.5)^2 + 2*(3.5-2.5)^2 = 4,
    // ssWithin = 0.5 + 0.5 = 1.
    auto r = oneWayAnova({Sample({1.0, 2.0}), Sample({3.0, 4.0})});
    EXPECT_DOUBLE_EQ(r.ssBetween, 4.0);
    EXPECT_DOUBLE_EQ(r.ssWithin, 1.0);
    EXPECT_DOUBLE_EQ(r.fStatistic, 4.0 / (1.0 / 2.0));
}

TEST(Anova, ZeroWithinVarianceExactDifference)
{
    auto r = oneWayAnova({Sample({1.0, 1.0}), Sample({2.0, 2.0})});
    EXPECT_TRUE(std::isinf(r.fStatistic));
    EXPECT_DOUBLE_EQ(r.pValue, 0.0);
}

// ----------------------------------------------------------- regression

TEST(Regression, ExactLine)
{
    auto fit = linearRegression({1, 2, 3, 4}, {3, 5, 7, 9}); // y = 2x+1
    EXPECT_NEAR(fit.slope, 2.0, 1e-12);
    EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
    EXPECT_NEAR(fit.r2, 1.0, 1e-12);
    EXPECT_NEAR(fit.predict(10.0), 21.0, 1e-10);
    EXPECT_NEAR(fit.slopeStderr, 0.0, 1e-9);
}

TEST(Regression, NoisyLineRecoversSlope)
{
    Rng rng(9);
    std::vector<double> x, y;
    for (int i = 0; i < 200; ++i) {
        x.push_back(i);
        y.push_back(3.0 * i + 5.0 + rng.nextGaussian());
    }
    auto fit = linearRegression(x, y);
    EXPECT_NEAR(fit.slope, 3.0, 0.01);
    EXPECT_GT(fit.r2, 0.999);
}

TEST(Correlation, PerfectAndInverse)
{
    EXPECT_NEAR(pearson({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
    EXPECT_NEAR(pearson({1, 2, 3}, {6, 4, 2}), -1.0, 1e-12);
}

TEST(Correlation, ConstantSeriesIsZero)
{
    EXPECT_DOUBLE_EQ(pearson({1, 1, 1}, {2, 4, 6}), 0.0);
}

TEST(Correlation, SpearmanMonotoneNonlinear)
{
    // y = x^3 is monotone: spearman 1, pearson < 1.
    std::vector<double> x{1, 2, 3, 4, 5};
    std::vector<double> y{1, 8, 27, 64, 125};
    EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
    EXPECT_LT(pearson(x, y), 1.0);
}

TEST(Correlation, SpearmanHandlesTies)
{
    // Ties share mean ranks; result must be finite and sane.
    const double r = spearman({1, 1, 2, 3}, {10, 10, 20, 30});
    EXPECT_NEAR(r, 1.0, 1e-12);
}

// ------------------------------------------------------------ sign test

TEST(SignTest, AllPositiveSignificant)
{
    std::vector<double> a{2, 3, 4, 5, 6, 7, 8, 9};
    std::vector<double> b{1, 2, 3, 4, 5, 6, 7, 8};
    auto r = signTest(a, b);
    EXPECT_EQ(r.positive, 8);
    EXPECT_EQ(r.negative, 0);
    EXPECT_NEAR(r.pValue, 2.0 / 256.0, 1e-12);
    EXPECT_TRUE(r.significant());
}

TEST(SignTest, BalancedNotSignificant)
{
    std::vector<double> a{1, 3, 1, 3, 1, 3};
    std::vector<double> b{2, 2, 2, 2, 2, 2};
    auto r = signTest(a, b);
    EXPECT_EQ(r.positive, 3);
    EXPECT_EQ(r.negative, 3);
    EXPECT_FALSE(r.significant());
}

TEST(SignTest, TiesExcluded)
{
    std::vector<double> a{1, 2, 3};
    std::vector<double> b{1, 2, 2};
    auto r = signTest(a, b);
    EXPECT_EQ(r.ties, 2);
    EXPECT_EQ(r.positive, 1);
    EXPECT_NEAR(r.pValue, 1.0, 1e-12);
}

TEST(SignTest, AllTies)
{
    std::vector<double> a{1, 1};
    auto r = signTest(a, a);
    EXPECT_EQ(r.ties, 2);
    EXPECT_DOUBLE_EQ(r.pValue, 1.0);
}

// ------------------------------------------------------------------ KDE

TEST(Kde, IntegratesToRoughlyOne)
{
    Rng rng(21);
    Sample s;
    for (int i = 0; i < 200; ++i)
        s.add(rng.nextGaussian());
    KernelDensity kde(s);
    // Trapezoid over a wide grid.
    double integral = 0.0;
    const double lo = -6.0, hi = 6.0;
    const int n = 600;
    for (int i = 0; i < n; ++i) {
        const double x = lo + (hi - lo) * i / (n - 1);
        integral += kde.at(x) * (hi - lo) / (n - 1);
    }
    EXPECT_NEAR(integral, 1.0, 0.02);
}

TEST(Kde, PeaksNearMode)
{
    Sample s({0.0, 0.1, -0.1, 0.05, -0.05, 10.0});
    KernelDensity kde(s, 0.5); // narrow bandwidth resolves both modes
    EXPECT_GT(kde.at(0.0), kde.at(5.0));
    EXPECT_GT(kde.at(10.0), kde.at(5.0));
}

TEST(Kde, GridSpansData)
{
    Sample s({1.0, 2.0, 3.0});
    KernelDensity kde(s);
    auto grid = kde.grid(10);
    EXPECT_EQ(grid.size(), 10u);
    EXPECT_LT(grid.front().first, 1.0);
    EXPECT_GT(grid.back().first, 3.0);
}

TEST(Violin, QuartilesAndStrip)
{
    Sample s({1, 2, 3, 4, 5, 6, 7, 8, 9});
    auto v = ViolinSummary::of(s);
    EXPECT_DOUBLE_EQ(v.min, 1.0);
    EXPECT_DOUBLE_EQ(v.median, 5.0);
    EXPECT_DOUBLE_EQ(v.max, 9.0);
    EXPECT_DOUBLE_EQ(v.p25, 3.0);
    EXPECT_DOUBLE_EQ(v.p75, 7.0);
    const std::string strip = v.strip(s, 20);
    EXPECT_EQ(strip.size(), 20u);
}

} // namespace
