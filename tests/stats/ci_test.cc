/** @file Tests for confidence intervals and the Welch t-test. */
#include <gtest/gtest.h>

#include "base/random.hh"
#include "stats/ci.hh"

namespace
{

using namespace mbias::stats;
using mbias::Rng;

TEST(TInterval, HandComputed)
{
    // n=4, mean=2.5, sd=~1.29099, se=0.645497, t*(0.95, 3)=3.18245.
    Sample s({1.0, 2.0, 3.0, 4.0});
    auto ci = tInterval(s, 0.95);
    EXPECT_DOUBLE_EQ(ci.estimate, 2.5);
    EXPECT_NEAR(ci.halfWidth(), 3.18245 * 0.6454972244, 1e-3);
    EXPECT_TRUE(ci.contains(2.5));
    EXPECT_NEAR(ci.lower + ci.upper, 5.0, 1e-12);
}

TEST(TInterval, NarrowsWithMoreData)
{
    Rng rng(5);
    Sample small_n, large_n;
    for (int i = 0; i < 8; ++i)
        small_n.add(rng.nextGaussian());
    for (int i = 0; i < 512; ++i)
        large_n.add(rng.nextGaussian());
    EXPECT_LT(tInterval(large_n).halfWidth(),
              tInterval(small_n).halfWidth());
}

TEST(TInterval, HigherConfidenceIsWider)
{
    Sample s({1.0, 2.0, 3.0, 4.0, 5.0});
    EXPECT_LT(tInterval(s, 0.90).halfWidth(),
              tInterval(s, 0.99).halfWidth());
}

TEST(TInterval, CoverageProperty)
{
    // ~95% of intervals from N(0,1) samples should contain 0.
    Rng rng(11);
    int covered = 0;
    const int trials = 400;
    for (int t = 0; t < trials; ++t) {
        Sample s;
        for (int i = 0; i < 12; ++i)
            s.add(rng.nextGaussian());
        covered += tInterval(s, 0.95).contains(0.0);
    }
    EXPECT_GE(covered, trials * 90 / 100);
    EXPECT_LE(covered, trials * 99 / 100);
}

TEST(Bootstrap, ContainsMeanAndIsDeterministic)
{
    Sample s({1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0});
    Rng r1(3), r2(3);
    auto a = bootstrapInterval(s, r1, 500);
    auto b = bootstrapInterval(s, r2, 500);
    EXPECT_DOUBLE_EQ(a.lower, b.lower);
    EXPECT_DOUBLE_EQ(a.upper, b.upper);
    EXPECT_TRUE(a.contains(s.mean()));
    EXPECT_GT(a.upper, a.lower);
}

TEST(Bootstrap, DegenerateSampleCollapses)
{
    Sample s({5.0, 5.0, 5.0, 5.0});
    Rng rng(1);
    auto ci = bootstrapInterval(s, rng, 200);
    EXPECT_DOUBLE_EQ(ci.lower, 5.0);
    EXPECT_DOUBLE_EQ(ci.upper, 5.0);
}

TEST(WelchTTest, IdenticalSamplesP1)
{
    Sample a({1.0, 2.0, 3.0});
    EXPECT_NEAR(welchTTestPValue(a, a), 1.0, 1e-12);
}

TEST(WelchTTest, SeparatedSamplesSmallP)
{
    Sample a({1.0, 1.1, 0.9, 1.05, 0.95});
    Sample b({9.0, 9.1, 8.9, 9.05, 8.95});
    EXPECT_LT(welchTTestPValue(a, b), 1e-6);
}

TEST(WelchTTest, OverlappingSamplesLargeP)
{
    Sample a({1.0, 2.0, 3.0, 4.0});
    Sample b({1.5, 2.5, 3.5, 2.0});
    EXPECT_GT(welchTTestPValue(a, b), 0.3);
}

TEST(WelchTTest, FalsePositiveRate)
{
    Rng rng(77);
    int rejections = 0;
    const int trials = 300;
    for (int t = 0; t < trials; ++t) {
        Sample a, b;
        for (int i = 0; i < 10; ++i) {
            a.add(rng.nextGaussian());
            b.add(rng.nextGaussian());
        }
        rejections += welchTTestPValue(a, b) < 0.05;
    }
    // Should be near 5%.
    EXPECT_LE(rejections, trials * 10 / 100);
}

TEST(RatioInterval, CenteredOnRatio)
{
    Sample num({10.0, 10.2, 9.8, 10.1});
    Sample den({5.0, 5.1, 4.9, 5.05});
    auto ci = ratioInterval(num, den);
    EXPECT_NEAR(ci.estimate, num.mean() / den.mean(), 1e-12);
    EXPECT_TRUE(ci.contains(2.0));
    EXPECT_LT(ci.upper - ci.lower, 0.5);
}

TEST(ConfidenceInterval, Predicates)
{
    ConfidenceInterval ci;
    ci.estimate = 1.05;
    ci.lower = 1.02;
    ci.upper = 1.08;
    EXPECT_TRUE(ci.entirelyAbove(1.0));
    EXPECT_FALSE(ci.entirelyBelow(1.0));
    EXPECT_FALSE(ci.contains(1.0));
    EXPECT_TRUE(ci.contains(1.05));
}

} // namespace
