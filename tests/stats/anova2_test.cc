/** @file Tests for the two-way (factorial) ANOVA. */
#include <gtest/gtest.h>

#include <cmath>

#include "base/random.hh"
#include "stats/anova2.hh"

namespace
{

using namespace mbias::stats;
using mbias::Rng;

/** Builds a balanced 2x2 (or axb) design from a cell-mean function. */
std::vector<std::vector<Sample>>
design(unsigned na, unsigned nb, unsigned reps,
       const std::function<double(unsigned, unsigned)> &mean, double sd,
       std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::vector<Sample>> cells(na,
                                           std::vector<Sample>(nb));
    for (unsigned a = 0; a < na; ++a)
        for (unsigned b = 0; b < nb; ++b)
            for (unsigned r = 0; r < reps; ++r)
                cells[a][b].add(mean(a, b) + sd * rng.nextGaussian());
    return cells;
}

TEST(TwoWayAnova, PureNoiseNothingSignificant)
{
    auto cells = design(3, 3, 8, [](unsigned, unsigned) { return 5.0; },
                        1.0, 11);
    auto r = twoWayAnova(cells);
    EXPECT_FALSE(r.mainEffectASignificant());
    EXPECT_FALSE(r.mainEffectBSignificant());
    EXPECT_FALSE(r.interactionSignificant());
}

TEST(TwoWayAnova, MainEffectAOnly)
{
    auto cells = design(
        3, 3, 8, [](unsigned a, unsigned) { return 10.0 * a; }, 0.5, 13);
    auto r = twoWayAnova(cells);
    EXPECT_TRUE(r.mainEffectASignificant());
    EXPECT_FALSE(r.mainEffectBSignificant());
    EXPECT_FALSE(r.interactionSignificant());
    EXPECT_GT(r.fA, r.fB);
}

TEST(TwoWayAnova, AdditiveEffectsNoInteraction)
{
    auto cells = design(
        2, 2, 10,
        [](unsigned a, unsigned b) { return 5.0 * a + 3.0 * b; }, 0.5,
        17);
    auto r = twoWayAnova(cells);
    EXPECT_TRUE(r.mainEffectASignificant());
    EXPECT_TRUE(r.mainEffectBSignificant());
    EXPECT_FALSE(r.interactionSignificant());
}

TEST(TwoWayAnova, CrossoverInteractionDetected)
{
    // Classic crossover: effect of B flips sign with A; main effects
    // cancel but the interaction is strong.
    auto cells = design(
        2, 2, 10,
        [](unsigned a, unsigned b) { return (a == b) ? 10.0 : 0.0; },
        0.5, 19);
    auto r = twoWayAnova(cells);
    EXPECT_TRUE(r.interactionSignificant());
    EXPECT_GT(r.fAB, r.fA);
    EXPECT_GT(r.fAB, r.fB);
}

TEST(TwoWayAnova, SumOfSquaresDecomposition)
{
    auto cells = design(
        2, 3, 4,
        [](unsigned a, unsigned b) { return 2.0 * a + 1.0 * b * b; },
        1.0, 23);
    auto r = twoWayAnova(cells);
    // Total SS equals the sum of the components.
    double grand_sum = 0.0;
    std::size_t n = 0;
    for (const auto &row : cells)
        for (const auto &c : row) {
            grand_sum += c.sum();
            n += c.count();
        }
    const double grand_mean = grand_sum / double(n);
    double ss_total = 0.0;
    for (const auto &row : cells)
        for (const auto &c : row)
            for (double v : c.values())
                ss_total += (v - grand_mean) * (v - grand_mean);
    EXPECT_NEAR(ss_total, r.ssA + r.ssB + r.ssAB + r.ssWithin, 1e-8);
}

TEST(TwoWayAnova, DegreesOfFreedom)
{
    auto cells = design(3, 4, 5, [](unsigned, unsigned) { return 1.0; },
                        1.0, 29);
    auto r = twoWayAnova(cells);
    EXPECT_DOUBLE_EQ(r.dfA, 2.0);
    EXPECT_DOUBLE_EQ(r.dfB, 3.0);
    EXPECT_DOUBLE_EQ(r.dfAB, 6.0);
    EXPECT_DOUBLE_EQ(r.dfWithin, 3.0 * 4.0 * 4.0);
}

TEST(TwoWayAnova, ZeroWithinVariance)
{
    std::vector<std::vector<Sample>> cells(2, std::vector<Sample>(2));
    cells[0][0] = Sample({1.0, 1.0});
    cells[0][1] = Sample({2.0, 2.0});
    cells[1][0] = Sample({3.0, 3.0});
    cells[1][1] = Sample({4.0, 4.0});
    auto r = twoWayAnova(cells);
    EXPECT_TRUE(std::isinf(r.fA));
    EXPECT_DOUBLE_EQ(r.pA, 0.0);
    EXPECT_DOUBLE_EQ(r.pAB, 1.0); // perfectly additive
}

} // namespace
