/**
 * @file
 * StreamingSample versus the materializing Sample: single-pass
 * Welford moments must agree with the two-pass reference to rounding,
 * exact-mode quantiles must agree bitwise, and merging chunks must
 * reproduce sequential feeding.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "base/random.hh"
#include "stats/sample.hh"
#include "stats/streaming.hh"

namespace
{

using mbias::Rng;
using mbias::stats::Sample;
using mbias::stats::StreamingSample;

std::vector<double>
values(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<double> v;
    v.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        v.push_back(1.0 + 0.2 * rng.nextGaussian());
    return v;
}

TEST(StreamingSample, MatchesSampleMoments)
{
    const auto v = values(997, 3);
    Sample s;
    StreamingSample ss;
    for (double x : v) {
        s.add(x);
        ss.add(x);
    }
    EXPECT_EQ(ss.count(), s.count());
    EXPECT_NEAR(ss.mean(), s.mean(), 1e-12 * std::abs(s.mean()));
    EXPECT_NEAR(ss.variance(), s.variance(),
                1e-10 * std::abs(s.variance()));
    EXPECT_NEAR(ss.stddev(), s.stddev(), 1e-10 * s.stddev());
    EXPECT_NEAR(ss.stderror(), s.stderror(), 1e-10 * s.stderror());
    EXPECT_EQ(ss.min(), s.min());
    EXPECT_EQ(ss.max(), s.max());
    EXPECT_NEAR(ss.sum(), s.sum(), 1e-10 * std::abs(s.sum()));
}

TEST(StreamingSample, WelfordSurvivesLargeOffset)
{
    // Classic catastrophic-cancellation probe: tiny variance riding a
    // huge mean.  The naive sum-of-squares formula returns garbage
    // here; Welford must not.
    StreamingSample ss;
    for (double x : {1e9 + 4.0, 1e9 + 7.0, 1e9 + 13.0, 1e9 + 16.0})
        ss.add(x);
    EXPECT_NEAR(ss.variance(), 30.0, 1e-6);
    EXPECT_NEAR(ss.mean(), 1e9 + 10.0, 1e-3);
}

TEST(StreamingSample, MergeMatchesSequentialToRounding)
{
    const auto v = values(600, 5);
    StreamingSample whole, left, right;
    for (std::size_t i = 0; i < v.size(); ++i) {
        whole.add(v[i]);
        (i < 250 ? left : right).add(v[i]);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), whole.count());
    EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
    EXPECT_NEAR(left.variance(), whole.variance(), 1e-12);
    EXPECT_EQ(left.min(), whole.min());
    EXPECT_EQ(left.max(), whole.max());
}

TEST(StreamingSample, ExactQuantilesMatchSampleBitwise)
{
    const auto v = values(512, 7);
    Sample s;
    StreamingSample ss(1024); // capacity > count: exact mode
    for (double x : v) {
        s.add(x);
        ss.add(x);
    }
    ASSERT_TRUE(ss.quantilesExact());
    for (double q : {0.0, 0.025, 0.25, 0.5, 0.75, 0.975, 1.0})
        EXPECT_EQ(ss.quantile(q), s.quantile(q)) << "q=" << q;
    EXPECT_EQ(ss.median(), s.median());
}

TEST(StreamingSample, ReservoirQuantilesStayBounded)
{
    const auto v = values(5000, 9);
    StreamingSample ss(256); // capacity < count: reservoir mode
    for (double x : v)
        ss.add(x);
    EXPECT_FALSE(ss.quantilesExact());
    const double med = ss.median();
    EXPECT_GE(med, ss.min());
    EXPECT_LE(med, ss.max());
    // The reservoir is an unbiased sample; its median lands near the
    // true one (generous tolerance, but this would catch a broken
    // replacement policy that e.g. kept only early or late values).
    Sample s;
    for (double x : v)
        s.add(x);
    EXPECT_NEAR(med, s.median(), 0.1);
}

TEST(StreamingSample, ReservoirIsDeterministic)
{
    const auto v = values(5000, 11);
    StreamingSample a(64), b(64);
    for (double x : v) {
        a.add(x);
        b.add(x);
    }
    for (double q : {0.1, 0.5, 0.9})
        EXPECT_EQ(a.quantile(q), b.quantile(q));
}

TEST(StreamingSample, EmptyAndSingleton)
{
    StreamingSample ss(8);
    EXPECT_TRUE(ss.empty());
    ss.add(3.5);
    EXPECT_EQ(ss.count(), 1u);
    EXPECT_EQ(ss.mean(), 3.5);
    EXPECT_EQ(ss.min(), 3.5);
    EXPECT_EQ(ss.max(), 3.5);
    EXPECT_EQ(ss.quantile(0.5), 3.5);
}

} // namespace
