/** @file Tests for the optimizing compiler's passes. */
#include <gtest/gtest.h>

#include "isa/builder.hh"
#include "toolchain/compiler.hh"

namespace
{

using namespace mbias;
using namespace mbias::isa;
using namespace mbias::isa::reg;
using toolchain::Compiler;
using toolchain::CompilerVendor;
using toolchain::OptLevel;

/** A module with a small leaf callee and a caller. */
std::vector<Module>
inlineFixture()
{
    ProgramBuilder lib("lib");
    lib.func("tiny"); // 3 insts: inlinable everywhere
    lib.addi(a0, a0, 5);
    lib.ret();
    lib.endFunc();

    ProgramBuilder main_mod("main_mod");
    main_mod.func("main");
    main_mod.li(a0, 1);
    main_mod.call("tiny");
    main_mod.call("tiny");
    main_mod.halt();
    main_mod.endFunc();

    std::vector<Module> mods;
    mods.push_back(main_mod.build());
    mods.push_back(lib.build());
    return mods;
}

TEST(CompilerTuning, VendorsDiffer)
{
    auto g = toolchain::CompilerTuning::forVendor(CompilerVendor::GccLike,
                                                  OptLevel::O3);
    auto i = toolchain::CompilerTuning::forVendor(CompilerVendor::IccLike,
                                                  OptLevel::O3);
    EXPECT_NE(g.inlineMaxInsts, i.inlineMaxInsts);
    EXPECT_NE(g.unrollFactor, i.unrollFactor);
    EXPECT_NE(g.frameAlignBytes, i.frameAlignBytes);
}

TEST(CompilerTuning, O0DoesNothingAggressive)
{
    auto t = toolchain::CompilerTuning::forVendor(CompilerVendor::GccLike,
                                                  OptLevel::O0);
    EXPECT_FALSE(t.inlineLeafCalls);
    EXPECT_FALSE(t.unrollLoops);
    EXPECT_EQ(t.scheduleWindowPasses, 0u);
}

TEST(Inline, O3InlinesLeafCalls)
{
    Compiler cc(CompilerVendor::GccLike, OptLevel::O3);
    auto out = cc.compile(inlineFixture());
    EXPECT_EQ(cc.lastStats().callsInlined, 2u);

    const Function *main_f = nullptr;
    for (const auto &m : out)
        if (const auto *f = m.findFunction("main"))
            main_f = f;
    ASSERT_NE(main_f, nullptr);
    for (const auto &in : main_f->insts())
        EXPECT_NE(in.op, Opcode::Call) << "call survived inlining";
    // li + 2x(addi) + halt.
    EXPECT_EQ(main_f->insts().size(), 4u);
}

TEST(Inline, O2DoesNotInline)
{
    Compiler cc(CompilerVendor::GccLike, OptLevel::O2);
    auto out = cc.compile(inlineFixture());
    EXPECT_EQ(cc.lastStats().callsInlined, 0u);
    unsigned calls = 0;
    for (const auto &m : out)
        for (const auto &f : m.functions())
            for (const auto &in : f.insts())
                calls += in.op == Opcode::Call;
    EXPECT_EQ(calls, 2u);
}

TEST(Inline, SpUsingCalleeIsNotInlined)
{
    ProgramBuilder lib("lib");
    lib.func("framed");
    lib.addi(sp, sp, -16);
    lib.addi(sp, sp, 16);
    lib.ret();
    lib.endFunc();
    ProgramBuilder m("m");
    m.func("main");
    m.call("framed");
    m.halt();
    m.endFunc();
    std::vector<Module> mods;
    mods.push_back(m.build());
    mods.push_back(lib.build());

    Compiler cc(CompilerVendor::IccLike, OptLevel::O3);
    cc.compile(mods);
    EXPECT_EQ(cc.lastStats().callsInlined, 0u);
}

TEST(Inline, BranchyCalleeLabelsRemapped)
{
    ProgramBuilder lib("lib");
    lib.func("absv"); // |a0| with an internal branch
    lib.bge(a0, zero, "pos");
    lib.sub(a0, zero, a0);
    lib.label("pos");
    lib.ret();
    lib.endFunc();
    ProgramBuilder m("m");
    m.func("main");
    m.li(a0, -5);
    m.call("absv");
    m.halt();
    m.endFunc();
    std::vector<Module> mods;
    mods.push_back(m.build());
    mods.push_back(lib.build());

    Compiler cc(CompilerVendor::GccLike, OptLevel::O3);
    auto out = cc.compile(mods);
    EXPECT_EQ(cc.lastStats().callsInlined, 1u);
    const Function *main_f = out[0].findFunction("main");
    ASSERT_NE(main_f, nullptr);
    EXPECT_TRUE(main_f->allLabelsBound());
    // The branch-to-ret maps to the instruction after the body (halt).
    const auto &br = main_f->insts()[1];
    ASSERT_EQ(br.op, Opcode::Bge);
    EXPECT_EQ(main_f->labelTarget(br.target), 3u);
}

/** A function with one unrollable innermost loop. */
Function
loopFunction()
{
    ProgramBuilder b("t");
    b.func("f");
    b.li(t0, 10);
    b.label("loop");
    b.addi(t1, t1, 3);
    b.addi(t0, t0, -1);
    b.bne(t0, zero, "loop");
    b.ret();
    b.endFunc();
    return b.build().functions()[0];
}

TEST(Unroll, GccDuplicatesBodyOnce)
{
    std::vector<Module> mods;
    Module m("m");
    m.addFunction(loopFunction());
    mods.push_back(std::move(m));

    Compiler cc(CompilerVendor::GccLike, OptLevel::O3); // factor 2
    auto out = cc.compile(mods);
    EXPECT_EQ(cc.lastStats().loopsUnrolled, 1u);

    const Function &f = out[0].functions()[0];
    unsigned branches = 0;
    for (const auto &in : f.insts())
        branches += isCondBranch(in.op);
    EXPECT_EQ(branches, 2u); // inverted exit + back branch
    EXPECT_TRUE(f.allLabelsBound());
}

TEST(Unroll, InvertedExitBranch)
{
    std::vector<Module> mods;
    Module m("m");
    m.addFunction(loopFunction());
    mods.push_back(std::move(m));

    Compiler cc(CompilerVendor::GccLike, OptLevel::O3);
    auto out = cc.compile(mods);
    const Function &f = out[0].functions()[0];
    // First cond branch must be the inverted (Beq) exit.
    for (const auto &in : f.insts()) {
        if (isCondBranch(in.op)) {
            EXPECT_EQ(in.op, Opcode::Beq);
            break;
        }
    }
}

TEST(Unroll, LoopWithCallIsSkipped)
{
    ProgramBuilder b("t");
    b.func("f");
    b.li(t0, 10);
    b.label("loop");
    b.call("g");
    b.addi(t0, t0, -1);
    b.bne(t0, zero, "loop");
    b.ret();
    b.endFunc();
    b.func("g");
    b.addi(sp, sp, -16); // big enough not to be inlined? no: sp use
    b.addi(sp, sp, 16);
    b.ret();
    b.endFunc();
    std::vector<Module> mods;
    mods.push_back(b.build());

    Compiler cc(CompilerVendor::IccLike, OptLevel::O3);
    cc.compile(mods);
    EXPECT_EQ(cc.lastStats().loopsUnrolled, 0u);
}

TEST(Schedule, HoistsLoadAboveIndependentAlu)
{
    ProgramBuilder b("t");
    b.func("f");
    b.addi(t0, t1, 1);     // independent ALU
    b.ld8(t2, t3, 0);      // load should be hoisted above it
    b.add(t4, t2, t2);     // consumer
    b.ret();
    b.endFunc();
    std::vector<Module> mods;
    mods.push_back(b.build());

    Compiler cc(CompilerVendor::GccLike, OptLevel::O2);
    auto out = cc.compile(mods);
    EXPECT_GE(cc.lastStats().instsReordered, 1u);
    const auto &insts = out[0].functions()[0].insts();
    EXPECT_EQ(insts[0].op, Opcode::Ld8);
    EXPECT_EQ(insts[1].op, Opcode::Addi);
}

TEST(Schedule, RespectsDependences)
{
    ProgramBuilder b("t");
    b.func("f");
    b.addi(t3, t1, 1); // produces the load's base register
    b.ld8(t2, t3, 0);  // must NOT move above it
    b.ret();
    b.endFunc();
    std::vector<Module> mods;
    mods.push_back(b.build());

    Compiler cc(CompilerVendor::IccLike, OptLevel::O2);
    auto out = cc.compile(mods);
    const auto &insts = out[0].functions()[0].insts();
    EXPECT_EQ(insts[0].op, Opcode::Addi);
    EXPECT_EQ(insts[1].op, Opcode::Ld8);
}

TEST(Schedule, NeverReordersMemoryOps)
{
    ProgramBuilder b("t");
    b.func("f");
    b.st8(t0, t1, 0);
    b.ld8(t2, t3, 0);
    b.ret();
    b.endFunc();
    std::vector<Module> mods;
    mods.push_back(b.build());

    Compiler cc(CompilerVendor::IccLike, OptLevel::O3);
    auto out = cc.compile(mods);
    const auto &insts = out[0].functions()[0].insts();
    EXPECT_EQ(insts[0].op, Opcode::St8);
    EXPECT_EQ(insts[1].op, Opcode::Ld8);
}

TEST(Frame, RoundedPerVendorAndLevel)
{
    auto make = [] {
        ProgramBuilder b("t");
        b.func("f");
        b.addi(sp, sp, -520);
        b.addi(sp, sp, 520);
        b.ret();
        b.endFunc();
        std::vector<Module> mods;
        mods.push_back(b.build());
        return mods;
    };

    Compiler gcc2(CompilerVendor::GccLike, OptLevel::O2);
    auto out = gcc2.compile(make());
    EXPECT_EQ(out[0].functions()[0].insts()[0].imm, -520);

    Compiler gcc3(CompilerVendor::GccLike, OptLevel::O3);
    out = gcc3.compile(make());
    EXPECT_EQ(out[0].functions()[0].insts()[0].imm, -528);
    EXPECT_EQ(out[0].functions()[0].insts()[1].imm, 528);

    Compiler icc3(CompilerVendor::IccLike, OptLevel::O3);
    out = icc3.compile(make());
    EXPECT_EQ(out[0].functions()[0].insts()[0].imm, -544);
}

TEST(Frame, NonSpAddiUntouched)
{
    ProgramBuilder b("t");
    b.func("f");
    b.addi(t0, t0, -520);
    b.ret();
    b.endFunc();
    std::vector<Module> mods;
    mods.push_back(b.build());
    Compiler cc(CompilerVendor::IccLike, OptLevel::O3);
    auto out = cc.compile(mods);
    EXPECT_EQ(out[0].functions()[0].insts()[0].imm, -520);
}

TEST(Align, LoopHeadPaddedWithWideNops)
{
    // li(6B) + addi(4B) => loop head at offset 10; O2 pads to 16.
    ProgramBuilder b("t");
    b.func("f");
    b.li(t0, 1000);
    b.addi(t1, t1, 0);
    b.label("loop");
    b.addi(t0, t0, -1);
    b.bne(t0, zero, "loop");
    b.ret();
    b.endFunc();
    std::vector<Module> mods;
    mods.push_back(b.build());

    Compiler cc(CompilerVendor::GccLike, OptLevel::O2);
    auto out = cc.compile(mods);
    EXPECT_GT(cc.lastStats().alignmentNopsInserted, 0u);
    const Function &f = out[0].functions()[0];
    // Offset of the loop label must now be 16-aligned.
    std::uint64_t off = 0;
    std::uint32_t head = 0;
    for (const auto &in : f.insts()) {
        if (isCondBranch(in.op)) {
            head = f.labelTarget(in.target);
            break;
        }
    }
    for (std::uint32_t i = 0; i < head; ++i)
        off += f.insts()[i].encodedSize();
    EXPECT_EQ(off % 16, 0u);
}

TEST(Align, FunctionAlignmentAttributeSet)
{
    std::vector<Module> mods;
    Module m("m");
    m.addFunction(loopFunction());
    mods.push_back(std::move(m));
    Compiler cc(CompilerVendor::IccLike, OptLevel::O3);
    auto out = cc.compile(mods);
    EXPECT_EQ(out[0].functions()[0].alignment(), 32u);
}

TEST(Compiler, SourceModulesUntouched)
{
    auto mods = inlineFixture();
    const auto before = mods[0].functions()[0].insts().size();
    Compiler cc(CompilerVendor::GccLike, OptLevel::O3);
    cc.compile(mods);
    EXPECT_EQ(mods[0].functions()[0].insts().size(), before);
}

} // namespace
