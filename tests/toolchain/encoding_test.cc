/** @file Round-trip tests for the binary codec. */
#include <gtest/gtest.h>

#include "isa/builder.hh"
#include "toolchain/compiler.hh"
#include "toolchain/encoding.hh"
#include "toolchain/linker.hh"
#include "workloads/registry.hh"

namespace
{

using namespace mbias;
using namespace mbias::isa;
using toolchain::decode;
using toolchain::encode;
using toolchain::encodeProgram;
using toolchain::LinkedProgram;

LinkedProgram
linkWorkload(const std::string &name, toolchain::OptLevel level)
{
    const auto &w = workloads::findWorkload(name);
    workloads::WorkloadConfig cfg;
    toolchain::Compiler cc(toolchain::CompilerVendor::GccLike, level);
    return toolchain::Linker().link(cc.compile(w.build(cfg)));
}

TEST(Encoding, SizesMatchTheModel)
{
    auto prog = linkWorkload("perl", toolchain::OptLevel::O3);
    for (const auto &pi : prog.code)
        EXPECT_EQ(encode(pi, prog).size(), pi.size) << pi.inst.str();
}

TEST(Encoding, ImageCoversTextSegment)
{
    auto prog = linkWorkload("bzip", toolchain::OptLevel::O2);
    auto image = encodeProgram(prog);
    EXPECT_EQ(image.size(), prog.codeEnd - prog.codeBase);
    // The first byte of every instruction carries its encoding id, so
    // non-gap bytes are not all zero.
    unsigned nonzero = 0;
    for (auto b : image)
        nonzero += b != 0;
    EXPECT_GT(nonzero, image.size() / 3);
}

/** Round trip every instruction of every workload at both levels. */
class EncodingRoundTrip
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(EncodingRoundTrip, DecodeInvertsEncode)
{
    for (auto level :
         {toolchain::OptLevel::O2, toolchain::OptLevel::O3}) {
        auto prog = linkWorkload(GetParam(), level);
        auto image = encodeProgram(prog);
        for (const auto &pi : prog.code) {
            const auto d =
                decode(image, pi.pc - prog.codeBase, prog.codeBase);
            ASSERT_EQ(d.size, pi.size) << pi.inst.str();
            EXPECT_EQ(d.inst.op, pi.inst.op) << pi.inst.str();
            switch (opClass(pi.inst.op)) {
              case OpClass::CondBranch:
                EXPECT_EQ(d.inst.rs1, pi.inst.rs1);
                EXPECT_EQ(d.inst.rs2, pi.inst.rs2);
                EXPECT_EQ(Addr(d.inst.imm),
                          prog.code[pi.targetIdx].pc)
                    << pi.inst.str();
                break;
              case OpClass::Jump:
              case OpClass::Call:
                EXPECT_EQ(Addr(d.inst.imm),
                          prog.code[pi.targetIdx].pc)
                    << pi.inst.str();
                break;
              case OpClass::Ret:
              case OpClass::Halt:
                break;
              case OpClass::Nop:
                EXPECT_EQ(d.size, pi.size);
                break;
              case OpClass::Load:
              case OpClass::Store:
                EXPECT_EQ(d.inst.rd, pi.inst.rd);
                EXPECT_EQ(d.inst.rs1, pi.inst.rs1);
                EXPECT_EQ(d.inst.imm, pi.inst.imm);
                break;
              default:
                EXPECT_EQ(d.inst.rd, pi.inst.rd);
                EXPECT_EQ(d.inst.rs1, pi.inst.rs1);
                if (pi.inst.op != Opcode::Li &&
                    pi.inst.op != Opcode::Addi &&
                    pi.inst.op != Opcode::Andi &&
                    pi.inst.op != Opcode::Ori &&
                    pi.inst.op != Opcode::Xori &&
                    pi.inst.op != Opcode::Slli &&
                    pi.inst.op != Opcode::Srli &&
                    pi.inst.op != Opcode::Srai &&
                    pi.inst.op != Opcode::Slti) {
                    EXPECT_EQ(d.inst.rs2, pi.inst.rs2);
                } else {
                    EXPECT_EQ(d.inst.imm, pi.inst.imm);
                }
                break;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Suite, EncodingRoundTrip,
    ::testing::ValuesIn(mbias::workloads::suiteNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

TEST(Encoding, NegativeImmediatesSurvive)
{
    // Direct unit check on sign extension via a tiny program.
    isa::ProgramBuilder b("t");
    b.func("main");
    b.addi(reg::sp, reg::sp, -520); // wide (won't fit int8)
    b.ld8(reg::t0, reg::sp, -8);    // narrow negative
    b.li(reg::t1, -1);              // 32-bit negative
    b.li(reg::t2, std::int64_t(0x8000000000000001ULL)); // 64-bit
    b.halt();
    b.endFunc();
    std::vector<isa::Module> mods;
    mods.push_back(b.build());
    auto prog = toolchain::Linker().link(mods);
    auto image = encodeProgram(prog);
    std::size_t off = 0;
    for (const auto &pi : prog.code) {
        auto d = decode(image, off, prog.codeBase);
        EXPECT_EQ(d.inst.imm, pi.inst.imm) << pi.inst.str();
        off += d.size;
    }
}

TEST(Encoding, DecodeSequentiallyWalksAFunction)
{
    auto prog = linkWorkload("milc", toolchain::OptLevel::O2);
    auto image = encodeProgram(prog);
    // Walk the first function byte-exactly.
    const auto &lf = prog.functions.front();
    std::size_t off = lf.base - prog.codeBase;
    std::uint32_t idx = lf.entryIdx;
    while (off < lf.base - prog.codeBase + lf.bytes) {
        auto d = decode(image, off, prog.codeBase);
        EXPECT_EQ(d.inst.op, prog.code[idx].inst.op);
        off += d.size;
        ++idx;
    }
    EXPECT_EQ(off, lf.base - prog.codeBase + lf.bytes);
}

} // namespace
