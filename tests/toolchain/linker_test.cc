/** @file Tests for link order, linker layout, and the loader. */
#include <gtest/gtest.h>

#include <set>

#include "isa/builder.hh"
#include "toolchain/linker.hh"
#include "toolchain/linkorder.hh"
#include "toolchain/loader.hh"

namespace
{

using namespace mbias;
using namespace mbias::isa;
using namespace mbias::isa::reg;
using toolchain::LinkedProgram;
using toolchain::Linker;
using toolchain::LinkOrder;
using toolchain::Loader;
using toolchain::LoaderConfig;

Module
simpleModule(const std::string &name, unsigned body_insts,
             const std::string &global = "")
{
    ProgramBuilder b(name);
    if (!global.empty())
        b.global(global, 64, 8);
    b.func(name + "_fn");
    for (unsigned i = 0; i < body_insts; ++i)
        b.addi(t0, t0, 1);
    b.ret();
    b.endFunc();
    return b.build();
}

std::vector<Module>
threeModules()
{
    std::vector<Module> mods;
    mods.push_back(simpleModule("beta", 3, "gb"));
    mods.push_back(simpleModule("alpha", 5, "ga"));
    mods.push_back(simpleModule("gamma", 7, "gc"));
    return mods;
}

// ----------------------------------------------------------- LinkOrder

TEST(LinkOrder, AsGivenIsIdentity)
{
    auto p = LinkOrder::asGiven().permutation({"b", "a", "c"});
    EXPECT_EQ(p, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(LinkOrder, AlphabeticalSortsByName)
{
    auto p = LinkOrder::alphabetical().permutation({"b", "a", "c"});
    EXPECT_EQ(p, (std::vector<std::size_t>{1, 0, 2}));
}

TEST(LinkOrder, SeededIsDeterministicPermutation)
{
    std::vector<std::string> names{"a", "b", "c", "d", "e", "f"};
    auto p1 = LinkOrder::shuffled(9).permutation(names);
    auto p2 = LinkOrder::shuffled(9).permutation(names);
    EXPECT_EQ(p1, p2);
    std::set<std::size_t> s(p1.begin(), p1.end());
    EXPECT_EQ(s.size(), names.size());
}

TEST(LinkOrder, DifferentSeedsUsuallyDiffer)
{
    std::vector<std::string> names{"a", "b", "c", "d", "e", "f", "g"};
    int distinct = 0;
    auto base = LinkOrder::shuffled(0).permutation(names);
    for (std::uint64_t s = 1; s <= 10; ++s)
        distinct += LinkOrder::shuffled(s).permutation(names) != base;
    EXPECT_GE(distinct, 8);
}

TEST(LinkOrder, ExplicitValidated)
{
    auto order = LinkOrder::explicitOrder({2, 0, 1});
    auto p = order.permutation({"a", "b", "c"});
    EXPECT_EQ(p, (std::vector<std::size_t>{2, 0, 1}));
}

TEST(LinkOrder, Str)
{
    EXPECT_EQ(LinkOrder::asGiven().str(), "as-given");
    EXPECT_EQ(LinkOrder::alphabetical().str(), "alphabetical");
    EXPECT_EQ(LinkOrder::shuffled(5).str(), "shuffled(5)");
}

// -------------------------------------------------------------- Linker

TEST(Linker, FunctionsDoNotOverlapAndAreAligned)
{
    auto mods = threeModules();
    for (auto &m : mods)
        for (auto &f : m.functions())
            f.setAlignment(16);
    auto prog = Linker().link(mods);

    ASSERT_EQ(prog.functions.size(), 3u);
    for (std::size_t i = 0; i < prog.functions.size(); ++i) {
        EXPECT_EQ(prog.functions[i].base % 16, 0u);
        if (i > 0) {
            EXPECT_GE(prog.functions[i].base,
                      prog.functions[i - 1].base +
                          prog.functions[i - 1].bytes);
        }
    }
}

TEST(Linker, InstructionAddressesAreContiguous)
{
    auto prog = Linker().link(threeModules());
    for (const auto &lf : prog.functions) {
        Addr expect = lf.base;
        for (std::uint32_t i = lf.entryIdx;
             i < lf.entryIdx + 1 || (i < prog.code.size() &&
                                     prog.code[i].pc < lf.base + lf.bytes);
             ++i) {
            if (prog.code[i].pc >= lf.base + lf.bytes)
                break;
            EXPECT_EQ(prog.code[i].pc, expect);
            expect += prog.code[i].size;
        }
    }
}

TEST(Linker, PermutationPreservesTotalCodeBytes)
{
    auto mods = threeModules();
    auto a = Linker().link(mods, LinkOrder::asGiven());
    auto b = Linker().link(mods, LinkOrder::shuffled(3));
    std::uint64_t bytes_a = 0, bytes_b = 0;
    for (const auto &f : a.functions)
        bytes_a += f.bytes;
    for (const auto &f : b.functions)
        bytes_b += f.bytes;
    EXPECT_EQ(bytes_a, bytes_b);
}

TEST(Linker, PermutationMovesFunctions)
{
    auto mods = threeModules();
    auto a = Linker().link(mods, LinkOrder::asGiven());
    auto b = Linker().link(mods, LinkOrder::alphabetical());
    // alpha_fn is placed second in as-given order, first alphabetically.
    const Addr base_a = a.functions[a.functionByName.at("alpha_fn")].base;
    const Addr base_b = b.functions[b.functionByName.at("alpha_fn")].base;
    EXPECT_NE(base_a, base_b);
    EXPECT_EQ(base_b, a.codeBase); // first function starts the text
}

TEST(Linker, CallsResolveToEntryPoints)
{
    ProgramBuilder m1("m1");
    m1.func("main");
    m1.call("callee");
    m1.halt();
    m1.endFunc();
    ProgramBuilder m2("m2");
    m2.func("callee");
    m2.ret();
    m2.endFunc();
    std::vector<Module> mods;
    mods.push_back(m1.build());
    mods.push_back(m2.build());

    auto prog = Linker().link(mods);
    const auto &call = prog.code[prog.entryOf("main")];
    ASSERT_EQ(call.inst.op, Opcode::Call);
    EXPECT_EQ(call.targetIdx, prog.entryOf("callee"));
}

TEST(Linker, BranchTargetsResolveWithinFunction)
{
    ProgramBuilder b("m");
    b.func("f");
    b.label("top");
    b.addi(t0, t0, 1);
    b.bne(t0, t1, "top");
    b.ret();
    b.endFunc();
    std::vector<Module> mods;
    mods.push_back(b.build());
    auto prog = Linker().link(mods);
    const auto &br = prog.code[1];
    ASSERT_TRUE(isCondBranch(br.inst.op));
    EXPECT_EQ(br.targetIdx, 0u);
}

TEST(Linker, LaRewrittenToAbsoluteLi)
{
    ProgramBuilder b("m");
    b.global("table", 256, 64);
    b.func("f");
    b.la(t0, "table");
    b.ret();
    b.endFunc();
    std::vector<Module> mods;
    mods.push_back(b.build());
    auto prog = Linker().link(mods);
    const auto &li = prog.code[0];
    EXPECT_EQ(li.inst.op, Opcode::Li);
    EXPECT_EQ(Addr(li.inst.imm), prog.globalAddr("table"));
    EXPECT_EQ(li.size, 6u);
}

TEST(Linker, DataSegmentLayout)
{
    auto prog = Linker().link(threeModules());
    EXPECT_EQ(prog.dataBase % 4096, 0u);
    EXPECT_GE(prog.dataBase, prog.codeEnd);
    // Globals in module order, aligned, non-overlapping.
    EXPECT_EQ(prog.globals.size(), 3u);
    for (std::size_t i = 0; i < prog.globals.size(); ++i) {
        EXPECT_EQ(prog.globals[i].addr % 8, 0u);
        if (i > 0) {
            EXPECT_GE(prog.globals[i].addr,
                      prog.globals[i - 1].addr + prog.globals[i - 1].size);
        }
    }
    EXPECT_EQ(prog.dataInit.size(), prog.dataEnd - prog.dataBase);
}

TEST(Linker, DataInitPlacedAtGlobalOffset)
{
    ProgramBuilder b("m");
    b.globalInit("blob", std::vector<std::uint8_t>{0xaa, 0xbb}, 8);
    b.func("f");
    b.ret();
    b.endFunc();
    std::vector<Module> mods;
    mods.push_back(b.build());
    auto prog = Linker().link(mods);
    const Addr off = prog.globalAddr("blob") - prog.dataBase;
    EXPECT_EQ(prog.dataInit[off], 0xaa);
    EXPECT_EQ(prog.dataInit[off + 1], 0xbb);
}

TEST(Linker, AddrToIdxCoversAllInstructions)
{
    auto prog = Linker().link(threeModules());
    EXPECT_EQ(prog.addrToIdx.size(), prog.code.size());
    for (std::uint32_t i = 0; i < prog.code.size(); ++i)
        EXPECT_EQ(prog.addrToIdx.at(prog.code[i].pc), i);
}

TEST(Linker, ModuleOrderRecorded)
{
    auto prog = Linker().link(threeModules(), LinkOrder::alphabetical());
    EXPECT_EQ(prog.moduleOrder,
              (std::vector<std::string>{"alpha", "beta", "gamma"}));
}

// -------------------------------------------------------------- Loader

std::vector<Module>
mainOnly()
{
    ProgramBuilder b("m");
    b.func("main");
    b.halt();
    b.endFunc();
    std::vector<Module> mods;
    mods.push_back(b.build());
    return mods;
}

TEST(Loader, EnvSizeShiftsStackPointer)
{
    auto prog0 = Linker().link(mainOnly());
    auto prog1 = Linker().link(mainOnly());
    LoaderConfig c0, c1;
    c0.envBytes = 0;
    c1.envBytes = 100;
    auto i0 = Loader::load(std::move(prog0), c0);
    auto i1 = Loader::load(std::move(prog1), c1);
    EXPECT_EQ(i0.initialSp - i1.initialSp, 100u);
}

TEST(Loader, SpRespectsOnlyTheAbiAlignment)
{
    auto prog = Linker().link(mainOnly());
    LoaderConfig c;
    c.envBytes = 3; // odd size: sp must drop to the 4-byte grid
    auto img = Loader::load(std::move(prog), c);
    EXPECT_EQ(img.initialSp % 4, 0u);
    // Not rounded further than the ABI demands: env 3 + argv 64 = 67
    // below the (aligned) top -> alignDown(top - 67, 4) == top - 68.
    EXPECT_EQ(img.stackTop - img.initialSp, 68u);
}

TEST(Loader, GpAndHeapDerivedFromProgram)
{
    auto mods = threeModules();
    auto prog = Linker().link(mods);
    const Addr data_base = prog.dataBase;
    const Addr data_end = prog.dataEnd;
    auto img = Loader::load(std::move(prog), {}, "beta_fn");
    EXPECT_EQ(img.gp, data_base);
    EXPECT_GE(img.heapBase, data_end + 4096);
    EXPECT_EQ(img.heapBase % 4096, 0u);
}

TEST(Loader, EntrySelectsFunction)
{
    ProgramBuilder b("m");
    b.func("other");
    b.ret();
    b.endFunc();
    b.func("main");
    b.halt();
    b.endFunc();
    std::vector<Module> mods;
    mods.push_back(b.build());
    auto prog = Linker().link(mods);
    const auto main_idx = prog.entryOf("main");
    auto img = Loader::load(std::move(prog), {});
    EXPECT_EQ(img.entryIdx, main_idx);
}

TEST(Loader, SpPageOffsetTracksEnv)
{
    for (std::uint64_t env : {0ull, 64ull, 128ull, 4096ull}) {
        auto prog = Linker().link(mainOnly());
        LoaderConfig c;
        c.envBytes = env;
        auto img = Loader::load(std::move(prog), c);
        EXPECT_EQ(img.spPageOffset(), img.initialSp & 0xfff);
    }
}

} // namespace
