/**
 * @file
 * ArtifactCache tests: hit/miss accounting at all three levels
 * (compile, link, image), the contract that a cached link is
 * indistinguishable from a fresh one, content addressing across
 * distinct compile keys, LRU eviction under a byte budget, and
 * thread-safety of concurrent lookups.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "sim/machine.hh"
#include "toolchain/artifacts.hh"
#include "toolchain/compiler.hh"
#include "toolchain/linker.hh"
#include "toolchain/loader.hh"
#include "workloads/registry.hh"

namespace
{

using namespace mbias;
using toolchain::ArtifactCache;

std::vector<isa::Module>
buildModules(const std::string &workload = "milc")
{
    const auto &w = workloads::findWorkload(workload);
    toolchain::Compiler cc(toolchain::CompilerVendor::GccLike,
                           toolchain::OptLevel::O2);
    return cc.compile(w.build({}));
}

TEST(ArtifactCache, CompileHitMissAccounting)
{
    ArtifactCache cache;
    int produced = 0;
    auto produce = [&] {
        ++produced;
        return buildModules();
    };
    auto a = cache.compiled("milc|1|12345|0|1", produce);
    auto b = cache.compiled("milc|1|12345|0|1", produce);
    EXPECT_EQ(produced, 1) << "second lookup must not recompile";
    EXPECT_EQ(a.get(), b.get()) << "hits hand out the same artifact";
    const auto s = cache.stats();
    EXPECT_EQ(s.compileMisses, 1u);
    EXPECT_EQ(s.compileHits, 1u);
    EXPECT_GT(s.bytes, 0u);
}

TEST(ArtifactCache, CachedLinkIdenticalToFresh)
{
    ArtifactCache cache;
    auto mods =
        cache.compiled("milc|1|12345|0|1", [] { return buildModules(); });
    const auto order = toolchain::LinkOrder::shuffled(17);

    auto cached = cache.linked(mods, order);
    const auto fresh = toolchain::Linker().link(mods->modules, order);

    ASSERT_EQ(cached->code.size(), fresh.code.size());
    EXPECT_EQ(cached->codeBase, fresh.codeBase);
    EXPECT_EQ(cached->codeEnd, fresh.codeEnd);
    EXPECT_EQ(cached->dataBase, fresh.dataBase);
    EXPECT_EQ(cached->dataEnd, fresh.dataEnd);
    EXPECT_EQ(cached->dataInit, fresh.dataInit);
    EXPECT_EQ(cached->moduleOrder, fresh.moduleOrder);
    for (std::size_t i = 0; i < fresh.code.size(); ++i) {
        EXPECT_EQ(cached->code[i].pc, fresh.code[i].pc);
        EXPECT_EQ(cached->code[i].size, fresh.code[i].size);
        EXPECT_EQ(cached->code[i].targetIdx, fresh.code[i].targetIdx);
        EXPECT_EQ(int(cached->code[i].inst.op), int(fresh.code[i].inst.op));
        EXPECT_EQ(cached->code[i].inst.imm, fresh.code[i].inst.imm);
    }

    // Same (modules, order) again: pointer-identical, counted a hit.
    auto again = cache.linked(mods, order);
    EXPECT_EQ(again.get(), cached.get());
    // A different order is a different artifact.
    auto other = cache.linked(mods, toolchain::LinkOrder::shuffled(18));
    EXPECT_NE(other.get(), cached.get());
    const auto s = cache.stats();
    EXPECT_EQ(s.linkHits, 1u);
    EXPECT_EQ(s.linkMisses, 2u);

    // And the simulated result through the cached program matches the
    // fresh one bit for bit.
    toolchain::LoaderConfig lc;
    lc.envBytes = 1536;
    auto ci = cache.image(cached, lc);
    auto fi = toolchain::Loader::load(fresh, lc);
    sim::Machine m1(sim::MachineConfig::core2Like());
    sim::Machine m2(sim::MachineConfig::core2Like());
    EXPECT_EQ(m1.run(ci), m2.run(fi));
}

TEST(ArtifactCache, ContentAddressedLinksAcrossCompileKeys)
{
    // Two different compile keys that produce identical modules must
    // share their link artifacts: links are addressed by the modules'
    // content fingerprint, not by the compile key.
    ArtifactCache cache;
    auto a = cache.compiled("keyA", [] { return buildModules(); });
    auto b = cache.compiled("keyB", [] { return buildModules(); });
    ASSERT_NE(a.get(), b.get());
    EXPECT_EQ(a->fingerprintHi, b->fingerprintHi);
    EXPECT_EQ(a->fingerprintLo, b->fingerprintLo);
    const auto order = toolchain::LinkOrder::asGiven();
    auto la = cache.linked(a, order);
    auto lb = cache.linked(b, order);
    EXPECT_EQ(la.get(), lb.get());
    const auto s = cache.stats();
    EXPECT_EQ(s.linkMisses, 1u);
    EXPECT_EQ(s.linkHits, 1u);
}

TEST(ArtifactCache, ImageLayoutCaching)
{
    ArtifactCache cache;
    auto mods =
        cache.compiled("milc|1|12345|0|1", [] { return buildModules(); });
    auto prog = cache.linked(mods, toolchain::LinkOrder::asGiven());
    toolchain::LoaderConfig lc;
    lc.envBytes = 2212;

    const auto first = cache.image(prog, lc);
    const auto second = cache.image(prog, lc);
    EXPECT_EQ(second.initialSp, first.initialSp);
    EXPECT_EQ(second.stackTop, first.stackTop);
    EXPECT_EQ(second.heapBase, first.heapBase);
    EXPECT_EQ(second.gp, first.gp);
    EXPECT_EQ(second.entryIdx, first.entryIdx);
    EXPECT_EQ(second.program.get(), first.program.get());

    // A different environment size is a different layout.
    lc.envBytes = 2300;
    const auto third = cache.image(prog, lc);
    EXPECT_NE(third.initialSp, first.initialSp);

    const auto s = cache.stats();
    EXPECT_EQ(s.imageHits, 1u);
    EXPECT_EQ(s.imageMisses, 2u);

    // Cached layout equals a fresh load exactly.
    const auto fresh = toolchain::Loader::load(prog, lc);
    EXPECT_EQ(third.initialSp, fresh.initialSp);
    EXPECT_EQ(third.heapBase, fresh.heapBase);
}

TEST(ArtifactCache, LruEvictionUnderByteBudget)
{
    // A 1-byte budget forces every shard down to its single MRU entry,
    // so inserting many distinct keys must evict all but at most one
    // entry per shard — and the cache keeps working (lookups of
    // evicted keys simply recompute).
    ArtifactCache cache(1);
    const auto mods = buildModules();
    const unsigned kKeys = 20;
    for (unsigned i = 0; i < kKeys; ++i)
        cache.compiled("key" + std::to_string(i),
                       [&] { return mods; });
    auto s = cache.stats();
    EXPECT_EQ(s.compileMisses, kKeys);
    EXPECT_GT(s.evictions, 0u);
    // 8 shards, each holding at most its MRU entry.
    EXPECT_GE(s.evictions, std::uint64_t(kKeys) - 8);

    // Evicted keys recompute and are still served correctly.
    auto again = cache.compiled("key0", [&] { return mods; });
    EXPECT_EQ(again->modules.size(), mods.size());
}

TEST(ArtifactCache, ConcurrentLookupsConverge)
{
    // Hammer one compile key and one link from many threads: every
    // thread must end up with the same artifact pointers (first
    // insert wins on racing misses), with no crashes or data races.
    ArtifactCache cache;
    std::atomic<int> produced{0};
    std::vector<std::thread> threads;
    std::vector<toolchain::ProgramPtr> seen(8);
    for (unsigned t = 0; t < 8; ++t) {
        threads.emplace_back([&, t] {
            auto mods = cache.compiled("shared", [&] {
                produced.fetch_add(1);
                return buildModules();
            });
            seen[t] =
                cache.linked(mods, toolchain::LinkOrder::shuffled(4));
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_GE(produced.load(), 1);
    for (unsigned t = 1; t < 8; ++t)
        EXPECT_EQ(seen[t].get(), seen[0].get());
}

} // namespace
