/**
 * @file
 * Hardware study under bias: "does a next-line data prefetcher help?"
 *
 * This is the other classic ASPLOS experiment shape — same binary, two
 * machine configurations — and it is just as exposed to measurement
 * bias: the prefetcher's benefit depends on which lines the workload
 * streams over, which depends on data placement, which depends on the
 * link order and the stack position.
 */
#include <cstdio>

#include "core/bias.hh"
#include "core/experiment.hh"
#include "core/setup.hh"
#include "core/table.hh"

using namespace mbias;

int
main()
{
    std::printf("hardware study: core2like vs core2like + next-line "
                "prefetcher (gcc O2 binaries)\n\n");

    sim::MachineConfig with_pf = sim::MachineConfig::core2Like();
    with_pf.name = "core2like+pf";
    with_pf.enableNextLinePrefetch = true;

    core::TextTable t({"workload", "single-setup", "randomized CI",
                       "bias", "verdict"});
    for (const char *w : {"mcf", "lbm", "libquantum", "perl", "hmmer",
                          "gcclike"}) {
        core::ExperimentSpec spec;
        spec.withWorkload(w).withTreatmentMachine(with_pf);
        // Same toolchain both sides: a pure hardware A/B.
        spec.treatment = spec.baseline;

        core::ExperimentRunner runner(spec);
        const double single = runner.run(core::ExperimentSetup{}).speedup;

        core::SetupRandomizer randomizer(
            core::SetupSpace().varyEnvSize().varyLinkOrder(), 0x9f);
        auto report = core::BiasAnalyzer().analyze(spec, randomizer, 21);
        t.addRow({w, core::fmt(single),
                  "[" + core::fmt(report.speedupCI.lower) + ", " +
                      core::fmt(report.speedupCI.upper) + "]",
                  core::fmt(report.biasMagnitude),
                  core::verdictName(report.verdict)});
    }
    std::printf("%s\n", t.str().c_str());
    std::printf("speedup > 1 favours the prefetcher.  Streaming "
                "workloads (lbm, libquantum, mcf) show a real gain;\n"
                "for pointer-light code the 'gain' can be within the "
                "setup-induced bias — the same trap as the -O3 study.\n");
    return 0;
}
