/**
 * @file
 * Vendor shoot-out under bias: "is the icc-like compiler faster than
 * the gcc-like compiler at O3?" — the kind of cross-vendor claim
 * benchmark marketing is made of.  Measured at a single setup the
 * answer is one number; across randomized setups several workloads
 * turn out to be decided by the setup, not the compiler.
 */
#include <cstdio>

#include "core/bias.hh"
#include "core/experiment.hh"
#include "core/setup.hh"
#include "core/table.hh"

using namespace mbias;

int
main()
{
    std::printf("icc-like vs gcc-like at O3 (core2like), across "
                "randomized setups\n\n");
    core::TextTable t({"workload", "single-setup", "randomized CI",
                       "flips", "verdict"});
    for (const char *w : {"perl", "bzip", "milc", "hmmer", "sjeng",
                          "sphinx"}) {
        core::ExperimentSpec spec;
        spec.withWorkload(w)
            .withBaseline({toolchain::CompilerVendor::GccLike,
                           toolchain::OptLevel::O3})
            .withTreatment({toolchain::CompilerVendor::IccLike,
                            toolchain::OptLevel::O3});

        core::ExperimentRunner runner(spec);
        const double single = runner.run(core::ExperimentSetup{}).speedup;

        core::SetupRandomizer randomizer(
            core::SetupSpace().varyEnvSize().varyLinkOrder(), 1234);
        auto report = core::BiasAnalyzer().analyze(spec, randomizer, 25);
        t.addRow({w, core::fmt(single),
                  "[" + core::fmt(report.speedupCI.lower) + ", " +
                      core::fmt(report.speedupCI.upper) + "]",
                  std::to_string(report.conclusionFlips),
                  core::verdictName(report.verdict)});
    }
    std::printf("%s\n", t.str().c_str());
    std::printf("speedup > 1 means the icc-like compiler wins; "
                "'inconclusive' rows are decided by the setup\n");
    return 0;
}
