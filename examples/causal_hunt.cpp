/**
 * @file
 * Causal hunt: tracing a bias to its microarchitectural mechanism.
 *
 * The hmmer workload keeps its DP rows on the machine stack, so its
 * performance depends on where the loader put the stack pointer.  This
 * example walks the paper's causal-analysis workflow: observe the
 * bias, correlate hardware counters with the outcome, then intervene
 * on the suspected cause and confirm the variation disappears.
 */
#include <cstdio>

#include "core/causal.hh"
#include "core/experiment.hh"
#include "core/runner.hh"
#include "core/setup.hh"
#include "stats/sample.hh"

using namespace mbias;

int
main()
{
    core::ExperimentSpec spec;
    spec.withWorkload("hmmer");

    // Step 0: is there a bias at all?
    auto setups = core::SetupSpace().varyEnvSize().grid(40);
    core::ExperimentRunner runner(spec);
    stats::Sample cycles;
    for (const auto &s : setups)
        cycles.add(runner.metricOf(runner.runSide(spec.baseline, s)));
    std::printf("hmmer O2 cycles across %zu env sizes: min %.0f, "
                "max %.0f (%.2f%% spread)\n\n",
                setups.size(), cycles.min(), cycles.max(),
                cycles.range() / cycles.median() * 100.0);

    // Steps 1-2: counter correlation, then interventions.
    auto report = core::CausalAnalyzer().analyze(spec, setups);
    std::printf("%s\n", report.str().c_str());

    std::printf("Reading the output: the top-ranked counter names the "
                "mechanism; an intervention that removes most of the "
                "spread confirms it as the cause rather than a mere "
                "correlate.\n");
    return 0;
}
