/**
 * @file
 * "Producing wrong data without doing anything obviously wrong":
 * a dramatization.  Two careful researchers evaluate the same
 * optimization on the same workload, machine, and compiler.  Each
 * measures deterministically and reproducibly.  They publish opposite
 * conclusions — because their (unreported) environment sizes differ.
 *
 * This example finds such a pair of setups automatically and then
 * shows how setup randomization would have exposed the conflict.
 */
#include <cstdio>

#include "core/bias.hh"
#include "core/experiment.hh"
#include "core/setup.hh"

using namespace mbias;

int
main()
{
    core::ExperimentSpec spec; // perl, core2like, gcc O2 vs O3
    core::ExperimentRunner runner(spec);

    // Sweep the environment size the way a user's login environment
    // might vary between machines (or between home directory lengths!)
    // and find the two most contradictory setups.
    core::ExperimentSetup best, worst;
    double best_speedup = 0.0, worst_speedup = 10.0;
    for (std::uint64_t env = 0; env <= 4096; env += 20) {
        core::ExperimentSetup s;
        s.envBytes = env;
        const double sp = runner.run(s).speedup;
        if (sp > best_speedup) {
            best_speedup = sp;
            best = s;
        }
        if (sp < worst_speedup) {
            worst_speedup = sp;
            worst = s;
        }
    }

    std::printf("Researcher A (%s):\n", best.str().c_str());
    std::printf("  measures O3 speedup %.4f and reports: \"O3 gives a "
                "%.1f%% improvement\"\n\n",
                best_speedup, (best_speedup - 1.0) * 100.0);
    std::printf("Researcher B (%s):\n", worst.str().c_str());
    std::printf("  measures O3 speedup %.4f and reports: \"O3 causes a "
                "%.1f%% slowdown\"\n\n",
                worst_speedup, (1.0 - worst_speedup) * 100.0);
    std::printf("Neither did anything obviously wrong: both runs are "
                "deterministic and repeatable.\n"
                "The difference is a setup factor no paper reports.\n\n");

    // The remedy.
    core::SetupRandomizer randomizer(core::SetupSpace().varyEnvSize(),
                                     /* seed */ 7);
    auto report = core::BiasAnalyzer().analyze(spec, randomizer, 31);
    std::printf("With setup randomization both would have reported:\n"
                "  speedup %s over the setup distribution\n",
                report.speedupCI.str().c_str());
    std::printf("  (bias magnitude %.4f vs effect size %.4f -> %s)\n",
                report.biasMagnitude, report.effectSize,
                report.biased() ? "the study is bias-dominated"
                                : "the effect is robust");
    return 0;
}
