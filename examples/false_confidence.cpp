/**
 * @file
 * False confidence: why "we repeated every run 15 times" does not save
 * a biased experiment.
 *
 * Run-to-run noise (OS interrupts, here simulated and seeded) is what
 * an experimenter can *see* and control with repetition: the more
 * repetitions, the tighter the confidence interval.  Measurement bias
 * is what they *cannot* see: the setup-induced offset repeats
 * perfectly in every run.  Result: a beautifully tight interval —
 * around the wrong value.
 */
#include <cstdio>

#include "core/setup.hh"
#include "core/variance.hh"

using namespace mbias;

int
main()
{
    core::ExperimentSpec spec; // perl, core2like, gcc O2 vs O3

    // The experimenter's machine happens to have a 300-byte
    // environment — a username, a few paths.  Their peers' machines
    // differ in ways nobody reports.
    core::ExperimentSetup home;
    home.envBytes = 300;
    auto peers = core::SetupSpace().varyEnvSize().grid(24);

    core::VarianceAnalyzer analyzer(/* reps = */ 15);
    auto report = analyzer.analyze(spec, home, peers);
    std::printf("%s\n", report.str().c_str());

    std::printf("Reading the output:\n"
                " - the within-setup CI is what a careful single-setup\n"
                "   paper would publish (repetitions + t-interval);\n"
                " - the between-setup sample is what the community\n"
                "   would measure on *their* machines;\n"
                " - a large variance ratio means repetition cannot\n"
                "   surface the bias: only setup randomization can.\n");
    return 0;
}
