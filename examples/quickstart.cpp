/**
 * @file
 * Quickstart: the five-minute tour of the mbias API.
 *
 * Question under study (the paper's running example): is gcc -O3
 * beneficial over -O2 for the perl workload on a Core 2-like machine?
 *
 * The naive answer measures once.  The robust answer (the paper's
 * methodology) measures across randomized experimental setups and
 * reports the effect with its setup-induced uncertainty.
 */
#include <cstdio>

#include "core/bias.hh"
#include "core/conclusion.hh"
#include "core/experiment.hh"
#include "core/setup.hh"

using namespace mbias;

int
main()
{
    // 1. Say what you want to know.  Defaults: workload "perl",
    //    core2like machine, gcc -O2 baseline vs gcc -O3 treatment.
    core::ExperimentSpec spec;
    std::printf("experiment: %s\n\n", spec.str().c_str());

    // 2. The naive experiment: one (default) setup, one number.
    core::ExperimentRunner runner(spec);
    auto naive = runner.run(core::ExperimentSetup{});
    std::printf("single-setup speedup: %.4f  -> \"O3 %s\"\n\n",
                naive.speedup,
                naive.speedup > 1.0 ? "helps" : "hurts");

    // 3. The robust experiment: randomize the innocuous setup factors
    //    (environment size, link order) and look at the distribution.
    core::SetupRandomizer randomizer(
        core::SetupSpace().varyEnvSize().varyLinkOrder(), /* seed */ 42);
    core::BiasAnalyzer analyzer;
    auto report = analyzer.analyze(spec, randomizer, 31);
    std::printf("%s\n", report.str().c_str());

    // 4. Diagnosis: could a single-setup paper have gotten this wrong?
    auto check = core::ConclusionChecker().check(report);
    std::printf("%s", check.str().c_str());
    return 0;
}
