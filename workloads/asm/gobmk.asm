.module gobmk_data
.data board, 8
.hex 020202020200010101000201000100020201000200000000000101010000020200010201000101000002010101000100
.hex 020002010100020000010101010201000200020001010101020000020000020000000002010101010101020001010000
.hex 020001000202010201020101000202020101010001000000020102020001010100020201010101000200000202020101
.hex 000202000100010102020202010000020202020101020002020201010102020201000101000200020101020201000202
.hex 020101020001010101020201020101010002020002010001020102010000000201020102000000020100000001000201
.hex 010200020001020102010200020202000100010000010102020000010000000002010101020100000101010102010000
.hex 020002020201000201020001010000010102010000020202020200010201010201020201020100020000010102020101
.hex 01020202000101020002010201020000000000010200020102
.zero visited, 361, 8

.module gobmk_fill
.func fill
  addi sp, sp, -16
  st8 s0, sp
  st8 s1, sp, 8
  mv s0, a0
  li s1, 1
  la t0, visited
  add t1, t0, s0
  li t2, 1
  st1 t2, t1
  li t3, 19
  remu t4, s0, t3
  beq t4, zero, skip_left
  addi a0, s0, -1
  call fill_try
  add s1, s1, a0
skip_left:
  li t3, 19
  remu t4, s0, t3
  li t5, 18
  beq t4, t5, skip_right
  addi a0, s0, 1
  call fill_try
  add s1, s1, a0
skip_right:
  li t3, 19
  blt s0, t3, skip_up
  addi a0, s0, -19
  call fill_try
  add s1, s1, a0
skip_up:
  li t3, 342
  bge s0, t3, skip_down
  addi a0, s0, 19
  call fill_try
  add s1, s1, a0
skip_down:
  mv a0, s1
  ld8 s1, sp, 8
  ld8 s0, sp
  addi sp, sp, 16
  ret
.endfunc
.func fill_try
  la t0, visited
  add t1, t0, a0
  ld1 t2, t1
  bne t2, zero, try_zero
  la t0, board
  add t1, t0, a0
  ld1 t2, t1
  li t3, 1
  bne t2, t3, try_zero
  call fill
  ret
try_zero:
  li a0, 0
  ret
.endfunc

.module gobmk_scan
.func scan_cell
  la t0, board
  add t1, t0, a0
  ld1 t2, t1
  li a0, 0
  ld1 t3, t1, -20
  bne t3, t2, scan_skip_0
  addi a0, a0, 1
scan_skip_0:
  ld1 t3, t1, -19
  bne t3, t2, scan_skip_1
  addi a0, a0, 1
scan_skip_1:
  ld1 t3, t1, -18
  bne t3, t2, scan_skip_2
  addi a0, a0, 1
scan_skip_2:
  ld1 t3, t1, -1
  bne t3, t2, scan_skip_3
  addi a0, a0, 1
scan_skip_3:
  ld1 t3, t1, 1
  bne t3, t2, scan_skip_4
  addi a0, a0, 1
scan_skip_4:
  ld1 t3, t1, 18
  bne t3, t2, scan_skip_5
  addi a0, a0, 1
scan_skip_5:
  ld1 t3, t1, 19
  bne t3, t2, scan_skip_6
  addi a0, a0, 1
scan_skip_6:
  ld1 t3, t1, 20
  bne t3, t2, scan_skip_7
  addi a0, a0, 1
scan_skip_7:
  ret
.endfunc

.module gobmk_main
.func main
  li s1, 0
  li s5, 3
round_loop:
  li s2, 1
row_loop:
  li s3, 1
col_loop:
  li t0, 19
  mul t0, s2, t0
  add a0, t0, s3
  call scan_cell
  mv a1, a0
  mv a0, s1
  call rt_cksum
  mv s1, a0
  addi s3, s3, 1
  li t1, 18
  bne s3, t1, col_loop
  addi s2, s2, 1
  li t1, 18
  bne s2, t1, row_loop
  li s2, 0
fill_loop:
  mv a0, s2
  call fill_try
  mv a1, a0
  mv a0, s1
  call rt_cksum
  mv s1, a0
  addi s2, s2, 7
  li t1, 361
  blt s2, t1, fill_loop
  addi s5, s5, -1
  bne s5, zero, round_loop
  mv a0, s1
  halt
.endfunc

.module rt_hash
.func rt_cksum
  li t0, 31
  mul a0, a0, t0
  add a0, a0, a1
  ret
.endfunc
.func rt_mix64
  srli t0, a0, 30
  xor a0, a0, t0
  li t1, -4658895280553007687
  mul a0, a0, t1
  srli t0, a0, 27
  xor a0, a0, t0
  li t1, -7723592293110705685
  mul a0, a0, t1
  srli t0, a0, 31
  xor a0, a0, t0
  ret
.endfunc

.module rt_util
.func rt_min
  bltu a0, a1, min_done
  mv a0, a1
min_done:
  ret
.endfunc
.func rt_max
  bgeu a0, a1, max_done
  mv a0, a1
max_done:
  ret
.endfunc
.func rt_absdiff
  sub t0, a0, a1
  bge t0, zero, abs_pos
  sub t0, zero, t0
abs_pos:
  mv a0, t0
  ret
.endfunc

.module cold_err
.func cold_report_error
  li t0, 17
  li t1, 0
cold_report_error_loop:
  addi t1, t1, 1
  addi t1, t1, 2
  addi t1, t1, 3
  xor t1, t1, t0
  addi t0, t0, -1
  bne t0, zero, cold_report_error_loop
  mv a0, t1
  ret
.endfunc
.func cold_abort_path
  li t0, 5
  li t1, 0
cold_abort_path_loop:
  addi t1, t1, 1
  addi t1, t1, 2
  addi t1, t1, 3
  addi t1, t1, 4
  addi t1, t1, 5
  addi t1, t1, 6
  addi t1, t1, 7
  xor t1, t1, t0
  addi t0, t0, -1
  bne t0, zero, cold_abort_path_loop
  mv a0, t1
  ret
.endfunc

.module cold_init
.func cold_startup
  li t0, 3
  li t1, 0
cold_startup_loop:
  addi t1, t1, 1
  addi t1, t1, 2
  addi t1, t1, 3
  addi t1, t1, 4
  addi t1, t1, 5
  addi t1, t1, 6
  addi t1, t1, 7
  addi t1, t1, 8
  addi t1, t1, 9
  addi t1, t1, 10
  addi t1, t1, 11
  xor t1, t1, t0
  addi t0, t0, -1
  bne t0, zero, cold_startup_loop
  mv a0, t1
  ret
.endfunc
.func cold_parse_args
  li t0, 41
  li t1, 0
cold_parse_args_loop:
  addi t1, t1, 1
  addi t1, t1, 2
  xor t1, t1, t0
  addi t0, t0, -1
  bne t0, zero, cold_parse_args_loop
  mv a0, t1
  ret
.endfunc
.func cold_env_scan
  li t0, 23
  li t1, 0
cold_env_scan_loop:
  addi t1, t1, 1
  addi t1, t1, 2
  addi t1, t1, 3
  addi t1, t1, 4
  addi t1, t1, 5
  xor t1, t1, t0
  addi t0, t0, -1
  bne t0, zero, cold_env_scan_loop
  mv a0, t1
  ret
.endfunc

.module cold_util
.func cold_format
  li t0, 13
  li t1, 0
cold_format_loop:
  addi t1, t1, 1
  addi t1, t1, 2
  addi t1, t1, 3
  addi t1, t1, 4
  addi t1, t1, 5
  addi t1, t1, 6
  addi t1, t1, 7
  addi t1, t1, 8
  addi t1, t1, 9
  xor t1, t1, t0
  addi t0, t0, -1
  bne t0, zero, cold_format_loop
  mv a0, t1
  ret
.endfunc
.func cold_log
  li t0, 29
  li t1, 0
cold_log_loop:
  addi t1, t1, 1
  addi t1, t1, 2
  addi t1, t1, 3
  addi t1, t1, 4
  xor t1, t1, t0
  addi t0, t0, -1
  bne t0, zero, cold_log_loop
  mv a0, t1
  ret
.endfunc
