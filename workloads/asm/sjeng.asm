.module sjeng_search
.func negamax
  beq a0, zero, leaf_loss
  beq a1, zero, leaf_eval
  addi sp, sp, -32
  st8 s0, sp
  st8 s1, sp, 8
  st8 s2, sp, 16
  st8 s3, sp, 24
  mv s0, a0
  mv s1, a1
  li s2, -1000000
  li s3, 1
move_loop:
  bltu s0, s3, move_done
  sub a0, s0, s3
  addi a1, s1, -1
  call negamax
  sub t0, zero, a0
  blt t0, s2, no_improve
  mv s2, t0
no_improve:
  addi s3, s3, 1
  li t1, 4
  bne s3, t1, move_loop
move_done:
  mv a0, s2
  ld8 s3, sp, 24
  ld8 s2, sp, 16
  ld8 s1, sp, 8
  ld8 s0, sp
  addi sp, sp, 32
  ret
leaf_loss:
  li a0, -100
  ret
leaf_eval:
  li t0, 12345
  add a0, a0, t0
  call rt_mix64
  andi a0, a0, 63
  ret
.endfunc

.module sjeng_main
.func main
  li s0, 0
  li s1, 0
  li s2, 4
root_loop:
  li t0, 6
  remu t1, s0, t0
  addi a0, t1, 18
  li a1, 6
  call negamax
  andi a1, a0, 255
  mv a0, s1
  call rt_cksum
  mv s1, a0
  addi s0, s0, 1
  bne s0, s2, root_loop
  mv a0, s1
  halt
.endfunc

.module rt_hash
.func rt_cksum
  li t0, 31
  mul a0, a0, t0
  add a0, a0, a1
  ret
.endfunc
.func rt_mix64
  srli t0, a0, 30
  xor a0, a0, t0
  li t1, -4658895280553007687
  mul a0, a0, t1
  srli t0, a0, 27
  xor a0, a0, t0
  li t1, -7723592293110705685
  mul a0, a0, t1
  srli t0, a0, 31
  xor a0, a0, t0
  ret
.endfunc

.module rt_util
.func rt_min
  bltu a0, a1, min_done
  mv a0, a1
min_done:
  ret
.endfunc
.func rt_max
  bgeu a0, a1, max_done
  mv a0, a1
max_done:
  ret
.endfunc
.func rt_absdiff
  sub t0, a0, a1
  bge t0, zero, abs_pos
  sub t0, zero, t0
abs_pos:
  mv a0, t0
  ret
.endfunc

.module cold_err
.func cold_report_error
  li t0, 17
  li t1, 0
cold_report_error_loop:
  addi t1, t1, 1
  addi t1, t1, 2
  addi t1, t1, 3
  xor t1, t1, t0
  addi t0, t0, -1
  bne t0, zero, cold_report_error_loop
  mv a0, t1
  ret
.endfunc
.func cold_abort_path
  li t0, 5
  li t1, 0
cold_abort_path_loop:
  addi t1, t1, 1
  addi t1, t1, 2
  addi t1, t1, 3
  addi t1, t1, 4
  addi t1, t1, 5
  addi t1, t1, 6
  addi t1, t1, 7
  xor t1, t1, t0
  addi t0, t0, -1
  bne t0, zero, cold_abort_path_loop
  mv a0, t1
  ret
.endfunc

.module cold_init
.func cold_startup
  li t0, 3
  li t1, 0
cold_startup_loop:
  addi t1, t1, 1
  addi t1, t1, 2
  addi t1, t1, 3
  addi t1, t1, 4
  addi t1, t1, 5
  addi t1, t1, 6
  addi t1, t1, 7
  addi t1, t1, 8
  addi t1, t1, 9
  addi t1, t1, 10
  addi t1, t1, 11
  xor t1, t1, t0
  addi t0, t0, -1
  bne t0, zero, cold_startup_loop
  mv a0, t1
  ret
.endfunc
.func cold_parse_args
  li t0, 41
  li t1, 0
cold_parse_args_loop:
  addi t1, t1, 1
  addi t1, t1, 2
  xor t1, t1, t0
  addi t0, t0, -1
  bne t0, zero, cold_parse_args_loop
  mv a0, t1
  ret
.endfunc
.func cold_env_scan
  li t0, 23
  li t1, 0
cold_env_scan_loop:
  addi t1, t1, 1
  addi t1, t1, 2
  addi t1, t1, 3
  addi t1, t1, 4
  addi t1, t1, 5
  xor t1, t1, t0
  addi t0, t0, -1
  bne t0, zero, cold_env_scan_loop
  mv a0, t1
  ret
.endfunc

.module cold_util
.func cold_format
  li t0, 13
  li t1, 0
cold_format_loop:
  addi t1, t1, 1
  addi t1, t1, 2
  addi t1, t1, 3
  addi t1, t1, 4
  addi t1, t1, 5
  addi t1, t1, 6
  addi t1, t1, 7
  addi t1, t1, 8
  addi t1, t1, 9
  xor t1, t1, t0
  addi t0, t0, -1
  bne t0, zero, cold_format_loop
  mv a0, t1
  ret
.endfunc
.func cold_log
  li t0, 29
  li t1, 0
cold_log_loop:
  addi t1, t1, 1
  addi t1, t1, 2
  addi t1, t1, 3
  addi t1, t1, 4
  xor t1, t1, t0
  addi t0, t0, -1
  bne t0, zero, cold_log_loop
  mv a0, t1
  ret
.endfunc
