.module gcc_data
.zero symtab, 16384, 64

.module gcc_keys
.func make_key
  li t0, 2654435761
  mul a0, a0, t0
  li t0, 12345
  add a0, a0, t0
  call rt_mix64
  ori a0, a0, 1
  ret
.endfunc

.module gcc_main
.func main
  la s2, symtab
  li s1, 0
  li s5, 1
rep_loop:
  li s0, 0
  li s3, 1800
phase1:
  mv a0, s0
  call make_key
  mv s4, a0
  andi t1, s4, 2047
probe1:
  slli t2, t1, 3
  add t2, s2, t2
  ld8 t3, t2
  beq t3, zero, do_insert
  beq t3, s4, inserted
  addi t1, t1, 1
  andi t1, t1, 2047
  jmp probe1
do_insert:
  st8 s4, t2
inserted:
  mv a0, s1
  mv a1, t1
  call rt_cksum
  mv s1, a0
  addi s0, s0, 1
  bne s0, s3, phase1
  li s0, 0
phase2:
  mv a0, s0
  call make_key
  mv s4, a0
  andi t1, s4, 2047
probe2:
  slli t2, t1, 3
  add t2, s2, t2
  ld8 t3, t2
  beq t3, s4, found2
  beq t3, zero, found2
  addi t1, t1, 1
  andi t1, t1, 2047
  jmp probe2
found2:
  mv a0, s1
  mv a1, t1
  call rt_cksum
  mv s1, a0
  addi s0, s0, 1
  bne s0, s3, phase2
  addi s5, s5, -1
  bne s5, zero, rep_loop
  mv a0, s1
  halt
.endfunc

.module rt_hash
.func rt_cksum
  li t0, 31
  mul a0, a0, t0
  add a0, a0, a1
  ret
.endfunc
.func rt_mix64
  srli t0, a0, 30
  xor a0, a0, t0
  li t1, -4658895280553007687
  mul a0, a0, t1
  srli t0, a0, 27
  xor a0, a0, t0
  li t1, -7723592293110705685
  mul a0, a0, t1
  srli t0, a0, 31
  xor a0, a0, t0
  ret
.endfunc

.module rt_util
.func rt_min
  bltu a0, a1, min_done
  mv a0, a1
min_done:
  ret
.endfunc
.func rt_max
  bgeu a0, a1, max_done
  mv a0, a1
max_done:
  ret
.endfunc
.func rt_absdiff
  sub t0, a0, a1
  bge t0, zero, abs_pos
  sub t0, zero, t0
abs_pos:
  mv a0, t0
  ret
.endfunc

.module cold_err
.func cold_report_error
  li t0, 17
  li t1, 0
cold_report_error_loop:
  addi t1, t1, 1
  addi t1, t1, 2
  addi t1, t1, 3
  xor t1, t1, t0
  addi t0, t0, -1
  bne t0, zero, cold_report_error_loop
  mv a0, t1
  ret
.endfunc
.func cold_abort_path
  li t0, 5
  li t1, 0
cold_abort_path_loop:
  addi t1, t1, 1
  addi t1, t1, 2
  addi t1, t1, 3
  addi t1, t1, 4
  addi t1, t1, 5
  addi t1, t1, 6
  addi t1, t1, 7
  xor t1, t1, t0
  addi t0, t0, -1
  bne t0, zero, cold_abort_path_loop
  mv a0, t1
  ret
.endfunc

.module cold_init
.func cold_startup
  li t0, 3
  li t1, 0
cold_startup_loop:
  addi t1, t1, 1
  addi t1, t1, 2
  addi t1, t1, 3
  addi t1, t1, 4
  addi t1, t1, 5
  addi t1, t1, 6
  addi t1, t1, 7
  addi t1, t1, 8
  addi t1, t1, 9
  addi t1, t1, 10
  addi t1, t1, 11
  xor t1, t1, t0
  addi t0, t0, -1
  bne t0, zero, cold_startup_loop
  mv a0, t1
  ret
.endfunc
.func cold_parse_args
  li t0, 41
  li t1, 0
cold_parse_args_loop:
  addi t1, t1, 1
  addi t1, t1, 2
  xor t1, t1, t0
  addi t0, t0, -1
  bne t0, zero, cold_parse_args_loop
  mv a0, t1
  ret
.endfunc
.func cold_env_scan
  li t0, 23
  li t1, 0
cold_env_scan_loop:
  addi t1, t1, 1
  addi t1, t1, 2
  addi t1, t1, 3
  addi t1, t1, 4
  addi t1, t1, 5
  xor t1, t1, t0
  addi t0, t0, -1
  bne t0, zero, cold_env_scan_loop
  mv a0, t1
  ret
.endfunc

.module cold_util
.func cold_format
  li t0, 13
  li t1, 0
cold_format_loop:
  addi t1, t1, 1
  addi t1, t1, 2
  addi t1, t1, 3
  addi t1, t1, 4
  addi t1, t1, 5
  addi t1, t1, 6
  addi t1, t1, 7
  addi t1, t1, 8
  addi t1, t1, 9
  xor t1, t1, t0
  addi t0, t0, -1
  bne t0, zero, cold_format_loop
  mv a0, t1
  ret
.endfunc
.func cold_log
  li t0, 29
  li t1, 0
cold_log_loop:
  addi t1, t1, 1
  addi t1, t1, 2
  addi t1, t1, 3
  addi t1, t1, 4
  xor t1, t1, t0
  addi t0, t0, -1
  bne t0, zero, cold_log_loop
  mv a0, t1
  ret
.endfunc
