.module perl_data
.data vmcode, 8
.hex 079300ca03072f08000e05002203077b07be0785010101077206ef003c0207850500160100370088071900f204010106
.hex d7073401075b00d2003b02020207f400a6010307e7010807910801076f01009500a500de0501079e002e010208070907
.hex 1a06d802074a0407a206860751040206f0071906d400dd010304009a02009e003305002f08066b07ed0101065207e101
.hex 00f507c00301001006890011075607af003800260106f203030107790107e0077b07840304010107e2000501010109
.zero vmglobals, 256, 8

.module perl_vm
.func vm_run
  addi sp, sp, -520
  la t0, vmcode
  li t1, 0
  mv t2, sp
  li t3, 0
dispatch:
  add t4, t0, t1
  ld1 t5, t4
  addi t1, t1, 1
  beq t5, zero, op_pushc
  li t6, 1
  beq t5, t6, op_add
  li t6, 2
  beq t5, t6, op_sub
  li t6, 3
  beq t5, t6, op_mul
  li t6, 4
  beq t5, t6, op_dup
  li t6, 5
  beq t5, t6, op_drop
  li t6, 6
  beq t5, t6, op_storeg
  li t6, 7
  beq t5, t6, op_loadg
  li t6, 8
  beq t5, t6, op_xor
  jmp op_end
op_pushc:
  add t4, t0, t1
  ld1 t6, t4
  addi t1, t1, 1
  slli t7, t3, 3
  add t7, t2, t7
  st8 t6, t7
  addi t3, t3, 1
  jmp dispatch
op_add:
  addi t3, t3, -1
  slli t7, t3, 3
  add t7, t2, t7
  ld8 t8, t7
  ld8 t6, t7, -8
  add t6, t6, t8
  st8 t6, t7, -8
  jmp dispatch
op_sub:
  addi t3, t3, -1
  slli t7, t3, 3
  add t7, t2, t7
  ld8 t8, t7
  ld8 t6, t7, -8
  sub t6, t6, t8
  st8 t6, t7, -8
  jmp dispatch
op_mul:
  addi t3, t3, -1
  slli t7, t3, 3
  add t7, t2, t7
  ld8 t8, t7
  ld8 t6, t7, -8
  mul t6, t6, t8
  st8 t6, t7, -8
  jmp dispatch
op_xor:
  addi t3, t3, -1
  slli t7, t3, 3
  add t7, t2, t7
  ld8 t8, t7
  ld8 t6, t7, -8
  xor t6, t6, t8
  st8 t6, t7, -8
  jmp dispatch
op_dup:
  slli t7, t3, 3
  add t7, t2, t7
  ld8 t6, t7, -8
  st8 t6, t7
  addi t3, t3, 1
  jmp dispatch
op_drop:
  addi t3, t3, -1
  jmp dispatch
op_storeg:
  add t4, t0, t1
  ld1 t6, t4
  addi t1, t1, 1
  andi t6, t6, 31
  slli t6, t6, 3
  la t8, vmglobals
  add t8, t8, t6
  addi t3, t3, -1
  slli t7, t3, 3
  add t7, t2, t7
  ld8 t6, t7
  st8 t6, t8
  jmp dispatch
op_loadg:
  add t4, t0, t1
  ld1 t6, t4
  addi t1, t1, 1
  andi t6, t6, 31
  slli t6, t6, 3
  la t8, vmglobals
  add t8, t8, t6
  ld8 t6, t8
  slli t7, t3, 3
  add t7, t2, t7
  st8 t6, t7
  addi t3, t3, 1
  jmp dispatch
op_end:
  slli t7, t3, 3
  add t7, t2, t7
  ld8 a0, t7, -8
  addi sp, sp, 520
  ret
.endfunc

.module perl_main
.func main
  li s0, 40
  li s1, 0
main_loop:
  call vm_run
  mv a1, a0
  mv a0, s1
  call rt_cksum
  mv s1, a0
  addi s0, s0, -1
  bne s0, zero, main_loop
  mv a0, s1
  halt
.endfunc

.module rt_hash
.func rt_cksum
  li t0, 31
  mul a0, a0, t0
  add a0, a0, a1
  ret
.endfunc
.func rt_mix64
  srli t0, a0, 30
  xor a0, a0, t0
  li t1, -4658895280553007687
  mul a0, a0, t1
  srli t0, a0, 27
  xor a0, a0, t0
  li t1, -7723592293110705685
  mul a0, a0, t1
  srli t0, a0, 31
  xor a0, a0, t0
  ret
.endfunc

.module rt_util
.func rt_min
  bltu a0, a1, min_done
  mv a0, a1
min_done:
  ret
.endfunc
.func rt_max
  bgeu a0, a1, max_done
  mv a0, a1
max_done:
  ret
.endfunc
.func rt_absdiff
  sub t0, a0, a1
  bge t0, zero, abs_pos
  sub t0, zero, t0
abs_pos:
  mv a0, t0
  ret
.endfunc

.module cold_err
.func cold_report_error
  li t0, 17
  li t1, 0
cold_report_error_loop:
  addi t1, t1, 1
  addi t1, t1, 2
  addi t1, t1, 3
  xor t1, t1, t0
  addi t0, t0, -1
  bne t0, zero, cold_report_error_loop
  mv a0, t1
  ret
.endfunc
.func cold_abort_path
  li t0, 5
  li t1, 0
cold_abort_path_loop:
  addi t1, t1, 1
  addi t1, t1, 2
  addi t1, t1, 3
  addi t1, t1, 4
  addi t1, t1, 5
  addi t1, t1, 6
  addi t1, t1, 7
  xor t1, t1, t0
  addi t0, t0, -1
  bne t0, zero, cold_abort_path_loop
  mv a0, t1
  ret
.endfunc

.module cold_init
.func cold_startup
  li t0, 3
  li t1, 0
cold_startup_loop:
  addi t1, t1, 1
  addi t1, t1, 2
  addi t1, t1, 3
  addi t1, t1, 4
  addi t1, t1, 5
  addi t1, t1, 6
  addi t1, t1, 7
  addi t1, t1, 8
  addi t1, t1, 9
  addi t1, t1, 10
  addi t1, t1, 11
  xor t1, t1, t0
  addi t0, t0, -1
  bne t0, zero, cold_startup_loop
  mv a0, t1
  ret
.endfunc
.func cold_parse_args
  li t0, 41
  li t1, 0
cold_parse_args_loop:
  addi t1, t1, 1
  addi t1, t1, 2
  xor t1, t1, t0
  addi t0, t0, -1
  bne t0, zero, cold_parse_args_loop
  mv a0, t1
  ret
.endfunc
.func cold_env_scan
  li t0, 23
  li t1, 0
cold_env_scan_loop:
  addi t1, t1, 1
  addi t1, t1, 2
  addi t1, t1, 3
  addi t1, t1, 4
  addi t1, t1, 5
  xor t1, t1, t0
  addi t0, t0, -1
  bne t0, zero, cold_env_scan_loop
  mv a0, t1
  ret
.endfunc

.module cold_util
.func cold_format
  li t0, 13
  li t1, 0
cold_format_loop:
  addi t1, t1, 1
  addi t1, t1, 2
  addi t1, t1, 3
  addi t1, t1, 4
  addi t1, t1, 5
  addi t1, t1, 6
  addi t1, t1, 7
  addi t1, t1, 8
  addi t1, t1, 9
  xor t1, t1, t0
  addi t0, t0, -1
  bne t0, zero, cold_format_loop
  mv a0, t1
  ret
.endfunc
.func cold_log
  li t0, 29
  li t1, 0
cold_log_loop:
  addi t1, t1, 1
  addi t1, t1, 2
  addi t1, t1, 3
  addi t1, t1, 4
  xor t1, t1, t0
  addi t0, t0, -1
  bne t0, zero, cold_log_loop
  mv a0, t1
  ret
.endfunc
