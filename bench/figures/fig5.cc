/**
 * @file
 * Figure 5: two "commonplace" claims in one harness.
 *  (a) Simulators are biased too: link-order bias measured on the
 *      m5-flavoured o3like model.
 *  (b) Both compilers are affected: the same study under the icc-like
 *      vendor profile.
 */
#include <cstdio>

#include "core/experiment.hh"
#include "core/table.hh"
#include "figures.hh"
#include "pipeline/context.hh"
#include "stats/sample.hh"

using namespace mbias;

namespace
{

constexpr unsigned num_orders = 20;

stats::Sample
speedups(pipeline::FigureContext &ctx, const core::ExperimentSpec &spec)
{
    const auto report =
        ctx.run(pipeline::Sweep(spec).linkOrderGrid(num_orders));
    stats::Sample sp;
    for (const auto &o : report.bias.outcomes)
        sp.add(o.speedup);
    return sp;
}

void
render(pipeline::FigureContext &ctx)
{
    std::printf("Figure 5a: link-order bias on the simulated O3CPU "
                "(o3like, gcc O2 vs O3, %u orders)\n\n", num_orders);
    core::TextTable ta({"workload", "min", "median", "max", "crosses 1.0"});
    for (const char *w : {"perl", "bzip", "milc", "sjeng", "gobmk",
                          "hmmer"}) {
        core::ExperimentSpec spec;
        spec.withWorkload(w).withMachine(sim::MachineConfig::o3Like());
        auto sp = speedups(ctx, spec);
        ta.addRow({w, core::fmt(sp.min()), core::fmt(sp.median()),
                   core::fmt(sp.max()),
                   sp.min() < 1.0 && sp.max() > 1.0 ? "YES" : "no"});
    }
    std::printf("%s\n", ta.str().c_str());

    std::printf("Figure 5b: the same study with the icc-like vendor "
                "(core2like, icc O2 vs O3)\n\n");
    core::TextTable tb({"workload", "min", "median", "max", "crosses 1.0"});
    for (const char *w : {"perl", "bzip", "milc", "sjeng", "gobmk",
                          "hmmer"}) {
        core::ExperimentSpec spec;
        spec.withWorkload(w)
            .withBaseline({toolchain::CompilerVendor::IccLike,
                           toolchain::OptLevel::O2})
            .withTreatment({toolchain::CompilerVendor::IccLike,
                            toolchain::OptLevel::O3});
        auto sp = speedups(ctx, spec);
        tb.addRow({w, core::fmt(sp.min()), core::fmt(sp.median()),
                   core::fmt(sp.max()),
                   sp.min() < 1.0 && sp.max() > 1.0 ? "YES" : "no"});
    }
    std::printf("%s\n", tb.str().c_str());
    std::printf("bias is not an artifact of one architecture, one "
                "simulator, or one compiler\n");
}

} // namespace

namespace mbias::figures
{

pipeline::FigureSpec
fig5()
{
    return {"fig5", pipeline::FigureSpec::Kind::Figure,
            "fig5_sim_and_compilers",
            "link-order bias on the o3like simulator and the icc-like vendor",
            render};
}

} // namespace mbias::figures
