/**
 * @file
 * Extension harness A3: do the two setup factors interact?
 *
 * A balanced env x link-order factorial design with noisy replicates,
 * analyzed by two-way ANOVA.  A significant interaction means the
 * env-size effect depends on the link order (and vice versa): fixing
 * or reporting one factor cannot de-bias an experiment — exactly why
 * the paper prescribes randomizing the whole setup.
 *
 * The 4x4 design is one NoiseRepeated campaign per workload: each
 * cell is a task whose pinned seed reproduces the historical
 * 1000*a + 10*b noise-seed formula.
 */
#include <cstdio>

#include "core/experiment.hh"
#include "core/table.hh"
#include "figures.hh"
#include "pipeline/context.hh"
#include "stats/anova2.hh"

using namespace mbias;

namespace
{

constexpr unsigned env_levels = 4;
constexpr unsigned link_levels = 4;
constexpr unsigned reps = 3;

stats::TwoWayAnovaResult
interactionFor(pipeline::FigureContext &ctx, const std::string &workload)
{
    core::ExperimentSpec spec;
    spec.withWorkload(workload);

    std::vector<campaign::SeededSetup> cells_in;
    for (unsigned a = 0; a < env_levels; ++a) {
        for (unsigned b = 0; b < link_levels; ++b) {
            core::ExperimentSetup s;
            s.envBytes = 36 + a * 1021; // odd offsets hit misalignment
            s.linkOrder = b == 0 ? toolchain::LinkOrder::asGiven()
                                 : toolchain::LinkOrder::shuffled(b);
            cells_in.push_back({s, /* noise seeds */ 1000 * a + 10 * b});
        }
    }
    const auto report = ctx.run(
        pipeline::Sweep(spec)
            .seededSetups(std::move(cells_in))
            .plan({campaign::RepetitionPlan::Kind::NoiseRepeated, reps}));

    std::vector<std::vector<stats::Sample>> cells(
        env_levels, std::vector<stats::Sample>(link_levels));
    for (unsigned a = 0; a < env_levels; ++a)
        for (unsigned b = 0; b < link_levels; ++b)
            for (const double v :
                 report.bias.outcomes[a * link_levels + b].repBaseline)
                cells[a][b].add(v);
    return stats::twoWayAnova(cells);
}

void
render(pipeline::FigureContext &ctx)
{
    std::printf("A3: env x link-order factorial ANOVA on O2 cycles "
                "(core2like, gcc, %ux%u design, %u replicates)\n\n",
                env_levels, link_levels, reps);
    core::TextTable t({"workload", "F(env)", "p(env)", "F(link)",
                       "p(link)", "F(interact)", "p(interact)"});
    for (const char *w : {"perl", "gobmk", "hmmer", "sjeng"}) {
        auto r = interactionFor(ctx, w);
        t.addRow({w, core::fmt(r.fA, 1), core::fmt(r.pA, 4),
                  core::fmt(r.fB, 1), core::fmt(r.pB, 4),
                  core::fmt(r.fAB, 1), core::fmt(r.pAB, 4)});
    }
    std::printf("%s\n", t.str().c_str());
    std::printf("a significant interaction term means neither factor "
                "can be de-biased in isolation\n");
}

} // namespace

namespace mbias::figures
{

pipeline::FigureSpec
fig9()
{
    return {"fig9", pipeline::FigureSpec::Kind::Figure,
            "fig9_factor_interaction",
            "env x link-order factorial ANOVA (factor interaction)",
            render};
}

} // namespace mbias::figures
