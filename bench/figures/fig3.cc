/**
 * @file
 * Figure 3 (the excerpt embedded in the task's source is genuine for
 * this one): the effect of UNIX environment size on the speedup of O3
 * on Core 2, for the perl workload.  The paper's published series
 * sweeps roughly 0.92x-1.10x and crosses 1.0: the environment alone
 * decides whether -O3 "helps".
 */
#include <cstdio>

#include "core/experiment.hh"
#include "figures.hh"
#include "pipeline/context.hh"
#include "stats/sample.hh"

using namespace mbias;

namespace
{

void
render(pipeline::FigureContext &ctx)
{
    std::printf("Figure 3: O3 speedup vs UNIX environment size "
                "(perl, core2like, gcc)\n\n");
    std::printf("%8s  %10s  %10s  %8s\n", "envBytes", "O2 cycles",
                "O3 cycles", "speedup");

    core::ExperimentSpec spec; // perl on core2like by default
    const auto report =
        ctx.run(pipeline::Sweep(spec).envGrid(4096, 20));

    stats::Sample sp;
    unsigned below = 0, above = 0;
    for (const auto &o : report.bias.outcomes) {
        sp.add(o.speedup);
        below += o.speedup < 1.0;
        above += o.speedup > 1.0;
        std::printf("%8llu  %10llu  %10llu  %8.4f\n",
                    (unsigned long long)o.setup.envBytes,
                    (unsigned long long)o.baseline.cycles(),
                    (unsigned long long)o.treatment.cycles(), o.speedup);
    }
    std::printf("\nspeedup range [%.4f, %.4f]; %u setups say O3 hurts, "
                "%u say it helps\n",
                sp.min(), sp.max(), below, above);
    std::printf("paper's shape: range straddles 1.0 (published: ~0.92 to "
                "~1.10 for perlbench)\n");
    std::printf("[campaign: %s]\n", report.stats.str().c_str());
    // Machine-readable execution metrics; reproduce_all.sh lifts this
    // line into results/BENCH_campaign.json.
    std::printf("[metrics] %s\n", report.metrics.toJson().c_str());
}

} // namespace

namespace mbias::figures
{

pipeline::FigureSpec
fig3()
{
    return {"fig3", pipeline::FigureSpec::Kind::Figure,
            "fig3_env_size_core2",
            "O3 speedup vs UNIX environment size (perl, core2like)",
            render};
}

} // namespace mbias::figures
