/**
 * @file
 * Ablation A1: how much of the measured bias does each address-
 * dependent mechanism contribute?  Each row disables one mechanism in
 * the core2like model and re-measures the env-size and link-order
 * cycle spreads for perl.  (This is the design-choice ablation called
 * out in DESIGN.md, not a figure from the paper.)
 *
 * Each spread is a BaselineOnly campaign: one observed side per
 * setup, metric values read straight from the outcomes.
 */
#include <cstdio>
#include <functional>

#include "core/experiment.hh"
#include "core/runner.hh"
#include "core/setup.hh"
#include "core/table.hh"
#include "figures.hh"
#include "pipeline/context.hh"
#include "stats/sample.hh"

using namespace mbias;

namespace
{

double
spreadPct(pipeline::FigureContext &ctx, const sim::MachineConfig &machine,
          const std::vector<core::ExperimentSetup> &setups)
{
    core::ExperimentSpec spec;
    spec.withMachine(machine);
    const auto report = ctx.run(
        pipeline::Sweep(spec).setups(setups).plan(
            {campaign::RepetitionPlan::Kind::BaselineOnly, 1}));
    stats::Sample cycles;
    for (const auto &o : report.bias.outcomes)
        cycles.add(core::metricValue(spec.metric, o.baseline));
    return cycles.range() / cycles.median() * 100.0;
}

void
render(pipeline::FigureContext &ctx)
{
    std::printf("Ablation: mechanism contributions to measurement bias "
                "(perl O2, core2like)\n\n");

    const auto env_setups = core::SetupSpace().varyEnvSize().grid(40);
    const auto link_setups = core::SetupSpace().varyLinkOrder().grid(24);

    struct Row
    {
        const char *name;
        std::function<void(sim::MachineConfig &)> tweak;
    };
    const Row rows[] = {
        {"full model", [](sim::MachineConfig &) {}},
        {"no line-split penalty",
         [](sim::MachineConfig &m) { m.enableLineSplitPenalty = false; }},
        {"no 4K-alias stalls",
         [](sim::MachineConfig &m) {
             m.enableStoreBufferAliasing = false;
         }},
        {"perfect branch prediction",
         [](sim::MachineConfig &m) { m.enableBranchPrediction = false; }},
        {"no BTB", [](sim::MachineConfig &m) { m.enableBtb = false; }},
        {"no fetch-block model",
         [](sim::MachineConfig &m) { m.enableFetchBlockModel = false; }},
        {"perfect caches",
         [](sim::MachineConfig &m) { m.enableCaches = false; }},
        {"perfect TLBs",
         [](sim::MachineConfig &m) { m.enableTlbs = false; }},
    };

    core::TextTable t({"model variant", "env spread %", "link spread %"});
    for (const auto &row : rows) {
        sim::MachineConfig m = sim::MachineConfig::core2Like();
        row.tweak(m);
        t.addRow({row.name, core::fmt(spreadPct(ctx, m, env_setups), 3),
                  core::fmt(spreadPct(ctx, m, link_setups), 3)});
    }
    std::printf("%s\n", t.str().c_str());
    std::printf("a mechanism 'owns' the bias along a factor when "
                "disabling it collapses that column\n");
}

} // namespace

namespace mbias::figures
{

pipeline::FigureSpec
ablation()
{
    return {"ablation", pipeline::FigureSpec::Kind::Ablation,
            "ablation_mechanisms",
            "per-mechanism contributions to measurement bias",
            render};
}

} // namespace mbias::figures
