#include "figures.hh"

namespace mbias::figures
{

void
registerAll()
{
    static const bool once = [] {
        auto &reg = pipeline::FigureRegistry::instance();
        reg.add(fig1());
        reg.add(fig2());
        reg.add(fig3());
        reg.add(fig4());
        reg.add(fig5());
        reg.add(fig6());
        reg.add(fig7());
        reg.add(fig8());
        reg.add(fig9());
        reg.add(fig10());
        reg.add(fig11());
        reg.add(fig12());
        reg.add(fig13());
        reg.add(table1());
        reg.add(table2());
        reg.add(table3());
        reg.add(ablation());
        reg.add(corpus());
        return true;
    }();
    (void)once;
}

} // namespace mbias::figures
