/**
 * @file
 * Figure 2: the O3-over-O2 speedup of every suite workload across 33
 * link orders — min, median, and max.  Workloads whose [min, max]
 * range straddles 1.0 are those for which the link order alone decides
 * whether "O3 is beneficial".
 */
#include <cstdio>

#include "core/experiment.hh"
#include "core/table.hh"
#include "figures.hh"
#include "pipeline/context.hh"
#include "stats/sample.hh"
#include "workloads/registry.hh"

using namespace mbias;

namespace
{

constexpr unsigned num_orders = 33;

void
render(pipeline::FigureContext &ctx)
{
    std::printf("Figure 2: O3 speedup across %u link orders "
                "(core2like, gcc)\n\n",
                num_orders);
    core::TextTable t({"workload", "min", "median", "max", "range",
                       "crosses 1.0"});
    unsigned crossing = 0;
    for (const auto *w : workloads::suite()) {
        core::ExperimentSpec spec;
        spec.withWorkload(w->name());
        const auto report =
            ctx.run(pipeline::Sweep(spec).linkOrderGrid(num_orders));
        stats::Sample sp;
        for (const auto &o : report.bias.outcomes)
            sp.add(o.speedup);
        const bool crosses = sp.min() < 1.0 && sp.max() > 1.0;
        crossing += crosses;
        t.addRow({w->name(), core::fmt(sp.min()), core::fmt(sp.median()),
                  core::fmt(sp.max()), core::fmt(sp.range()),
                  crosses ? "YES" : "no"});
    }
    std::printf("%s\n", t.str().c_str());
    std::printf("%u of %zu workloads flip their O2-vs-O3 conclusion "
                "with link order alone\n",
                crossing, workloads::suite().size());
}

} // namespace

namespace mbias::figures
{

pipeline::FigureSpec
fig2()
{
    return {"fig2", pipeline::FigureSpec::Kind::Figure,
            "fig2_link_order_speedup",
            "per-workload O3 speedup range across link orders",
            render};
}

} // namespace mbias::figures
