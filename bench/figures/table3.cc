/**
 * @file
 * Extension harness A4: the SPEC-style aggregate.  Marketing numbers
 * are geometric means over a suite; this harness shows the aggregate
 * too carries setup-induced uncertainty — and reports it the way the
 * paper says results should be reported: with an interval over the
 * setup distribution.
 *
 * One campaign per workload over the shared setup sample; the
 * geomean is then recombined per setup across the suite.
 */
#include <cstdio>

#include "core/experiment.hh"
#include "core/setup.hh"
#include "core/table.hh"
#include "figures.hh"
#include "pipeline/context.hh"
#include "stats/ci.hh"
#include "stats/sample.hh"
#include "workloads/registry.hh"

using namespace mbias;

namespace
{

constexpr unsigned num_setups = 17;

void
render(pipeline::FigureContext &ctx)
{
    std::printf("A4: suite-wide geomean O3 speedup per setup "
                "(core2like, gcc, %u setups)\n\n", num_setups);

    const auto setups = pipeline::sequentialSetups(
        core::SetupSpace().varyEnvSize().varyLinkOrder(), num_setups,
        0xa44);

    // One campaign per workload, all over the same setup sample.
    std::vector<campaign::CampaignReport> reports;
    for (const auto *w : workloads::suite()) {
        core::ExperimentSpec spec;
        spec.withWorkload(w->name());
        reports.push_back(ctx.run(pipeline::Sweep(spec).setups(setups)));
    }

    // One "SPEC run" per setup: geomean across the suite.
    stats::Sample geomeans;
    core::TextTable t({"setup", "geomean O3 speedup"});
    for (unsigned i = 0; i < num_setups; ++i) {
        stats::Sample per_workload;
        for (const auto &r : reports)
            per_workload.add(r.bias.outcomes[i].speedup);
        const double gm = per_workload.geomean();
        geomeans.add(gm);
        t.addRow({setups[i].str(), core::fmt(gm)});
    }
    std::printf("%s\n", t.str().c_str());

    auto ci = stats::tInterval(geomeans);
    std::printf("suite geomean speedup: %s (CI over setups)\n",
                ci.str().c_str());
    std::printf("range across setups : [%.4f, %.4f]\n", geomeans.min(),
                geomeans.max());
    std::printf("even the aggregate \"marketing number\" moves with "
                "factors no datasheet reports.\n");
}

} // namespace

namespace mbias::figures
{

pipeline::FigureSpec
table3()
{
    return {"table3", pipeline::FigureSpec::Kind::Table,
            "table3_suite_summary",
            "suite-wide geomean speedup with setup-induced CI",
            render};
}

} // namespace mbias::figures
