/**
 * @file
 * Figure 7: experimental setup randomization (the paper's first
 * remedy).  For every workload, the O3-over-O2 effect is estimated
 * from 31 randomized setups with a confidence interval over the setup
 * distribution, and the single-setup "wrong data" risk is quantified.
 *
 * Each workload's setups are sampled from per-task RNG streams (keyed
 * by task index) and executed on the campaign pool, so the whole-suite
 * sweep scales with cores while staying bit-reproducible.
 */
#include <cstdio>

#include "core/conclusion.hh"
#include "core/experiment.hh"
#include "core/setup.hh"
#include "core/table.hh"
#include "figures.hh"
#include "obs/metrics.hh"
#include "pipeline/context.hh"
#include "workloads/registry.hh"

using namespace mbias;

namespace
{

constexpr unsigned num_setups = 31;

void
render(pipeline::FigureContext &ctx)
{
    std::printf("Figure 7: randomized-setup estimation of the O3 effect "
                "(core2like, gcc, %u setups)\n\n",
                num_setups);
    char ciLabel[24];
    std::snprintf(ciLabel, sizeof(ciLabel), "%g%% CI",
                  ctx.confidence() * 100.0);
    core::TextTable t({"workload", "speedup", ciLabel, "bias", "flips",
                       "verdict", "wrong data?"});

    core::ConclusionChecker checker;
    unsigned wrongable = 0;
    obs::MetricsSnapshot metrics; // summed over per-workload campaigns
    for (const auto *w : workloads::suite()) {
        core::ExperimentSpec spec;
        spec.withWorkload(w->name());
        auto cr = ctx.run(
            pipeline::Sweep(spec)
                .randomized(core::SetupSpace().varyEnvSize().varyLinkOrder(),
                            num_setups)
                .seed(0xf19u));
        metrics.merge(cr.metrics);
        const auto &report = cr.bias;
        auto check = checker.check(report);
        wrongable += check.wrongDataPossible;
        t.addRow({w->name(), core::fmt(report.speedupCI.estimate),
                  "[" + core::fmt(report.speedupCI.lower) + ", " +
                      core::fmt(report.speedupCI.upper) + "]",
                  core::fmt(report.biasMagnitude),
                  std::to_string(report.conclusionFlips) + "/" +
                      std::to_string(num_setups),
                  core::verdictName(report.verdict),
                  check.wrongDataPossible ? "YES" : "no"});
    }
    std::printf("%s\n", t.str().c_str());
    std::printf("%u of %zu workloads admit single-setup experiments with "
                "contradictory conclusions;\n"
                "the randomized-setup CI reports the effect with its "
                "setup-induced uncertainty instead.\n",
                wrongable, workloads::suite().size());
    std::printf("[campaign: %u job(s), %.3f s total]\n", ctx.jobs(),
                ctx.campaignWallSeconds());
    // Machine-readable execution metrics; reproduce_all.sh lifts this
    // line into results/BENCH_campaign.json.
    std::printf("[metrics] %s\n", metrics.toJson().c_str());
}

} // namespace

namespace mbias::figures
{

pipeline::FigureSpec
fig7()
{
    return {"fig7", pipeline::FigureSpec::Kind::Figure,
            "fig7_setup_randomization",
            "randomized-setup estimation of the O3 effect (whole suite)",
            render};
}

} // namespace mbias::figures
