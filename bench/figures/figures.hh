#ifndef MBIAS_BENCH_FIGURES_FIGURES_HH
#define MBIAS_BENCH_FIGURES_FIGURES_HH

#include "pipeline/figure.hh"

namespace mbias::figures
{

/**
 * Registers every figure/table of the reproduction with the pipeline
 * registry, in presentation order (fig1..fig11, table1..table3, then
 * the mechanism ablation).  Idempotent per process — callers at every
 * entry point (wrapper binaries, the mbias CLI) just call it once
 * before touching the registry.
 *
 * Registration is an explicit call rather than static initializers so
 * it survives static-library dead-stripping.
 */
void registerAll();

/** @name One maker per figure/table (definitions in figN.cc etc.) @{ */
pipeline::FigureSpec fig1();
pipeline::FigureSpec fig2();
pipeline::FigureSpec fig3();
pipeline::FigureSpec fig4();
pipeline::FigureSpec fig5();
pipeline::FigureSpec fig6();
pipeline::FigureSpec fig7();
pipeline::FigureSpec fig8();
pipeline::FigureSpec fig9();
pipeline::FigureSpec fig10();
pipeline::FigureSpec fig11();
pipeline::FigureSpec fig12();
pipeline::FigureSpec fig13();
pipeline::FigureSpec table1();
pipeline::FigureSpec table2();
pipeline::FigureSpec table3();
pipeline::FigureSpec ablation();
pipeline::FigureSpec corpus();
/** @} */

} // namespace mbias::figures

#endif // MBIAS_BENCH_FIGURES_FIGURES_HH
