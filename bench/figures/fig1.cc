/**
 * @file
 * Figure 1: distributions of measured cycles across link orders, for
 * O2 and O3 separately (violin-style text summaries).  The paper's
 * point: the two distributions *overlap*, so a single link order can
 * rank O2 and O3 either way even though each individual measurement is
 * perfectly repeatable.
 */
#include <cstdio>

#include "core/experiment.hh"
#include "figures.hh"
#include "pipeline/context.hh"
#include "stats/density.hh"
#include "stats/sample.hh"

using namespace mbias;

namespace
{

constexpr unsigned num_orders = 33;

void
oneWorkload(pipeline::FigureContext &ctx, const std::string &name)
{
    core::ExperimentSpec spec;
    spec.withWorkload(name);
    const auto report =
        ctx.run(pipeline::Sweep(spec).linkOrderGrid(num_orders));

    stats::Sample o2, o3;
    for (const auto &o : report.bias.outcomes) {
        o2.add(double(o.baseline.cycles()));
        o3.add(double(o.treatment.cycles()));
    }

    auto v2 = stats::ViolinSummary::of(o2);
    auto v3 = stats::ViolinSummary::of(o3);
    std::printf("%-10s O2  [%s]  min %.0f  med %.0f  max %.0f\n",
                name.c_str(), v2.strip(o2).c_str(), v2.min, v2.median,
                v2.max);
    std::printf("%-10s O3  [%s]  min %.0f  med %.0f  max %.0f\n", "",
                v3.strip(o3).c_str(), v3.min, v3.median, v3.max);
    const bool overlap = v3.min <= v2.max && v2.min <= v3.max;
    std::printf("%-10s     distributions %s\n\n", "",
                overlap ? "OVERLAP: link order decides the winner"
                        : "are separated");
}

void
render(pipeline::FigureContext &ctx)
{
    std::printf("Figure 1: cycle distributions across %u link orders "
                "(core2like, gcc O2 vs O3)\n\n",
                num_orders);
    for (const char *w : {"perl", "sjeng", "gobmk", "hmmer"})
        oneWorkload(ctx, w);
}

} // namespace

namespace mbias::figures
{

pipeline::FigureSpec
fig1()
{
    return {"fig1", pipeline::FigureSpec::Kind::Figure,
            "fig1_link_order_dist",
            "cycle distributions across link orders (O2 vs O3 overlap)",
            render};
}

} // namespace mbias::figures
