/**
 * @file
 * Table 1: the benchmark suite.  For each workload of the SPEC
 * CPU2006-C substitute suite: its archetype, dynamic instruction
 * count, branch/load/store mix, and the O3-over-O2 speedup measured at
 * the *default* setup (as-given link order, empty environment) — the
 * single number a conventional single-setup evaluation would report.
 */
#include <cstdio>

#include "core/experiment.hh"
#include "core/table.hh"
#include "figures.hh"
#include "pipeline/context.hh"
#include "workloads/registry.hh"

using namespace mbias;

namespace
{

void
render(pipeline::FigureContext &ctx)
{
    std::printf("Table 1: the workload suite at the default setup "
                "(core2like, gcc)\n\n");
    core::TextTable t({"workload", "archetype", "insts", "br/ki",
                       "ld/ki", "st/ki", "O2 cycles", "O3 speedup"});
    for (const auto *w : workloads::suite()) {
        core::ExperimentSpec spec;
        spec.withWorkload(w->name());
        const auto report = ctx.run(
            pipeline::Sweep(spec).setups({core::ExperimentSetup{}}));
        const auto &o = report.bias.outcomes.at(0);
        const auto &c = o.baseline.counters;
        t.addRow({w->name(), w->archetype(),
                  std::to_string(o.baseline.instructions()),
                  core::fmt(c.ratePerKiloInst(sim::Counter::BranchesExecuted),
                            0),
                  core::fmt(c.ratePerKiloInst(sim::Counter::Loads), 0),
                  core::fmt(c.ratePerKiloInst(sim::Counter::Stores), 0),
                  std::to_string(o.baseline.cycles()),
                  core::fmt(o.speedup, 4)});
    }
    std::printf("%s\n", t.str().c_str());
}

} // namespace

namespace mbias::figures
{

pipeline::FigureSpec
table1()
{
    return {"table1", pipeline::FigureSpec::Kind::Table,
            "table1_benchmarks",
            "the workload suite at the default setup",
            render};
}

} // namespace mbias::figures
