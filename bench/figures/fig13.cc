/**
 * @file
 * Extension harness B2: DVFS frequency steps as a swept noise factor.
 *
 * Kalibera & Jones list CPU frequency scaling among the factors a
 * rigorous experiment must control; the noise model grows a DVFS
 * factor (seeded governor steps to a slower P-state, pure timing) and
 * this harness sweeps its depth as a first-class pipeline factor via
 * RepetitionPlan::noiseTemplate.  Two hostile setups, paired noisy
 * repetitions per arm: deeper steps inflate the *visible* run-to-run
 * variance, yet the between-setup speedup gap — the invisible bias —
 * does not close.  Controlling frequency tightens the interval; it
 * still brackets the wrong value.
 */
#include <cmath>
#include <cstdio>

#include "core/experiment.hh"
#include "core/setup.hh"
#include "core/table.hh"
#include "figures.hh"
#include "pipeline/context.hh"
#include "sim/noise.hh"
#include "stats/sample.hh"

using namespace mbias;

namespace
{

constexpr unsigned reps = 9;
constexpr std::uint64_t noise_seed = 0xd5f5;
const std::uint64_t setup_envs[] = {0, 300};

/** Per-rep speedups and baseline-cycle stats of one (arm, setup). */
struct Cell
{
    stats::Sample speedups;
    stats::Sample baseCycles;
};

Cell
measure(pipeline::FigureContext &ctx, unsigned slowdown_pct,
        std::uint64_t env)
{
    using Kind = campaign::RepetitionPlan::Kind;
    core::ExperimentSpec spec; // perl, core2like, O2 vs O3

    campaign::RepetitionPlan plan;
    plan.kind = Kind::NoisePaired;
    plan.reps = reps;
    plan.treatSeedOffset = 7919;
    if (slowdown_pct > 0) {
        plan.noiseTemplate = sim::NoiseModel::withDvfs(0);
        plan.noiseTemplate.dvfsSlowdownPercent = slowdown_pct;
    } // 0% = the default template: interrupt noise, no DVFS

    core::ExperimentSetup s;
    s.envBytes = env;
    const auto report =
        ctx.run(pipeline::Sweep(spec)
                    .seededSetups({{s, noise_seed + env}})
                    .plan(plan));
    const auto &o = report.bias.outcomes.at(0);
    Cell cell;
    for (unsigned i = 0; i < reps; ++i) {
        cell.speedups.add(o.repBaseline[i] / o.repTreatment[i]);
        cell.baseCycles.add(o.repBaseline[i]);
    }
    return cell;
}

void
render(pipeline::FigureContext &ctx)
{
    std::printf("B2: DVFS frequency steps swept as a noise factor "
                "(perl, core2like, gcc O2 vs O3)\n\n");

    core::TextTable t({"dvfs slowdown", "setup", "O2 cycles mean",
                       "cycles CV", "speedup mean", "spread"});
    stats::Sample gaps; // per-arm between-setup speedup gap
    for (unsigned pct : {0u, 10u, 25u, 40u}) {
        double means[2] = {0.0, 0.0};
        for (int i = 0; i < 2; ++i) {
            const auto cell = measure(ctx, pct, setup_envs[i]);
            means[i] = cell.speedups.mean();
            core::ExperimentSetup s;
            s.envBytes = setup_envs[i];
            t.addRow({pct == 0 ? "off" : core::fmt(pct, 0) + "%",
                      s.str(), core::fmt(cell.baseCycles.mean(), 0),
                      core::fmt(cell.baseCycles.cv() * 100.0, 3) + "%",
                      core::fmt(means[i]),
                      core::fmt(cell.speedups.range())});
        }
        gaps.add(std::abs(means[0] - means[1]));
    }
    std::printf("%s\n", t.str().c_str());
    std::printf("between-setup speedup gap per arm: %s .. %s "
                "(never closes)\n",
                core::fmt(gaps.min()).c_str(),
                core::fmt(gaps.max()).c_str());
    std::printf("deeper frequency steps inflate the visible variance "
                "within a setup, but leave the\nbetween-setup bias "
                "intact: controlling DVFS tightens the confidence "
                "interval\naround the same wrong value.\n");
}

} // namespace

namespace mbias::figures
{

pipeline::FigureSpec
fig13()
{
    return {"fig13", pipeline::FigureSpec::Kind::Figure,
            "fig13_dvfs_noise",
            "DVFS frequency steps swept as a noise factor",
            render};
}

} // namespace mbias::figures
