/**
 * @file
 * Table 2: the literature survey.  133 papers from ASPLOS, PACT, PLDI,
 * and CGO; none reports the environment size or the link order, and
 * none otherwise addresses measurement bias.  (Aggregate numbers are
 * the paper's; per-paper attributes are a consistent synthetic
 * elaboration — see DESIGN.md.)
 *
 * The one spec with no simulator sweep: its render stage only reads
 * the bundled survey database.
 */
#include <cstdio>

#include "core/table.hh"
#include "figures.hh"
#include "pipeline/context.hh"
#include "survey/analyzer.hh"

using namespace mbias;

namespace
{

void
render(pipeline::FigureContext &)
{
    const auto &db = survey::SurveyDatabase::bundled();
    survey::SurveyAnalyzer analyzer(db);

    std::printf("Table 2: literature survey of %zu papers\n\n", db.size());
    core::TextTable t({"venue", "papers", "eval perf", "SPEC", "baseline",
                       "variability", "env size", "link order",
                       "address bias"});
    for (const auto &s : analyzer.summarize()) {
        t.addRow({s.venue, std::to_string(s.papers),
                  std::to_string(s.evaluatePerformance),
                  std::to_string(s.useSpecCpu),
                  std::to_string(s.compareToBaseline),
                  std::to_string(s.reportVariability),
                  std::to_string(s.reportEnvironment),
                  std::to_string(s.reportLinkOrder),
                  std::to_string(s.addressBias)});
    }
    std::printf("%s\n", t.str().c_str());
    std::printf("papers addressing measurement bias: %u of %zu\n",
                analyzer.papersAddressingBias(), db.size());
    std::printf("papers vulnerable (perf claims, no setup/variability "
                "reporting): %u of %zu\n",
                analyzer.vulnerablePapers(), db.size());
}

} // namespace

namespace mbias::figures
{

pipeline::FigureSpec
table2()
{
    return {"table2", pipeline::FigureSpec::Kind::Table,
            "table2_survey",
            "literature survey: who reports setup factors?",
            render};
}

} // namespace mbias::figures
