/**
 * @file
 * Extension harness B1: conclusion drift on an in-order core.
 *
 * Every platform the paper measured hides latency out of order; the
 * machine-backend registry adds an ARM-like in-order model whose
 * timing is dominated by different mechanisms (exposed stalls, issue
 * blocking, fetch-block realignment on taken transfers).  This
 * harness reruns the running O2-vs-O3 question on both backends over
 * the same env grid: the bias is still there — and the *reported*
 * speedup drifts between backends, so a conclusion tuned on one core
 * model does not transfer to the other.
 */
#include <cstdio>

#include "core/experiment.hh"
#include "core/table.hh"
#include "figures.hh"
#include "pipeline/context.hh"
#include "sim/registry.hh"
#include "stats/sample.hh"

using namespace mbias;

namespace
{

const char *
verdict(const stats::Sample &speedups)
{
    if (speedups.min() > 1.0)
        return "O3 wins everywhere";
    if (speedups.max() < 1.0)
        return "O3 loses everywhere";
    return "flips with setup";
}

void
render(pipeline::FigureContext &ctx)
{
    std::printf("B1: conclusion drift on an in-order core "
                "(gcc O2 vs O3, env-size grid)\n\n");

    // The two backends under comparison come from the machine
    // registry: the paper's Core 2 model and the non-paper in-order
    // extension, with their declared core models.
    const auto &reg = sim::MachineRegistry::global();
    const sim::MachineBackend *backends[] = {reg.byName("core2like"),
                                             reg.byName("inorderlike")};

    core::TextTable t({"workload", "machine", "core model",
                       "speedup min", "median", "max", "conclusion"});
    // Median reported speedup per (workload, backend) — the drift
    // summary below compares them across backends.
    stats::Sample drift;
    for (const char *wname : {"perl", "hmmer", "sjeng"}) {
        double medians[2] = {0.0, 0.0};
        for (int b = 0; b < 2; ++b) {
            const sim::MachineBackend &mb = *backends[b];
            core::ExperimentSpec spec;
            spec.withWorkload(wname).withMachine(mb.config);
            const auto report =
                ctx.run(pipeline::Sweep(spec).envGrid(4096, 103));
            stats::Sample sp;
            for (const auto &o : report.bias.outcomes)
                sp.add(o.speedup);
            medians[b] = sp.median();
            t.addRow({wname, mb.config.name, mb.coreModel,
                      core::fmt(sp.min()), core::fmt(sp.median()),
                      core::fmt(sp.max()), verdict(sp)});
        }
        drift.add(medians[1] / medians[0]);
    }
    std::printf("%s\n", t.str().c_str());
    std::printf("median-speedup drift (in-order / out-of-order): "
                "%s .. %s per workload\n",
                core::fmt(drift.min()).c_str(),
                core::fmt(drift.max()).c_str());
    std::printf("the env-size bias survives the core model swap, but "
                "the reported speedup does not:\na conclusion tuned on "
                "one backend drifts on the other (exposed stalls and\n"
                "fetch-block realignment replace the OoO window as the "
                "dominant mechanisms).\n");
}

} // namespace

namespace mbias::figures
{

pipeline::FigureSpec
fig12()
{
    return {"fig12", pipeline::FigureSpec::Kind::Figure,
            "fig12_inorder_drift",
            "conclusion drift on an in-order core backend",
            render};
}

} // namespace mbias::figures
