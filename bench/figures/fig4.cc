/**
 * @file
 * Figure 4: measurement bias is commonplace — the environment-size
 * effect appears on every architecture tried (the paper: Pentium 4,
 * Core 2, and m5 O3CPU; here: p4like, core2like, o3like machine
 * models).
 */
#include <cstdio>

#include "core/experiment.hh"
#include "core/table.hh"
#include "figures.hh"
#include "pipeline/context.hh"
#include "stats/sample.hh"

using namespace mbias;

namespace
{

void
render(pipeline::FigureContext &ctx)
{
    std::printf("Figure 4: env-size bias across architectures "
                "(gcc O2 vs O3)\n\n");
    core::TextTable t({"workload", "machine", "speedup min", "median",
                       "max", "cycle spread (O2)"});
    for (const char *wname : {"perl", "hmmer", "sjeng"}) {
        for (const auto &machine : sim::MachineConfig::allPresets()) {
            core::ExperimentSpec spec;
            spec.withWorkload(wname).withMachine(machine);
            const auto report =
                ctx.run(pipeline::Sweep(spec).envGrid(4096, 52));
            stats::Sample sp, base_cycles;
            for (const auto &o : report.bias.outcomes) {
                sp.add(o.speedup);
                base_cycles.add(double(o.baseline.cycles()));
            }
            const double spread =
                base_cycles.range() / base_cycles.median();
            t.addRow({wname, machine.name, core::fmt(sp.min()),
                      core::fmt(sp.median()), core::fmt(sp.max()),
                      core::fmt(spread * 100.0, 2) + "%"});
        }
    }
    std::printf("%s\n", t.str().c_str());
    std::printf("bias (a nonzero cycle spread from env size alone) "
                "appears on every machine model\n");
}

} // namespace

namespace mbias::figures
{

pipeline::FigureSpec
fig4()
{
    return {"fig4", pipeline::FigureSpec::Kind::Figure,
            "fig4_env_size_arch",
            "env-size bias on every machine model",
            render};
}

} // namespace mbias::figures
