/**
 * @file
 * Extension harness A6: per-run layout randomization (the
 * Stabilizer-style remedy this paper inspired).
 *
 * Setup randomization (Fig. 7) needs many *setups*; an alternative is
 * to randomize the memory layout on every *run* via stack ASLR, so a
 * single setup already samples the layout distribution.  This harness
 * takes deliberately hostile setups — the ones where the single-run
 * speedup is most wrong — and shows per-run randomization pulls each
 * back to the cross-setup truth.
 *
 * The dense ground-truth grid and the per-setup ASLR repetition plans
 * are all campaign tasks; ASLR streams derive from task seeds, so
 * results are schedule-independent.
 */
#include <cmath>
#include <cstdio>

#include "core/experiment.hh"
#include "core/setup.hh"
#include "core/table.hh"
#include "figures.hh"
#include "obs/metrics.hh"
#include "pipeline/context.hh"
#include "stats/sample.hh"

using namespace mbias;

namespace
{

const std::vector<std::uint64_t> hostile_envs = {0, 300, 1643, 3340};

std::vector<core::ExperimentSetup>
envSetups(const std::vector<std::uint64_t> &envs)
{
    std::vector<core::ExperimentSetup> out;
    for (std::uint64_t env : envs) {
        core::ExperimentSetup s;
        s.envBytes = env;
        out.push_back(s);
    }
    return out;
}

/** Runs the hostile setups under @p plan; returns the four speedups
 *  and accumulates the campaign's execution metrics into @p metrics. */
std::vector<double>
hostileSpeedups(pipeline::FigureContext &ctx, campaign::RepetitionPlan plan,
                obs::MetricsSnapshot &metrics)
{
    core::ExperimentSpec spec; // perl, core2like, O2 vs O3
    auto report = ctx.run(pipeline::Sweep(spec)
                              .setups(envSetups(hostile_envs))
                              .plan(plan));
    metrics.merge(report.metrics);
    std::vector<double> speedups;
    for (const auto &o : report.bias.outcomes)
        speedups.push_back(o.speedup);
    return speedups;
}

void
render(pipeline::FigureContext &ctx)
{
    std::printf("A6: per-run stack-ASLR randomization as a bias remedy "
                "(perl, core2like, gcc O2 vs O3)\n\n");

    // Ground truth: the layout-marginalized effect over a dense grid.
    core::ExperimentSpec spec;
    auto truth_report =
        ctx.run(pipeline::Sweep(spec).envGrid(4096, 36));
    const double truth = truth_report.bias.speedups.mean();
    std::printf("layout-marginalized speedup (dense env grid): %.4f\n\n",
                truth);

    obs::MetricsSnapshot metrics = truth_report.metrics;
    using Kind = campaign::RepetitionPlan::Kind;
    auto single = hostileSpeedups(ctx, {Kind::Single, 1}, metrics);
    auto a7 = hostileSpeedups(ctx, {Kind::AslrRandomized, 7}, metrics);
    auto a21 = hostileSpeedups(ctx, {Kind::AslrRandomized, 21}, metrics);

    core::TextTable t({"setup", "single run", "ASLR x7", "ASLR x21",
                       "|err| single", "|err| x21"});
    for (std::size_t i = 0; i < hostile_envs.size(); ++i) {
        core::ExperimentSetup s;
        s.envBytes = hostile_envs[i];
        t.addRow({s.str(), core::fmt(single[i]), core::fmt(a7[i]),
                  core::fmt(a21[i]),
                  core::fmt(std::abs(single[i] - truth)),
                  core::fmt(std::abs(a21[i] - truth))});
    }
    std::printf("%s\n", t.str().c_str());
    std::printf("per-run layout randomization turns invisible bias into "
                "visible variance;\naveraging a few randomized runs "
                "recovers the truth from any single setup.\n");
    std::printf("[campaign: %u job(s), %.3f s for the ground-truth "
                "grid]\n",
                ctx.jobs(), truth_report.stats.wallSeconds);
    // Machine-readable execution metrics; reproduce_all.sh lifts this
    // line into results/BENCH_campaign.json.
    std::printf("[metrics] %s\n", metrics.toJson().c_str());
}

} // namespace

namespace mbias::figures
{

pipeline::FigureSpec
fig11()
{
    return {"fig11", pipeline::FigureSpec::Kind::Figure,
            "fig11_layout_randomization",
            "per-run stack-ASLR randomization as a bias remedy",
            render};
}

} // namespace mbias::figures
