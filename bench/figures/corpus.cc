/**
 * @file
 * Extension harness A7: measurement bias on machine-generated code.
 *
 * The paper's kernels are hand-written; a natural objection is that
 * the bias is an artifact of how they happen to be coded.  This
 * harness generates a seeded corpus of layout-sensitive programs with
 * the workload fuzzer — hot-loop shape, working-set size, and branch
 * entropy all drawn per program — registers them as runtime
 * workloads, and sweeps each through the paper's two biasing factors
 * (link order, environment size).  The O2-vs-O3 conclusion moves with
 * the layout for fuzzed code just as it does for the suite; the
 * widest-spread program is then handed to the causal engine, which
 * nominates the same mechanisms.
 *
 * The corpus seed is a fixed literal (not --seed): the program names
 * key the runtime workload registry and the golden transcript, so
 * the corpus itself is part of the figure's identity.
 */
#include <cmath>
#include <cstdio>

#include "core/causal.hh"
#include "core/experiment.hh"
#include "core/setup.hh"
#include "core/table.hh"
#include "figures.hh"
#include "lang/fuzzer.hh"
#include "obs/metrics.hh"
#include "pipeline/context.hh"
#include "workloads/registry.hh"

using namespace mbias;

namespace
{

constexpr std::uint64_t corpus_seed = 777;
constexpr unsigned corpus_size = 8;

/** Registers the corpus (idempotent: `mbias all` renders figures in
 *  one process) and returns the program knobs by name. */
std::vector<lang::FuzzedProgram>
corpusPrograms()
{
    lang::FuzzConfig cfg;
    cfg.seed = corpus_seed;
    cfg.count = corpus_size;
    auto corpus = lang::fuzzCorpus(cfg);
    auto &reg = workloads::Registry::instance();
    for (auto &prog : corpus)
        if (reg.find(prog.name) == nullptr) {
            lang::FuzzedProgram copy = prog;
            reg.add(lang::makeFuzzWorkload(std::move(copy)), "fuzzer");
        }
    return corpus;
}

struct Spread
{
    double min = 0.0, max = 0.0, mean = 0.0;

    double width() const { return max - min; }
};

Spread
spreadOf(const campaign::CampaignReport &report)
{
    Spread s;
    s.min = 1e9;
    s.max = -1e9;
    for (const auto &o : report.bias.outcomes) {
        s.min = std::min(s.min, o.speedup);
        s.max = std::max(s.max, o.speedup);
    }
    s.mean = report.bias.speedups.mean();
    return s;
}

void
render(pipeline::FigureContext &ctx)
{
    std::printf("A7: measurement bias on fuzzed workloads (seed %llu, "
                "%u programs, gcc O2 vs O3, core2like)\n\n",
                (unsigned long long)corpus_seed, corpus_size);

    const auto corpus = corpusPrograms();

    obs::MetricsSnapshot metrics;
    core::TextTable t({"program", "ws bytes", "entropy", "stack",
                       "link spread", "env spread", "mean speedup"});
    std::size_t widest = 0;
    double widest_width = -1.0;
    for (std::size_t i = 0; i < corpus.size(); ++i) {
        const auto &prog = corpus[i];
        core::ExperimentSpec spec;
        spec.workload = prog.name;

        auto link_report =
            ctx.run(pipeline::Sweep(spec).linkOrderGrid(6));
        auto env_report =
            ctx.run(pipeline::Sweep(spec).envGrid(4096, 512));
        metrics.merge(link_report.metrics);
        metrics.merge(env_report.metrics);
        const Spread link = spreadOf(link_report);
        const Spread env = spreadOf(env_report);

        const double width = link.width() + env.width();
        if (width > widest_width) {
            widest_width = width;
            widest = i;
        }
        char ws[32], lw[32], ew[32], mean[32];
        std::snprintf(ws, sizeof(ws), "%u", prog.knobs.wsWords * 8);
        std::snprintf(lw, sizeof(lw), "%.4f", link.width());
        std::snprintf(ew, sizeof(ew), "%.4f", env.width());
        std::snprintf(mean, sizeof(mean), "%.4f",
                      (link.mean + env.mean) / 2);
        t.addRow({prog.name, ws,
                  std::to_string(prog.knobs.entropyBits) + "b",
                  std::to_string(prog.knobs.stackSlots), lw, ew, mean});
    }
    std::printf("%s\n", t.str().c_str());
    std::printf("machine-generated programs show the same "
                "layout-induced conclusion drift as the\nhand-written "
                "suite: the O2-vs-O3 'speedup' moves with link order "
                "and env size.\n\n");

    const auto &suspect = corpus[widest];
    std::printf("causal analysis of the widest-spread program (%s):\n\n",
                suspect.name.c_str());
    core::ExperimentSpec spec;
    spec.workload = suspect.name;
    core::CausalAnalyzer analyzer;
    analyzer.withSweep(ctx.causalSweep());
    auto causal =
        analyzer.analyze(spec, core::SetupSpace().varyEnvSize().grid(16));
    std::printf("%s\n", causal.str().c_str());

    std::printf("[campaign: %u job(s), %.3f s total]\n", ctx.jobs(),
                ctx.campaignWallSeconds());
    std::printf("[metrics] %s\n", metrics.toJson().c_str());
}

} // namespace

namespace mbias::figures
{

pipeline::FigureSpec
corpus()
{
    return {"corpus", pipeline::FigureSpec::Kind::Figure,
            "corpus_fuzz_bias",
            "measurement bias on a fuzzed workload corpus", render};
}

} // namespace mbias::figures
