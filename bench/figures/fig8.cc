/**
 * @file
 * Extension harness A2: variance decomposition for the whole suite.
 * For each workload: the within-setup CI from 15 noisy repetitions at
 * an arbitrary home setup, vs the between-setup distribution.  A
 * variance ratio >> 1 with a disjoint CI is the "tight interval around
 * the wrong value" failure mode the paper warns about.
 *
 * Lowered onto the campaign engine as NoisePaired tasks: the home
 * setup is one 15-rep task, the peer setups one single-rep task each,
 * all with the pinned noise seeds the serial analyzer used.  The
 * per-rep ratios feed VarianceAnalyzer::aggregate — the same math,
 * campaign-measured data.
 */
#include <cstdio>

#include "core/setup.hh"
#include "core/table.hh"
#include "core/variance.hh"
#include "figures.hh"
#include "pipeline/context.hh"
#include "workloads/registry.hh"

using namespace mbias;

namespace
{

constexpr unsigned reps = 15;
constexpr std::uint64_t noise_seed = 0xfeed;

core::VarianceReport
decompose(pipeline::FigureContext &ctx, const core::ExperimentSpec &spec,
          const core::ExperimentSetup &home,
          const std::vector<core::ExperimentSetup> &peers,
          const core::VarianceAnalyzer &analyzer)
{
    using Kind = campaign::RepetitionPlan::Kind;

    // Within: repeat base and treatment at the home setup (treatment
    // noise seeds offset by 7919, as always).
    const auto wr = ctx.run(
        pipeline::Sweep(spec)
            .seededSetups({{home, noise_seed}})
            .plan({Kind::NoisePaired, reps, /*treatSeedOffset=*/7919}));
    const auto &wo = wr.bias.outcomes.at(0);
    std::vector<double> within;
    for (unsigned i = 0; i < reps; ++i)
        within.push_back(wo.repBaseline[i] / wo.repTreatment[i]);

    // Between: one noisy repetition per peer setup, seeds walking
    // noise_seed + 104729, +2 per setup (+1 for the treatment side).
    std::vector<campaign::SeededSetup> seeded;
    std::uint64_t seed = noise_seed + 104729;
    for (const auto &s : peers) {
        seeded.push_back({s, seed});
        seed += 2;
    }
    const auto br = ctx.run(
        pipeline::Sweep(spec)
            .seededSetups(std::move(seeded))
            .plan({Kind::NoisePaired, 1, /*treatSeedOffset=*/1}));
    std::vector<double> between;
    for (const auto &o : br.bias.outcomes)
        between.push_back(o.repBaseline[0] / o.repTreatment[0]);

    return analyzer.aggregate(spec, within, between);
}

void
render(pipeline::FigureContext &ctx)
{
    std::printf("A2: within-setup noise vs between-setup bias "
                "(core2like, gcc O2 vs O3)\n\n");
    core::TextTable t({"workload", "repetition CI (one setup)",
                       "cross-setup mean", "var ratio",
                       "false confidence"});
    core::VarianceAnalyzer analyzer(reps, noise_seed, ctx.confidence());
    core::ExperimentSetup home;
    home.envBytes = 300;
    auto peers = core::SetupSpace().varyEnvSize().grid(16);

    unsigned fooled = 0;
    for (const auto *w : workloads::suite()) {
        core::ExperimentSpec spec;
        spec.withWorkload(w->name());
        auto r = decompose(ctx, spec, home, peers, analyzer);
        fooled += r.falseConfidence;
        t.addRow({w->name(),
                  "[" + core::fmt(r.withinCI.lower) + ", " +
                      core::fmt(r.withinCI.upper) + "]",
                  core::fmt(r.betweenSetups.mean()),
                  core::fmt(r.varianceRatio, 1),
                  r.falseConfidence ? "YES" : "no"});
    }
    std::printf("%s\n", t.str().c_str());
    std::printf("%u of %zu workloads yield a tight repetition CI that "
                "excludes the cross-setup mean:\n"
                "repetition controls noise, not bias.\n",
                fooled, workloads::suite().size());
}

} // namespace

namespace mbias::figures
{

pipeline::FigureSpec
fig8()
{
    return {"fig8", pipeline::FigureSpec::Kind::Figure,
            "fig8_false_confidence",
            "within-setup noise vs between-setup bias (false confidence)",
            render};
}

} // namespace mbias::figures
