/**
 * @file
 * Extension harness A6: per-run layout randomization (the
 * Stabilizer-style remedy this paper inspired).
 *
 * Setup randomization (Fig. 7) needs many *setups*; an alternative is
 * to randomize the memory layout on every *run* via stack ASLR, so a
 * single setup already samples the layout distribution.  This harness
 * takes deliberately hostile setups — the ones where the single-run
 * speedup is most wrong — and shows per-run randomization pulls each
 * back to the cross-setup truth.
 */
#include <cstdio>

#include "core/runner.hh"
#include "core/setup.hh"
#include "core/table.hh"
#include "stats/ci.hh"
#include "stats/sample.hh"

using namespace mbias;

namespace
{

double
aslrSpeedup(core::ExperimentRunner &runner,
            const core::ExperimentSpec &spec,
            const core::ExperimentSetup &setup, unsigned reps)
{
    auto base =
        runner.aslrRandomizedMetric(spec.baseline, setup, reps, 1000);
    auto treat =
        runner.aslrRandomizedMetric(spec.treatment, setup, reps, 5000);
    return base.mean() / treat.mean();
}

} // namespace

int
main()
{
    std::printf("A6: per-run stack-ASLR randomization as a bias remedy "
                "(perl, core2like, gcc O2 vs O3)\n\n");
    core::ExperimentSpec spec;
    core::ExperimentRunner runner(spec);

    // Ground truth: the layout-marginalized effect.
    stats::Sample truth;
    for (std::uint64_t env = 0; env <= 4096; env += 36) {
        core::ExperimentSetup s;
        s.envBytes = env;
        truth.add(runner.run(s).speedup);
    }
    std::printf("layout-marginalized speedup (dense env grid): %.4f\n\n",
                truth.mean());

    core::TextTable t({"setup", "single run", "ASLR x7", "ASLR x21",
                       "|err| single", "|err| x21"});
    for (std::uint64_t env : {0ull, 300ull, 1643ull, 3340ull}) {
        core::ExperimentSetup s;
        s.envBytes = env;
        const double single = runner.run(s).speedup;
        const double a7 = aslrSpeedup(runner, spec, s, 7);
        const double a21 = aslrSpeedup(runner, spec, s, 21);
        t.addRow({s.str(), core::fmt(single), core::fmt(a7),
                  core::fmt(a21),
                  core::fmt(std::abs(single - truth.mean())),
                  core::fmt(std::abs(a21 - truth.mean()))});
    }
    std::printf("%s\n", t.str().c_str());
    std::printf("per-run layout randomization turns invisible bias into "
                "visible variance;\naveraging a few randomized runs "
                "recovers the truth from any single setup.\n");
    return 0;
}
