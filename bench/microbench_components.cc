/**
 * @file
 * google-benchmark microbenchmarks for the simulator substrate: raw
 * component costs (cache/TLB/predictor models) and end-to-end
 * simulation rates for representative workloads.  These time the
 * *simulator*, not the simulated programs.
 */
#include <benchmark/benchmark.h>

#include "core/experiment.hh"
#include "core/runner.hh"
#include "sim/machine.hh"
#include "toolchain/compiler.hh"
#include "toolchain/linker.hh"
#include "toolchain/loader.hh"
#include "uarch/branch.hh"
#include "uarch/cache.hh"
#include "uarch/tlb.hh"
#include "workloads/registry.hh"

using namespace mbias;

namespace
{

void
BM_CacheAccess(benchmark::State &state)
{
    uarch::Cache cache({64, 8, 64, 3, 12});
    Addr addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(addr, 8));
        addr += 72; // mixed hits/misses
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_TlbAccess(benchmark::State &state)
{
    uarch::Tlb tlb({64, 4096, 30});
    Addr addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tlb.access(addr, 8));
        addr += 4096 + 64;
    }
}
BENCHMARK(BM_TlbAccess);

void
BM_GsharePredict(benchmark::State &state)
{
    uarch::GsharePredictor pred(12, 8);
    Addr pc = 0x400000;
    bool taken = false;
    for (auto _ : state) {
        benchmark::DoNotOptimize(pred.predict(pc));
        pred.update(pc, taken);
        taken = !taken;
        pc += 12;
    }
}
BENCHMARK(BM_GsharePredict);

void
BM_CompileWorkload(benchmark::State &state)
{
    const auto &w = workloads::findWorkload("perl");
    workloads::WorkloadConfig cfg;
    const auto sources = w.build(cfg);
    toolchain::Compiler cc(toolchain::CompilerVendor::GccLike,
                           toolchain::OptLevel::O3);
    for (auto _ : state)
        benchmark::DoNotOptimize(cc.compile(sources));
}
BENCHMARK(BM_CompileWorkload);

void
BM_LinkWorkload(benchmark::State &state)
{
    const auto &w = workloads::findWorkload("perl");
    workloads::WorkloadConfig cfg;
    toolchain::Compiler cc(toolchain::CompilerVendor::GccLike,
                           toolchain::OptLevel::O2);
    const auto objs = cc.compile(w.build(cfg));
    toolchain::Linker linker;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            linker.link(objs, toolchain::LinkOrder::shuffled(1)));
}
BENCHMARK(BM_LinkWorkload);

void
BM_SimulateWorkload(benchmark::State &state, const char *name)
{
    const auto &w = workloads::findWorkload(name);
    workloads::WorkloadConfig cfg;
    toolchain::Compiler cc(toolchain::CompilerVendor::GccLike,
                           toolchain::OptLevel::O2);
    auto prog = toolchain::Linker().link(cc.compile(w.build(cfg)));
    auto image = toolchain::Loader::load(std::move(prog), {});
    sim::Machine machine(sim::MachineConfig::core2Like());
    std::uint64_t insts = 0;
    for (auto _ : state) {
        auto rr = machine.run(image);
        insts += rr.instructions();
        benchmark::DoNotOptimize(rr);
    }
    state.counters["insts/s"] = benchmark::Counter(
        double(insts), benchmark::Counter::kIsRate);
}
BENCHMARK_CAPTURE(BM_SimulateWorkload, perl, "perl");
BENCHMARK_CAPTURE(BM_SimulateWorkload, mcf, "mcf");
BENCHMARK_CAPTURE(BM_SimulateWorkload, lbm, "lbm");

} // namespace

BENCHMARK_MAIN();
