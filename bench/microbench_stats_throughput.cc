/**
 * @file
 * Throughput microbenchmark for this PR's statistics fast path:
 *
 *  1. store read — records/second of the single-pass columnar reader
 *     (readStoreColumns) and of ResultStore::load on a fig7-scale
 *     campaign store built live by a milc environment+link sweep;
 *  2. bootstrap — a 10k-resample percentile bootstrap of the store's
 *     speedup column under three arms: the serial reference
 *     (via the MBIAS_STATS_SERIAL escape hatch, exactly what users
 *     get), the fast engine at jobs=1 (SIMD, no threads), and the
 *     fast engine at `--jobs N`.
 *
 * The headline `speedup` compares the fast engine at --jobs N against
 * the serial reference.  The arms must produce bitwise-identical
 * confidence intervals — that is the engine's contract, and the bench
 * asserts it before timing anything.  Human-readable progress goes to
 * stderr; stdout is exactly one JSON document, which
 * scripts/reproduce_all.sh captures as results/BENCH_stats.json.
 *
 * Timing methodology: each arm runs once to warm (and to verify the
 * bitwise contract), then best-of-kRounds timed runs are reported,
 * matching microbench_sim_throughput.
 */
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "bench_args.hh"
#include "campaign/engine.hh"
#include "campaign/store.hh"
#include "core/setup.hh"
#include "stats/engine.hh"

using namespace mbias;

namespace
{

constexpr const char *kStorePath = "results/microbench_stats_store.jsonl";

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Builds the fig7-scale store: milc across 527 randomized setups. */
void
buildStore(unsigned jobs)
{
    campaign::CampaignSpec cspec;
    core::ExperimentSpec spec;
    spec.withWorkload("milc");
    cspec.withExperiment(spec)
        .withSpace(core::SetupSpace().varyEnvSize().varyLinkOrder(), 527)
        .withSeed(0xf19u);
    campaign::CampaignOptions opts;
    opts.jobs = jobs;
    opts.outPath = kStorePath;
    campaign::CampaignEngine(cspec, opts).run();
}

struct ArmResult
{
    stats::ConfidenceInterval ci;
    double wallSeconds = 0.0;
    bool serial = false;
};

/** One bootstrap arm: warm + verify, then best-of-kRounds timing. */
ArmResult
bootstrapArm(const std::vector<double> &data, bool reference,
             unsigned jobs, int resamples)
{
    // The serial arm uses the same process-wide escape hatch users
    // have: MBIAS_STATS_SERIAL pins the engine to the reference
    // implementation and is re-read per Engine construction.
    if (reference)
        ::setenv("MBIAS_STATS_SERIAL", "1", 1);
    else
        ::unsetenv("MBIAS_STATS_SERIAL");

    stats::EngineOptions eo;
    eo.jobs = jobs;
    stats::Engine engine(eo);

    ArmResult out;
    out.serial = engine.usingSerial();
    if (reference)
        mbias_assert(out.serial,
                     "MBIAS_STATS_SERIAL must pin the reference path");
    out.ci = engine.bootstrapInterval(data, 0x5eed, resamples, 0.95);

    constexpr int kRounds = 7, kReps = 3;
    double best = 0.0;
    for (int round = 0; round < kRounds; ++round) {
        const auto t0 = std::chrono::steady_clock::now();
        for (int r = 0; r < kReps; ++r)
            engine.bootstrapInterval(data, 0x5eed, resamples, 0.95);
        const double perCall = secondsSince(t0) / kReps;
        if (best == 0.0 || perCall < best)
            best = perCall;
    }
    out.wallSeconds = best;
    ::unsetenv("MBIAS_STATS_SERIAL");
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto args = benchutil::BenchArgs::parse(argc, argv);
    const unsigned jobs = args.jobs;
    const int resamples = args.resamples > 0 ? args.resamples : 10000;

    std::fprintf(stderr, "stats throughput microbench (jobs=%u, "
                 "resamples=%d)\n", jobs, resamples);

    buildStore(jobs);
    std::error_code ec;
    const double storeBytes =
        double(std::filesystem::file_size(kStorePath, ec));

    // Part 1: store read throughput (columnar fast path and the
    // record-map load a resumed campaign performs).
    campaign::StoreColumns cols = campaign::readStoreColumns(kStorePath);
    mbias_assert(cols.rows() == 527, "unexpected store shape");
    constexpr int kReadRounds = 7;
    double readWall = 0.0, loadWall = 0.0;
    for (int round = 0; round < kReadRounds; ++round) {
        auto t0 = std::chrono::steady_clock::now();
        const auto c = campaign::readStoreColumns(kStorePath);
        const double w = secondsSince(t0);
        mbias_assert(c.rows() == cols.rows(), "unstable store read");
        if (readWall == 0.0 || w < readWall)
            readWall = w;

        campaign::ResultStore store(kStorePath);
        t0 = std::chrono::steady_clock::now();
        const std::size_t n = store.load();
        const double lw = secondsSince(t0);
        mbias_assert(n == cols.rows(), "unstable store load");
        if (loadWall == 0.0 || lw < loadWall)
            loadWall = lw;
    }
    std::fprintf(stderr,
                 "  store read: columnar %.0f rec/s, load %.0f rec/s\n",
                 double(cols.rows()) / readWall,
                 double(cols.rows()) / loadWall);

    // Part 2: the bootstrap arms.  All three must agree bitwise.
    const ArmResult ref = bootstrapArm(cols.speedup, true, jobs, resamples);
    const ArmResult fast1 = bootstrapArm(cols.speedup, false, 1, resamples);
    const ArmResult fastN =
        bootstrapArm(cols.speedup, false, jobs, resamples);
    for (const ArmResult *arm : {&fast1, &fastN})
        mbias_assert(arm->ci.lower == ref.ci.lower &&
                         arm->ci.upper == ref.ci.upper &&
                         arm->ci.estimate == ref.ci.estimate,
                     "bootstrap CI must not depend on engine arm");

    const double speedup = ref.wallSeconds / fastN.wallSeconds;
    std::fprintf(stderr,
                 "  bootstrap: reference %.2f ms, fast jobs=1 %.2f ms, "
                 "fast jobs=%u %.2f ms -> speedup %.2fx\n",
                 ref.wallSeconds * 1e3, fast1.wallSeconds * 1e3, jobs,
                 fastN.wallSeconds * 1e3, speedup);

    std::printf("{\n");
    std::printf("  \"jobs\": %u,\n", jobs);
    std::printf("  \"resamples\": %d,\n", resamples);
    std::printf("  \"simd_available\": %s,\n",
                stats::Engine::simdAvailable() ? "true" : "false");
    std::printf("  \"store\": {\n");
    std::printf("    \"records\": %zu,\n", cols.rows());
    std::printf("    \"bytes\": %.0f,\n", storeBytes);
    std::printf("    \"columnar_records_per_sec\": %.0f,\n",
                double(cols.rows()) / readWall);
    std::printf("    \"columnar_mb_per_sec\": %.2f,\n",
                storeBytes / readWall / 1e6);
    std::printf("    \"load_records_per_sec\": %.0f\n",
                double(cols.rows()) / loadWall);
    std::printf("  },\n");
    std::printf("  \"bootstrap\": {\n");
    std::printf("    \"n\": %zu,\n", cols.speedup.size());
    auto arm = [](const char *name, const ArmResult &r, bool comma) {
        std::printf("    \"%s\": {\"wall_seconds\": %.6f, "
                    "\"serial\": %s}%s\n",
                    name, r.wallSeconds, r.serial ? "true" : "false",
                    comma ? "," : "");
    };
    arm("serial_reference", ref, true);
    arm("fast_jobs1", fast1, true);
    arm("fast_jobsN", fastN, true);
    std::printf("    \"ci\": {\"estimate\": %.17g, \"lower\": %.17g, "
                "\"upper\": %.17g}\n",
                ref.ci.estimate, ref.ci.lower, ref.ci.upper);
    std::printf("  },\n");
    std::printf("  \"speedup\": %.4f\n", speedup);
    std::printf("}\n");
    return 0;
}
