/**
 * @file
 * Throughput microbenchmark for the simulator's interpreter tiers and
 * the campaign engine around them:
 *
 *  1. raw interpreter speed — simulated instructions/second of the
 *     reference interpreter, the plan-based fast path, and the
 *     superblock trace tier on the same images (identical results,
 *     different wall-clock).  Two images bound the range: `perl`
 *     (memory-heavy, modest superblock coverage) and a straight-line
 *     ALU kernel (the trace tier's best case, and the shape the
 *     ROADMAP's >=3x target is defined over);
 *  2. end-to-end campaign throughput — tasks/second of a fig3-style
 *     environment-size sweep across {artifact cache, sim tier} arms.
 *
 * The headline `speedup` compares the optimized engine (cache + trace
 * tier) against the pre-cache, pre-fast-path configuration (no cache +
 * reference), i.e. the seed tree's behavior.  Human-readable progress
 * goes to stderr; stdout is exactly one JSON document, which
 * scripts/reproduce_all.sh captures as results/BENCH_sim.json.
 *
 * Timing methodology: each arm runs once to warm (and to verify the
 * report is bitwise identical across arms), then best-of-kRounds
 * timed runs are reported, which suppresses one-off scheduling noise
 * the same way the repo's interleaved probes do.
 */
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "bench_args.hh"
#include "campaign/engine.hh"
#include "core/experiment.hh"
#include "core/setup.hh"
#include "isa/builder.hh"
#include "sim/machine.hh"
#include "sim/plan.hh"
#include "sim/registry.hh"
#include "sim/replay.hh"
#include "sim/trace.hh"
#include "toolchain/artifacts.hh"
#include "toolchain/compiler.hh"
#include "toolchain/linker.hh"
#include "toolchain/loader.hh"
#include "workloads/registry.hh"

using namespace mbias;

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** The three implementations of Machine::run (sim/machine.hh). */
enum class Tier
{
    Reference,
    Fast,
    Trace,
};

/** Per-image tier results plus the ratios scripts consume. */
struct TierResult
{
    double reference = 0.0;
    double fast = 0.0;
    double trace = 0.0;
};

/**
 * Simulated instructions/second of all three tiers on one image.  The
 * tiers are timed *interleaved* within each round — reference, fast,
 * trace, repeat — so slow host-frequency drift hits every tier alike
 * and the reported ratios stay stable even when the absolute numbers
 * wander.  On a backend without trace support the third machine's
 * runs silently take the plain fast path (the declared fallback), so
 * its "trace" number measures exactly what a user would get.
 */
TierResult
measureTiers(const char *name, const sim::MachineConfig &mc,
             const toolchain::ProcessImage &image)
{
    std::array<sim::Machine, 3> machines = {
        sim::Machine(mc),
        sim::Machine(mc),
        sim::Machine(mc),
    };
    machines[0].setUseFastPath(false);
    machines[1].setUseTracePath(false);
    double insts = 0.0;
    for (auto &machine : machines) {
        auto warm = machine.run(image);
        mbias_assert(warm.halted, "bench workload did not halt");
        insts = double(warm.instructions());
    }
    constexpr int kRounds = 7, kReps = 6;
    std::array<double, 3> best{};
    for (int round = 0; round < kRounds; ++round) {
        for (std::size_t tier = 0; tier < machines.size(); ++tier) {
            const auto t0 = std::chrono::steady_clock::now();
            for (int r = 0; r < kReps; ++r)
                machines[tier].run(image);
            best[tier] = std::max(
                best[tier], insts * kReps / secondsSince(t0));
        }
    }

    TierResult r;
    r.reference = best[0];
    r.fast = best[1];
    r.trace = best[2];
    std::fprintf(stderr,
                 "  %s: reference %.1f, fast %.1f, trace %.1f Mi/s "
                 "(trace/fast %.2fx, trace/ref %.2fx)\n",
                 name, r.reference / 1e6, r.fast / 1e6, r.trace / 1e6,
                 r.trace / r.fast, r.trace / r.reference);
    return r;
}

/**
 * A straight-line-heavy kernel: a hot loop whose body is a long
 * unrolled ALU block — eight independent accumulator streams, the
 * shape loop unrolling actually produces — ending in one branch.
 * Almost every retired instruction sits inside one superblock, so
 * this is the shape the trace tier's >=3x-over-fast target is
 * measured on.
 */
toolchain::ProcessImage
straightLineImage()
{
    using namespace isa;
    ProgramBuilder b("straightline");
    b.func("main");
    b.li(reg::t0, 6000); // loop counter
    b.li(reg::s0, 0x1234);
    b.li(reg::s1, 0);
    b.label("loop");
    // 56 unroll groups x 8 ALU ops + 2 loop-maintenance ops per trip.
    for (int g = 0; g < 56; ++g) {
        b.addi(reg::s0, reg::s0, g + 1);
        b.xori(reg::s1, reg::s1, 0x5a5a);
        b.addi(reg::s2, reg::s2, -3);
        b.add(reg::s3, reg::s3, reg::s0);
        b.addi(reg::s4, reg::s4, 7);
        b.xori(reg::s5, reg::s5, 0x00ff);
        b.addi(reg::s6, reg::s6, 11);
        b.add(reg::s7, reg::s7, reg::s2);
    }
    b.addi(reg::t0, reg::t0, -1);
    b.bne(reg::t0, reg::zero, "loop");
    b.add(reg::s1, reg::s1, reg::s2);
    b.add(reg::s3, reg::s3, reg::s4);
    b.add(reg::s5, reg::s5, reg::s6);
    b.add(reg::s5, reg::s5, reg::s7);
    b.add(reg::s1, reg::s1, reg::s3);
    b.add(reg::s1, reg::s1, reg::s5);
    b.mv(reg::a0, reg::s1);
    b.halt();
    b.endFunc();
    auto prog = toolchain::Linker().link({b.build()});
    toolchain::LoaderConfig lc;
    lc.envBytes = 1024;
    return toolchain::Loader::load(std::move(prog), lc);
}

/** The record-once/replay-many measurement (sim/replay.hh). */
struct NoisyRepResult
{
    unsigned reps = 0;
    double perRepWall = 0.0;  ///< reps noisy runs, per-rep execution
    double replayWall = 0.0;  ///< one recording + reps-1 replays
    double perRepInstsPerSec = 0.0;
    double replayInstsPerSec = 0.0;
    double speedup = 0.0;
    bool replayed = false; ///< false when the tier is hatched off
};

/**
 * The noisy-repetition driver shape (NoiseRepeated/NoisePaired
 * campaigns, ExperimentRunner::repeatedMetric): the same image run
 * `reps` times under distinct noise seeds.  Per-rep execution pays the
 * reference interpreter every time (noise needs the timing models
 * live); the replay tier records the functional stream once — that IS
 * rep 0 — and re-runs only the timing models for the rest.  Both arms
 * are verified bitwise identical per seed before any timing.
 */
NoisyRepResult
measureNoisyRepetition(const char *name,
                       const toolchain::ProcessImage &image)
{
    constexpr unsigned kReps = 24;
    constexpr std::uint64_t kSeedBase = 0xbe9c;
    const std::uint64_t budget = sim::Machine::kDefaultRunBudget;
    sim::Machine machine(sim::MachineConfig::core2Like());

    // Correctness gate: every replayed repetition must match the
    // per-rep execution of its seed bitwise, or the numbers below
    // would compare different experiments.
    std::shared_ptr<const sim::FunctionalTrace> trace;
    const auto rec = machine.runRecord(
        image, budget, sim::NoiseModel::withSeed(kSeedBase), &trace);
    mbias_assert(rec.halted, "bench workload did not halt");
    const double insts = double(rec.instructions());
    for (unsigned r = 0; r < kReps; ++r) {
        const auto noise = sim::NoiseModel::withSeed(kSeedBase + r);
        const auto ref = machine.run(image, budget, noise);
        const auto opt =
            r == 0 ? rec
            : trace ? machine.runReplay(image, budget, noise, *trace)
                    : machine.run(image, budget, noise);
        mbias_assert(opt == ref,
                     "replayed repetition diverged from per-rep run");
    }

    NoisyRepResult out;
    out.reps = kReps;
    out.replayed = trace != nullptr;
    constexpr int kRounds = 5;
    for (int round = 0; round < kRounds; ++round) {
        {
            const auto t0 = std::chrono::steady_clock::now();
            for (unsigned r = 0; r < kReps; ++r)
                machine.run(image, budget,
                            sim::NoiseModel::withSeed(kSeedBase + r));
            const double wall = secondsSince(t0);
            if (out.perRepWall == 0.0 || wall < out.perRepWall)
                out.perRepWall = wall;
        }
        {
            // The recording pass is part of the replay arm's cost: the
            // runner amortizes it as rep 0, so the bench does too.
            const auto t0 = std::chrono::steady_clock::now();
            std::shared_ptr<const sim::FunctionalTrace> t;
            machine.runRecord(image, budget,
                              sim::NoiseModel::withSeed(kSeedBase), &t);
            for (unsigned r = 1; r < kReps; ++r) {
                const auto noise =
                    sim::NoiseModel::withSeed(kSeedBase + r);
                if (t)
                    machine.runReplay(image, budget, noise, *t);
                else
                    machine.run(image, budget, noise);
            }
            const double wall = secondsSince(t0);
            if (out.replayWall == 0.0 || wall < out.replayWall)
                out.replayWall = wall;
        }
    }
    out.perRepInstsPerSec = insts * kReps / out.perRepWall;
    out.replayInstsPerSec = insts * kReps / out.replayWall;
    out.speedup = out.perRepWall / out.replayWall;
    std::fprintf(stderr,
                 "  %s noisy reps (%u): per-rep %.1f, replay %.1f Mi/s "
                 "-> %.2fx%s\n",
                 name, kReps, out.perRepInstsPerSec / 1e6,
                 out.replayInstsPerSec / 1e6, out.speedup,
                 out.replayed ? "" : " (replay tier off)");
    return out;
}

struct ArmResult
{
    double tasksPerSec = 0.0;
    double wallSeconds = 0.0;
    std::uint64_t tasks = 0;
    double sumSpeedup = 0.0; ///< campaign-result checksum across arms
    toolchain::ArtifactCacheStats cacheStats;
};

/** One fig3-style env sweep under one (cache, sim tier) setting. */
ArmResult
campaignArm(bool cache_on, Tier tier, unsigned jobs)
{
    // The tier toggles are the same process-wide escape hatches users
    // have: MBIAS_SIM_REFERENCE pins runs to the reference
    // interpreter, MBIAS_SIM_TRACE=0 drops the trace tier back to the
    // plain fast path; both are re-read on every run().
    if (tier == Tier::Reference)
        ::setenv("MBIAS_SIM_REFERENCE", "1", 1);
    else
        ::unsetenv("MBIAS_SIM_REFERENCE");
    if (tier == Tier::Fast)
        ::setenv("MBIAS_SIM_TRACE", "0", 1);
    else
        ::unsetenv("MBIAS_SIM_TRACE");

    std::vector<core::ExperimentSetup> setups;
    for (std::uint64_t env = 0; env <= 4096; env += 40) {
        core::ExperimentSetup setup;
        setup.envBytes = env;
        setups.push_back(setup);
    }
    campaign::CampaignSpec cspec; // perl on core2like by default
    cspec.withSetups(setups);
    campaign::CampaignOptions opts;
    opts.jobs = jobs;
    opts.artifactCache = cache_on;

    ArmResult out;
    constexpr int kRounds = 3;
    for (int round = 0; round < kRounds; ++round) {
        // Every round starts from a cold process-wide state, so the
        // arm includes the cache-fill cost it would pay in a real
        // campaign (and the cache-off arm can't hit stale entries).
        toolchain::ArtifactCache::global().clear();
        sim::PlanCache::global().clear();
        sim::TraceCache::global().clear();
        sim::ReplayCache::global().clear();
        // stats() counters are cumulative over the process; diff
        // around the run to attribute hits/misses to this round.
        const auto before = toolchain::ArtifactCache::global().stats();
        const auto t0 = std::chrono::steady_clock::now();
        auto report = campaign::CampaignEngine(cspec, opts).run();
        const double wall = secondsSince(t0);
        if (out.tasks == 0) {
            out.tasks = report.stats.totalTasks;
            for (const auto &o : report.bias.outcomes)
                out.sumSpeedup += o.speedup;
        }
        if (out.wallSeconds == 0.0 || wall < out.wallSeconds) {
            out.wallSeconds = wall;
            auto s = toolchain::ArtifactCache::global().stats();
            s.compileHits -= before.compileHits;
            s.compileMisses -= before.compileMisses;
            s.linkHits -= before.linkHits;
            s.linkMisses -= before.linkMisses;
            s.imageHits -= before.imageHits;
            s.imageMisses -= before.imageMisses;
            s.evictions -= before.evictions;
            out.cacheStats = s;
        }
    }
    ::unsetenv("MBIAS_SIM_REFERENCE");
    ::unsetenv("MBIAS_SIM_TRACE");
    out.tasksPerSec = double(out.tasks) / out.wallSeconds;
    return out;
}

double
hitRate(std::uint64_t hits, std::uint64_t misses)
{
    const std::uint64_t total = hits + misses;
    return total ? double(hits) / double(total) : 0.0;
}

void
printTiers(const char *name, const TierResult &r, bool comma)
{
    std::printf("    \"%s\": {\n", name);
    std::printf("      \"reference_insts_per_sec\": %.0f,\n",
                r.reference);
    std::printf("      \"fast_insts_per_sec\": %.0f,\n", r.fast);
    std::printf("      \"trace_insts_per_sec\": %.0f,\n", r.trace);
    std::printf("      \"fast_vs_reference\": %.4f,\n",
                r.fast / r.reference);
    std::printf("      \"trace_vs_fast\": %.4f,\n", r.trace / r.fast);
    std::printf("      \"trace_vs_reference\": %.4f\n",
                r.trace / r.reference);
    std::printf("    }%s\n", comma ? "," : "");
}

} // namespace

int
main(int argc, char **argv)
{
    const unsigned jobs = benchutil::jobsFromArgs(argc, argv);

    std::fprintf(stderr, "sim throughput microbench (jobs=%u)\n", jobs);

    // Part 1: raw per-tier throughput on two loaded images.
    const auto &w = workloads::findWorkload("perl");
    toolchain::Compiler cc(toolchain::CompilerVendor::GccLike,
                           toolchain::OptLevel::O2);
    auto prog = toolchain::Linker().link(cc.compile(w.build({})));
    toolchain::LoaderConfig lc;
    lc.envBytes = 1024;
    const auto image = toolchain::Loader::load(std::move(prog), lc);
    const TierResult perl =
        measureTiers("perl", sim::MachineConfig::core2Like(), image);
    const TierResult straight =
        measureTiers("straightline", sim::MachineConfig::core2Like(),
                     straightLineImage());
    const auto traceStats = sim::TraceCache::global().stats();
    std::fprintf(
        stderr,
        "  trace cache: %llu superblocks, %llu ops batched, %llu "
        "interpreted, %llu fallbacks\n",
        (unsigned long long)traceStats.superblocks,
        (unsigned long long)traceStats.opsBatched,
        (unsigned long long)traceStats.opsInterpreted,
        (unsigned long long)traceStats.fallbacks);

    // Part 1b: the same three tiers on every registered machine
    // backend (perl image).  The in-order backend declares no trace
    // support, so its trace-tier number is the asserted fast-path
    // fallback — per-backend throughput is provenance for the
    // conformance sweep, not a race between core models.
    std::vector<std::pair<const sim::MachineBackend *, TierResult>>
        backendTiers;
    for (const auto &backend : sim::MachineRegistry::global().backends())
        backendTiers.emplace_back(
            &backend, measureTiers(backend.config.name.c_str(),
                                   backend.config, image));

    // Part 1c: record-once / replay-many on the noisy-repetition
    // driver shape (reps >= 20).  Per-rep noisy execution always pays
    // the reference interpreter; replay rides whatever tier is hot, so
    // perl bounds the memory-heavy end and the straight-line kernel
    // the superblock end (where the >=5x target lives).
    const NoisyRepResult noisyPerl =
        measureNoisyRepetition("perl", image);
    const NoisyRepResult noisyStraight =
        measureNoisyRepetition("straightline", straightLineImage());

    // Part 2: the campaign matrix.  Arms differ only in engine
    // plumbing, so their campaign results must agree exactly.
    const ArmResult optimized = campaignArm(true, Tier::Trace, jobs);
    const ArmResult cacheFast = campaignArm(true, Tier::Fast, jobs);
    const ArmResult cacheRef = campaignArm(true, Tier::Reference, jobs);
    const ArmResult seedLike =
        campaignArm(false, Tier::Reference, jobs);
    for (const ArmResult *arm : {&cacheFast, &cacheRef, &seedLike})
        mbias_assert(arm->sumSpeedup == optimized.sumSpeedup &&
                         arm->tasks == optimized.tasks,
                     "campaign results must not depend on cache or "
                     "sim tier choice");

    const double speedup =
        optimized.tasksPerSec / seedLike.tasksPerSec;
    std::fprintf(stderr,
                 "  campaign: cache+trace %.1f tasks/s, seed-like %.1f "
                 "tasks/s -> speedup %.2fx\n",
                 optimized.tasksPerSec, seedLike.tasksPerSec, speedup);

    const auto &cs = optimized.cacheStats;
    std::printf("{\n");
    std::printf("  \"jobs\": %u,\n", jobs);
    std::printf("  \"interpreter\": {\n");
    printTiers("perl", perl, true);
    printTiers("straightline", straight, true);
    std::printf("    \"trace_ops_batched\": %llu,\n",
                (unsigned long long)traceStats.opsBatched);
    std::printf("    \"trace_ops_interpreted\": %llu,\n",
                (unsigned long long)traceStats.opsInterpreted);
    std::printf("    \"trace_fallbacks\": %llu\n",
                (unsigned long long)traceStats.fallbacks);
    std::printf("  },\n");
    std::printf("  \"backends\": {\n");
    for (std::size_t i = 0; i < backendTiers.size(); ++i) {
        const auto &[backend, tiers] = backendTiers[i];
        std::printf("    \"%s\": {\n", backend->config.name.c_str());
        std::printf("      \"core_model\": \"%s\",\n",
                    backend->coreModel.c_str());
        std::printf("      \"trace_supported\": %s,\n",
                    backend->tiers.trace ? "true" : "false");
        std::printf("      \"reference_insts_per_sec\": %.0f,\n",
                    tiers.reference);
        std::printf("      \"fast_insts_per_sec\": %.0f,\n", tiers.fast);
        std::printf("      \"trace_insts_per_sec\": %.0f,\n",
                    tiers.trace);
        std::printf("      \"fast_vs_reference\": %.4f\n",
                    tiers.fast / tiers.reference);
        std::printf("    }%s\n",
                    i + 1 < backendTiers.size() ? "," : "");
    }
    std::printf("  },\n");
    std::printf("  \"noisy_repetition\": {\n");
    auto noisyJson = [](const char *wname, const NoisyRepResult &n,
                        bool comma) {
        std::printf("    \"%s\": {\n", wname);
        std::printf("      \"reps\": %u,\n", n.reps);
        std::printf("      \"replayed\": %s,\n",
                    n.replayed ? "true" : "false");
        std::printf("      \"per_rep_wall_seconds\": %.4f,\n",
                    n.perRepWall);
        std::printf("      \"replay_wall_seconds\": %.4f,\n",
                    n.replayWall);
        std::printf("      \"per_rep_insts_per_sec\": %.0f,\n",
                    n.perRepInstsPerSec);
        std::printf("      \"replay_insts_per_sec\": %.0f,\n",
                    n.replayInstsPerSec);
        std::printf("      \"speedup\": %.4f\n", n.speedup);
        std::printf("    }%s\n", comma ? "," : "");
    };
    noisyJson("perl", noisyPerl, true);
    noisyJson("straightline", noisyStraight, false);
    std::printf("  },\n");
    std::printf("  \"campaign_env_sweep\": {\n");
    std::printf("    \"tasks\": %llu,\n",
                (unsigned long long)optimized.tasks);
    auto arm = [](const char *name, const ArmResult &r, bool comma) {
        std::printf("    \"%s\": {\"tasks_per_sec\": %.2f, "
                    "\"wall_seconds\": %.4f}%s\n",
                    name, r.tasksPerSec, r.wallSeconds,
                    comma ? "," : "");
    };
    arm("cache_trace", optimized, true);
    arm("cache_fast", cacheFast, true);
    arm("cache_reference", cacheRef, true);
    arm("nocache_reference", seedLike, true);
    std::printf("    \"cache_hit_rates\": {\"compile\": %.4f, "
                "\"link\": %.4f, \"image\": %.4f}\n",
                hitRate(cs.compileHits, cs.compileMisses),
                hitRate(cs.linkHits, cs.linkMisses),
                hitRate(cs.imageHits, cs.imageMisses));
    std::printf("  },\n");
    std::printf("  \"speedup\": %.4f\n", speedup);
    std::printf("}\n");
    return 0;
}
