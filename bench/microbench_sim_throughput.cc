/**
 * @file
 * Throughput microbenchmark for this PR's two optimization layers:
 *
 *  1. raw interpreter speed — simulated instructions/second of the
 *     plan-based fast path vs the reference interpreter on one image
 *     (identical results, different wall-clock);
 *  2. end-to-end campaign throughput — tasks/second of a fig3-style
 *     environment-size sweep under the 2x2 matrix
 *     {artifact cache on, off} x {fast path, reference interpreter}.
 *
 * The headline `speedup` compares the optimized engine (cache + fast
 * path) against the pre-cache, pre-fast-path configuration (no cache +
 * reference), i.e. the seed tree's behavior.  Human-readable progress
 * goes to stderr; stdout is exactly one JSON document, which
 * scripts/reproduce_all.sh captures as results/BENCH_sim.json.
 *
 * Timing methodology: each arm runs once to warm (and to verify the
 * report is bitwise identical across arms), then best-of-kRounds
 * timed runs are reported, which suppresses one-off scheduling noise
 * the same way the repo's interleaved probes do.
 */
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "bench_args.hh"
#include "campaign/engine.hh"
#include "core/experiment.hh"
#include "core/setup.hh"
#include "sim/machine.hh"
#include "sim/plan.hh"
#include "toolchain/artifacts.hh"
#include "toolchain/compiler.hh"
#include "toolchain/linker.hh"
#include "toolchain/loader.hh"
#include "workloads/registry.hh"

using namespace mbias;

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Simulated instructions/second of one interpreter on one image. */
double
rawInstsPerSec(const toolchain::ProcessImage &image, bool fast)
{
    sim::Machine machine(sim::MachineConfig::core2Like());
    machine.setUseFastPath(fast);
    auto warm = machine.run(image);
    mbias_assert(warm.halted, "bench workload did not halt");
    const double insts = double(warm.instructions());
    constexpr int kRounds = 5, kReps = 6;
    double best = 0.0;
    for (int round = 0; round < kRounds; ++round) {
        const auto t0 = std::chrono::steady_clock::now();
        for (int r = 0; r < kReps; ++r)
            machine.run(image);
        best = std::max(best, insts * kReps / secondsSince(t0));
    }
    return best;
}

struct ArmResult
{
    double tasksPerSec = 0.0;
    double wallSeconds = 0.0;
    std::uint64_t tasks = 0;
    double sumSpeedup = 0.0; ///< campaign-result checksum across arms
    toolchain::ArtifactCacheStats cacheStats;
};

/** One fig3-style env sweep under one (cache, interpreter) setting. */
ArmResult
campaignArm(bool cache_on, bool fast, unsigned jobs)
{
    // The interpreter toggle is the same process-wide escape hatch
    // users have: MBIAS_SIM_REFERENCE pins runs to the reference
    // interpreter and is re-read on every run().
    if (fast)
        ::unsetenv("MBIAS_SIM_REFERENCE");
    else
        ::setenv("MBIAS_SIM_REFERENCE", "1", 1);

    std::vector<core::ExperimentSetup> setups;
    for (std::uint64_t env = 0; env <= 4096; env += 40) {
        core::ExperimentSetup setup;
        setup.envBytes = env;
        setups.push_back(setup);
    }
    campaign::CampaignSpec cspec; // perl on core2like by default
    cspec.withSetups(setups);
    campaign::CampaignOptions opts;
    opts.jobs = jobs;
    opts.artifactCache = cache_on;

    ArmResult out;
    constexpr int kRounds = 3;
    for (int round = 0; round < kRounds; ++round) {
        // Every round starts from a cold process-wide state, so the
        // arm includes the cache-fill cost it would pay in a real
        // campaign (and the cache-off arm can't hit stale entries).
        toolchain::ArtifactCache::global().clear();
        sim::PlanCache::global().clear();
        // stats() counters are cumulative over the process; diff
        // around the run to attribute hits/misses to this round.
        const auto before = toolchain::ArtifactCache::global().stats();
        const auto t0 = std::chrono::steady_clock::now();
        auto report = campaign::CampaignEngine(cspec, opts).run();
        const double wall = secondsSince(t0);
        if (out.tasks == 0) {
            out.tasks = report.stats.totalTasks;
            for (const auto &o : report.bias.outcomes)
                out.sumSpeedup += o.speedup;
        }
        if (out.wallSeconds == 0.0 || wall < out.wallSeconds) {
            out.wallSeconds = wall;
            auto s = toolchain::ArtifactCache::global().stats();
            s.compileHits -= before.compileHits;
            s.compileMisses -= before.compileMisses;
            s.linkHits -= before.linkHits;
            s.linkMisses -= before.linkMisses;
            s.imageHits -= before.imageHits;
            s.imageMisses -= before.imageMisses;
            s.evictions -= before.evictions;
            out.cacheStats = s;
        }
    }
    ::unsetenv("MBIAS_SIM_REFERENCE");
    out.tasksPerSec = double(out.tasks) / out.wallSeconds;
    return out;
}

double
hitRate(std::uint64_t hits, std::uint64_t misses)
{
    const std::uint64_t total = hits + misses;
    return total ? double(hits) / double(total) : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    const unsigned jobs = benchutil::jobsFromArgs(argc, argv);

    std::fprintf(stderr, "sim throughput microbench (jobs=%u)\n", jobs);

    // Part 1: raw interpreter throughput on one loaded image.
    const auto &w = workloads::findWorkload("perl");
    toolchain::Compiler cc(toolchain::CompilerVendor::GccLike,
                           toolchain::OptLevel::O2);
    auto prog = toolchain::Linker().link(cc.compile(w.build({})));
    toolchain::LoaderConfig lc;
    lc.envBytes = 1024;
    const auto image = toolchain::Loader::load(std::move(prog), lc);
    const double refIps = rawInstsPerSec(image, false);
    const double fastIps = rawInstsPerSec(image, true);
    std::fprintf(stderr,
                 "  interpreter: fast %.1f Mi/s, reference %.1f Mi/s "
                 "(%.2fx)\n",
                 fastIps / 1e6, refIps / 1e6, fastIps / refIps);

    // Part 2: the 2x2 campaign matrix.  Arms differ only in engine
    // plumbing, so their campaign results must agree exactly.
    const ArmResult optimized = campaignArm(true, true, jobs);
    const ArmResult cacheOnly = campaignArm(true, false, jobs);
    const ArmResult fastOnly = campaignArm(false, true, jobs);
    const ArmResult seedLike = campaignArm(false, false, jobs);
    for (const ArmResult *arm : {&cacheOnly, &fastOnly, &seedLike})
        mbias_assert(arm->sumSpeedup == optimized.sumSpeedup &&
                         arm->tasks == optimized.tasks,
                     "campaign results must not depend on cache or "
                     "interpreter choice");

    const double speedup =
        optimized.tasksPerSec / seedLike.tasksPerSec;
    std::fprintf(stderr,
                 "  campaign: cache+fast %.1f tasks/s, seed-like %.1f "
                 "tasks/s -> speedup %.2fx\n",
                 optimized.tasksPerSec, seedLike.tasksPerSec, speedup);

    const auto &cs = optimized.cacheStats;
    std::printf("{\n");
    std::printf("  \"jobs\": %u,\n", jobs);
    std::printf("  \"interpreter\": {\n");
    std::printf("    \"fast_insts_per_sec\": %.0f,\n", fastIps);
    std::printf("    \"reference_insts_per_sec\": %.0f,\n", refIps);
    std::printf("    \"ratio\": %.4f\n", fastIps / refIps);
    std::printf("  },\n");
    std::printf("  \"campaign_env_sweep\": {\n");
    std::printf("    \"tasks\": %llu,\n",
                (unsigned long long)optimized.tasks);
    auto arm = [](const char *name, const ArmResult &r, bool comma) {
        std::printf("    \"%s\": {\"tasks_per_sec\": %.2f, "
                    "\"wall_seconds\": %.4f}%s\n",
                    name, r.tasksPerSec, r.wallSeconds,
                    comma ? "," : "");
    };
    arm("cache_fast", optimized, true);
    arm("cache_reference", cacheOnly, true);
    arm("nocache_fast", fastOnly, true);
    arm("nocache_reference", seedLike, true);
    std::printf("    \"cache_hit_rates\": {\"compile\": %.4f, "
                "\"link\": %.4f, \"image\": %.4f}\n",
                hitRate(cs.compileHits, cs.compileMisses),
                hitRate(cs.linkHits, cs.linkMisses),
                hitRate(cs.imageHits, cs.imageMisses));
    std::printf("  },\n");
    std::printf("  \"speedup\": %.4f\n", speedup);
    std::printf("}\n");
    return 0;
}
