/**
 * @file
 * The one main() behind every figure/table wrapper binary.  Each
 * binary keeps its historical name (fig3_env_size_core2, ...) but is
 * this same translation unit compiled with -DMBIAS_FIGURE_ID="figN":
 * register the figure definitions, then hand off to the pipeline
 * driver, which parses the shared flags and renders the one figure.
 */
#include "figures/figures.hh"
#include "pipeline/driver.hh"

#ifndef MBIAS_FIGURE_ID
#error "wrapper binaries must be compiled with -DMBIAS_FIGURE_ID"
#endif

int
main(int argc, char **argv)
{
    mbias::figures::registerAll();
    return mbias::pipeline::figureMain(MBIAS_FIGURE_ID, argc, argv);
}
