#ifndef MBIAS_BENCH_BENCH_ARGS_HH
#define MBIAS_BENCH_BENCH_ARGS_HH

#include <cstdlib>
#include <cstring>

namespace mbias::benchutil
{

/**
 * Parses the one flag the campaign-engine-backed figure harnesses
 * share: `--jobs N` (worker threads; default 1).  Any other argument
 * is ignored so wrapper scripts can pass harness-wide flag sets.
 * Results are identical for every value of N — the engine's
 * determinism guarantee — only the wall-clock changes.
 */
inline unsigned
jobsFromArgs(int argc, char **argv)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], "--jobs") == 0)
            return unsigned(std::strtoul(argv[i + 1], nullptr, 10));
    return 1;
}

/**
 * The shared flag set of the statistics-aware harnesses (fig7, fig8):
 * `--jobs N`, `--resamples R`, and `--confidence C`.  Unknown
 * arguments are ignored, like jobsFromArgs.  The defaults reproduce
 * the harnesses' historical output byte for byte: resamples 0 keeps
 * the Student-t interval, and 0.95 is the level every figure has
 * always reported.
 */
struct BenchArgs
{
    unsigned jobs = 1;
    int resamples = 0;
    double confidence = 0.95;

    static BenchArgs
    parse(int argc, char **argv)
    {
        BenchArgs a;
        for (int i = 1; i + 1 < argc; ++i) {
            if (std::strcmp(argv[i], "--jobs") == 0)
                a.jobs = unsigned(std::strtoul(argv[i + 1], nullptr, 10));
            else if (std::strcmp(argv[i], "--resamples") == 0)
                a.resamples = int(std::strtol(argv[i + 1], nullptr, 10));
            else if (std::strcmp(argv[i], "--confidence") == 0)
                a.confidence = std::strtod(argv[i + 1], nullptr);
        }
        return a;
    }
};

} // namespace mbias::benchutil

#endif // MBIAS_BENCH_BENCH_ARGS_HH
