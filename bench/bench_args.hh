#ifndef MBIAS_BENCH_BENCH_ARGS_HH
#define MBIAS_BENCH_BENCH_ARGS_HH

#include <cstdlib>
#include <cstring>

namespace mbias::benchutil
{

/**
 * Parses the one flag the campaign-engine-backed figure harnesses
 * share: `--jobs N` (worker threads; default 1).  Any other argument
 * is ignored so wrapper scripts can pass harness-wide flag sets.
 * Results are identical for every value of N — the engine's
 * determinism guarantee — only the wall-clock changes.
 */
inline unsigned
jobsFromArgs(int argc, char **argv)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], "--jobs") == 0)
            return unsigned(std::strtoul(argv[i + 1], nullptr, 10));
    return 1;
}

} // namespace mbias::benchutil

#endif // MBIAS_BENCH_BENCH_ARGS_HH
