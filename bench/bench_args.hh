#ifndef MBIAS_BENCH_BENCH_ARGS_HH
#define MBIAS_BENCH_BENCH_ARGS_HH

#include "pipeline/options.hh"

namespace mbias::benchutil
{

/**
 * Thin compatibility shims over the shared pipeline parser
 * (pipeline::parsePipelineArgs) for the microbenchmarks, which are
 * not registered figures but take the same flags.  The figure/table
 * harnesses themselves no longer use these — their wrapper binaries
 * parse through pipeline::figureMain directly.
 */
inline unsigned
jobsFromArgs(int argc, char **argv)
{
    return pipeline::parsePipelineArgs(argc, argv).options.jobs;
}

/**
 * The historical bench flag set with its historical defaults:
 * resamples 0 keeps the Student-t interval, and 0.95 is the level
 * every harness has always reported.
 */
struct BenchArgs
{
    unsigned jobs = 1;
    int resamples = 0;
    double confidence = 0.95;

    static BenchArgs
    parse(int argc, char **argv)
    {
        const auto parsed = pipeline::parsePipelineArgs(argc, argv);
        BenchArgs a;
        a.jobs = parsed.options.jobs;
        a.resamples = parsed.options.resamplesOr(0);
        a.confidence = parsed.options.confidenceOr(0.95);
        return a;
    }
};

} // namespace mbias::benchutil

#endif // MBIAS_BENCH_BENCH_ARGS_HH
