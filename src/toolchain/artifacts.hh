#ifndef MBIAS_TOOLCHAIN_ARTIFACTS_HH
#define MBIAS_TOOLCHAIN_ARTIFACTS_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/module.hh"
#include "obs/metrics.hh"
#include "toolchain/linker.hh"
#include "toolchain/linkorder.hh"
#include "toolchain/loader.hh"

namespace mbias::toolchain
{

/**
 * A compiled module set plus its identity: the immutable ".o files" of
 * one (workload, config, vendor, opt level) compilation, annotated
 * with a content fingerprint computed once at insertion time.  The
 * fingerprint — not the compile key — is what downstream link
 * artifacts are addressed by, so two compile keys that happen to
 * produce identical modules share their links.
 */
struct CompiledModules
{
    std::vector<isa::Module> modules;

    /** 128-bit content hash over every function, instruction, label,
     *  and global of every module (two independent FNV-1a streams). */
    std::uint64_t fingerprintHi = 0;
    std::uint64_t fingerprintLo = 0;

    /** Approximate heap footprint, for the cache's byte budget. */
    std::uint64_t bytes = 0;
};

using ModulesPtr = std::shared_ptr<const CompiledModules>;
using ProgramPtr = std::shared_ptr<const LinkedProgram>;

/** Point-in-time accounting of one ArtifactCache. */
struct ArtifactCacheStats
{
    std::uint64_t compileHits = 0;
    std::uint64_t compileMisses = 0;
    std::uint64_t linkHits = 0;
    std::uint64_t linkMisses = 0;
    std::uint64_t imageHits = 0;
    std::uint64_t imageMisses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t bytes = 0; ///< current resident artifact bytes

    std::string str() const;
};

/**
 * A sharded, thread-safe, content-addressed cache for toolchain
 * artifacts, shared by all workers of a campaign:
 *
 *  - **compiled module sets**, keyed by the caller's compile key
 *    (workload + config + vendor + opt level — compilation is
 *    deterministic, so the inputs identify the output);
 *  - **linked programs**, keyed by (module content fingerprint, link
 *    order fingerprint, linker config) — an env-size sweep whose 200
 *    setups differ only in envBytes links each side once instead of
 *    200 times;
 *  - **loaded-image layout parameters**, keyed by (program identity,
 *    LoaderConfig, entry) — repeated loads of one program under one
 *    environment reduce to copying five precomputed addresses.
 *
 * Values are immutable and handed out as shared_ptr, so a cached
 * linked program is *the same object* in every task that uses it
 * (pointer-identical, hence trivially byte-identical) and doubles as
 * a stable identity for the simulator's execution-plan cache.
 *
 * Eviction is LRU under a byte budget (per shard: budget / kShards).
 * Each shard has its own mutex; the hot path is one lock, one map
 * lookup, one list splice.  On a miss the producer runs *outside* the
 * lock; if two threads race the same miss, the first insert wins and
 * the loser adopts it — both outcomes are identical by determinism of
 * the toolchain, so results never depend on the race.
 *
 * Metrics: with attachMetrics(), the cache maintains
 * `artifacts.{compile,link,image}_{hits,misses}`,
 * `artifacts.evictions` (counters) and `artifacts.bytes` (gauge).
 * Stats are also available directly via stats() for harnesses that
 * do not run a registry.
 */
class ArtifactCache
{
  public:
    /** Default byte budget: plenty for every (vendor, level, order)
     *  combination of the bundled suite, small next to the host. */
    static constexpr std::uint64_t kDefaultByteBudget = 256ull << 20;

    explicit ArtifactCache(std::uint64_t byte_budget = kDefaultByteBudget);

    /** The process-wide cache campaign workers share. */
    static ArtifactCache &global();

    /**
     * Attaches a metrics registry (nullptr detaches).  @p metrics must
     * outlive the attachment; the campaign engine attaches its per-run
     * registry for the duration of a run.
     */
    void attachMetrics(obs::Registry *metrics);

    /**
     * Returns the compiled modules for @p key, invoking @p produce on
     * a miss.  @p key must capture every compile input (the runner
     * uses "workload|scale|seed|vendor|level").
     */
    ModulesPtr compiled(const std::string &key,
                        const std::function<std::vector<isa::Module>()>
                            &produce);

    /** Returns the linked program for (@p mods, @p order), linking on
     *  a miss. */
    ProgramPtr linked(const ModulesPtr &mods, const LinkOrder &order,
                      const LinkerConfig &config = {});

    /** Builds a ProcessImage over the shared @p prog, serving the
     *  layout parameters from cache when this (program, config,
     *  entry) was loaded before. */
    ProcessImage image(const ProgramPtr &prog, const LoaderConfig &config,
                       const std::string &entry = "main");

    /** Current accounting (sums over shards; O(shards)). */
    ArtifactCacheStats stats() const;

    /** Drops every artifact (tests; not used on the hot path). */
    void clear();

    std::uint64_t byteBudget() const { return byteBudget_; }

  private:
    static constexpr unsigned kShards = 8;

    /** Which artifact kind an LRU node refers to. */
    enum class Kind
    {
        Compile,
        Link,
        Image,
    };

    struct LinkKey
    {
        std::uint64_t modHi = 0, modLo = 0;
        std::uint64_t orderFp = 0;
        std::uint64_t configFp = 0;
        auto operator<=>(const LinkKey &) const = default;
    };

    struct ImageKey
    {
        const LinkedProgram *prog = nullptr;
        LoaderConfig config;
        std::string entry;
        bool operator==(const ImageKey &o) const;
        bool operator<(const ImageKey &o) const;
    };

    /** The cached layout parameters of one load. */
    struct ImageLayout
    {
        Addr initialSp = 0, stackTop = 0, heapBase = 0, gp = 0;
        std::uint32_t entryIdx = 0;
        ProgramPtr pin; ///< keeps the keyed program pointer valid
    };

    struct LruNode
    {
        Kind kind;
        std::string compileKey; ///< Kind::Compile
        LinkKey linkKey;        ///< Kind::Link
        ImageKey imageKey;      ///< Kind::Image
        std::uint64_t bytes = 0;
    };

    template <typename V> struct Entry
    {
        V value;
        std::list<LruNode>::iterator lru;
    };

    struct Shard
    {
        mutable std::mutex mutex;
        std::list<LruNode> lru; ///< most-recently used at front
        std::unordered_map<std::string, Entry<ModulesPtr>> compiles;
        std::map<LinkKey, Entry<ProgramPtr>> links;
        std::map<ImageKey, Entry<ImageLayout>> images;
        std::uint64_t bytes = 0;
    };

    Shard &shardFor(std::uint64_t hash);
    void touch(Shard &s, std::list<LruNode>::iterator it);
    void insertNode(Shard &s, LruNode node,
                    std::list<LruNode>::iterator &out);
    void evictOver(Shard &s); ///< caller holds s.mutex
    void count(std::atomic<std::uint64_t> &stat,
               const std::atomic<obs::Counter *> &c);
    void adjustBytes(std::int64_t delta);

    std::uint64_t byteBudget_;
    std::array<Shard, kShards> shards_;

    std::atomic<std::uint64_t> compileHits_{0}, compileMisses_{0};
    std::atomic<std::uint64_t> linkHits_{0}, linkMisses_{0};
    std::atomic<std::uint64_t> imageHits_{0}, imageMisses_{0};
    std::atomic<std::uint64_t> evictions_{0};
    std::atomic<std::uint64_t> bytes_{0};

    /**
     * Metric handles, resolved once per attachMetrics() and read with
     * relaxed atomics on the hot path (no lock).  attachMetrics() is
     * expected not to race with cache use — the engine attaches before
     * workers start and detaches after they join; a racing reader
     * would only mis-route a handful of counts, never corrupt state.
     */
    std::mutex metricsMutex_; ///< serializes attachMetrics() calls
    std::atomic<obs::Counter *> cCompileHits_{nullptr};
    std::atomic<obs::Counter *> cCompileMisses_{nullptr};
    std::atomic<obs::Counter *> cLinkHits_{nullptr};
    std::atomic<obs::Counter *> cLinkMisses_{nullptr};
    std::atomic<obs::Counter *> cImageHits_{nullptr};
    std::atomic<obs::Counter *> cImageMisses_{nullptr};
    std::atomic<obs::Counter *> cEvictions_{nullptr};
    std::atomic<obs::Gauge *> gBytes_{nullptr};
};

/** Approximate heap footprint of a linked program (cache accounting). */
std::uint64_t approxBytes(const LinkedProgram &prog);

/** Approximate heap footprint of a module set (cache accounting). */
std::uint64_t approxBytes(const std::vector<isa::Module> &modules);

/** The 128-bit content fingerprint of a module set (see
 *  CompiledModules; exposed for tests). */
std::pair<std::uint64_t, std::uint64_t>
fingerprintModules(const std::vector<isa::Module> &modules);

} // namespace mbias::toolchain

#endif // MBIAS_TOOLCHAIN_ARTIFACTS_HH
