#include "toolchain/encoding.hh"

#include "base/logging.hh"

namespace mbias::toolchain
{

using isa::Instruction;
using isa::Opcode;

namespace
{

// ---------------------------------------------------------------------
// Encoding opcode space: the 6-bit instruction identifier.  Plain
// opcodes map to their enum value; wide-immediate forms get dedicated
// numbers above them so the decoder can derive both format and size
// from the identifier alone.
// ---------------------------------------------------------------------

constexpr unsigned num_plain = unsigned(Opcode::NumOpcodes);

/** Wide variants, in a fixed order; index + num_plain = encoding id. */
constexpr Opcode wide_table[] = {
    Opcode::Addi, Opcode::Andi, Opcode::Ori,  Opcode::Xori,
    Opcode::Slli, Opcode::Srli, Opcode::Srai, Opcode::Slti,
    Opcode::Li, // the 64-bit form
    Opcode::Ld1,  Opcode::Ld2,  Opcode::Ld4,  Opcode::Ld8,
    Opcode::St1,  Opcode::St2,  Opcode::St4,  Opcode::St8,
    Opcode::Nop, // the multi-byte form
};
constexpr unsigned num_wide = sizeof(wide_table) / sizeof(wide_table[0]);
static_assert(num_plain + num_wide <= 64, "encoding id must fit 6 bits");

int
wideIndexOf(Opcode op)
{
    for (unsigned i = 0; i < num_wide; ++i)
        if (wide_table[i] == op)
            return int(i);
    return -1;
}

bool
fitsInt8(std::int64_t v)
{
    return v >= -128 && v <= 127;
}

bool
fitsInt32(std::int64_t v)
{
    return v >= INT32_MIN && v <= INT32_MAX;
}

/** Whether this instruction encodes with the wide form. */
bool
isWideForm(const Instruction &in)
{
    switch (in.op) {
      case Opcode::Addi:
      case Opcode::Andi:
      case Opcode::Ori:
      case Opcode::Xori:
      case Opcode::Slli:
      case Opcode::Srli:
      case Opcode::Srai:
      case Opcode::Slti:
      case Opcode::Ld1:
      case Opcode::Ld2:
      case Opcode::Ld4:
      case Opcode::Ld8:
      case Opcode::St1:
      case Opcode::St2:
      case Opcode::St4:
      case Opcode::St8:
        return !fitsInt8(in.imm);
      case Opcode::Li:
        return !fitsInt32(in.imm);
      case Opcode::Nop:
        return in.encodedSize() > 1;
      default:
        return false;
    }
}

/** LSB-first bit writer over a fixed-size byte buffer. */
class BitWriter
{
  public:
    explicit BitWriter(unsigned bytes) : buf_(bytes, 0) {}

    void
    put(std::uint64_t value, unsigned bits)
    {
        for (unsigned i = 0; i < bits; ++i) {
            const unsigned pos = cursor_ + i;
            mbias_assert(pos < buf_.size() * 8, "encoding overflow");
            if ((value >> i) & 1)
                buf_[pos / 8] |= std::uint8_t(1u << (pos % 8));
        }
        cursor_ += bits;
    }

    std::vector<std::uint8_t> take() { return std::move(buf_); }

  private:
    std::vector<std::uint8_t> buf_;
    unsigned cursor_ = 0;
};

/** LSB-first bit reader. */
class BitReader
{
  public:
    BitReader(const std::vector<std::uint8_t> &image, std::size_t offset)
        : image_(image), base_(offset * 8)
    {
    }

    std::uint64_t
    get(unsigned bits)
    {
        std::uint64_t v = 0;
        for (unsigned i = 0; i < bits; ++i) {
            const std::size_t pos = base_ + cursor_ + i;
            mbias_assert(pos / 8 < image_.size(), "decoding overrun");
            if ((image_[pos / 8] >> (pos % 8)) & 1)
                v |= std::uint64_t(1) << i;
        }
        cursor_ += bits;
        return v;
    }

    std::int64_t
    getSigned(unsigned bits)
    {
        std::uint64_t v = get(bits);
        if (bits < 64 && (v >> (bits - 1)) & 1)
            v |= ~((std::uint64_t(1) << bits) - 1);
        return std::int64_t(v);
    }

  private:
    const std::vector<std::uint8_t> &image_;
    std::size_t base_;
    unsigned cursor_ = 0;
};

} // namespace

std::vector<std::uint8_t>
encode(const PlacedInst &pi, const LinkedProgram &prog)
{
    const Instruction &in = pi.inst;
    mbias_assert(in.op != Opcode::La, "cannot encode unlinked La");
    const unsigned size = pi.size;
    BitWriter w(size);

    const bool wide = isWideForm(in);
    const unsigned encoding_id =
        wide ? num_plain + unsigned(wideIndexOf(in.op))
             : unsigned(in.op);
    w.put(encoding_id, 6);

    switch (isa::opClass(in.op)) {
      case isa::OpClass::IntAlu:
      case isa::OpClass::IntMul:
      case isa::OpClass::IntDiv:
        if (in.op == Opcode::Li) {
            w.put(in.rd, 5);
            w.put(std::uint64_t(in.imm), wide ? 64 : 32);
        } else if (in.op == Opcode::Addi || in.op == Opcode::Andi ||
                   in.op == Opcode::Ori || in.op == Opcode::Xori ||
                   in.op == Opcode::Slli || in.op == Opcode::Srli ||
                   in.op == Opcode::Srai || in.op == Opcode::Slti) {
            w.put(in.rd, 5);
            w.put(in.rs1, 5);
            w.put(std::uint64_t(in.imm), wide ? 32 : 8);
        } else {
            w.put(in.rd, 5);
            w.put(in.rs1, 5);
            w.put(in.rs2, 5);
        }
        break;
      case isa::OpClass::Load:
      case isa::OpClass::Store:
        w.put(in.rd, 5);
        w.put(in.rs1, 5);
        w.put(std::uint64_t(in.imm), wide ? 32 : 8);
        break;
      case isa::OpClass::CondBranch: {
          const Addr target = prog.code[pi.targetIdx].pc;
          const std::int64_t rel =
              std::int64_t(target) - std::int64_t(pi.pc + size);
          mbias_assert(rel >= INT16_MIN && rel <= INT16_MAX,
                       "branch displacement exceeds rel16");
          w.put(in.rs1, 5);
          w.put(in.rs2, 5);
          w.put(std::uint64_t(rel), 16);
          break;
      }
      case isa::OpClass::Jump:
      case isa::OpClass::Call: {
          const Addr target = prog.code[pi.targetIdx].pc;
          mbias_assert(target <= UINT32_MAX, "target exceeds abs32");
          w.put(target, 32);
          break;
      }
      case isa::OpClass::Ret:
      case isa::OpClass::Halt:
        break;
      case isa::OpClass::Nop:
        if (wide)
            w.put(size, 8);
        break;
    }
    return w.take();
}

std::vector<std::uint8_t>
encodeProgram(const LinkedProgram &prog)
{
    std::vector<std::uint8_t> image(prog.codeEnd - prog.codeBase, 0);
    for (const auto &pi : prog.code) {
        const auto bytes = encode(pi, prog);
        const std::size_t off = pi.pc - prog.codeBase;
        for (std::size_t i = 0; i < bytes.size(); ++i)
            image[off + i] = bytes[i];
    }
    return image;
}

DecodedInst
decode(const std::vector<std::uint8_t> &image, std::size_t offset,
       Addr image_base)
{
    BitReader r(image, offset);
    const unsigned encoding_id = unsigned(r.get(6));
    mbias_assert(encoding_id < num_plain + num_wide,
                 "bad encoding id ", encoding_id);
    const bool wide = encoding_id >= num_plain;
    const Opcode op = wide ? wide_table[encoding_id - num_plain]
                           : Opcode(encoding_id);

    DecodedInst d;
    d.inst.op = op;

    switch (isa::opClass(op)) {
      case isa::OpClass::IntAlu:
      case isa::OpClass::IntMul:
      case isa::OpClass::IntDiv:
        if (op == Opcode::Li) {
            d.inst.rd = isa::Reg(r.get(5));
            d.inst.imm = r.getSigned(wide ? 64 : 32);
            d.size = wide ? 10 : 6;
        } else if (op == Opcode::Addi || op == Opcode::Andi ||
                   op == Opcode::Ori || op == Opcode::Xori ||
                   op == Opcode::Slli || op == Opcode::Srli ||
                   op == Opcode::Srai || op == Opcode::Slti) {
            d.inst.rd = isa::Reg(r.get(5));
            d.inst.rs1 = isa::Reg(r.get(5));
            d.inst.imm = r.getSigned(wide ? 32 : 8);
            d.size = wide ? 6 : 4;
        } else {
            d.inst.rd = isa::Reg(r.get(5));
            d.inst.rs1 = isa::Reg(r.get(5));
            d.inst.rs2 = isa::Reg(r.get(5));
            d.size = 3;
        }
        break;
      case isa::OpClass::Load:
      case isa::OpClass::Store:
        d.inst.rd = isa::Reg(r.get(5));
        d.inst.rs1 = isa::Reg(r.get(5));
        d.inst.imm = r.getSigned(wide ? 32 : 8);
        d.size = wide ? 6 : 4;
        break;
      case isa::OpClass::CondBranch: {
          d.inst.rs1 = isa::Reg(r.get(5));
          d.inst.rs2 = isa::Reg(r.get(5));
          const std::int64_t rel = r.getSigned(16);
          d.size = 4;
          d.inst.imm = std::int64_t(image_base + offset + d.size) + rel;
          break;
      }
      case isa::OpClass::Jump:
      case isa::OpClass::Call:
        d.inst.imm = std::int64_t(r.get(32));
        d.size = 5;
        break;
      case isa::OpClass::Ret:
        d.size = 1;
        break;
      case isa::OpClass::Halt:
        d.size = 2;
        break;
      case isa::OpClass::Nop:
        if (wide) {
            d.size = unsigned(r.get(8));
            d.inst.imm = d.size;
        } else {
            d.size = 1;
            d.inst.imm = 1;
        }
        break;
    }
    return d;
}

} // namespace mbias::toolchain
