#ifndef MBIAS_TOOLCHAIN_ENCODING_HH
#define MBIAS_TOOLCHAIN_ENCODING_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"
#include "isa/instruction.hh"
#include "toolchain/linker.hh"

namespace mbias::toolchain
{

/**
 * Binary encoding of linked µRISC code.
 *
 * The byte sizes the rest of the system reasons about
 * (Instruction::encodedSize) are realized exactly by this format: a
 * 6-bit encoding opcode (wide-immediate forms get their own encoding
 * opcodes), 5-bit register fields, LSB-first bit packing, sign-
 * extended immediates, 16-bit pc-relative branch displacements
 * (measured from the end of the instruction), and 32-bit absolute
 * jump/call targets.  Trailing bits up to the declared size are zero.
 *
 * The simulator executes the object form directly — this codec exists
 * so the toolchain is complete (a real text image can be emitted,
 * hex-dumped, and disassembled from bytes) and as an executable
 * specification of the size model: round-trip tests enforce
 * encode/decode fidelity for every instruction the suite generates.
 */

/** A decoded instruction plus its decoded byte length. */
struct DecodedInst
{
    /**
     * The instruction; control-flow targets are materialized as
     * absolute addresses in @c imm (labels and symbol names are a
     * link-time concept and do not survive encoding).
     */
    isa::Instruction inst;
    unsigned size = 0; ///< bytes consumed
};

/**
 * Encodes one placed instruction.  @p prog supplies resolved control
 * transfer targets.  The result is exactly pi.size bytes.
 */
std::vector<std::uint8_t> encode(const PlacedInst &pi,
                                 const LinkedProgram &prog);

/**
 * Encodes a whole program's text segment: byte i corresponds to
 * address prog.codeBase + i; alignment gaps are zero-filled.
 */
std::vector<std::uint8_t> encodeProgram(const LinkedProgram &prog);

/**
 * Decodes the instruction at @p offset in @p image, where the image
 * starts at address @p image_base (needed to materialize pc-relative
 * branch targets as absolute addresses).
 */
DecodedInst decode(const std::vector<std::uint8_t> &image,
                   std::size_t offset, Addr image_base);

} // namespace mbias::toolchain

#endif // MBIAS_TOOLCHAIN_ENCODING_HH
