#include "toolchain/loader.hh"

#include "base/bitutils.hh"
#include "base/random.hh"
#include "base/logging.hh"

namespace mbias::toolchain
{

ProcessImage
Loader::load(LinkedProgram program, const LoaderConfig &config,
             const std::string &entry)
{
    return load(std::make_shared<const LinkedProgram>(std::move(program)),
                config, entry);
}

ProcessImage
Loader::load(std::shared_ptr<const LinkedProgram> program,
             const LoaderConfig &config, const std::string &entry)
{
    mbias_assert(program, "cannot load a null program");
    mbias_assert(isPowerOf2(config.spAlign), "spAlign must be power of 2");
    mbias_assert(config.stackTop > config.envBytes + config.argvReserve,
                 "environment does not fit below stackTop");

    ProcessImage image;
    image.entryIdx = program->entryOf(entry);
    image.loaderConfig = config;
    image.stackTop = config.stackTop;
    if (config.aslrSeed) {
        Rng rng(config.aslrSeed ^ 0xa51a51a5ULL);
        image.stackTop -= rng.nextBounded(4096) * 4;
    }
    image.gp = program->dataBase;
    image.heapBase =
        alignUp(program->dataEnd + config.heapGap, 4096);

    // execve(): environment strings at the very top, then the argv and
    // auxiliary vectors, then the initial stack pointer, aligned only
    // as much as the ABI guarantees.
    const Addr below_env = image.stackTop - config.envBytes;
    const Addr below_argv = below_env - config.argvReserve;
    image.initialSp = alignDown(below_argv, config.spAlign);

    image.program = std::move(program);
    return image;
}

} // namespace mbias::toolchain
