#ifndef MBIAS_TOOLCHAIN_LINKORDER_HH
#define MBIAS_TOOLCHAIN_LINKORDER_HH

#include <cstdint>
#include <string>
#include <vector>

namespace mbias::toolchain
{

/**
 * The order in which modules (.o analogues) are presented to the
 * linker — the paper's second "innocuous" setup factor.  Real projects
 * pick this implicitly (Makefile wildcard order, alphabetical `ls`,
 * the order in which files were added); the paper shows the choice
 * changes measured performance enough to flip conclusions.
 */
class LinkOrder
{
  public:
    enum class Kind
    {
        AsGiven,      ///< the order the build system produced
        Alphabetical, ///< sorted by module name
        Seeded,       ///< a seeded pseudo-random permutation
        Explicit,     ///< caller-provided permutation
    };

    /** The default order (identity). */
    static LinkOrder asGiven();

    /** Alphabetical by module name ("ls" order). */
    static LinkOrder alphabetical();

    /** Deterministic random permutation from @p seed. */
    static LinkOrder shuffled(std::uint64_t seed);

    /** Explicit permutation of indices into the module list. */
    static LinkOrder explicitOrder(std::vector<std::size_t> perm);

    Kind kind() const { return kind_; }
    std::uint64_t seed() const { return seed_; }

    /**
     * Computes the permutation: result[i] is the index (into
     * @p module_names) of the module placed i-th.
     */
    std::vector<std::size_t>
    permutation(const std::vector<std::string> &module_names) const;

    /** Short description, e.g. "shuffled(17)". */
    std::string str() const;

    /**
     * Stable 64-bit identity of this order (kind, seed, and — for
     * Explicit orders — the full permutation).  Two orders with equal
     * fingerprints place the same module list identically, which is
     * what makes the fingerprint usable as an artifact-cache key
     * component (see toolchain::ArtifactCache).
     */
    std::uint64_t fingerprint() const;

    bool operator==(const LinkOrder &) const = default;

  private:
    LinkOrder(Kind kind, std::uint64_t seed,
              std::vector<std::size_t> perm = {})
        : kind_(kind), seed_(seed), perm_(std::move(perm))
    {
    }

    Kind kind_;
    std::uint64_t seed_;
    std::vector<std::size_t> perm_;
};

} // namespace mbias::toolchain

#endif // MBIAS_TOOLCHAIN_LINKORDER_HH
