#ifndef MBIAS_TOOLCHAIN_LOADER_HH
#define MBIAS_TOOLCHAIN_LOADER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/types.hh"
#include "toolchain/linker.hh"

namespace mbias::toolchain
{

/**
 * Loader configuration.  @c envBytes is the paper's first "innocuous"
 * setup factor: on UNIX the environment strings are copied to the top
 * of the stack, so their total size shifts the initial stack pointer —
 * and with it the alignment and cache-set placement of every stack
 * access the program ever makes.
 */
struct LoaderConfig
{
    /** Total size of the environment block, in bytes. */
    std::uint64_t envBytes = 0;

    /**
     * Alignment the OS guarantees for the initial stack pointer.  Small
     * on purpose (the historical 32-bit SysV ABI guaranteed only 4):
     * a coarser guarantee would mask part of the env-size effect.
     */
    std::uint64_t spAlign = 4;

    /** Top of the stack region. */
    Addr stackTop = 0x7ff0'0000'0000;

    /** Bytes reserved between env block and initial sp (argv/auxv). */
    std::uint64_t argvReserve = 64;

    /** Guard gap between the data segment and the heap. */
    std::uint64_t heapGap = 4096;

    /**
     * Stack address-space randomization: when nonzero, the stack
     * region is shifted down by a seed-derived offset (up to ~16 KiB
     * in 4-byte steps, so alignment classes are resampled too) before
     * the environment is placed, like a kernel's stack ASLR.  Randomizing this *per run* is the
     * Stabilizer-style remedy this paper inspired: each run samples a
     * fresh layout, turning bias into visible variance that averaging
     * can remove.
     */
    std::uint64_t aslrSeed = 0;
};

/**
 * A process ready to run: the linked program plus the memory layout
 * decisions the loader made (stack placement, heap base, global
 * pointer).
 *
 * The program is held by shared_ptr and never copied per image: many
 * images (one per environment size, say) can share one immutable
 * linked program, which is what lets the artifact cache hand the same
 * link result to every task of an env sweep — and what gives the
 * simulator's execution-plan cache a stable identity to key on.
 */
struct ProcessImage
{
    std::shared_ptr<const LinkedProgram> program;
    LoaderConfig loaderConfig;

    Addr initialSp = 0; ///< stack pointer at entry
    Addr stackTop = 0;  ///< top of the stack region
    Addr heapBase = 0;  ///< first heap address
    Addr gp = 0;        ///< global pointer (= program.dataBase)

    /** Entry instruction index ("main"). */
    std::uint32_t entryIdx = 0;

    /** The linked program (must be loaded). */
    const LinkedProgram &prog() const { return *program; }

    /** Offset of the initial sp within a 4 KiB page. */
    std::uint64_t spPageOffset() const { return initialSp & 0xfff; }
};

/**
 * The program loader: computes the process memory image for a linked
 * program under a given environment size, mirroring how execve() builds
 * a stack on UNIX.
 */
class Loader
{
  public:
    /** Builds the image; @p entry names the entry function. */
    static ProcessImage load(LinkedProgram program,
                             const LoaderConfig &config = {},
                             const std::string &entry = "main");

    /**
     * Same, over an already-shared program: the image references
     * @p program instead of copying it.  This is the overload the
     * artifact cache uses — loading is then pure layout arithmetic,
     * no O(code size) work.
     */
    static ProcessImage load(std::shared_ptr<const LinkedProgram> program,
                             const LoaderConfig &config = {},
                             const std::string &entry = "main");
};

} // namespace mbias::toolchain

#endif // MBIAS_TOOLCHAIN_LOADER_HH
