#include "toolchain/artifacts.hh"

#include <sstream>
#include <utility>

#include "base/hash.hh"
#include "base/logging.hh"

namespace mbias::toolchain
{

namespace
{

/** The shared FNV-1a stream; the 128-bit fingerprint runs two with
 *  different offset bases so a collision must defeat both
 *  independently. */
using Fnv = Fnv1a;

void
hashInstruction(Fnv &f, const isa::Instruction &inst)
{
    f.u64(std::uint64_t(inst.op));
    f.u64((std::uint64_t(inst.rd) << 16) | (std::uint64_t(inst.rs1) << 8) |
          inst.rs2);
    f.u64(std::uint64_t(inst.imm));
    f.u64(std::uint64_t(std::int64_t(inst.target)));
    f.str(inst.sym);
}

void
hashModule(Fnv &f, const isa::Module &m)
{
    f.str(m.name());
    f.u64(m.functions().size());
    for (const auto &fn : m.functions()) {
        f.str(fn.name());
        f.u64(fn.alignment());
        f.u64(fn.insts().size());
        for (const auto &inst : fn.insts())
            hashInstruction(f, inst);
        f.u64(fn.numLabels());
        for (std::size_t id = 0; id < fn.numLabels(); ++id)
            f.u64(fn.labelTarget(std::int32_t(id)));
    }
    f.u64(m.globals().size());
    for (const auto &g : m.globals()) {
        f.str(g.name);
        f.u64(g.size);
        f.u64(g.alignment);
        f.u64(g.init.size());
        f.bytes(g.init.data(), g.init.size());
    }
}

std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
}

std::uint64_t
linkerConfigFingerprint(const LinkerConfig &c)
{
    Fnv f(kFnv1aOffsetBasis);
    f.u64(c.codeBase);
    f.u64(c.dataPageAlign);
    f.u64(c.dataGap);
    return f.value();
}

} // namespace

std::pair<std::uint64_t, std::uint64_t>
fingerprintModules(const std::vector<isa::Module> &modules)
{
    Fnv a(kFnv1aOffsetBasis);     // standard FNV-1a offset basis
    Fnv b(0x9ae16a3b2f90404fULL); // an unrelated odd constant
    a.u64(modules.size());
    b.u64(modules.size());
    for (const auto &m : modules) {
        hashModule(a, m);
        hashModule(b, m);
    }
    return {a.value(), b.value()};
}

std::uint64_t
approxBytes(const std::vector<isa::Module> &modules)
{
    std::uint64_t n = 0;
    for (const auto &m : modules) {
        n += sizeof(isa::Module) + m.name().size();
        for (const auto &fn : m.functions()) {
            n += sizeof(isa::Function) + fn.name().size();
            n += fn.numLabels() * (sizeof(std::uint32_t) +
                                   sizeof(std::string));
            for (const auto &inst : fn.insts())
                n += sizeof(isa::Instruction) + inst.sym.capacity();
        }
        for (const auto &g : m.globals())
            n += sizeof(isa::GlobalData) + g.name.size() + g.init.size();
    }
    return n;
}

std::uint64_t
approxBytes(const LinkedProgram &prog)
{
    std::uint64_t n = sizeof(LinkedProgram);
    for (const auto &pi : prog.code)
        n += sizeof(PlacedInst) + pi.inst.sym.capacity();
    for (const auto &fn : prog.functions)
        n += sizeof(LinkedFunction) + fn.name.size();
    for (const auto &g : prog.globals)
        n += sizeof(LinkedGlobal) + g.name.size();
    n += prog.dataInit.size();
    // Hash maps: entry + bucket overhead per element, rounded up.
    n += (prog.addrToIdx.size() + prog.functionByName.size() +
          prog.globalByName.size()) *
         48;
    for (const auto &name : prog.moduleOrder)
        n += sizeof(std::string) + name.size();
    return n;
}

std::string
ArtifactCacheStats::str() const
{
    std::ostringstream os;
    os << "compile " << compileHits << "/" << compileHits + compileMisses
       << " link " << linkHits << "/" << linkHits + linkMisses << " image "
       << imageHits << "/" << imageHits + imageMisses << " evictions "
       << evictions << " bytes " << bytes;
    return os.str();
}

bool
ArtifactCache::ImageKey::operator==(const ImageKey &o) const
{
    return prog == o.prog && entry == o.entry &&
           config.envBytes == o.config.envBytes &&
           config.spAlign == o.config.spAlign &&
           config.stackTop == o.config.stackTop &&
           config.argvReserve == o.config.argvReserve &&
           config.heapGap == o.config.heapGap &&
           config.aslrSeed == o.config.aslrSeed;
}

bool
ArtifactCache::ImageKey::operator<(const ImageKey &o) const
{
    auto tie = [](const ImageKey &k) {
        return std::tie(k.prog, k.config.envBytes, k.config.spAlign,
                        k.config.stackTop, k.config.argvReserve,
                        k.config.heapGap, k.config.aslrSeed, k.entry);
    };
    return tie(*this) < tie(o);
}

ArtifactCache::ArtifactCache(std::uint64_t byte_budget)
    : byteBudget_(byte_budget)
{
    mbias_assert(byte_budget > 0, "artifact cache budget must be nonzero");
}

ArtifactCache &
ArtifactCache::global()
{
    static ArtifactCache cache;
    return cache;
}

void
ArtifactCache::attachMetrics(obs::Registry *metrics)
{
    std::lock_guard<std::mutex> lock(metricsMutex_);
    if (!metrics) {
        cCompileHits_ = nullptr;
        cCompileMisses_ = nullptr;
        cLinkHits_ = nullptr;
        cLinkMisses_ = nullptr;
        cImageHits_ = nullptr;
        cImageMisses_ = nullptr;
        cEvictions_ = nullptr;
        gBytes_ = nullptr;
        return;
    }
    cCompileHits_ = &metrics->counter("artifacts.compile_hits");
    cCompileMisses_ = &metrics->counter("artifacts.compile_misses");
    cLinkHits_ = &metrics->counter("artifacts.link_hits");
    cLinkMisses_ = &metrics->counter("artifacts.link_misses");
    cImageHits_ = &metrics->counter("artifacts.image_hits");
    cImageMisses_ = &metrics->counter("artifacts.image_misses");
    cEvictions_ = &metrics->counter("artifacts.evictions");
    obs::Gauge *g = &metrics->gauge("artifacts.bytes");
    g->set(std::int64_t(bytes_.load(std::memory_order_relaxed)));
    gBytes_ = g;
}

void
ArtifactCache::count(std::atomic<std::uint64_t> &stat,
                     const std::atomic<obs::Counter *> &c)
{
    stat.fetch_add(1, std::memory_order_relaxed);
    if (obs::Counter *counter = c.load(std::memory_order_relaxed))
        counter->add();
}

void
ArtifactCache::adjustBytes(std::int64_t delta)
{
    bytes_.fetch_add(std::uint64_t(delta), std::memory_order_relaxed);
    if (obs::Gauge *g = gBytes_.load(std::memory_order_relaxed))
        g->add(delta);
}

ArtifactCache::Shard &
ArtifactCache::shardFor(std::uint64_t hash)
{
    return shards_[mix64(hash) & (kShards - 1)];
}

void
ArtifactCache::touch(Shard &s, std::list<LruNode>::iterator it)
{
    s.lru.splice(s.lru.begin(), s.lru, it);
}

void
ArtifactCache::insertNode(Shard &s, LruNode node,
                          std::list<LruNode>::iterator &out)
{
    s.bytes += node.bytes;
    adjustBytes(std::int64_t(node.bytes));
    s.lru.push_front(std::move(node));
    out = s.lru.begin();
}

void
ArtifactCache::evictOver(Shard &s)
{
    const std::uint64_t shard_budget = byteBudget_ / kShards;
    // Never evict the MRU entry: an artifact larger than the shard
    // budget still gets cached (and replaced by the next insert)
    // rather than thrashing on every lookup.
    while (s.bytes > shard_budget && s.lru.size() > 1) {
        const LruNode &victim = s.lru.back();
        switch (victim.kind) {
          case Kind::Compile:
            s.compiles.erase(victim.compileKey);
            break;
          case Kind::Link:
            s.links.erase(victim.linkKey);
            break;
          case Kind::Image:
            s.images.erase(victim.imageKey);
            break;
        }
        s.bytes -= victim.bytes;
        adjustBytes(-std::int64_t(victim.bytes));
        s.lru.pop_back();
        count(evictions_, cEvictions_);
    }
}

ModulesPtr
ArtifactCache::compiled(const std::string &key,
                        const std::function<std::vector<isa::Module>()>
                            &produce)
{
    Shard &s = shardFor(std::hash<std::string>{}(key));
    {
        std::lock_guard<std::mutex> lock(s.mutex);
        auto it = s.compiles.find(key);
        if (it != s.compiles.end()) {
            touch(s, it->second.lru);
            count(compileHits_, cCompileHits_);
            return it->second.value;
        }
    }

    // Miss: compile outside the lock — compilation is deterministic,
    // so a racing thread producing the same key yields an identical
    // artifact and first-insert-wins below is sound.
    auto built = std::make_shared<CompiledModules>();
    built->modules = produce();
    std::tie(built->fingerprintHi, built->fingerprintLo) =
        fingerprintModules(built->modules);
    built->bytes = approxBytes(built->modules) + sizeof(CompiledModules);
    ModulesPtr value = std::move(built);

    std::lock_guard<std::mutex> lock(s.mutex);
    auto it = s.compiles.find(key);
    if (it != s.compiles.end()) {
        touch(s, it->second.lru);
        count(compileMisses_, cCompileMisses_); // we did do the work
        return it->second.value;
    }
    LruNode node;
    node.kind = Kind::Compile;
    node.compileKey = key;
    node.bytes = value->bytes;
    Entry<ModulesPtr> entry;
    entry.value = value;
    insertNode(s, std::move(node), entry.lru);
    s.compiles.emplace(key, std::move(entry));
    count(compileMisses_, cCompileMisses_);
    evictOver(s);
    return value;
}

ProgramPtr
ArtifactCache::linked(const ModulesPtr &mods, const LinkOrder &order,
                      const LinkerConfig &config)
{
    mbias_assert(mods, "linked(): null module set");
    LinkKey key;
    key.modHi = mods->fingerprintHi;
    key.modLo = mods->fingerprintLo;
    key.orderFp = order.fingerprint();
    key.configFp = linkerConfigFingerprint(config);

    Shard &s = shardFor(key.modHi ^ mix64(key.modLo) ^
                        mix64(key.orderFp) ^ key.configFp);
    {
        std::lock_guard<std::mutex> lock(s.mutex);
        auto it = s.links.find(key);
        if (it != s.links.end()) {
            touch(s, it->second.lru);
            count(linkHits_, cLinkHits_);
            return it->second.value;
        }
    }

    Linker linker(config);
    auto value = std::make_shared<const LinkedProgram>(
        linker.link(mods->modules, order));
    const std::uint64_t bytes = approxBytes(*value);

    std::lock_guard<std::mutex> lock(s.mutex);
    auto it = s.links.find(key);
    if (it != s.links.end()) {
        touch(s, it->second.lru);
        count(linkMisses_, cLinkMisses_);
        return it->second.value;
    }
    LruNode node;
    node.kind = Kind::Link;
    node.linkKey = key;
    node.bytes = bytes;
    Entry<ProgramPtr> entry;
    entry.value = value;
    insertNode(s, std::move(node), entry.lru);
    s.links.emplace(key, std::move(entry));
    count(linkMisses_, cLinkMisses_);
    evictOver(s);
    return value;
}

ProcessImage
ArtifactCache::image(const ProgramPtr &prog, const LoaderConfig &config,
                     const std::string &entry)
{
    mbias_assert(prog, "image(): null program");
    ImageKey key;
    key.prog = prog.get();
    key.config = config;
    key.entry = entry;

    Shard &s = shardFor(
        std::uint64_t(reinterpret_cast<std::uintptr_t>(prog.get())));
    {
        std::lock_guard<std::mutex> lock(s.mutex);
        auto it = s.images.find(key);
        if (it != s.images.end()) {
            touch(s, it->second.lru);
            count(imageHits_, cImageHits_);
            const ImageLayout &l = it->second.value;
            ProcessImage image;
            image.program = prog;
            image.loaderConfig = config;
            image.initialSp = l.initialSp;
            image.stackTop = l.stackTop;
            image.heapBase = l.heapBase;
            image.gp = l.gp;
            image.entryIdx = l.entryIdx;
            return image;
        }
    }

    ProcessImage image = Loader::load(prog, config, entry);

    ImageLayout layout;
    layout.initialSp = image.initialSp;
    layout.stackTop = image.stackTop;
    layout.heapBase = image.heapBase;
    layout.gp = image.gp;
    layout.entryIdx = image.entryIdx;
    layout.pin = prog;
    const std::uint64_t bytes =
        sizeof(ImageLayout) + sizeof(LruNode) + 2 * entry.size() + 64;

    std::lock_guard<std::mutex> lock(s.mutex);
    if (s.images.find(key) == s.images.end()) {
        LruNode node;
        node.kind = Kind::Image;
        node.imageKey = key;
        node.bytes = bytes;
        Entry<ImageLayout> map_entry;
        map_entry.value = std::move(layout);
        insertNode(s, std::move(node), map_entry.lru);
        s.images.emplace(std::move(key), std::move(map_entry));
        evictOver(s);
    }
    count(imageMisses_, cImageMisses_);
    return image;
}

ArtifactCacheStats
ArtifactCache::stats() const
{
    ArtifactCacheStats st;
    st.compileHits = compileHits_.load(std::memory_order_relaxed);
    st.compileMisses = compileMisses_.load(std::memory_order_relaxed);
    st.linkHits = linkHits_.load(std::memory_order_relaxed);
    st.linkMisses = linkMisses_.load(std::memory_order_relaxed);
    st.imageHits = imageHits_.load(std::memory_order_relaxed);
    st.imageMisses = imageMisses_.load(std::memory_order_relaxed);
    st.evictions = evictions_.load(std::memory_order_relaxed);
    st.bytes = bytes_.load(std::memory_order_relaxed);
    return st;
}

void
ArtifactCache::clear()
{
    for (Shard &s : shards_) {
        std::lock_guard<std::mutex> lock(s.mutex);
        adjustBytes(-std::int64_t(s.bytes));
        s.bytes = 0;
        s.compiles.clear();
        s.links.clear();
        s.images.clear();
        s.lru.clear();
    }
}

} // namespace mbias::toolchain
