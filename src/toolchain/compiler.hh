#ifndef MBIAS_TOOLCHAIN_COMPILER_HH
#define MBIAS_TOOLCHAIN_COMPILER_HH

#include <string>
#include <vector>

#include "isa/module.hh"

namespace mbias::toolchain
{

/** Optimization level, mirroring the paper's gcc/icc -O0..-O3 study. */
enum class OptLevel
{
    O0, ///< no optimization passes
    O1, ///< scheduling only
    O2, ///< scheduling + conservative alignment (the paper's baseline)
    O3, ///< O2 + inlining + loop unrolling + aggressive loop alignment
};

/** Returns "O0".."O3". */
std::string optLevelName(OptLevel level);

/**
 * Compiler-vendor heuristic profile.  The paper evaluates both gcc and
 * Intel's icc; the two vendors differ not in *which* transformations
 * they apply but in thresholds (inline size, unroll factor, alignment
 * aggressiveness), which this profile captures.
 */
enum class CompilerVendor
{
    GccLike,
    IccLike,
};

/** Returns "gcc" or "icc". */
std::string vendorName(CompilerVendor vendor);

/** Tunable thresholds of one vendor at one opt level. */
struct CompilerTuning
{
    bool inlineLeafCalls = false;
    unsigned inlineMaxInsts = 0;   ///< max callee size to inline
    bool unrollLoops = false;
    unsigned unrollFactor = 1;     ///< total body copies after unrolling
    unsigned unrollMaxBodyInsts = 0;
    unsigned scheduleWindowPasses = 0; ///< load-hoisting passes
    unsigned loopAlignBytes = 1;   ///< desired loop-top alignment
    unsigned loopAlignMaxPad = 0;  ///< skip alignment if pad exceeds this
    unsigned functionAlignBytes = 4;
    /**
     * Stack frames (addi sp, sp, +/-N) are rounded up to this
     * alignment, as real compilers do when re-laying-out frames at
     * higher opt levels.  The paper's env-size bias hinges on exactly
     * this: two binaries of the same program place their hot stack
     * slots at different offsets, so a given stack-pointer alignment
     * helps one and hurts the other.
     */
    unsigned frameAlignBytes = 8;

    /** The tuning a given vendor applies at a given level. */
    static CompilerTuning forVendor(CompilerVendor vendor, OptLevel level);
};

/** Per-compilation statistics, useful for tests and reports. */
struct CompileStats
{
    unsigned callsInlined = 0;
    unsigned loopsUnrolled = 0;
    unsigned instsReordered = 0;
    unsigned alignmentNopsInserted = 0;
};

/**
 * The µRISC optimizing "compiler".  It consumes workload modules (the
 * analogue of source files) and produces optimized modules (the
 * analogue of .o files) for the Linker.
 *
 * Passes, in order:
 *  1. leaf-call inlining            (O3)
 *  2. innermost-loop unrolling      (O3)
 *  3. load-hoisting scheduling      (O1+)
 *  4. loop-top alignment padding    (O2+: conservative, O3: aggressive)
 *  5. stack-frame rounding          (width per vendor/level)
 *  6. function alignment attribute  (always; width per vendor/level)
 *
 * All passes are deterministic and semantics-preserving; tests verify
 * that programs compute identical results at every opt level.
 */
class Compiler
{
  public:
    Compiler(CompilerVendor vendor, OptLevel level);

    CompilerVendor vendor() const { return vendor_; }
    OptLevel optLevel() const { return level_; }
    const CompilerTuning &tuning() const { return tuning_; }

    /**
     * Compiles a set of source modules together (whole-program: the
     * inliner may inline across modules, as -O3 with LTO-ish behaviour).
     */
    std::vector<isa::Module>
    compile(const std::vector<isa::Module> &sources) const;

    /** Statistics of the most recent compile() call. */
    const CompileStats &lastStats() const { return stats_; }

  private:
    void inlinePass(std::vector<isa::Module> &modules) const;
    void framePass(isa::Function &f) const;
    void unrollPass(isa::Function &f) const;
    void schedulePass(isa::Function &f) const;
    void alignPass(isa::Function &f) const;

    CompilerVendor vendor_;
    OptLevel level_;
    CompilerTuning tuning_;
    mutable CompileStats stats_;
};

/** A (vendor, level) pair: the "system under test" descriptor. */
struct ToolchainSpec
{
    CompilerVendor vendor = CompilerVendor::GccLike;
    OptLevel level = OptLevel::O2;

    std::string str() const;
    bool operator==(const ToolchainSpec &) const = default;
};

} // namespace mbias::toolchain

#endif // MBIAS_TOOLCHAIN_COMPILER_HH
