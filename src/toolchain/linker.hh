#ifndef MBIAS_TOOLCHAIN_LINKER_HH
#define MBIAS_TOOLCHAIN_LINKER_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/types.hh"
#include "isa/module.hh"
#include "toolchain/linkorder.hh"

namespace mbias::toolchain
{

/** One instruction placed at its final address, targets resolved. */
struct PlacedInst
{
    isa::Instruction inst;
    Addr pc = 0;
    std::uint8_t size = 0;

    /**
     * Resolved control-flow target as an index into LinkedProgram::code
     * (branches, Jmp, Call); unused otherwise.
     */
    std::uint32_t targetIdx = 0;
};

/** Layout record for one linked function. */
struct LinkedFunction
{
    std::string name;
    Addr base = 0;
    std::uint64_t bytes = 0;
    std::uint32_t entryIdx = 0; ///< index of the first instruction
};

/** Layout record for one linked global. */
struct LinkedGlobal
{
    std::string name;
    Addr addr = 0;
    std::uint64_t size = 0;
};

/**
 * A fully linked program: placed code, placed data, and the symbol
 * tables needed by the Loader and the Simulator.
 */
struct LinkedProgram
{
    std::vector<PlacedInst> code;
    Addr codeBase = 0;
    Addr codeEnd = 0;

    std::vector<LinkedFunction> functions;
    std::unordered_map<std::string, std::uint32_t> functionByName;

    std::vector<LinkedGlobal> globals;
    std::unordered_map<std::string, std::uint32_t> globalByName;
    Addr dataBase = 0;
    Addr dataEnd = 0;
    /** Initial data image (dataEnd - dataBase bytes, zero-filled). */
    std::vector<std::uint8_t> dataInit;

    /** Maps an instruction address to its code index (for Ret). */
    std::unordered_map<Addr, std::uint32_t> addrToIdx;

    /** Names of the modules in their linked order. */
    std::vector<std::string> moduleOrder;

    /** Entry instruction index of function @p name; panics if absent. */
    std::uint32_t entryOf(const std::string &name) const;

    /** Address of global @p name; panics if absent. */
    Addr globalAddr(const std::string &name) const;
};

/** Linker configuration. */
struct LinkerConfig
{
    Addr codeBase = 0x400000;
    /** Data is placed on the next page boundary after the code. */
    std::uint64_t dataPageAlign = 4096;
    std::uint64_t dataGap = 4096; ///< guard gap between code and data
};

/**
 * The µRISC static linker.  Places each module's functions and globals
 * in link order, honouring per-function alignment, and resolves label,
 * call, and global-address references.
 *
 * Link order changes code addresses, which changes I-cache sets,
 * branch-predictor indices, and fetch-block alignment — the paper's
 * Figure-1/2 bias mechanism.
 */
class Linker
{
  public:
    explicit Linker(LinkerConfig config = {});

    /**
     * Links @p modules in @p order.  Every Call/La symbol must resolve
     * and function/global names must be unique program-wide.
     */
    LinkedProgram link(const std::vector<isa::Module> &modules,
                       const LinkOrder &order = LinkOrder::asGiven()) const;

  private:
    LinkerConfig config_;
};

} // namespace mbias::toolchain

#endif // MBIAS_TOOLCHAIN_LINKER_HH
