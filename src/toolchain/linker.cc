#include "toolchain/linker.hh"

#include "base/bitutils.hh"
#include "base/logging.hh"

namespace mbias::toolchain
{

using isa::Instruction;
using isa::Module;
using isa::Opcode;

std::uint32_t
LinkedProgram::entryOf(const std::string &name) const
{
    auto it = functionByName.find(name);
    mbias_assert(it != functionByName.end(),
                 "no such function: ", name);
    return functions[it->second].entryIdx;
}

Addr
LinkedProgram::globalAddr(const std::string &name) const
{
    auto it = globalByName.find(name);
    mbias_assert(it != globalByName.end(), "no such global: ", name);
    return globals[it->second].addr;
}

Linker::Linker(LinkerConfig config) : config_(config) {}

LinkedProgram
Linker::link(const std::vector<Module> &modules,
             const LinkOrder &order) const
{
    LinkedProgram prog;
    prog.codeBase = config_.codeBase;

    std::vector<std::string> names;
    names.reserve(modules.size());
    for (const auto &m : modules)
        names.push_back(m.name());
    const auto perm = order.permutation(names);
    for (std::size_t p : perm)
        prog.moduleOrder.push_back(names[p]);

    // ---- pass 1: place code ----
    // Remember, per placed function, where each instruction landed so
    // label targets can be resolved to code indices in pass 2.
    struct FuncRef
    {
        const isa::Function *f;
        std::uint32_t firstIdx;
    };
    std::vector<FuncRef> placed;

    Addr cur = prog.codeBase;
    for (std::size_t p : perm) {
        const Module &m = modules[p];
        for (const auto &f : m.functions()) {
            mbias_assert(isPowerOf2(f.alignment()),
                         "function alignment must be a power of two");
            cur = alignUp(cur, f.alignment());
            LinkedFunction lf;
            lf.name = f.name();
            lf.base = cur;
            lf.entryIdx = std::uint32_t(prog.code.size());
            mbias_assert(!prog.functionByName.count(f.name()),
                         "duplicate function ", f.name());
            placed.push_back({&f, lf.entryIdx});
            for (const auto &inst : f.insts()) {
                PlacedInst pi;
                pi.inst = inst;
                pi.pc = cur;
                pi.size = std::uint8_t(inst.encodedSize());
                prog.addrToIdx.emplace(pi.pc,
                                       std::uint32_t(prog.code.size()));
                prog.code.push_back(std::move(pi));
                cur += prog.code.back().size;
            }
            lf.bytes = cur - lf.base;
            prog.functionByName.emplace(
                lf.name, std::uint32_t(prog.functions.size()));
            prog.functions.push_back(std::move(lf));
        }
    }
    prog.codeEnd = cur;

    // ---- pass 1b: place data ----
    prog.dataBase = alignUp(prog.codeEnd + config_.dataGap,
                            config_.dataPageAlign);
    Addr dcur = prog.dataBase;
    for (std::size_t p : perm) {
        const Module &m = modules[p];
        for (const auto &g : m.globals()) {
            mbias_assert(isPowerOf2(g.alignment),
                         "global alignment must be a power of two");
            dcur = alignUp(dcur, g.alignment);
            mbias_assert(!prog.globalByName.count(g.name),
                         "duplicate global ", g.name);
            LinkedGlobal lg;
            lg.name = g.name;
            lg.addr = dcur;
            lg.size = g.size;
            prog.globalByName.emplace(
                g.name, std::uint32_t(prog.globals.size()));
            prog.globals.push_back(std::move(lg));
            dcur += g.size;
        }
    }
    prog.dataEnd = dcur;

    // Build the initial data image.
    prog.dataInit.assign(prog.dataEnd - prog.dataBase, 0);
    {
        std::size_t gi = 0;
        for (std::size_t p : perm) {
            const Module &m = modules[p];
            for (const auto &g : m.globals()) {
                const Addr base = prog.globals[gi].addr - prog.dataBase;
                for (std::size_t b = 0; b < g.init.size(); ++b)
                    prog.dataInit[base + b] = g.init[b];
                ++gi;
            }
        }
    }

    // ---- pass 2: resolve references ----
    for (const auto &fr : placed) {
        const isa::Function &f = *fr.f;
        for (std::size_t i = 0; i < f.insts().size(); ++i) {
            PlacedInst &pi = prog.code[fr.firstIdx + i];
            Instruction &in = pi.inst;
            switch (isa::opClass(in.op)) {
              case isa::OpClass::CondBranch:
              case isa::OpClass::Jump: {
                  const std::uint32_t t = f.labelTarget(in.target);
                  mbias_assert(t <= f.insts().size(),
                               "label beyond function in ", f.name());
                  mbias_assert(t < f.insts().size(),
                               "branch to end-of-function in ", f.name(),
                               " (must target an instruction)");
                  pi.targetIdx = fr.firstIdx + t;
                  break;
              }
              case isa::OpClass::Call: {
                  auto it = prog.functionByName.find(in.sym);
                  mbias_assert(it != prog.functionByName.end(),
                               "unresolved call to ", in.sym, " from ",
                               f.name());
                  pi.targetIdx = prog.functions[it->second].entryIdx;
                  break;
              }
              default:
                if (in.op == Opcode::La) {
                    auto it = prog.globalByName.find(in.sym);
                    mbias_assert(it != prog.globalByName.end(),
                                 "unresolved global ", in.sym, " in ",
                                 f.name());
                    // Rewrite La into a concrete Li.  The encoded size
                    // must not change (both are 6 bytes for 32-bit
                    // immediates); data addresses always fit.
                    const Addr a = prog.globals[it->second].addr;
                    mbias_assert(a <= 0x7fffffff,
                                 "data address exceeds La encoding");
                    in.op = Opcode::Li;
                    in.imm = std::int64_t(a);
                    in.sym.clear();
                }
                break;
            }
        }
    }

    return prog;
}

} // namespace mbias::toolchain
