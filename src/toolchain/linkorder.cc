#include "toolchain/linkorder.hh"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "base/hash.hh"
#include "base/logging.hh"
#include "base/random.hh"

namespace mbias::toolchain
{

LinkOrder
LinkOrder::asGiven()
{
    return LinkOrder(Kind::AsGiven, 0);
}

LinkOrder
LinkOrder::alphabetical()
{
    return LinkOrder(Kind::Alphabetical, 0);
}

LinkOrder
LinkOrder::shuffled(std::uint64_t seed)
{
    return LinkOrder(Kind::Seeded, seed);
}

LinkOrder
LinkOrder::explicitOrder(std::vector<std::size_t> perm)
{
    return LinkOrder(Kind::Explicit, 0, std::move(perm));
}

std::vector<std::size_t>
LinkOrder::permutation(const std::vector<std::string> &module_names) const
{
    const std::size_t n = module_names.size();
    std::vector<std::size_t> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    switch (kind_) {
      case Kind::AsGiven:
        break;
      case Kind::Alphabetical:
        std::sort(perm.begin(), perm.end(),
                  [&](std::size_t a, std::size_t b) {
                      return module_names[a] < module_names[b];
                  });
        break;
      case Kind::Seeded: {
          Rng rng(seed_ ^ 0x11bfc0de11bfc0deULL);
          rng.shuffle(perm);
          break;
      }
      case Kind::Explicit: {
          mbias_assert(perm_.size() == n,
                       "explicit link order has wrong length");
          std::vector<bool> seen(n, false);
          for (std::size_t p : perm_) {
              mbias_assert(p < n && !seen[p],
                           "explicit link order is not a permutation");
              seen[p] = true;
          }
          return perm_;
      }
    }
    return perm;
}

std::uint64_t
LinkOrder::fingerprint() const
{
    // FNV-1a over the discriminating fields (same byte stream as the
    // old hand-rolled loop: each value hashed as 8 LE bytes).
    Fnv1a f;
    f.u64(std::uint64_t(kind_));
    f.u64(seed_);
    for (std::size_t p : perm_)
        f.u64(p);
    return f.value();
}

std::string
LinkOrder::str() const
{
    switch (kind_) {
      case Kind::AsGiven:
        return "as-given";
      case Kind::Alphabetical:
        return "alphabetical";
      case Kind::Seeded: {
          std::ostringstream os;
          os << "shuffled(" << seed_ << ")";
          return os.str();
      }
      case Kind::Explicit:
        return "explicit";
    }
    mbias_panic("bad LinkOrder kind");
}

} // namespace mbias::toolchain
