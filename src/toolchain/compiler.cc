#include "toolchain/compiler.hh"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "base/bitutils.hh"
#include "base/logging.hh"

namespace mbias::toolchain
{

using isa::Function;
using isa::Instruction;
using isa::Module;
using isa::OpClass;
using isa::Opcode;

std::string
optLevelName(OptLevel level)
{
    switch (level) {
      case OptLevel::O0:
        return "O0";
      case OptLevel::O1:
        return "O1";
      case OptLevel::O2:
        return "O2";
      case OptLevel::O3:
        return "O3";
    }
    mbias_panic("bad OptLevel");
}

std::string
vendorName(CompilerVendor vendor)
{
    return vendor == CompilerVendor::GccLike ? "gcc" : "icc";
}

std::string
ToolchainSpec::str() const
{
    return vendorName(vendor) + "-" + optLevelName(level);
}

CompilerTuning
CompilerTuning::forVendor(CompilerVendor vendor, OptLevel level)
{
    CompilerTuning t;
    const bool gcc = vendor == CompilerVendor::GccLike;
    switch (level) {
      case OptLevel::O0:
        t.functionAlignBytes = 4;
        break;
      case OptLevel::O1:
        t.scheduleWindowPasses = gcc ? 1 : 2;
        t.functionAlignBytes = 8;
        break;
      case OptLevel::O2:
        t.scheduleWindowPasses = gcc ? 2 : 3;
        t.loopAlignBytes = 16;
        t.loopAlignMaxPad = gcc ? 10 : 12;
        t.functionAlignBytes = 16;
        t.frameAlignBytes = gcc ? 8 : 16;
        break;
      case OptLevel::O3:
        t.inlineLeafCalls = true;
        t.inlineMaxInsts = gcc ? 10 : 20;
        t.unrollLoops = true;
        t.unrollFactor = gcc ? 2 : 4;
        t.unrollMaxBodyInsts = gcc ? 12 : 10;
        t.scheduleWindowPasses = gcc ? 2 : 3;
        t.loopAlignBytes = gcc ? 16 : 32;
        t.loopAlignMaxPad = gcc ? 15 : 31;
        t.functionAlignBytes = gcc ? 16 : 32;
        t.frameAlignBytes = gcc ? 16 : 32;
        break;
    }
    return t;
}

Compiler::Compiler(CompilerVendor vendor, OptLevel level)
    : vendor_(vendor), level_(level),
      tuning_(CompilerTuning::forVendor(vendor, level))
{
}

std::vector<Module>
Compiler::compile(const std::vector<Module> &sources) const
{
    stats_ = CompileStats{};
    std::vector<Module> out = sources;
    if (tuning_.inlineLeafCalls)
        inlinePass(out);
    for (auto &m : out) {
        for (auto &f : m.functions()) {
            if (tuning_.unrollLoops)
                unrollPass(f);
            if (tuning_.scheduleWindowPasses > 0)
                schedulePass(f);
            if (tuning_.frameAlignBytes > 1)
                framePass(f);
            if (tuning_.loopAlignBytes > 1)
                alignPass(f);
            f.setAlignment(tuning_.functionAlignBytes);
        }
    }
    return out;
}

// ---------------------------------------------------------------------
// Inlining
// ---------------------------------------------------------------------

namespace
{

/**
 * A callee is inlinable when it is a small leaf, never touches the
 * stack pointer (so removing the Call's return-address push is safe),
 * and has exactly one Ret, as its final instruction.
 */
bool
inlinable(const Function &f, unsigned max_insts)
{
    const auto &insts = f.insts();
    if (insts.empty() || insts.size() > max_insts)
        return false;
    for (std::size_t i = 0; i < insts.size(); ++i) {
        const Instruction &in = insts[i];
        if (in.op == Opcode::Call || in.op == Opcode::Halt)
            return false;
        if (in.op == Opcode::Ret && i + 1 != insts.size())
            return false;
        if (in.reads(isa::reg::sp) || in.writes(isa::reg::sp))
            return false;
    }
    return insts.back().op == Opcode::Ret;
}

} // namespace

void
Compiler::inlinePass(std::vector<Module> &modules) const
{
    // Whole-program view of inlinable callees (pointers stay valid: we
    // only mutate caller bodies, never the callee functions found here,
    // and a function is never both caller-modified and callee because a
    // callee body contains no Call).
    std::unordered_map<std::string, const Function *> candidates;
    for (const auto &m : modules)
        for (const auto &f : m.functions())
            if (inlinable(f, tuning_.inlineMaxInsts))
                candidates.emplace(f.name(), &f);

    for (auto &m : modules) {
        for (auto &caller : m.functions()) {
            if (candidates.count(caller.name()))
                continue; // keep callees byte-identical
            for (std::size_t idx = 0; idx < caller.insts().size(); ++idx) {
                const Instruction &in = caller.insts()[idx];
                if (in.op != Opcode::Call)
                    continue;
                auto it = candidates.find(in.sym);
                if (it == candidates.end())
                    continue;
                const Function &callee = *it->second;
                const std::size_t body_len = callee.insts().size() - 1;

                // Map callee labels to fresh caller labels at their
                // post-insertion positions.  A callee label that points
                // at the final Ret (or one past it) maps to the first
                // instruction after the inlined body.
                std::vector<std::int32_t> label_map(callee.numLabels());
                std::vector<std::uint32_t> label_pos(callee.numLabels());
                for (std::size_t l = 0; l < callee.numLabels(); ++l) {
                    const std::uint32_t t = callee.labelTarget(l);
                    label_map[l] = caller.newLabel();
                    label_pos[l] = std::uint32_t(
                        idx + std::min<std::size_t>(t, body_len));
                }

                // Shift caller labels past the call site.
                for (std::size_t l = 0;
                     l + callee.numLabels() < caller.numLabels(); ++l) {
                    const std::uint32_t t = caller.labelTarget(l);
                    if (t > idx)
                        caller.retarget(std::int32_t(l),
                                        t + std::uint32_t(body_len) - 1);
                }

                // Splice in the body (without the trailing Ret).
                std::vector<Instruction> body(callee.insts().begin(),
                                              callee.insts().end() - 1);
                for (auto &bi : body)
                    if (bi.target != isa::no_target)
                        bi.target = label_map[bi.target];
                caller.insts().erase(caller.insts().begin() + idx);
                caller.insts().insert(caller.insts().begin() + idx,
                                      body.begin(), body.end());
                for (std::size_t l = 0; l < label_map.size(); ++l)
                    caller.bindLabel(label_map[l], label_pos[l]);

                ++stats_.callsInlined;
                idx += body_len == 0 ? 0 : body_len - 1;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Loop unrolling
// ---------------------------------------------------------------------

namespace
{

struct LoopCandidate
{
    std::size_t head;   ///< index of the first body instruction
    std::size_t branch; ///< index of the back branch
};

/** Finds innermost, single-entry, call-free backward-branch loops. */
std::vector<LoopCandidate>
findLoops(const Function &f, unsigned max_body)
{
    const auto &insts = f.insts();
    std::vector<LoopCandidate> loops;
    for (std::size_t i = 0; i < insts.size(); ++i) {
        if (!isCondBranch(insts[i].op))
            continue;
        const std::uint32_t t = f.labelTarget(insts[i].target);
        if (t > i)
            continue; // forward branch
        const std::size_t j = t;
        const std::size_t body_len = i - j + 1;
        if (body_len > max_body || body_len < 2)
            continue;

        bool ok = true;
        // Body must be straight-line except for the back branch and
        // forward branches within the body.
        for (std::size_t k = j; k < i && ok; ++k) {
            const Instruction &in = insts[k];
            switch (opClass(in.op)) {
              case OpClass::Call:
              case OpClass::Ret:
              case OpClass::Halt:
              case OpClass::Jump:
                ok = false;
                break;
              case OpClass::CondBranch: {
                  const std::uint32_t bt = f.labelTarget(in.target);
                  if (bt <= k || bt > i + 1)
                      ok = false; // inner backward or escaping branch
                  break;
              }
              default:
                break;
            }
        }
        if (!ok)
            continue;

        // Single entry: no branch outside [j, i] may target (j, i].
        for (std::size_t k = 0; k < insts.size() && ok; ++k) {
            if (k >= j && k <= i)
                continue;
            const Instruction &in = insts[k];
            if (in.target == isa::no_target)
                continue;
            const std::uint32_t bt = f.labelTarget(in.target);
            if (bt > j && bt <= i)
                ok = false;
        }
        if (ok)
            loops.push_back({j, i});
    }
    return loops;
}

} // namespace

void
Compiler::unrollPass(Function &f) const
{
    const unsigned k = tuning_.unrollFactor;
    if (k < 2)
        return;
    auto loops = findLoops(f, tuning_.unrollMaxBodyInsts);
    // Apply highest-index first so earlier candidates stay valid; skip
    // overlapping regions.
    std::sort(loops.begin(), loops.end(),
              [](const LoopCandidate &a, const LoopCandidate &b) {
                  return a.head > b.head;
              });
    std::size_t last_applied_head = SIZE_MAX;
    for (const auto &loop : loops) {
        if (loop.branch >= last_applied_head)
            continue;
        last_applied_head = loop.head;

        auto &insts = f.insts();
        const std::size_t j = loop.head;
        const std::size_t i = loop.branch;
        const std::size_t body_len = i - j + 1;
        const std::size_t delta = (k - 1) * body_len;

        // Labels that existed before this unroll; only these are
        // rebound below (fresh ones are bound at creation sites).
        const std::size_t num_labels = f.numLabels();

        // Fresh exit label bound to the instruction after the loop.
        const std::int32_t exit_label = f.newLabel("unroll_exit");

        std::vector<Instruction> body(insts.begin() + j,
                                      insts.begin() + i + 1);

        std::vector<Instruction> unrolled;
        unrolled.reserve(k * body_len);
        std::vector<std::pair<std::int32_t, std::uint32_t>> new_bindings;
        for (unsigned c = 0; c + 1 < k; ++c) {
            // Copies 0..k-2: body with fresh interior labels and an
            // inverted exit branch instead of the back branch.
            std::unordered_map<std::int32_t, std::int32_t> fresh;
            const std::size_t copy_base = j + c * body_len;
            for (std::size_t b = 0; b < body_len; ++b) {
                Instruction in = body[b];
                if (in.target != isa::no_target) {
                    const std::uint32_t t = f.labelTarget(in.target);
                    if (t > j && t <= i) {
                        auto [it, inserted] =
                            fresh.emplace(in.target, 0);
                        if (inserted) {
                            it->second = f.newLabel();
                            new_bindings.emplace_back(
                                it->second,
                                std::uint32_t(copy_base + (t - j)));
                        }
                        in.target = it->second;
                    }
                    // Targets at j (the head) or i+1 keep their label.
                }
                if (b + 1 == body_len) {
                    // The back branch becomes an inverted exit.
                    in.op = invertCondBranch(in.op);
                    in.target = exit_label;
                }
                unrolled.push_back(std::move(in));
            }
        }
        // Final copy: verbatim, original labels rebind into it below.
        for (std::size_t b = 0; b < body_len; ++b)
            unrolled.push_back(body[b]);

        insts.erase(insts.begin() + j, insts.begin() + i + 1);
        insts.insert(insts.begin() + j, unrolled.begin(), unrolled.end());

        // Rebind pre-existing labels.
        for (std::size_t l = 0; l < num_labels; ++l) {
            const std::uint32_t t = f.labelTarget(std::int32_t(l));
            if (t > j && t <= i) {
                // Interior label: now lives in the final copy.
                f.retarget(std::int32_t(l),
                           std::uint32_t(j + delta + (t - j)));
            } else if (t > i) {
                f.retarget(std::int32_t(l), t + std::uint32_t(delta));
            }
        }
        for (auto [label, pos] : new_bindings)
            f.bindLabel(label, pos);
        f.bindLabel(exit_label, std::uint32_t(j + k * body_len));

        ++stats_.loopsUnrolled;
    }
}

// ---------------------------------------------------------------------
// Scheduling: hoist loads away from their uses within straight-line
// regions, approximating list scheduling for load-use latency.
// ---------------------------------------------------------------------

namespace
{

bool
isRegionBoundary(const Instruction &in)
{
    switch (opClass(in.op)) {
      case OpClass::CondBranch:
      case OpClass::Jump:
      case OpClass::Call:
      case OpClass::Ret:
      case OpClass::Halt:
        return true;
      default:
        return false;
    }
}

/** True when swapping adjacent (a, b) -> (b, a) preserves semantics. */
bool
canSwap(const Instruction &a, const Instruction &b)
{
    // Memory order: never move a load above a store or vice versa.
    const bool a_mem = isLoad(a.op) || isStore(a.op);
    const bool b_mem = isLoad(b.op) || isStore(b.op);
    if (a_mem && b_mem)
        return false;
    // Data dependences.
    const int ad = a.destReg();
    const int bd = b.destReg();
    if (ad >= 0 && (b.reads(isa::Reg(ad)) || b.writes(isa::Reg(ad))))
        return false;
    if (bd >= 0 && (a.reads(isa::Reg(bd)) || a.writes(isa::Reg(bd))))
        return false;
    // Stores read their data register; handled by reads() above.
    return true;
}

} // namespace

void
Compiler::schedulePass(Function &f) const
{
    auto &insts = f.insts();
    // Positions that must not move relative to labels.
    std::vector<bool> label_at(insts.size() + 1, false);
    for (std::size_t l = 0; l < f.numLabels(); ++l)
        label_at[f.labelTarget(std::int32_t(l))] = true;

    for (unsigned pass = 0; pass < tuning_.scheduleWindowPasses; ++pass) {
        for (std::size_t p = 0; p + 1 < insts.size(); ++p) {
            const Instruction &a = insts[p];
            const Instruction &b = insts[p + 1];
            if (label_at[p + 1])
                continue; // a label pins this boundary
            if (isRegionBoundary(a) || isRegionBoundary(b))
                continue;
            // Hoist loads upward past non-load ALU work.
            if (!isLoad(b.op) || isLoad(a.op))
                continue;
            if (!canSwap(a, b))
                continue;
            std::swap(insts[p], insts[p + 1]);
            ++stats_.instsReordered;
        }
    }
}

// ---------------------------------------------------------------------
// Frame rounding: every stack allocation/deallocation immediate is
// rounded up to the vendor's frame alignment.  Allocations and
// deallocations are written with matching constants in well-formed
// code, so rounding both consistently preserves semantics while
// moving every frame-relative address.
// ---------------------------------------------------------------------

void
Compiler::framePass(Function &f) const
{
    const std::uint64_t align = tuning_.frameAlignBytes;
    for (auto &in : f.insts()) {
        if (in.op != Opcode::Addi || in.rd != isa::reg::sp ||
            in.rs1 != isa::reg::sp || in.imm == 0)
            continue;
        if (in.imm < 0)
            in.imm = -std::int64_t(alignUp(std::uint64_t(-in.imm), align));
        else
            in.imm = std::int64_t(alignUp(std::uint64_t(in.imm), align));
    }
}

// ---------------------------------------------------------------------
// Loop alignment: pad loop heads to the vendor's preferred boundary by
// inserting single-byte nops (executed on the fall-in path, exactly as
// real compilers' .p2align padding is).
// ---------------------------------------------------------------------

void
Compiler::alignPass(Function &f) const
{
    const unsigned align = tuning_.loopAlignBytes;

    // Loop heads: labels targeted by at least one backward branch.
    auto loop_heads = [&]() {
        std::vector<std::uint32_t> heads;
        const auto &insts = f.insts();
        for (std::size_t idx = 0; idx < insts.size(); ++idx) {
            const Instruction &in = insts[idx];
            if (in.target == isa::no_target || !isCondBranch(in.op))
                continue;
            const std::uint32_t t = f.labelTarget(in.target);
            if (t <= idx)
                heads.push_back(t);
        }
        std::sort(heads.begin(), heads.end());
        heads.erase(std::unique(heads.begin(), heads.end()), heads.end());
        return heads;
    };

    // Process heads in increasing position order, recomputing positions
    // after each insertion (padding a head shifts every later head, but
    // never an earlier one).
    const std::size_t num_heads = loop_heads().size();
    for (std::size_t h = 0; h < num_heads; ++h) {
        const std::uint32_t head = loop_heads()[h];
        auto &insts = f.insts();
        std::uint64_t offset = 0;
        for (std::uint32_t idx = 0; idx < head; ++idx)
            offset += insts[idx].encodedSize();
        const unsigned pad =
            unsigned((align - offset % align) % align);
        if (pad == 0 || pad > tuning_.loopAlignMaxPad)
            continue;
        // Pad with multi-byte nops (at most 8 bytes each), so the
        // fall-in path pays one decode slot per ~8 pad bytes, as on
        // real hardware.
        std::vector<isa::Instruction> pad_insts;
        for (unsigned left = pad; left > 0;) {
            const unsigned w = std::min(left, 8u);
            pad_insts.push_back(isa::makeNop(w));
            left -= w;
        }
        insts.insert(insts.begin() + head, pad_insts.begin(),
                     pad_insts.end());
        const std::uint32_t shift = std::uint32_t(pad_insts.size());
        for (std::size_t l = 0; l < f.numLabels(); ++l) {
            const std::uint32_t t = f.labelTarget(std::int32_t(l));
            if (t >= head)
                f.retarget(std::int32_t(l), t + shift);
        }
        stats_.alignmentNopsInserted += shift;
    }
}

} // namespace mbias::toolchain
