#include "base/random.hh"

#include <cmath>

#include "base/logging.hh"

namespace mbias
{

namespace
{

std::uint64_t
splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitMix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    mbias_assert(bound > 0, "nextBounded requires a positive bound");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::uint64_t
Rng::nextIndex(std::uint64_t bound)
{
    mbias_assert(bound > 0 && bound <= 0x100000000ULL,
                 "nextIndex requires 0 < bound <= 2^32");
    // hi32(next()) * bound / 2^32 — one draw, no rejection loop.
    return ((next() >> 32) * bound) >> 32;
}

std::uint64_t
Rng::stateWord(unsigned i) const
{
    mbias_assert(i < 4, "xoshiro256 has 4 state words");
    return s_[i];
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    mbias_assert(lo <= hi, "nextRange requires lo <= hi");
    std::uint64_t span = std::uint64_t(hi) - std::uint64_t(lo) + 1;
    if (span == 0) // full 64-bit range
        return std::int64_t(next());
    return lo + std::int64_t(nextBounded(span));
}

double
Rng::nextDouble()
{
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::nextGaussian()
{
    if (haveGauss_) {
        haveGauss_ = false;
        return gauss_;
    }
    double u1 = 0.0;
    do {
        u1 = nextDouble();
    } while (u1 <= 0.0);
    double u2 = nextDouble();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * M_PI * u2;
    gauss_ = r * std::sin(theta);
    haveGauss_ = true;
    return r * std::cos(theta);
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xa5a5a5a5deadbeefULL);
}

Rng
Rng::splitAt(std::uint64_t key) const
{
    // Fold the full 256-bit state and the key through SplitMix64 so
    // distinct keys (and distinct parent states) give independent
    // children; the parent is left untouched.
    std::uint64_t sm = key ^ 0xa5a5a5a5deadbeefULL;
    for (auto s : s_) {
        sm ^= s + 0x9e3779b97f4a7c15ULL + (sm << 6) + (sm >> 2);
        sm = splitMix64(sm);
    }
    return Rng(sm);
}

} // namespace mbias
