#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

/**
 * @file
 * Shared content-addressing primitives: FNV-1a hashing and fixed-width
 * hex rendering.  Every content address in the codebase (campaign task
 * keys, toolchain module fingerprints, link-order fingerprints) is
 * built on these, so the exact byte-for-byte hashing scheme lives in
 * one place.  Changing any constant here invalidates every persisted
 * store key — treat the values as part of the on-disk format.
 */

namespace mbias
{

inline constexpr std::uint64_t kFnv1aOffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnv1aPrime = 0x100000001b3ULL;

/**
 * One incremental FNV-1a stream.  Integers are hashed as their 8
 * little-endian bytes and strings are length-prefixed, so the encoding
 * of a field sequence is unambiguous (no "ab"+"c" vs "a"+"bc"
 * collisions).  Dual-stream users (128-bit fingerprints) run two
 * instances with different offset bases.
 */
class Fnv1a
{
  public:
    explicit Fnv1a(std::uint64_t offset = kFnv1aOffsetBasis) : h_(offset) {}

    void
    bytes(const void *data, std::size_t n)
    {
        const auto *p = static_cast<const std::uint8_t *>(data);
        for (std::size_t i = 0; i < n; ++i) {
            h_ ^= p[i];
            h_ *= kFnv1aPrime;
        }
    }

    void
    u64(std::uint64_t v)
    {
        bytes(&v, sizeof(v));
    }

    void
    str(const std::string &s)
    {
        u64(s.size());
        bytes(s.data(), s.size());
    }

    std::uint64_t value() const { return h_; }

  private:
    std::uint64_t h_;
};

/** Plain FNV-1a over a byte string (no length prefix — matches the
 *  classic algorithm, and the historical store task-key hash). */
inline std::uint64_t
fnv1a(std::string_view s)
{
    std::uint64_t h = kFnv1aOffsetBasis;
    for (unsigned char c : s) {
        h ^= c;
        h *= kFnv1aPrime;
    }
    return h;
}

/** Renders v as exactly 16 lowercase hex digits (zero padded). */
inline std::string
hex16(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx", (unsigned long long)v);
    return buf;
}

} // namespace mbias
