#include "base/logging.hh"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <stdexcept>

namespace mbias
{

namespace
{

std::atomic<bool> logging_on{true};

/**
 * Serializes warn/inform lines: concurrent campaign workers each emit
 * whole lines, never interleaved fragments.  A single fprintf is not
 * atomic across its format arguments on all libcs, so the mutex is
 * load-bearing, not cosmetic.
 */
std::mutex &
logMutex()
{
    static std::mutex m;
    return m;
}

} // namespace

void
setLoggingEnabled(bool enabled)
{
    logging_on.store(enabled, std::memory_order_relaxed);
}

bool
loggingEnabled()
{
    return logging_on.load(std::memory_order_relaxed);
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const char *file, int line, const std::string &msg)
{
    if (!loggingEnabled())
        return;
    std::lock_guard<std::mutex> lock(logMutex());
    std::fprintf(stderr, "warn: %s (%s:%d)\n", msg.c_str(), file, line);
}

void
inform(const std::string &msg)
{
    if (!loggingEnabled())
        return;
    std::lock_guard<std::mutex> lock(logMutex());
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace mbias
