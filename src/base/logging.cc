#include "base/logging.hh"

#include <cstdio>
#include <stdexcept>

namespace mbias
{

namespace
{
bool logging_on = true;
} // namespace

void
setLoggingEnabled(bool enabled)
{
    logging_on = enabled;
}

bool
loggingEnabled()
{
    return logging_on;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const char *file, int line, const std::string &msg)
{
    if (logging_on)
        std::fprintf(stderr, "warn: %s (%s:%d)\n", msg.c_str(), file, line);
}

void
inform(const std::string &msg)
{
    if (logging_on)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace mbias
