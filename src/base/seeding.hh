#ifndef MBIAS_BASE_SEEDING_HH
#define MBIAS_BASE_SEEDING_HH

#include <cstdint>

#include "base/random.hh"

namespace mbias
{

/**
 * Seed-derivation helpers for parallel, order-independent execution.
 *
 * A campaign that runs thousands of tasks on a thread pool must give
 * every task an RNG stream that depends only on (root seed, task
 * index) — never on which worker ran it or in what order — so that a
 * parallel run is bitwise-identical to a serial one.  These helpers
 * centralize that derivation; nothing in the library may seed a
 * parallel stream any other way.
 */

/**
 * Mixes a root seed with a stream index into an independent 64-bit
 * seed (SplitMix64 finalizer over both words).  mixSeed(r, a) and
 * mixSeed(r, b) are statistically independent for a != b.
 */
std::uint64_t mixSeed(std::uint64_t root, std::uint64_t stream);

/**
 * The generator for stream @p stream of root seed @p root: shorthand
 * for Rng(mixSeed(root, stream)).  Equal inputs give bitwise-equal
 * generators regardless of thread, order, or how many other streams
 * were derived.
 */
Rng streamRng(std::uint64_t root, std::uint64_t stream);

} // namespace mbias

#endif // MBIAS_BASE_SEEDING_HH
