#ifndef MBIAS_BASE_TYPES_HH
#define MBIAS_BASE_TYPES_HH

#include <cstdint>

namespace mbias
{

/** A (virtual) memory address in the simulated machine. */
using Addr = std::uint64_t;

/** A count of simulated clock cycles. */
using Cycles = std::uint64_t;

/** A count of dynamic instructions. */
using InstCount = std::uint64_t;

} // namespace mbias

#endif // MBIAS_BASE_TYPES_HH
