#ifndef MBIAS_BASE_LOGGING_HH
#define MBIAS_BASE_LOGGING_HH

#include <cstdlib>
#include <sstream>
#include <string>

namespace mbias
{

/**
 * Terminates the process for an internal library bug.  Call when a
 * condition arises that should never happen regardless of what the user
 * does.  Aborts so that a core dump / debugger is available.
 */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/**
 * Terminates the process for a user error (bad configuration, invalid
 * arguments).  Exits with status 1.
 */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Prints a warning about suspicious but non-fatal conditions. */
void warnImpl(const char *file, int line, const std::string &msg);

/** Prints an informational status message. */
void inform(const std::string &msg);

/** Controls whether warn()/inform() produce output (tests silence them). */
void setLoggingEnabled(bool enabled);

/** Returns whether warn()/inform() currently produce output. */
bool loggingEnabled();

namespace detail
{

/** Builds a message string from stream-style arguments. */
template <typename... Args>
std::string
format(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

} // namespace mbias

#define mbias_panic(...)                                                    \
    ::mbias::panicImpl(__FILE__, __LINE__,                                  \
                       ::mbias::detail::format(__VA_ARGS__))

#define mbias_fatal(...)                                                    \
    ::mbias::fatalImpl(__FILE__, __LINE__,                                  \
                       ::mbias::detail::format(__VA_ARGS__))

#define mbias_warn(...)                                                     \
    ::mbias::warnImpl(__FILE__, __LINE__,                                   \
                      ::mbias::detail::format(__VA_ARGS__))

/** Panics unless @p cond holds; the message explains the invariant. */
#define mbias_assert(cond, ...)                                             \
    do {                                                                    \
        if (!(cond))                                                        \
            mbias_panic("assertion failed: " #cond ": ", __VA_ARGS__);      \
    } while (0)

#endif // MBIAS_BASE_LOGGING_HH
