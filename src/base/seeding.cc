#include "base/seeding.hh"

namespace mbias
{

namespace
{

std::uint64_t
finalize(std::uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

std::uint64_t
mixSeed(std::uint64_t root, std::uint64_t stream)
{
    // Two SplitMix64 steps so that neither input can cancel the other
    // (mixSeed(r, s) != mixSeed(r ^ s, 0) in general).
    std::uint64_t z = root + 0x9e3779b97f4a7c15ULL;
    z = finalize(z);
    z += stream * 0x9e3779b97f4a7c15ULL + 0x9e3779b97f4a7c15ULL;
    return finalize(z);
}

Rng
streamRng(std::uint64_t root, std::uint64_t stream)
{
    return Rng(mixSeed(root, stream));
}

} // namespace mbias
