#ifndef MBIAS_BASE_BITUTILS_HH
#define MBIAS_BASE_BITUTILS_HH

#include <cassert>
#include <cstdint>

namespace mbias
{

/** Returns true iff @p v is a power of two (0 is not). */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Rounds @p v up to the next multiple of @p align (a power of two). */
constexpr std::uint64_t
alignUp(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/** Rounds @p v down to the previous multiple of @p align (a power of two). */
constexpr std::uint64_t
alignDown(std::uint64_t v, std::uint64_t align)
{
    return v & ~(align - 1);
}

/** Returns true iff @p v is a multiple of @p align (a power of two). */
constexpr bool
isAligned(std::uint64_t v, std::uint64_t align)
{
    return (v & (align - 1)) == 0;
}

/** Floor of log2 of @p v; @p v must be nonzero. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    unsigned r = 0;
    while (v >>= 1)
        ++r;
    return r;
}

/** Ceiling of log2 of @p v; @p v must be nonzero. */
constexpr unsigned
ceilLog2(std::uint64_t v)
{
    return isPowerOf2(v) ? floorLog2(v) : floorLog2(v) + 1;
}

/** A mask with the low @p n bits set. */
constexpr std::uint64_t
mask(unsigned n)
{
    return n >= 64 ? ~std::uint64_t(0) : ((std::uint64_t(1) << n) - 1);
}

/** Extracts bits [hi:lo] (inclusive) of @p v. */
constexpr std::uint64_t
bits(std::uint64_t v, unsigned hi, unsigned lo)
{
    return (v >> lo) & mask(hi - lo + 1);
}

/** Whether a byte access [addr, addr+size) crosses an @p align boundary. */
constexpr bool
crossesBoundary(std::uint64_t addr, unsigned size, std::uint64_t align)
{
    return size != 0 && (addr / align) != ((addr + size - 1) / align);
}

} // namespace mbias

#endif // MBIAS_BASE_BITUTILS_HH
