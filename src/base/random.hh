#ifndef MBIAS_BASE_RANDOM_HH
#define MBIAS_BASE_RANDOM_HH

#include <cstdint>
#include <vector>

namespace mbias
{

/**
 * Deterministic pseudo-random number generator (xoshiro256**, seeded via
 * SplitMix64).  The library never uses std::random_device or global
 * state: every stochastic component takes an explicit Rng so that any
 * experiment is exactly reproducible from its seed.
 */
class Rng
{
  public:
    /** Constructs a generator from a 64-bit seed. */
    explicit Rng(std::uint64_t seed = 0);

    /** Returns the next raw 64-bit value. */
    std::uint64_t next();

    /** Returns a uniform integer in [0, bound) ; @p bound must be > 0. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /**
     * Returns a near-uniform integer in [0, bound) using exactly one
     * next() call (multiply-shift on the high 32 bits); requires
     * bound <= 2^32.  Unlike nextBounded's rejection loop, this draw
     * is a fixed-length computation, which is what makes the stats
     * engine's SIMD/parallel resampling bitwise-reproducible: each
     * draw consumes exactly one generator step regardless of value.
     * The price is a deterministic selection bias of at most
     * bound/2^32 per draw (< 2^-22 for any campaign-sized bound) —
     * identical on every path, so it can never cause a divergence.
     */
    std::uint64_t nextIndex(std::uint64_t bound);

    /**
     * Exposes state word @p i (0..3) of the xoshiro256** state.
     * Read-only; exists so vectorized engines can transpose freshly
     * seeded generators into SIMD lanes and still produce the exact
     * sequence this scalar generator would.
     */
    std::uint64_t stateWord(unsigned i) const;

    /** Returns a uniform integer in [lo, hi] (inclusive). */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Returns a uniform double in [0, 1). */
    double nextDouble();

    /** Returns a standard-normal variate (Box-Muller). */
    double nextGaussian();

    /** Fisher-Yates shuffles @p v in place. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = nextBounded(i);
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Derives an independent child generator (for parallel streams). */
    Rng split();

    /**
     * Derives the child generator for stream @p key without advancing
     * this generator.  Unlike split(), which consumes state (so the
     * result depends on how many children were taken before), splitAt
     * is a pure function of (current state, key): callers that hand
     * out children by task index get the same child for the same index
     * no matter the order or thread the requests arrive on.
     */
    Rng splitAt(std::uint64_t key) const;

  private:
    std::uint64_t s_[4];
    bool haveGauss_ = false;
    double gauss_ = 0.0;
};

} // namespace mbias

#endif // MBIAS_BASE_RANDOM_HH
