#include "isa/opcode.hh"

#include "base/logging.hh"

namespace mbias::isa
{

namespace
{

struct OpInfo
{
    std::string_view name;
    OpClass cls;
};

constexpr OpInfo op_table[] = {
    {"add", OpClass::IntAlu},   {"sub", OpClass::IntAlu},
    {"mul", OpClass::IntMul},   {"divu", OpClass::IntDiv},
    {"remu", OpClass::IntDiv},  {"and", OpClass::IntAlu},
    {"or", OpClass::IntAlu},    {"xor", OpClass::IntAlu},
    {"sll", OpClass::IntAlu},   {"srl", OpClass::IntAlu},
    {"sra", OpClass::IntAlu},   {"slt", OpClass::IntAlu},
    {"sltu", OpClass::IntAlu},  {"addi", OpClass::IntAlu},
    {"andi", OpClass::IntAlu},  {"ori", OpClass::IntAlu},
    {"xori", OpClass::IntAlu},  {"slli", OpClass::IntAlu},
    {"srli", OpClass::IntAlu},  {"srai", OpClass::IntAlu},
    {"slti", OpClass::IntAlu},  {"li", OpClass::IntAlu},
    {"la", OpClass::IntAlu},    {"ld1", OpClass::Load},
    {"ld2", OpClass::Load},     {"ld4", OpClass::Load},
    {"ld8", OpClass::Load},     {"st1", OpClass::Store},
    {"st2", OpClass::Store},    {"st4", OpClass::Store},
    {"st8", OpClass::Store},    {"beq", OpClass::CondBranch},
    {"bne", OpClass::CondBranch}, {"blt", OpClass::CondBranch},
    {"bge", OpClass::CondBranch}, {"bltu", OpClass::CondBranch},
    {"bgeu", OpClass::CondBranch}, {"jmp", OpClass::Jump},
    {"call", OpClass::Call},    {"ret", OpClass::Ret},
    {"nop", OpClass::Nop},      {"halt", OpClass::Halt},
};

static_assert(sizeof(op_table) / sizeof(op_table[0]) ==
                  std::size_t(Opcode::NumOpcodes),
              "opcode table out of sync with Opcode enum");

} // namespace

std::string_view
opcodeName(Opcode op)
{
    return op_table[std::size_t(op)].name;
}

OpClass
opClass(Opcode op)
{
    return op_table[std::size_t(op)].cls;
}

bool
isCondBranch(Opcode op)
{
    return opClass(op) == OpClass::CondBranch;
}

bool
isLoad(Opcode op)
{
    return opClass(op) == OpClass::Load;
}

bool
isStore(Opcode op)
{
    return opClass(op) == OpClass::Store;
}

unsigned
memAccessSize(Opcode op)
{
    switch (op) {
      case Opcode::Ld1:
      case Opcode::St1:
        return 1;
      case Opcode::Ld2:
      case Opcode::St2:
        return 2;
      case Opcode::Ld4:
      case Opcode::St4:
        return 4;
      case Opcode::Ld8:
      case Opcode::St8:
        return 8;
      default:
        return 0;
    }
}

Opcode
invertCondBranch(Opcode op)
{
    switch (op) {
      case Opcode::Beq:
        return Opcode::Bne;
      case Opcode::Bne:
        return Opcode::Beq;
      case Opcode::Blt:
        return Opcode::Bge;
      case Opcode::Bge:
        return Opcode::Blt;
      case Opcode::Bltu:
        return Opcode::Bgeu;
      case Opcode::Bgeu:
        return Opcode::Bltu;
      default:
        mbias_panic("invertCondBranch on non-branch opcode ",
                    opcodeName(op));
    }
}

} // namespace mbias::isa
