#include "isa/instruction.hh"

#include <sstream>

#include "base/logging.hh"

namespace mbias::isa
{

namespace
{

bool
fitsInt8(std::int64_t v)
{
    return v >= -128 && v <= 127;
}

bool
fitsInt32(std::int64_t v)
{
    return v >= INT32_MIN && v <= INT32_MAX;
}

} // namespace

unsigned
Instruction::encodedSize() const
{
    switch (opClass(op)) {
      case OpClass::IntAlu:
      case OpClass::IntMul:
      case OpClass::IntDiv:
        switch (op) {
          case Opcode::Li:
            return fitsInt32(imm) ? 6 : 10;
          case Opcode::La:
            return 6; // always a 32-bit absolute data address
          case Opcode::Addi:
          case Opcode::Andi:
          case Opcode::Ori:
          case Opcode::Xori:
          case Opcode::Slli:
          case Opcode::Srli:
          case Opcode::Srai:
          case Opcode::Slti:
            return fitsInt8(imm) ? 4 : 6;
          default:
            return 3; // compact register-register form
        }
      case OpClass::Load:
      case OpClass::Store:
        return fitsInt8(imm) ? 4 : 6;
      case OpClass::CondBranch:
        return 4;
      case OpClass::Jump:
        return 5;
      case OpClass::Call:
        return 5;
      case OpClass::Ret:
        return 1;
      case OpClass::Nop:
        // Multi-byte nop: imm carries the encoded width (1..15 bytes),
        // as x86 alignment padding does.  One fetch/decode slot either
        // way.
        return imm >= 1 && imm <= 15 ? unsigned(imm) : 1;
      case OpClass::Halt:
        return 2;
    }
    mbias_panic("unreachable opclass");
}

bool
Instruction::reads(Reg r) const
{
    if (r == reg::zero)
        return false;
    switch (opClass(op)) {
      case OpClass::IntAlu:
      case OpClass::IntMul:
      case OpClass::IntDiv:
        if (op == Opcode::Li || op == Opcode::La)
            return false;
        switch (op) {
          case Opcode::Addi:
          case Opcode::Andi:
          case Opcode::Ori:
          case Opcode::Xori:
          case Opcode::Slli:
          case Opcode::Srli:
          case Opcode::Srai:
          case Opcode::Slti:
            return rs1 == r;
          default:
            return rs1 == r || rs2 == r;
        }
      case OpClass::Load:
        return rs1 == r;
      case OpClass::Store:
        return rs1 == r || rd == r; // rd holds the stored data
      case OpClass::CondBranch:
        return rs1 == r || rs2 == r;
      default:
        return false;
    }
}

bool
Instruction::writes(Reg r) const
{
    if (r == reg::zero)
        return false;
    const int d = destReg();
    return d >= 0 && Reg(d) == r;
}

int
Instruction::destReg() const
{
    switch (opClass(op)) {
      case OpClass::IntAlu:
      case OpClass::IntMul:
      case OpClass::IntDiv:
      case OpClass::Load:
        return rd == reg::zero ? -1 : int(rd);
      default:
        return -1;
    }
}

std::string
Instruction::str() const
{
    std::ostringstream os;
    os << opcodeName(op);
    switch (opClass(op)) {
      case OpClass::IntAlu:
      case OpClass::IntMul:
      case OpClass::IntDiv:
        if (op == Opcode::Li) {
            os << " x" << int(rd) << ", " << imm;
        } else if (op == Opcode::La) {
            os << " x" << int(rd) << ", &" << sym;
        } else if (op == Opcode::Addi || op == Opcode::Andi ||
                   op == Opcode::Ori || op == Opcode::Xori ||
                   op == Opcode::Slli || op == Opcode::Srli ||
                   op == Opcode::Srai || op == Opcode::Slti) {
            os << " x" << int(rd) << ", x" << int(rs1) << ", " << imm;
        } else {
            os << " x" << int(rd) << ", x" << int(rs1) << ", x" << int(rs2);
        }
        break;
      case OpClass::Load:
        os << " x" << int(rd) << ", [x" << int(rs1) << " + " << imm << "]";
        break;
      case OpClass::Store:
        os << " [x" << int(rs1) << " + " << imm << "], x" << int(rd);
        break;
      case OpClass::CondBranch:
        os << " x" << int(rs1) << ", x" << int(rs2) << ", L" << target;
        break;
      case OpClass::Jump:
        os << " L" << target;
        break;
      case OpClass::Call:
        os << " " << sym;
        break;
      default:
        break;
    }
    return os.str();
}

Instruction
makeRR(Opcode op, Reg rd, Reg rs1, Reg rs2)
{
    Instruction i;
    i.op = op;
    i.rd = rd;
    i.rs1 = rs1;
    i.rs2 = rs2;
    return i;
}

Instruction
makeRI(Opcode op, Reg rd, Reg rs1, std::int64_t imm)
{
    Instruction i;
    i.op = op;
    i.rd = rd;
    i.rs1 = rs1;
    i.imm = imm;
    return i;
}

Instruction
makeLi(Reg rd, std::int64_t imm)
{
    Instruction i;
    i.op = Opcode::Li;
    i.rd = rd;
    i.imm = imm;
    return i;
}

Instruction
makeLa(Reg rd, std::string global)
{
    Instruction i;
    i.op = Opcode::La;
    i.rd = rd;
    i.sym = std::move(global);
    return i;
}

Instruction
makeMem(Opcode op, Reg data, Reg base, std::int64_t offset)
{
    Instruction i;
    i.op = op;
    i.rd = data;
    i.rs1 = base;
    i.imm = offset;
    return i;
}

Instruction
makeBranch(Opcode op, Reg rs1, Reg rs2, std::int32_t label)
{
    Instruction i;
    i.op = op;
    i.rs1 = rs1;
    i.rs2 = rs2;
    i.target = label;
    return i;
}

Instruction
makeJmp(std::int32_t label)
{
    Instruction i;
    i.op = Opcode::Jmp;
    i.target = label;
    return i;
}

Instruction
makeCall(std::string callee)
{
    Instruction i;
    i.op = Opcode::Call;
    i.sym = std::move(callee);
    return i;
}

Instruction
makeRet()
{
    Instruction i;
    i.op = Opcode::Ret;
    return i;
}

Instruction
makeNop(unsigned width)
{
    Instruction i;
    i.op = Opcode::Nop;
    i.imm = width;
    return i;
}

Instruction
makeHalt()
{
    Instruction i;
    i.op = Opcode::Halt;
    return i;
}

} // namespace mbias::isa
