#include "isa/builder.hh"

#include "base/logging.hh"

namespace mbias::isa
{

ProgramBuilder::ProgramBuilder(std::string module_name)
    : module_(std::move(module_name))
{
}

void
ProgramBuilder::global(const std::string &name, std::uint64_t size,
                       unsigned alignment)
{
    module_.addGlobal(name, size, alignment);
}

void
ProgramBuilder::globalInit(const std::string &name,
                           std::vector<std::uint8_t> init, unsigned alignment)
{
    module_.addGlobal(name, std::move(init), alignment);
}

void
ProgramBuilder::globalWords(const std::string &name,
                            const std::vector<std::uint64_t> &words,
                            unsigned alignment)
{
    std::vector<std::uint8_t> bytes;
    bytes.reserve(words.size() * 8);
    for (std::uint64_t w : words)
        for (int i = 0; i < 8; ++i)
            bytes.push_back(std::uint8_t(w >> (8 * i)));
    module_.addGlobal(name, std::move(bytes), alignment);
}

void
ProgramBuilder::func(const std::string &name)
{
    mbias_assert(!inFunction_, "func() while function ",
                 current_.name(), " still open");
    current_ = Function(name);
    labelIds_.clear();
    inFunction_ = true;
}

void
ProgramBuilder::endFunc()
{
    mbias_assert(inFunction_, "endFunc() without func()");
    mbias_assert(current_.allLabelsBound(), "unbound label in ",
                 current_.name());
    module_.addFunction(std::move(current_));
    inFunction_ = false;
}

Function &
ProgramBuilder::cur()
{
    mbias_assert(inFunction_, "instruction emitted outside a function");
    return current_;
}

std::int32_t
ProgramBuilder::labelId(const std::string &name)
{
    auto it = labelIds_.find(name);
    if (it != labelIds_.end())
        return it->second;
    std::int32_t id = cur().newLabel(name);
    labelIds_.emplace(name, id);
    return id;
}

void
ProgramBuilder::label(const std::string &name)
{
    std::int32_t id = labelId(name);
    cur().bindLabel(id, std::uint32_t(cur().insts().size()));
}

void
ProgramBuilder::emit(Instruction inst)
{
    cur().insts().push_back(std::move(inst));
}

// --- register-register ALU ---

#define MBIAS_RR(mnemonic, OP)                                              \
    void ProgramBuilder::mnemonic(Reg rd, Reg rs1, Reg rs2)                 \
    {                                                                       \
        emit(makeRR(Opcode::OP, rd, rs1, rs2));                             \
    }

MBIAS_RR(add, Add)
MBIAS_RR(sub, Sub)
MBIAS_RR(mul, Mul)
MBIAS_RR(divu, Divu)
MBIAS_RR(remu, Remu)
MBIAS_RR(and_, And)
MBIAS_RR(or_, Or)
MBIAS_RR(xor_, Xor)
MBIAS_RR(sll, Sll)
MBIAS_RR(srl, Srl)
MBIAS_RR(sra, Sra)
MBIAS_RR(slt, Slt)
MBIAS_RR(sltu, Sltu)
#undef MBIAS_RR

// --- register-immediate ALU ---

#define MBIAS_RI(mnemonic, OP)                                              \
    void ProgramBuilder::mnemonic(Reg rd, Reg rs1, std::int64_t imm)        \
    {                                                                       \
        emit(makeRI(Opcode::OP, rd, rs1, imm));                             \
    }

MBIAS_RI(addi, Addi)
MBIAS_RI(andi, Andi)
MBIAS_RI(ori, Ori)
MBIAS_RI(xori, Xori)
MBIAS_RI(slli, Slli)
MBIAS_RI(srli, Srli)
MBIAS_RI(srai, Srai)
MBIAS_RI(slti, Slti)
#undef MBIAS_RI

void
ProgramBuilder::li(Reg rd, std::int64_t imm)
{
    emit(makeLi(rd, imm));
}

void
ProgramBuilder::la(Reg rd, const std::string &global_name)
{
    emit(makeLa(rd, global_name));
}

void
ProgramBuilder::mv(Reg rd, Reg rs1)
{
    emit(makeRI(Opcode::Addi, rd, rs1, 0));
}

// --- memory ---

#define MBIAS_MEM(mnemonic, OP)                                             \
    void ProgramBuilder::mnemonic(Reg data, Reg base, std::int64_t off)     \
    {                                                                       \
        emit(makeMem(Opcode::OP, data, base, off));                         \
    }

MBIAS_MEM(ld1, Ld1)
MBIAS_MEM(ld2, Ld2)
MBIAS_MEM(ld4, Ld4)
MBIAS_MEM(ld8, Ld8)
MBIAS_MEM(st1, St1)
MBIAS_MEM(st2, St2)
MBIAS_MEM(st4, St4)
MBIAS_MEM(st8, St8)
#undef MBIAS_MEM

// --- control flow ---

#define MBIAS_BR(mnemonic, OP)                                              \
    void ProgramBuilder::mnemonic(Reg rs1, Reg rs2,                         \
                                  const std::string &label_name)            \
    {                                                                       \
        emit(makeBranch(Opcode::OP, rs1, rs2, labelId(label_name)));        \
    }

MBIAS_BR(beq, Beq)
MBIAS_BR(bne, Bne)
MBIAS_BR(blt, Blt)
MBIAS_BR(bge, Bge)
MBIAS_BR(bltu, Bltu)
MBIAS_BR(bgeu, Bgeu)
#undef MBIAS_BR

void
ProgramBuilder::jmp(const std::string &label_name)
{
    emit(makeJmp(labelId(label_name)));
}

void
ProgramBuilder::call(const std::string &callee)
{
    emit(makeCall(callee));
}

void
ProgramBuilder::ret()
{
    emit(makeRet());
}

void
ProgramBuilder::nop()
{
    emit(makeNop());
}

void
ProgramBuilder::halt()
{
    emit(makeHalt());
}

Module
ProgramBuilder::build()
{
    mbias_assert(!inFunction_, "build() while function ",
                 current_.name(), " still open");
    return std::move(module_);
}

} // namespace mbias::isa
