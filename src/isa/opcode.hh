#ifndef MBIAS_ISA_OPCODE_HH
#define MBIAS_ISA_OPCODE_HH

#include <cstdint>
#include <string_view>

namespace mbias::isa
{

/**
 * Operations of the µRISC instruction set.
 *
 * The ISA is deliberately small but *variable-length encoded* (see
 * Instruction::encodedSize): code layout therefore shifts in non-trivial
 * ways when the toolchain changes inlining, unrolling, or link order,
 * which is exactly the mechanism behind the measurement bias studied in
 * the paper.
 */
enum class Opcode : std::uint8_t
{
    // Register-register ALU.
    Add, Sub, Mul, Divu, Remu, And, Or, Xor, Sll, Srl, Sra, Slt, Sltu,
    // Register-immediate ALU.
    Addi, Andi, Ori, Xori, Slli, Srli, Srai, Slti,
    // Load immediate (up to 64 bits) and load address of a global.
    Li, La,
    // Zero-extending loads of 1/2/4/8 bytes from [rs1 + imm].
    Ld1, Ld2, Ld4, Ld8,
    // Stores of 1/2/4/8 bytes to [rs1 + imm].
    St1, St2, St4, St8,
    // Conditional branches on (rs1, rs2) to a label.
    Beq, Bne, Blt, Bge, Bltu, Bgeu,
    // Unconditional control flow.
    Jmp, Call, Ret,
    // Misc.
    Nop, Halt,

    NumOpcodes,
};

/** Broad functional classes used by the timing model. */
enum class OpClass : std::uint8_t
{
    IntAlu,
    IntMul,
    IntDiv,
    Load,
    Store,
    CondBranch,
    Jump,
    Call,
    Ret,
    Nop,
    Halt,
};

/** Mnemonic of @p op (e.g. "add"). */
std::string_view opcodeName(Opcode op);

/** Functional class of @p op. */
OpClass opClass(Opcode op);

/** True for Beq/Bne/Blt/Bge/Bltu/Bgeu. */
bool isCondBranch(Opcode op);

/** True for loads (Ld1..Ld8). */
bool isLoad(Opcode op);

/** True for stores (St1..St8). */
bool isStore(Opcode op);

/** Access size in bytes for loads/stores; 0 otherwise. */
unsigned memAccessSize(Opcode op);

/**
 * The opposite condition (Beq <-> Bne etc.).  Used by the compiler's
 * loop unroller, which rewrites intermediate back-branches as inverted
 * forward exits.
 */
Opcode invertCondBranch(Opcode op);

} // namespace mbias::isa

#endif // MBIAS_ISA_OPCODE_HH
