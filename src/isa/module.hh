#ifndef MBIAS_ISA_MODULE_HH
#define MBIAS_ISA_MODULE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/function.hh"

namespace mbias::isa
{

/**
 * A statically allocated data object.  The initializer may be shorter
 * than @c size; the remainder is zero-filled by the loader.
 */
struct GlobalData
{
    std::string name;
    std::uint64_t size = 0;
    unsigned alignment = 8;
    std::vector<std::uint8_t> init;
};

/**
 * A compilation unit: the µRISC analogue of one .o file.  The linker's
 * *link order* permutes Modules, which is one of the two "innocuous"
 * setup factors the paper studies.
 */
class Module
{
  public:
    Module() = default;
    explicit Module(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }

    std::vector<Function> &functions() { return funcs_; }
    const std::vector<Function> &functions() const { return funcs_; }

    std::vector<GlobalData> &globals() { return globals_; }
    const std::vector<GlobalData> &globals() const { return globals_; }

    /** Adds a function; names must be unique within the program. */
    void addFunction(Function f) { funcs_.push_back(std::move(f)); }

    /** Adds a zero-initialized global of @p size bytes. */
    void addGlobal(std::string name, std::uint64_t size,
                   unsigned alignment = 8);

    /** Adds an initialized global (size = init.size()). */
    void addGlobal(std::string name, std::vector<std::uint8_t> init,
                   unsigned alignment = 8);

    /** Looks up a function by name; nullptr if absent. */
    const Function *findFunction(const std::string &name) const;
    Function *findFunction(const std::string &name);

    /** Total encoded code bytes over all functions (without padding). */
    std::uint64_t codeBytes() const;

  private:
    std::string name_;
    std::vector<Function> funcs_;
    std::vector<GlobalData> globals_;
};

} // namespace mbias::isa

#endif // MBIAS_ISA_MODULE_HH
