#ifndef MBIAS_ISA_INSTRUCTION_HH
#define MBIAS_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>

#include "isa/opcode.hh"

namespace mbias::isa
{

/** Register numbers 0..31.  x0 is hardwired to zero. */
using Reg = std::uint8_t;

/** Architectural register roles (RISC-V flavoured ABI). */
namespace reg
{
constexpr Reg zero = 0; ///< hardwired zero
constexpr Reg ra = 1;   ///< return address (spilled to stack by Call)
constexpr Reg sp = 2;   ///< stack pointer
constexpr Reg gp = 3;   ///< global pointer (loader: data-segment base)
constexpr Reg hp = 4;   ///< heap pointer (loader: heap base)
constexpr Reg t0 = 5, t1 = 6, t2 = 7, t3 = 8, t4 = 9; ///< caller-saved
constexpr Reg a0 = 10, a1 = 11, a2 = 12, a3 = 13;     ///< args / return
constexpr Reg a4 = 14, a5 = 15, a6 = 16, a7 = 17;     ///< args
constexpr Reg s0 = 18, s1 = 19, s2 = 20, s3 = 21;     ///< callee-saved
constexpr Reg s4 = 22, s5 = 23, s6 = 24, s7 = 25;     ///< callee-saved
constexpr Reg s8 = 26, s9 = 27;                       ///< callee-saved
constexpr Reg t5 = 28, t6 = 29, t7 = 30, t8 = 31;     ///< caller-saved
constexpr unsigned numRegs = 32;
} // namespace reg

/** Sentinel for "no label attached / no target". */
constexpr std::int32_t no_target = -1;

/**
 * One µRISC instruction in unlinked form.
 *
 * Branch/jump targets are label ids local to the enclosing Function;
 * Call and La refer to symbols by name (resolved by the Linker).
 */
struct Instruction
{
    Opcode op = Opcode::Nop;
    Reg rd = 0;
    Reg rs1 = 0;
    Reg rs2 = 0;
    std::int64_t imm = 0;

    /** Label id (within the function) for branches and Jmp. */
    std::int32_t target = no_target;

    /** Callee function name (Call) or global name (La). */
    std::string sym;

    /**
     * Encoded size in bytes.  The encoding is variable-length (x86
     * flavoured): compact register forms, wider immediate forms.  The
     * size never depends on final addresses, so layout is a single
     * deterministic pass.
     */
    unsigned encodedSize() const;

    /** Human-readable rendering for debug dumps. */
    std::string str() const;

    /** True if this instruction reads register @p r (r != x0). */
    bool reads(Reg r) const;

    /** True if this instruction writes register @p r (r != x0). */
    bool writes(Reg r) const;

    /** Destination register or -1 if none. */
    int destReg() const;
};

/** Convenience factory functions for the common shapes. */
Instruction makeRR(Opcode op, Reg rd, Reg rs1, Reg rs2);
Instruction makeRI(Opcode op, Reg rd, Reg rs1, std::int64_t imm);
Instruction makeLi(Reg rd, std::int64_t imm);
Instruction makeLa(Reg rd, std::string global);
Instruction makeMem(Opcode op, Reg data, Reg base, std::int64_t offset);
Instruction makeBranch(Opcode op, Reg rs1, Reg rs2, std::int32_t label);
Instruction makeJmp(std::int32_t label);
Instruction makeCall(std::string callee);
Instruction makeRet();
Instruction makeNop(unsigned width = 1);
Instruction makeHalt();

} // namespace mbias::isa

#endif // MBIAS_ISA_INSTRUCTION_HH
