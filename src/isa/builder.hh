#ifndef MBIAS_ISA_BUILDER_HH
#define MBIAS_ISA_BUILDER_HH

#include <cstdint>
#include <string>
#include <unordered_map>

#include "isa/module.hh"

namespace mbias::isa
{

/**
 * Assembler-style builder for µRISC modules.
 *
 * Workloads are written against this interface much like hand-written
 * assembly: named labels (forward references allowed), one method per
 * mnemonic, and named globals.  Example:
 *
 * @code
 * ProgramBuilder b("kernel");
 * b.global("buf", 4096);
 * b.func("main");
 * b.li(reg::t0, 100);
 * b.label("loop");
 * b.addi(reg::t0, reg::t0, -1);
 * b.bne(reg::t0, reg::zero, "loop");
 * b.halt();
 * b.endFunc();
 * Module m = b.build();
 * @endcode
 */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(std::string module_name);

    /** @name Data definitions @{ */
    void global(const std::string &name, std::uint64_t size,
                unsigned alignment = 8);
    void globalInit(const std::string &name,
                    std::vector<std::uint8_t> init, unsigned alignment = 8);
    /** Defines a global of 64-bit little-endian words. */
    void globalWords(const std::string &name,
                     const std::vector<std::uint64_t> &words,
                     unsigned alignment = 8);
    /** @} */

    /** @name Function scope @{ */
    void func(const std::string &name);
    void endFunc();
    /** Binds (or creates and binds) label @p name at the next inst. */
    void label(const std::string &name);
    /** @} */

    /** @name Register-register ALU @{ */
    void add(Reg rd, Reg rs1, Reg rs2);
    void sub(Reg rd, Reg rs1, Reg rs2);
    void mul(Reg rd, Reg rs1, Reg rs2);
    void divu(Reg rd, Reg rs1, Reg rs2);
    void remu(Reg rd, Reg rs1, Reg rs2);
    void and_(Reg rd, Reg rs1, Reg rs2);
    void or_(Reg rd, Reg rs1, Reg rs2);
    void xor_(Reg rd, Reg rs1, Reg rs2);
    void sll(Reg rd, Reg rs1, Reg rs2);
    void srl(Reg rd, Reg rs1, Reg rs2);
    void sra(Reg rd, Reg rs1, Reg rs2);
    void slt(Reg rd, Reg rs1, Reg rs2);
    void sltu(Reg rd, Reg rs1, Reg rs2);
    /** @} */

    /** @name Register-immediate ALU @{ */
    void addi(Reg rd, Reg rs1, std::int64_t imm);
    void andi(Reg rd, Reg rs1, std::int64_t imm);
    void ori(Reg rd, Reg rs1, std::int64_t imm);
    void xori(Reg rd, Reg rs1, std::int64_t imm);
    void slli(Reg rd, Reg rs1, std::int64_t imm);
    void srli(Reg rd, Reg rs1, std::int64_t imm);
    void srai(Reg rd, Reg rs1, std::int64_t imm);
    void slti(Reg rd, Reg rs1, std::int64_t imm);
    void li(Reg rd, std::int64_t imm);
    void la(Reg rd, const std::string &global_name);
    /** Copies rs1 into rd (addi rd, rs1, 0). */
    void mv(Reg rd, Reg rs1);
    /** @} */

    /** @name Memory @{ */
    void ld1(Reg rd, Reg base, std::int64_t off = 0);
    void ld2(Reg rd, Reg base, std::int64_t off = 0);
    void ld4(Reg rd, Reg base, std::int64_t off = 0);
    void ld8(Reg rd, Reg base, std::int64_t off = 0);
    void st1(Reg data, Reg base, std::int64_t off = 0);
    void st2(Reg data, Reg base, std::int64_t off = 0);
    void st4(Reg data, Reg base, std::int64_t off = 0);
    void st8(Reg data, Reg base, std::int64_t off = 0);
    /** @} */

    /** @name Control flow @{ */
    void beq(Reg rs1, Reg rs2, const std::string &label_name);
    void bne(Reg rs1, Reg rs2, const std::string &label_name);
    void blt(Reg rs1, Reg rs2, const std::string &label_name);
    void bge(Reg rs1, Reg rs2, const std::string &label_name);
    void bltu(Reg rs1, Reg rs2, const std::string &label_name);
    void bgeu(Reg rs1, Reg rs2, const std::string &label_name);
    void jmp(const std::string &label_name);
    void call(const std::string &callee);
    void ret();
    void nop();
    void halt();
    /** @} */

    /**
     * Finalizes and returns the module.  Panics if a function is still
     * open or a referenced label was never bound.
     */
    Module build();

  private:
    std::int32_t labelId(const std::string &name);
    void emit(Instruction inst);
    Function &cur();

    Module module_;
    Function current_;
    bool inFunction_ = false;
    std::unordered_map<std::string, std::int32_t> labelIds_;
};

} // namespace mbias::isa

#endif // MBIAS_ISA_BUILDER_HH
