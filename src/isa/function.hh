#ifndef MBIAS_ISA_FUNCTION_HH
#define MBIAS_ISA_FUNCTION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/instruction.hh"

namespace mbias::isa
{

/**
 * One function: a named sequence of instructions with local labels.
 *
 * Labels are integer ids; labelTarget maps an id to the index of the
 * instruction it precedes (a label at end-of-function is allowed and
 * points one past the last instruction).
 */
class Function
{
  public:
    Function() = default;
    explicit Function(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }

    /** The instruction sequence (mutable for compiler passes). */
    std::vector<Instruction> &insts() { return insts_; }
    const std::vector<Instruction> &insts() const { return insts_; }

    /** Creates a new label id bound later via bindLabel. */
    std::int32_t newLabel(std::string label_name = "");

    /** Binds label @p id to instruction index @p inst_idx. */
    void bindLabel(std::int32_t id, std::uint32_t inst_idx);

    /** Instruction index a label points at. */
    std::uint32_t labelTarget(std::int32_t id) const;

    /** Number of labels allocated. */
    std::size_t numLabels() const { return label_targets_.size(); }

    /** Overwrites the target of label @p id (compiler passes only). */
    void retarget(std::int32_t id, std::uint32_t inst_idx);

    /** Debug name of a label (may be empty). */
    const std::string &labelName(std::int32_t id) const;

    /** True iff every allocated label has been bound. */
    bool allLabelsBound() const;

    /** True iff the function contains no Call instructions. */
    bool isLeaf() const;

    /** Sum of encoded instruction sizes in bytes. */
    std::uint64_t codeBytes() const;

    /**
     * Required start alignment in bytes (set by the compiler per
     * vendor/opt level; the linker honours it).
     */
    unsigned alignment() const { return alignment_; }
    void setAlignment(unsigned a) { alignment_ = a; }

    /** Multi-line disassembly listing. */
    std::string str() const;

  private:
    std::string name_;
    std::vector<Instruction> insts_;
    std::vector<std::uint32_t> label_targets_;
    std::vector<std::string> label_names_;
    unsigned alignment_ = 1;

    static constexpr std::uint32_t unbound = UINT32_MAX;
};

} // namespace mbias::isa

#endif // MBIAS_ISA_FUNCTION_HH
