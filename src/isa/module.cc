#include "isa/module.hh"

#include "base/logging.hh"

namespace mbias::isa
{

void
Module::addGlobal(std::string name, std::uint64_t size, unsigned alignment)
{
    mbias_assert(size > 0, "global ", name, " has zero size");
    GlobalData g;
    g.name = std::move(name);
    g.size = size;
    g.alignment = alignment;
    globals_.push_back(std::move(g));
}

void
Module::addGlobal(std::string name, std::vector<std::uint8_t> init,
                  unsigned alignment)
{
    mbias_assert(!init.empty(), "global ", name, " has empty initializer");
    GlobalData g;
    g.name = std::move(name);
    g.size = init.size();
    g.alignment = alignment;
    g.init = std::move(init);
    globals_.push_back(std::move(g));
}

const Function *
Module::findFunction(const std::string &name) const
{
    for (const auto &f : funcs_)
        if (f.name() == name)
            return &f;
    return nullptr;
}

Function *
Module::findFunction(const std::string &name)
{
    for (auto &f : funcs_)
        if (f.name() == name)
            return &f;
    return nullptr;
}

std::uint64_t
Module::codeBytes() const
{
    std::uint64_t bytes = 0;
    for (const auto &f : funcs_)
        bytes += f.codeBytes();
    return bytes;
}

} // namespace mbias::isa
