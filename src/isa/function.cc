#include "isa/function.hh"

#include <sstream>

#include "base/logging.hh"

namespace mbias::isa
{

std::int32_t
Function::newLabel(std::string label_name)
{
    label_targets_.push_back(unbound);
    label_names_.push_back(std::move(label_name));
    return std::int32_t(label_targets_.size() - 1);
}

void
Function::bindLabel(std::int32_t id, std::uint32_t inst_idx)
{
    mbias_assert(id >= 0 && std::size_t(id) < label_targets_.size(),
                 "label id out of range in ", name_);
    mbias_assert(label_targets_[id] == unbound,
                 "label bound twice in ", name_);
    label_targets_[id] = inst_idx;
}

std::uint32_t
Function::labelTarget(std::int32_t id) const
{
    mbias_assert(id >= 0 && std::size_t(id) < label_targets_.size(),
                 "label id out of range in ", name_);
    mbias_assert(label_targets_[id] != unbound,
                 "label ", id, " unbound in ", name_);
    return label_targets_[id];
}

void
Function::retarget(std::int32_t id, std::uint32_t inst_idx)
{
    mbias_assert(id >= 0 && std::size_t(id) < label_targets_.size(),
                 "label id out of range in ", name_);
    label_targets_[id] = inst_idx;
}

const std::string &
Function::labelName(std::int32_t id) const
{
    mbias_assert(id >= 0 && std::size_t(id) < label_names_.size(),
                 "label id out of range in ", name_);
    return label_names_[id];
}

bool
Function::allLabelsBound() const
{
    for (auto t : label_targets_)
        if (t == unbound)
            return false;
    return true;
}

bool
Function::isLeaf() const
{
    for (const auto &i : insts_)
        if (i.op == Opcode::Call)
            return false;
    return true;
}

std::uint64_t
Function::codeBytes() const
{
    std::uint64_t bytes = 0;
    for (const auto &i : insts_)
        bytes += i.encodedSize();
    return bytes;
}

std::string
Function::str() const
{
    std::ostringstream os;
    os << name_ << ":\n";
    for (std::size_t idx = 0; idx < insts_.size(); ++idx) {
        for (std::size_t l = 0; l < label_targets_.size(); ++l)
            if (label_targets_[l] == idx)
                os << "  L" << l
                   << (label_names_[l].empty() ? "" : " <" + label_names_[l] +
                                                         ">")
                   << ":\n";
        os << "    " << insts_[idx].str() << "\n";
    }
    return os.str();
}

} // namespace mbias::isa
