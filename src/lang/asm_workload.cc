#include "lang/asm_workload.hh"

#include <algorithm>
#include <chrono>
#include <filesystem>

#include "base/logging.hh"
#include "lang/assembler.hh"
#include "lang/manifest.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/machine.hh"
#include "toolchain/compiler.hh"
#include "toolchain/linker.hh"
#include "toolchain/loader.hh"
#include "workloads/registry.hh"
#include "workloads/runtime.hh"

namespace mbias::lang
{

AsmWorkload::AsmWorkload(Params params) : params_(std::move(params))
{
    mbias_assert(!params_.name.empty(), "AsmWorkload without a name");
    mbias_assert(!params_.modules.empty(), "AsmWorkload '", params_.name,
                 "' has no modules");
}

std::vector<isa::Module>
AsmWorkload::build(const workloads::WorkloadConfig &cfg) const
{
    if (cfg.scale != params_.config.scale ||
        cfg.seed != params_.config.seed)
        mbias_fatal("asm workload '", params_.name,
                    "' was assembled at scale=", params_.config.scale,
                    " seed=", params_.config.seed,
                    " and cannot run at scale=", cfg.scale,
                    " seed=", cfg.seed,
                    " (regenerate the .asm asset for that config)");
    std::vector<isa::Module> mods = params_.modules;
    if (params_.linkRuntime)
        workloads::appendLibraryModules(mods);
    return mods;
}

std::uint64_t
AsmWorkload::referenceResult(const workloads::WorkloadConfig &cfg) const
{
    if (params_.expect)
        return *params_.expect;
    // The architectural result (a0 at Halt) is independent of layout,
    // machine model, and toolchain, so any fixed setup defines the
    // reference.  Computed once; the run is functional-cheap.
    std::call_once(computeOnce_, [&] {
        toolchain::Compiler cc(toolchain::CompilerVendor::GccLike,
                               toolchain::OptLevel::O0);
        auto mods = cc.compile(build(cfg));
        toolchain::Linker linker;
        auto prog = linker.link(mods, toolchain::LinkOrder::asGiven());
        auto image = toolchain::Loader::load(std::move(prog), {});
        sim::Machine machine(sim::MachineConfig::core2Like());
        const auto rr = machine.run(image);
        mbias_assert(rr.halted, "asm workload '", params_.name,
                     "' did not halt while computing its reference");
        computed_ = rr.result;
    });
    return computed_;
}

namespace
{

/** The uninstrumented load; loadAsmWorkload wraps it with metrics. */
LoadedWorkload
loadAsmWorkloadImpl(const std::string &manifest_path)
{
    auto fail = [&](std::string why) {
        LoadedWorkload r;
        r.error = manifest_path + ": " + std::move(why);
        return r;
    };

    std::string err;
    const Manifest mf = Manifest::parseFile(manifest_path, &err);
    if (!mf.ok())
        return fail(err);

    AsmWorkload::Params p;
    p.name = mf.getString("workload", "name");
    if (p.name.empty())
        return fail("manifest has no [workload] name");
    const std::string asm_file = mf.getString("workload", "asm");
    if (asm_file.empty())
        return fail("manifest has no [workload] asm file");
    p.archetype = mf.getString("workload", "archetype", "asm");
    p.description =
        mf.getString("workload", "description", "assembled workload");
    p.linkRuntime = mf.getBool("workload", "link_runtime", true);
    p.config.scale = unsigned(mf.getInt("workload", "scale", 1));
    p.config.seed = std::uint64_t(mf.getInt("workload", "seed", 12345));
    if (mf.has("workload", "expect"))
        p.expect = std::uint64_t(mf.getInt("workload", "expect", 0));
    const std::string entry = mf.getString("workload", "entry", "main");
    if (entry != "main")
        return fail("entry must be 'main' (the loader's entry symbol), "
                    "got '" + entry + "'");

    const auto asm_path =
        std::filesystem::path(manifest_path).parent_path() / asm_file;
    AsmResult assembled = assembleFile(asm_path.string());
    if (!assembled.ok())
        return fail("assembly failed:\n" +
                    assembled.errorText(asm_path.string()));
    if (assembled.modules.empty())
        return fail(asm_path.string() + " defines no modules");
    bool has_entry = false;
    for (const auto &m : assembled.modules)
        has_entry = has_entry || m.findFunction(entry) != nullptr;
    if (!has_entry)
        return fail(asm_path.string() + " defines no '" + entry +
                    "' function");
    p.modules = std::move(assembled.modules);

    LoadedWorkload r;
    r.workload = std::make_unique<AsmWorkload>(std::move(p));
    return r;
}

} // namespace

LoadedWorkload
loadAsmWorkload(const std::string &manifest_path)
{
    obs::ScopedSpan span("asm.load", "lang");
    const auto t0 = std::chrono::steady_clock::now();
    LoadedWorkload r = loadAsmWorkloadImpl(manifest_path);
    auto &reg = obs::Registry::global();
    reg.counter("asm.load").add();
    reg.histogram("asm.load_us")
        .record(std::uint64_t(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - t0)
                .count()));
    return r;
}

std::size_t
loadAsmDirectory(const std::string &dir)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    std::vector<fs::path> manifests;
    for (const auto &e : fs::directory_iterator(dir, ec))
        if (e.is_regular_file() && e.path().extension() == ".toml")
            manifests.push_back(e.path());
    if (ec)
        mbias_fatal("cannot read asm workload directory '", dir, "': ",
                    ec.message());
    std::sort(manifests.begin(), manifests.end());

    auto &registry = workloads::Registry::instance();
    for (const auto &path : manifests) {
        auto loaded = loadAsmWorkload(path.string());
        if (!loaded.ok())
            mbias_fatal(loaded.error);
        const std::string err =
            registry.tryAdd(std::move(loaded.workload), path.string());
        if (!err.empty())
            mbias_fatal(err);
    }
    return manifests.size();
}

} // namespace mbias::lang
