#include "lang/manifest.hh"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace mbias::lang
{

namespace
{

std::string_view
trim(std::string_view s)
{
    while (!s.empty() &&
           std::isspace(static_cast<unsigned char>(s.front())))
        s.remove_prefix(1);
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
        s.remove_suffix(1);
    return s;
}

/** Strips a comment that starts outside of a quoted string. */
std::string_view
stripComment(std::string_view s)
{
    bool quoted = false;
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] == '"')
            quoted = !quoted;
        else if (!quoted && (s[i] == '#' || s[i] == ';'))
            return s.substr(0, i);
    }
    return s;
}

bool
validKey(std::string_view k)
{
    if (k.empty())
        return false;
    for (char c : k)
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
            c != '-' && c != '.')
            return false;
    return true;
}

} // namespace

Manifest
Manifest::parse(std::string_view text, std::string *error)
{
    Manifest m;
    std::string section;
    unsigned lineno = 0;
    std::size_t pos = 0;

    auto fail = [&](const std::string &msg) {
        if (error)
            *error = "line " + std::to_string(lineno) + ": " + msg;
        return Manifest();
    };

    while (pos <= text.size()) {
        const std::size_t eol = text.find('\n', pos);
        std::string_view line =
            text.substr(pos, eol == std::string_view::npos ? std::string_view::npos
                                                           : eol - pos);
        pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
        ++lineno;

        line = trim(stripComment(line));
        if (line.empty())
            continue;

        if (line.front() == '[') {
            if (line.back() != ']')
                return fail("unterminated section header");
            const auto name = trim(line.substr(1, line.size() - 2));
            if (!validKey(name))
                return fail("bad section name '" + std::string(name) + "'");
            section = std::string(name);
            m.sections_[section]; // section may stay empty
            continue;
        }

        const std::size_t eq = line.find('=');
        if (eq == std::string_view::npos)
            return fail("expected 'key = value', got '" +
                        std::string(line) + "'");
        const auto key = trim(line.substr(0, eq));
        const auto val = trim(line.substr(eq + 1));
        if (!validKey(key))
            return fail("bad key '" + std::string(key) + "'");
        if (section.empty())
            return fail("key '" + std::string(key) +
                        "' before any [section]");
        for (const auto &[k, v] : m.sections_[section])
            if (k == key)
                return fail("duplicate key '" + std::string(key) +
                            "' in [" + section + "]");

        Value v;
        if (val.size() >= 2 && val.front() == '"' && val.back() == '"') {
            v.kind = Value::Kind::String;
            v.str = std::string(val.substr(1, val.size() - 2));
            if (v.str.find('"') != std::string::npos)
                return fail("stray '\"' inside string value of '" +
                            std::string(key) + "'");
        } else if (val == "true" || val == "false") {
            v.kind = Value::Kind::Bool;
            v.b = val == "true";
        } else if (!val.empty()) {
            const std::string s(val);
            char *end = nullptr;
            if (s.find('.') != std::string::npos ||
                ((s.find('e') != std::string::npos ||
                  s.find('E') != std::string::npos) &&
                 s.rfind("0x", 0) != 0 && s.rfind("-0x", 0) != 0)) {
                v.kind = Value::Kind::Double;
                v.d = std::strtod(s.c_str(), &end);
            } else {
                v.kind = Value::Kind::Int;
                const bool neg = s.front() == '-';
                const char *digits = s.c_str() + (neg ? 1 : 0);
                // strtoull so the full u64 range round-trips (expect
                // checksums are u64); the sign wraps two's-complement.
                const std::uint64_t mag = std::strtoull(digits, &end, 0);
                v.i = neg ? -std::int64_t(mag) : std::int64_t(mag);
            }
            if (end == nullptr || *end != '\0')
                return fail("cannot parse value '" + s + "' for key '" +
                            std::string(key) + "'");
        } else {
            return fail("empty value for key '" + std::string(key) + "'");
        }
        m.sections_[section].emplace_back(std::string(key), std::move(v));
    }
    m.ok_ = true;
    return m;
}

Manifest
Manifest::parseFile(const std::string &path, std::string *error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (error)
            *error = "cannot open '" + path + "'";
        return Manifest();
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    return parse(ss.str(), error);
}

const Manifest::Value *
Manifest::find(const std::string &section, const std::string &key) const
{
    auto it = sections_.find(section);
    if (it == sections_.end())
        return nullptr;
    for (const auto &[k, v] : it->second)
        if (k == key)
            return &v;
    return nullptr;
}

std::optional<std::string>
Manifest::raw(const std::string &section, const std::string &key) const
{
    const Value *v = find(section, key);
    if (!v)
        return std::nullopt;
    switch (v->kind) {
      case Value::Kind::String:
        return v->str;
      case Value::Kind::Int:
        return std::to_string(v->i);
      case Value::Kind::Double:
        return std::to_string(v->d);
      case Value::Kind::Bool:
        return std::string(v->b ? "true" : "false");
    }
    return std::nullopt;
}

std::string
Manifest::getString(const std::string &section, const std::string &key,
                    const std::string &dflt) const
{
    const Value *v = find(section, key);
    return v && v->kind == Value::Kind::String ? v->str : dflt;
}

std::int64_t
Manifest::getInt(const std::string &section, const std::string &key,
                 std::int64_t dflt) const
{
    const Value *v = find(section, key);
    return v && v->kind == Value::Kind::Int ? v->i : dflt;
}

double
Manifest::getDouble(const std::string &section, const std::string &key,
                    double dflt) const
{
    const Value *v = find(section, key);
    if (!v)
        return dflt;
    if (v->kind == Value::Kind::Double)
        return v->d;
    if (v->kind == Value::Kind::Int)
        return double(v->i);
    return dflt;
}

bool
Manifest::getBool(const std::string &section, const std::string &key,
                  bool dflt) const
{
    const Value *v = find(section, key);
    return v && v->kind == Value::Kind::Bool ? v->b : dflt;
}

std::vector<std::string>
Manifest::keys(const std::string &section) const
{
    std::vector<std::string> out;
    auto it = sections_.find(section);
    if (it == sections_.end())
        return out;
    for (const auto &[k, v] : it->second)
        out.push_back(k);
    return out;
}

} // namespace mbias::lang
