#include "lang/lexer.hh"

#include <cctype>

namespace mbias::lang
{

namespace
{

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
           c == '.' || c == '$';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '.' || c == '$';
}

bool
isHexDigit(char c)
{
    return std::isxdigit(static_cast<unsigned char>(c));
}

} // namespace

std::vector<Token>
lex(std::string_view text)
{
    std::vector<Token> out;
    unsigned line = 1;
    unsigned col = 1;
    std::size_t i = 0;
    const std::size_t n = text.size();

    auto push = [&](Token::Kind kind, unsigned tok_line, unsigned tok_col,
                    std::string spelling = {}, std::int64_t value = 0) {
        Token t;
        t.kind = kind;
        t.text = std::move(spelling);
        t.value = value;
        t.line = tok_line;
        t.col = tok_col;
        out.push_back(std::move(t));
    };

    while (i < n) {
        const char c = text[i];
        if (c == '\n') {
            // Collapse newline runs: one statement terminator each.
            push(Token::Kind::Newline, line, col);
            ++i;
            ++line;
            col = 1;
            continue;
        }
        if (c == ' ' || c == '\t' || c == '\r') {
            ++i;
            ++col;
            continue;
        }
        if (c == ';' || c == '#') {
            while (i < n && text[i] != '\n') {
                ++i;
                ++col;
            }
            continue;
        }
        const unsigned tok_line = line, tok_col = col;
        if (c == ',') {
            push(Token::Kind::Comma, tok_line, tok_col);
            ++i;
            ++col;
            continue;
        }
        if (c == ':') {
            push(Token::Kind::Colon, tok_line, tok_col);
            ++i;
            ++col;
            continue;
        }
        const bool neg = c == '-';
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (neg && i + 1 < n &&
             std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
            std::size_t j = i + (neg ? 1 : 0);
            std::uint64_t mag = 0;
            if (j + 1 < n && text[j] == '0' &&
                (text[j + 1] == 'x' || text[j + 1] == 'X')) {
                j += 2;
                const std::size_t digits = j;
                while (j < n && isHexDigit(text[j])) {
                    mag = mag * 16 +
                          std::uint64_t(
                              std::isdigit(
                                  static_cast<unsigned char>(text[j]))
                                  ? text[j] - '0'
                                  : std::tolower(static_cast<unsigned char>(
                                        text[j])) -
                                        'a' + 10);
                    ++j;
                }
                if (j == digits) {
                    // "0x" with no digits: hand the parser a Bad token.
                    push(Token::Kind::Bad, tok_line, tok_col,
                         std::string(text.substr(i, j - i)));
                    col += unsigned(j - i);
                    i = j;
                    continue;
                }
            } else {
                while (j < n &&
                       std::isdigit(static_cast<unsigned char>(text[j]))) {
                    mag = mag * 10 + std::uint64_t(text[j] - '0');
                    ++j;
                }
            }
            // Two's-complement wrap is intended: "li" immediates span
            // the full u64/i64 range (e.g. 0xbf58476d1ce4e5b9).
            const std::int64_t value =
                neg ? -std::int64_t(mag) : std::int64_t(mag);
            push(Token::Kind::Int, tok_line, tok_col,
                 std::string(text.substr(i, j - i)), value);
            col += unsigned(j - i);
            i = j;
            continue;
        }
        if (isIdentStart(c)) {
            std::size_t j = i + 1;
            while (j < n && isIdentChar(text[j]))
                ++j;
            push(Token::Kind::Ident, tok_line, tok_col,
                 std::string(text.substr(i, j - i)));
            col += unsigned(j - i);
            i = j;
            continue;
        }
        push(Token::Kind::Bad, tok_line, tok_col, std::string(1, c));
        ++i;
        ++col;
    }
    push(Token::Kind::End, line, col);
    return out;
}

} // namespace mbias::lang
