#include "lang/fuzzer.hh"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "base/logging.hh"
#include "base/random.hh"
#include "isa/builder.hh"
#include "lang/disassembler.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "workloads/workload.hh"

namespace mbias::lang
{

using namespace isa::reg;

namespace
{

/** Emits one drawn body op over x (t1) and the loaded word (t4),
 *  using t5 as scratch.  Returns its instruction count. */
unsigned
emitBodyOp(isa::ProgramBuilder &b, Rng &r)
{
    switch (r.nextBounded(6)) {
      case 0:
        b.add(t1, t1, t4);
        return 1;
      case 1:
        b.xor_(t1, t1, t4);
        return 1;
      case 2:
        b.sub(t1, t4, t1);
        return 1;
      case 3:
        b.li(t5, std::int64_t(r.nextBounded(127) * 2 + 3));
        b.mul(t1, t1, t5);
        return 2;
      case 4: {
        const std::int64_t sh = std::int64_t(1 + r.nextBounded(7));
        b.slli(t5, t1, sh);
        b.xor_(t1, t1, t5);
        return 2;
      }
      default: {
        const std::int64_t sh = std::int64_t(1 + r.nextBounded(7));
        b.srli(t5, t4, sh);
        b.add(t1, t1, t5);
        return 2;
      }
    }
}

} // namespace

FuzzedProgram
fuzzProgram(const FuzzConfig &cfg, unsigned index)
{
    mbias_assert(index < cfg.count, "fuzz index ", index,
                 " out of range for a corpus of ", cfg.count);
    obs::ScopedSpan span("fuzz.generate", "lang");
    const auto gen_start = std::chrono::steady_clock::now();
    Rng r = Rng(cfg.seed).splitAt(index);

    FuzzedProgram prog;
    prog.name =
        "fz" + std::to_string(cfg.seed) + "_" + std::to_string(index);

    FuzzKnobs &k = prog.knobs;
    k.kernels = unsigned(1 + r.nextBounded(3));
    k.bodyOps = unsigned(2 + r.nextBounded(9));
    k.innerTrips = unsigned(32 + r.nextBounded(481));
    k.wsWords = 1u << (6 + r.nextBounded(8)); // 512 B .. 64 KiB
    k.entropyBits = unsigned(r.nextBounded(7));
    k.doStores = r.nextBounded(2) == 1;
    k.padNops = unsigned(r.nextBounded(4));
    k.stackSlots = unsigned(r.nextBounded(3));

    // Pick a dynamic-instruction budget and derive the outer trip
    // count from the (estimated) cost of everything inside it, so
    // every program lands in the same simulate-in-milliseconds band
    // no matter how heavy its inner loop came out.
    const std::uint64_t budget = 20000 + r.nextBounded(130001);
    const std::uint64_t perIter =
        11 + k.bodyOps * 3 / 2 + 2 * k.stackSlots;
    const std::uint64_t perOuter =
        std::uint64_t(k.kernels) * (k.innerTrips * perIter + 20);
    k.outerTrips = unsigned(
        std::clamp<std::uint64_t>(budget / std::max<std::uint64_t>(
                                               perOuter, 1),
                                  2, 200));

    const unsigned ws_bytes = k.wsWords * 8;

    {
        Rng rdata = r.splitAt(0x6461'7461); // "data"
        std::vector<std::uint64_t> words(k.wsWords);
        for (auto &w : words)
            w = rdata.next();
        isa::ProgramBuilder b(prog.name + "_data");
        b.globalWords("ws", words, 64);
        prog.modules.push_back(b.build());
    }

    {
        Rng rbody = r.splitAt(0x626f'6479); // "body"
        isa::ProgramBuilder b(prog.name + "_kern");
        for (unsigned j = 0; j < k.kernels; ++j) {
            const std::string p = "k" + std::to_string(j);
            // p(a0 = ws base, a1 = byte mask, a2 = entry value):
            // innerTrips sweeps of a masked pointer chase with a drawn
            // ALU body; returns the fold of everything it computed.
            b.func(p);
            b.li(t0, k.innerTrips);
            b.mv(t1, a2);
            b.li(t2, 0);
            for (unsigned n = 0; n < k.padNops; ++n)
                b.nop();
            b.label(p + "_loop");
            b.and_(t3, t1, a1);
            b.andi(t3, t3, -8);
            b.add(t3, a0, t3);
            b.ld8(t4, t3, 0);
            // The stack-slot knob makes the loop spill through memory
            // just below sp (free scratch in a leaf): the slot address
            // follows the loader's stack placement, so these programs
            // feel environment-size shifts the way register-resident
            // kernels cannot.
            if (k.stackSlots >= 1)
                b.st8(t1, sp, -8);
            if (k.stackSlots >= 2)
                b.st8(t4, sp, -16);
            for (unsigned n = 0; n < k.bodyOps; ++n)
                emitBodyOp(b, rbody);
            if (k.stackSlots >= 1) {
                b.ld8(t7, sp, -8);
                b.xor_(t2, t2, t7);
            }
            if (k.stackSlots >= 2) {
                b.ld8(t7, sp, -16);
                b.add(t1, t1, t7);
            }
            if (k.entropyBits > 0) {
                // The taken/not-taken split follows the low bits of
                // the loaded word: more mask bits, rarer taken path —
                // the branch-entropy knob.
                b.andi(t6, t4, (std::int64_t(1) << k.entropyBits) - 1);
                b.beq(t6, zero, p + "_skip");
                b.xor_(t2, t2, t1);
                b.jmp(p + "_join");
                b.label(p + "_skip");
                b.add(t2, t2, t1);
                b.label(p + "_join");
            } else {
                b.xor_(t2, t2, t1);
            }
            if (k.doStores)
                b.st8(t1, t3, 0);
            b.addi(t0, t0, -1);
            b.bne(t0, zero, p + "_loop");
            b.add(a0, t2, t1);
            b.ret();
            b.endFunc();
        }
        prog.modules.push_back(b.build());
    }

    {
        isa::ProgramBuilder b(prog.name + "_main");
        b.func("main");
        b.la(s0, "ws");
        b.li(s1, ws_bytes - 1);
        b.li(s2, k.outerTrips);
        b.li(s3, 0); // running checksum
        b.li(s4, std::int64_t(workloads::mix64(cfg.seed ^ index)));
        b.label("outer");
        for (unsigned j = 0; j < k.kernels; ++j) {
            b.mv(a0, s0);
            b.mv(a1, s1);
            b.mv(a2, s4);
            b.call("k" + std::to_string(j));
            b.mv(a1, a0);
            b.mv(a0, s3);
            b.call("rt_cksum");
            b.mv(s3, a0);
            // Evolve the next kernel's entry value so consecutive
            // calls chase different index sequences.
            b.xor_(s4, s4, s3);
            b.addi(s4, s4, std::int64_t(2 * j + 1));
        }
        b.addi(s2, s2, -1);
        b.bne(s2, zero, "outer");
        b.mv(a0, s3);
        b.halt();
        b.endFunc();
        prog.modules.push_back(b.build());
    }

    auto &reg = obs::Registry::global();
    reg.counter("fuzz.generate").add();
    reg.histogram("fuzz.generate_us")
        .record(std::uint64_t(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - gen_start)
                .count()));
    return prog;
}

std::vector<FuzzedProgram>
fuzzCorpus(const FuzzConfig &cfg)
{
    std::vector<FuzzedProgram> corpus;
    corpus.reserve(cfg.count);
    for (unsigned i = 0; i < cfg.count; ++i)
        corpus.push_back(fuzzProgram(cfg, i));
    return corpus;
}

std::unique_ptr<AsmWorkload>
makeFuzzWorkload(FuzzedProgram prog)
{
    AsmWorkload::Params p;
    p.name = prog.name;
    p.archetype = "fuzz";
    {
        std::ostringstream d;
        d << "fuzzed kernel (kernels=" << prog.knobs.kernels
          << " ws=" << prog.knobs.wsWords * 8 << "B"
          << " entropy=" << prog.knobs.entropyBits << "b"
          << (prog.knobs.doStores ? " stores" : "") << ")";
        p.description = d.str();
    }
    p.modules = std::move(prog.modules);
    p.linkRuntime = true;
    return std::make_unique<AsmWorkload>(std::move(p));
}

std::string
corpusText(const std::vector<FuzzedProgram> &corpus)
{
    std::ostringstream out;
    for (const auto &prog : corpus) {
        const FuzzKnobs &k = prog.knobs;
        out << "; program " << prog.name << "\n"
            << "; knobs: kernels=" << k.kernels
            << " bodyOps=" << k.bodyOps << " innerTrips=" << k.innerTrips
            << " outerTrips=" << k.outerTrips << " wsWords=" << k.wsWords
            << " entropyBits=" << k.entropyBits
            << " padNops=" << k.padNops
            << " stackSlots=" << k.stackSlots
            << " stores=" << (k.doStores ? 1 : 0) << "\n\n"
            << disassemble(prog.modules) << "\n";
    }
    return out.str();
}

} // namespace mbias::lang
