#ifndef MBIAS_LANG_FUZZER_HH
#define MBIAS_LANG_FUZZER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "lang/asm_workload.hh"
#include "isa/module.hh"

namespace mbias::lang
{

/**
 * Shape knobs of one generated program, drawn deterministically from
 * the corpus seed and program index.  Every knob is chosen so the
 * program provably halts: all loops are fixed-trip countdowns, every
 * memory access is and-masked into a power-of-two working set, and the
 * dynamic instruction count lands in a budget the simulator's default
 * maxInsts comfortably covers.
 */
struct FuzzKnobs
{
    unsigned kernels = 1;     ///< leaf kernel functions (1..3)
    unsigned bodyOps = 4;     ///< drawn body ops per inner iteration (2..10)
    unsigned innerTrips = 64; ///< inner-loop trip count (32..512)
    unsigned outerTrips = 8;  ///< derived from the inst budget (2..200)
    unsigned wsWords = 64;    ///< working-set 8-byte words, power of two
    unsigned entropyBits = 0; ///< mask bits of the data-dependent branch
    unsigned padNops = 0;     ///< alignment nops before the hot loop
    unsigned stackSlots = 0;  ///< sp-relative spill slots in the loop (0..2)
    bool doStores = false;    ///< kernel writes the working set back
};

/** Corpus parameters. */
struct FuzzConfig
{
    std::uint64_t seed = 1;
    unsigned count = 64;
};

/** One generated program: its knobs plus the pre-toolchain modules
 *  (data module, kernel module, main module — three link-order units,
 *  like the builtin workloads). */
struct FuzzedProgram
{
    std::string name; ///< "fz<seed>_<index>", unique within a corpus
    FuzzKnobs knobs;
    std::vector<isa::Module> modules;
};

/** Generates program @p index of the corpus.  Pure function of
 *  (cfg.seed, index): the draw stream is splitAt(index), so programs
 *  can be generated in any order or in parallel. */
FuzzedProgram fuzzProgram(const FuzzConfig &cfg, unsigned index);

/** Generates the whole corpus, in index order. */
std::vector<FuzzedProgram> fuzzCorpus(const FuzzConfig &cfg);

/** Wraps a generated program as a runtime workload (archetype "fuzz",
 *  default WorkloadConfig, reference checksum computed on demand). */
std::unique_ptr<AsmWorkload> makeFuzzWorkload(FuzzedProgram prog);

/** Canonical text of the whole corpus: each program's disassembly
 *  preceded by a "; program <name>" banner.  Byte-identical across
 *  runs for the same FuzzConfig — the determinism contract the test
 *  suite pins. */
std::string corpusText(const std::vector<FuzzedProgram> &corpus);

} // namespace mbias::lang

#endif // MBIAS_LANG_FUZZER_HH
