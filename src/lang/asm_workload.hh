#ifndef MBIAS_LANG_ASM_WORKLOAD_HH
#define MBIAS_LANG_ASM_WORKLOAD_HH

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "workloads/workload.hh"

namespace mbias::lang
{

/**
 * A workload backed by assembled µISA modules instead of a C++
 * build() function: what a .asm asset (with its manifest) or a
 * fuzzer-generated program becomes at runtime.  Registered in
 * workloads::Registry it is indistinguishable from a builtin — the
 * toolchain compiles the same pre-optimization module list, so a
 * kernel dumped to .asm and loaded back produces bitwise-identical
 * RunResults to its C++ original.
 *
 * The module list is pinned at one WorkloadConfig (the scale/seed the
 * asm was generated at, recorded in the manifest); build() rejects
 * any other config rather than silently returning wrong-scale code.
 */
class AsmWorkload final : public workloads::Workload
{
  public:
    struct Params
    {
        std::string name;
        std::string archetype = "asm";
        std::string description;
        std::vector<isa::Module> modules;
        /** Append the shared runtime + cold library at build(). */
        bool linkRuntime = true;
        /** The WorkloadConfig the modules were generated at. */
        workloads::WorkloadConfig config;
        /** Reference checksum; when absent it is computed once, on
         *  demand, by a reference-simulator run (the functional
         *  result is layout- and machine-independent). */
        std::optional<std::uint64_t> expect;
    };

    explicit AsmWorkload(Params params);

    std::string name() const override { return params_.name; }
    std::string archetype() const override { return params_.archetype; }
    std::string description() const override
    {
        return params_.description;
    }

    std::vector<isa::Module>
    build(const workloads::WorkloadConfig &cfg) const override;

    std::uint64_t
    referenceResult(const workloads::WorkloadConfig &cfg) const override;

  private:
    Params params_;
    mutable std::once_flag computeOnce_;
    mutable std::uint64_t computed_ = 0;
};

/** Result of loading one manifest + asm pair. */
struct LoadedWorkload
{
    std::unique_ptr<AsmWorkload> workload; ///< null on failure
    std::string error;                     ///< why, when null

    bool ok() const { return workload != nullptr; }
};

/**
 * Loads the manifest at @p manifest_path and the .asm file it names
 * (resolved relative to the manifest's directory), and builds the
 * workload.  Does not register it.
 */
LoadedWorkload loadAsmWorkload(const std::string &manifest_path);

/**
 * Loads every "*.toml" manifest under @p dir (sorted by name) and
 * registers each workload in workloads::Registry with the manifest
 * path as its source.  Returns the number registered; any failure
 * (parse error, duplicate name, ...) is fatal — a half-loaded
 * workload directory is worse than none.
 */
std::size_t loadAsmDirectory(const std::string &dir);

} // namespace mbias::lang

#endif // MBIAS_LANG_ASM_WORKLOAD_HH
