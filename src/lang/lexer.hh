#ifndef MBIAS_LANG_LEXER_HH
#define MBIAS_LANG_LEXER_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mbias::lang
{

/**
 * A token of the µISA assembly language.  The lexer is line-oriented:
 * newlines are significant (they terminate statements), comments run
 * from ';' or '#' to end of line, and every token carries the 1-based
 * line/column it started at so the parser can report precise errors.
 */
struct Token
{
    enum class Kind
    {
        /** Identifier or mnemonic: [A-Za-z_.$][A-Za-z0-9_.$]*  (a
         *  leading '.' marks a directive, e.g. ".module"). */
        Ident,
        /** Decimal or 0x-hex integer, optionally negative. */
        Int,
        Comma,
        Colon,
        /** End of line (one per newline run). */
        Newline,
        /** End of input. */
        End,
        /** A character the lexer cannot place (reported by parser). */
        Bad,
    };

    Kind kind = Kind::End;
    std::string text;        ///< raw spelling (idents, bad chars)
    std::int64_t value = 0;  ///< integer value (Kind::Int)
    unsigned line = 1;
    unsigned col = 1;

    bool is(Kind k) const { return kind == k; }
};

/**
 * Splits @p text into tokens.  Never fails: unexpected characters
 * become Kind::Bad tokens, so all error reporting (with line/column)
 * lives in the parser.  The final token is always Kind::End.
 */
std::vector<Token> lex(std::string_view text);

} // namespace mbias::lang

#endif // MBIAS_LANG_LEXER_HH
