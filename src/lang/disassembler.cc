#include "lang/disassembler.hh"

#include <map>
#include <set>
#include <sstream>

#include "isa/instruction.hh"
#include "isa/opcode.hh"

namespace mbias::lang
{

namespace
{

using isa::Opcode;

constexpr const char *kRegNames[isa::reg::numRegs] = {
    "zero", "ra", "sp", "gp", "hp", "t0", "t1", "t2", "t3", "t4",
    "a0",   "a1", "a2", "a3", "a4", "a5", "a6", "a7", "s0", "s1",
    "s2",   "s3", "s4", "s5", "s6", "s7", "s8", "s9", "t5", "t6",
    "t7",   "t8",
};

const char *
reg(isa::Reg r)
{
    return kRegNames[r];
}

/** Stable printable names for a function's labels: the original name
 *  when unique and non-empty, "__L<id>" otherwise. */
std::vector<std::string>
labelNames(const isa::Function &fn)
{
    std::vector<std::string> names(fn.numLabels());
    std::set<std::string> used;
    for (std::size_t id = 0; id < fn.numLabels(); ++id) {
        const std::string &orig = fn.labelName(std::int32_t(id));
        if (!orig.empty() && used.insert(orig).second)
            names[id] = orig;
        else
            names[id] = "__L" + std::to_string(id);
    }
    return names;
}

void
printInstruction(std::ostream &os, const isa::Instruction &inst,
                 const std::vector<std::string> &labels)
{
    const auto name = isa::opcodeName(inst.op);
    switch (isa::opClass(inst.op)) {
      case isa::OpClass::IntAlu:
      case isa::OpClass::IntMul:
      case isa::OpClass::IntDiv:
        if (inst.op == Opcode::Li) {
            os << "li " << reg(inst.rd) << ", " << inst.imm;
        } else if (inst.op == Opcode::La) {
            os << "la " << reg(inst.rd) << ", " << inst.sym;
        } else if (inst.op == Opcode::Addi && inst.imm == 0) {
            os << "mv " << reg(inst.rd) << ", " << reg(inst.rs1);
        } else if (inst.op == Opcode::Addi || inst.op == Opcode::Andi ||
                   inst.op == Opcode::Ori || inst.op == Opcode::Xori ||
                   inst.op == Opcode::Slli || inst.op == Opcode::Srli ||
                   inst.op == Opcode::Srai || inst.op == Opcode::Slti) {
            os << name << ' ' << reg(inst.rd) << ", " << reg(inst.rs1)
               << ", " << inst.imm;
        } else {
            os << name << ' ' << reg(inst.rd) << ", " << reg(inst.rs1)
               << ", " << reg(inst.rs2);
        }
        break;
      case isa::OpClass::Load:
      case isa::OpClass::Store:
        os << name << ' ' << reg(inst.rd) << ", " << reg(inst.rs1);
        if (inst.imm != 0)
            os << ", " << inst.imm;
        break;
      case isa::OpClass::CondBranch:
        os << name << ' ' << reg(inst.rs1) << ", " << reg(inst.rs2)
           << ", " << labels[std::size_t(inst.target)];
        break;
      case isa::OpClass::Jump:
        os << "jmp " << labels[std::size_t(inst.target)];
        break;
      case isa::OpClass::Call:
        os << "call " << inst.sym;
        break;
      case isa::OpClass::Ret:
        os << "ret";
        break;
      case isa::OpClass::Nop:
        os << "nop";
        if (inst.imm != 1)
            os << ' ' << inst.imm;
        break;
      case isa::OpClass::Halt:
        os << "halt";
        break;
    }
}

void
printFunction(std::ostream &os, const isa::Function &fn)
{
    os << ".func " << fn.name() << '\n';
    if (fn.alignment() != 1)
        os << ".align " << fn.alignment() << '\n';
    const auto labels = labelNames(fn);
    // Labels bound at instruction index i print before instruction i,
    // in id order — the order the assembler re-allocates them in.
    std::map<std::uint32_t, std::vector<std::size_t>> atIndex;
    for (std::size_t id = 0; id < fn.numLabels(); ++id)
        atIndex[fn.labelTarget(std::int32_t(id))].push_back(id);
    for (std::size_t i = 0; i <= fn.insts().size(); ++i) {
        auto it = atIndex.find(std::uint32_t(i));
        if (it != atIndex.end())
            for (std::size_t id : it->second)
                os << labels[id] << ":\n";
        if (i < fn.insts().size()) {
            os << "  ";
            printInstruction(os, fn.insts()[i], labels);
            os << '\n';
        }
    }
    os << ".endfunc\n";
}

void
printGlobal(std::ostream &os, const isa::GlobalData &g)
{
    if (g.init.empty()) {
        os << ".zero " << g.name << ", " << g.size << ", " << g.alignment
           << '\n';
        return;
    }
    os << ".data " << g.name << ", " << g.alignment << '\n';
    constexpr std::size_t per_line = 48; // bytes per .hex line
    static const char digits[] = "0123456789abcdef";
    for (std::size_t i = 0; i < g.init.size(); i += per_line) {
        os << ".hex ";
        const std::size_t end = std::min(i + per_line, g.init.size());
        for (std::size_t j = i; j < end; ++j)
            os << digits[g.init[j] >> 4] << digits[g.init[j] & 0xf];
        os << '\n';
    }
}

} // namespace

std::string
disassemble(const isa::Module &module)
{
    std::ostringstream os;
    os << ".module " << module.name() << '\n';
    for (const auto &g : module.globals())
        printGlobal(os, g);
    for (const auto &fn : module.functions())
        printFunction(os, fn);
    return os.str();
}

std::string
disassemble(const std::vector<isa::Module> &modules)
{
    std::string out;
    for (std::size_t i = 0; i < modules.size(); ++i) {
        if (i)
            out += '\n';
        out += disassemble(modules[i]);
    }
    return out;
}

} // namespace mbias::lang
