#ifndef MBIAS_LANG_DISASSEMBLER_HH
#define MBIAS_LANG_DISASSEMBLER_HH

#include <string>
#include <vector>

#include "isa/module.hh"

namespace mbias::lang
{

/**
 * Renders modules as canonical µISA assembly text.
 *
 * The listing is the assembler's round-trip anchor: for any module
 * that came out of isa::ProgramBuilder (or this assembler),
 *
 *     assemble(disassemble(m)).modules == {m}
 *
 * reproduces the module bit for bit — same instructions, same label
 * ids, same label targets, same globals — as checked by
 * toolchain::fingerprintModules.  Labels print under their original
 * names; unnamed labels (compiler-created) print as "__L<id>".
 */
std::string disassemble(const isa::Module &module);

/** All modules, in order, separated by blank lines — the on-disk
 *  format of one .asm asset. */
std::string disassemble(const std::vector<isa::Module> &modules);

} // namespace mbias::lang

#endif // MBIAS_LANG_DISASSEMBLER_HH
