#ifndef MBIAS_LANG_ASSEMBLER_HH
#define MBIAS_LANG_ASSEMBLER_HH

#include <string>
#include <string_view>
#include <vector>

#include "isa/module.hh"

namespace mbias::lang
{

/**
 * One assembler diagnostic, anchored to the 1-based source position
 * where the problem starts.
 */
struct AsmError
{
    unsigned line = 0;
    unsigned col = 0;
    std::string message;

    /** "file.asm:12:7: message" (or "12:7: message" without a file). */
    std::string str(std::string_view filename = {}) const;
};

/**
 * Result of assembling one source file: the modules in file order,
 * plus every diagnostic.  Modules are only meaningful when ok().
 */
struct AsmResult
{
    std::vector<isa::Module> modules;
    std::vector<AsmError> errors;

    bool ok() const { return errors.empty(); }

    /** All diagnostics, one per line. */
    std::string errorText(std::string_view filename = {}) const;
};

/**
 * Assembles µISA text into modules.
 *
 * The language (see docs/workloads.md for the full grammar):
 *
 *   .module <name>                 start a module (file = module list)
 *   .zero <name>, <size>[, align]  zero-initialized global
 *   .data <name>[, align]          initialized global; bytes follow
 *   .hex <hexdigits>               init bytes for the open .data
 *   .func <name>                   start a function
 *   .align <n>                     set the open function's alignment
 *   .endfunc                       close the function
 *   <label>:                       bind a label at the next instruction
 *   <mnemonic> <operands...>       one µRISC instruction
 *
 * Registers accept ABI names (zero, ra, sp, gp, hp, t0-t8, a0-a7,
 * s0-s9) and raw x0..x31.  Immediates are signed decimal or 0x-hex.
 * Comments run from ';' or '#' to end of line.
 *
 * Error recovery is per-statement: a bad statement is reported (with
 * line and column) and skipped, so one pass collects every
 * diagnostic.  The token stream and module construction mirror
 * isa::ProgramBuilder exactly — label ids are allocated in first-use
 * order — so assembling a disassembler listing reproduces the
 * original module bit for bit (see fingerprintModules).
 */
AsmResult assemble(std::string_view text);

/** Assembles the file at @p path (adds a read-failure error if it
 *  cannot be opened). */
AsmResult assembleFile(const std::string &path);

} // namespace mbias::lang

#endif // MBIAS_LANG_ASSEMBLER_HH
