#include "lang/assembler.hh"

#include <array>
#include <chrono>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>

#include "isa/instruction.hh"
#include "isa/opcode.hh"
#include "lang/lexer.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace mbias::lang
{

namespace
{

using isa::Opcode;
using isa::Reg;

/** ABI register names, indexed by register number (see isa::reg). */
constexpr std::array<std::string_view, isa::reg::numRegs> kRegNames = {
    "zero", "ra", "sp", "gp", "hp", "t0", "t1", "t2", "t3", "t4",
    "a0",   "a1", "a2", "a3", "a4", "a5", "a6", "a7", "s0", "s1",
    "s2",   "s3", "s4", "s5", "s6", "s7", "s8", "s9", "t5", "t6",
    "t7",   "t8",
};

std::optional<Reg>
regByName(std::string_view name)
{
    for (unsigned i = 0; i < kRegNames.size(); ++i)
        if (name == kRegNames[i])
            return Reg(i);
    if (name.size() >= 2 && name[0] == 'x') {
        unsigned v = 0;
        for (char c : name.substr(1)) {
            if (c < '0' || c > '9')
                return std::nullopt;
            v = v * 10 + unsigned(c - '0');
        }
        if (v < isa::reg::numRegs)
            return Reg(v);
    }
    return std::nullopt;
}

std::optional<Opcode>
opcodeByName(std::string_view name)
{
    for (unsigned i = 0; i < unsigned(Opcode::NumOpcodes); ++i)
        if (name == isa::opcodeName(Opcode(i)))
            return Opcode(i);
    // "mv rd, rs" is accepted as sugar for "addi rd, rs, 0" at parse
    // level (see parseInstruction).
    return std::nullopt;
}

/** Operand shapes an opcode expects, used to drive the parser. */
enum class Shape
{
    RRR,      ///< add rd, rs1, rs2
    RRI,      ///< addi rd, rs1, imm
    RI,       ///< li rd, imm
    RSym,     ///< la rd, sym
    Mem,      ///< ld4/st4 rdata, rbase, off
    RRLabel,  ///< beq rs1, rs2, label
    Label,    ///< jmp label
    Sym,      ///< call sym
    None,     ///< ret, halt
    NopShape, ///< nop [width]
};

Shape
shapeOf(Opcode op)
{
    switch (isa::opClass(op)) {
      case isa::OpClass::IntAlu:
      case isa::OpClass::IntMul:
      case isa::OpClass::IntDiv:
        switch (op) {
          case Opcode::Li:
            return Shape::RI;
          case Opcode::La:
            return Shape::RSym;
          case Opcode::Addi:
          case Opcode::Andi:
          case Opcode::Ori:
          case Opcode::Xori:
          case Opcode::Slli:
          case Opcode::Srli:
          case Opcode::Srai:
          case Opcode::Slti:
            return Shape::RRI;
          default:
            return Shape::RRR;
        }
      case isa::OpClass::Load:
      case isa::OpClass::Store:
        return Shape::Mem;
      case isa::OpClass::CondBranch:
        return Shape::RRLabel;
      case isa::OpClass::Jump:
        return Shape::Label;
      case isa::OpClass::Call:
        return Shape::Sym;
      case isa::OpClass::Ret:
      case isa::OpClass::Halt:
        return Shape::None;
      case isa::OpClass::Nop:
        return Shape::NopShape;
    }
    return Shape::None;
}

/** One pending label reference, for undefined-label diagnostics. */
struct LabelRef
{
    unsigned line = 0;
    unsigned col = 0;
};

class Parser
{
  public:
    explicit Parser(std::string_view text) : toks_(lex(text)) {}

    AsmResult
    run()
    {
        while (!at(Token::Kind::End)) {
            if (at(Token::Kind::Newline)) {
                ++pos_;
                continue;
            }
            parseStatement();
        }
        if (inFunction_)
            error(toks_.back(), "missing .endfunc at end of input (in "
                                "function '" +
                                    fn_.name() + "')");
        else if (openModule_)
            finishModule();
        return std::move(result_);
    }

  private:
    const Token &cur() const { return toks_[pos_]; }
    bool at(Token::Kind k) const { return cur().is(k); }

    void
    error(const Token &tok, std::string message)
    {
        result_.errors.push_back({tok.line, tok.col, std::move(message)});
    }

    /** Skips to the next statement boundary (error recovery). */
    void
    sync()
    {
        while (!at(Token::Kind::End) && !at(Token::Kind::Newline))
            ++pos_;
    }

    /** Consumes a comma, or reports what was found instead. */
    bool
    expectComma()
    {
        if (at(Token::Kind::Comma)) {
            ++pos_;
            return true;
        }
        error(cur(), "expected ',' before '" + spell(cur()) + "'");
        return false;
    }

    static std::string
    spell(const Token &t)
    {
        switch (t.kind) {
          case Token::Kind::Newline:
            return "end of line";
          case Token::Kind::End:
            return "end of input";
          case Token::Kind::Comma:
            return ",";
          case Token::Kind::Colon:
            return ":";
          default:
            return t.text;
        }
    }

    /** Statement end: newline or EOF; anything else is junk. */
    bool
    endStatement()
    {
        if (at(Token::Kind::Newline) || at(Token::Kind::End)) {
            if (at(Token::Kind::Newline))
                ++pos_;
            return true;
        }
        error(cur(), "trailing junk '" + spell(cur()) + "'");
        sync();
        return false;
    }

    std::optional<std::int64_t>
    parseInt()
    {
        if (at(Token::Kind::Int)) {
            const std::int64_t v = cur().value;
            ++pos_;
            return v;
        }
        error(cur(), "expected integer, got '" + spell(cur()) + "'");
        return std::nullopt;
    }

    std::optional<Reg>
    parseReg()
    {
        if (at(Token::Kind::Ident)) {
            if (auto r = regByName(cur().text)) {
                ++pos_;
                return r;
            }
            error(cur(), "unknown register '" + cur().text + "'");
            return std::nullopt;
        }
        error(cur(), "expected register, got '" + spell(cur()) + "'");
        return std::nullopt;
    }

    std::optional<std::string>
    parseName(const char *what)
    {
        if (at(Token::Kind::Ident)) {
            std::string name = cur().text;
            ++pos_;
            return name;
        }
        error(cur(),
              std::string("expected ") + what + ", got '" + spell(cur()) +
                  "'");
        return std::nullopt;
    }

    // --- label bookkeeping (mirrors isa::ProgramBuilder) ---

    /** Label id for @p name, allocated at first use (reference or
     *  binding) so reassembled listings reproduce original ids. */
    std::int32_t
    labelId(const std::string &name)
    {
        auto it = labelIds_.find(name);
        if (it != labelIds_.end())
            return it->second;
        const std::int32_t id = fn_.newLabel(name);
        labelIds_.emplace(name, id);
        return id;
    }

    // --- statements ---

    void
    parseStatement()
    {
        const Token tok = cur();
        if (tok.is(Token::Kind::Ident) && tok.text[0] == '.') {
            parseDirective();
            return;
        }
        if (tok.is(Token::Kind::Ident) &&
            toks_[pos_ + 1].is(Token::Kind::Colon)) {
            parseLabel();
            return;
        }
        if (tok.is(Token::Kind::Ident)) {
            parseInstruction();
            return;
        }
        error(tok, "expected directive, label, or instruction, got '" +
                       spell(tok) + "'");
        sync();
    }

    /** Closes an open .data block: the buffered bytes become the
     *  global.  Module::addGlobal rejects empty initializers, so a
     *  .data with no .hex lines is a source error. */
    void
    flushData()
    {
        if (!pending_)
            return;
        if (pending_->bytes.empty())
            error(pending_->tok, ".data block for '" + pending_->name +
                                     "' has no .hex bytes");
        else
            mod_.addGlobal(pending_->name, std::move(pending_->bytes),
                           pending_->align);
        pending_.reset();
    }

    void
    finishModule()
    {
        flushData();
        result_.modules.push_back(std::move(mod_));
        openModule_ = false;
    }

    void
    parseDirective()
    {
        const Token tok = cur();
        const std::string &d = tok.text;
        ++pos_;
        if (d == ".module") {
            if (inFunction_) {
                error(tok, ".module inside function '" + fn_.name() + "'");
                sync();
                return;
            }
            auto name = parseName("module name");
            if (!name || !endStatement())
                return;
            if (openModule_)
                finishModule();
            mod_ = isa::Module(*name);
            openModule_ = true;
            return;
        }
        if (!openModule_) {
            error(tok, "'" + d + "' before any .module directive");
            sync();
            return;
        }
        if (d == ".zero") {
            flushData();
            auto name = parseName("global name");
            if (!name || !expectComma())
                return sync();
            auto size = parseInt();
            if (!size)
                return sync();
            std::int64_t align = 8;
            if (at(Token::Kind::Comma)) {
                ++pos_;
                auto a = parseInt();
                if (!a)
                    return sync();
                align = *a;
            }
            if (*size < 0 || align <= 0 ||
                (align & (align - 1)) != 0) {
                error(tok, ".zero needs size >= 0 and a power-of-two "
                           "alignment");
                return sync();
            }
            if (!endStatement())
                return;
            mod_.addGlobal(*name, std::uint64_t(*size), unsigned(align));
            return;
        }
        if (d == ".data") {
            auto name = parseName("global name");
            if (!name)
                return sync();
            std::int64_t align = 8;
            if (at(Token::Kind::Comma)) {
                ++pos_;
                auto a = parseInt();
                if (!a)
                    return sync();
                align = *a;
            }
            if (align <= 0 || (align & (align - 1)) != 0) {
                error(tok, ".data needs a power-of-two alignment");
                return sync();
            }
            if (!endStatement())
                return;
            flushData();
            pending_ = PendingData{*name, unsigned(align), {}, tok};
            return;
        }
        if (d == ".hex") {
            if (!pending_) {
                error(tok, ".hex outside a .data block");
                return sync();
            }
            if (!at(Token::Kind::Ident) && !at(Token::Kind::Int)) {
                error(cur(), "expected hex digits after .hex");
                return sync();
            }
            // A hex run like "00ff10" lexes as digit/letter fragments
            // (Int then Ident); concatenating the raw spellings up to
            // the end of line reconstructs the byte string exactly.
            const Token data = cur();
            std::string s;
            while (at(Token::Kind::Ident) || at(Token::Kind::Int)) {
                s += cur().text;
                ++pos_;
            }
            if (s.size() % 2 != 0) {
                error(data, ".hex needs an even number of hex digits");
                return sync();
            }
            std::vector<std::uint8_t> bytes;
            bytes.reserve(s.size() / 2);
            for (std::size_t i = 0; i < s.size(); i += 2) {
                int hi = hexVal(s[i]), lo = hexVal(s[i + 1]);
                if (hi < 0 || lo < 0) {
                    error(data, std::string(".hex has a non-hex digit '") +
                                    s[i + (hi < 0 ? 0 : 1)] + "'");
                    return sync();
                }
                bytes.push_back(std::uint8_t(hi * 16 + lo));
            }
            if (!endStatement())
                return;
            pending_->bytes.insert(pending_->bytes.end(), bytes.begin(),
                                   bytes.end());
            return;
        }
        if (d == ".func") {
            flushData();
            if (inFunction_) {
                error(tok, ".func inside function '" + fn_.name() +
                               "' (missing .endfunc?)");
                sync();
                return;
            }
            auto name = parseName("function name");
            if (!name || !endStatement())
                return;
            fn_ = isa::Function(*name);
            labelIds_.clear();
            labelRefs_.clear();
            boundLabels_.clear();
            inFunction_ = true;
            return;
        }
        if (d == ".align") {
            if (!inFunction_) {
                error(tok, ".align outside a function");
                sync();
                return;
            }
            auto a = parseInt();
            if (!a)
                return sync();
            if (*a <= 0 || (*a & (*a - 1)) != 0) {
                error(tok, ".align needs a power-of-two value");
                return sync();
            }
            if (!endStatement())
                return;
            fn_.setAlignment(unsigned(*a));
            return;
        }
        if (d == ".endfunc") {
            if (!inFunction_) {
                error(tok, ".endfunc without .func");
                sync();
                return;
            }
            if (!endStatement())
                return;
            // Undefined labels: every allocated-but-unbound id was
            // first used by a reference; report each at that site.
            for (const auto &[name, id] : labelIds_) {
                if (boundLabels_.count(id))
                    continue;
                const auto &ref = labelRefs_[id];
                result_.errors.push_back(
                    {ref.line, ref.col,
                     "undefined label '" + name + "' in function '" +
                         fn_.name() + "'"});
            }
            mod_.addFunction(std::move(fn_));
            inFunction_ = false;
            return;
        }
        error(tok, "unknown directive '" + d + "'");
        sync();
    }

    void
    parseLabel()
    {
        const Token tok = cur();
        const std::string name = tok.text;
        pos_ += 2; // ident, colon
        if (!inFunction_) {
            error(tok, "label '" + name + "' outside a function");
            sync();
            return;
        }
        const std::int32_t id = labelId(name);
        if (boundLabels_.count(id)) {
            error(tok, "duplicate label '" + name + "' in function '" +
                           fn_.name() + "'");
            sync();
            return;
        }
        fn_.bindLabel(id, std::uint32_t(fn_.insts().size()));
        boundLabels_.insert(id);
        // A label may share a line with its instruction.
        if (at(Token::Kind::Newline))
            ++pos_;
    }

    std::int32_t
    refLabel()
    {
        const Token tok = cur();
        auto name = parseName("label");
        if (!name)
            return isa::no_target;
        const bool fresh = !labelIds_.count(*name);
        const std::int32_t id = labelId(*name);
        if (fresh)
            labelRefs_[id] = {tok.line, tok.col};
        return id;
    }

    void
    parseInstruction()
    {
        const Token tok = cur();
        if (!inFunction_) {
            error(tok, "instruction '" + tok.text + "' outside a function");
            sync();
            return;
        }
        // "mv rd, rs" assembles as "addi rd, rs, 0", matching
        // ProgramBuilder::mv (there is no Mv opcode).
        if (tok.text == "mv") {
            ++pos_;
            auto rd = parseReg();
            if (!rd || !expectComma())
                return sync();
            auto rs = parseReg();
            if (!rs || !endStatement())
                return;
            fn_.insts().push_back(
                isa::makeRI(Opcode::Addi, *rd, *rs, 0));
            return;
        }
        auto op = opcodeByName(tok.text);
        if (!op) {
            error(tok, "unknown opcode '" + tok.text + "'");
            sync();
            return;
        }
        ++pos_;
        switch (shapeOf(*op)) {
          case Shape::RRR: {
            auto rd = parseReg();
            if (!rd || !expectComma())
                return sync();
            auto rs1 = parseReg();
            if (!rs1 || !expectComma())
                return sync();
            auto rs2 = parseReg();
            if (!rs2 || !endStatement())
                return;
            fn_.insts().push_back(isa::makeRR(*op, *rd, *rs1, *rs2));
            return;
          }
          case Shape::RRI: {
            auto rd = parseReg();
            if (!rd || !expectComma())
                return sync();
            auto rs1 = parseReg();
            if (!rs1 || !expectComma())
                return sync();
            auto imm = parseInt();
            if (!imm || !endStatement())
                return;
            fn_.insts().push_back(isa::makeRI(*op, *rd, *rs1, *imm));
            return;
          }
          case Shape::RI: {
            auto rd = parseReg();
            if (!rd || !expectComma())
                return sync();
            auto imm = parseInt();
            if (!imm || !endStatement())
                return;
            fn_.insts().push_back(isa::makeLi(*rd, *imm));
            return;
          }
          case Shape::RSym: {
            auto rd = parseReg();
            if (!rd || !expectComma())
                return sync();
            auto sym = parseName("global name");
            if (!sym || !endStatement())
                return;
            fn_.insts().push_back(isa::makeLa(*rd, std::move(*sym)));
            return;
          }
          case Shape::Mem: {
            auto rdata = parseReg();
            if (!rdata || !expectComma())
                return sync();
            auto rbase = parseReg();
            if (!rbase)
                return sync();
            std::int64_t off = 0;
            if (at(Token::Kind::Comma)) {
                ++pos_;
                auto o = parseInt();
                if (!o)
                    return sync();
                off = *o;
            }
            if (!endStatement())
                return;
            fn_.insts().push_back(isa::makeMem(*op, *rdata, *rbase, off));
            return;
          }
          case Shape::RRLabel: {
            auto rs1 = parseReg();
            if (!rs1 || !expectComma())
                return sync();
            auto rs2 = parseReg();
            if (!rs2 || !expectComma())
                return sync();
            const std::int32_t id = refLabel();
            if (id == isa::no_target || !endStatement())
                return;
            fn_.insts().push_back(isa::makeBranch(*op, *rs1, *rs2, id));
            return;
          }
          case Shape::Label: {
            const std::int32_t id = refLabel();
            if (id == isa::no_target || !endStatement())
                return;
            fn_.insts().push_back(isa::makeJmp(id));
            return;
          }
          case Shape::Sym: {
            auto sym = parseName("function name");
            if (!sym || !endStatement())
                return;
            fn_.insts().push_back(isa::makeCall(std::move(*sym)));
            return;
          }
          case Shape::None: {
            if (!endStatement())
                return;
            fn_.insts().push_back(*op == Opcode::Ret ? isa::makeRet()
                                                     : isa::makeHalt());
            return;
          }
          case Shape::NopShape: {
            std::int64_t width = 1;
            if (at(Token::Kind::Int)) {
                auto w = parseInt();
                if (!w)
                    return sync();
                width = *w;
            }
            if (width < 1 || width > 15) {
                error(tok, "nop width must be 1..15");
                return sync();
            }
            if (!endStatement())
                return;
            fn_.insts().push_back(isa::makeNop(unsigned(width)));
            return;
          }
        }
    }

    static int
    hexVal(char c)
    {
        if (c >= '0' && c <= '9')
            return c - '0';
        if (c >= 'a' && c <= 'f')
            return c - 'a' + 10;
        if (c >= 'A' && c <= 'F')
            return c - 'A' + 10;
        return -1;
    }

    std::vector<Token> toks_;
    std::size_t pos_ = 0;
    AsmResult result_;

    isa::Module mod_;
    bool openModule_ = false;

    /** An open .data block, buffered until its .hex lines end. */
    struct PendingData
    {
        std::string name;
        unsigned align = 8;
        std::vector<std::uint8_t> bytes;
        Token tok; ///< the .data token, for diagnostics
    };
    std::optional<PendingData> pending_;

    isa::Function fn_;
    bool inFunction_ = false;
    std::map<std::string, std::int32_t> labelIds_;
    std::map<std::int32_t, LabelRef> labelRefs_;
    std::set<std::int32_t> boundLabels_;
};

} // namespace

std::string
AsmError::str(std::string_view filename) const
{
    std::ostringstream os;
    if (!filename.empty())
        os << filename << ':';
    os << line << ':' << col << ": " << message;
    return os.str();
}

std::string
AsmResult::errorText(std::string_view filename) const
{
    std::string out;
    for (const auto &e : errors) {
        out += e.str(filename);
        out += '\n';
    }
    return out;
}

AsmResult
assemble(std::string_view text)
{
    obs::ScopedSpan span("asm.assemble", "lang");
    const auto t0 = std::chrono::steady_clock::now();
    AsmResult r = Parser(text).run();
    auto &reg = obs::Registry::global();
    reg.counter("asm.assemble").add();
    reg.histogram("asm.assemble_us")
        .record(std::uint64_t(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - t0)
                .count()));
    return r;
}

AsmResult
assembleFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        AsmResult r;
        r.errors.push_back({0, 0, "cannot open '" + path + "'"});
        return r;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    return assemble(ss.str());
}

} // namespace mbias::lang
