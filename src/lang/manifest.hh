#ifndef MBIAS_LANG_MANIFEST_HH
#define MBIAS_LANG_MANIFEST_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mbias::lang
{

/**
 * A workload manifest: the TOML/INI-style sidecar of one .asm asset.
 *
 *   # perl.toml
 *   [workload]
 *   name = "perl"
 *   archetype = "400.perlbench"
 *   description = "bytecode interpreter over a synthetic opcode mix"
 *   asm = "perl.asm"          # relative to the manifest file
 *   entry = "main"
 *   link_runtime = true       # append the shared runtime + coldlib
 *   scale = 1                 # the WorkloadConfig the asm was built at
 *   seed = 12345
 *   expect = 0x9a417b2c       # reference checksum (a0 at halt)
 *
 *   [factors]                 # free-form knobs (fuzzer provenance)
 *   hot_loops = 3
 *   working_set = 4096
 *   branch_entropy = 0.50
 *
 * Values are quoted strings, integers (decimal or 0x hex, optionally
 * negative), floats, or true/false.  '#' and ';' start comments.
 */
class Manifest
{
  public:
    struct Error
    {
        unsigned line = 0;
        std::string message;
    };

    /** Parses manifest text; on failure returns an Error instead. */
    static Manifest parse(std::string_view text, std::string *error);

    /** Reads and parses the file at @p path. */
    static Manifest parseFile(const std::string &path, std::string *error);

    bool ok() const { return ok_; }

    /** Raw value of section.key, if present. */
    std::optional<std::string> raw(const std::string &section,
                                   const std::string &key) const;

    /** @name Typed accessors (return dflt when absent).
     *  Type mismatches were already rejected by parse(). @{ */
    std::string getString(const std::string &section,
                          const std::string &key,
                          const std::string &dflt = "") const;
    std::int64_t getInt(const std::string &section, const std::string &key,
                        std::int64_t dflt = 0) const;
    double getDouble(const std::string &section, const std::string &key,
                     double dflt = 0.0) const;
    bool getBool(const std::string &section, const std::string &key,
                 bool dflt = false) const;
    /** @} */

    bool has(const std::string &section, const std::string &key) const
    {
        return raw(section, key).has_value();
    }

    /** Keys of @p section in file order (e.g. to list fuzzer knobs). */
    std::vector<std::string> keys(const std::string &section) const;

  private:
    struct Value
    {
        enum class Kind { String, Int, Double, Bool } kind;
        std::string str;
        std::int64_t i = 0;
        double d = 0.0;
        bool b = false;
    };

    const Value *find(const std::string &section,
                      const std::string &key) const;

    bool ok_ = false;
    std::map<std::string, std::vector<std::pair<std::string, Value>>>
        sections_;
};

} // namespace mbias::lang

#endif // MBIAS_LANG_MANIFEST_HH
