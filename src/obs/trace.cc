#include "obs/trace.hh"

#include <fstream>
#include <sstream>

namespace mbias::obs
{

#if MBIAS_OBS_ENABLED

Tracer &
Tracer::global()
{
    static Tracer instance;
    return instance;
}

void
Tracer::start()
{
    std::lock_guard<std::mutex> lock(mutex_);
    events_.clear();
    t0_ = std::chrono::steady_clock::now();
    active_.store(true, std::memory_order_release);
}

void
Tracer::stop()
{
    active_.store(false, std::memory_order_release);
}

std::uint64_t
Tracer::nowUs() const
{
    return std::uint64_t(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0_)
            .count());
}

void
Tracer::record(TraceEvent event)
{
    if (!active())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(std::move(event));
}

std::size_t
Tracer::eventCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
}

std::string
Tracer::chromeJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::ostringstream os;
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    for (const TraceEvent &e : events_) {
        os << (first ? "\n" : ",\n");
        first = false;
        os << "{\"name\":\"" << e.name << "\",\"cat\":\"" << e.cat
           << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << e.tid
           << ",\"ts\":" << e.tsUs << ",\"dur\":" << e.durUs;
        if (!e.args.empty())
            os << ",\"args\":" << e.args;
        os << "}";
    }
    os << "\n]}\n";
    return os.str();
}

bool
Tracer::writeTo(const std::string &path) const
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        return false;
    out << chromeJson();
    return bool(out);
}

ScopedSpan::ScopedSpan(const char *name, const char *cat,
                       std::string args)
    : name_(name), cat_(cat), args_(std::move(args))
{
    Tracer &tracer = Tracer::global();
    if (!tracer.active())
        return;
    live_ = true;
    startUs_ = tracer.nowUs();
}

ScopedSpan::~ScopedSpan()
{
    if (!live_)
        return;
    Tracer &tracer = Tracer::global();
    TraceEvent e;
    e.name = name_;
    e.cat = cat_;
    e.tsUs = startUs_;
    const std::uint64_t end = tracer.nowUs();
    e.durUs = end > startUs_ ? end - startUs_ : 0;
    e.tid = threadId();
    e.args = std::move(args_);
    tracer.record(std::move(e));
}

#else // !MBIAS_OBS_ENABLED

Tracer &
Tracer::global()
{
    static Tracer instance;
    return instance;
}

bool
Tracer::writeTo(const std::string &path) const
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        return false;
    out << chromeJson() << "\n";
    return bool(out);
}

#endif // MBIAS_OBS_ENABLED

} // namespace mbias::obs
