#include "obs/trace.hh"

#include <cctype>
#include <fstream>
#include <iterator>
#include <sstream>

#include "base/logging.hh"

namespace mbias::obs
{

TraceFileSummary
summarizeTraceFile(const std::string &path)
{
    TraceFileSummary s;
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return s;
    const std::string text((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    s.bytes = text.size();

    const std::size_t key = text.find("\"traceEvents\"");
    std::size_t pos =
        key == std::string::npos ? std::string::npos : text.find('[', key);
    if (pos == std::string::npos) {
        s.truncated = true;
        s.tornBytes = text.size();
        mbias_warn("trace file ", path,
                   ": no event array (torn header, ", text.size(),
                   " bytes)");
        return s;
    }
    s.ok = true;
    ++pos;

    // Walk complete {...} objects (string- and escape-aware), noting
    // where the last complete one ended; anything after that which is
    // not the closing "]" is a torn tail.
    std::size_t last_complete = pos;
    bool closed = false;
    while (pos < text.size()) {
        while (pos < text.size() &&
               (std::isspace(static_cast<unsigned char>(text[pos])) ||
                text[pos] == ','))
            ++pos;
        if (pos >= text.size())
            break;
        if (text[pos] == ']') {
            closed = true;
            break;
        }
        if (text[pos] != '{')
            break;
        unsigned depth = 0;
        bool in_string = false, escaped = false;
        std::size_t q = pos;
        for (; q < text.size(); ++q) {
            const char c = text[q];
            if (in_string) {
                if (escaped)
                    escaped = false;
                else if (c == '\\')
                    escaped = true;
                else if (c == '"')
                    in_string = false;
            } else if (c == '"') {
                in_string = true;
            } else if (c == '{') {
                ++depth;
            } else if (c == '}' && --depth == 0) {
                ++q;
                break;
            }
        }
        if (depth != 0)
            break; // torn object
        ++s.events;
        pos = q;
        last_complete = pos;
    }
    s.truncated = !closed;
    if (s.truncated) {
        s.tornOffset = last_complete;
        s.tornBytes = text.size() - last_complete;
        mbias_warn("trace file ", path, ": torn tail after ", s.events,
                   " complete events (", s.tornBytes,
                   " bytes at byte offset ", s.tornOffset, ")");
    }
    return s;
}

#if MBIAS_OBS_ENABLED

Tracer &
Tracer::global()
{
    static Tracer instance;
    return instance;
}

void
Tracer::start()
{
    std::lock_guard<std::mutex> lock(mutex_);
    events_.clear();
    t0_ = std::chrono::steady_clock::now();
    active_.store(true, std::memory_order_release);
}

void
Tracer::stop()
{
    active_.store(false, std::memory_order_release);
}

std::uint64_t
Tracer::nowUs() const
{
    return std::uint64_t(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0_)
            .count());
}

void
Tracer::record(TraceEvent event)
{
    if (!active())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(std::move(event));
}

std::size_t
Tracer::eventCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
}

std::string
Tracer::chromeJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::ostringstream os;
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    for (const TraceEvent &e : events_) {
        os << (first ? "\n" : ",\n");
        first = false;
        os << "{\"name\":\"" << e.name << "\",\"cat\":\"" << e.cat
           << "\",\"ph\":\"" << e.ph
           << "\",\"pid\":1,\"tid\":" << e.tid << ",\"ts\":" << e.tsUs
           << ",\"dur\":" << e.durUs;
        if (!e.args.empty())
            os << ",\"args\":" << e.args;
        os << "}";
    }
    os << "\n]}\n";
    return os.str();
}

bool
Tracer::writeTo(const std::string &path) const
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        return false;
    out << chromeJson();
    return bool(out);
}

ScopedSpan::ScopedSpan(const char *name, const char *cat,
                       std::string args)
    : name_(name), cat_(cat), args_(std::move(args))
{
    Tracer &tracer = Tracer::global();
    if (!tracer.active())
        return;
    live_ = true;
    startUs_ = tracer.nowUs();
}

ScopedSpan::~ScopedSpan()
{
    if (!live_)
        return;
    Tracer &tracer = Tracer::global();
    TraceEvent e;
    e.name = name_;
    e.cat = cat_;
    e.tsUs = startUs_;
    const std::uint64_t end = tracer.nowUs();
    e.durUs = end > startUs_ ? end - startUs_ : 0;
    e.tid = threadId();
    e.args = std::move(args_);
    tracer.record(std::move(e));
}

#else // !MBIAS_OBS_ENABLED

Tracer &
Tracer::global()
{
    static Tracer instance;
    return instance;
}

bool
Tracer::writeTo(const std::string &path) const
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        return false;
    out << chromeJson() << "\n";
    return bool(out);
}

#endif // MBIAS_OBS_ENABLED

} // namespace mbias::obs
