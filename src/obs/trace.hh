#ifndef MBIAS_OBS_TRACE_HH
#define MBIAS_OBS_TRACE_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hh" // MBIAS_OBS_ENABLED, threadId()

namespace mbias::obs
{

/**
 * Span tracing in Chrome trace format.
 *
 * A span is one timed phase of work (queue-wait, setup-materialize,
 * run, aggregate, store-append).  Spans are recorded as "complete"
 * events ("ph":"X") with microsecond timestamps relative to the
 * session start, and the exported JSON loads directly in Perfetto
 * (ui.perfetto.dev) or chrome://tracing; nested spans on one thread
 * render as nested slices.
 *
 * Tracing is process-wide and off by default: ScopedSpan costs one
 * relaxed load when no session is active.  With -DMBIAS_OBS=OFF the
 * whole layer compiles to nothing.
 */

/** One trace event; tid is the worker's threadId(). */
struct TraceEvent
{
    const char *name = "";
    const char *cat = "";
    std::uint64_t tsUs = 0;
    std::uint64_t durUs = 0;
    unsigned tid = 0;
    char ph = 'X'; ///< 'X' = complete span, 'C' = counter sample
    std::string args; ///< pre-rendered JSON object ("{...}") or empty
};

/**
 * What a lexical scan of a written trace file found.  Mirrors the
 * result store's torn-line handling: a process killed mid-write
 * leaves a torn tail, which readers count and warn about (with the
 * byte offset) instead of failing.
 */
struct TraceFileSummary
{
    bool ok = false;            ///< file opened and had an event array
    std::size_t events = 0;     ///< complete event objects
    std::size_t bytes = 0;      ///< file size
    bool truncated = false;     ///< missing the closing "]}"
    std::size_t tornOffset = 0; ///< byte offset where the torn tail starts
    std::size_t tornBytes = 0;  ///< bytes in the torn tail
};

/** Scans @p path (Chrome-trace JSON); warns on a torn tail.  Pure
 *  file inspection — works identically with -DMBIAS_OBS=OFF. */
TraceFileSummary summarizeTraceFile(const std::string &path);

#if MBIAS_OBS_ENABLED

/** The process-wide trace session; see the header comment. */
class Tracer
{
  public:
    static Tracer &global();

    /** Starts a session: clears prior events, rebases timestamps. */
    void start();

    /** Stops capturing (events stay buffered for export). */
    void stop();

    bool
    active() const
    {
        return active_.load(std::memory_order_relaxed);
    }

    /** Microseconds since the session started. */
    std::uint64_t nowUs() const;

    /** Buffers one event (thread-safe; dropped when not active). */
    void record(TraceEvent event);

    std::size_t eventCount() const;

    /** The whole session as one Chrome-trace JSON document. */
    std::string chromeJson() const;

    /** Writes chromeJson() to @p path; false on I/O failure. */
    bool writeTo(const std::string &path) const;

  private:
    std::atomic<bool> active_{false};
    std::chrono::steady_clock::time_point t0_{};
    mutable std::mutex mutex_;
    std::vector<TraceEvent> events_;
};

/**
 * RAII span: records [construction, destruction) on the calling
 * thread under @p name.  @p name and @p cat must be string literals
 * (they are kept by pointer); @p args, if given, is a pre-rendered
 * JSON object attached to the event.
 */
class ScopedSpan
{
  public:
    explicit ScopedSpan(const char *name, const char *cat = "task",
                        std::string args = {});
    ~ScopedSpan();

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    const char *name_;
    const char *cat_;
    std::string args_;
    std::uint64_t startUs_ = 0;
    bool live_ = false;
};

#else // !MBIAS_OBS_ENABLED — same API, compile-time no-ops.

class Tracer
{
  public:
    static Tracer &global();

    void
    start()
    {
    }

    void
    stop()
    {
    }

    bool
    active() const
    {
        return false;
    }

    std::uint64_t
    nowUs() const
    {
        return 0;
    }

    void
    record(TraceEvent)
    {
    }

    std::size_t
    eventCount() const
    {
        return 0;
    }

    std::string
    chromeJson() const
    {
        return "{\"traceEvents\":[]}";
    }

    bool writeTo(const std::string &path) const;
};

class ScopedSpan
{
  public:
    explicit ScopedSpan(const char *, const char * = "",
                        std::string = {})
    {
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;
};

#endif // MBIAS_OBS_ENABLED

} // namespace mbias::obs

#endif // MBIAS_OBS_TRACE_HH
