#ifndef MBIAS_OBS_PROVENANCE_HH
#define MBIAS_OBS_PROVENANCE_HH

#include <cstdint>
#include <string>

namespace mbias::obs
{

/**
 * The host-setup provenance block: exactly the "innocuous" execution
 * context the paper shows can bias measurements — the UNIX
 * environment-block size, the working-directory length (both shift
 * the stack), the compiler and flags the binary was built with, plus
 * host identity and the campaign's job count.
 *
 * Every campaign captures one of these and embeds it in the result
 * store's header line and in the CampaignReport, so a surprising
 * number can always be traced back to the setup that produced it
 * (the paper's "document your setup" remedy, docs/observability.md).
 *
 * Always compiled, independent of MBIAS_OBS: the store format must
 * not change with an instrumentation flag.
 */
struct Provenance
{
    std::string hostname;
    std::string cpuModel;

    /** Compiler id + version this binary was built with. */
    std::string compiler;
    std::string compilerFlags;
    std::string buildType;

    std::string workdir;
    std::uint64_t workdirLen = 0;

    /** Total bytes of the environment block (sum of "VAR=val\0"). */
    std::uint64_t envBlockBytes = 0;

    std::uint64_t pageSize = 0;
    unsigned jobs = 0;

    bool operator==(const Provenance &) const = default;

    /** Captures the current process's provenance (@p jobs recorded
     *  verbatim — it is a campaign option, not host state). */
    static Provenance capture(unsigned jobs);

    /** Flat one-line JSON object (strings escaped). */
    std::string toJson() const;

    /** Parses toJson() output; false when any field is missing. */
    static bool fromJson(const std::string &json, Provenance &out);

    /** Aligned human-readable rendering. */
    std::string str() const;
};

} // namespace mbias::obs

#endif // MBIAS_OBS_PROVENANCE_HH
