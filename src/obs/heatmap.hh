#ifndef MBIAS_OBS_HEATMAP_HH
#define MBIAS_OBS_HEATMAP_HH

#include <string>
#include <vector>

namespace mbias::obs
{

/**
 * Deterministic ASCII heatmaps for per-set / per-entry attribution
 * vectors.  One character per cell, @p columns cells per row, scaled
 * to the vector's own maximum — purely a function of the input
 * values, so renders are byte-stable and golden-pinnable.
 */

/**
 * Unsigned magnitudes (touch/miss counts).  Glyph ramp, low to high:
 * ` .:-=+*#%@` — ' ' is exactly zero, '@' is the maximum cell.
 */
std::string asciiHeatmap(const std::string &title,
                         const std::vector<double> &values,
                         unsigned columns = 32);

/**
 * Signed deltas (B − A per set).  '.' is exactly zero; increases ramp
 * `+` `*` `#` and decreases ramp `-` `=` `%`, each in thirds of the
 * largest |cell|.  A legend line is included in the render.
 */
std::string asciiHeatmapSigned(const std::string &title,
                               const std::vector<double> &values,
                               unsigned columns = 32);

} // namespace mbias::obs

#endif // MBIAS_OBS_HEATMAP_HH
