#ifndef MBIAS_OBS_METRICS_HH
#define MBIAS_OBS_METRICS_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#ifndef MBIAS_OBS_ENABLED
#define MBIAS_OBS_ENABLED 1
#endif

namespace mbias::obs
{

/**
 * Execution metrics for the campaign engine (and anything else that
 * wants counters): a registry of named Counters, Gauges, and
 * Histograms designed so the hot path is one relaxed atomic add into
 * a per-worker shard — no locks, no cache-line ping-pong — and all
 * cross-shard merging happens at snapshot time.
 *
 * Determinism note: counters that count *work* (tasks executed, cache
 * hits, store appends) are bitwise-identical across job counts for a
 * fixed campaign spec; metrics that measure *scheduling* (queue
 * waits, steals, latencies) are not, by nature.  The convention is
 * that schedule-dependent metrics live under the `pool.` prefix or
 * are histograms of durations.
 *
 * Building with -DMBIAS_OBS=OFF swaps every class below for an
 * inline no-op with the same API, so instrumented call sites compile
 * away entirely.
 */

/** Number of fixed log-scaled histogram buckets (see Histogram). */
constexpr unsigned kHistogramBuckets = 64;

/**
 * The merged (cross-shard) view of one Histogram, and the value type
 * snapshots carry.  Bucket b holds values in
 * [bucketLower(b), bucketUpper(b)]: bucket 0 is exactly {0} and
 * bucket b >= 1 covers [2^(b-1), 2^b - 1] — fixed log2-scaled bounds,
 * so merging shards (or whole snapshots) is plain elementwise
 * addition.
 */
struct HistogramStats
{
    std::array<std::uint64_t, kHistogramBuckets> buckets{};
    std::uint64_t count = 0;
    std::uint64_t sum = 0;

    /** Smallest value bucket @p b accepts. */
    static std::uint64_t bucketLower(unsigned b);

    /** Largest value bucket @p b accepts (inclusive). */
    static std::uint64_t bucketUpper(unsigned b);

    /** Exact mean of the recorded values (sum is exact, not bucketed). */
    double mean() const;

    /**
     * Upper bound of the bucket containing the q-quantile (0 < q <= 1)
     * — a conservative estimate with log2 resolution.  0 when empty.
     */
    std::uint64_t quantile(double q) const;

    /**
     * Percentile estimate with sub-bucket resolution: linear
     * interpolation of the q-rank's position within its log2 bucket's
     * [lower, upper] value range.  Smoother than quantile() (which
     * reports the raw bucket upper bound) and what obs-summary
     * renders as p50/p90/p99.  0 when empty.
     */
    double percentile(double q) const;

    /** Elementwise accumulate (for merging snapshots). */
    void merge(const HistogramStats &other);
};

/**
 * A point-in-time merge of every metric in a Registry.  Plain data:
 * copyable, comparable field by field, printable, and mergeable
 * across registries (bench harnesses sum per-campaign snapshots).
 */
struct MetricsSnapshot
{
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, std::int64_t> gauges;
    std::map<std::string, HistogramStats> histograms;

    bool empty() const;

    /** Accumulates @p other (counters/histograms add, gauges last-wins). */
    void merge(const MetricsSnapshot &other);

    /** Aligned human-readable rendering (obs-summary, reports). */
    std::string str() const;

    /**
     * One-line JSON: {"counters":{...},"gauges":{...},
     * "histograms":{"name":{"count":..,"sum":..,"mean":..,"p50":..,
     * "p90":..,"p99":..},...}}.  Histograms are summarized
     * (interpolated percentiles), not dumped bucket-by-bucket.
     */
    std::string toJson() const;
};

/**
 * Pretty-prints a one-line JSON object (at most one nesting level,
 * the shape toJson() and the store's meta lines emit) with one field
 * per line and two-space indentation.  Purely lexical — no general
 * JSON parser — which is all the store's flat records need.
 */
std::string prettyJson(const std::string &json);

#if MBIAS_OBS_ENABLED

/** Shards per metric; power of two, indexed by threadShard(). */
constexpr unsigned kShards = 16;

/**
 * The calling thread's shard index in [0, kShards).  Workers of a
 * ThreadPool are assigned their worker index (mod kShards) for the
 * duration of a parallelFor; other threads default to shard 0.
 * Sharding only spreads contention — merged totals are identical
 * however the adds were distributed.
 */
unsigned threadShard();

/** Sets the calling thread's shard (and trace thread id) to @p id. */
void setThreadShard(unsigned id);

/** The unmasked id from setThreadShard (trace tid); 0 by default. */
unsigned threadId();

/** Monotonically increasing count; relaxed per-shard add. */
class Counter
{
  public:
    void
    add(std::uint64_t delta = 1)
    {
        shards_[threadShard()].v.fetch_add(delta,
                                           std::memory_order_relaxed);
    }

    /** Sum over shards. */
    std::uint64_t value() const;

  private:
    struct alignas(64) Slot
    {
        std::atomic<std::uint64_t> v{0};
    };
    std::array<Slot, kShards> shards_;
};

/** Last-write-wins instantaneous value (e.g. queue depth). */
class Gauge
{
  public:
    void
    set(std::int64_t v)
    {
        v_.store(v, std::memory_order_relaxed);
    }

    void
    add(std::int64_t delta)
    {
        v_.fetch_add(delta, std::memory_order_relaxed);
    }

    std::int64_t
    value() const
    {
        return v_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::int64_t> v_{0};
};

/**
 * Fixed log2-bucketed distribution of non-negative integer values
 * (durations in microseconds, sizes in bytes).  record() is two
 * relaxed adds into the caller's shard; stats() merges the shards.
 */
class Histogram
{
  public:
    /** Bucket index for @p value (see HistogramStats for bounds). */
    static unsigned bucketOf(std::uint64_t value);

    void
    record(std::uint64_t value)
    {
        Shard &s = shards_[threadShard()];
        s.counts[bucketOf(value)].fetch_add(1,
                                            std::memory_order_relaxed);
        s.sum.fetch_add(value, std::memory_order_relaxed);
    }

    /** Merged view across all shards. */
    HistogramStats stats() const;

  private:
    struct alignas(64) Shard
    {
        std::array<std::atomic<std::uint64_t>, kHistogramBuckets>
            counts{};
        std::atomic<std::uint64_t> sum{0};
    };
    std::array<Shard, kShards> shards_;
};

/**
 * Named metric registry.  counter()/gauge()/histogram() lazily create
 * on first use and return a reference that stays valid for the
 * registry's lifetime — resolve handles once, then hit them lock-free.
 * Creation takes a mutex; the metric hot paths never do.
 *
 * The campaign engine gives each run its own Registry (so reports
 * carry exactly that run's metrics); global() exists for code without
 * a natural owner.
 */
class Registry
{
  public:
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /** Merged point-in-time view of everything registered. */
    MetricsSnapshot snapshot() const;

    /** Process-wide default registry. */
    static Registry &global();

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

#else // !MBIAS_OBS_ENABLED — same API, compile-time no-ops.

constexpr unsigned kShards = 1;

inline unsigned
threadShard()
{
    return 0;
}

inline void
setThreadShard(unsigned)
{
}

inline unsigned
threadId()
{
    return 0;
}

class Counter
{
  public:
    void
    add(std::uint64_t = 1)
    {
    }

    std::uint64_t
    value() const
    {
        return 0;
    }
};

class Gauge
{
  public:
    void
    set(std::int64_t)
    {
    }

    void
    add(std::int64_t)
    {
    }

    std::int64_t
    value() const
    {
        return 0;
    }
};

class Histogram
{
  public:
    void
    record(std::uint64_t)
    {
    }

    HistogramStats
    stats() const
    {
        return {};
    }
};

class Registry
{
  public:
    Counter &
    counter(const std::string &)
    {
        return counter_;
    }

    Gauge &
    gauge(const std::string &)
    {
        return gauge_;
    }

    Histogram &
    histogram(const std::string &)
    {
        return histogram_;
    }

    MetricsSnapshot
    snapshot() const
    {
        return {};
    }

    static Registry &global();

  private:
    Counter counter_;
    Gauge gauge_;
    Histogram histogram_;
};

#endif // MBIAS_OBS_ENABLED

} // namespace mbias::obs

#endif // MBIAS_OBS_METRICS_HH
