#include "obs/heatmap.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace mbias::obs
{

namespace
{

double
maxAbs(const std::vector<double> &values)
{
    double m = 0.0;
    for (double v : values)
        m = std::max(m, std::fabs(v));
    return m;
}

std::string
header(const std::string &title, std::size_t cells, double max_abs)
{
    char buf[160];
    std::snprintf(buf, sizeof buf, "%s  [%zu cells, max |cell| = %.0f]\n",
                  title.c_str(), cells, max_abs);
    return buf;
}

/** Renders rows of cells through @p glyph; rows are prefixed with the
 *  first cell's index so a hot cell can be named from the picture. */
template <typename GlyphFn>
std::string
renderRows(const std::vector<double> &values, unsigned columns,
           GlyphFn glyph)
{
    std::string out;
    char buf[32];
    for (std::size_t row = 0; row < values.size(); row += columns) {
        std::snprintf(buf, sizeof buf, "  [%4zu] ", row);
        out += buf;
        const std::size_t end = std::min(values.size(),
                                         row + std::size_t(columns));
        for (std::size_t i = row; i < end; ++i)
            out += glyph(values[i]);
        out += "\n";
    }
    return out;
}

} // namespace

std::string
asciiHeatmap(const std::string &title, const std::vector<double> &values,
             unsigned columns)
{
    static const char kRamp[] = " .:-=+*#%@"; // 10 levels
    const double scale = maxAbs(values);
    std::string out = header(title, values.size(), scale);
    out += renderRows(values, columns, [scale](double v) {
        if (v <= 0.0 || scale <= 0.0)
            return kRamp[0];
        const int level = std::min(
            9, 1 + int(std::floor(v / scale * 9.0 - 1e-9)));
        return kRamp[level];
    });
    return out;
}

std::string
asciiHeatmapSigned(const std::string &title,
                   const std::vector<double> &values, unsigned columns)
{
    static const char kPos[] = {'+', '*', '#'};
    static const char kNeg[] = {'-', '=', '%'};
    const double scale = maxAbs(values);
    std::string out = header(title, values.size(), scale);
    out += renderRows(values, columns, [scale](double v) {
        if (v == 0.0 || scale <= 0.0)
            return '.';
        const int level = std::min(
            2, int(std::floor(std::fabs(v) / scale * 3.0 - 1e-9)));
        return v > 0.0 ? kPos[level] : kNeg[level];
    });
    out += "  legend: increase .<+<*<#   decrease .<-<=<%   "
           "('.' = no change)\n";
    return out;
}

} // namespace mbias::obs
