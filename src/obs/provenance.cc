#include "obs/provenance.hh"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#ifdef _WIN32
#else
#include <unistd.h>
#endif

extern char **environ;

namespace mbias::obs
{

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
            continue;
        }
        out += c;
    }
    return out;
}

/**
 * Finds `"name":` in a flat JSON object and returns the raw token
 * after it: digits, or an unescaped quoted string.  The walk honours
 * backslash escapes, which is all toJson() ever emits.
 */
bool
scanValue(const std::string &json, const std::string &name,
          std::string &out)
{
    const std::string needle = "\"" + name + "\":";
    const auto at = json.find(needle);
    if (at == std::string::npos)
        return false;
    std::size_t i = at + needle.size();
    if (i >= json.size())
        return false;
    out.clear();
    if (json[i] != '"') {
        while (i < json.size() && json[i] != ',' && json[i] != '}')
            out += json[i++];
        return !out.empty();
    }
    for (++i; i < json.size(); ++i) {
        if (json[i] == '\\' && i + 1 < json.size()) {
            const char esc = json[++i];
            if (esc == 'u' && i + 4 < json.size()) {
                // jsonEscape() emits control bytes as \u00XX.
                out += char(std::strtoul(json.substr(i + 1, 4).c_str(),
                                         nullptr, 16));
                i += 4;
            } else {
                out += esc; // \" and \\ — the only other escapes emitted
            }
            continue;
        }
        if (json[i] == '"')
            return true;
        out += json[i];
    }
    return false;
}

bool
scanU64(const std::string &json, const std::string &name,
        std::uint64_t &out)
{
    std::string tok;
    if (!scanValue(json, name, tok))
        return false;
    char *end = nullptr;
    out = std::strtoull(tok.c_str(), &end, 10);
    return end && *end == '\0';
}

std::string
cpuModelName()
{
    std::ifstream in("/proc/cpuinfo");
    std::string line;
    while (std::getline(in, line)) {
        if (line.rfind("model name", 0) != 0)
            continue;
        const auto colon = line.find(':');
        if (colon == std::string::npos)
            break;
        auto start = line.find_first_not_of(" \t", colon + 1);
        return start == std::string::npos ? "" : line.substr(start);
    }
    return "unknown";
}

} // namespace

Provenance
Provenance::capture(unsigned jobs)
{
    Provenance p;
    p.jobs = jobs;

    char host[256] = "unknown";
    if (gethostname(host, sizeof(host) - 1) != 0)
        std::strcpy(host, "unknown");
    p.hostname = host;

    p.cpuModel = cpuModelName();

#ifdef MBIAS_BUILD_COMPILER
    p.compiler = MBIAS_BUILD_COMPILER;
#else
    p.compiler = "unknown";
#endif
#ifdef MBIAS_BUILD_FLAGS
    p.compilerFlags = MBIAS_BUILD_FLAGS;
#endif
#ifdef MBIAS_BUILD_TYPE
    p.buildType = MBIAS_BUILD_TYPE;
#endif

    char cwd[4096];
    if (getcwd(cwd, sizeof(cwd)))
        p.workdir = cwd;
    p.workdirLen = p.workdir.size();

    // The paper's headline factor: total size of the environment
    // block the loader copies onto the stack.
    for (char **e = environ; e && *e; ++e)
        p.envBlockBytes += std::strlen(*e) + 1;

    const long page = sysconf(_SC_PAGESIZE);
    p.pageSize = page > 0 ? std::uint64_t(page) : 0;
    return p;
}

std::string
Provenance::toJson() const
{
    std::ostringstream os;
    os << "{\"hostname\":\"" << jsonEscape(hostname) << "\""
       << ",\"cpu\":\"" << jsonEscape(cpuModel) << "\""
       << ",\"compiler\":\"" << jsonEscape(compiler) << "\""
       << ",\"flags\":\"" << jsonEscape(compilerFlags) << "\""
       << ",\"build_type\":\"" << jsonEscape(buildType) << "\""
       << ",\"workdir\":\"" << jsonEscape(workdir) << "\""
       << ",\"workdir_len\":" << workdirLen
       << ",\"env_bytes\":" << envBlockBytes
       << ",\"page_size\":" << pageSize << ",\"jobs\":" << jobs
       << "}";
    return os.str();
}

bool
Provenance::fromJson(const std::string &json, Provenance &out)
{
    Provenance p;
    std::uint64_t v = 0;
    if (!scanValue(json, "hostname", p.hostname))
        return false;
    if (!scanValue(json, "cpu", p.cpuModel))
        return false;
    if (!scanValue(json, "compiler", p.compiler))
        return false;
    // flags/build_type/workdir may legitimately be empty strings;
    // scanValue fails only on absent fields for quoted values.
    scanValue(json, "flags", p.compilerFlags);
    scanValue(json, "build_type", p.buildType);
    scanValue(json, "workdir", p.workdir);
    if (!scanU64(json, "workdir_len", p.workdirLen))
        return false;
    if (!scanU64(json, "env_bytes", p.envBlockBytes))
        return false;
    if (!scanU64(json, "page_size", p.pageSize))
        return false;
    if (!scanU64(json, "jobs", v))
        return false;
    p.jobs = unsigned(v);
    out = std::move(p);
    return true;
}

std::string
Provenance::str() const
{
    std::ostringstream os;
    os << "  hostname        : " << hostname << "\n"
       << "  cpu             : " << cpuModel << "\n"
       << "  compiler        : " << compiler << " (" << buildType
       << ")\n"
       << "  flags           : "
       << (compilerFlags.empty() ? "(none)" : compilerFlags) << "\n"
       << "  workdir         : " << workdir << " (" << workdirLen
       << " chars)\n"
       << "  env block       : " << envBlockBytes << " bytes\n"
       << "  page size       : " << pageSize << "\n"
       << "  jobs            : " << jobs << "\n";
    return os.str();
}

} // namespace mbias::obs
