#include "obs/metrics.hh"

#include <bit>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "base/logging.hh"

namespace mbias::obs
{

// ---------------------------------------------------------------------
// HistogramStats (always compiled; snapshots exist in both build modes)

std::uint64_t
HistogramStats::bucketLower(unsigned b)
{
    mbias_assert(b < kHistogramBuckets, "bucket out of range: ", b);
    return b == 0 ? 0 : std::uint64_t(1) << (b - 1);
}

std::uint64_t
HistogramStats::bucketUpper(unsigned b)
{
    mbias_assert(b < kHistogramBuckets, "bucket out of range: ", b);
    if (b == 0)
        return 0;
    if (b == kHistogramBuckets - 1)
        return std::numeric_limits<std::uint64_t>::max();
    return (std::uint64_t(1) << b) - 1;
}

double
HistogramStats::mean() const
{
    return count == 0 ? 0.0 : double(sum) / double(count);
}

std::uint64_t
HistogramStats::quantile(double q) const
{
    mbias_assert(q > 0.0 && q <= 1.0, "quantile out of (0, 1]: ", q);
    if (count == 0)
        return 0;
    // Rank of the quantile observation (1-based, ceil), then walk the
    // cumulative counts to the bucket containing it.
    const std::uint64_t rank =
        std::uint64_t(std::ceil(q * double(count)));
    std::uint64_t seen = 0;
    for (unsigned b = 0; b < kHistogramBuckets; ++b) {
        seen += buckets[b];
        if (seen >= rank)
            return bucketUpper(b);
    }
    return bucketUpper(kHistogramBuckets - 1);
}

double
HistogramStats::percentile(double q) const
{
    mbias_assert(q > 0.0 && q <= 1.0, "percentile out of (0, 1]: ", q);
    if (count == 0)
        return 0.0;
    // Continuous rank of the percentile, then interpolate its position
    // among the containing bucket's observations across the bucket's
    // value range.  The last bucket's upper bound is 2^63 - 1, where
    // interpolation is meaningless; report its lower bound instead.
    const double rank = q * double(count);
    std::uint64_t seen = 0;
    for (unsigned b = 0; b < kHistogramBuckets; ++b) {
        if (!buckets[b])
            continue;
        const std::uint64_t before = seen;
        seen += buckets[b];
        if (double(seen) >= rank) {
            const double lo = double(bucketLower(b));
            if (b + 1 == kHistogramBuckets)
                return lo;
            const double hi = double(bucketUpper(b));
            const double frac =
                (rank - double(before)) / double(buckets[b]);
            return lo + frac * (hi - lo);
        }
    }
    return double(bucketLower(kHistogramBuckets - 1));
}

void
HistogramStats::merge(const HistogramStats &other)
{
    for (unsigned b = 0; b < kHistogramBuckets; ++b)
        buckets[b] += other.buckets[b];
    count += other.count;
    sum += other.sum;
}

// ---------------------------------------------------------------------
// MetricsSnapshot

bool
MetricsSnapshot::empty() const
{
    return counters.empty() && gauges.empty() && histograms.empty();
}

void
MetricsSnapshot::merge(const MetricsSnapshot &other)
{
    for (const auto &[name, v] : other.counters)
        counters[name] += v;
    for (const auto &[name, v] : other.gauges)
        gauges[name] = v;
    for (const auto &[name, h] : other.histograms)
        histograms[name].merge(h);
}

std::string
MetricsSnapshot::str() const
{
    std::ostringstream os;
    char line[160];
    if (!counters.empty()) {
        os << "counters:\n";
        for (const auto &[name, v] : counters) {
            std::snprintf(line, sizeof(line), "  %-28s %12llu\n",
                          name.c_str(), (unsigned long long)v);
            os << line;
        }
    }
    if (!gauges.empty()) {
        os << "gauges:\n";
        for (const auto &[name, v] : gauges) {
            std::snprintf(line, sizeof(line), "  %-28s %12lld\n",
                          name.c_str(), (long long)v);
            os << line;
        }
    }
    if (!histograms.empty()) {
        std::snprintf(line, sizeof(line),
                      "histograms:  %-17s %10s %12s %10s %10s %10s\n",
                      "", "count", "mean", "p50", "p90", "p99");
        os << line;
        for (const auto &[name, h] : histograms) {
            std::snprintf(line, sizeof(line),
                          "  %-28s %10llu %12.1f %10.1f %10.1f %10.1f\n",
                          name.c_str(), (unsigned long long)h.count,
                          h.mean(), h.count ? h.percentile(0.5) : 0.0,
                          h.count ? h.percentile(0.9) : 0.0,
                          h.count ? h.percentile(0.99) : 0.0);
            os << line;
        }
    }
    if (empty())
        os << "(no metrics recorded"
#if !MBIAS_OBS_ENABLED
           << "; built with MBIAS_OBS=OFF"
#endif
           << ")\n";
    return os.str();
}

std::string
MetricsSnapshot::toJson() const
{
    std::ostringstream os;
    os << "{\"counters\":{";
    bool first = true;
    for (const auto &[name, v] : counters) {
        os << (first ? "" : ",") << "\"" << name << "\":" << v;
        first = false;
    }
    os << "},\"gauges\":{";
    first = true;
    for (const auto &[name, v] : gauges) {
        os << (first ? "" : ",") << "\"" << name << "\":" << v;
        first = false;
    }
    os << "},\"histograms\":{";
    first = true;
    for (const auto &[name, h] : histograms) {
        char num[128];
        std::snprintf(num, sizeof(num),
                      "%.3f,\"p50\":%.1f,\"p90\":%.1f,\"p99\":%.1f",
                      h.mean(), h.count ? h.percentile(0.5) : 0.0,
                      h.count ? h.percentile(0.9) : 0.0,
                      h.count ? h.percentile(0.99) : 0.0);
        os << (first ? "" : ",") << "\"" << name
           << "\":{\"count\":" << h.count << ",\"sum\":" << h.sum
           << ",\"mean\":" << num << "}";
        first = false;
    }
    os << "}}";
    return os.str();
}

std::string
prettyJson(const std::string &json)
{
    std::string out;
    unsigned depth = 0;
    bool inString = false;
    for (std::size_t i = 0; i < json.size(); ++i) {
        const char c = json[i];
        if (inString) {
            out += c;
            if (c == '\\' && i + 1 < json.size())
                out += json[++i];
            else if (c == '"')
                inString = false;
            continue;
        }
        switch (c) {
          case '"':
            inString = true;
            out += c;
            break;
          case '{':
            ++depth;
            out += "{\n";
            out.append(2 * depth, ' ');
            break;
          case '}':
            depth = depth ? depth - 1 : 0;
            out += '\n';
            out.append(2 * depth, ' ');
            out += '}';
            break;
          case ',':
            out += ",\n";
            out.append(2 * depth, ' ');
            break;
          case ':':
            out += ": ";
            break;
          default:
            out += c;
        }
    }
    return out;
}

#if MBIAS_OBS_ENABLED

// ---------------------------------------------------------------------
// Thread shard

namespace
{
thread_local unsigned t_threadId = 0;
} // namespace

unsigned
threadShard()
{
    static_assert((kShards & (kShards - 1)) == 0,
                  "kShards must be a power of two");
    return t_threadId & (kShards - 1);
}

void
setThreadShard(unsigned id)
{
    t_threadId = id;
}

unsigned
threadId()
{
    return t_threadId;
}

// ---------------------------------------------------------------------
// Counter / Histogram merging

std::uint64_t
Counter::value() const
{
    std::uint64_t total = 0;
    for (const Slot &s : shards_)
        total += s.v.load(std::memory_order_relaxed);
    return total;
}

unsigned
Histogram::bucketOf(std::uint64_t value)
{
    if (value == 0)
        return 0;
    const unsigned b = unsigned(std::bit_width(value));
    return b < kHistogramBuckets ? b : kHistogramBuckets - 1;
}

HistogramStats
Histogram::stats() const
{
    HistogramStats out;
    for (const Shard &s : shards_) {
        for (unsigned b = 0; b < kHistogramBuckets; ++b) {
            const std::uint64_t n =
                s.counts[b].load(std::memory_order_relaxed);
            out.buckets[b] += n;
            out.count += n;
        }
        out.sum += s.sum.load(std::memory_order_relaxed);
    }
    return out;
}

// ---------------------------------------------------------------------
// Registry

Counter &
Registry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
Registry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
Registry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

MetricsSnapshot
Registry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    MetricsSnapshot out;
    for (const auto &[name, c] : counters_)
        out.counters[name] = c->value();
    for (const auto &[name, g] : gauges_)
        out.gauges[name] = g->value();
    for (const auto &[name, h] : histograms_)
        out.histograms[name] = h->stats();
    return out;
}

Registry &
Registry::global()
{
    static Registry instance;
    return instance;
}

#else // !MBIAS_OBS_ENABLED

Registry &
Registry::global()
{
    static Registry instance;
    return instance;
}

#endif // MBIAS_OBS_ENABLED

} // namespace mbias::obs
