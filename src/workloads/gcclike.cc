#include "workloads/gcclike.hh"

#include "isa/builder.hh"
#include "workloads/runtime.hh"

namespace mbias::workloads
{

using namespace isa::reg;

namespace
{

constexpr unsigned table_slots = 2048;
constexpr std::uint64_t key_stride = 2654435761ULL;

unsigned
numKeys(const WorkloadConfig &)
{
    // ~0.88 load factor; larger scales repeat the phases rather than
    // grow the key count, so the table never overflows.
    return 1800;
}

unsigned
phaseRepeats(const WorkloadConfig &cfg)
{
    return cfg.scale;
}

std::uint64_t
keyOf(std::uint64_t seed, unsigned i)
{
    return mix64(std::uint64_t(i) * key_stride + seed) | 1;
}

} // namespace

std::uint64_t
GccLikeWorkload::referenceResult(const WorkloadConfig &cfg) const
{
    std::vector<std::uint64_t> tab(table_slots, 0);
    std::uint64_t acc = 0;
    for (unsigned rep = 0; rep < phaseRepeats(cfg); ++rep) {
        // Phase 1: insert.
        for (unsigned i = 0; i < numKeys(cfg); ++i) {
            const std::uint64_t key = keyOf(cfg.seed, i);
            std::uint64_t idx = key & (table_slots - 1);
            for (;;) {
                if (tab[idx] == 0) {
                    tab[idx] = key;
                    break;
                }
                if (tab[idx] == key)
                    break;
                idx = (idx + 1) & (table_slots - 1);
            }
            acc = cksumStep(acc, idx);
        }
        // Phase 2: look up.
        for (unsigned i = 0; i < numKeys(cfg); ++i) {
            const std::uint64_t key = keyOf(cfg.seed, i);
            std::uint64_t idx = key & (table_slots - 1);
            for (;;) {
                if (tab[idx] == key || tab[idx] == 0)
                    break;
                idx = (idx + 1) & (table_slots - 1);
            }
            acc = cksumStep(acc, idx);
        }
    }
    return acc;
}

std::vector<isa::Module>
GccLikeWorkload::build(const WorkloadConfig &cfg) const
{
    std::vector<isa::Module> mods;

    {
        isa::ProgramBuilder b("gcc_data");
        b.global("symtab", table_slots * 8, 64);
        mods.push_back(b.build());
    }

    // Key derivation: key = rt_mix64(i * stride + seed) | 1.
    {
        isa::ProgramBuilder b("gcc_keys");
        b.func("make_key"); // a0 = i -> a0 = key
        b.li(t0, std::int64_t(key_stride));
        b.mul(a0, a0, t0);
        b.li(t0, std::int64_t(cfg.seed));
        b.add(a0, a0, t0);
        b.call("rt_mix64");
        b.ori(a0, a0, 1);
        b.ret();
        b.endFunc();
        mods.push_back(b.build());
    }

    {
        isa::ProgramBuilder b("gcc_main");
        b.func("main");
        b.la(s2, "symtab");
        b.li(s1, 0);               // checksum
        b.li(s5, phaseRepeats(cfg));
        b.label("rep_loop");

        // ---- phase 1: insert ----
        b.li(s0, 0); // i
        b.li(s3, numKeys(cfg));
        b.label("phase1");
        b.mv(a0, s0);
        b.call("make_key");
        b.mv(s4, a0); // key
        b.andi(t1, s4, table_slots - 1);
        b.label("probe1");
        b.slli(t2, t1, 3);
        b.add(t2, s2, t2);
        b.ld8(t3, t2, 0);
        b.beq(t3, zero, "do_insert");
        b.beq(t3, s4, "inserted");
        b.addi(t1, t1, 1);
        b.andi(t1, t1, table_slots - 1);
        b.jmp("probe1");
        b.label("do_insert");
        b.st8(s4, t2, 0);
        b.label("inserted");
        b.mv(a0, s1);
        b.mv(a1, t1);
        b.call("rt_cksum");
        b.mv(s1, a0);
        b.addi(s0, s0, 1);
        b.bne(s0, s3, "phase1");

        // ---- phase 2: look up ----
        b.li(s0, 0);
        b.label("phase2");
        b.mv(a0, s0);
        b.call("make_key");
        b.mv(s4, a0);
        b.andi(t1, s4, table_slots - 1);
        b.label("probe2");
        b.slli(t2, t1, 3);
        b.add(t2, s2, t2);
        b.ld8(t3, t2, 0);
        b.beq(t3, s4, "found2");
        b.beq(t3, zero, "found2");
        b.addi(t1, t1, 1);
        b.andi(t1, t1, table_slots - 1);
        b.jmp("probe2");
        b.label("found2");
        b.mv(a0, s1);
        b.mv(a1, t1);
        b.call("rt_cksum");
        b.mv(s1, a0);
        b.addi(s0, s0, 1);
        b.bne(s0, s3, "phase2");

        b.addi(s5, s5, -1);
        b.bne(s5, zero, "rep_loop");
        b.mv(a0, s1);
        b.halt();
        b.endFunc();
        mods.push_back(b.build());
    }

    appendLibraryModules(mods);
    return mods;
}

} // namespace mbias::workloads
