#ifndef MBIAS_WORKLOADS_GOBMK_HH
#define MBIAS_WORKLOADS_GOBMK_HH

#include "workloads/workload.hh"

namespace mbias::workloads
{

/**
 * "gobmk": Go-board pattern scanning plus recursive flood-fill region
 * counting on a 19x19 board, the archetype of 445.gobmk.  The
 * flood-fill recursion makes this the most call-intensive workload:
 * every call pushes a return address and a register-save frame on the
 * machine stack, so stack placement (environment size) matters.
 */
class GobmkWorkload : public Workload
{
  public:
    std::string name() const override { return "gobmk"; }
    std::string archetype() const override { return "445.gobmk"; }
    std::string description() const override
    {
        return "board pattern scan + recursive flood fill";
    }

    std::vector<isa::Module> build(const WorkloadConfig &cfg) const override;
    std::uint64_t referenceResult(const WorkloadConfig &cfg) const override;
};

} // namespace mbias::workloads

#endif // MBIAS_WORKLOADS_GOBMK_HH
