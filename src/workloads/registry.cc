#include "workloads/registry.hh"

#include "base/logging.hh"
#include "workloads/bzip.hh"
#include "workloads/gcclike.hh"
#include "workloads/gobmk.hh"
#include "workloads/h264.hh"
#include "workloads/hmmer.hh"
#include "workloads/lbm.hh"
#include "workloads/libquantum.hh"
#include "workloads/mcf.hh"
#include "workloads/milc.hh"
#include "workloads/perl.hh"
#include "workloads/sjeng.hh"
#include "workloads/sphinx.hh"

namespace mbias::workloads
{

const std::vector<const Workload *> &
suite()
{
    static const PerlWorkload perl;
    static const BzipWorkload bzip;
    static const GccLikeWorkload gcclike;
    static const McfWorkload mcf;
    static const MilcWorkload milc;
    static const GobmkWorkload gobmk;
    static const HmmerWorkload hmmer;
    static const SjengWorkload sjeng;
    static const LibquantumWorkload libquantum;
    static const H264Workload h264;
    static const LbmWorkload lbm;
    static const SphinxWorkload sphinx;
    static const std::vector<const Workload *> all = {
        &perl, &bzip, &gcclike, &mcf,  &milc, &gobmk,
        &hmmer, &sjeng, &libquantum, &h264, &lbm, &sphinx,
    };
    return all;
}

const Workload &
findWorkload(const std::string &name)
{
    for (const Workload *w : suite())
        if (w->name() == name)
            return *w;
    mbias_fatal("unknown workload: ", name);
}

std::vector<std::string>
suiteNames()
{
    std::vector<std::string> names;
    for (const Workload *w : suite())
        names.push_back(w->name());
    return names;
}

} // namespace mbias::workloads
