#include "workloads/registry.hh"

#include "base/logging.hh"
#include "workloads/bzip.hh"
#include "workloads/gcclike.hh"
#include "workloads/gobmk.hh"
#include "workloads/h264.hh"
#include "workloads/hmmer.hh"
#include "workloads/lbm.hh"
#include "workloads/libquantum.hh"
#include "workloads/mcf.hh"
#include "workloads/milc.hh"
#include "workloads/perl.hh"
#include "workloads/sjeng.hh"
#include "workloads/sphinx.hh"

namespace mbias::workloads
{

const std::vector<const Workload *> &
suite()
{
    static const PerlWorkload perl;
    static const BzipWorkload bzip;
    static const GccLikeWorkload gcclike;
    static const McfWorkload mcf;
    static const MilcWorkload milc;
    static const GobmkWorkload gobmk;
    static const HmmerWorkload hmmer;
    static const SjengWorkload sjeng;
    static const LibquantumWorkload libquantum;
    static const H264Workload h264;
    static const LbmWorkload lbm;
    static const SphinxWorkload sphinx;
    static const std::vector<const Workload *> all = {
        &perl, &bzip, &gcclike, &mcf,  &milc, &gobmk,
        &hmmer, &sjeng, &libquantum, &h264, &lbm, &sphinx,
    };
    return all;
}

Registry::Registry()
{
    for (const Workload *w : suite())
        entries_.push_back({w, "builtin"});
}

Registry &
Registry::instance()
{
    static Registry reg;
    return reg;
}

std::string
Registry::tryAdd(std::unique_ptr<const Workload> w, std::string source)
{
    mbias_assert(w != nullptr, "registering a null workload");
    const std::string name = w->name();
    if (name.empty())
        return "cannot register a workload with an empty name (from " +
               source + ")";
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &e : entries_)
        if (e.workload->name() == name)
            return "duplicate workload name '" + name + "': already " +
                   "registered from " + e.source +
                   ", refusing to shadow it with the one from " + source;
    entries_.push_back({w.get(), std::move(source)});
    owned_.push_back(std::move(w));
    return {};
}

const Workload &
Registry::add(std::unique_ptr<const Workload> w, std::string source)
{
    const Workload *raw = w.get();
    const std::string err = tryAdd(std::move(w), std::move(source));
    if (!err.empty())
        mbias_fatal(err);
    return *raw;
}

const Workload *
Registry::find(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &e : entries_)
        if (e.workload->name() == name)
            return e.workload;
    return nullptr;
}

std::string
Registry::sourceOf(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &e : entries_)
        if (e.workload->name() == name)
            return e.source;
    return {};
}

std::vector<Registry::Entry>
Registry::entries() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_;
}

std::size_t
Registry::runtimeCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size() - suite().size();
}

const Workload &
findWorkload(const std::string &name)
{
    if (const Workload *w = Registry::instance().find(name))
        return *w;
    mbias_fatal("unknown workload: ", name);
}

std::vector<std::string>
suiteNames()
{
    std::vector<std::string> names;
    for (const Workload *w : suite())
        names.push_back(w->name());
    return names;
}

} // namespace mbias::workloads
