#ifndef MBIAS_WORKLOADS_LBM_HH
#define MBIAS_WORKLOADS_LBM_HH

#include "workloads/workload.hh"

namespace mbias::workloads
{

/**
 * "lbm": an integer 5-point stencil sweep over a double-buffered 2D
 * grid, the archetype of 470.lbm.  Pure streaming with predictable
 * branches; like mcf it is one of the deliberately layout-insensitive
 * members of the suite.
 */
class LbmWorkload : public Workload
{
  public:
    std::string name() const override { return "lbm"; }
    std::string archetype() const override { return "470.lbm"; }
    std::string description() const override
    {
        return "5-point integer stencil over a double-buffered grid";
    }

    std::vector<isa::Module> build(const WorkloadConfig &cfg) const override;
    std::uint64_t referenceResult(const WorkloadConfig &cfg) const override;
};

} // namespace mbias::workloads

#endif // MBIAS_WORKLOADS_LBM_HH
