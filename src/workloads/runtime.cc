#include "workloads/runtime.hh"

#include "workloads/coldlib.hh"

#include "isa/builder.hh"

namespace mbias::workloads
{

using namespace isa::reg;

std::vector<isa::Module>
runtimeModules()
{
    std::vector<isa::Module> mods;

    isa::ProgramBuilder b("rt_hash");

    // acc*31 + v
    b.func("rt_cksum");
    b.li(t0, 31);
    b.mul(a0, a0, t0);
    b.add(a0, a0, a1);
    b.ret();
    b.endFunc();

    // SplitMix64 finalizer.
    b.func("rt_mix64");
    b.srli(t0, a0, 30);
    b.xor_(a0, a0, t0);
    b.li(t1, std::int64_t(0xbf58476d1ce4e5b9ULL));
    b.mul(a0, a0, t1);
    b.srli(t0, a0, 27);
    b.xor_(a0, a0, t0);
    b.li(t1, std::int64_t(0x94d049bb133111ebULL));
    b.mul(a0, a0, t1);
    b.srli(t0, a0, 31);
    b.xor_(a0, a0, t0);
    b.ret();
    b.endFunc();

    mods.push_back(b.build());

    isa::ProgramBuilder u("rt_util");
    // Unsigned min.
    u.func("rt_min");
    u.bltu(a0, a1, "min_done");
    u.mv(a0, a1);
    u.label("min_done");
    u.ret();
    u.endFunc();

    // Unsigned max.
    u.func("rt_max");
    u.bgeu(a0, a1, "max_done");
    u.mv(a0, a1);
    u.label("max_done");
    u.ret();
    u.endFunc();

    // |a - b| treating operands as signed.
    u.func("rt_absdiff");
    u.sub(t0, a0, a1);
    u.bge(t0, zero, "abs_pos");
    u.sub(t0, zero, t0);
    u.label("abs_pos");
    u.mv(a0, t0);
    u.ret();
    u.endFunc();

    mods.push_back(u.build());
    return mods;
}

void
appendLibraryModules(std::vector<isa::Module> &mods)
{
    for (auto &m : runtimeModules())
        mods.push_back(std::move(m));
    for (auto &m : coldModules())
        mods.push_back(std::move(m));
}

} // namespace mbias::workloads
