#include "workloads/lbm.hh"

#include "isa/builder.hh"
#include "workloads/runtime.hh"

namespace mbias::workloads
{

using namespace isa::reg;

namespace
{

constexpr unsigned grid_w = 128;
constexpr unsigned grid_h = 32;
constexpr unsigned cell_bytes = 4;

unsigned
numSweeps(const WorkloadConfig &cfg)
{
    return 3 * cfg.scale;
}

std::uint32_t
initCell(std::uint64_t seed, unsigned i)
{
    return std::uint32_t(mix64(seed + 0x1b31 + i) & 0xffff);
}

} // namespace

std::uint64_t
LbmWorkload::referenceResult(const WorkloadConfig &cfg) const
{
    std::vector<std::uint32_t> a(grid_w * grid_h), b(grid_w * grid_h, 0);
    for (unsigned i = 0; i < a.size(); ++i)
        a[i] = initCell(cfg.seed, i);
    // Borders of the write buffer stay whatever they were (zero at
    // start), exactly as in the simulated program.
    std::uint32_t *src = a.data();
    std::uint32_t *dst = b.data();
    for (unsigned t = 0; t < numSweeps(cfg); ++t) {
        for (unsigned y = 1; y + 1 < grid_h; ++y) {
            for (unsigned x = 1; x + 1 < grid_w; ++x) {
                const unsigned idx = y * grid_w + x;
                const std::uint64_t v =
                    (4ull * src[idx] + src[idx - 1] + src[idx + 1] +
                     src[idx - grid_w] + src[idx + grid_w]) >>
                    3;
                dst[idx] = std::uint32_t(v);
            }
        }
        std::swap(src, dst);
    }
    std::uint64_t acc = 0;
    for (unsigned i = 0; i < grid_w * grid_h; i += 61)
        acc = cksumStep(acc, src[i]);
    return acc;
}

std::vector<isa::Module>
LbmWorkload::build(const WorkloadConfig &cfg) const
{
    std::vector<isa::Module> mods;

    {
        std::vector<std::uint8_t> init;
        init.reserve(grid_w * grid_h * cell_bytes);
        for (unsigned i = 0; i < grid_w * grid_h; ++i) {
            const std::uint32_t v = initCell(cfg.seed, i);
            for (int k = 0; k < 4; ++k)
                init.push_back(std::uint8_t(v >> (8 * k)));
        }
        isa::ProgramBuilder b("lbm_data");
        b.globalInit("gridA", init, 64);
        b.global("gridB", grid_w * grid_h * cell_bytes, 64);
        mods.push_back(b.build());
    }

    {
        isa::ProgramBuilder b("lbm_sweep");
        // sweep(a0 = src, a1 = dst): one stencil pass over the interior.
        b.func("sweep");
        b.li(t0, 1); // y
        b.label("y_loop");
        b.li(t1, 1); // x
        // row base = y * W * 4
        b.slli(t2, t0, 9); // y * 512
        b.label("x_loop");
        b.slli(t3, t1, 2);
        b.add(t3, t2, t3);  // byte offset of (x, y)
        b.add(t4, a0, t3);
        b.ld4(t5, t4, 0);             // center
        b.slli(t5, t5, 2);            // 4 * center
        b.ld4(t6, t4, -4);            // west
        b.add(t5, t5, t6);
        b.ld4(t6, t4, 4);             // east
        b.add(t5, t5, t6);
        b.ld4(t6, t4, -int(grid_w * cell_bytes)); // north
        b.add(t5, t5, t6);
        b.ld4(t6, t4, int(grid_w * cell_bytes));  // south
        b.add(t5, t5, t6);
        b.srli(t5, t5, 3);
        b.add(t6, a1, t3);
        b.st4(t5, t6, 0);
        b.addi(t1, t1, 1);
        b.li(t7, grid_w - 1);
        b.bne(t1, t7, "x_loop");
        b.addi(t0, t0, 1);
        b.li(t7, grid_h - 1);
        b.bne(t0, t7, "y_loop");
        b.ret();
        b.endFunc();
        mods.push_back(b.build());
    }

    {
        isa::ProgramBuilder b("lbm_main");
        b.func("main");
        b.la(s0, "gridA");
        b.la(s1, "gridB");
        b.li(s2, numSweeps(cfg));
        b.label("sweep_loop");
        b.mv(a0, s0);
        b.mv(a1, s1);
        b.call("sweep");
        b.mv(t0, s0); // swap buffers
        b.mv(s0, s1);
        b.mv(s1, t0);
        b.addi(s2, s2, -1);
        b.bne(s2, zero, "sweep_loop");

        b.li(s3, 0); // acc
        b.li(s4, 0); // i
        b.li(s5, grid_w * grid_h);
        b.label("sum_loop");
        b.slli(t0, s4, 2);
        b.add(t0, s0, t0);
        b.ld4(a1, t0, 0);
        b.mv(a0, s3);
        b.call("rt_cksum");
        b.mv(s3, a0);
        b.addi(s4, s4, 61);
        b.blt(s4, s5, "sum_loop");
        b.mv(a0, s3);
        b.halt();
        b.endFunc();
        mods.push_back(b.build());
    }

    appendLibraryModules(mods);
    return mods;
}

} // namespace mbias::workloads
