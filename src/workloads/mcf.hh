#ifndef MBIAS_WORKLOADS_MCF_HH
#define MBIAS_WORKLOADS_MCF_HH

#include "workloads/workload.hh"

namespace mbias::workloads
{

/**
 * "mcf": pointer chasing over a 512 KiB single-cycle random graph, the
 * archetype of 429.mcf.  A serial dependent-load chain that misses the
 * L1 on nearly every step — the memory-bound end of the suite, and
 * (deliberately) one of the *least* layout-sensitive workloads: the
 * paper found measurement bias in most, not all, of SPEC CPU2006.
 */
class McfWorkload : public Workload
{
  public:
    std::string name() const override { return "mcf"; }
    std::string archetype() const override { return "429.mcf"; }
    std::string description() const override
    {
        return "serial pointer chase over a random cyclic graph";
    }

    std::vector<isa::Module> build(const WorkloadConfig &cfg) const override;
    std::uint64_t referenceResult(const WorkloadConfig &cfg) const override;
};

} // namespace mbias::workloads

#endif // MBIAS_WORKLOADS_MCF_HH
