#ifndef MBIAS_WORKLOADS_H264_HH
#define MBIAS_WORKLOADS_H264_HH

#include "workloads/workload.hh"

namespace mbias::workloads
{

/**
 * "h264": sum-of-absolute-differences block motion search between two
 * frames, the archetype of 464.h264ref.  Dense 8x8 pixel loops with a
 * data-dependent absolute-value branch per pixel; the SAD row loop is
 * small enough for the unroller, so O3 changes the hot code shape
 * substantially.
 */
class H264Workload : public Workload
{
  public:
    std::string name() const override { return "h264"; }
    std::string archetype() const override { return "464.h264ref"; }
    std::string description() const override
    {
        return "SAD block motion search over two frames";
    }

    std::vector<isa::Module> build(const WorkloadConfig &cfg) const override;
    std::uint64_t referenceResult(const WorkloadConfig &cfg) const override;
};

} // namespace mbias::workloads

#endif // MBIAS_WORKLOADS_H264_HH
