#include "workloads/milc.hh"

#include "isa/builder.hh"
#include "workloads/runtime.hh"

namespace mbias::workloads
{

using namespace isa::reg;

namespace
{

constexpr unsigned pair_bytes = 144; // two 3x3 matrices of 8B elements

unsigned
numPairs(const WorkloadConfig &cfg)
{
    return 260 * cfg.scale;
}

std::uint64_t
element(std::uint64_t seed, unsigned index)
{
    return mix64(seed * 0x5151'5151 + index) & 0xffff;
}

} // namespace

std::uint64_t
MilcWorkload::referenceResult(const WorkloadConfig &cfg) const
{
    std::uint64_t acc = 0;
    for (unsigned p = 0; p < numPairs(cfg); ++p) {
        const unsigned base = p * 18; // elements, not bytes
        std::uint64_t trace = 0;
        for (unsigned i = 0; i < 3; ++i) {
            for (unsigned j = 0; j < 3; ++j) {
                std::uint64_t sum = 0;
                for (unsigned k = 0; k < 3; ++k) {
                    const std::uint64_t a =
                        element(cfg.seed, base + i * 3 + k);
                    const std::uint64_t bb =
                        element(cfg.seed, base + 9 + k * 3 + j);
                    sum += a * bb;
                }
                if (i == j)
                    trace += sum;
            }
        }
        acc = cksumStep(acc, trace);
    }
    return acc;
}

std::vector<isa::Module>
MilcWorkload::build(const WorkloadConfig &cfg) const
{
    std::vector<isa::Module> mods;

    {
        std::vector<std::uint64_t> words;
        words.reserve(numPairs(cfg) * 18);
        for (unsigned e = 0; e < numPairs(cfg) * 18; ++e)
            words.push_back(element(cfg.seed, e));
        isa::ProgramBuilder b("milc_data");
        b.globalWords("lattice", words, 64);
        mods.push_back(b.build());
    }

    {
        isa::ProgramBuilder b("milc_main");
        b.func("main");
        b.la(s0, "lattice");    // current pair base
        b.li(s1, numPairs(cfg));
        b.li(s2, 0);            // checksum

        b.label("pair_loop");
        b.li(s3, 0); // trace
        b.li(s4, 0); // i
        b.label("i_loop");
        b.li(s5, 0); // j
        b.label("j_loop");
        // t1 = &A[i][0]: s0 + i*24 ; t3 = &B[0][j]: s0 + 72 + j*8
        b.slli(t0, s4, 4);
        b.slli(t1, s4, 3);
        b.add(t1, t0, t1);
        b.add(t1, s0, t1);
        b.slli(t3, s5, 3);
        b.add(t3, s0, t3);
        b.addi(t3, t3, 72);
        b.li(s7, 0); // sum
        b.li(s6, 0); // k
        b.li(t5, 3);
        b.label("k_loop");
        b.ld8(t2, t1, 0);
        b.ld8(t4, t3, 0);
        b.mul(t2, t2, t4);
        b.add(s7, s7, t2);
        b.addi(t1, t1, 8);  // next A column
        b.addi(t3, t3, 24); // next B row
        b.addi(s6, s6, 1);
        b.bne(s6, t5, "k_loop");
        // Diagonal elements feed the trace.
        b.bne(s4, s5, "skip_trace");
        b.add(s3, s3, s7);
        b.label("skip_trace");
        b.addi(s5, s5, 1);
        b.li(t5, 3);
        b.bne(s5, t5, "j_loop");
        b.addi(s4, s4, 1);
        b.li(t5, 3);
        b.bne(s4, t5, "i_loop");

        b.mv(a0, s2);
        b.mv(a1, s3);
        b.call("rt_cksum");
        b.mv(s2, a0);
        b.addi(s0, s0, pair_bytes);
        b.addi(s1, s1, -1);
        b.bne(s1, zero, "pair_loop");
        b.mv(a0, s2);
        b.halt();
        b.endFunc();
        mods.push_back(b.build());
    }

    appendLibraryModules(mods);
    return mods;
}

} // namespace mbias::workloads
