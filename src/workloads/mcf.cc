#include "workloads/mcf.hh"

#include <numeric>

#include "base/random.hh"
#include "isa/builder.hh"
#include "workloads/runtime.hh"

namespace mbias::workloads
{

using namespace isa::reg;

namespace
{

constexpr unsigned num_nodes = 1u << 15; // 512 KiB of 16-byte nodes

unsigned
numSteps(const WorkloadConfig &cfg)
{
    return 22000 * cfg.scale;
}

/** Single-cycle permutation (Sattolo) plus per-node weights. */
struct Graph
{
    std::vector<std::uint32_t> next;
    std::vector<std::uint64_t> weight;
};

Graph
makeGraph(std::uint64_t seed)
{
    Graph g;
    g.next.resize(num_nodes);
    std::iota(g.next.begin(), g.next.end(), 0);
    Rng rng(seed ^ 0x3cf3cf3cf3ULL);
    // Sattolo's algorithm: a uniform single-cycle permutation.
    for (std::size_t i = num_nodes - 1; i > 0; --i) {
        const std::size_t j = rng.nextBounded(i);
        std::swap(g.next[i], g.next[j]);
    }
    g.weight.resize(num_nodes);
    for (unsigned i = 0; i < num_nodes; ++i)
        g.weight[i] = mix64(seed + i) & 0xffff;
    return g;
}

} // namespace

std::uint64_t
McfWorkload::referenceResult(const WorkloadConfig &cfg) const
{
    const Graph g = makeGraph(cfg.seed);
    std::uint64_t acc = 0;
    std::uint32_t idx = 0;
    for (unsigned s = 0; s < numSteps(cfg); ++s) {
        const std::uint32_t nxt = g.next[idx];
        acc = acc * 31 + g.weight[idx];
        idx = nxt;
    }
    return acc;
}

std::vector<isa::Module>
McfWorkload::build(const WorkloadConfig &cfg) const
{
    std::vector<isa::Module> mods;

    {
        const Graph g = makeGraph(cfg.seed);
        // Node layout: [next : 8B][weight : 8B].
        std::vector<std::uint64_t> words;
        words.reserve(2 * num_nodes);
        for (unsigned i = 0; i < num_nodes; ++i) {
            words.push_back(g.next[i]);
            words.push_back(g.weight[i]);
        }
        isa::ProgramBuilder b("mcf_data");
        b.globalWords("graph", words, 64);
        mods.push_back(b.build());
    }

    {
        isa::ProgramBuilder b("mcf_main");
        b.func("main");
        b.la(s0, "graph");
        b.li(s1, 0); // acc
        b.li(s2, 0); // idx
        b.li(s3, numSteps(cfg));
        b.li(s4, 31);
        b.label("walk");
        b.slli(t0, s2, 4);
        b.add(t0, s0, t0);
        b.ld8(t1, t0, 8); // weight
        b.ld8(s2, t0, 0); // next (serial dependence)
        b.mul(s1, s1, s4);
        b.add(s1, s1, t1);
        b.addi(s3, s3, -1);
        b.bne(s3, zero, "walk");
        b.mv(a0, s1);
        b.halt();
        b.endFunc();
        mods.push_back(b.build());
    }

    appendLibraryModules(mods);
    return mods;
}

} // namespace mbias::workloads
