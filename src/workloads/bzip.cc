#include "workloads/bzip.hh"

#include "base/random.hh"
#include "isa/builder.hh"
#include "workloads/runtime.hh"

namespace mbias::workloads
{

using namespace isa::reg;

namespace
{

constexpr unsigned alphabet = 16;

unsigned
inputLength(const WorkloadConfig &cfg)
{
    return 2600 * cfg.scale;
}

} // namespace

std::vector<std::uint8_t>
BzipWorkload::makeInput(std::uint64_t seed, unsigned n)
{
    Rng rng(seed ^ 0xb21b'0000'b21bULL);
    std::vector<std::uint8_t> in;
    in.reserve(n);
    std::uint8_t cur = std::uint8_t(rng.nextBounded(alphabet));
    for (unsigned i = 0; i < n; ++i) {
        // Run-structured: mostly repeats, occasionally a new symbol.
        if (rng.nextBounded(100) >= 60)
            cur = std::uint8_t(rng.nextBounded(alphabet));
        in.push_back(cur);
    }
    return in;
}

std::uint64_t
BzipWorkload::referenceResult(const WorkloadConfig &cfg) const
{
    const auto in = makeInput(cfg.seed, inputLength(cfg));
    std::uint8_t mtf[alphabet];
    for (unsigned i = 0; i < alphabet; ++i)
        mtf[i] = std::uint8_t(i);
    std::uint64_t acc = 0;
    for (std::uint8_t b : in) {
        unsigned i = 0;
        while (mtf[i] != b)
            ++i;
        for (unsigned j = i; j > 0; --j)
            mtf[j] = mtf[j - 1];
        mtf[0] = b;
        acc = cksumStep(acc, i);
    }
    return acc;
}

std::vector<isa::Module>
BzipWorkload::build(const WorkloadConfig &cfg) const
{
    std::vector<isa::Module> mods;

    {
        isa::ProgramBuilder b("bzip_data");
        b.globalInit("bzin", makeInput(cfg.seed, inputLength(cfg)));
        mods.push_back(b.build());
    }

    {
        isa::ProgramBuilder b("bzip_main");
        b.func("main");
        b.addi(sp, sp, -32); // MTF table lives on the stack
        // mtf[i] = i
        b.li(t0, 0);
        b.li(t2, alphabet);
        b.label("init_loop");
        b.add(t1, sp, t0);
        b.st1(t0, t1, 0);
        b.addi(t0, t0, 1);
        b.bne(t0, t2, "init_loop");

        b.la(s0, "bzin");
        b.li(s1, 0);                 // index
        b.li(s2, inputLength(cfg));  // n
        b.li(s3, 0);                 // checksum
        b.label("outer");
        b.add(t0, s0, s1);
        b.ld1(t1, t0, 0); // input byte
        // Linear scan for the symbol's MTF position.
        b.li(t2, 0);
        b.label("scan");
        b.add(t3, sp, t2);
        b.ld1(t4, t3, 0);
        b.beq(t4, t1, "found");
        b.addi(t2, t2, 1);
        b.jmp("scan");
        b.label("found");
        // Shift mtf[0..i-1] up by one.
        b.mv(t3, t2);
        b.label("shift");
        b.beq(t3, zero, "shift_done");
        b.add(t4, sp, t3);
        b.ld1(t5, t4, -1);
        b.st1(t5, t4, 0);
        b.addi(t3, t3, -1);
        b.jmp("shift");
        b.label("shift_done");
        b.st1(t1, sp, 0);
        // acc = acc*31 + i
        b.mv(a0, s3);
        b.mv(a1, t2);
        b.call("rt_cksum");
        b.mv(s3, a0);
        b.addi(s1, s1, 1);
        b.bne(s1, s2, "outer");
        b.mv(a0, s3);
        b.addi(sp, sp, 32);
        b.halt();
        b.endFunc();
        mods.push_back(b.build());
    }

    appendLibraryModules(mods);
    return mods;
}

} // namespace mbias::workloads
