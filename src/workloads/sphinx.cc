#include "workloads/sphinx.hh"

#include "isa/builder.hh"
#include "workloads/runtime.hh"

namespace mbias::workloads
{

using namespace isa::reg;

namespace
{

constexpr unsigned num_gaussians = 32;
constexpr unsigned num_dims = 8;

unsigned
numFrames(const WorkloadConfig &cfg)
{
    return 44 * cfg.scale;
}

std::uint64_t
featOf(std::uint64_t seed, unsigned f, unsigned d)
{
    return mix64(seed + 0x5000 + f * num_dims + d) & 0x3ff;
}

std::uint64_t
meanOf(std::uint64_t seed, unsigned g, unsigned d)
{
    return mix64(seed + 0x6000 + g * num_dims + d) & 0x3ff;
}

} // namespace

std::uint64_t
SphinxWorkload::referenceResult(const WorkloadConfig &cfg) const
{
    std::uint64_t acc = 0;
    for (unsigned f = 0; f < numFrames(cfg); ++f) {
        std::uint64_t best = ~std::uint64_t(0);
        for (unsigned g = 0; g < num_gaussians; ++g) {
            std::uint64_t dist = 0;
            for (unsigned d = 0; d < num_dims; ++d) {
                const std::int64_t diff =
                    std::int64_t(featOf(cfg.seed, f, d)) -
                    std::int64_t(meanOf(cfg.seed, g, d));
                dist += std::uint64_t(diff * diff);
            }
            if (dist < best)
                best = dist;
        }
        acc = cksumStep(acc, best);
    }
    return acc;
}

std::vector<isa::Module>
SphinxWorkload::build(const WorkloadConfig &cfg) const
{
    std::vector<isa::Module> mods;

    {
        std::vector<std::uint64_t> feats, means;
        for (unsigned f = 0; f < numFrames(cfg); ++f)
            for (unsigned d = 0; d < num_dims; ++d)
                feats.push_back(featOf(cfg.seed, f, d));
        for (unsigned g = 0; g < num_gaussians; ++g)
            for (unsigned d = 0; d < num_dims; ++d)
                means.push_back(meanOf(cfg.seed, g, d));
        isa::ProgramBuilder b("sphinx_data");
        b.globalWords("feats", feats, 64);
        b.globalWords("means", means, 64);
        mods.push_back(b.build());
    }

    {
        isa::ProgramBuilder b("sphinx_score");
        // score(a0 = frame ptr, a1 = mean ptr) -> a0 = squared distance.
        b.func("score");
        b.li(t0, 0); // d
        b.li(t5, 0); // dist
        b.li(t6, num_dims);
        b.label("dim_loop");
        b.slli(t1, t0, 3);
        b.add(t2, a0, t1);
        b.ld8(t3, t2, 0);
        b.add(t2, a1, t1);
        b.ld8(t4, t2, 0);
        b.sub(t3, t3, t4);
        b.mul(t3, t3, t3);
        b.add(t5, t5, t3);
        b.addi(t0, t0, 1);
        b.bne(t0, t6, "dim_loop");
        b.mv(a0, t5);
        b.ret();
        b.endFunc();
        mods.push_back(b.build());
    }

    {
        isa::ProgramBuilder b("sphinx_main");
        b.func("main");
        b.li(s0, 0); // frame
        b.li(s1, 0); // checksum
        b.li(s2, numFrames(cfg));
        b.label("frame_loop");
        b.li(s5, -1); // best (unsigned +inf)
        b.li(s3, 0);  // gaussian
        b.label("gauss_loop");
        b.la(t0, "feats");
        b.slli(t1, s0, 6); // frame * 8 dims * 8 bytes
        b.add(a0, t0, t1);
        b.la(t0, "means");
        b.slli(t1, s3, 6);
        b.add(a1, t0, t1);
        b.call("score");
        b.bgeu(a0, s5, "no_min");
        b.mv(s5, a0);
        b.label("no_min");
        b.addi(s3, s3, 1);
        b.li(t0, num_gaussians);
        b.bne(s3, t0, "gauss_loop");
        b.mv(a0, s1);
        b.mv(a1, s5);
        b.call("rt_cksum");
        b.mv(s1, a0);
        b.addi(s0, s0, 1);
        b.bne(s0, s2, "frame_loop");
        b.mv(a0, s1);
        b.halt();
        b.endFunc();
        mods.push_back(b.build());
    }

    appendLibraryModules(mods);
    return mods;
}

} // namespace mbias::workloads
