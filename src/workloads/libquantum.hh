#ifndef MBIAS_WORKLOADS_LIBQUANTUM_HH
#define MBIAS_WORKLOADS_LIBQUANTUM_HH

#include "workloads/workload.hh"

namespace mbias::workloads
{

/**
 * "libquantum": strided gate application over an amplitude register
 * array, the archetype of 462.libquantum.  Power-of-two strides sweep
 * the data cache's index bits one by one, and the i&stride branch has
 * a perfectly periodic pattern whose period exceeds short predictor
 * histories — streaming and predictor-structure sensitive.
 */
class LibquantumWorkload : public Workload
{
  public:
    std::string name() const override { return "libquantum"; }
    std::string archetype() const override { return "462.libquantum"; }
    std::string description() const override
    {
        return "strided XOR gates over an amplitude array";
    }

    std::vector<isa::Module> build(const WorkloadConfig &cfg) const override;
    std::uint64_t referenceResult(const WorkloadConfig &cfg) const override;
};

} // namespace mbias::workloads

#endif // MBIAS_WORKLOADS_LIBQUANTUM_HH
