#include "workloads/coldlib.hh"

#include "isa/builder.hh"

namespace mbias::workloads
{

using namespace isa::reg;

namespace
{

/** Emits a cold function with a small loop and ~odd encoded size. */
void
coldFunc(isa::ProgramBuilder &b, const std::string &name, unsigned body,
         std::int64_t imm)
{
    b.func(name);
    b.li(t0, imm);
    b.li(t1, 0);
    const std::string loop = name + "_loop";
    b.label(loop);
    for (unsigned i = 0; i < body; ++i)
        b.addi(t1, t1, std::int64_t(i) + 1);
    b.xor_(t1, t1, t0);
    b.addi(t0, t0, -1);
    b.bne(t0, zero, loop);
    b.mv(a0, t1);
    b.ret();
    b.endFunc();
}

} // namespace

std::vector<isa::Module>
coldModules()
{
    std::vector<isa::Module> mods;
    {
        isa::ProgramBuilder b("cold_err");
        coldFunc(b, "cold_report_error", 3, 17);
        coldFunc(b, "cold_abort_path", 7, 5);
        mods.push_back(b.build());
    }
    {
        isa::ProgramBuilder b("cold_init");
        coldFunc(b, "cold_startup", 11, 3);
        coldFunc(b, "cold_parse_args", 2, 41);
        coldFunc(b, "cold_env_scan", 5, 23);
        mods.push_back(b.build());
    }
    {
        isa::ProgramBuilder b("cold_util");
        coldFunc(b, "cold_format", 9, 13);
        coldFunc(b, "cold_log", 4, 29);
        mods.push_back(b.build());
    }
    return mods;
}

} // namespace mbias::workloads
