#include "workloads/sjeng.hh"

#include <algorithm>

#include "isa/builder.hh"
#include "workloads/runtime.hh"

namespace mbias::workloads
{

using namespace isa::reg;

namespace
{

constexpr std::int64_t loss_value = -100;
constexpr std::int64_t neg_infinity = -1000000;
constexpr unsigned search_depth = 6;

unsigned
numRoots(const WorkloadConfig &cfg)
{
    return 4 * cfg.scale;
}

std::int64_t
negamax(std::uint64_t n, unsigned d, std::uint64_t seed)
{
    if (n == 0)
        return loss_value;
    if (d == 0)
        return std::int64_t(mix64(n + seed) & 63);
    std::int64_t best = neg_infinity;
    for (std::uint64_t m = 1; m <= 3; ++m) {
        if (n < m)
            break;
        best = std::max(best, -negamax(n - m, d - 1, seed));
    }
    return best;
}

} // namespace

std::uint64_t
SjengWorkload::referenceResult(const WorkloadConfig &cfg) const
{
    std::uint64_t acc = 0;
    for (unsigned r = 0; r < numRoots(cfg); ++r) {
        const std::uint64_t n0 = 18 + (r % 6);
        const std::int64_t v = negamax(n0, search_depth, cfg.seed);
        acc = cksumStep(acc, std::uint64_t(v) & 0xff);
    }
    return acc;
}

std::vector<isa::Module>
SjengWorkload::build(const WorkloadConfig &cfg) const
{
    std::vector<isa::Module> mods;

    {
        isa::ProgramBuilder b("sjeng_search");
        // negamax(a0 = n, a1 = d) -> a0 = value (signed).
        b.func("negamax");
        b.beq(a0, zero, "leaf_loss");
        b.beq(a1, zero, "leaf_eval");
        b.addi(sp, sp, -32);
        b.st8(s0, sp, 0);  // n
        b.st8(s1, sp, 8);  // d
        b.st8(s2, sp, 16); // best
        b.st8(s3, sp, 24); // m
        b.mv(s0, a0);
        b.mv(s1, a1);
        b.li(s2, neg_infinity);
        b.li(s3, 1);
        b.label("move_loop");
        b.bltu(s0, s3, "move_done"); // m > n: no more moves
        b.sub(a0, s0, s3);
        b.addi(a1, s1, -1);
        b.call("negamax");
        b.sub(t0, zero, a0);         // -child value
        b.blt(t0, s2, "no_improve");
        b.mv(s2, t0);
        b.label("no_improve");
        b.addi(s3, s3, 1);
        b.li(t1, 4);
        b.bne(s3, t1, "move_loop");
        b.label("move_done");
        b.mv(a0, s2);
        b.ld8(s3, sp, 24);
        b.ld8(s2, sp, 16);
        b.ld8(s1, sp, 8);
        b.ld8(s0, sp, 0);
        b.addi(sp, sp, 32);
        b.ret();
        b.label("leaf_loss");
        b.li(a0, loss_value);
        b.ret();
        b.label("leaf_eval");
        b.li(t0, std::int64_t(cfg.seed));
        b.add(a0, a0, t0);
        b.call("rt_mix64");
        b.andi(a0, a0, 63);
        b.ret();
        b.endFunc();
        mods.push_back(b.build());
    }

    {
        isa::ProgramBuilder b("sjeng_main");
        b.func("main");
        b.li(s0, 0); // root counter
        b.li(s1, 0); // checksum
        b.li(s2, numRoots(cfg));
        b.label("root_loop");
        b.li(t0, 6);
        b.remu(t1, s0, t0);
        b.addi(a0, t1, 18);      // n0 = 18 + r % 6
        b.li(a1, search_depth);
        b.call("negamax");
        b.andi(a1, a0, 0xff);
        b.mv(a0, s1);
        b.call("rt_cksum");
        b.mv(s1, a0);
        b.addi(s0, s0, 1);
        b.bne(s0, s2, "root_loop");
        b.mv(a0, s1);
        b.halt();
        b.endFunc();
        mods.push_back(b.build());
    }

    appendLibraryModules(mods);
    return mods;
}

} // namespace mbias::workloads
