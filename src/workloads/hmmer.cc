#include "workloads/hmmer.hh"

#include <algorithm>

#include "isa/builder.hh"
#include "workloads/runtime.hh"

namespace mbias::workloads
{

using namespace isa::reg;

namespace
{

constexpr unsigned num_states = 24;
constexpr unsigned num_symbols = 8;
constexpr unsigned row_bytes = num_states * 8;

unsigned
seqLength(const WorkloadConfig &cfg)
{
    return 280 * cfg.scale;
}

std::uint64_t
tstayOf(std::uint64_t seed, unsigned s)
{
    return mix64(seed + 0x1000 + s) & 0xff;
}

std::uint64_t
tmoveOf(std::uint64_t seed, unsigned s)
{
    return mix64(seed + 0x2000 + s) & 0xff;
}

std::uint64_t
emitOf(std::uint64_t seed, unsigned o, unsigned s)
{
    return mix64(seed + 0x3000 + o * num_states + s) & 0x3ff;
}

std::uint8_t
obsOf(std::uint64_t seed, unsigned t)
{
    return std::uint8_t(mix64(seed + 0x4000 + t) % num_symbols);
}

} // namespace

std::uint64_t
HmmerWorkload::referenceResult(const WorkloadConfig &cfg) const
{
    std::vector<std::uint64_t> prev(num_states, 0), cur(num_states, 0);
    for (unsigned t = 0; t < seqLength(cfg); ++t) {
        const unsigned o = obsOf(cfg.seed, t);
        for (unsigned s = 0; s < num_states; ++s) {
            std::uint64_t best = prev[s] + tstayOf(cfg.seed, s);
            if (s > 0) {
                const std::uint64_t move =
                    prev[s - 1] + tmoveOf(cfg.seed, s);
                best = std::max(best, move);
            }
            cur[s] = best + emitOf(cfg.seed, o, s);
        }
        std::swap(prev, cur);
    }
    std::uint64_t result = 0;
    for (unsigned s = 0; s < num_states; ++s)
        result = std::max(result, prev[s]);
    return result;
}

std::vector<isa::Module>
HmmerWorkload::build(const WorkloadConfig &cfg) const
{
    std::vector<isa::Module> mods;

    {
        isa::ProgramBuilder b("hmmer_data");
        std::vector<std::uint64_t> tstay, tmove, emit;
        for (unsigned s = 0; s < num_states; ++s) {
            tstay.push_back(tstayOf(cfg.seed, s));
            tmove.push_back(tmoveOf(cfg.seed, s));
        }
        for (unsigned o = 0; o < num_symbols; ++o)
            for (unsigned s = 0; s < num_states; ++s)
                emit.push_back(emitOf(cfg.seed, o, s));
        b.globalWords("tstay", tstay, 64);
        b.globalWords("tmove", tmove, 64);
        b.globalWords("emit", emit, 64);
        std::vector<std::uint8_t> obs;
        for (unsigned t = 0; t < seqLength(cfg); ++t)
            obs.push_back(obsOf(cfg.seed, t));
        b.globalInit("obs", obs);
        mods.push_back(b.build());
    }

    {
        isa::ProgramBuilder b("hmmer_main");
        b.func("main");
        // Frame: prev row at sp+0, cur row at sp+row_bytes.
        b.addi(sp, sp, -(2 * int(row_bytes) + 16));
        b.mv(s0, sp);                    // prev
        b.addi(s1, sp, int(row_bytes));  // cur
        // Zero the prev row.
        b.li(t0, 0);
        b.li(t1, num_states);
        b.label("zero_loop");
        b.slli(t2, t0, 3);
        b.add(t2, s0, t2);
        b.st8(zero, t2, 0);
        b.addi(t0, t0, 1);
        b.bne(t0, t1, "zero_loop");

        b.la(s4, "obs");
        b.la(s8, "tstay");
        b.la(s9, "tmove");
        b.li(s2, 0);             // t
        b.li(s3, seqLength(cfg));

        b.label("obs_loop");
        b.add(t0, s4, s2);
        b.ld1(t1, t0, 0);        // o
        b.la(s5, "emit");
        b.li(t2, row_bytes);
        b.mul(t1, t1, t2);
        b.add(s5, s5, t1);       // &emit[o][0]

        b.li(s6, 0);             // s
        b.label("state_loop");
        b.slli(t0, s6, 3);
        b.add(t1, s0, t0);
        b.ld8(t2, t1, 0);        // prev[s]
        b.add(t3, s8, t0);
        b.ld8(t4, t3, 0);        // tstay[s]
        b.add(t2, t2, t4);       // stay
        b.beq(s6, zero, "no_move");
        b.ld8(t5, t1, -8);       // prev[s-1]
        b.add(t6, s9, t0);
        b.ld8(t7, t6, 0);        // tmove[s]
        b.add(t5, t5, t7);       // move
        b.bgeu(t2, t5, "no_move");
        b.mv(t2, t5);
        b.label("no_move");
        b.add(t8, s5, t0);
        b.ld8(t4, t8, 0);        // emit[o][s]
        b.add(t2, t2, t4);
        b.add(t3, s1, t0);
        b.st8(t2, t3, 0);        // cur[s]
        b.addi(s6, s6, 1);
        b.li(t4, num_states);
        b.bne(s6, t4, "state_loop");

        // Swap the rows.
        b.mv(t0, s0);
        b.mv(s0, s1);
        b.mv(s1, t0);
        b.addi(s2, s2, 1);
        b.bne(s2, s3, "obs_loop");

        // result = max over prev[].
        b.li(a0, 0);
        b.li(t0, 0);
        b.li(t1, num_states);
        b.label("max_loop");
        b.slli(t2, t0, 3);
        b.add(t2, s0, t2);
        b.ld8(t3, t2, 0);
        b.bgeu(a0, t3, "max_skip");
        b.mv(a0, t3);
        b.label("max_skip");
        b.addi(t0, t0, 1);
        b.bne(t0, t1, "max_loop");

        b.addi(sp, sp, 2 * int(row_bytes) + 16);
        b.halt();
        b.endFunc();
        mods.push_back(b.build());
    }

    appendLibraryModules(mods);
    return mods;
}

} // namespace mbias::workloads
