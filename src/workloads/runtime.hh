#ifndef MBIAS_WORKLOADS_RUNTIME_HH
#define MBIAS_WORKLOADS_RUNTIME_HH

#include <vector>

#include "isa/module.hh"

namespace mbias::workloads
{

/**
 * The shared runtime ("libc.o" of the suite), split over two modules
 * so link order can separate them.
 *
 * Functions (args in a0.., result in a0):
 *  - rt_cksum(acc, v)  -> acc*31 + v          (4 insts: inlinable)
 *  - rt_mix64(x)       -> SplitMix64 finalizer (11 insts: inlinable
 *                         for icc at O3, too big for gcc)
 *  - rt_min(a, b), rt_max(a, b)               (branchy, inlinable)
 *  - rt_absdiff(a, b)  -> |a - b| (signed)    (branchy, inlinable)
 */
std::vector<isa::Module> runtimeModules();

/**
 * Appends everything a workload links besides its own modules: the
 * runtime modules and the cold library modules.  Call at the end of
 * every Workload::build().
 */
void appendLibraryModules(std::vector<isa::Module> &mods);

} // namespace mbias::workloads

#endif // MBIAS_WORKLOADS_RUNTIME_HH
