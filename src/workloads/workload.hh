#ifndef MBIAS_WORKLOADS_WORKLOAD_HH
#define MBIAS_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/module.hh"

namespace mbias::workloads
{

/** Sizing/seeding knobs shared by all workloads. */
struct WorkloadConfig
{
    /** Linear work multiplier; scale=1 is ~100-300k dynamic insts. */
    unsigned scale = 1;

    /** Seed for the workload's input data generation. */
    std::uint64_t seed = 12345;
};

/**
 * One benchmark of the SPEC CPU2006-C substitute suite.
 *
 * Each workload compiles (through the µRISC toolchain) into several
 * modules — the analogue of multiple .o files, so that link order has
 * something to permute — and also provides a plain-C++ reference
 * implementation of the same computation.  The invariant
 *
 *   simulate(compile(build(cfg))).result == referenceResult(cfg)
 *
 * must hold for every opt level, vendor, link order, and environment
 * size; the test suite checks it.  The result is returned by the
 * simulated program in register a0 at Halt.
 */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Short name, e.g. "perl". */
    virtual std::string name() const = 0;

    /** The SPEC CPU2006 program this archetype substitutes. */
    virtual std::string archetype() const = 0;

    /** One-line description of the kernel. */
    virtual std::string description() const = 0;

    /** Builds the source modules (pre-optimization). */
    virtual std::vector<isa::Module>
    build(const WorkloadConfig &cfg) const = 0;

    /** The checksum the simulated program must produce. */
    virtual std::uint64_t
    referenceResult(const WorkloadConfig &cfg) const = 0;
};

/** 64-bit mixing function shared by workload input generators.
 *  (Also implemented in µRISC in the runtime module as rt_mix64.) */
std::uint64_t mix64(std::uint64_t x);

/** The checksum step shared by workloads: acc*31 + v.
 *  (Also implemented in µRISC as rt_cksum.) */
std::uint64_t cksumStep(std::uint64_t acc, std::uint64_t v);

} // namespace mbias::workloads

#endif // MBIAS_WORKLOADS_WORKLOAD_HH
