#ifndef MBIAS_WORKLOADS_MILC_HH
#define MBIAS_WORKLOADS_MILC_HH

#include "workloads/workload.hh"

namespace mbias::workloads
{

/**
 * "milc": fixed-point 3x3 matrix products over a lattice of site
 * pairs, the archetype of 433.milc.  Arithmetic-dense with a tiny
 * constant-trip inner loop — prime unrolling material, so the O3-vs-O2
 * contrast is pronounced here.
 */
class MilcWorkload : public Workload
{
  public:
    std::string name() const override { return "milc"; }
    std::string archetype() const override { return "433.milc"; }
    std::string description() const override
    {
        return "3x3 fixed-point matrix products over a lattice";
    }

    std::vector<isa::Module> build(const WorkloadConfig &cfg) const override;
    std::uint64_t referenceResult(const WorkloadConfig &cfg) const override;
};

} // namespace mbias::workloads

#endif // MBIAS_WORKLOADS_MILC_HH
