#ifndef MBIAS_WORKLOADS_SJENG_HH
#define MBIAS_WORKLOADS_SJENG_HH

#include "workloads/workload.hh"

namespace mbias::workloads
{

/**
 * "sjeng": depth-limited negamax over a take-1/2/3 game tree, the
 * archetype of 458.sjeng.  Deep recursion with register-save frames and
 * hash-mixed leaf evaluations: call/return and branch intensive.
 */
class SjengWorkload : public Workload
{
  public:
    std::string name() const override { return "sjeng"; }
    std::string archetype() const override { return "458.sjeng"; }
    std::string description() const override
    {
        return "depth-limited negamax game-tree search";
    }

    std::vector<isa::Module> build(const WorkloadConfig &cfg) const override;
    std::uint64_t referenceResult(const WorkloadConfig &cfg) const override;
};

} // namespace mbias::workloads

#endif // MBIAS_WORKLOADS_SJENG_HH
