#ifndef MBIAS_WORKLOADS_SPHINX_HH
#define MBIAS_WORKLOADS_SPHINX_HH

#include "workloads/workload.hh"

namespace mbias::workloads
{

/**
 * "sphinx": fixed-point Gaussian-mixture scoring of feature frames
 * (distance products plus a running min), the archetype of
 * 482.sphinx3.  A small constant-trip inner product loop that the
 * unroller targets, plus a per-gaussian min branch.
 */
class SphinxWorkload : public Workload
{
  public:
    std::string name() const override { return "sphinx"; }
    std::string archetype() const override { return "482.sphinx3"; }
    std::string description() const override
    {
        return "fixed-point GMM scoring with running min";
    }

    std::vector<isa::Module> build(const WorkloadConfig &cfg) const override;
    std::uint64_t referenceResult(const WorkloadConfig &cfg) const override;
};

} // namespace mbias::workloads

#endif // MBIAS_WORKLOADS_SPHINX_HH
