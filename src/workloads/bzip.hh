#ifndef MBIAS_WORKLOADS_BZIP_HH
#define MBIAS_WORKLOADS_BZIP_HH

#include "workloads/workload.hh"

namespace mbias::workloads
{

/**
 * "bzip": move-to-front coding of a run-structured byte stream, the
 * archetype of 401.bzip2.  The hot code is a data-dependent linear
 * scan of a small table kept on the machine stack plus a shift loop —
 * branchy, with a stack-resident working set.
 */
class BzipWorkload : public Workload
{
  public:
    std::string name() const override { return "bzip"; }
    std::string archetype() const override { return "401.bzip2"; }
    std::string description() const override
    {
        return "move-to-front transform over a run-structured stream";
    }

    std::vector<isa::Module> build(const WorkloadConfig &cfg) const override;
    std::uint64_t referenceResult(const WorkloadConfig &cfg) const override;

    /** The generated input stream (exposed for tests). */
    static std::vector<std::uint8_t> makeInput(std::uint64_t seed,
                                               unsigned n);
};

} // namespace mbias::workloads

#endif // MBIAS_WORKLOADS_BZIP_HH
