#include "workloads/h264.hh"

#include "isa/builder.hh"
#include "workloads/runtime.hh"

namespace mbias::workloads
{

using namespace isa::reg;

namespace
{

constexpr unsigned frame_w = 64;
constexpr unsigned frame_h = 48;
constexpr int search_radius = 2;

unsigned
numBlocks(const WorkloadConfig &cfg)
{
    return 8 * cfg.scale;
}

std::uint8_t
curPixel(std::uint64_t seed, unsigned x, unsigned y)
{
    return std::uint8_t(mix64(seed + y * frame_w + x) & 63);
}

std::uint8_t
refPixel(std::uint64_t seed, unsigned x, unsigned y)
{
    // The reference frame is the current frame shifted by (2, 1) plus
    // low-amplitude noise, so the search has a real optimum to find.
    std::uint64_t base = 0;
    if (x >= 2 && y >= 1)
        base = curPixel(seed, x - 2, y - 1);
    return std::uint8_t(base + (mix64(seed + 0xaaaa + y * frame_w + x) & 7));
}

void
blockOrigin(unsigned b, unsigned &bx, unsigned &by)
{
    bx = 2 + (b * 11) % 50;
    by = 2 + (b * 7) % 35;
}

} // namespace

std::uint64_t
H264Workload::referenceResult(const WorkloadConfig &cfg) const
{
    std::vector<std::uint8_t> cur(frame_w * frame_h), ref(frame_w * frame_h);
    for (unsigned y = 0; y < frame_h; ++y) {
        for (unsigned x = 0; x < frame_w; ++x) {
            cur[y * frame_w + x] = curPixel(cfg.seed, x, y);
            ref[y * frame_w + x] = refPixel(cfg.seed, x, y);
        }
    }
    std::uint64_t acc = 0;
    for (unsigned b = 0; b < numBlocks(cfg); ++b) {
        unsigned bx = 0, by = 0;
        blockOrigin(b, bx, by);
        std::uint64_t best = ~std::uint64_t(0);
        std::uint64_t best_code = 0;
        for (int dy = -search_radius; dy <= search_radius; ++dy) {
            for (int dx = -search_radius; dx <= search_radius; ++dx) {
                std::uint64_t sad = 0;
                for (unsigned j = 0; j < 8; ++j) {
                    for (unsigned i = 0; i < 8; ++i) {
                        const int c =
                            cur[(by + j) * frame_w + bx + i];
                        const int r = ref[unsigned(int(by) + dy + int(j)) *
                                              frame_w +
                                          unsigned(int(bx) + dx + int(i))];
                        sad += std::uint64_t(c > r ? c - r : r - c);
                    }
                }
                if (sad < best) {
                    best = sad;
                    best_code = std::uint64_t(dy + search_radius) * 5 +
                                std::uint64_t(dx + search_radius);
                }
            }
        }
        acc = cksumStep(acc, best);
        acc = cksumStep(acc, best_code);
    }
    return acc;
}

std::vector<isa::Module>
H264Workload::build(const WorkloadConfig &cfg) const
{
    std::vector<isa::Module> mods;

    {
        std::vector<std::uint8_t> cur, ref;
        for (unsigned y = 0; y < frame_h; ++y) {
            for (unsigned x = 0; x < frame_w; ++x) {
                cur.push_back(curPixel(cfg.seed, x, y));
                ref.push_back(refPixel(cfg.seed, x, y));
            }
        }
        isa::ProgramBuilder b("h264_data");
        b.globalInit("frame_cur", cur, 64);
        b.globalInit("frame_ref", ref, 64);
        mods.push_back(b.build());
    }

    {
        isa::ProgramBuilder b("h264_sad");
        // sad8x8(a0 = cur origin ptr, a1 = ref origin ptr) -> a0 = SAD.
        b.func("sad8x8");
        b.li(t0, 0); // row
        b.li(t5, 0); // sad
        b.label("row_loop");
        b.li(t1, 0); // col
        b.label("col_loop");
        b.add(t2, a0, t1);
        b.ld1(t3, t2, 0);
        b.add(t2, a1, t1);
        b.ld1(t4, t2, 0);
        b.sub(t6, t3, t4);
        b.bge(t6, zero, "abs_pos");
        b.sub(t6, zero, t6);
        b.label("abs_pos");
        b.add(t5, t5, t6);
        b.addi(t1, t1, 1);
        b.li(t7, 8);
        b.bne(t1, t7, "col_loop");
        b.addi(a0, a0, frame_w);
        b.addi(a1, a1, frame_w);
        b.addi(t0, t0, 1);
        b.li(t7, 8);
        b.bne(t0, t7, "row_loop");
        b.mv(a0, t5);
        b.ret();
        b.endFunc();
        mods.push_back(b.build());
    }

    {
        isa::ProgramBuilder b("h264_main");
        b.func("main");
        b.li(s0, 0); // block index
        b.li(s1, 0); // checksum
        b.li(s2, numBlocks(cfg));
        b.label("block_loop");
        // bx = 2 + (b*11) % 50 ; by = 2 + (b*7) % 35
        b.li(t0, 11);
        b.mul(t1, s0, t0);
        b.li(t0, 50);
        b.remu(t1, t1, t0);
        b.addi(s3, t1, 2); // bx
        b.li(t0, 7);
        b.mul(t1, s0, t0);
        b.li(t0, 35);
        b.remu(t1, t1, t0);
        b.addi(s4, t1, 2); // by

        b.li(s6, -1);      // best sad (all ones = +inf unsigned)
        b.li(s7, 0);       // best code
        b.li(s8, -search_radius); // dy
        b.label("dy_loop");
        b.li(s9, -search_radius); // dx
        b.label("dx_loop");
        // cur ptr = cur + by*W + bx
        b.la(t0, "frame_cur");
        b.li(t1, frame_w);
        b.mul(t2, s4, t1);
        b.add(t2, t2, s3);
        b.add(a0, t0, t2);
        // ref ptr = ref + (by+dy)*W + bx+dx
        b.la(t0, "frame_ref");
        b.add(t3, s4, s8);
        b.mul(t3, t3, t1);
        b.add(t3, t3, s3);
        b.add(t3, t3, s9);
        b.add(a1, t0, t3);
        b.call("sad8x8");
        b.bgeu(a0, s6, "no_better");
        b.mv(s6, a0);
        // code = (dy+2)*5 + dx+2
        b.addi(t0, s8, search_radius);
        b.li(t1, 5);
        b.mul(t0, t0, t1);
        b.add(t0, t0, s9);
        b.addi(s7, t0, search_radius);
        b.label("no_better");
        b.addi(s9, s9, 1);
        b.li(t0, search_radius + 1);
        b.bne(s9, t0, "dx_loop");
        b.addi(s8, s8, 1);
        b.li(t0, search_radius + 1);
        b.bne(s8, t0, "dy_loop");

        b.mv(a0, s1);
        b.mv(a1, s6);
        b.call("rt_cksum");
        b.mv(a1, s7);
        b.call("rt_cksum");
        b.mv(s1, a0);
        b.addi(s0, s0, 1);
        b.bne(s0, s2, "block_loop");
        b.mv(a0, s1);
        b.halt();
        b.endFunc();
        mods.push_back(b.build());
    }

    appendLibraryModules(mods);
    return mods;
}

} // namespace mbias::workloads
