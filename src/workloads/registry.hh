#ifndef MBIAS_WORKLOADS_REGISTRY_HH
#define MBIAS_WORKLOADS_REGISTRY_HH

#include <string>
#include <vector>

#include "workloads/workload.hh"

namespace mbias::workloads
{

/** All workloads of the suite, in canonical (SPEC-number) order. */
const std::vector<const Workload *> &suite();

/** Looks a workload up by name; panics if absent. */
const Workload &findWorkload(const std::string &name);

/** Names of all workloads, in suite order. */
std::vector<std::string> suiteNames();

} // namespace mbias::workloads

#endif // MBIAS_WORKLOADS_REGISTRY_HH
