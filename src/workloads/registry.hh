#ifndef MBIAS_WORKLOADS_REGISTRY_HH
#define MBIAS_WORKLOADS_REGISTRY_HH

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "workloads/workload.hh"

namespace mbias::workloads
{

/**
 * The process-wide workload table: the 12 built-in kernels plus any
 * workload registered at runtime (assembled from .asm assets, emitted
 * by the fuzzer, ...).  Lookups by name see every entry; the builtin
 * suite() view below is unaffected by runtime registration, so the
 * paper figures that iterate the canonical suite stay byte-identical
 * no matter what else a process has loaded.
 *
 * Names are unique across the whole table.  Registering a duplicate
 * is rejected with a clear error — never silent shadowing — because a
 * workload's name keys the toolchain artifact cache and the result
 * stores; two workloads sharing one name would silently read each
 * other's cached artifacts.
 */
class Registry
{
  public:
    struct Entry
    {
        const Workload *workload = nullptr;
        /** Provenance: "builtin", a manifest path, or "fuzzer". */
        std::string source;
    };

    static Registry &instance();

    /**
     * Registers @p w under its name() with provenance @p source.
     * Returns the empty string on success; on a duplicate name the
     * workload is NOT registered and the returned string describes
     * the clash (including where the existing entry came from).
     */
    std::string tryAdd(std::unique_ptr<const Workload> w,
                       std::string source);

    /** tryAdd that treats a duplicate as a fatal user error. */
    const Workload &add(std::unique_ptr<const Workload> w,
                        std::string source);

    /** Looks a workload up by name; nullptr when absent. */
    const Workload *find(const std::string &name) const;

    /** Provenance of the named workload ("" when absent). */
    std::string sourceOf(const std::string &name) const;

    /** Every entry: the builtin suite first (in canonical order),
     *  then runtime registrations in registration order. */
    std::vector<Entry> entries() const;

    /** Number of runtime-registered (non-builtin) workloads. */
    std::size_t runtimeCount() const;

  private:
    Registry();

    mutable std::mutex mu_;
    std::vector<Entry> entries_;
    std::vector<std::unique_ptr<const Workload>> owned_;
};

/** The built-in suite, in canonical (SPEC-number) order.  Runtime
 *  registrations never appear here. */
const std::vector<const Workload *> &suite();

/** Looks a workload up by name — builtin or runtime-registered;
 *  panics if absent. */
const Workload &findWorkload(const std::string &name);

/** Names of the built-in workloads, in suite order. */
std::vector<std::string> suiteNames();

} // namespace mbias::workloads

#endif // MBIAS_WORKLOADS_REGISTRY_HH
