#include "workloads/workload.hh"

namespace mbias::workloads
{

std::uint64_t
mix64(std::uint64_t x)
{
    // SplitMix64 finalizer; small enough that the µRISC version
    // (rt_mix64) is a candidate for O3 leaf inlining.
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

std::uint64_t
cksumStep(std::uint64_t acc, std::uint64_t v)
{
    return acc * 31 + v;
}

} // namespace mbias::workloads
