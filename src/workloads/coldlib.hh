#ifndef MBIAS_WORKLOADS_COLDLIB_HH
#define MBIAS_WORKLOADS_COLDLIB_HH

#include <vector>

#include "isa/module.hh"

namespace mbias::workloads
{

/**
 * Cold library modules: linked but never-executed code, standing in for
 * the utility/error-handling/startup objects every real program drags
 * along.  Their only effect is on layout — permuting them with the
 * LinkOrder moves every hot function downstream, which is exactly how
 * innocuous .o ordering perturbs performance in the paper.
 *
 * The functions have deliberately odd byte sizes (and size that varies
 * with opt level, since the optimizer processes them like any other
 * code), so permutations explore many distinct placements.
 */
std::vector<isa::Module> coldModules();

} // namespace mbias::workloads

#endif // MBIAS_WORKLOADS_COLDLIB_HH
