#ifndef MBIAS_WORKLOADS_GCCLIKE_HH
#define MBIAS_WORKLOADS_GCCLIKE_HH

#include "workloads/workload.hh"

namespace mbias::workloads
{

/**
 * "gcclike": open-addressing symbol-table churn (insert then look up
 * thousands of keys at ~0.88 load factor), the archetype of 403.gcc.
 * Hot code is dependent loads with data-dependent probe-loop branches.
 */
class GccLikeWorkload : public Workload
{
  public:
    std::string name() const override { return "gcclike"; }
    std::string archetype() const override { return "403.gcc"; }
    std::string description() const override
    {
        return "open-addressing symbol table insert/lookup churn";
    }

    std::vector<isa::Module> build(const WorkloadConfig &cfg) const override;
    std::uint64_t referenceResult(const WorkloadConfig &cfg) const override;
};

} // namespace mbias::workloads

#endif // MBIAS_WORKLOADS_GCCLIKE_HH
