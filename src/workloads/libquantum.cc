#include "workloads/libquantum.hh"

#include "isa/builder.hh"
#include "workloads/runtime.hh"

namespace mbias::workloads
{

using namespace isa::reg;

namespace
{

constexpr unsigned num_amps = 2048; // 16 KiB register file

unsigned
numGates(const WorkloadConfig &cfg)
{
    return 10 * cfg.scale;
}

std::uint64_t
initAmp(std::uint64_t seed, unsigned i)
{
    return mix64(seed + 0x717171 + i);
}

} // namespace

std::uint64_t
LibquantumWorkload::referenceResult(const WorkloadConfig &cfg) const
{
    std::vector<std::uint64_t> amp(num_amps);
    for (unsigned i = 0; i < num_amps; ++i)
        amp[i] = initAmp(cfg.seed, i);
    for (unsigned g = 0; g < numGates(cfg); ++g) {
        const unsigned shift = (g % 9) + 1;
        const std::uint64_t stride = std::uint64_t(1) << shift;
        for (unsigned i = 0; i < num_amps; ++i) {
            if ((i & stride) == 0)
                amp[i] ^= (amp[i | stride] >> 3) + g;
        }
    }
    std::uint64_t acc = 0;
    for (unsigned i = 0; i < num_amps; i += 97)
        acc = cksumStep(acc, amp[i]);
    return acc;
}

std::vector<isa::Module>
LibquantumWorkload::build(const WorkloadConfig &cfg) const
{
    std::vector<isa::Module> mods;

    {
        std::vector<std::uint64_t> words;
        words.reserve(num_amps);
        for (unsigned i = 0; i < num_amps; ++i)
            words.push_back(initAmp(cfg.seed, i));
        isa::ProgramBuilder b("lq_data");
        b.globalWords("amp", words, 64);
        mods.push_back(b.build());
    }

    {
        isa::ProgramBuilder b("lq_gates");
        // apply_gate(a0 = stride, a1 = g) : applies one gate in place.
        b.func("apply_gate");
        b.la(t0, "amp");
        b.li(t1, 0); // i
        b.li(t2, num_amps);
        b.label("gate_loop");
        b.and_(t3, t1, a0);
        b.bne(t3, zero, "gate_skip");
        b.or_(t3, t1, a0);       // partner index
        b.slli(t3, t3, 3);
        b.add(t3, t0, t3);
        b.ld8(t4, t3, 0);        // amp[i | stride]
        b.srli(t4, t4, 3);
        b.add(t4, t4, a1);
        b.slli(t5, t1, 3);
        b.add(t5, t0, t5);
        b.ld8(t6, t5, 0);
        b.xor_(t6, t6, t4);
        b.st8(t6, t5, 0);
        b.label("gate_skip");
        b.addi(t1, t1, 1);
        b.bne(t1, t2, "gate_loop");
        b.ret();
        b.endFunc();
        mods.push_back(b.build());
    }

    {
        isa::ProgramBuilder b("lq_main");
        b.func("main");
        b.li(s0, 0); // gate counter
        b.li(s2, numGates(cfg));
        b.label("main_loop");
        b.li(t0, 9);
        b.remu(t1, s0, t0);
        b.addi(t1, t1, 1);       // shift
        b.li(a0, 1);
        b.sll(a0, a0, t1);       // stride
        b.mv(a1, s0);            // g
        b.call("apply_gate");
        b.addi(s0, s0, 1);
        b.bne(s0, s2, "main_loop");

        // Sampled checksum.
        b.la(s3, "amp");
        b.li(s1, 0); // acc
        b.li(s4, 0); // i
        b.li(s5, num_amps);
        b.label("sum_loop");
        b.slli(t0, s4, 3);
        b.add(t0, s3, t0);
        b.ld8(a1, t0, 0);
        b.mv(a0, s1);
        b.call("rt_cksum");
        b.mv(s1, a0);
        b.addi(s4, s4, 97);
        b.blt(s4, s5, "sum_loop");
        b.mv(a0, s1);
        b.halt();
        b.endFunc();
        mods.push_back(b.build());
    }

    appendLibraryModules(mods);
    return mods;
}

} // namespace mbias::workloads
