#include "workloads/gobmk.hh"

#include <functional>

#include "isa/builder.hh"
#include "workloads/runtime.hh"

namespace mbias::workloads
{

using namespace isa::reg;

namespace
{

constexpr unsigned board_w = 19;
constexpr unsigned board_cells = board_w * board_w;

unsigned
numRounds(const WorkloadConfig &cfg)
{
    return 3 * cfg.scale;
}

std::vector<std::uint8_t>
makeBoard(std::uint64_t seed)
{
    std::vector<std::uint8_t> board(board_cells);
    for (unsigned i = 0; i < board_cells; ++i)
        board[i] = std::uint8_t(mix64(seed * 19 + i) % 3);
    return board;
}

} // namespace

std::uint64_t
GobmkWorkload::referenceResult(const WorkloadConfig &cfg) const
{
    const auto board = makeBoard(cfg.seed);
    std::vector<std::uint8_t> visited(board_cells, 0);
    std::uint64_t acc = 0;

    std::function<std::uint64_t(unsigned)> fill = [&](unsigned idx) {
        std::uint64_t size = 1;
        visited[idx] = 1;
        auto try_cell = [&](unsigned n) -> std::uint64_t {
            if (visited[n] || board[n] != 1)
                return 0;
            return fill(n);
        };
        if (idx % board_w != 0)
            size += try_cell(idx - 1);
        if (idx % board_w != board_w - 1)
            size += try_cell(idx + 1);
        if (idx >= board_w)
            size += try_cell(idx - board_w);
        if (idx < board_cells - board_w)
            size += try_cell(idx + board_w);
        return size;
    };

    for (unsigned round = 0; round < numRounds(cfg); ++round) {
        // Phase 1: 8-neighbour pattern counts over the interior.
        for (unsigned r = 1; r + 1 < board_w; ++r) {
            for (unsigned c = 1; c + 1 < board_w; ++c) {
                const unsigned idx = r * board_w + c;
                const std::uint8_t center = board[idx];
                const int dirs[8] = {-int(board_w) - 1, -int(board_w),
                                     -int(board_w) + 1, -1, 1,
                                     int(board_w) - 1, int(board_w),
                                     int(board_w) + 1};
                std::uint64_t count = 0;
                for (int d : dirs)
                    if (board[idx + d] == center)
                        ++count;
                acc = cksumStep(acc, count);
            }
        }
        // Phase 2: flood-fill region sizes (visited persists across
        // rounds, so only the first round does real fills).
        for (unsigned start = 0; start < board_cells; start += 7) {
            std::uint64_t size = 0;
            if (!visited[start] && board[start] == 1)
                size = fill(start);
            acc = cksumStep(acc, size);
        }
    }
    return acc;
}

std::vector<isa::Module>
GobmkWorkload::build(const WorkloadConfig &cfg) const
{
    std::vector<isa::Module> mods;

    {
        isa::ProgramBuilder b("gobmk_data");
        b.globalInit("board", makeBoard(cfg.seed));
        b.global("visited", board_cells, 8);
        mods.push_back(b.build());
    }

    // Recursive flood fill.
    {
        isa::ProgramBuilder b("gobmk_fill");

        // fill(a0 = idx) -> a0 = region size.
        b.func("fill");
        b.addi(sp, sp, -16);
        b.st8(s0, sp, 0);
        b.st8(s1, sp, 8);
        b.mv(s0, a0);
        b.li(s1, 1);
        b.la(t0, "visited");
        b.add(t1, t0, s0);
        b.li(t2, 1);
        b.st1(t2, t1, 0);
        // left: idx % 19 != 0
        b.li(t3, board_w);
        b.remu(t4, s0, t3);
        b.beq(t4, zero, "skip_left");
        b.addi(a0, s0, -1);
        b.call("fill_try");
        b.add(s1, s1, a0);
        b.label("skip_left");
        // right: idx % 19 != 18
        b.li(t3, board_w);
        b.remu(t4, s0, t3);
        b.li(t5, board_w - 1);
        b.beq(t4, t5, "skip_right");
        b.addi(a0, s0, 1);
        b.call("fill_try");
        b.add(s1, s1, a0);
        b.label("skip_right");
        // up: idx >= 19
        b.li(t3, board_w);
        b.blt(s0, t3, "skip_up");
        b.addi(a0, s0, -int(board_w));
        b.call("fill_try");
        b.add(s1, s1, a0);
        b.label("skip_up");
        // down: idx < 342
        b.li(t3, board_cells - board_w);
        b.bge(s0, t3, "skip_down");
        b.addi(a0, s0, int(board_w));
        b.call("fill_try");
        b.add(s1, s1, a0);
        b.label("skip_down");
        b.mv(a0, s1);
        b.ld8(s1, sp, 8);
        b.ld8(s0, sp, 0);
        b.addi(sp, sp, 16);
        b.ret();
        b.endFunc();

        // fill_try(a0 = idx) -> size of new region from idx, or 0.
        b.func("fill_try");
        b.la(t0, "visited");
        b.add(t1, t0, a0);
        b.ld1(t2, t1, 0);
        b.bne(t2, zero, "try_zero");
        b.la(t0, "board");
        b.add(t1, t0, a0);
        b.ld1(t2, t1, 0);
        b.li(t3, 1);
        b.bne(t2, t3, "try_zero");
        b.call("fill");
        b.ret();
        b.label("try_zero");
        b.li(a0, 0);
        b.ret();
        b.endFunc();
        mods.push_back(b.build());
    }

    // Pattern scan over the interior.
    {
        isa::ProgramBuilder b("gobmk_scan");
        // scan_cell(a0 = idx) -> a0 = count of neighbours == center.
        b.func("scan_cell");
        b.la(t0, "board");
        b.add(t1, t0, a0);
        b.ld1(t2, t1, 0); // center
        b.li(a0, 0);
        const int dirs[8] = {-int(board_w) - 1, -int(board_w),
                             -int(board_w) + 1, -1, 1,
                             int(board_w) - 1,  int(board_w),
                             int(board_w) + 1};
        for (int i = 0; i < 8; ++i) {
            const std::string skip = "scan_skip_" + std::to_string(i);
            b.ld1(t3, t1, dirs[i]);
            b.bne(t3, t2, skip);
            b.addi(a0, a0, 1);
            b.label(skip);
        }
        b.ret();
        b.endFunc();
        mods.push_back(b.build());
    }

    {
        isa::ProgramBuilder b("gobmk_main");
        b.func("main");
        b.li(s1, 0); // checksum
        b.li(s5, numRounds(cfg));
        b.label("round_loop");

        // Phase 1: rows 1..17 x cols 1..17.
        b.li(s2, 1); // r
        b.label("row_loop");
        b.li(s3, 1); // c
        b.label("col_loop");
        b.li(t0, board_w);
        b.mul(t0, s2, t0);
        b.add(a0, t0, s3);
        b.call("scan_cell");
        b.mv(a1, a0);
        b.mv(a0, s1);
        b.call("rt_cksum");
        b.mv(s1, a0);
        b.addi(s3, s3, 1);
        b.li(t1, board_w - 1);
        b.bne(s3, t1, "col_loop");
        b.addi(s2, s2, 1);
        b.li(t1, board_w - 1);
        b.bne(s2, t1, "row_loop");

        // Phase 2: sampled flood fills.
        b.li(s2, 0); // start
        b.label("fill_loop");
        b.mv(a0, s2);
        b.call("fill_try");
        b.mv(a1, a0);
        b.mv(a0, s1);
        b.call("rt_cksum");
        b.mv(s1, a0);
        b.addi(s2, s2, 7);
        b.li(t1, board_cells);
        b.blt(s2, t1, "fill_loop");

        b.addi(s5, s5, -1);
        b.bne(s5, zero, "round_loop");
        b.mv(a0, s1);
        b.halt();
        b.endFunc();
        mods.push_back(b.build());
    }

    appendLibraryModules(mods);
    return mods;
}

} // namespace mbias::workloads
