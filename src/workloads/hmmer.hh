#ifndef MBIAS_WORKLOADS_HMMER_HH
#define MBIAS_WORKLOADS_HMMER_HH

#include "workloads/workload.hh"

namespace mbias::workloads
{

/**
 * "hmmer": an integer Viterbi-style dynamic program over a 24-state
 * profile, the archetype of 456.hmmer.  The two DP rows live on the
 * machine stack, and the row-relative 8-byte accesses inherit whatever
 * alignment the loader gave the stack pointer — the paper's env-size
 * mechanism in its purest form.
 */
class HmmerWorkload : public Workload
{
  public:
    std::string name() const override { return "hmmer"; }
    std::string archetype() const override { return "456.hmmer"; }
    std::string description() const override
    {
        return "integer Viterbi DP with stack-resident rows";
    }

    std::vector<isa::Module> build(const WorkloadConfig &cfg) const override;
    std::uint64_t referenceResult(const WorkloadConfig &cfg) const override;
};

} // namespace mbias::workloads

#endif // MBIAS_WORKLOADS_HMMER_HH
