#include "uarch/tlb.hh"

#include "base/bitutils.hh"
#include "base/logging.hh"

namespace mbias::uarch
{

Tlb::Tlb(const TlbConfig &config) : config_(config)
{
    mbias_assert(isPowerOf2(config.pageBytes),
                 "page size must be a power of two");
    mbias_assert(config.entries >= 1, "TLB needs at least one entry");
    pageShift_ = floorLog2(config.pageBytes);
    vpns_.assign(config.entries, 0);
    valid_.assign(config.entries, false);
}

void
Tlb::reset()
{
    std::fill(valid_.begin(), valid_.end(), false);
    hits_ = misses_ = 0;
}

bool
Tlb::touchPage(std::uint64_t vpn)
{
    for (unsigned e = 0; e < config_.entries; ++e) {
        if (valid_[e] && vpns_[e] == vpn) {
            for (unsigned k = e; k > 0; --k) {
                vpns_[k] = vpns_[k - 1];
                valid_[k] = valid_[k - 1];
            }
            vpns_[0] = vpn;
            valid_[0] = true;
            ++hits_;
            return true;
        }
    }
    for (unsigned k = config_.entries - 1; k > 0; --k) {
        vpns_[k] = vpns_[k - 1];
        valid_[k] = valid_[k - 1];
    }
    vpns_[0] = vpn;
    valid_[0] = true;
    ++misses_;
    return false;
}

unsigned
Tlb::access(Addr addr, unsigned size)
{
    mbias_assert(size > 0, "zero-size TLB access");
    unsigned miss_count = 0;
    const std::uint64_t first = addr >> pageShift_;
    const std::uint64_t last = (addr + size - 1) >> pageShift_;
    if (!touchPage(first))
        ++miss_count;
    if (last != first && !touchPage(last))
        ++miss_count;
    return miss_count;
}

} // namespace mbias::uarch
