#include "uarch/tlb.hh"

#include "base/bitutils.hh"
#include "base/logging.hh"

namespace mbias::uarch
{

Tlb::Tlb(const TlbConfig &config) : config_(config)
{
    mbias_assert(isPowerOf2(config.pageBytes),
                 "page size must be a power of two");
    mbias_assert(config.entries >= 1, "TLB needs at least one entry");
    pageShift_ = floorLog2(config.pageBytes);
    vpns_.assign(config.entries, 0);
    valid_.assign(config.entries, false);
}

void
Tlb::reset()
{
    std::fill(valid_.begin(), valid_.end(), false);
    hits_ = misses_ = 0;
}

bool
Tlb::touchPage(std::uint64_t vpn)
{
    return touchPageHot(vpn);
}

unsigned
Tlb::access(Addr addr, unsigned size)
{
    mbias_assert(size > 0, "zero-size TLB access");
    return accessVpnsHot(addr >> pageShift_, (addr + size - 1) >> pageShift_);
}

} // namespace mbias::uarch
