#ifndef MBIAS_UARCH_BRANCH_HH
#define MBIAS_UARCH_BRANCH_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "base/bitutils.hh"
#include "base/types.hh"

namespace mbias::uarch
{

/**
 * Direction predictor interface.  Predictors index prediction tables
 * with (hashed) branch addresses, so distinct branches can alias — and
 * *which* branches alias depends on where the linker put them.  That
 * address dependence is one of the causal mechanisms behind link-order
 * measurement bias.
 */
class BranchPredictor
{
  public:
    virtual ~BranchPredictor() = default;

    /** Predicted direction for the branch at @p pc. */
    virtual bool predict(Addr pc) const = 0;

    /** Trains the predictor with the resolved direction. */
    virtual void update(Addr pc, bool taken) = 0;

    /** Clears all state. */
    virtual void reset() = 0;

    /**
     * Table entry the branch at @p pc currently indexes (for history-
     * folding predictors this depends on the live history, so call it
     * at prediction time).  Read-only: attribution uses it to name the
     * entries where distinct branches collide.
     */
    virtual std::size_t tableIndex(Addr pc) const = 0;

    /** Number of table entries. */
    virtual std::size_t tableSize() const = 0;
};

/** Classic 2-bit-counter bimodal predictor. */
class BimodalPredictor : public BranchPredictor
{
  public:
    /** @p table_bits log2 of the number of counters. */
    explicit BimodalPredictor(unsigned table_bits);

    bool predict(Addr pc) const override;
    void update(Addr pc, bool taken) override;
    void reset() override;
    std::size_t tableIndex(Addr pc) const override { return indexHot(pc); }
    std::size_t tableSize() const override { return counters_.size(); }

    /**
     * Header-inline, non-virtual twins of predict()/update() for the
     * simulator fast path (the virtual methods delegate here).  The
     * fast path resolves the concrete predictor once per run and calls
     * these directly, skipping the per-branch virtual dispatch.
     */
    bool predictHot(Addr pc) const { return counters_[indexHot(pc)] >= 2; }
    void updateHot(Addr pc, bool taken)
    {
        std::uint8_t &c = counters_[indexHot(pc)];
        if (taken && c < 3)
            ++c;
        else if (!taken && c > 0)
            --c;
    }

  private:
    std::size_t index(Addr pc) const;

    std::size_t indexHot(Addr pc) const
    {
        // Variable-length ISA: no bits are guaranteed zero, use the
        // low bits directly (as real fetch-address-indexed tables do).
        return std::size_t(pc ^ (pc >> tableBits_)) & mask(tableBits_);
    }

    unsigned tableBits_;
    std::vector<std::uint8_t> counters_;
};

/** Gshare: global history XOR-folded into the table index. */
class GsharePredictor : public BranchPredictor
{
  public:
    GsharePredictor(unsigned table_bits, unsigned history_bits);

    bool predict(Addr pc) const override;
    void update(Addr pc, bool taken) override;
    void reset() override;
    std::size_t tableIndex(Addr pc) const override { return indexHot(pc); }
    std::size_t tableSize() const override { return counters_.size(); }

    /** Non-virtual fast-path twins; see BimodalPredictor. */
    bool predictHot(Addr pc) const { return counters_[indexHot(pc)] >= 2; }
    void updateHot(Addr pc, bool taken)
    {
        std::uint8_t &c = counters_[indexHot(pc)];
        if (taken && c < 3)
            ++c;
        else if (!taken && c > 0)
            --c;
        history_ = (history_ << 1) | (taken ? 1 : 0);
    }

  private:
    std::size_t index(Addr pc) const;

    std::size_t indexHot(Addr pc) const
    {
        const std::uint64_t h = history_ & mask(historyBits_);
        return std::size_t((pc ^ (pc >> tableBits_) ^ h)) & mask(tableBits_);
    }

    unsigned tableBits_;
    unsigned historyBits_;
    std::uint64_t history_ = 0;
    std::vector<std::uint8_t> counters_;
};

/**
 * Branch target buffer: a set-associative cache of branch target
 * addresses.  A taken control transfer whose target is absent costs a
 * fetch bubble.
 */
class Btb
{
  public:
    Btb(unsigned sets, unsigned ways);

    /** True iff pc hits with the correct target; updates the entry. */
    bool lookupAndUpdate(Addr pc, Addr target);

    /** Header-inline twin of lookupAndUpdate() for the simulator fast
     *  path; the out-of-line method delegates here. */
    bool lookupAndUpdateHot(Addr pc, Addr target)
    {
        const std::size_t set = std::size_t(pc ^ (pc >> 16)) & (sets_ - 1);
        const std::size_t base = set * ways_;
        for (unsigned w = 0; w < ways_; ++w) {
            Entry &e = entries_[base + w];
            if (e.valid && e.pc == pc) {
                const bool correct = e.target == target;
                // Move to MRU and refresh the target.
                Entry updated = e;
                updated.target = target;
                for (unsigned k = w; k > 0; --k)
                    entries_[base + k] = entries_[base + k - 1];
                entries_[base] = updated;
                if (correct) {
                    ++hits_;
                    return true;
                }
                ++misses_;
                return false;
            }
        }
        // Install at MRU.
        for (unsigned k = ways_ - 1; k > 0; --k)
            entries_[base + k] = entries_[base + k - 1];
        entries_[base] = Entry{pc, target, true};
        ++misses_;
        return false;
    }

    void reset();

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

    /** Set the control transfer at @p pc maps to (for attribution). */
    std::size_t setIndex(Addr pc) const
    {
        return std::size_t(pc ^ (pc >> 16)) & (sets_ - 1);
    }

    unsigned sets() const { return sets_; }

  private:
    struct Entry
    {
        Addr pc = 0;
        Addr target = 0;
        bool valid = false;
    };

    unsigned sets_;
    unsigned ways_;
    std::vector<Entry> entries_; ///< MRU-ordered within each set

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace mbias::uarch

#endif // MBIAS_UARCH_BRANCH_HH
