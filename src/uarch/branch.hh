#ifndef MBIAS_UARCH_BRANCH_HH
#define MBIAS_UARCH_BRANCH_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "base/types.hh"

namespace mbias::uarch
{

/**
 * Direction predictor interface.  Predictors index prediction tables
 * with (hashed) branch addresses, so distinct branches can alias — and
 * *which* branches alias depends on where the linker put them.  That
 * address dependence is one of the causal mechanisms behind link-order
 * measurement bias.
 */
class BranchPredictor
{
  public:
    virtual ~BranchPredictor() = default;

    /** Predicted direction for the branch at @p pc. */
    virtual bool predict(Addr pc) const = 0;

    /** Trains the predictor with the resolved direction. */
    virtual void update(Addr pc, bool taken) = 0;

    /** Clears all state. */
    virtual void reset() = 0;
};

/** Classic 2-bit-counter bimodal predictor. */
class BimodalPredictor : public BranchPredictor
{
  public:
    /** @p table_bits log2 of the number of counters. */
    explicit BimodalPredictor(unsigned table_bits);

    bool predict(Addr pc) const override;
    void update(Addr pc, bool taken) override;
    void reset() override;

  private:
    std::size_t index(Addr pc) const;

    unsigned tableBits_;
    std::vector<std::uint8_t> counters_;
};

/** Gshare: global history XOR-folded into the table index. */
class GsharePredictor : public BranchPredictor
{
  public:
    GsharePredictor(unsigned table_bits, unsigned history_bits);

    bool predict(Addr pc) const override;
    void update(Addr pc, bool taken) override;
    void reset() override;

  private:
    std::size_t index(Addr pc) const;

    unsigned tableBits_;
    unsigned historyBits_;
    std::uint64_t history_ = 0;
    std::vector<std::uint8_t> counters_;
};

/**
 * Branch target buffer: a set-associative cache of branch target
 * addresses.  A taken control transfer whose target is absent costs a
 * fetch bubble.
 */
class Btb
{
  public:
    Btb(unsigned sets, unsigned ways);

    /** True iff pc hits with the correct target; updates the entry. */
    bool lookupAndUpdate(Addr pc, Addr target);

    void reset();

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

  private:
    struct Entry
    {
        Addr pc = 0;
        Addr target = 0;
        bool valid = false;
    };

    unsigned sets_;
    unsigned ways_;
    std::vector<Entry> entries_; ///< MRU-ordered within each set

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace mbias::uarch

#endif // MBIAS_UARCH_BRANCH_HH
