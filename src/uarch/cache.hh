#ifndef MBIAS_UARCH_CACHE_HH
#define MBIAS_UARCH_CACHE_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"

namespace mbias::uarch
{

/** Geometry and latency of one cache level. */
struct CacheConfig
{
    unsigned sets = 64;
    unsigned ways = 8;
    unsigned lineBytes = 64;
    Cycles hitLatency = 3;    ///< charged on loads (pipelined for code)
    Cycles missPenalty = 12;  ///< additional cycles to the next level

    std::uint64_t capacityBytes() const
    {
        return std::uint64_t(sets) * ways * lineBytes;
    }
};

/**
 * A set-associative, write-allocate, LRU cache model.
 *
 * Only tags are modelled (data values live in the simulator's
 * functional memory).  Placement is purely address-indexed, which is
 * what makes the model sensitive to code and data layout: two hot
 * objects whose addresses share index bits conflict, and whether they
 * do depends on link order and stack placement.
 */
class Cache
{
  public:
    /** Outcome of one access. */
    struct Result
    {
        unsigned misses = 0; ///< 0, 1, or 2 (line-crossing access)
        bool split = false;  ///< the access crossed a line boundary
    };

    explicit Cache(const CacheConfig &config);

    /**
     * Touches [addr, addr+size); returns how many distinct line fills
     * were needed and whether the access straddled two lines.
     */
    Result access(Addr addr, unsigned size);

    /** Touches a single line (instruction-fetch style). */
    bool accessLine(Addr addr); ///< returns true on hit

    /**
     * Header-inline twin of accessLine() for the simulator fast path.
     * Same algorithm on the same state (the out-of-line methods
     * delegate here), so the two are bitwise interchangeable; inlining
     * it into the interpreter loop removes the per-access call.  The
     * low line-offset bits of @p addr are discarded by the tag shift,
     * so pre-aligning the address is unnecessary.
     */
    bool accessLineHot(Addr addr)
    {
        const std::uint64_t set = (addr >> setShift_) & setMask_;
        const std::uint64_t tag = addr >> setShift_;
        const std::size_t base = std::size_t(set) * config_.ways;

        for (unsigned w = 0; w < config_.ways; ++w) {
            if (valid_[base + w] && tags_[base + w] == tag) {
                // Move to MRU position.
                for (unsigned k = w; k > 0; --k) {
                    tags_[base + k] = tags_[base + k - 1];
                    valid_[base + k] = valid_[base + k - 1];
                }
                tags_[base] = tag;
                valid_[base] = true;
                ++hits_;
                return true;
            }
        }
        // Miss: install at MRU, evicting LRU.
        for (unsigned k = config_.ways - 1; k > 0; --k) {
            tags_[base + k] = tags_[base + k - 1];
            valid_[base + k] = valid_[base + k - 1];
        }
        tags_[base] = tag;
        valid_[base] = true;
        ++misses_;
        return false;
    }

    /** Invalidates all lines and clears statistics. */
    void reset();

    /** Invalidates one set (index modulo the set count); models the
     *  cache pollution of an OS interrupt handler. */
    void invalidateSet(std::uint64_t set);

    /** Number of sets (for external eviction choices). */
    unsigned sets() const { return config_.sets; }

    /** Set the address maps to (for external attribution). */
    std::size_t setIndex(Addr addr) const
    {
        return std::size_t((addr >> setShift_) & setMask_);
    }

    const CacheConfig &config() const { return config_; }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t splits() const { return splits_; }

  private:
    bool touchLine(Addr line_addr); ///< returns true on hit

    CacheConfig config_;
    unsigned setShift_;
    std::uint64_t setMask_;

    /** tags_[set * ways + way]; ways ordered most- to least-recent. */
    std::vector<std::uint64_t> tags_;
    std::vector<bool> valid_;

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t splits_ = 0;
};

} // namespace mbias::uarch

#endif // MBIAS_UARCH_CACHE_HH
