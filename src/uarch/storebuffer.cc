#include "uarch/storebuffer.hh"

#include "base/bitutils.hh"
#include "base/logging.hh"

namespace mbias::uarch
{

StoreBuffer::StoreBuffer(unsigned entries, unsigned alias_window_bits,
                         std::uint64_t max_age_insts)
    : entries_(entries), aliasMask_(mask(alias_window_bits)),
      maxAge_(max_age_insts)
{
    mbias_assert(entries >= 1, "store buffer needs an entry");
    ring_.assign(entries, Entry{});
}

void
StoreBuffer::reset()
{
    std::fill(ring_.begin(), ring_.end(), Entry{});
    head_ = 0;
}

void
StoreBuffer::recordStore(Addr addr, unsigned size, std::uint64_t icount)
{
    ring_[head_] = Entry{addr, size, icount, true};
    head_ = (head_ + 1) % entries_;
}

bool
StoreBuffer::loadAliases(Addr addr, unsigned size, std::uint64_t icount) const
{
    for (const Entry &e : ring_) {
        if (!e.valid || e.icount + maxAge_ < icount)
            continue;
        if ((e.addr & aliasMask_) != (addr & aliasMask_))
            continue;
        if (e.addr == addr && e.size >= size)
            return false; // clean store-to-load forwarding
        return true;      // false (or partial) alias: stall
    }
    return false;
}

} // namespace mbias::uarch
