#include "uarch/storebuffer.hh"

#include "base/bitutils.hh"
#include "base/logging.hh"

namespace mbias::uarch
{

StoreBuffer::StoreBuffer(unsigned entries, unsigned alias_window_bits,
                         std::uint64_t max_age_insts)
    : entries_(entries), aliasMask_(mask(alias_window_bits)),
      maxAge_(max_age_insts)
{
    mbias_assert(entries >= 1, "store buffer needs an entry");
    ring_.assign(entries, Entry{});
}

void
StoreBuffer::reset()
{
    std::fill(ring_.begin(), ring_.end(), Entry{});
    head_ = 0;
}

void
StoreBuffer::recordStore(Addr addr, unsigned size, std::uint64_t icount)
{
    recordStoreHot(addr, size, icount);
}

bool
StoreBuffer::loadAliases(Addr addr, unsigned size, std::uint64_t icount) const
{
    return loadAliasesHot(addr, size, icount);
}

} // namespace mbias::uarch
