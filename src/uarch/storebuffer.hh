#ifndef MBIAS_UARCH_STOREBUFFER_HH
#define MBIAS_UARCH_STOREBUFFER_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"

namespace mbias::uarch
{

/**
 * A small in-flight store queue that models the classic "4K aliasing"
 * false dependence: a load whose address matches an in-flight store in
 * the low 12 bits — but is actually a different line — is conservatively
 * stalled by the memory pipeline (notoriously expensive on the
 * Pentium 4).  Whether the stack and the globals collide modulo 4 KiB
 * depends on the environment size, which is precisely the paper's
 * env-size bias mechanism.
 *
 * Entries expire: a store only stays "in flight" for a bounded number
 * of subsequent instructions (it retires), so a load can alias only
 * with recent stores.
 */
class StoreBuffer
{
  public:
    /**
     * @p entries in-flight stores are tracked; @p alias_window_bits is
     * the number of low address bits compared (12 => 4 KiB aliasing);
     * @p max_age_insts is the instruction distance after which a store
     * counts as retired.
     */
    StoreBuffer(unsigned entries, unsigned alias_window_bits = 12,
                std::uint64_t max_age_insts = 40);

    /** Records a store to [addr, addr+size) at instruction @p icount. */
    void recordStore(Addr addr, unsigned size, std::uint64_t icount);

    /**
     * Checks a load at instruction @p icount against in-flight stores.
     * Returns true when the load falsely aliases (same low bits,
     * different address), which costs the machine's alias penalty.
     * Exact (same-address, covering) forwarding is free.
     */
    bool loadAliases(Addr addr, unsigned size, std::uint64_t icount) const;

    /** Drains all in-flight stores. */
    void reset();

    unsigned entries() const { return entries_; }
    std::uint64_t aliasMask() const { return aliasMask_; }
    std::uint64_t maxAge() const { return maxAge_; }

    /**
     * Header-inline twins of recordStore()/loadAliases() for the
     * simulator fast path.  The out-of-line methods delegate here, so
     * ring state and aliasing outcomes are identical on both paths;
     * inlining removes the per-store/per-load call from the
     * interpreter loop.
     */
    void recordStoreHot(Addr addr, unsigned size, std::uint64_t icount)
    {
        ring_[head_] = Entry{addr, size, icount, true};
        head_ = (head_ + 1) % entries_;
    }

    bool loadAliasesHot(Addr addr, unsigned size, std::uint64_t icount) const
    {
        for (const Entry &e : ring_) {
            if (!e.valid || e.icount + maxAge_ < icount)
                continue;
            if ((e.addr & aliasMask_) != (addr & aliasMask_))
                continue;
            if (e.addr == addr && e.size >= size)
                return false; // clean store-to-load forwarding
            return true;      // false (or partial) alias: stall
        }
        return false;
    }

  private:
    struct Entry
    {
        Addr addr = 0;
        unsigned size = 0;
        std::uint64_t icount = 0;
        bool valid = false;
    };

    unsigned entries_;
    std::uint64_t aliasMask_;
    std::uint64_t maxAge_;
    std::vector<Entry> ring_;
    std::size_t head_ = 0;
};

} // namespace mbias::uarch

#endif // MBIAS_UARCH_STOREBUFFER_HH
