#ifndef MBIAS_UARCH_TLB_HH
#define MBIAS_UARCH_TLB_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"

namespace mbias::uarch
{

/** Geometry and penalty of a TLB. */
struct TlbConfig
{
    unsigned entries = 64;
    unsigned pageBytes = 4096;
    Cycles missPenalty = 30;
};

/**
 * Fully associative, LRU translation lookaside buffer.  The
 * environment-size factor moves the stack within and across pages, so
 * the number of distinct pages a frame touches — and hence DTLB
 * pressure — varies with a setup detail no paper reports.
 */
class Tlb
{
  public:
    explicit Tlb(const TlbConfig &config);

    /** Touches the page(s) covering [addr, addr+size); returns misses. */
    unsigned access(Addr addr, unsigned size);

    /**
     * Header-inline twin of access() for the simulator fast path,
     * taking pre-computed first/last virtual page numbers.  access()
     * delegates here, so both produce identical TLB state and
     * statistics; the fast path computes the VPNs with a shift where
     * the reference divides by the configured page size.
     */
    unsigned accessVpnsHot(std::uint64_t first_vpn, std::uint64_t last_vpn)
    {
        unsigned miss_count = 0;
        if (!touchPageHot(first_vpn))
            ++miss_count;
        if (last_vpn != first_vpn && !touchPageHot(last_vpn))
            ++miss_count;
        return miss_count;
    }

    /** log2(pageBytes); lets callers of accessVpnsHot() shift. */
    unsigned pageShift() const { return pageShift_; }

    /** Invalidates all entries and clears statistics. */
    void reset();

    const TlbConfig &config() const { return config_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

  private:
    bool touchPage(std::uint64_t vpn);

    /** Inline body shared by touchPage() and accessVpnsHot(). */
    bool touchPageHot(std::uint64_t vpn)
    {
        for (unsigned e = 0; e < config_.entries; ++e) {
            if (valid_[e] && vpns_[e] == vpn) {
                for (unsigned k = e; k > 0; --k) {
                    vpns_[k] = vpns_[k - 1];
                    valid_[k] = valid_[k - 1];
                }
                vpns_[0] = vpn;
                valid_[0] = true;
                ++hits_;
                return true;
            }
        }
        for (unsigned k = config_.entries - 1; k > 0; --k) {
            vpns_[k] = vpns_[k - 1];
            valid_[k] = valid_[k - 1];
        }
        vpns_[0] = vpn;
        valid_[0] = true;
        ++misses_;
        return false;
    }

    TlbConfig config_;
    unsigned pageShift_;
    /** Virtual page numbers, most- to least-recently used. */
    std::vector<std::uint64_t> vpns_;
    std::vector<bool> valid_;

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace mbias::uarch

#endif // MBIAS_UARCH_TLB_HH
