#ifndef MBIAS_UARCH_TLB_HH
#define MBIAS_UARCH_TLB_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"

namespace mbias::uarch
{

/** Geometry and penalty of a TLB. */
struct TlbConfig
{
    unsigned entries = 64;
    unsigned pageBytes = 4096;
    Cycles missPenalty = 30;
};

/**
 * Fully associative, LRU translation lookaside buffer.  The
 * environment-size factor moves the stack within and across pages, so
 * the number of distinct pages a frame touches — and hence DTLB
 * pressure — varies with a setup detail no paper reports.
 */
class Tlb
{
  public:
    explicit Tlb(const TlbConfig &config);

    /** Touches the page(s) covering [addr, addr+size); returns misses. */
    unsigned access(Addr addr, unsigned size);

    /** Invalidates all entries and clears statistics. */
    void reset();

    const TlbConfig &config() const { return config_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

  private:
    bool touchPage(std::uint64_t vpn);

    TlbConfig config_;
    unsigned pageShift_;
    /** Virtual page numbers, most- to least-recently used. */
    std::vector<std::uint64_t> vpns_;
    std::vector<bool> valid_;

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace mbias::uarch

#endif // MBIAS_UARCH_TLB_HH
