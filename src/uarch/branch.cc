#include "uarch/branch.hh"

#include "base/bitutils.hh"
#include "base/logging.hh"

namespace mbias::uarch
{

// ---------------------------------------------------------------------
// BimodalPredictor
// ---------------------------------------------------------------------

BimodalPredictor::BimodalPredictor(unsigned table_bits)
    : tableBits_(table_bits)
{
    mbias_assert(table_bits >= 1 && table_bits <= 24,
                 "unreasonable bimodal table size");
    counters_.assign(std::size_t(1) << table_bits, 2); // weakly taken
}

std::size_t
BimodalPredictor::index(Addr pc) const
{
    // Variable-length ISA: no bits are guaranteed zero, use the low
    // bits directly (as real fetch-address-indexed tables do).
    return std::size_t(pc ^ (pc >> tableBits_)) & mask(tableBits_);
}

bool
BimodalPredictor::predict(Addr pc) const
{
    return counters_[index(pc)] >= 2;
}

void
BimodalPredictor::update(Addr pc, bool taken)
{
    std::uint8_t &c = counters_[index(pc)];
    if (taken && c < 3)
        ++c;
    else if (!taken && c > 0)
        --c;
}

void
BimodalPredictor::reset()
{
    std::fill(counters_.begin(), counters_.end(), 2);
}

// ---------------------------------------------------------------------
// GsharePredictor
// ---------------------------------------------------------------------

GsharePredictor::GsharePredictor(unsigned table_bits, unsigned history_bits)
    : tableBits_(table_bits), historyBits_(history_bits)
{
    mbias_assert(table_bits >= 1 && table_bits <= 24,
                 "unreasonable gshare table size");
    mbias_assert(history_bits <= table_bits,
                 "history longer than index");
    counters_.assign(std::size_t(1) << table_bits, 2);
}

std::size_t
GsharePredictor::index(Addr pc) const
{
    const std::uint64_t h = history_ & mask(historyBits_);
    return std::size_t((pc ^ (pc >> tableBits_) ^ h)) & mask(tableBits_);
}

bool
GsharePredictor::predict(Addr pc) const
{
    return counters_[index(pc)] >= 2;
}

void
GsharePredictor::update(Addr pc, bool taken)
{
    std::uint8_t &c = counters_[index(pc)];
    if (taken && c < 3)
        ++c;
    else if (!taken && c > 0)
        --c;
    history_ = (history_ << 1) | (taken ? 1 : 0);
}

void
GsharePredictor::reset()
{
    std::fill(counters_.begin(), counters_.end(), 2);
    history_ = 0;
}

// ---------------------------------------------------------------------
// Btb
// ---------------------------------------------------------------------

Btb::Btb(unsigned sets, unsigned ways) : sets_(sets), ways_(ways)
{
    mbias_assert(isPowerOf2(sets), "BTB sets must be a power of two");
    mbias_assert(ways >= 1, "BTB needs at least one way");
    entries_.assign(std::size_t(sets) * ways, Entry{});
}

void
Btb::reset()
{
    std::fill(entries_.begin(), entries_.end(), Entry{});
    hits_ = misses_ = 0;
}

bool
Btb::lookupAndUpdate(Addr pc, Addr target)
{
    const std::size_t set = std::size_t(pc ^ (pc >> 16)) & (sets_ - 1);
    const std::size_t base = set * ways_;
    for (unsigned w = 0; w < ways_; ++w) {
        Entry &e = entries_[base + w];
        if (e.valid && e.pc == pc) {
            const bool correct = e.target == target;
            // Move to MRU and refresh the target.
            Entry updated = e;
            updated.target = target;
            for (unsigned k = w; k > 0; --k)
                entries_[base + k] = entries_[base + k - 1];
            entries_[base] = updated;
            if (correct) {
                ++hits_;
                return true;
            }
            ++misses_;
            return false;
        }
    }
    // Install at MRU.
    for (unsigned k = ways_ - 1; k > 0; --k)
        entries_[base + k] = entries_[base + k - 1];
    entries_[base] = Entry{pc, target, true};
    ++misses_;
    return false;
}

} // namespace mbias::uarch
