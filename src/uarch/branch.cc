#include "uarch/branch.hh"

#include "base/bitutils.hh"
#include "base/logging.hh"

namespace mbias::uarch
{

// ---------------------------------------------------------------------
// BimodalPredictor
// ---------------------------------------------------------------------

BimodalPredictor::BimodalPredictor(unsigned table_bits)
    : tableBits_(table_bits)
{
    mbias_assert(table_bits >= 1 && table_bits <= 24,
                 "unreasonable bimodal table size");
    counters_.assign(std::size_t(1) << table_bits, 2); // weakly taken
}

std::size_t
BimodalPredictor::index(Addr pc) const
{
    return indexHot(pc);
}

bool
BimodalPredictor::predict(Addr pc) const
{
    return predictHot(pc);
}

void
BimodalPredictor::update(Addr pc, bool taken)
{
    updateHot(pc, taken);
}

void
BimodalPredictor::reset()
{
    std::fill(counters_.begin(), counters_.end(), 2);
}

// ---------------------------------------------------------------------
// GsharePredictor
// ---------------------------------------------------------------------

GsharePredictor::GsharePredictor(unsigned table_bits, unsigned history_bits)
    : tableBits_(table_bits), historyBits_(history_bits)
{
    mbias_assert(table_bits >= 1 && table_bits <= 24,
                 "unreasonable gshare table size");
    mbias_assert(history_bits <= table_bits,
                 "history longer than index");
    counters_.assign(std::size_t(1) << table_bits, 2);
}

std::size_t
GsharePredictor::index(Addr pc) const
{
    return indexHot(pc);
}

bool
GsharePredictor::predict(Addr pc) const
{
    return predictHot(pc);
}

void
GsharePredictor::update(Addr pc, bool taken)
{
    updateHot(pc, taken);
}

void
GsharePredictor::reset()
{
    std::fill(counters_.begin(), counters_.end(), 2);
    history_ = 0;
}

// ---------------------------------------------------------------------
// Btb
// ---------------------------------------------------------------------

Btb::Btb(unsigned sets, unsigned ways) : sets_(sets), ways_(ways)
{
    mbias_assert(isPowerOf2(sets), "BTB sets must be a power of two");
    mbias_assert(ways >= 1, "BTB needs at least one way");
    entries_.assign(std::size_t(sets) * ways, Entry{});
}

void
Btb::reset()
{
    std::fill(entries_.begin(), entries_.end(), Entry{});
    hits_ = misses_ = 0;
}

bool
Btb::lookupAndUpdate(Addr pc, Addr target)
{
    return lookupAndUpdateHot(pc, target);
}

} // namespace mbias::uarch
