#include "uarch/cache.hh"

#include "base/bitutils.hh"
#include "base/logging.hh"

namespace mbias::uarch
{

Cache::Cache(const CacheConfig &config) : config_(config)
{
    mbias_assert(isPowerOf2(config.sets), "sets must be a power of two");
    mbias_assert(isPowerOf2(config.lineBytes),
                 "line size must be a power of two");
    mbias_assert(config.ways >= 1, "cache needs at least one way");
    setShift_ = floorLog2(config.lineBytes);
    setMask_ = config.sets - 1;
    tags_.assign(std::size_t(config.sets) * config.ways, 0);
    valid_.assign(tags_.size(), false);
}

void
Cache::reset()
{
    std::fill(valid_.begin(), valid_.end(), false);
    hits_ = misses_ = splits_ = 0;
}

void
Cache::invalidateSet(std::uint64_t set)
{
    const std::size_t base = std::size_t(set % config_.sets) * config_.ways;
    for (unsigned w = 0; w < config_.ways; ++w)
        valid_[base + w] = false;
}

bool
Cache::touchLine(Addr line_addr)
{
    return accessLineHot(line_addr);
}

Cache::Result
Cache::access(Addr addr, unsigned size)
{
    mbias_assert(size > 0, "zero-size cache access");
    Result r;
    const Addr first = alignDown(addr, config_.lineBytes);
    const Addr last = alignDown(addr + size - 1, config_.lineBytes);
    if (!touchLine(first))
        ++r.misses;
    if (last != first) {
        r.split = true;
        ++splits_;
        if (!touchLine(last))
            ++r.misses;
    }
    return r;
}

bool
Cache::accessLine(Addr addr)
{
    return touchLine(alignDown(addr, config_.lineBytes));
}

} // namespace mbias::uarch
