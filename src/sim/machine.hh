#ifndef MBIAS_SIM_MACHINE_HH
#define MBIAS_SIM_MACHINE_HH

#include <array>
#include <cstdint>
#include <memory>

#include "sim/config.hh"
#include "sim/counters.hh"
#include "sim/noise.hh"
#include "sim/profile.hh"
#include "sim/memory.hh"
#include "sim/registry.hh"
#include "toolchain/loader.hh"
#include "uarch/branch.hh"
#include "uarch/cache.hh"
#include "uarch/storebuffer.hh"
#include "uarch/tlb.hh"

namespace mbias::sim
{

struct ExecutionPlan;   // sim/plan.hh
struct TracePlan;       // sim/trace.hh
struct Attribution;     // sim/attribution.hh
struct FunctionalTrace; // sim/replay.hh

/**
 * Human-readable description of the sim tier run() would pick for a
 * plain deterministic run right now — build flags and environment
 * escape hatches folded in (e.g. "trace", or "fast (MBIAS_SIM_TRACE=0)",
 * or "reference (-DMBIAS_SIM_FASTPATH=OFF)").  Recorded by `mbias
 * list`/`mbias workloads` so provenance explains perf deltas between
 * hosts.
 */
std::string activeSimTierDescription();

/** True when MBIAS_SIM_REFERENCE forces the reference interpreter for
 *  this process (re-read per run). */
bool referenceForcedByEnv();

class Machine;

/**
 * True when every switch between here and the hardware allows the
 * superblock trace tier for @p machine: built in (-DMBIAS_SIM_TRACE=ON
 * over an enabled fast path), not vetoed by MBIAS_SIM_TRACE=0 or
 * MBIAS_SIM_REFERENCE, the machine's own fast/trace toggles on, *and*
 * the machine's backend declares trace support (MachineRegistry) — the
 * tier's batch guards assume the OoO window model, so in-order cores
 * fall back to the plain fast path.  The replay tier's
 * precondition-fallback pattern (replayTierUsable), applied to trace.
 */
bool traceTierUsable(const Machine &machine);

/** Outcome of one simulated program run. */
struct RunResult
{
    PerfCounters counters;
    bool halted = false;        ///< reached Halt (vs. hit maxInsts)
    std::uint64_t result = 0;   ///< value of a0 (x10) at Halt

    /** Bitwise equality over every counter — the fast path's contract. */
    bool operator==(const RunResult &) const = default;

    Cycles cycles() const { return counters.get(Counter::Cycles); }
    std::uint64_t instructions() const
    {
        return counters.get(Counter::Instructions);
    }
    double cpi() const { return counters.cpi(); }
};

/**
 * A simulated machine: functional µRISC execution plus a deterministic
 * timing model with address-sensitive components (fetch blocks, caches,
 * TLBs, branch predictor, BTB, store buffer).
 *
 * The timing model is a coarse cycle accounting over a shared
 * execution spine (decode, dataflow, memory hierarchy, shadow
 * structures) with a per-backend CoreModel policy on top
 * (config.core): the out-of-order policy charges producer-consumer
 * stalls beyond what the OoO window can hide, the in-order policy
 * exposes every stall cycle, blocks issue behind multi-cycle ALU ops,
 * and pays a refetch on taken transfers into the middle of a fetch
 * block.  Both charge fetch-group cycles (fetchWidth per aligned fetch
 * block) and event penalties (mispredicts, cache/TLB misses, line
 * splits, 4K-alias stalls).  Every one of those penalties depends on
 * *addresses*, so the measured cycle count responds to link order and
 * environment size exactly the way the paper's hardware does.
 *
 * Determinism: given the same ProcessImage and config, run() returns
 * bit-identical results.  All components start cold on each run().
 *
 * Three tiers implement run().  The *reference* interpreter walks the
 * linker's PlacedInst records directly; the *fast path* walks a
 * cached ExecutionPlan (sim/plan.hh) — dense pre-decoded operands, a
 * straight-line lane for simple runs, an O(1) return-address table —
 * performing the identical component accesses in the identical order,
 * so its RunResult is bitwise equal by construction.  The *trace
 * tier* (sim/trace.hh) runs the fast loop over a TracePlan whose hot
 * superblocks apply pre-batched effects in one step, guarded so the
 * result stays bitwise equal.  Fast tiers are taken only for
 * noise-free, unprofiled runs; they can be disabled per machine
 * (setUseFastPath(false) / setUseTracePath(false)), per process
 * (MBIAS_SIM_REFERENCE=1 / MBIAS_SIM_TRACE=0 in the environment), or
 * at build time (-DMBIAS_SIM_FASTPATH=OFF / -DMBIAS_SIM_TRACE=OFF).
 *
 * A fourth tier, *record/replay* (sim/replay.hh), serves repetition
 * families: runRecord() executes one instrumented fast/trace-tier run
 * (noise allowed — the functional stream is noise-independent) that
 * captures branch outcomes, return targets, resolved memory addresses,
 * and the final architectural state into a FunctionalTrace;
 * runReplay() then re-runs *only the timing models* over that stream
 * under a fresh noise seed, machine geometry, or ASLR stack base,
 * skipping functional execution.  Its hatches mirror the others:
 * setUseReplayPath(false), MBIAS_SIM_REPLAY=0, -DMBIAS_SIM_REPLAY=OFF.
 */
class Machine
{
  public:
    explicit Machine(const MachineConfig &config);

    /** Default instruction budget for run() — shared with every
     *  ExperimentRunner call site so budget changes can't skew one
     *  path silently. */
    static constexpr std::uint64_t kDefaultRunBudget = 500'000'000;

    /** Runs the image to Halt (or @p max_insts).  A NoiseModel adds
     *  seeded run-to-run variation (OS-interrupt jitter); the default
     *  disabled model keeps runs bit-deterministic.  An Attribution
     *  sink records per-set/per-entry event placement on the
     *  reference path (noise-free runs only; counters observe, never
     *  perturb — the RunResult is bitwise unchanged). */
    RunResult run(const toolchain::ProcessImage &image,
                  std::uint64_t max_insts = kDefaultRunBudget,
                  const NoiseModel &noise = NoiseModel::none(),
                  Profile *profile = nullptr,
                  Attribution *attribution = nullptr);

    /**
     * Record-once half of the replay tier: one fast/trace-tier run
     * that additionally captures the functional stream into @p *out.
     * The RunResult is bitwise identical to run() with the same
     * arguments.  Falls back to plain run() — leaving @p *out null —
     * when the tier is unusable (replayTierUsable()) or the stream
     * outgrows FunctionalTrace::kMaxBytes mid-run.
     */
    RunResult runRecord(const toolchain::ProcessImage &image,
                        std::uint64_t max_insts, const NoiseModel &noise,
                        std::shared_ptr<const FunctionalTrace> *out);

    /**
     * Replay-many half: re-runs only the timing models over @p trace
     * (which must match(image, max_insts)) under @p noise.  Stack
     * addresses are rebased by the image-vs-recording sp delta, so one
     * recording serves every ASLR draw.  The RunResult is bitwise
     * identical to run() with the same arguments.  Falls back to plain
     * run() when the tier is unusable.
     */
    RunResult runReplay(const toolchain::ProcessImage &image,
                        std::uint64_t max_insts, const NoiseModel &noise,
                        const FunctionalTrace &trace);

    const MachineConfig &config() const { return config_; }

    /** The backend's tier-capability declaration (sim/registry.hh). */
    const TierSupport &tierSupport() const { return tiers_; }

    /** Selects the plan-based fast interpreter (default on; results
     *  are bitwise identical either way). */
    void setUseFastPath(bool on) { useFastPath_ = on; }
    bool useFastPath() const { return useFastPath_; }

    /** Selects the superblock trace tier on top of the fast path
     *  (default on; results are bitwise identical either way).
     *  Ignored while the fast path is off. */
    void setUseTracePath(bool on) { useTracePath_ = on; }
    bool useTracePath() const { return useTracePath_; }

    /** Selects the record/replay tier for runRecord()/runReplay()
     *  (default on; off forces their plain-run() fallback).  Ignored
     *  while the fast path is off. */
    void setUseReplayPath(bool on) { useReplayPath_ = on; }
    bool useReplayPath() const { return useReplayPath_; }

  private:
    struct Pipeline; // per-run timing state

    /** How runPlanImpl treats the functional stream: execute it
     *  (Normal), execute and capture it (Record), or consume a
     *  captured one instead of executing (Replay). */
    enum class RunMode { Normal, Record, Replay };

    /** The plan-based interpreter behind run(); see class comment. */
    RunResult runFast(const toolchain::ProcessImage &image,
                      std::uint64_t max_insts, const ExecutionPlan &plan);

    /** The trace-tier interpreter: runFast's loop over a TracePlan's
     *  rewritten ops, with superblocks batched (sim/trace.hh). */
    RunResult
    runTrace(const toolchain::ProcessImage &image, std::uint64_t max_insts,
             const std::shared_ptr<const ExecutionPlan> &plan);

    /** Shared direct-threaded interpreter body behind runFast
     *  (Traced = false), runTrace (Traced = true), and the record/
     *  replay tier (Mode != Normal; @p rec receives the stream under
     *  Record, @p rep supplies it under Replay, and @p noise drives
     *  the reference-equivalent OS-interrupt model).  Core is the
     *  CoreModel policy (machine.cc: OooCore / InOrderCore) selected
     *  per backend at compile time: it decides stall exposure,
     *  multi-cycle issue blocking, and taken-redirect realignment at
     *  `if constexpr` points, so the execution spine (decode,
     *  dataflow, memory, shadow structures) is shared and each
     *  instantiation keeps its direct-threaded throughput. */
    template <bool Traced, RunMode Mode, class Core>
    RunResult runPlanImpl(const toolchain::ProcessImage &image,
                          std::uint64_t max_insts,
                          const ExecutionPlan &plan,
                          const TracePlan *tplan,
                          const NoiseModel &noise, FunctionalTrace *rec,
                          const FunctionalTrace *rep);

    /** Charges fetch/decode costs for the instruction at @p pc. */
    void fetchAccounting(Pipeline &pipe, Addr pc, unsigned size,
                         PerfCounters &ctrs);

    /** Data-side access: returns added load latency (0 for stores). */
    Cycles memoryAccess(Pipeline &pipe, Addr addr, unsigned size,
                        bool is_store, PerfCounters &ctrs);

    MachineConfig config_;
    /** The backend's tier-capability declaration, resolved once from
     *  the registry (ad-hoc configs inherit their core kind's). */
    TierSupport tiers_;

    uarch::Cache icache_;
    uarch::Cache dcache_;
    uarch::Cache l2_;
    uarch::Tlb itlb_;
    uarch::Tlb dtlb_;
    std::unique_ptr<uarch::BranchPredictor> predictor_;
    uarch::Btb btb_;
    uarch::StoreBuffer storeBuffer_;

    /** Live only inside run() when the caller passed an Attribution
     *  sink; lets fetchAccounting()/memoryAccess() record placement. */
    Attribution *attr_ = nullptr;

    bool useFastPath_ = true;
    bool useTracePath_ = true;
    bool useReplayPath_ = true;
};

} // namespace mbias::sim

#endif // MBIAS_SIM_MACHINE_HH
