#include "sim/profile.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "base/logging.hh"

namespace mbias::sim
{

std::vector<FunctionProfile>
Profile::byCycles() const
{
    std::vector<FunctionProfile> out = functions;
    std::sort(out.begin(), out.end(),
              [](const FunctionProfile &a, const FunctionProfile &b) {
                  return a.cycles > b.cycles;
              });
    return out;
}

Cycles
Profile::totalCycles() const
{
    Cycles total = 0;
    for (const auto &f : functions)
        total += f.cycles;
    return total;
}

const FunctionProfile &
Profile::of(const std::string &name) const
{
    for (const auto &f : functions)
        if (f.name == name)
            return f;
    mbias_panic("no profile for function ", name);
}

std::string
Profile::str(unsigned top) const
{
    const double total = double(totalCycles());
    std::ostringstream os;
    os << std::left << std::setw(16) << "function" << std::right
       << std::setw(8) << "cyc%" << std::setw(12) << "cycles"
       << std::setw(12) << "insts" << std::setw(8) << "i$miss"
       << std::setw(8) << "d$miss" << std::setw(8) << "mispred"
       << std::setw(8) << "splits" << "\n";
    unsigned shown = 0;
    for (const auto &f : byCycles()) {
        if (shown++ >= top)
            break;
        if (f.instructions == 0)
            continue;
        os << std::left << std::setw(16) << f.name << std::right
           << std::setw(7) << std::fixed << std::setprecision(1)
           << (total > 0 ? 100.0 * double(f.cycles) / total : 0.0) << "%"
           << std::setw(12) << f.cycles << std::setw(12)
           << f.instructions << std::setw(8) << f.icacheMisses
           << std::setw(8) << f.dcacheMisses << std::setw(8)
           << f.branchMispredicts << std::setw(8) << f.lineSplits
           << "\n";
    }
    return os.str();
}

} // namespace mbias::sim
