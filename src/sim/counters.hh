#ifndef MBIAS_SIM_COUNTERS_HH
#define MBIAS_SIM_COUNTERS_HH

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mbias::sim
{

/**
 * Hardware performance counter identities.  These play the role the
 * paper's perfmon2-read hardware counters play: the raw material of
 * causal analysis ("which event explains the cycle difference?").
 */
enum class Counter : unsigned
{
    Cycles,
    Instructions,
    FetchGroups,
    IcacheMisses,
    DcacheMisses,
    L2Misses,
    ItlbMisses,
    DtlbMisses,
    BranchesExecuted,
    TakenBranches,
    BranchMispredicts,
    BtbMisses,
    LineSplits,
    AliasStalls,
    StallCycles,
    Loads,
    Stores,
    Calls,
    NopsExecuted,
    OsInterrupts,
    PrefetchesIssued,

    NumCounters,
};

constexpr std::size_t num_counters = std::size_t(Counter::NumCounters);

/** Readable mnemonic of a counter (e.g. "dcache_misses"). */
std::string_view counterName(Counter c);

/** All counters, for iteration. */
const std::vector<Counter> &allCounters();

/** A bank of performance counters. */
class PerfCounters
{
  public:
    PerfCounters() { counts_.fill(0); }

    /** Bitwise equality over all counters (differential testing). */
    bool operator==(const PerfCounters &) const = default;

    std::uint64_t get(Counter c) const { return counts_[index(c)]; }
    void inc(Counter c, std::uint64_t by = 1) { counts_[index(c)] += by; }
    void set(Counter c, std::uint64_t v) { counts_[index(c)] = v; }
    void reset() { counts_.fill(0); }

    /** Per-thousand-instruction rate of @p c. */
    double ratePerKiloInst(Counter c) const;

    /** Cycles per instruction. */
    double cpi() const;

    /** Multi-line "perf stat" style rendering. */
    std::string str() const;

  private:
    static std::size_t index(Counter c) { return std::size_t(c); }

    std::array<std::uint64_t, num_counters> counts_;
};

} // namespace mbias::sim

#endif // MBIAS_SIM_COUNTERS_HH
