#include "sim/registry.hh"

namespace mbias::sim
{

namespace
{

/**
 * Capabilities implied by the core model alone.  The trace tier's
 * op_batch guards assume the OoO window hides intra-block latency
 * (sim/trace.cc builds rows under that model), so in-order cores fall
 * back to the plain fast path; the fast and replay tiers transcribe
 * the core policy exactly and work for every kind.
 */
TierSupport
tiersForKind(CoreKind kind)
{
    TierSupport t;
    t.trace = kind == CoreKind::OutOfOrder;
    return t;
}

} // namespace

const MachineRegistry &
MachineRegistry::global()
{
    static const MachineRegistry registry;
    return registry;
}

MachineRegistry::MachineRegistry()
{
    // Paper platforms first, in paper order (P4, Core 2, m5 O3CPU):
    // MachineConfig::allPresets() and every golden-pinned figure
    // iterate this prefix.
    add({MachineConfig::p4Like(), tiersForKind(CoreKind::OutOfOrder),
         true, "out-of-order"});
    add({MachineConfig::core2Like(), tiersForKind(CoreKind::OutOfOrder),
         true, "out-of-order"});
    add({MachineConfig::o3Like(), tiersForKind(CoreKind::OutOfOrder),
         true, "out-of-order"});
    // Non-paper backends extend the study beyond the paper's set.
    add({MachineConfig::inorderLike(), tiersForKind(CoreKind::InOrder),
         false, "in-order"});
}

void
MachineRegistry::add(MachineBackend backend)
{
    if (backend.paperPreset)
        paperPresets_.push_back(backend.config);
    names_.push_back(backend.config.name);
    if (!namesJoined_.empty())
        namesJoined_ += ", ";
    namesJoined_ += backend.config.name;
    backends_.push_back(std::move(backend));
}

const MachineBackend *
MachineRegistry::byName(const std::string &name) const
{
    for (const auto &b : backends_)
        if (b.config.name == name)
            return &b;
    return nullptr;
}

TierSupport
MachineRegistry::tiersFor(const MachineConfig &config)
{
    if (const auto *b = global().byName(config.name))
        if (b->config.core == config.core)
            return b->tiers;
    return tiersForKind(config.core);
}

const std::vector<MachineConfig> &
MachineConfig::allPresets()
{
    return MachineRegistry::global().paperPresets();
}

} // namespace mbias::sim
