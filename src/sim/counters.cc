#include "sim/counters.hh"

#include <sstream>

#include "base/logging.hh"

namespace mbias::sim
{

namespace
{

constexpr std::string_view names[] = {
    "cycles",          "instructions",      "fetch_groups",
    "icache_misses",   "dcache_misses",     "l2_misses",
    "itlb_misses",     "dtlb_misses",       "branches",
    "taken_branches",  "branch_mispredicts", "btb_misses",
    "line_splits",     "alias_stalls",      "stall_cycles",
    "loads",           "stores",            "calls",
    "nops",            "os_interrupts",    "prefetches",
};

static_assert(sizeof(names) / sizeof(names[0]) == num_counters,
              "counter name table out of sync");

} // namespace

std::string_view
counterName(Counter c)
{
    return names[std::size_t(c)];
}

const std::vector<Counter> &
allCounters()
{
    static const std::vector<Counter> all = [] {
        std::vector<Counter> v;
        for (unsigned i = 0; i < num_counters; ++i)
            v.push_back(Counter(i));
        return v;
    }();
    return all;
}

double
PerfCounters::ratePerKiloInst(Counter c) const
{
    const std::uint64_t insts = get(Counter::Instructions);
    mbias_assert(insts > 0, "no instructions executed");
    return double(get(c)) * 1000.0 / double(insts);
}

double
PerfCounters::cpi() const
{
    const std::uint64_t insts = get(Counter::Instructions);
    mbias_assert(insts > 0, "no instructions executed");
    return double(get(Counter::Cycles)) / double(insts);
}

std::string
PerfCounters::str() const
{
    std::ostringstream os;
    for (Counter c : allCounters())
        os << counterName(c) << " = " << get(c) << "\n";
    return os.str();
}

} // namespace mbias::sim
