#include "sim/attribution.hh"

#include <algorithm>
#include <cstdio>
#include <numeric>

namespace mbias::sim
{

void
SetCounters::configure(unsigned set_count, unsigned way_count)
{
    sets = set_count;
    ways = way_count;
    touches.assign(sets, 0);
    misses.assign(sets, 0);
    evictions.assign(sets, 0);
    occupancy_.assign(sets, 0);
}

void
SetCounters::clear()
{
    std::fill(touches.begin(), touches.end(), 0);
    std::fill(misses.begin(), misses.end(), 0);
    std::fill(evictions.begin(), evictions.end(), 0);
    std::fill(occupancy_.begin(), occupancy_.end(), 0);
}

std::uint64_t
SetCounters::totalTouches() const
{
    return std::accumulate(touches.begin(), touches.end(),
                           std::uint64_t(0));
}

std::uint64_t
SetCounters::totalMisses() const
{
    return std::accumulate(misses.begin(), misses.end(), std::uint64_t(0));
}

std::uint64_t
SetCounters::totalEvictions() const
{
    return std::accumulate(evictions.begin(), evictions.end(),
                           std::uint64_t(0));
}

std::size_t
SetCounters::hottestSet() const
{
    if (misses.empty())
        return 0;
    return std::size_t(std::max_element(misses.begin(), misses.end()) -
                       misses.begin());
}

void
TableCounters::configure(std::size_t entry_count)
{
    entries = entry_count;
    updates.assign(entries, 0);
    aliasSwitches.assign(entries, 0);
    pcs.assign(entries * kPcsPerEntry, 0);
    lastPc_.assign(entries, 0);
}

void
TableCounters::clear()
{
    std::fill(updates.begin(), updates.end(), 0);
    std::fill(aliasSwitches.begin(), aliasSwitches.end(), 0);
    std::fill(pcs.begin(), pcs.end(), 0);
    std::fill(lastPc_.begin(), lastPc_.end(), 0);
}

unsigned
TableCounters::distinctPcs(std::size_t idx) const
{
    const Addr *slot = &pcs[idx * kPcsPerEntry];
    unsigned n = 0;
    while (n < kPcsPerEntry && slot[n] != 0)
        ++n;
    return n;
}

std::uint64_t
TableCounters::totalAliasSwitches() const
{
    return std::accumulate(aliasSwitches.begin(), aliasSwitches.end(),
                           std::uint64_t(0));
}

std::size_t
TableCounters::hottestEntry() const
{
    if (aliasSwitches.empty())
        return 0;
    return std::size_t(std::max_element(aliasSwitches.begin(),
                                        aliasSwitches.end()) -
                       aliasSwitches.begin());
}

void
Attribution::configure(const MachineConfig &config)
{
    icache.configure(config.icache.sets, config.icache.ways);
    dcache.configure(config.dcache.sets, config.dcache.ways);

    const auto tlbBuckets = [](unsigned tlb_entries) {
        const unsigned buckets = std::min(kTlbBuckets, tlb_entries);
        return std::pair<unsigned, unsigned>(
            buckets, std::max(1u, tlb_entries / buckets));
    };
    const auto [ib, iw] = tlbBuckets(config.itlb.entries);
    itlb.configure(ib, iw);
    const auto [db, dw] = tlbBuckets(config.dtlb.entries);
    dtlb.configure(db, dw);

    pht.configure(std::size_t(1) << config.predictorTableBits);
    btb.configure(config.btbSets);
}

void
Attribution::clear()
{
    icache.clear();
    dcache.clear();
    itlb.clear();
    dtlb.clear();
    pht.clear();
    btb.clear();
}

std::string
Attribution::str() const
{
    char buf[256];
    std::string out;
    const auto setLine = [&](const char *name, const SetCounters &s) {
        std::snprintf(buf, sizeof buf,
                      "  %-6s sets=%-4u touches=%-10llu misses=%-8llu "
                      "evictions=%-8llu hottest=set %zu\n",
                      name, s.sets,
                      (unsigned long long)s.totalTouches(),
                      (unsigned long long)s.totalMisses(),
                      (unsigned long long)s.totalEvictions(),
                      s.hottestSet());
        out += buf;
    };
    const auto tblLine = [&](const char *name, const TableCounters &t) {
        const std::size_t hot = t.hottestEntry();
        std::snprintf(buf, sizeof buf,
                      "  %-6s entries=%-5zu alias-switches=%-8llu "
                      "hottest=entry %zu (%u pcs)\n",
                      name, t.entries,
                      (unsigned long long)t.totalAliasSwitches(), hot,
                      t.entries ? t.distinctPcs(hot) : 0);
        out += buf;
    };
    out += "attribution";
    out += enabled() ? ":\n" : " (compiled out -DMBIAS_OBS=OFF):\n";
    setLine("icache", icache);
    setLine("dcache", dcache);
    setLine("itlb", itlb);
    setLine("dtlb", dtlb);
    tblLine("pht", pht);
    tblLine("btb", btb);
    return out;
}

} // namespace mbias::sim
