#ifndef MBIAS_SIM_REPLAY_HH
#define MBIAS_SIM_REPLAY_HH

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "base/types.hh"
#include "obs/metrics.hh"
#include "toolchain/loader.hh"

#ifndef MBIAS_SIM_REPLAY_ENABLED
#define MBIAS_SIM_REPLAY_ENABLED 1
#endif

namespace mbias::sim
{

class Machine;

/** MBIAS_SIM_REPLAY=0 disables the record/replay tier (re-read per
 *  run, so one process can compare replayed and per-rep execution). */
bool replayDisabledByEnv();

/**
 * True when every switch between here and the hardware allows the
 * replay tier for @p machine: built in (-DMBIAS_SIM_REPLAY=ON over an
 * enabled fast path), not vetoed by MBIAS_SIM_REPLAY=0 or
 * MBIAS_SIM_REFERENCE, and the machine's own fast/replay toggles on.
 * Callers (ExperimentRunner) consult this before paying for a
 * recording pass.
 */
bool replayTierUsable(const Machine &machine);

/**
 * The functional half of one run, recorded once and replayed many
 * times: everything the timing model cannot derive from the static
 * ExecutionPlan alone, in a compact stream encoding —
 *
 *  - one bit per executed conditional branch (taken/not-taken; the
 *    targets themselves are static plan fields);
 *  - one code index per executed Ret (the dynamic return target);
 *  - one resolved address per memory access (loads, stores, the
 *    Call-link store and the Ret load), in execution order;
 *  - the exact final architectural state a RunResult reports (icount,
 *    halted, a0).
 *
 * Everything else about a run — fetch groups, cache/TLB/predictor/BTB
 * outcomes, stalls, noise jitter — is *timing*, recomputed live by
 * Machine::runReplay against this stream.  The stream itself is a pure
 * function of (program, layout, budget): OS-interrupt noise perturbs
 * cycles and cache state but never a value, and machine geometry is
 * timing-only, so one recording serves every noise seed and every
 * machine configuration.
 *
 * Stack ASLR is the one layout knob replay absorbs rather than keys
 * on: the loader's ASLR/env shifts move only the initial stack
 * pointer, so stack addresses (and only they) translate uniformly by
 * the sp delta.  runReplay rebases recorded addresses at or above
 * `stackBoundary` by (image.initialSp - recordedSp) and leaves
 * code/global/heap addresses alone.  This assumes the program derives
 * stack addresses from sp by plain offset arithmetic (true of
 * compiler-generated code; the four-tier differential test holds the
 * line per workload).
 */
struct FunctionalTrace
{
    /** Recording aborts past this footprint; the key is then negative-
     *  cached and those repetitions fall back to per-rep execution. */
    static constexpr std::uint64_t kMaxBytes = 64ull << 20;

    // --- identity: the preconditions matches() checks -------------
    std::shared_ptr<const toolchain::LinkedProgram> program;
    Addr gp = 0;
    Addr heapBase = 0;
    std::uint32_t entryIdx = 0;
    std::uint64_t budget = 0; ///< max_insts the stream was cut at

    /** initialSp of the recorded image (rebase origin). */
    Addr recordedSp = 0;
    /** Addresses >= this are stack-region and get the sp-delta rebase
     *  (half the recorded stack top: far above any data/heap address,
     *  far below any stack address, for every preset layout). */
    Addr stackBoundary = 0;

    // --- streams --------------------------------------------------
    std::vector<std::uint64_t> branchBits; ///< LSB-first per word
    std::uint64_t branchCount = 0;
    std::vector<std::uint32_t> retTargets; ///< code index per Ret
    std::vector<Addr> memAddrs; ///< ld/st/call-store/ret-load, in order

    // --- exact final architectural state --------------------------
    std::uint64_t icount = 0;
    bool halted = false;
    std::uint64_t resultA0 = 0;

    /** Set when recording hit kMaxBytes; the streams are incomplete
     *  and the trace must not be replayed (or cached, except as a
     *  negative entry). */
    bool aborted = false;

    /** True when @p image and @p max_insts satisfy the replay
     *  preconditions: same program identity, same gp/heap layout, same
     *  entry, same instruction budget.  initialSp may differ (rebased),
     *  noise seed and machine geometry are free. */
    bool matches(const toolchain::ProcessImage &image,
                 std::uint64_t max_insts) const
    {
        return program.get() == image.program.get() && gp == image.gp &&
               heapBase == image.heapBase && entryIdx == image.entryIdx &&
               budget == max_insts && !aborted;
    }

    /** Approximate heap footprint (replay-cache accounting). */
    std::uint64_t approxBytes() const;
};

/**
 * LRU cache of FunctionalTraces keyed by (program address, gp,
 * heapBase, entryIdx, budget) — the PlanCache mechanism with a
 * composite key, minus initialSp so one recording serves a whole ASLR
 * or env-size repetition family.  Pointer keying is sound for the
 * PlanCache reason: every entry (including a negative one) pins the
 * program's shared_ptr, so a cached key can never be freed and
 * reallocated while the entry lives.
 *
 * A null trace under a key is a *negative* entry: recording was tried
 * and aborted (footprint past FunctionalTrace::kMaxBytes), so callers
 * should run those repetitions per-rep instead of re-recording every
 * time.
 *
 * Thread-safe; on racing misses the first insert wins.  Also the
 * collection point for the tier's runtime statistics; attachMetrics()
 * mirrors everything into `sim.replay.*` counters of a registry (the
 * campaign engine attaches its per-run registry, so `mbias
 * obs-summary` shows the tier at work).
 */
class ReplayCache
{
  public:
    explicit ReplayCache(std::size_t capacity = 16);

    /** The process-wide cache ExperimentRunner uses. */
    static ReplayCache &global();

    /**
     * The cached trace for (@p image 's program/layout, @p budget), or
     * null on a miss.  On a negative hit (recording known oversized)
     * returns null and sets @p *unrecordable, so the caller skips the
     * recording pass.
     */
    std::shared_ptr<const FunctionalTrace>
    find(const toolchain::ProcessImage &image, std::uint64_t budget,
         bool *unrecordable);

    /** Inserts @p trace for (@p image, @p budget); a null @p trace
     *  records a negative entry.  First insert wins on races. */
    void insert(const toolchain::ProcessImage &image, std::uint64_t budget,
                std::shared_ptr<const FunctionalTrace> trace);

    /** Tallies one recorded run (Machine::runRecord). */
    void noteRecord();
    /** Tallies one replayed run (Machine::runReplay). */
    void noteReplay();
    /** Tallies one repetition family that fell back to per-rep
     *  execution (preconditions or footprint). */
    void noteFallback();

    /** Attaches a metrics registry (nullptr detaches).  @p metrics
     *  must outlive the attachment. */
    void attachMetrics(obs::Registry *metrics);

    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
        std::uint64_t records = 0;  ///< instrumented recording runs
        std::uint64_t replays = 0;  ///< runs served from a stream
        std::uint64_t fallbacks = 0;
        std::uint64_t bytes = 0; ///< approx footprint of live entries
    };

    Stats stats() const;
    void clear();

  private:
    struct Key
    {
        const void *program = nullptr;
        Addr gp = 0;
        Addr heapBase = 0;
        std::uint32_t entryIdx = 0;
        std::uint64_t budget = 0;
        bool operator==(const Key &) const = default;
    };
    struct KeyHash
    {
        std::size_t operator()(const Key &k) const;
    };
    struct Entry
    {
        /** Pins the keyed program even for negative entries. */
        std::shared_ptr<const toolchain::LinkedProgram> pin;
        std::shared_ptr<const FunctionalTrace> trace; ///< null = negative
    };
    using Lru = std::list<std::pair<Key, Entry>>;

    static Key keyOf(const toolchain::ProcessImage &image,
                     std::uint64_t budget);

    mutable std::mutex mutex_;
    std::size_t capacity_;
    Lru lru_; ///< most-recently used at front
    std::unordered_map<Key, Lru::iterator, KeyHash> map_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t bytes_ = 0;

    std::atomic<std::uint64_t> records_{0};
    std::atomic<std::uint64_t> replays_{0};
    std::atomic<std::uint64_t> fallbacks_{0};

    std::mutex metricsMutex_; ///< serializes attachMetrics() calls
    std::atomic<obs::Counter *> cHits_{nullptr};
    std::atomic<obs::Counter *> cMisses_{nullptr};
    std::atomic<obs::Counter *> cEvictions_{nullptr};
    std::atomic<obs::Counter *> cRecords_{nullptr};
    std::atomic<obs::Counter *> cReplays_{nullptr};
    std::atomic<obs::Counter *> cFallbacks_{nullptr};
};

} // namespace mbias::sim

#endif // MBIAS_SIM_REPLAY_HH
