#ifndef MBIAS_SIM_PROFILE_HH
#define MBIAS_SIM_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/types.hh"

namespace mbias::sim
{

/** Events attributed to one function during a profiled run. */
struct FunctionProfile
{
    std::string name;
    Addr base = 0;
    std::uint64_t bytes = 0;

    std::uint64_t instructions = 0;
    Cycles cycles = 0; ///< clock advance while executing this function
    std::uint64_t icacheMisses = 0;
    std::uint64_t dcacheMisses = 0;
    std::uint64_t branchMispredicts = 0;
    std::uint64_t lineSplits = 0;
    std::uint64_t aliasStalls = 0;
    std::uint64_t calls = 0; ///< calls executed *by* this function
    std::uint64_t l2Misses = 0;
    std::uint64_t itlbMisses = 0;
    std::uint64_t dtlbMisses = 0;
    std::uint64_t btbMisses = 0;
    std::uint64_t stallCycles = 0; ///< exposed producer-consumer stalls
    std::uint64_t fetchGroups = 0; ///< front-end fetch blocks consumed
};

/**
 * A flat per-function execution profile, the analogue of `perf report`.
 *
 * Bias diagnosis use: profile the same binary in two setups and diff —
 * the function whose cycles moved is where the setup factor bites
 * (e.g. perl's vm_run absorbs the whole env-size effect because its VM
 * stack inherits the stack pointer's alignment).
 */
struct Profile
{
    std::vector<FunctionProfile> functions;

    /** Functions sorted by attributed cycles, descending. */
    std::vector<FunctionProfile> byCycles() const;

    /** Total cycles attributed (equals the run's cycle counter). */
    Cycles totalCycles() const;

    /** The profile of function @p name; panics if absent. */
    const FunctionProfile &of(const std::string &name) const;

    /** perf-report-style text rendering of the top @p top functions. */
    std::string str(unsigned top = 10) const;
};

} // namespace mbias::sim

#endif // MBIAS_SIM_PROFILE_HH
