#include "sim/config.hh"

namespace mbias::sim
{

MachineConfig
MachineConfig::core2Like()
{
    MachineConfig c;
    c.name = "core2like";
    c.fetchBlockBytes = 16;
    c.fetchWidth = 4;
    c.branchMispredictPenalty = 15;
    c.btbMissPenalty = 3;
    c.btbSets = 128;
    c.btbWays = 4;
    c.predictor = PredictorKind::Gshare;
    c.predictorTableBits = 12;
    c.predictorHistoryBits = 8;
    c.icache = {64, 8, 64, 0, 12};   // 32 KiB
    c.dcache = {64, 8, 64, 3, 12};   // 32 KiB
    c.l2 = {4096, 16, 64, 0, 200};   // 4 MiB
    c.itlb = {128, 4096, 20};
    c.dtlb = {256, 4096, 30};
    c.storeBufferEntries = 20;
    c.aliasPenalty = 6;
    c.lineSplitPenalty = 12;
    c.intMulLatency = 3;
    c.intDivLatency = 22;
    c.oooWindowCycles = 3;
    return c;
}

MachineConfig
MachineConfig::p4Like()
{
    MachineConfig c;
    c.name = "p4like";
    c.fetchBlockBytes = 16;
    c.fetchWidth = 3;
    c.branchMispredictPenalty = 30; // the long NetBurst pipeline
    c.btbMissPenalty = 5;
    c.btbSets = 512;
    c.btbWays = 4;
    c.predictor = PredictorKind::Bimodal;
    c.predictorTableBits = 12;
    c.predictorHistoryBits = 0;
    c.icache = {32, 8, 64, 0, 18};   // 16 KiB trace-cache stand-in
    c.dcache = {32, 8, 64, 2, 18};   // 16 KiB
    c.l2 = {1024, 8, 64, 0, 250};    // 1 MiB
    c.itlb = {64, 4096, 30};
    c.dtlb = {64, 4096, 50};
    c.storeBufferEntries = 24;
    c.aliasPenalty = 40;             // notorious 4K-aliasing cost
    c.lineSplitPenalty = 20;
    c.intMulLatency = 10;
    c.intDivLatency = 60;
    c.oooWindowCycles = 1;
    return c;
}

MachineConfig
MachineConfig::o3Like()
{
    MachineConfig c;
    c.name = "o3like";
    c.fetchBlockBytes = 32;
    c.fetchWidth = 8;
    c.branchMispredictPenalty = 12;
    c.btbMissPenalty = 2;
    c.btbSets = 1024;
    c.btbWays = 4;
    c.predictor = PredictorKind::Gshare;
    c.predictorTableBits = 13;
    c.predictorHistoryBits = 11;
    c.icache = {256, 2, 64, 0, 14};  // 32 KiB 2-way (m5 default flavour)
    c.dcache = {512, 2, 64, 2, 14};  // 64 KiB 2-way
    c.l2 = {2048, 8, 64, 0, 180};    // 2 MiB
    c.itlb = {64, 4096, 25};
    c.dtlb = {64, 4096, 25};
    // m5's classic memory model does not implement 4K-aliasing stalls:
    // simulators embed their own (different) bias structure.
    c.enableStoreBufferAliasing = false;
    c.storeBufferEntries = 32;
    c.aliasPenalty = 0;
    c.lineSplitPenalty = 4;
    c.intMulLatency = 3;
    c.intDivLatency = 20;
    c.oooWindowCycles = 8;
    return c;
}

MachineConfig
MachineConfig::inorderLike()
{
    MachineConfig c;
    c.name = "inorderlike";
    c.core = CoreKind::InOrder;
    // Dual-issue in-order front end fetching aligned 8-byte pairs; a
    // taken transfer into the middle of a pair costs a refetch cycle.
    c.fetchBlockBytes = 8;
    c.fetchWidth = 2;
    c.fetchRealignPenalty = 1;
    c.branchMispredictPenalty = 8; // short in-order pipeline
    c.btbMissPenalty = 2;
    c.btbSets = 256;
    c.btbWays = 2;
    c.predictor = PredictorKind::Gshare;
    c.predictorTableBits = 11;
    c.predictorHistoryBits = 6;
    c.icache = {128, 4, 32, 0, 15};  // 16 KiB, 32 B lines
    c.dcache = {128, 4, 32, 2, 15};  // 16 KiB
    c.l2 = {1024, 8, 32, 0, 120};    // 256 KiB unified
    c.itlb = {32, 4096, 25};
    c.dtlb = {32, 4096, 25};
    c.storeBufferEntries = 8;
    c.aliasPenalty = 4;
    c.lineSplitPenalty = 8;
    c.intMulLatency = 4;
    c.intDivLatency = 35;
    // In-order: no latency hiding at all; every stall cycle is paid.
    c.oooWindowCycles = 0;
    return c;
}

} // namespace mbias::sim
