#include "sim/trace.hh"

#include <algorithm>
#include <array>

#include "base/bitutils.hh"
#include "base/hash.hh"
#include "base/logging.hh"
#include "obs/trace.hh"

namespace mbias::sim
{

using isa::Opcode;

namespace
{

/** Latency class of a simple op: 0 unit, 1 mul, 2 div. */
std::uint8_t
latClassOf(Opcode op)
{
    switch (op) {
      case Opcode::Mul:
        return 1;
      case Opcode::Divu:
      case Opcode::Remu:
        return 2;
      default:
        return 0;
    }
}

/** True for the reg-reg ALU ops (the only simple ops reading rs2). */
bool
readsRs2(Opcode op)
{
    switch (op) {
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Divu:
      case Opcode::Remu:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Sll:
      case Opcode::Srl:
      case Opcode::Sra:
      case Opcode::Slt:
      case Opcode::Sltu:
        return true;
      default:
        return false;
    }
}

/** True for simple ops reading rs1 (everything but Li and Nop). */
bool
readsRs1(Opcode op)
{
    return op != Opcode::Li && op != Opcode::Nop;
}

/**
 * The value-producing simple ops the batch handler's fn switch
 * implements.  The handler has no default backstop (same contract as
 * the dispatch table: validate at build time), so every FnOp must
 * pass this check.
 */
bool
isFnOpcode(Opcode op)
{
    switch (op) {
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Divu:
      case Opcode::Remu:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Sll:
      case Opcode::Srl:
      case Opcode::Sra:
      case Opcode::Slt:
      case Opcode::Sltu:
      case Opcode::Addi:
      case Opcode::Andi:
      case Opcode::Ori:
      case Opcode::Xori:
      case Opcode::Slli:
      case Opcode::Srli:
      case Opcode::Srai:
      case Opcode::Slti:
      case Opcode::Li:
        return true;
      default:
        return false;
    }
}

} // namespace

TraceGeometry
TraceGeometry::of(const MachineConfig &c)
{
    TraceGeometry g;
    g.fetchWidth = c.fetchWidth;
    g.modelBlocks = c.enableFetchBlockModel;
    g.cachesOn = c.enableCaches;
    g.tlbsOn = c.enableTlbs;
    g.fetchBlockBytes = g.modelBlocks ? c.fetchBlockBytes : 0;
    g.ilineBytes = g.cachesOn ? c.icache.lineBytes : 0;
    g.ipageShift =
        g.tlbsOn ? unsigned(floorLog2(c.itlb.pageBytes)) : 0;
    return g;
}

std::uint64_t
TracePlan::approxBytes() const
{
    std::uint64_t bytes =
        sizeof(TracePlan) + ops.size() * sizeof(DecodedOp);
    for (const auto &b : blocks) {
        bytes += sizeof(TraceBlock);
        bytes += b.fnOps.size() * sizeof(TraceBlock::FnOp);
        bytes += b.rows.size() * sizeof(TraceBlock::FetchRow);
        bytes += b.lines.size() * sizeof(TraceBlock::LineTouch);
        bytes += b.pages.size() * sizeof(TraceBlock::PageTouch);
        bytes += b.writes.size() * sizeof(TraceBlock::RegWrite);
        bytes += b.writeGroups.size() * sizeof(Cycles);
    }
    return bytes;
}

std::shared_ptr<const TracePlan>
TracePlan::build(std::shared_ptr<const ExecutionPlan> base,
                 const TraceGeometry &g)
{
    mbias_assert(base, "cannot trace-translate a null plan");
    mbias_assert(g.fetchWidth > 0, "machines fetch at least one op");

    auto tp = std::make_shared<TracePlan>();
    tp->geometry = g;
    tp->ops = base->ops; // heads rewritten below
    const std::vector<DecodedOp> &ops = base->ops;
    const std::size_t n = ops.size();

    // Superblock heads are the positions dispatch can actually land
    // on from a non-simple op: basic-block leaders plus the successor
    // of every memory op (the only non-control-flow run breakers).
    // Positions *inside* a run are reached only while already walking
    // it per-op (after a guard fallback), and re-engage at the next
    // head anyway.
    std::vector<std::uint8_t> is_entry(n, 0);
    for (std::uint32_t b : base->blockStarts)
        if (b < n)
            is_entry[b] = 1;
    for (std::size_t i = 0; i + 1 < n; ++i)
        if (isa::isLoad(ops[i].op) || isa::isStore(ops[i].op))
            is_entry[i + 1] = 1;

    const unsigned width = g.fetchWidth;
    const Addr fbb = g.fetchBlockBytes;
    const Addr iline = g.ilineBytes;
    const unsigned ipage_shift = g.ipageShift;

    for (std::size_t head = 0; head < n; ++head) {
        if (!is_entry[head] || ops[head].runLen < kMinRunLen)
            continue;

        TraceBlock b;
        b.headOp = ops[head];
        b.headIdx = std::uint32_t(head);
        b.len = ops[head].runLen;
        mbias_assert(head + b.len <= n, "run extends past the program");

        // Dataflow scan over all len ops (head included: the batch
        // handler runs after the head's fetch but before its
        // execution).  defClass[r] >= 0 marks an in-block definition.
        std::array<std::int8_t, isa::reg::numRegs> def_class;
        def_class.fill(-1);
        std::array<std::uint32_t, isa::reg::numRegs> def_pos{};
        auto read_reg = [&](isa::Reg r) {
            if (r == isa::reg::zero)
                return; // regReady[zero] is never written
            if (def_class[r] >= 0)
                b.latClassMask |= std::uint8_t(1u << def_class[r]);
            else
                b.liveInMask |= 1u << r;
        };
        for (std::uint32_t j = 0; j < b.len; ++j) {
            const DecodedOp &o = ops[head + j];
            mbias_assert(o.rd < isa::reg::numRegs && o.rs1 < isa::reg::numRegs &&
                             o.rs2 < isa::reg::numRegs,
                         "register field out of range");
            if (j > 0)
                mbias_assert(o.pc > ops[head + j - 1].pc,
                             "block pcs must ascend");
            if (o.op == Opcode::Nop) {
                ++b.nopCount;
                continue;
            }
            if (readsRs1(o.op))
                read_reg(o.rs1);
            if (readsRs2(o.op))
                read_reg(o.rs2);
            if (o.rd != isa::reg::zero) {
                mbias_assert(isFnOpcode(o.op),
                             "non-simple op inside a simple run");
                def_class[o.rd] = std::int8_t(latClassOf(o.op));
                def_pos[o.rd] = j;
                TraceBlock::FnOp f;
                f.imm = o.imm;
                f.op = o.op;
                f.rd = o.rd;
                f.rs1 = readsRs1(o.op) ? o.rs1 : isa::Reg(0);
                f.rs2 = readsRs2(o.op) ? o.rs2 : isa::Reg(0);
                b.fnOps.push_back(f);
            } else if (readsRs1(o.op)) {
                // rd == zero: functionally dead, but its reads still
                // feed the stall guard above; nothing to execute.
            }
        }

        // Exit regReady[] reconstruction: the last write per register.
        for (unsigned r = 0; r < isa::reg::numRegs; ++r) {
            if (def_class[r] < 0)
                continue;
            TraceBlock::RegWrite w;
            w.reg = isa::Reg(r);
            w.latClass = std::uint8_t(def_class[r]);
            w.pos = def_pos[r];
            b.writes.push_back(w);
        }
        std::sort(b.writes.begin(), b.writes.end(),
                  [](const auto &a, const auto &c) { return a.pos < c.pos; });

        // Icache-line and ITLB-page crossings of ops 1..len-1, exactly
        // as the interpreter's fetch() would walk them given that the
        // head's fetch just ran: lastCodeLine is the head's last line
        // and lastCodePage the head's page, whatever they were before.
        if (g.cachesOn) {
            Addr prev_line =
                alignDown(b.headOp.pc + b.headOp.size - 1, iline);
            for (std::uint32_t j = 1; j < b.len; ++j) {
                const DecodedOp &o = ops[head + j];
                const Addr first = alignDown(o.pc, iline);
                const Addr last = alignDown(o.pc + o.size - 1, iline);
                for (Addr line = first; line <= last; line += iline) {
                    if (line == prev_line)
                        continue;
                    prev_line = line;
                    b.lines.push_back({line, j});
                }
            }
        }
        if (g.tlbsOn) {
            std::uint64_t prev_page = b.headOp.pc >> ipage_shift;
            for (std::uint32_t j = 1; j < b.len; ++j) {
                const DecodedOp &o = ops[head + j];
                const std::uint64_t page = o.pc >> ipage_shift;
                if (page != prev_page) {
                    prev_page = page;
                    b.pages.push_back(
                        {page, (o.pc + o.size - 1) >> ipage_shift, j});
                }
            }
        }

        // Fetch-group schedule per entry state.  After the head's
        // fetch, groupSlots is in [0, width); forceNewGroup is always
        // false; and the active group's block end is statically
        // alignDown(headPc, fbb) + fbb — the group opened at some
        // pc' <= headPc in the same block (pcs only ascend between
        // group openings), so its end is the head's own block end.
        b.rows.resize(width);
        b.writeGroups.assign(std::size_t(b.writes.size()) * width, 0);
        for (unsigned s = 0; s < width; ++s) {
            unsigned slots = s;
            Addr end = g.modelBlocks
                           ? alignDown(b.headOp.pc, fbb) + fbb
                           : ~Addr(0);
            Cycles groups = 0;
            std::size_t wptr = 0;
            while (wptr < b.writes.size() && b.writes[wptr].pos == 0) {
                b.writeGroups[wptr * width + s] = 0;
                ++wptr;
            }
            for (std::uint32_t j = 1; j < b.len; ++j) {
                const DecodedOp &o = ops[head + j];
                const bool new_group =
                    slots == 0 || (g.modelBlocks && o.pc >= end);
                if (new_group) {
                    ++groups;
                    slots = width;
                    end = g.modelBlocks
                              ? alignDown(o.pc, fbb) + fbb
                              : ~Addr(0);
                }
                slots -= 1;
                if (g.modelBlocks && o.pc + o.size > end)
                    slots = 0;
                while (wptr < b.writes.size() &&
                       b.writes[wptr].pos == j) {
                    b.writeGroups[wptr * width + s] = groups;
                    ++wptr;
                }
            }
            b.rows[s] = {groups, slots, end};
        }

        // Rewrite the head in the traced op array: same pc/size (the
        // dispatch macro fetches through them), dispatch tag swapped
        // for the batch handler, target recycled as the block id.
        tp->ops[head].op = kBatchOpcode;
        tp->ops[head].targetIdx = std::uint32_t(tp->blocks.size());
        tp->blocks.push_back(std::move(b));
    }

    tp->base = std::move(base);
    return tp;
}

std::size_t
TraceCache::KeyHash::operator()(const Key &k) const
{
    Fnv1a h;
    h.u64(std::uint64_t(reinterpret_cast<std::uintptr_t>(k.base)));
    h.u64((std::uint64_t(k.geom.fetchWidth) << 32) |
          k.geom.fetchBlockBytes);
    h.u64((std::uint64_t(k.geom.ilineBytes) << 32) | k.geom.ipageShift);
    h.u64(std::uint64_t(k.geom.modelBlocks) << 2 |
          std::uint64_t(k.geom.cachesOn) << 1 |
          std::uint64_t(k.geom.tlbsOn));
    return std::size_t(h.value());
}

TraceCache::TraceCache(std::size_t capacity) : capacity_(capacity)
{
    mbias_assert(capacity > 0, "trace cache capacity must be nonzero");
}

TraceCache &
TraceCache::global()
{
    static TraceCache cache;
    return cache;
}

namespace
{

void
bump(const std::atomic<obs::Counter *> &c, std::uint64_t by = 1)
{
    if (obs::Counter *counter = c.load(std::memory_order_relaxed))
        counter->add(by);
}

} // namespace

std::shared_ptr<const TracePlan>
TraceCache::get(const std::shared_ptr<const ExecutionPlan> &base,
                const TraceGeometry &g)
{
    mbias_assert(base, "trace lookup for a null plan");
    const Key key{base.get(), g};
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = map_.find(key);
        if (it != map_.end()) {
            lru_.splice(lru_.begin(), lru_, it->second);
            ++hits_;
            bump(cHits_);
            return it->second->second;
        }
    }

    // Translate outside the lock; first insert wins on a racing miss.
    std::shared_ptr<const TracePlan> plan;
    {
        obs::ScopedSpan span("trace-translate", "sim");
        plan = TracePlan::build(base, g);
    }

    std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(key);
    if (it != map_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);
        ++misses_; // we did build one
        bump(cMisses_);
        return it->second->second;
    }
    ++misses_;
    superblocks_ += plan->blocks.size();
    bump(cMisses_);
    bump(cSuperblocks_, plan->blocks.size());
    lru_.emplace_front(key, std::move(plan));
    map_.emplace(key, lru_.begin());
    while (map_.size() > capacity_) {
        map_.erase(lru_.back().first);
        lru_.pop_back();
        ++evictions_;
        bump(cEvictions_);
    }
    return lru_.front().second;
}

void
TraceCache::recordRun(std::uint64_t ops_batched,
                      std::uint64_t ops_interpreted,
                      std::uint64_t fallbacks)
{
    opsBatched_.fetch_add(ops_batched, std::memory_order_relaxed);
    opsInterpreted_.fetch_add(ops_interpreted,
                              std::memory_order_relaxed);
    fallbacks_.fetch_add(fallbacks, std::memory_order_relaxed);
    bump(cOpsBatched_, ops_batched);
    bump(cOpsInterpreted_, ops_interpreted);
    bump(cFallbacks_, fallbacks);
}

void
TraceCache::attachMetrics(obs::Registry *metrics)
{
    std::lock_guard<std::mutex> lock(metricsMutex_);
    if (!metrics) {
        cHits_ = nullptr;
        cMisses_ = nullptr;
        cEvictions_ = nullptr;
        cSuperblocks_ = nullptr;
        cOpsBatched_ = nullptr;
        cOpsInterpreted_ = nullptr;
        cFallbacks_ = nullptr;
        return;
    }
    cHits_ = &metrics->counter("sim.trace.hits");
    cMisses_ = &metrics->counter("sim.trace.misses");
    cEvictions_ = &metrics->counter("sim.trace.evictions");
    cSuperblocks_ = &metrics->counter("sim.trace.superblocks");
    cOpsBatched_ = &metrics->counter("sim.trace.ops_batched");
    cOpsInterpreted_ = &metrics->counter("sim.trace.ops_interpreted");
    cFallbacks_ = &metrics->counter("sim.trace.fallbacks");
}

TraceCache::Stats
TraceCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Stats s;
    s.hits = hits_;
    s.misses = misses_;
    s.evictions = evictions_;
    s.superblocks = superblocks_;
    s.opsBatched = opsBatched_.load(std::memory_order_relaxed);
    s.opsInterpreted = opsInterpreted_.load(std::memory_order_relaxed);
    s.fallbacks = fallbacks_.load(std::memory_order_relaxed);
    return s;
}

void
TraceCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    map_.clear();
    lru_.clear();
}

} // namespace mbias::sim
