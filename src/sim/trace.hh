#ifndef MBIAS_SIM_TRACE_HH
#define MBIAS_SIM_TRACE_HH

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "base/types.hh"
#include "obs/metrics.hh"
#include "sim/config.hh"
#include "sim/plan.hh"

#ifndef MBIAS_SIM_TRACE_ENABLED
#define MBIAS_SIM_TRACE_ENABLED 1
#endif

namespace mbias::sim
{

/**
 * The pseudo-opcode a TracePlan writes over a superblock head: one
 * past the real opcode range, so the traced interpreter's dispatch
 * table gains exactly one extra handler and every non-head op
 * dispatches as before, at zero cost.
 */
constexpr isa::Opcode kBatchOpcode =
    isa::Opcode(std::uint8_t(isa::Opcode::NumOpcodes));

/**
 * The machine-geometry fingerprint a TracePlan depends on.  Unlike an
 * ExecutionPlan — a pure function of the program — a trace plan bakes
 * in fetch-group schedules, icache line crossings and ITLB page
 * crossings, so the TraceCache keys on (program plan, geometry).
 * Fields behind a disabled model are canonicalized to zero so e.g.
 * every enableCaches=false machine shares one plan.
 */
struct TraceGeometry
{
    std::uint32_t fetchWidth = 0;
    std::uint32_t fetchBlockBytes = 0; ///< 0 when !modelBlocks
    std::uint32_t ilineBytes = 0;      ///< 0 when !cachesOn
    std::uint32_t ipageShift = 0;      ///< 0 when !tlbsOn
    bool modelBlocks = false;
    bool cachesOn = false;
    bool tlbsOn = false;

    bool operator==(const TraceGeometry &) const = default;

    /** The fingerprint of @p c (the fields the batch math reads). */
    static TraceGeometry of(const MachineConfig &c);
};

/**
 * One superblock: a straight-line run of simple (no-memory,
 * no-control-flow) ops starting at an entry point, with its batched
 * effects precomputed.
 *
 * The head op itself is dispatched normally (the interpreter's
 * dispatch macro counts and fetches it before jumping), so everything
 * here describes "the head has just been fetched" onward:
 *
 *  - `rows[s]` is the fetch-group schedule of ops 1..len-1 given the
 *    post-head group state (s = slots left in the current group; the
 *    group's block end is static — see TracePlan::build);
 *  - `lines`/`pages` are the icache-line and ITLB-page crossings of
 *    ops 1..len-1, pre-deduplicated against the head's last line/page
 *    (the pcs of a run ascend, so the sequential-fetch memo reduces to
 *    "skip a leading repeat");
 *  - `fnOps` is the dataflow summary: the run's functional effects
 *    with Nops and zero-register writes dropped;
 *  - `writes` + `writeGroups` reconstruct the exit regReady[] values
 *    (issue cycle of each register's last write, plus its latency);
 *  - the guard fields (`liveInMask`, `latClassMask`) decide whether
 *    the batch provably adds zero stall cycles; when they cannot, the
 *    interpreter falls back to per-op execution of the same ops.
 */
struct TraceBlock
{
    /** The original head op, for per-op fallback dispatch. */
    DecodedOp headOp;

    std::uint32_t headIdx = 0;
    std::uint32_t len = 0;      ///< ops covered, head included
    std::uint32_t nopCount = 0; ///< Nops among them (counter delta)

    /** Registers read before any in-block write (head included). */
    std::uint32_t liveInMask = 0;
    /** Latency classes of in-block defs that are read in-block:
     *  bit 0 = 1-cycle, bit 1 = intMulLatency, bit 2 = intDivLatency. */
    std::uint8_t latClassMask = 0;

    struct FnOp
    {
        std::int64_t imm = 0;
        /** Always a value-producing simple op — Add..Slti or Li, the
         *  first 22 enumerators — so its raw value doubles as a dense
         *  index into the batch handler's threaded fn table.
         *  Validated at build time; the loop has no range backstop. */
        isa::Opcode op = isa::Opcode::Add;
        isa::Reg rd = 0;
        isa::Reg rs1 = 0;
        isa::Reg rs2 = 0; ///< 0 for ops that do not read a second reg
    };
    std::vector<FnOp> fnOps;

    struct FetchRow
    {
        Cycles groups = 0; ///< groups opened by ops 1..len-1
        std::uint32_t exitSlots = 0;
        Addr exitBlockEnd = 0;
    };
    /** Indexed by post-head groupSlots, size fetchWidth. */
    std::vector<FetchRow> rows;

    struct LineTouch
    {
        Addr line = 0;
        std::uint32_t pos = 0; ///< op position in the block (1-based
                               ///< region: head never appears)
    };
    std::vector<LineTouch> lines;

    struct PageTouch
    {
        std::uint64_t firstVpn = 0;
        std::uint64_t lastVpn = 0;
        std::uint32_t pos = 0;
    };
    std::vector<PageTouch> pages;

    struct RegWrite
    {
        isa::Reg reg = 0;
        std::uint8_t latClass = 0; ///< 0 unit, 1 mul, 2 div
        std::uint32_t pos = 0;     ///< position of the LAST write
    };
    /** Last write per register, ascending by pos. */
    std::vector<RegWrite> writes;
    /** writeGroups[w * fetchWidth + s]: groups opened by ops 1..pos(w)
     *  when entering with groupSlots = s (the write's issue cycle
     *  relative to entry, before replayed miss penalties). */
    std::vector<Cycles> writeGroups;
};

/**
 * A trace-translated program: the base plan's op array with every
 * superblock head rewritten to kBatchOpcode (targetIdx = block id),
 * plus the per-block batch summaries.  Built once per (plan,
 * geometry); Machine::runTrace interprets it with the same
 * direct-threaded loop as runFast plus one extra handler.
 *
 * Like the base plan, a trace plan never influences simulated
 * semantics or timing: a batch commits only when its guards prove the
 * per-op walk would have produced exactly the same counters and
 * cycles, and falls back to that walk otherwise — so RunResults stay
 * bitwise identical to both other tiers.
 */
struct TracePlan
{
    /** Simple runs shorter than this stay per-op: below it the batch
     *  bookkeeping costs more than the dispatches it saves. */
    static constexpr std::uint32_t kMinRunLen = 6;

    std::vector<DecodedOp> ops; ///< base ops, heads rewritten
    std::vector<TraceBlock> blocks;
    TraceGeometry geometry;

    /** The base plan (pins the program the ops refer to). */
    std::shared_ptr<const ExecutionPlan> base;

    /** Approximate heap footprint (trace-cache accounting). */
    std::uint64_t approxBytes() const;

    /** Translates @p base for machines with geometry @p g. */
    static std::shared_ptr<const TracePlan>
    build(std::shared_ptr<const ExecutionPlan> base,
          const TraceGeometry &g);
};

/**
 * LRU cache of TracePlans keyed by (base-plan address, geometry) —
 * the PlanCache mechanism with a composite key.  Pointer keying is
 * sound for the same reason: every entry pins its base plan (which
 * pins its program), so a cached key can never be freed and
 * reallocated while the entry lives.
 *
 * Thread-safe; on racing misses the first insert wins.  Also the
 * collection point for the tier's runtime statistics (ops batched vs
 * interpreted, guard fallbacks), which Machine::runTrace reports once
 * per run; attachMetrics() mirrors everything into `sim.trace.*`
 * counters of a registry (the campaign engine attaches its per-run
 * registry, so `mbias obs-summary` shows the tier at work).
 */
class TraceCache
{
  public:
    explicit TraceCache(std::size_t capacity = 64);

    /** The process-wide cache Machine::runTrace uses. */
    static TraceCache &global();

    /** The trace plan for (@p base, @p g), building it on a miss. */
    std::shared_ptr<const TracePlan>
    get(const std::shared_ptr<const ExecutionPlan> &base,
        const TraceGeometry &g);

    /** Folds one traced run's tallies into the stats/metrics. */
    void recordRun(std::uint64_t ops_batched,
                   std::uint64_t ops_interpreted,
                   std::uint64_t fallbacks);

    /** Attaches a metrics registry (nullptr detaches).  @p metrics
     *  must outlive the attachment. */
    void attachMetrics(obs::Registry *metrics);

    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
        std::uint64_t superblocks = 0; ///< formed across all builds
        std::uint64_t opsBatched = 0;
        std::uint64_t opsInterpreted = 0;
        std::uint64_t fallbacks = 0; ///< guard-failed batch entries
    };

    Stats stats() const;
    void clear();

  private:
    struct Key
    {
        const void *base = nullptr;
        TraceGeometry geom;
        bool operator==(const Key &) const = default;
    };
    struct KeyHash
    {
        std::size_t operator()(const Key &k) const;
    };
    using Lru = std::list<std::pair<Key, std::shared_ptr<const TracePlan>>>;

    mutable std::mutex mutex_;
    std::size_t capacity_;
    Lru lru_; ///< most-recently used at front
    std::unordered_map<Key, Lru::iterator, KeyHash> map_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t superblocks_ = 0;

    std::atomic<std::uint64_t> opsBatched_{0};
    std::atomic<std::uint64_t> opsInterpreted_{0};
    std::atomic<std::uint64_t> fallbacks_{0};

    std::mutex metricsMutex_; ///< serializes attachMetrics() calls
    std::atomic<obs::Counter *> cHits_{nullptr};
    std::atomic<obs::Counter *> cMisses_{nullptr};
    std::atomic<obs::Counter *> cEvictions_{nullptr};
    std::atomic<obs::Counter *> cSuperblocks_{nullptr};
    std::atomic<obs::Counter *> cOpsBatched_{nullptr};
    std::atomic<obs::Counter *> cOpsInterpreted_{nullptr};
    std::atomic<obs::Counter *> cFallbacks_{nullptr};
};

} // namespace mbias::sim

#endif // MBIAS_SIM_TRACE_HH
