#ifndef MBIAS_SIM_PLAN_HH
#define MBIAS_SIM_PLAN_HH

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "base/types.hh"
#include "isa/opcode.hh"
#include "obs/metrics.hh"
#include "toolchain/linker.hh"

#ifndef MBIAS_SIM_FASTPATH_ENABLED
#define MBIAS_SIM_FASTPATH_ENABLED 1
#endif

namespace mbias::sim
{

/**
 * One pre-decoded instruction of an ExecutionPlan: the fields the
 * simulator's hot loop actually reads, packed into 40 bytes with no
 * indirection — where the linker's PlacedInst drags a std::string
 * symbol (dead weight after linking) through the interpreter's cache.
 *
 * `op` doubles as the dispatch tag: µRISC opcodes are already a flat
 * uint8 enum, so it indexes the fast interpreter's direct-threaded
 * handler table with no re-decode (build() validates every op, since
 * threaded dispatch has no `default:` backstop).
 */
struct DecodedOp
{
    Addr pc = 0;            ///< placed address
    std::int64_t imm = 0;   ///< immediate / memory offset
    std::uint32_t targetIdx = 0; ///< resolved control-flow target
    isa::Opcode op = isa::Opcode::Nop;
    isa::Reg rd = 0;
    isa::Reg rs1 = 0;
    isa::Reg rs2 = 0;
    std::uint8_t size = 0;       ///< encoded bytes (fetch accounting)
    std::uint8_t accessSize = 0; ///< bytes moved by loads/stores

    /**
     * Length of the *simple run* starting here: the number of
     * consecutive ALU/Li/Nop instructions (this one included) with no
     * memory access and no control flow; 0 for non-simple
     * instructions, saturating at 65535.  Structural metadata (plan
     * tests and the throughput microbench report run/block shape); the
     * interpreter itself keys everything off `op`.
     */
    std::uint16_t runLen = 0;
};

static_assert(sizeof(DecodedOp) <= 40, "DecodedOp must stay dense");

/**
 * A per-program execution plan: everything the simulator can derive
 * from a LinkedProgram *once* instead of per run — decoded
 * instructions, straight-line basic blocks, and an O(1) return-address
 * table replacing the reference interpreter's per-Ret hash lookup.
 *
 * A plan is a pure function of the program: it contains nothing
 * derived from a MachineConfig, so one plan serves every machine model
 * and every (envBytes, aslr, ...) load of the program.  Address
 * alignment and page arithmetic — which *are* config-dependent — stay
 * inline in the fast loop, reduced to shifts/masks when the config's
 * line and page sizes are powers of two (they are, in every preset).
 *
 * The plan never influences simulated semantics or timing: the fast
 * interpreter performs the same component accesses in the same order
 * with the same arguments as the reference interpreter, so every
 * RunResult — cycles and all performance counters — is bitwise
 * identical (tests/sim/fastpath_differential_test.cc holds the line).
 */
struct ExecutionPlan
{
    std::vector<DecodedOp> ops;

    /**
     * Basic-block leader indices, ascending: instruction i starts a
     * block iff it is an entry point, a control-flow target, or the
     * fall-through successor of a control-flow instruction.
     */
    std::vector<std::uint32_t> blockStarts;

    /**
     * Return-address table: idxByOffset[pc - codeBase] is the code
     * index of the instruction placed at pc (kNoIndex between
     * instructions).  Semantically identical to the program's
     * addrToIdx hash map, minus the per-Ret hashing.
     */
    std::vector<std::uint32_t> idxByOffset;
    Addr codeBase = 0;

    static constexpr std::uint32_t kNoIndex = ~std::uint32_t(0);

    /** The decoded program; pins the pointer the plan was keyed by. */
    std::shared_ptr<const toolchain::LinkedProgram> program;

    /** Approximate heap footprint (plan-cache accounting). */
    std::uint64_t approxBytes() const;

    /** Decodes @p program (shared so the plan can pin it). */
    static std::shared_ptr<const ExecutionPlan>
    build(std::shared_ptr<const toolchain::LinkedProgram> program);
};

/**
 * A small LRU cache of ExecutionPlans keyed by program identity (the
 * LinkedProgram's address).  Pointer keying is sound because every
 * entry pins its program's shared_ptr: a cached key can never be freed
 * and reallocated while the entry lives.  The artifact cache hands all
 * tasks of a campaign the *same* shared program, so a whole env sweep
 * decodes each side exactly once.
 *
 * Thread-safe; on racing misses the first insert wins and plans built
 * by losers are discarded (plans for one program are interchangeable).
 */
class PlanCache
{
  public:
    explicit PlanCache(std::size_t capacity = 64);

    /** The process-wide cache Machine::run uses. */
    static PlanCache &global();

    /** The plan for @p program, building it on a miss. */
    std::shared_ptr<const ExecutionPlan>
    get(const std::shared_ptr<const toolchain::LinkedProgram> &program);

    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
    };

    Stats stats() const;
    void clear();

    /** Attaches a metrics registry (nullptr detaches): hit/miss/
     *  eviction counts mirror into `sim.plan.*` counters.  @p metrics
     *  must outlive the attachment. */
    void attachMetrics(obs::Registry *metrics);

  private:
    using Lru = std::list<
        std::pair<const void *, std::shared_ptr<const ExecutionPlan>>>;

    mutable std::mutex mutex_;
    std::size_t capacity_;
    Lru lru_; ///< most-recently used at front
    std::unordered_map<const void *, Lru::iterator> map_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;

    std::mutex metricsMutex_; ///< serializes attachMetrics() calls
    std::atomic<obs::Counter *> cHits_{nullptr};
    std::atomic<obs::Counter *> cMisses_{nullptr};
    std::atomic<obs::Counter *> cEvictions_{nullptr};
};

} // namespace mbias::sim

#endif // MBIAS_SIM_PLAN_HH
