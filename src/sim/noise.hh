#ifndef MBIAS_SIM_NOISE_HH
#define MBIAS_SIM_NOISE_HH

#include <cstdint>

#include "base/types.hh"

namespace mbias::sim
{

/**
 * Run-to-run measurement noise: a model of OS timer interrupts and
 * their cache pollution.  Real measurements vary between runs even in
 * a fixed setup; the paper's point is that this *visible* variance is
 * small and well-behaved compared to the *invisible* setup bias — so
 * a tight confidence interval computed from repeated runs can be a
 * tight interval around the wrong value.
 *
 * The model is deterministic given @c seed: an interrupt fires every
 * roughly @c meanIntervalCycles (uniform in [0.5x, 1.5x]), costs
 * @c costCycles, and evicts a few cache sets.
 */
struct NoiseModel
{
    bool enabled = false;
    std::uint64_t seed = 0;
    Cycles meanIntervalCycles = 20000; ///< ~ a 50 us tick at 1 GHz-ish
    Cycles costCycles = 600;           ///< handler + refill cost
    unsigned linesEvictedPerInterrupt = 8;

    /** A disabled model (the default for deterministic studies). */
    static NoiseModel none() { return {}; }

    /** A model with the given seed and default magnitude. */
    static NoiseModel withSeed(std::uint64_t s)
    {
        NoiseModel n;
        n.enabled = true;
        n.seed = s;
        return n;
    }
};

} // namespace mbias::sim

#endif // MBIAS_SIM_NOISE_HH
