#ifndef MBIAS_SIM_NOISE_HH
#define MBIAS_SIM_NOISE_HH

#include <cstdint>

#include "base/types.hh"

namespace mbias::sim
{

/**
 * Run-to-run measurement noise: a model of OS timer interrupts and
 * their cache pollution.  Real measurements vary between runs even in
 * a fixed setup; the paper's point is that this *visible* variance is
 * small and well-behaved compared to the *invisible* setup bias — so
 * a tight confidence interval computed from repeated runs can be a
 * tight interval around the wrong value.
 *
 * The model is deterministic given @c seed: an interrupt fires every
 * roughly @c meanIntervalCycles (uniform in [0.5x, 1.5x]), costs
 * @c costCycles, and evicts a few cache sets.
 *
 * A second, orthogonal factor models DVFS frequency steps (Kalibera &
 * Jones argue frequency belongs among the *controlled* factors of a
 * rigorous benchmark, not the ambient noise): roughly every
 * @c dvfsMeanIntervalCycles the governor drops to a lower P-state for
 * about @c dvfsMeanResidencyCycles, during which the core retires
 * @c dvfsSlowdownPercent fewer cycles' worth of work — charged as a
 * lump of @c dvfsTransitionCycles plus the slowed residency's excess
 * at the step, purely timing (no cache pollution; unlike an interrupt,
 * a frequency step touches no architectural state).  Both factors
 * draw from independent seeded streams, so either can be swept alone.
 */
struct NoiseModel
{
    bool enabled = false;
    std::uint64_t seed = 0;
    Cycles meanIntervalCycles = 20000; ///< ~ a 50 us tick at 1 GHz-ish
    Cycles costCycles = 600;           ///< handler + refill cost
    unsigned linesEvictedPerInterrupt = 8;

    // DVFS frequency-step factor (off by default; swept as a
    // first-class pipeline factor by bench/figures/fig13).
    bool dvfsEnabled = false;
    Cycles dvfsMeanIntervalCycles = 150000; ///< between governor steps
    Cycles dvfsTransitionCycles = 500;      ///< PLL relock / voltage ramp
    Cycles dvfsMeanResidencyCycles = 30000; ///< time at the low P-state
    unsigned dvfsSlowdownPercent = 25;      ///< work lost while slowed

    /** True when the model perturbs runs at all — any factor on.  The
     *  fast-tier gate keys off this, not just @c enabled. */
    bool active() const { return enabled || dvfsEnabled; }

    /** Bitwise equality (RepetitionPlan compares template defaults). */
    bool operator==(const NoiseModel &) const = default;

    /** A disabled model (the default for deterministic studies). */
    static NoiseModel none() { return {}; }

    /** A model with the given seed and default magnitude. */
    static NoiseModel withSeed(std::uint64_t s)
    {
        NoiseModel n;
        n.enabled = true;
        n.seed = s;
        return n;
    }

    /** OS-interrupt noise plus DVFS steps, default magnitudes. */
    static NoiseModel withDvfs(std::uint64_t s)
    {
        NoiseModel n = withSeed(s);
        n.dvfsEnabled = true;
        return n;
    }
};

} // namespace mbias::sim

#endif // MBIAS_SIM_NOISE_HH
