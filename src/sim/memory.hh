#ifndef MBIAS_SIM_MEMORY_HH
#define MBIAS_SIM_MEMORY_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "base/types.hh"

namespace mbias::sim
{

/**
 * Sparse byte-addressable memory for the functional side of the
 * simulator.  Pages are allocated on first touch and zero-filled,
 * which matches anonymous-mapping semantics and lets workloads use
 * multi-megabyte zero-initialized globals cheaply.
 */
class SparseMemory
{
  public:
    static constexpr unsigned page_bytes = 4096;

    /** Reads @p size (1/2/4/8) bytes, little-endian, zero-extended. */
    std::uint64_t read(Addr addr, unsigned size) const;

    /** Writes the low @p size bytes of @p value, little-endian. */
    void write(Addr addr, unsigned size, std::uint64_t value);

    /** Bulk-copies @p bytes into memory starting at @p addr. */
    void writeBlock(Addr addr, const std::vector<std::uint8_t> &bytes);

    /**
     * Raw data of the page containing @p addr, allocated (zero-filled)
     * if absent.  Fast-path accessor: the simulator's hot loop memoizes
     * the returned pointer per page, skipping the hash lookup that
     * read()/write() repeat on every access.  Pointers stay valid until
     * clear() — pages are never freed and a rehash moves only the
     * vector headers, not their heap buffers.
     */
    std::uint8_t *pageData(Addr addr);

    /** Same, without allocating: nullptr if the page was never
     *  touched (its bytes all read as zero). */
    const std::uint8_t *pageDataIfPresent(Addr addr) const;

    /** Releases all pages. */
    void clear();

    /** Number of pages currently allocated. */
    std::size_t pagesAllocated() const { return pages_.size(); }

  private:
    using Page = std::vector<std::uint8_t>;

    Page *findPage(Addr addr) const;
    Page &touchPage(Addr addr);

    mutable std::unordered_map<std::uint64_t, Page> pages_;
};

} // namespace mbias::sim

#endif // MBIAS_SIM_MEMORY_HH
