#ifndef MBIAS_SIM_CONFIG_HH
#define MBIAS_SIM_CONFIG_HH

#include <string>
#include <vector>

#include "base/types.hh"
#include "uarch/cache.hh"
#include "uarch/tlb.hh"

namespace mbias::sim
{

/** Direction-predictor family. */
enum class PredictorKind
{
    Bimodal,
    Gshare,
};

/**
 * Core-model family: which issue/stall policy the timing spine runs
 * under.  The memory hierarchy, predictors, and shadow structures are
 * shared; the core model decides what a producer latency costs a
 * dependent consumer and what a taken control transfer costs the
 * front end (sim/machine.cc picks the policy per backend at compile
 * time so the direct-threaded tiers keep their throughput).
 */
enum class CoreKind
{
    OutOfOrder, ///< window hides up to oooWindowCycles of latency
    InOrder,    ///< strict issue order, every stall cycle exposed
};

/**
 * Full parameterization of one simulated machine.
 *
 * Three presets model the paper's three platforms: core2Like() and
 * p4Like() stand in for the Core 2 and Pentium 4 hardware, o3Like()
 * for the m5 simulator's O3CPU — the point of the third being that
 * *simulators* exhibit measurement bias too.
 *
 * The enable* flags exist for the mechanism-ablation study
 * (bench/ablation_mechanisms): each flag removes one address-dependent
 * mechanism so its contribution to the total bias can be quantified.
 */
struct MachineConfig
{
    std::string name = "generic";

    // Front end.
    unsigned fetchBlockBytes = 16; ///< aligned fetch window
    unsigned fetchWidth = 4;       ///< max instructions decoded/cycle
    Cycles branchMispredictPenalty = 15;
    Cycles btbMissPenalty = 3;     ///< taken transfer without a target
    unsigned btbSets = 128;
    unsigned btbWays = 4;
    PredictorKind predictor = PredictorKind::Gshare;
    unsigned predictorTableBits = 12;
    unsigned predictorHistoryBits = 8;

    // Memory hierarchy.
    uarch::CacheConfig icache{64, 8, 64, 0, 12};
    uarch::CacheConfig dcache{64, 8, 64, 3, 12};
    uarch::CacheConfig l2{4096, 16, 64, 0, 200};
    uarch::TlbConfig itlb{128, 4096, 20};
    uarch::TlbConfig dtlb{256, 4096, 30};

    // Memory pipeline hazards.
    unsigned storeBufferEntries = 20;
    unsigned aliasWindowBits = 12; ///< 4 KiB aliasing
    Cycles aliasPenalty = 10;
    Cycles lineSplitPenalty = 12;

    /**
     * Next-line data prefetcher: a demand miss on line L also fills
     * L+1 (into L1 and L2) in the background.  Off in the presets;
     * examples/evaluate_prefetcher.cpp studies it as the "proposed
     * hardware optimization" whose evaluation the bias toolkit hardens.
     */
    bool enableNextLinePrefetch = false;

    // Execution.
    CoreKind core = CoreKind::OutOfOrder;
    Cycles intMulLatency = 3;
    Cycles intDivLatency = 22;
    /**
     * Cycles of producer latency the out-of-order window can hide from
     * a dependent consumer (coarse OoO model).  Ignored by in-order
     * cores, which expose every stall cycle.
     */
    Cycles oooWindowCycles = 24;
    /**
     * In-order front ends refetch when a taken transfer lands inside a
     * fetch block rather than at its start; this is the extra cycle(s)
     * such a misaligned redirect costs.  Zero (and unused) on OoO
     * cores, whose decoupled fetch buffers hide the realignment.
     */
    Cycles fetchRealignPenalty = 0;

    // Ablation switches (all on for the real models).
    bool enableFetchBlockModel = true;
    bool enableBtb = true;
    bool enableStoreBufferAliasing = true;
    bool enableLineSplitPenalty = true;
    bool enableCaches = true;
    bool enableTlbs = true;
    bool enableBranchPrediction = true;

    /** A Core 2-flavoured machine. */
    static MachineConfig core2Like();

    /** A Pentium 4-flavoured machine (deep pipeline, 4K aliasing). */
    static MachineConfig p4Like();

    /** An m5-O3CPU-flavoured simulated machine. */
    static MachineConfig o3Like();

    /**
     * A dual-issue in-order ARM-flavoured core (CoreKind::InOrder):
     * no latency hiding, strict issue order, fetch-alignment
     * sensitive.  Registered as a non-paper backend; the paper's
     * conclusions are re-examined on it in bench/figures/fig12.
     */
    static MachineConfig inorderLike();

    /**
     * The three preset machines, in paper order.  This is the *paper*
     * subset — consumers that want every registered backend (including
     * non-paper cores like inorderLike()) go through
     * sim::MachineRegistry instead.
     */
    static const std::vector<MachineConfig> &allPresets();
};

} // namespace mbias::sim

#endif // MBIAS_SIM_CONFIG_HH
